// Triangle counting à la Suri–Vassilvitskii ("Counting triangles and
// the curse of the last reducer", WWW 2011), one of the works the
// HyperCube algorithm generalizes. The triangle query C3 is evaluated
// two ways on the same graph:
//
//  1. one round of HyperCube shuffle with shares p^{1/3}×p^{1/3}×p^{1/3}
//     (the paper's optimal one-round algorithm, ε = 1/3), and
//  2. a two-round Γ^r_ε plan at ε = 0: first the path S1⋈S2, then the
//     close with S3 — less replication per round, more rounds.
//
// Both report the same triangles; the interesting output is the
// communication profile.
//
// Run with:
//
//	go run ./examples/triangles
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

func main() {
	q := query.Triangle()
	const (
		n = 20000
		p = 64
	)
	rng := rand.New(rand.NewPCG(2013, 6))
	db := relation.MatchingDatabase(rng, q, n)
	truth, err := core.GroundTruth(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C3 on matching database, n=%d, p=%d; true triangles: %d\n\n", n, p, len(truth))

	// Strategy 1: one round at ε = 1/3.
	one, err := core.EvaluateOneRound(q, db, p, core.OneRoundOptions{Epsilon: -1, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-round HyperCube (ε = 1/3, shares %s):\n", one.Shares)
	fmt.Printf("  triangles found: %d\n", len(one.Answers))
	fmt.Printf("  rounds: %d, max load: %d tuples, replication %.2fx\n\n",
		one.Stats.NumRounds(), one.Stats.MaxLoadTuples(), one.Stats.Replication(db.InputBits()))

	// Strategy 2: two rounds at ε = 0 (join two edges, then close).
	multi, err := core.EvaluateMultiRound(q, db, p, big.NewRat(0, 1), core.MultiRoundOptions{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-round plan (ε = 0):\n")
	fmt.Printf("  triangles found: %d\n", len(multi.Answers))
	fmt.Printf("  rounds: %d, max load/round: %d tuples, total %.2fx input\n\n",
		multi.Rounds, multi.Stats.MaxLoadTuples(), multi.Stats.Replication(db.InputBits()))

	if len(one.Answers) != len(truth) || len(multi.Answers) != len(truth) {
		log.Fatal("triangle counts disagree with ground truth")
	}
	fmt.Println("both strategies agree with the single-node ground truth ✓")
	fmt.Println("tradeoff: one round costs p^(1/3) replication; two rounds cost an extra synchronization")
}
