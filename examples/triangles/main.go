// Triangle counting à la Suri–Vassilvitskii ("Counting triangles and
// the curse of the last reducer", WWW 2011), one of the works the
// HyperCube algorithm generalizes. The triangle query C3 is planned by
// the statistics-driven planner and then evaluated two ways on the
// same graph:
//
//  1. the planner's own choice — one round of HyperCube shuffle with
//     the LP-derived shares p^{1/3}×p^{1/3}×p^{1/3} (ε = 1/3), and
//  2. the same query planned at ε = 0, where the one-round load blows
//     the tighter budget and the planner itself falls back to the
//     two-round Γ^r_0 plan: first the path S1⋈S2, then the close with
//     S3 — less replication per round, more rounds.
//
// Both report the same triangles; the interesting output is the
// communication profile, which the planner's EXPLAIN predicts.
//
// Run with:
//
//	go run ./examples/triangles
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relation"
)

func main() {
	q := query.Triangle()
	const (
		n = 20000
		p = 64
	)
	rng := rand.New(rand.NewPCG(2013, 6))
	db := relation.MatchingDatabase(rng, q, n)
	truth, err := core.GroundTruth(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C3 on matching database, n=%d, p=%d; true triangles: %d\n\n", n, p, len(truth))

	// The planner chooses strategy 1 on its own: the LP gives share
	// exponents (1/3,1/3,1/3) and one round fits the ε = 1/3 budget.
	pl, err := plan.Build(q, relation.CollectStats(db), plan.Options{P: p})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(pl.Explain())
	one, err := pl.Execute(db, plan.ExecOptions{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanner choice (%v, shares %s):\n", one.Engine, one.Shares)
	fmt.Printf("  triangles found: %d\n", len(one.Answers))
	fmt.Printf("  rounds: %d, max load: %d tuples, replication %.2fx\n\n",
		one.Rounds, one.Stats.MaxLoadTuples(), one.Stats.Replication(db.InputBits()))

	// Tighten the budget to ε = 0: one round would need p^{2/3}-scale
	// loads, so the planner falls back to the two-round decomposition
	// (join two edges, then close).
	pl0, err := plan.Build(q, relation.CollectStats(db), plan.Options{
		P: p, Epsilon: big.NewRat(0, 1),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(pl0.Explain())
	multi, err := pl0.Execute(db, plan.ExecOptions{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanner choice at ε=0 (%v):\n", multi.Engine)
	fmt.Printf("  triangles found: %d\n", len(multi.Answers))
	fmt.Printf("  rounds: %d, max load/round: %d tuples, total %.2fx input\n\n",
		multi.Rounds, multi.Stats.MaxLoadTuples(), multi.Stats.Replication(db.InputBits()))

	if len(one.Answers) != len(truth) || len(multi.Answers) != len(truth) {
		log.Fatal("triangle counts disagree with ground truth")
	}
	fmt.Println("both strategies agree with the single-node ground truth ✓")
	fmt.Println("tradeoff: one round costs p^(1/3) replication; two rounds cost an extra synchronization")
}
