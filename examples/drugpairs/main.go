// The drug-interaction workload from the paper's introduction
// (Ullman's example): apply a user-defined comparison to every pair of
// drugs — a cartesian product R(x) × S(y). With p servers known in
// advance, the optimal schedule partitions each set into g = √p groups
// and gives each server one pair of groups: replication √p, reducer
// size 2n/√p.
//
// This example sweeps the group count g and reports the
// replication-vs-reducer-size tradeoff the introduction describes,
// then confirms the planner recovers g = √p automatically from the
// LPs (the vertex cover of R(x),S(y) is v_x = v_y = 1, τ* = 2, shares
// p^{1/2} each) and executes the product through it.
//
// Run with:
//
//	go run ./examples/drugpairs
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"repro/internal/localjoin"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relation"
)

func main() {
	const (
		n = 6500 // number of drugs, as in Ullman's example
		p = 64
	)
	q := query.CartesianPair() // q(x,y) = R(x), S(y)

	// The tradeoff table from the introduction: g groups per set →
	// replication g, reducer input 2n/g, g² reducers.
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "drug interaction tradeoff, n=%d drugs\n", n)
	fmt.Fprintln(tw, "groups g\treducers g²\treplication\treducer input")
	for _, g := range []int{1, 2, 4, 8, int(math.Sqrt(p)), 16, 80} {
		fmt.Fprintf(tw, "%d\t%d\t%d×\t%d items\n", g, g*g, g, 2*n/g)
	}
	tw.Flush()
	fmt.Printf("\nwith p = %d servers the sweet spot is g = √p = %d: every server\nhandles exactly one pair of groups.\n\n", p, int(math.Sqrt(p)))

	// The planner recovers this automatically: the fractional vertex
	// cover of R(x),S(y) is (1,1), τ* = 2, share exponents (1/2,1/2),
	// so shares are √p × √p. Run it on a scaled-down instance (n²
	// pairs materialize in memory; 400² = 160k is plenty to see the
	// load profile).
	const nRun = 400
	db := relation.NewDatabase(nRun)
	r := relation.New("R", "x")
	s := relation.New("S", "y")
	for i := 1; i <= nRun; i++ {
		r.MustAdd(relation.Tuple{i})
		s.MustAdd(relation.Tuple{i})
	}
	db.AddRelation(r)
	db.AddRelation(s)

	pl, err := plan.Build(q, relation.CollectStats(db), plan.Options{P: p})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(pl.Explain())

	res, err := pl.Execute(db, plan.ExecOptions{
		Seed:     3,
		Strategy: localjoin.HashJoin,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pairs examined: %d (want n² = %d at n=%d)\n", len(res.Answers), nRun*nRun, nRun)
	fmt.Printf("max per-server input: %d tuples (ideal 2n/√p = %d)\n",
		res.Stats.MaxLoadTuples(), 2*nRun/int(math.Sqrt(p)))
	fmt.Printf("replication: %.2fx (theory √p = %.0f)\n",
		res.Stats.Replication(db.InputBits()), math.Sqrt(p))
}
