// Quickstart: analyze the chain query L3, generate a random matching
// database, and evaluate it in one communication round with the
// HyperCube algorithm on a simulated 64-server MPC cluster.
//
// L3(x0..x3) = S1(x0,x1), S2(x1,x2), S3(x2,x3) has τ* = 2, so its
// one-round space exponent is ε = 1/2 (Theorem 1.1): each input tuple
// is replicated to √p servers and every one of the n answers is found
// in a single shuffle.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

func main() {
	// The chain query L3(x0,…,x3) = S1(x0,x1), S2(x1,x2), S3(x2,x3).
	q := query.Chain(3)

	// Static analysis: τ*, space exponent, share exponents (Theorem 1.1).
	analysis, err := core.Analyze(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(analysis)

	// A random matching database with n = 10,000 tuples per relation:
	// every relation is a permutation of [n] (Section 2.5 of the paper).
	const n = 10000
	rng := rand.New(rand.NewPCG(42, 42))
	db := relation.MatchingDatabase(rng, q, n)

	// One communication round on p = 64 servers at the query's own
	// space exponent ε = 1/2. Each server receives O(n/p^{1/2}) tuples.
	const p = 64
	res, err := core.EvaluateOneRound(q, db, p, core.OneRoundOptions{
		Epsilon: -1, // use the query's space exponent
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}

	truth, err := core.GroundTruth(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHyperCube on p=%d servers, shares %s\n", p, res.Shares)
	fmt.Printf("found %d answers (ground truth %d)\n", len(res.Answers), len(truth))
	fmt.Printf("max per-server load: %d tuples\n", res.Stats.MaxLoadTuples())
	fmt.Printf("replication: %.2fx the input (theory: p^ε = %.2f)\n",
		res.Stats.Replication(db.InputBits()), math.Sqrt(p))
}
