// Quickstart: analyze the chain query L3, generate a random matching
// database, and let the statistics-driven planner choose and execute
// the evaluation strategy on a simulated 64-server MPC cluster.
//
// L3(x0..x3) = S1(x0,x1), S2(x1,x2), S3(x2,x3) has τ* = 2, so its
// one-round space exponent is ε = 1/2 (Theorem 1.1): the planner
// derives share exponents (0, 1/2, 0, 1/2) from the vertex-cover LP,
// predicts that one round fits the ε-budget, and runs the HyperCube
// algorithm — each input tuple replicated to √p servers, every one of
// the n answers found in a single shuffle.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relation"
)

func main() {
	// The chain query L3(x0,…,x3) = S1(x0,x1), S2(x1,x2), S3(x2,x3).
	q := query.Chain(3)

	// Static analysis: τ*, space exponent, share exponents (Theorem 1.1).
	analysis, err := core.Analyze(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(analysis)

	// A random matching database with n = 10,000 tuples per relation:
	// every relation is a permutation of [n] (Section 2.5 of the paper).
	const n = 10000
	rng := rand.New(rand.NewPCG(42, 42))
	db := relation.MatchingDatabase(rng, q, n)

	// The planner: collect statistics, solve the LPs, pick shares and
	// engine, and explain the decision.
	const p = 64
	pl, err := plan.Build(q, relation.CollectStats(db), plan.Options{P: p})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(pl.Explain())

	// Execute the plan end to end through the columnar exchange.
	res, err := pl.Execute(db, plan.ExecOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	truth, err := core.GroundTruth(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted %v on p=%d servers, shares %s\n", res.Engine, p, res.Shares)
	fmt.Printf("found %d answers (ground truth %d)\n", len(res.Answers), len(truth))
	fmt.Printf("max per-server load: %d tuples (planner predicted %.0f)\n",
		res.Stats.MaxLoadTuples(), pl.Cost.LoadTuples)
	fmt.Printf("replication: %.2fx the input (theory: p^ε = %.2f)\n",
		res.Stats.Replication(db.InputBits()), math.Sqrt(p))
}
