// Connected components in the tuple-based MPC(ε) model (Theorem 4.10):
// on the paper's layered-graph family (components are paths crossing
// all layers, exactly the L_k reduction) the number of rounds must
// grow with p for any tuple-based algorithm. This example contrasts
// three algorithms across a p sweep:
//
//   - neighbor-min label flooding: Θ(diameter) rounds,
//   - hash-to-min: Θ(log diameter) rounds — still growing with p,
//   - the dense-regime contrast (ε = 1: one server may hold the whole
//     graph): always 2 rounds, the Karloff-et-al. regime the paper
//     contrasts against.
//
// The lower bound rides on the chain-query reduction: a path crossing
// k layers is exactly an L_k instance. The planner's EXPLAIN for that
// underlying query (printed first) shows why one round cannot work at
// ε = 1/2 — the one-round load blows the budget and the Γ^r_ε plan
// needs multiple rounds — which is the phenomenon the table then
// measures on real component algorithms.
//
// Run with:
//
//	go run ./examples/components
package main

import (
	"fmt"
	"log"
	"math"
	"math/big"
	"math/rand/v2"
	"os"
	"text/tabwriter"

	"repro/internal/cc"
	"repro/internal/plan"
	"repro/internal/query"
)

func main() {
	rng := rand.New(rand.NewPCG(2013, 4))

	// The reduction target: components on a k-layer graph embed the
	// chain query L_k. Plan it at ε = 1/2 to see the round structure.
	const kDemo = 8
	lk := query.Chain(kDemo)
	pl, err := plan.Build(lk, plan.MatchingStats(lk, 10000), plan.Options{
		P: 64, Epsilon: big.NewRat(1, 2),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the Theorem 4.10 reduction embeds L%d; its plan at ε=1/2:\n", kDemo)
	fmt.Print(pl.Explain())
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "layered graphs with k = ⌊√p⌋ layers (Theorem 4.10 input family)")
	fmt.Fprintln(tw, "p\tlayers\tvertices\tneighbor-min\thash-to-min\tdense(ε=1)\tlog2 p")
	for _, p := range []int{4, 16, 64, 256} {
		layers := int(math.Sqrt(float64(p)))
		if layers < 2 {
			layers = 2
		}
		width := 16
		g, err := cc.Layered(rng, layers, width)
		if err != nil {
			log.Fatal(err)
		}
		truth := cc.SequentialComponents(g)

		nm, err := cc.Run(g, cc.NeighborMin, cc.Options{Workers: p, Epsilon: 0.5, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		h2m, err := cc.Run(g, cc.HashToMin, cc.Options{Workers: p, Epsilon: 0.5, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		dense, err := cc.DenseTwoRound(g, cc.Options{Workers: p, Epsilon: 1, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		for v, l := range truth {
			if nm.Labels[v] != l || h2m.Labels[v] != l || dense.Labels[v] != l {
				log.Fatalf("label mismatch at vertex %d (p=%d)", v, p)
			}
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%.1f\n",
			p, layers, g.N, nm.Rounds, h2m.Rounds, dense.Rounds, math.Log2(float64(p)))
	}
	tw.Flush()
	fmt.Println("\nsparse tuple-based algorithms need more rounds as p grows (Ω(log p));")
	fmt.Println("the dense regime (entire input on one server) stays at 2 — exactly the")
	fmt.Println("contrast the paper draws with Karloff, Suri, Vassilvitskii (SODA 2010).")
}
