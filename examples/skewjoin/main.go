// Skewed joins: what happens to the MPC bounds outside the paper's
// skew-free matching databases. The paper's upper bounds "hold only on
// matching databases" (Section 2.5) and point to dedicated techniques
// for skew; this example makes that concrete on the binary join
// R(x,y) ⋈ S(y,z):
//
//   - on matching inputs, hash partitioning balances perfectly;
//   - on Zipf inputs, the server owning the heaviest join value
//     receives a constant fraction of the data, regardless of p;
//   - a heavy-hitter-resilient routing (split the big side of each
//     heavy value across a server block, broadcast the small side)
//     restores near-ideal balance.
//
// The statistics-driven planner automates exactly this fallback: on
// the Zipf input its collected statistics show a heavy hitter above
// the (|R|+|S|)/p threshold and the EXPLAIN below picks the skew-aware
// engine; on the matching input it stays with plain one-round
// HyperCube.
//
// Run with:
//
//	go run ./examples/skewjoin
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"text/tabwriter"

	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/skew"
)

func main() {
	const (
		n = 4000
		p = 32
	)
	rng := rand.New(rand.NewPCG(2013, 8))

	// The planner detects the skew from statistics alone.
	q := skew.JoinQuery()
	zr0, zs0 := skew.ZipfJoinInput(rng, n, 1.1)
	db := relation.NewDatabase(n)
	db.AddRelation(zr0)
	db.AddRelation(zs0)
	pl, err := plan.Build(q, relation.CollectStats(db), plan.Options{P: p})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(pl.Explain())
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "R(x,y) ⋈ S(y,z), n=%d tuples per relation, p=%d servers (ideal load 2n/p = %d)\n",
		n, p, 2*n/p)
	fmt.Fprintln(tw, "input\tdiscipline\tmax server load\theavy hitters\tanswers")

	type inputCase struct {
		name string
		r, s *relation.Relation
	}
	zr, zs := skew.ZipfJoinInput(rng, n, 1.1)
	mr, ms := skew.MatchingJoinInput(rng, n)
	for _, in := range []inputCase{{"zipf(1.1)", zr, zs}, {"matching", mr, ms}} {
		truth, err := skew.GroundTruth(in.r, in.s)
		if err != nil {
			log.Fatal(err)
		}
		for _, mode := range []skew.Mode{skew.Standard, skew.Resilient, skew.ModeWCOJ} {
			res, err := skew.RunJoin(in.r, in.s, p, mode, skew.Options{Seed: 5})
			if err != nil {
				log.Fatal(err)
			}
			if len(res.Answers) != len(truth) {
				log.Fatalf("%s/%s: %d answers, want %d", in.name, mode, len(res.Answers), len(truth))
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\n",
				in.name, mode, res.MaxLoadTuples, len(res.Heavy), len(res.Answers))
		}
	}
	tw.Flush()
	fmt.Println("\nall disciplines return identical (verified) join results; standard vs")
	fmt.Println("resilient differ purely in load profile — the phenomenon the paper's")
	fmt.Println("matching-database assumption removes — while wcoj routes like standard but")
	fmt.Println("runs the worst-case-optimal leapfrog join as each server's local evaluator.")
}
