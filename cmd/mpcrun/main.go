// Command mpcrun evaluates a conjunctive query over a freshly
// generated random matching database in the simulated MPC(ε) cluster,
// either in one round with the HyperCube algorithm or with a
// multi-round Γ^r_ε plan, and reports communication statistics.
//
// Usage:
//
//	mpcrun -family C3 -n 10000 -p 64                 # one-round HC
//	mpcrun -family L16 -n 5000 -p 64 -mode multi -eps 1/2
//	mpcrun -query 'R(x,y),S(y,z)' -n 1000 -p 16
//	mpcrun -query 'R(x,y),S(y,z)' -data 'R=r.csv,S=s.csv' -p 16
//
// Without -data, a random matching database over [n] is generated;
// with -data, each named relation is loaded from a CSV file (header =
// attribute names, rows = positive integers).
package main

import (
	"flag"
	"fmt"
	"math/big"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

func main() {
	var (
		queryStr  = flag.String("query", "", "conjunctive query text")
		familyStr = flag.String("family", "", "query family: L<k>, C<k>, T<k>, SP<k>, B<k>_<m>")
		n         = flag.Int("n", 10000, "domain size (tuples per relation)")
		p         = flag.Int("p", 64, "number of servers")
		mode      = flag.String("mode", "one", "one | multi")
		epsStr    = flag.String("eps", "", "space exponent (default: the query's 1-1/τ* for one-round, 0 for multi)")
		seed      = flag.Uint64("seed", 1, "random seed")
		capC      = flag.Float64("cap", 0, "receive-cap constant c (0 disables enforcement)")
		show      = flag.Int("show", 5, "print at most this many answers")
		dataStr   = flag.String("data", "", "comma-separated Rel=file.csv pairs; omit to generate a matching database")
	)
	flag.Parse()
	if err := run(*queryStr, *familyStr, *n, *p, *mode, *epsStr, *seed, *capC, *show, *dataStr); err != nil {
		fmt.Fprintln(os.Stderr, "mpcrun:", err)
		os.Exit(1)
	}
}

func run(queryStr, familyStr string, n, p int, mode, epsStr string, seed uint64, capC float64, show int, dataStr string) error {
	q, err := resolveQuery(queryStr, familyStr)
	if err != nil {
		return err
	}
	var db *relation.Database
	if dataStr == "" {
		rng := rand.New(rand.NewPCG(seed, 0xdb))
		db = relation.MatchingDatabase(rng, q, n)
	} else {
		db, err = loadDatabase(q, dataStr)
		if err != nil {
			return err
		}
		n = db.N
	}
	fmt.Printf("query: %s\nn = %d, p = %d, input = %d bits\n", q, n, p, db.InputBits())

	truth, err := core.GroundTruth(q, db)
	if err != nil {
		return err
	}
	switch mode {
	case "one":
		eps := -1.0
		if epsStr != "" {
			r, err := parseRat(epsStr)
			if err != nil {
				return err
			}
			eps, _ = r.Float64()
		}
		res, err := core.EvaluateOneRound(q, db, p, core.OneRoundOptions{
			Epsilon: eps, CapConstant: capC, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("one round (HyperCube), shares %s\n", res.Shares)
		fmt.Printf("answers: %d / %d ground truth\n", len(res.Answers), len(truth))
		fmt.Printf("max load: %d tuples, %d bits (cap %d, exceeded: %v)\n",
			res.Stats.MaxLoadTuples(), res.Stats.MaxLoadBits(), res.ReceiveCap, res.CapExceeded)
		fmt.Printf("replication: %.2fx input\n", res.Stats.Replication(db.InputBits()))
		printAnswers(q, res.Answers, show)
	case "multi":
		epsRat := big.NewRat(0, 1)
		if epsStr != "" {
			epsRat, err = parseRat(epsStr)
			if err != nil {
				return err
			}
		}
		res, err := core.EvaluateMultiRound(q, db, p, epsRat, core.MultiRoundOptions{
			CapConstant: capC, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("multi round at ε=%s: %d rounds\n", epsRat.RatString(), res.Rounds)
		fmt.Printf("answers: %d / %d ground truth\n", len(res.Answers), len(truth))
		fmt.Printf("max load: %d tuples/round, total %d bits (cap exceeded: %v)\n",
			res.Stats.MaxLoadTuples(), res.Stats.TotalBits(), res.CapExceeded)
		printAnswers(q, res.Answers, show)
	default:
		return fmt.Errorf("unknown -mode %q (want one or multi)", mode)
	}
	return nil
}

func printAnswers(q *query.Query, answers []relation.Tuple, show int) {
	if show <= 0 {
		return
	}
	fmt.Printf("sample answers over (%s):\n", strings.Join(q.Vars(), ","))
	for i, t := range answers {
		if i >= show {
			fmt.Printf("  … %d more\n", len(answers)-show)
			break
		}
		fmt.Printf("  %v\n", t)
	}
}

// loadDatabase reads 'Rel=file.csv' pairs and validates them against
// the query's atoms.
func loadDatabase(q *query.Query, dataStr string) (*relation.Database, error) {
	files := map[string]string{}
	for _, pair := range strings.Split(dataStr, ",") {
		eq := strings.Index(pair, "=")
		if eq <= 0 || eq == len(pair)-1 {
			return nil, fmt.Errorf("bad -data entry %q (want Rel=file.csv)", pair)
		}
		files[strings.TrimSpace(pair[:eq])] = strings.TrimSpace(pair[eq+1:])
	}
	maxVal := 1
	var rels []*relation.Relation
	for _, a := range q.Atoms {
		path, ok := files[a.Name]
		if !ok {
			return nil, fmt.Errorf("-data missing relation %s", a.Name)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		rel, err := relation.ReadCSV(f, a.Name)
		f.Close()
		if err != nil {
			return nil, err
		}
		if rel.Arity() != a.Arity() {
			return nil, fmt.Errorf("relation %s from %s has arity %d, atom needs %d",
				a.Name, path, rel.Arity(), a.Arity())
		}
		// Align the schema with the atom's variables.
		rel.Attrs = append([]string(nil), a.Vars...)
		if mv := rel.MaxValue(); mv > maxVal {
			maxVal = mv
		}
		rels = append(rels, rel)
	}
	db := relation.NewDatabase(maxVal)
	for _, rel := range rels {
		db.AddRelation(rel)
	}
	return db, nil
}

func resolveQuery(queryStr, familyStr string) (*query.Query, error) {
	switch {
	case queryStr != "" && familyStr != "":
		return nil, fmt.Errorf("use either -query or -family, not both")
	case queryStr != "":
		return query.Parse(queryStr)
	case familyStr != "":
		return parseFamily(familyStr)
	default:
		return nil, fmt.Errorf("one of -query or -family is required")
	}
}

func parseFamily(s string) (*query.Query, error) {
	switch {
	case strings.HasPrefix(s, "SP"):
		k, err := strconv.Atoi(s[2:])
		if err != nil {
			return nil, fmt.Errorf("family %q: %v", s, err)
		}
		return query.SpokedWheel(k), nil
	case strings.HasPrefix(s, "B"):
		parts := strings.SplitN(s[1:], "_", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("family %q: want B<k>_<m>", s)
		}
		k, err1 := strconv.Atoi(parts[0])
		m, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("family %q: bad numbers", s)
		}
		return query.Binom(k, m), nil
	case strings.HasPrefix(s, "L"):
		k, err := strconv.Atoi(s[1:])
		if err != nil {
			return nil, fmt.Errorf("family %q: %v", s, err)
		}
		return query.Chain(k), nil
	case strings.HasPrefix(s, "C"):
		k, err := strconv.Atoi(s[1:])
		if err != nil {
			return nil, fmt.Errorf("family %q: %v", s, err)
		}
		return query.Cycle(k), nil
	case strings.HasPrefix(s, "T"):
		k, err := strconv.Atoi(s[1:])
		if err != nil {
			return nil, fmt.Errorf("family %q: %v", s, err)
		}
		return query.Star(k), nil
	default:
		return nil, fmt.Errorf("unknown family %q", s)
	}
}

func parseRat(s string) (*big.Rat, error) {
	r := new(big.Rat)
	if _, ok := r.SetString(s); !ok {
		return nil, fmt.Errorf("cannot parse %q as a rational", s)
	}
	if r.Sign() < 0 || r.Cmp(big.NewRat(1, 1)) >= 0 {
		return nil, fmt.Errorf("ε = %s outside [0,1)", r.RatString())
	}
	return r, nil
}
