// Command mpcrun evaluates a conjunctive query on the simulated MPC(ε)
// cluster. By default it is planner-driven: it collects statistics
// over the input relations (relation.CollectStats), builds a
// cost-based plan (internal/plan) that picks the share grid and the
// engine — one-round HyperCube, multiround Γ^r_ε decomposition, or
// skew-aware routing — prints the plan's EXPLAIN, and executes it end
// to end through the columnar exchange layer.
//
// Usage:
//
//	mpcrun -family C3 -n 10000 -p 64                 # planner-driven (auto)
//	mpcrun -family L16 -n 5000 -p 64 -eps 1/2        # planner at a fixed ε
//	mpcrun -query 'R(x,y),S(y,z)' -n 1000 -p 16
//	mpcrun -query 'R(x,y),S(y,z)' -data 'R=r.csv,S=s.csv' -p 16
//	mpcrun -family C3 -mode one                      # manual: force one round
//	mpcrun -family L16 -mode multi -eps 1/2          # manual: force Γ^r_ε
//	mpcrun -family C3 -plan 'shares=x1:4,x2:4,x3:4'  # manual share override
//	mpcrun -query 'R(x,y),S(y,z)' -plan engine=skew  # manual engine override
//	mpcrun -family C3 -workers localhost:9001,localhost:9002,localhost:9003,localhost:9004
//	mpcrun -query 'tc(x,y) :- e(x,y). tc(x,z) :- tc(x,y), e(y,z). ?- tc(x,y).' -n 500 -p 8
//
// With -workers, the rounds run distributed: the listed mpcworker
// processes (cmd/mpcworker) form the cluster, p is the pool size, and
// every shuffle crosses TCP instead of process memory. Answers and
// round statistics are identical to the in-process run by
// construction (the differential tests in internal/dist hold both
// paths to that).
//
// A -query containing ':-' or '?-' is a Datalog program (internal/
// datalog): rules compile onto the same planner, recursive predicates
// run the semi-naive fixpoint over warm incremental maintenance, and
// aggregate heads (count/sum/min/max) fold into the gather. Datalog
// runs accept -n, -p, -eps, -seed, -cap, -show, -data and -workers;
// the EDB relations are the program's undefined predicates.
//
// Without -data, a random matching database over [n] is generated
// (for Datalog: each EDB relation gets n uniform tuples over [n]);
// with -data, each named relation is loaded from a CSV file (header =
// attribute names, rows = positive integers). The -plan flag overrides
// parts of the planner's decision: a semicolon-separated list of
// engine=one|multi|skew and/or shares=v1:d1,v2:d2,… (shares imply the
// one-round engine).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/big"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/dist"
	"repro/internal/hypercube"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relation"
)

func main() {
	var (
		queryStr  = flag.String("query", "", "conjunctive query text")
		familyStr = flag.String("family", "", "query family: L<k>, C<k>, T<k>, SP<k>, B<k>_<m>")
		n         = flag.Int("n", 10000, "domain size (tuples per relation)")
		p         = flag.Int("p", 64, "number of servers")
		mode      = flag.String("mode", "auto", "auto (planner-driven) | one | multi")
		epsStr    = flag.String("eps", "", "space exponent (default: the query's 1-1/τ* for auto/one-round, 0 for multi)")
		seed      = flag.Uint64("seed", 1, "random seed")
		capC      = flag.Float64("cap", 0, "receive-cap constant c (0 disables enforcement)")
		show      = flag.Int("show", 5, "print at most this many answers")
		dataStr   = flag.String("data", "", "comma-separated Rel=file.csv pairs; omit to generate a matching database")
		planStr   = flag.String("plan", "", "manual plan override: 'engine=one|multi|skew' and/or 'shares=x:4,y:4', semicolon-separated")
		workers   = flag.String("workers", "", "comma-separated mpcworker addresses; run the rounds distributed over TCP (p becomes the pool size; the run is bounded by a 10-minute deadline)")
		spares    = flag.String("spares", "", "comma-separated standby mpcworker addresses; a worker that dies mid-run is replaced and the query resumes (requires -workers)")
		maxRepl   = flag.Int("max-replace", 0, "max worker replacements for the run (0: pool size; requires -workers)")
		pipeline  = flag.Bool("pipeline", false, "overlap compute with communication: defer scatter/barrier/join traffic to the gather fence (answers and stats are unchanged)")
	)
	flag.Parse()
	if err := run(*queryStr, *familyStr, *n, *p, *mode, *epsStr, *seed, *capC, *show, *dataStr, *planStr, *workers, *spares, *maxRepl, *pipeline); err != nil {
		fmt.Fprintln(os.Stderr, "mpcrun:", err)
		os.Exit(1)
	}
}

func run(queryStr, familyStr string, n, p int, mode, epsStr string, seed uint64, capC float64, show int, dataStr, planStr, workers, spares string, maxRepl int, pipeline bool) error {
	if p < 1 {
		return fmt.Errorf("-p = %d, need ≥ 1", p)
	}
	addrs, err := dist.ParseAddrs(workers)
	if err != nil {
		return err
	}
	spareAddrs, err := dist.ParseAddrs(spares)
	if err != nil {
		return err
	}
	if len(addrs) == 0 && (len(spareAddrs) > 0 || maxRepl != 0) {
		return fmt.Errorf("-spares and -max-replace require -workers")
	}
	if len(addrs) > 0 {
		if mode != "auto" {
			return fmt.Errorf("-workers requires -mode auto (the planner-driven path)")
		}
		// The cluster size is the pool size: one worker id per process.
		if p != len(addrs) {
			fmt.Printf("note: -workers fixes p to the pool size %d (ignoring -p %d)\n", len(addrs), p)
		}
		p = len(addrs)
	}
	if dataStr == "" && n < 1 {
		return fmt.Errorf("-n = %d, need ≥ 1", n)
	}
	if datalog.IsDatalog(queryStr) {
		if familyStr != "" || mode != "auto" || planStr != "" || len(spareAddrs) > 0 || pipeline {
			return fmt.Errorf("a Datalog -query supports only -n, -p, -eps, -seed, -cap, -show, -data and -workers")
		}
		return runDatalog(queryStr, n, p, epsStr, seed, capC, show, dataStr, addrs)
	}
	q, err := resolveQuery(queryStr, familyStr)
	if err != nil {
		return err
	}
	var db *relation.Database
	if dataStr == "" {
		rng := rand.New(rand.NewPCG(seed, 0xdb))
		db = relation.MatchingDatabase(rng, q, n)
	} else {
		db, err = loadDatabase(q, dataStr)
		if err != nil {
			return err
		}
		n = db.N
	}
	fmt.Printf("query: %s\nn = %d, p = %d, input = %d bits\n", q, n, p, db.InputBits())

	truth, err := core.GroundTruth(q, db)
	if err != nil {
		return err
	}
	switch mode {
	case "auto":
		return runAuto(q, db, p, epsStr, seed, capC, show, planStr, addrs, spareAddrs, maxRepl, pipeline, truth)
	case "one":
		if planStr != "" {
			return fmt.Errorf("-plan only applies to -mode auto")
		}
		eps := -1.0
		if epsStr != "" {
			r, err := parseRat(epsStr)
			if err != nil {
				return err
			}
			eps, _ = r.Float64()
		}
		res, err := core.EvaluateOneRound(q, db, p, core.OneRoundOptions{
			Epsilon: eps, CapConstant: capC, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("one round (HyperCube), shares %s\n", res.Shares)
		fmt.Printf("answers: %d / %d ground truth\n", len(res.Answers), len(truth))
		fmt.Printf("max load: %d tuples, %d bits (cap %d, exceeded: %v)\n",
			res.Stats.MaxLoadTuples(), res.Stats.MaxLoadBits(), res.ReceiveCap, res.CapExceeded)
		fmt.Printf("replication: %.2fx input\n", res.Stats.Replication(db.InputBits()))
		printAnswers(q, res.Answers, show)
	case "multi":
		if planStr != "" {
			return fmt.Errorf("-plan only applies to -mode auto")
		}
		epsRat := big.NewRat(0, 1)
		if epsStr != "" {
			epsRat, err = parseRat(epsStr)
			if err != nil {
				return err
			}
		}
		res, err := core.EvaluateMultiRound(q, db, p, epsRat, core.MultiRoundOptions{
			CapConstant: capC, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("multi round at ε=%s: %d rounds\n", epsRat.RatString(), res.Rounds)
		fmt.Printf("answers: %d / %d ground truth\n", len(res.Answers), len(truth))
		fmt.Printf("max load: %d tuples/round, total %d bits (cap exceeded: %v)\n",
			res.Stats.MaxLoadTuples(), res.Stats.TotalBits(), res.CapExceeded)
		printAnswers(q, res.Answers, show)
	default:
		return fmt.Errorf("unknown -mode %q (want auto, one or multi)", mode)
	}
	return nil
}

// runAuto is the planner-driven path: collect statistics, build the
// plan, apply any -plan override, EXPLAIN, execute (in process, or
// distributed over a TCP worker pool when addrs are given), report.
func runAuto(q *query.Query, db *relation.Database, p int, epsStr string, seed uint64, capC float64, show int, planStr string, addrs, spareAddrs []string, maxRepl int, pipeline bool, truth []relation.Tuple) error {
	var eps *big.Rat
	if epsStr != "" {
		var err error
		if eps, err = parseRat(epsStr); err != nil {
			return err
		}
	}
	stats := relation.CollectStats(db)
	// A caller-supplied cap constant is both enforced at execution and
	// used as the planner's budget factor, so EXPLAIN's verdict and the
	// engine's enforcement agree.
	pl, err := plan.Build(q, stats, plan.Options{P: p, Epsilon: eps, CapFactor: capC})
	if err != nil {
		return err
	}
	if planStr != "" {
		if pl, err = applyPlanOverride(pl, planStr); err != nil {
			return err
		}
	}
	fmt.Print(pl.Explain())
	opts := plan.ExecOptions{Seed: seed, CapConstant: capC, Pipeline: pipeline}
	if len(addrs) > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()
		tr, err := dist.DialTCP(ctx, addrs)
		if err != nil {
			return err
		}
		defer tr.Close()
		opts.Transport = tr
		opts.Context = ctx
		opts.Recovery = dist.RecoveryOptions{
			Enabled:         true,
			MaxReplacements: maxRepl,
			Spares:          spareAddrs,
		}
		fmt.Printf("distributed: %d TCP workers (%s)\n", len(addrs), strings.Join(addrs, ", "))
		if len(spareAddrs) > 0 {
			fmt.Printf("spares: %s\n", strings.Join(spareAddrs, ", "))
		}
	}
	res, err := pl.Execute(db, opts)
	if err != nil {
		return err
	}
	fmt.Printf("executed: %s in %d rounds\n", res.Engine, res.Rounds)
	if res.Replacements > 0 {
		fmt.Printf("recovered: %d worker(s) replaced mid-query\n", res.Replacements)
	}
	fmt.Printf("answers: %d / %d ground truth\n", len(res.Answers), len(truth))
	fmt.Printf("max load: %d tuples (predicted %.0f), total %d bits (cap exceeded: %v)\n",
		res.Stats.MaxLoadTuples(), pl.Cost.LoadTuples, res.Stats.TotalBits(), res.CapExceeded)
	fmt.Printf("replication: %.2fx input\n", res.Stats.Replication(db.InputBits()))
	printAnswers(q, res.Answers, show)
	return nil
}

// applyPlanOverride parses the -plan flag: semicolon-separated
// key=value pairs, keys "engine" (one|multi|skew) and "shares"
// (comma-separated var:dim). Shares imply the one-round engine.
func applyPlanOverride(pl *plan.Plan, s string) (*plan.Plan, error) {
	engine := ""
	var shares *hypercube.Shares
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.Index(part, "=")
		if eq <= 0 {
			return nil, fmt.Errorf("bad -plan entry %q (want key=value)", part)
		}
		key, val := strings.TrimSpace(part[:eq]), strings.TrimSpace(part[eq+1:])
		switch key {
		case "engine":
			engine = val
		case "shares":
			parsed, err := parseShares(val)
			if err != nil {
				return nil, err
			}
			shares = parsed
		default:
			return nil, fmt.Errorf("unknown -plan key %q (want engine or shares)", key)
		}
	}
	if shares != nil {
		if engine != "" && engine != "one" {
			return nil, fmt.Errorf("-plan shares imply engine=one, got engine=%s", engine)
		}
		return pl.WithShares(shares)
	}
	switch engine {
	case "one":
		return pl.WithEngine(plan.OneRound)
	case "multi":
		return pl.WithEngine(plan.MultiRound)
	case "skew":
		return pl.WithEngine(plan.SkewJoin)
	case "":
		return nil, fmt.Errorf("-plan needs engine= or shares=")
	default:
		return nil, fmt.Errorf("unknown engine %q (want one, multi or skew)", engine)
	}
}

// parseShares reads "x:4,y:4,z:2" into a share vector.
func parseShares(s string) (*hypercube.Shares, error) {
	out := &hypercube.Shares{}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		colon := strings.Index(pair, ":")
		if colon <= 0 || colon == len(pair)-1 {
			return nil, fmt.Errorf("bad share %q (want var:dim)", pair)
		}
		d, err := strconv.Atoi(pair[colon+1:])
		if err != nil || d < 1 {
			return nil, fmt.Errorf("bad share dimension in %q", pair)
		}
		out.Vars = append(out.Vars, pair[:colon])
		out.Dims = append(out.Dims, d)
	}
	if len(out.Vars) == 0 {
		return nil, fmt.Errorf("empty shares")
	}
	return out, nil
}

func printAnswers(q *query.Query, answers []relation.Tuple, show int) {
	if show <= 0 {
		return
	}
	fmt.Printf("sample answers over (%s):\n", strings.Join(q.Vars(), ","))
	for i, t := range answers {
		if i >= show {
			fmt.Printf("  … %d more\n", len(answers)-show)
			break
		}
		fmt.Printf("  %v\n", t)
	}
}

// loadDatabase reads 'Rel=file.csv' pairs and validates them against
// the query's atoms.
func loadDatabase(q *query.Query, dataStr string) (*relation.Database, error) {
	files := map[string]string{}
	for _, pair := range strings.Split(dataStr, ",") {
		eq := strings.Index(pair, "=")
		if eq <= 0 || eq == len(pair)-1 {
			return nil, fmt.Errorf("bad -data entry %q (want Rel=file.csv)", pair)
		}
		files[strings.TrimSpace(pair[:eq])] = strings.TrimSpace(pair[eq+1:])
	}
	maxVal := 1
	var rels []*relation.Relation
	for _, a := range q.Atoms {
		path, ok := files[a.Name]
		if !ok {
			return nil, fmt.Errorf("-data missing relation %s", a.Name)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		rel, err := relation.ReadCSV(f, a.Name)
		f.Close()
		if err != nil {
			return nil, err
		}
		if rel.Arity() != a.Arity() {
			return nil, fmt.Errorf("relation %s from %s has arity %d, atom needs %d",
				a.Name, path, rel.Arity(), a.Arity())
		}
		// Align the schema with the atom's variables.
		rel.Attrs = append([]string(nil), a.Vars...)
		if mv := rel.MaxValue(); mv > maxVal {
			maxVal = mv
		}
		rels = append(rels, rel)
	}
	db := relation.NewDatabase(maxVal)
	for _, rel := range rels {
		db.AddRelation(rel)
	}
	return db, nil
}

// runDatalog evaluates a Datalog program: EDB relations from -data
// CSVs or generated uniform over [n], rule bodies through the planner,
// recursive strata semi-naive over warm maintainers.
func runDatalog(src string, n, p int, epsStr string, seed uint64, capC float64, show int, dataStr string, addrs []string) error {
	prog, err := datalog.Parse(src)
	if err != nil {
		return err
	}
	var eps *big.Rat
	if epsStr != "" {
		if eps, err = parseRat(epsStr); err != nil {
			return err
		}
	}
	db, err := datalogDB(prog, n, seed, dataStr)
	if err != nil {
		return err
	}
	fmt.Printf("program:\n%s", prog.String())
	fmt.Printf("edb: %s, idb: %s\n", strings.Join(prog.EDBPreds(), ", "), strings.Join(prog.IDBPreds(), ", "))
	for i, s := range prog.Strata() {
		kind := "rules"
		if s.Recursive {
			kind = "recursive (semi-naive fixpoint)"
		}
		fmt.Printf("stratum %d: %s — %d %s\n", i, strings.Join(s.Preds, ", "), len(s.Rules), kind)
	}
	fmt.Printf("n = %d, p = %d, input = %d bits\n", db.N, p, db.InputBits())

	opts := datalog.Options{P: p, Epsilon: eps, CapConstant: capC, Seed: seed}
	if len(addrs) > 0 {
		if p != len(addrs) {
			fmt.Printf("note: -workers fixes p to the pool size %d (ignoring -p %d)\n", len(addrs), p)
			opts.P = len(addrs)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()
		opts.Context = ctx
		opts.Dial = func(int) (dist.Transport, error) { return dist.DialTCP(ctx, addrs) }
		fmt.Printf("distributed: %d TCP workers (%s)\n", len(addrs), strings.Join(addrs, ", "))
	}
	res, err := datalog.Eval(prog, db, opts)
	if err != nil {
		return err
	}
	fmt.Printf("evaluated: %d communication rounds, %d fixpoint iterations\n", res.Stats.NumRounds(), res.Iterations)
	fmt.Printf("answers (%s): %d facts\n", prog.OutputPred(), len(res.Answers))
	fmt.Printf("max load: %d tuples, total %d bits (cap exceeded: %v)\n",
		res.Stats.MaxLoadTuples(), res.Stats.TotalBits(), res.CapExceeded)
	if show > 0 {
		fmt.Printf("sample answers over (%s):\n", strings.Join(res.Vars, ","))
		for i, t := range res.Answers {
			if i >= show {
				fmt.Printf("  … %d more\n", len(res.Answers)-show)
				break
			}
			fmt.Printf("  %v\n", t)
		}
	}
	return nil
}

// datalogDB builds the EDB database: CSVs from -data, or n uniform
// tuples per EDB relation over [n].
func datalogDB(prog *datalog.Program, n int, seed uint64, dataStr string) (*relation.Database, error) {
	if dataStr == "" {
		rng := rand.New(rand.NewPCG(seed, 0xdb))
		db := relation.NewDatabase(n)
		for _, pred := range prog.EDBPreds() {
			arity, _ := prog.Arity(pred)
			attrs := make([]string, arity)
			for i := range attrs {
				attrs[i] = fmt.Sprintf("c%d", i)
			}
			rel := relation.New(pred, attrs...)
			rel.Tuples = make([]relation.Tuple, n)
			for i := range rel.Tuples {
				t := make(relation.Tuple, arity)
				for j := range t {
					t[j] = rng.IntN(n) + 1
				}
				rel.Tuples[i] = t
			}
			db.AddRelation(rel)
		}
		return db, nil
	}
	files := map[string]string{}
	for _, pair := range strings.Split(dataStr, ",") {
		eq := strings.Index(pair, "=")
		if eq <= 0 || eq == len(pair)-1 {
			return nil, fmt.Errorf("bad -data entry %q (want Rel=file.csv)", pair)
		}
		files[strings.TrimSpace(pair[:eq])] = strings.TrimSpace(pair[eq+1:])
	}
	maxVal := 1
	var rels []*relation.Relation
	for _, pred := range prog.EDBPreds() {
		path, ok := files[pred]
		if !ok {
			return nil, fmt.Errorf("-data missing EDB relation %s", pred)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		rel, err := relation.ReadCSV(f, pred)
		f.Close()
		if err != nil {
			return nil, err
		}
		want, _ := prog.Arity(pred)
		if rel.Arity() != want {
			return nil, fmt.Errorf("relation %s from %s has arity %d, program needs %d", pred, path, rel.Arity(), want)
		}
		if mv := rel.MaxValue(); mv > maxVal {
			maxVal = mv
		}
		rels = append(rels, rel)
	}
	db := relation.NewDatabase(maxVal)
	for _, rel := range rels {
		db.AddRelation(rel)
	}
	return db, nil
}

func resolveQuery(queryStr, familyStr string) (*query.Query, error) {
	switch {
	case queryStr != "" && familyStr != "":
		return nil, fmt.Errorf("use either -query or -family, not both")
	case queryStr != "":
		return query.Parse(queryStr)
	case familyStr != "":
		return query.ParseFamily(familyStr)
	default:
		return nil, fmt.Errorf("one of -query or -family is required")
	}
}

func parseRat(s string) (*big.Rat, error) {
	r := new(big.Rat)
	if _, ok := r.SetString(s); !ok {
		return nil, fmt.Errorf("cannot parse %q as a rational", s)
	}
	if r.Sign() < 0 || r.Cmp(big.NewRat(1, 1)) >= 0 {
		return nil, fmt.Errorf("ε = %s outside [0,1)", r.RatString())
	}
	return r, nil
}
