package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunOneRoundMode(t *testing.T) {
	if err := run("", "C3", 200, 8, "one", "", 1, 0, 2, ""); err != nil {
		t.Fatal(err)
	}
	// Explicit epsilon.
	if err := run("", "L3", 100, 8, "one", "1/2", 1, 0, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiMode(t *testing.T) {
	if err := run("", "L4", 80, 8, "multi", "", 1, 0, 1, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("", "L16", 50, 8, "multi", "1/2", 1, 0, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", 10, 4, "one", "", 1, 0, 0, ""); err == nil {
		t.Error("want error: no query")
	}
	if err := run("R(x)", "L2", 10, 4, "one", "", 1, 0, 0, ""); err == nil {
		t.Error("want error: both query and family")
	}
	if err := run("", "L2", 10, 4, "bogus", "", 1, 0, 0, ""); err == nil {
		t.Error("want error: unknown mode")
	}
	if err := run("", "L2", 10, 4, "one", "nope", 1, 0, 0, ""); err == nil {
		t.Error("want error: bad epsilon")
	}
	if err := run("", "L2", 10, 4, "multi", "3/2", 1, 0, 0, ""); err == nil {
		t.Error("want error: epsilon out of range")
	}
}

func TestRunWithCSVData(t *testing.T) {
	dir := t.TempDir()
	rPath := filepath.Join(dir, "r.csv")
	sPath := filepath.Join(dir, "s.csv")
	if err := os.WriteFile(rPath, []byte("x,y\n1,2\n3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sPath, []byte("y,z\n2,5\n4,6\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	data := "R=" + rPath + ",S=" + sPath
	if err := run("q(x,y,z) = R(x,y), S(y,z)", "", 0, 4, "one", "1/2", 1, 0, 10, data); err != nil {
		t.Fatal(err)
	}
	// Missing relation in -data.
	if err := run("q(x,y,z) = R(x,y), S(y,z)", "", 0, 4, "one", "", 1, 0, 0, "R="+rPath); err == nil {
		t.Error("want error: S missing from -data")
	}
	// Malformed pair.
	if err := run("q(x,y) = R(x,y)", "", 0, 4, "one", "", 1, 0, 0, "R"); err == nil {
		t.Error("want error: malformed -data")
	}
	// Nonexistent file.
	if err := run("q(x,y) = R(x,y)", "", 0, 4, "one", "", 1, 0, 0, "R="+filepath.Join(dir, "nope.csv")); err == nil {
		t.Error("want error: missing file")
	}
	// Arity mismatch.
	if err := run("q(x,y,z) = R(x,y,z)", "", 0, 4, "one", "", 1, 0, 0, "R="+rPath); err == nil {
		t.Error("want error: arity mismatch")
	}
}

func TestParseFamilyRun(t *testing.T) {
	for _, good := range []string{"L3", "C5", "T2", "SP3", "B3_2"} {
		if _, err := parseFamily(good); err != nil {
			t.Errorf("parseFamily(%q): %v", good, err)
		}
	}
	for _, bad := range []string{"", "Q1", "L", "B1", "SPz"} {
		if _, err := parseFamily(bad); err == nil {
			t.Errorf("parseFamily(%q): want error", bad)
		}
	}
}
