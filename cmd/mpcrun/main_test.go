package main

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dist"
)

// TestRunDistributed drives the -workers path end to end against an
// in-process TCP worker pool (the exact cmd/mpcworker serving code).
func TestRunDistributed(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var addrs []string
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, ln.Addr().String())
		go dist.Serve(ctx, ln)
	}
	if err := run("", "C3", 150, 8, "auto", "", 1, 0, 0, "", "", strings.Join(addrs, ","), "", 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunAutoMode(t *testing.T) {
	// Planner-driven default on a cyclic and an acyclic family.
	if err := run("", "C3", 200, 8, "auto", "", 1, 0, 2, "", "", "", "", 0, false); err != nil {
		t.Fatal(err)
	}
	if err := run("", "L3", 100, 8, "auto", "", 1, 0, 0, "", "", "", "", 0, false); err != nil {
		t.Fatal(err)
	}
	// Fixed ε that forces the multiround engine.
	if err := run("", "L4", 100, 16, "auto", "0", 1, 0, 0, "", "", "", "", 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlanOverrides(t *testing.T) {
	if err := run("", "C3", 100, 27, "auto", "", 1, 0, 0, "", "shares=x1:3,x2:3,x3:3", "", "", 0, false); err != nil {
		t.Fatal(err)
	}
	if err := run("", "C3", 100, 27, "auto", "", 1, 0, 0, "", "engine=multi", "", "", 0, false); err != nil {
		t.Fatal(err)
	}
	if err := run("q(x,y,z) = R(x,y), S(y,z)", "", 100, 8, "auto", "", 1, 0, 0, "", "engine=skew", "", "", 0, false); err != nil {
		t.Fatal(err)
	}
	// Invalid overrides.
	for _, bad := range []string{
		"engine=warp",                         // unknown engine
		"shares=x1:3",                         // missing variables
		"shares=x1:0,x2:3",                    // bad dimension
		"gibberish",                           // not key=value
		"zzz=1",                               // unknown key
		"engine=multi;shares=x1:27,x2:1,x3:1", // conflicting
		"engine=skew;shares=x1:27,x2:1,x3:1",  // conflicting
	} {
		if err := run("", "C3", 50, 27, "auto", "", 1, 0, 0, "", bad, "", "", 0, false); err == nil {
			t.Errorf("-plan %q: want error", bad)
		}
	}
	// -plan is auto-only.
	if err := run("", "C3", 50, 8, "one", "", 1, 0, 0, "", "engine=one", "", "", 0, false); err == nil {
		t.Error("-plan with -mode one: want error")
	}
}

func TestRunOneRoundMode(t *testing.T) {
	if err := run("", "C3", 200, 8, "one", "", 1, 0, 2, "", "", "", "", 0, false); err != nil {
		t.Fatal(err)
	}
	// Explicit epsilon.
	if err := run("", "L3", 100, 8, "one", "1/2", 1, 0, 0, "", "", "", "", 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiMode(t *testing.T) {
	if err := run("", "L4", 80, 8, "multi", "", 1, 0, 1, "", "", "", "", 0, false); err != nil {
		t.Fatal(err)
	}
	if err := run("", "L16", 50, 8, "multi", "1/2", 1, 0, 0, "", "", "", "", 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", 10, 4, "one", "", 1, 0, 0, "", "", "", "", 0, false); err == nil {
		t.Error("want error: no query")
	}
	if err := run("R(x)", "L2", 10, 4, "one", "", 1, 0, 0, "", "", "", "", 0, false); err == nil {
		t.Error("want error: both query and family")
	}
	if err := run("", "L2", 10, 4, "bogus", "", 1, 0, 0, "", "", "", "", 0, false); err == nil {
		t.Error("want error: unknown mode")
	}
	if err := run("", "L2", 10, 4, "one", "nope", 1, 0, 0, "", "", "", "", 0, false); err == nil {
		t.Error("want error: bad epsilon")
	}
	if err := run("", "L2", 10, 4, "multi", "3/2", 1, 0, 0, "", "", "", "", 0, false); err == nil {
		t.Error("want error: epsilon out of range")
	}
	if err := run("", "L2", 10, 4, "auto", "nope", 1, 0, 0, "", "", "", "", 0, false); err == nil {
		t.Error("want error: bad epsilon in auto mode")
	}
}

func TestRunWithCSVData(t *testing.T) {
	dir := t.TempDir()
	rPath := filepath.Join(dir, "r.csv")
	sPath := filepath.Join(dir, "s.csv")
	if err := os.WriteFile(rPath, []byte("x,y\n1,2\n3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sPath, []byte("y,z\n2,5\n4,6\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	data := "R=" + rPath + ",S=" + sPath
	// Planner-driven over CSV data.
	if err := run("q(x,y,z) = R(x,y), S(y,z)", "", 0, 4, "auto", "", 1, 0, 10, data, "", "", "", 0, false); err != nil {
		t.Fatal(err)
	}
	if err := run("q(x,y,z) = R(x,y), S(y,z)", "", 0, 4, "one", "1/2", 1, 0, 10, data, "", "", "", 0, false); err != nil {
		t.Fatal(err)
	}
	// Missing relation in -data.
	if err := run("q(x,y,z) = R(x,y), S(y,z)", "", 0, 4, "one", "", 1, 0, 0, "R="+rPath, "", "", "", 0, false); err == nil {
		t.Error("want error: S missing from -data")
	}
	// Malformed pair.
	if err := run("q(x,y) = R(x,y)", "", 0, 4, "one", "", 1, 0, 0, "R", "", "", "", 0, false); err == nil {
		t.Error("want error: malformed -data")
	}
	// Nonexistent file.
	if err := run("q(x,y) = R(x,y)", "", 0, 4, "one", "", 1, 0, 0, "R="+filepath.Join(dir, "nope.csv"), "", "", "", 0, false); err == nil {
		t.Error("want error: missing file")
	}
	// Arity mismatch.
	if err := run("q(x,y,z) = R(x,y,z)", "", 0, 4, "one", "", 1, 0, 0, "R="+rPath, "", "", "", 0, false); err == nil {
		t.Error("want error: arity mismatch")
	}
}

func TestParseShares(t *testing.T) {
	s, err := parseShares("x:4,y:2")
	if err != nil || len(s.Vars) != 2 || s.Dims[0] != 4 || s.Dims[1] != 2 {
		t.Fatalf("parseShares = %v, %v", s, err)
	}
	for _, bad := range []string{"", "x", "x:", ":3", "x:zero", "x:-1"} {
		if _, err := parseShares(bad); err == nil {
			t.Errorf("parseShares(%q): want error", bad)
		}
	}
}

// TestRunFlagValidation checks the hard rejections: non-positive -p
// and -n, empty queries, and unknown engine names must produce a clear
// error (the CLI turns it into a non-zero exit), never a panic or a
// silent default.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"p zero", func() error { return run("", "C3", 100, 0, "auto", "", 1, 0, 0, "", "", "", "", 0, false) }},
		{"p negative", func() error { return run("", "C3", 100, -4, "one", "", 1, 0, 0, "", "", "", "", 0, false) }},
		{"n zero", func() error { return run("", "C3", 0, 8, "auto", "", 1, 0, 0, "", "", "", "", 0, false) }},
		{"empty query", func() error { return run("", "", 100, 8, "auto", "", 1, 0, 0, "", "", "", "", 0, false) }},
		{"both query and family", func() error { return run("R(x,y)", "C3", 100, 8, "auto", "", 1, 0, 0, "", "", "", "", 0, false) }},
		{"unparsable query", func() error { return run("R(x,", "", 100, 8, "auto", "", 1, 0, 0, "", "", "", "", 0, false) }},
		{"unknown family", func() error { return run("", "Q9", 100, 8, "auto", "", 1, 0, 0, "", "", "", "", 0, false) }},
		{"unknown mode", func() error { return run("", "C3", 100, 8, "warp", "", 1, 0, 0, "", "", "", "", 0, false) }},
		{"unknown plan engine", func() error { return run("", "C3", 100, 8, "auto", "", 1, 0, 0, "", "engine=warp", "", "", 0, false) }},
		{"bad eps", func() error { return run("", "C3", 100, 8, "auto", "2", 1, 0, 0, "", "", "", "", 0, false) }},
		{"workers outside auto", func() error { return run("", "C3", 100, 8, "one", "", 1, 0, 0, "", "", "localhost:9001", "", 0, false) }},
		{"empty worker address", func() error {
			return run("", "C3", 100, 8, "auto", "", 1, 0, 0, "", "", "localhost:9001,,localhost:9002", "", 0, false)
		}},
		{"unreachable workers", func() error { return run("", "C3", 50, 8, "auto", "", 1, 0, 0, "", "", "127.0.0.1:1", "", 0, false) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.err(); err == nil {
				t.Errorf("want error, got nil")
			}
		})
	}
}
