package main

import (
	"context"
	"net"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/exchange"
	"repro/internal/relation"
)

func TestRunValidation(t *testing.T) {
	if err := run("", true); err == nil || !strings.Contains(err.Error(), "-listen") {
		t.Fatalf("empty -listen accepted: %v", err)
	}
	if err := run("not-an-address", true); err == nil {
		t.Fatal("malformed -listen accepted")
	}
}

// TestServeSession drives a real session against the exact serving
// path the binary runs (listener + dist.Serve).
func TestServeSession(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go dist.Serve(ctx, ln)

	tr, err := dist.DialTCP(ctx, []string{ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	buf := exchange.NewBuffer(2)
	buf.Append(relation.Tuple{1, 2})
	buf.Append(relation.Tuple{2, 3})
	buf.Seal()
	if err := tr.Deliver(ctx, 1, []exchange.Delivery{{To: 0, Rel: "R", Buf: buf}}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Barrier(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Join(ctx, dist.JoinSpec{Query: "q(x,y) = R(x,y)", View: "out"}); err != nil {
		t.Fatal(err)
	}
	runs, err := tr.Gather(ctx, "out")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range runs {
		total += r.Len()
	}
	if total != 2 {
		t.Fatalf("gathered %d tuples, want 2", total)
	}
}
