// Command mpcworker is one worker process of the distributed MPC(ε)
// runtime (internal/dist). It listens for coordinator connections and
// serves each as an isolated session: receive columnar runs, ack
// round barriers, evaluate local joins, stream gathered views back.
//
// Usage:
//
//	mpcworker -listen :9001
//
// A pool is just N processes:
//
//	for port in 9001 9002 9003 9004; do mpcworker -listen :$port & done
//	mpcrun -family C3 -n 10000 -workers localhost:9001,localhost:9002,localhost:9003,localhost:9004
//
// One process serves any number of concurrent coordinator sessions
// (e.g. parallel mpcserve queries): every connection has its own
// store, dropped when the connection closes. The process exits
// cleanly on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/dist"
)

func main() {
	var (
		listen = flag.String("listen", ":9001", "TCP listen address")
		quiet  = flag.Bool("quiet", false, "suppress the startup line")
	)
	flag.Parse()
	if err := run(*listen, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "mpcworker:", err)
		os.Exit(1)
	}
}

// run listens and serves until a termination signal.
func run(listen string, quiet bool) error {
	if listen == "" {
		return fmt.Errorf("empty -listen address")
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	if !quiet {
		// The resolved address matters with ":0" (tests, scripted pools
		// picking free ports).
		fmt.Printf("mpcworker listening on %s\n", ln.Addr())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return dist.Serve(ctx, ln)
}
