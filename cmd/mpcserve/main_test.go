package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/serve"
)

func TestBuildValidation(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"p zero", func() error { _, err := build(0, 1024, 0, 8, 0, 8, 10, "", "", 0, nil, nil, nil); return err }},
		{"p negative", func() error { _, err := build(-2, 1024, 0, 8, 0, 8, 10, "", "", 0, nil, nil, nil); return err }},
		{"max-p below p", func() error { _, err := build(64, 8, 0, 8, 0, 8, 10, "", "", 0, nil, nil, nil); return err }},
		{"no workers", func() error { _, err := build(8, 64, 0, 0, 0, 8, 10, "", "", 0, nil, nil, nil); return err }},
		{"no cache", func() error { _, err := build(8, 64, 0, 8, 0, 0, 10, "", "", 0, nil, nil, nil); return err }},
		{"spares without workers", func() error {
			_, err := build(8, 64, 0, 8, 0, 8, 10, "", "localhost:9009", 0, nil, nil, nil)
			return err
		}},
		{"bad dataset spec", func() error {
			_, err := build(8, 64, 0, 8, 0, 8, 10, "", "", 0, []string{"noname"}, nil, nil)
			return err
		}},
		{"missing csv file", func() error {
			_, err := build(8, 64, 0, 8, 0, 8, 10, "", "", 0, []string{"d:R=/does/not/exist.csv"}, nil, nil)
			return err
		}},
		{"bad gen spec", func() error { _, err := build(8, 64, 0, 8, 0, 8, 10, "", "", 0, nil, []string{"tri"}, nil); return err }},
		{"gen unknown key", func() error {
			_, err := build(8, 64, 0, 8, 0, 8, 10, "", "", 0, nil, []string{"tri:warp=1"}, nil)
			return err
		}},
		{"gen zero n", func() error {
			_, err := build(8, 64, 0, 8, 0, 8, 10, "", "", 0, nil, []string{"tri:family=C3,n=0"}, nil)
			return err
		}},
		{"gen unknown kind", func() error {
			_, err := build(8, 64, 0, 8, 0, 8, 10, "", "", 0, nil, []string{"tri:family=C3,n=10,kind=warp"}, nil)
			return err
		}},
		{"duplicate dataset name", func() error {
			_, err := build(8, 64, 0, 8, 0, 8, 10, "", "", 0, nil,
				[]string{"tri:family=C3,n=10", "tri:family=C3,n=20"}, nil)
			return err
		}},
		{"tenant no key", func() error {
			_, err := build(8, 64, 0, 8, 0, 8, 10, "", "", 0, nil, nil, []string{"acme:qps=2"})
			return err
		}},
		{"tenant bad value", func() error {
			_, err := build(8, 64, 0, 8, 0, 8, 10, "", "", 0, nil, nil, []string{"acme:key=k,qps=fast"})
			return err
		}},
		{"tenant unknown key", func() error {
			_, err := build(8, 64, 0, 8, 0, 8, 10, "", "", 0, nil, nil, []string{"acme:key=k,warp=1"})
			return err
		}},
		{"tenant duplicate key", func() error {
			_, err := build(8, 64, 0, 8, 0, 8, 10, "", "", 0, nil, nil,
				[]string{"acme:key=k", "biz:key=k"})
			return err
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.err(); err == nil {
				t.Errorf("want error, got nil")
			}
		})
	}
}

func TestBuildPreloadsAndServes(t *testing.T) {
	// One generated dataset plus one loaded from a CSV file on disk.
	dir := t.TempDir()
	path := filepath.Join(dir, "r.csv")
	if err := os.WriteFile(path, []byte("x,y\n1,2\n2,3\n3,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := build(8, 64, 0, 8, 0, 8, 10, "", "", 0,
		[]string{"edges:R=" + path},
		[]string{"tri:family=C3,n=50,seed=3"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := srv.Registry().Names()
	if len(names) != 2 || names[0] != "edges" || names[1] != "tri" {
		t.Fatalf("registry names = %v", names)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// L2 joins two of the matchings: exactly n answers, always.
	body, _ := json.Marshal(serve.QueryRequest{Dataset: "tri", Family: "L2"})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: status %d", resp.StatusCode)
	}
	var out serve.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.AnswerCount != 50 || out.Engine == "" {
		t.Fatalf("want 50 answers and an engine, got: %+v", out)
	}
}

func TestBuildMultiTenant(t *testing.T) {
	srv, err := build(8, 64, 0, 8, 0, 8, 10, "", "", 0, nil,
		[]string{"tri:family=C3,n=50,seed=3"},
		[]string{"acme:key=ka,qps=2,burst=3,load=100000,bytes=1048576", "biz:key=kb"})
	if err != nil {
		t.Fatal(err)
	}
	ten, ok := srv.Tenants().Get("acme")
	if !ok {
		t.Fatal("tenant acme not registered")
	}
	if cfg := ten.Config(); cfg.QPS != 2 || cfg.Burst != 3 || cfg.MaxInFlightLoad != 100000 || cfg.MaxResidentBytes != 1048576 {
		t.Fatalf("acme config = %+v", cfg)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body, _ := json.Marshal(serve.QueryRequest{Dataset: "tri", Family: "L2"})

	// No key: 401. Valid key: 200 with the tenant echoed.
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated POST /query: status %d, want 401", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer kb")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated POST /query: status %d, want 200", resp.StatusCode)
	}
	var out serve.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Tenant != "biz" || out.QueryID == "" {
		t.Fatalf("response tenant %q, queryID %q", out.Tenant, out.QueryID)
	}

	// The operator surface stays open.
	for _, path := range []string{"/healthz", "/metrics", "/ops", "/ui", "/trace"} {
		r2, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, r2.StatusCode)
		}
	}
}

func TestGenerateDatasetZipf(t *testing.T) {
	name, db, err := generateDataset("skewed:query=R(x,y),S(y,z),n=200,seed=2,kind=zipf,skew=1.3")
	if err != nil {
		t.Fatal(err)
	}
	if name != "skewed" {
		t.Fatalf("name = %q", name)
	}
	r, ok := db.Relation("R")
	if !ok || r.Size() != 200 {
		t.Fatalf("R missing or wrong size")
	}
}
