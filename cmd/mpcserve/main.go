// Command mpcserve runs the long-running multi-query MPC(ε) service:
// an HTTP/JSON front end (internal/serve) over the statistics-driven
// planner and the columnar exchange engines. Datasets are loaded once
// and kept resident; compiled plans and collected statistics are
// cached across requests; a bounded worker pool admission-controls
// concurrent executions under a global predicted-load budget.
//
// Usage:
//
//	mpcserve -addr :8377 -gen 'tri:family=C3,n=10000,seed=1'
//	mpcserve -dataset 'edges:R=r.csv,S=s.csv' -p 64 -max-concurrent 128
//	mpcserve -gen 'tri:family=C3,n=10000' -workers localhost:9001,localhost:9002
//
// With -workers, cached plans execute against the distributed TCP
// worker pool (cmd/mpcworker) instead of the in-process loopback: p
// becomes the pool size and each query dials its own isolated worker
// session, so concurrent queries share the pool safely. With -spares,
// the pool self-heals: a worker that dies mid-query is replaced by a
// standby and the query resumes from its last checkpointed round,
// while a background reconciler (-reconcile) heartbeats the pool and
// promotes spares for members that stop answering.
//
// Endpoints:
//
//	POST /query                  {"dataset":"tri","family":"C3"}          answers + EXPLAIN + round stats
//	GET  /datasets                                                        registry listing (with versions)
//	POST /datasets               {"name":"d2","generator":{"family":"C3","n":1000}}
//	POST /datasets/{name}/delta  {"appends":{"S1":[[1,7]]},"deletes":{}}  streaming ingest: copy-on-write
//	                             version bump, incremental statistics, continuous-query maintenance
//	GET  /continuous                                                      continuous-query listing
//	POST /continuous             {"name":"live","dataset":"tri","family":"C3"}
//	GET  /continuous/{name}                                               warm materialized answers (no execution)
//	DELETE /continuous/{name}                                             deregister
//	GET  /healthz                                                         liveness + Prometheus metrics
//	GET  /metrics                                                         alias of /healthz
//	GET  /trace                                                           recent execution summaries
//	GET  /trace/{queryID}                                                 full per-round, per-worker span tree
//	GET  /ops                                                             operator JSON (tenants, gate, caches, queries)
//	GET  /ui                                                              live operator console (HTML)
//
// The -dataset flag (repeatable) preloads CSV relations:
// 'name:R=file.csv,S=file.csv'. The -gen flag (repeatable) preloads a
// synthetic dataset: 'name:family=C3,n=10000[,seed=7][,kind=zipf][,skew=1.3]'
// (use query=… instead of family=… for ad-hoc shapes).
//
// The -tenant flag (repeatable) switches the service to multi-tenant
// mode: 'name:key=K[,qps=2][,burst=4][,load=200000][,bytes=16777216]'.
// Data-plane endpoints then require 'Authorization: Bearer K' (or
// X-API-Key), each tenant is rate-limited by a qps/burst token
// bucket, its concurrent queries are bounded by the summed
// plan-predicted load in tuples, and its registered datasets by
// estimated resident bytes; quota breaches return 429 with a
// structured retry-after. The operator surface (/healthz, /metrics,
// /trace, /ops, /ui) stays unauthenticated.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/relation"
	"repro/internal/serve"
)

// repeatableFlag collects repeated string flag occurrences.
type repeatableFlag []string

// String renders the flag value for -help.
func (r *repeatableFlag) String() string { return strings.Join(*r, " ") }

// Set appends one occurrence.
func (r *repeatableFlag) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	var (
		addr      = flag.String("addr", ":8377", "listen address")
		p         = flag.Int("p", 64, "default number of servers per query")
		maxP      = flag.Int("max-p", 1024, "largest accepted per-query p")
		capC      = flag.Float64("cap", 0, "planner budget constant c in c·N/p^{1−ε} (0: planner default)")
		workers   = flag.Int("max-concurrent", 128, "admission gate: max in-flight query executions")
		budget    = flag.Int64("load-budget", 0, "admission gate: global predicted-load budget in tuples (0: unbounded)")
		cache     = flag.Int("cache", 128, "plan cache capacity (compiled plans)")
		answers   = flag.Int("max-answers", 100, "default per-response answer cap")
		pool      = flag.String("workers", "", "comma-separated mpcworker addresses; execute queries on this distributed TCP pool (p becomes the pool size)")
		spares    = flag.String("spares", "", "comma-separated standby mpcworker addresses; dead pool members are replaced by spares mid-query and by the background reconciler")
		maxRepl   = flag.Int("max-replace", 0, "max worker replacements per query execution (0: pool size)")
		reconcile = flag.Duration("reconcile", 5*time.Second, "worker pool heartbeat interval (0 disables the background reconciler)")
		datas     repeatableFlag
		gens      repeatableFlag
		tenants   repeatableFlag
	)
	flag.Var(&datas, "dataset", "preload CSV dataset 'name:R=file.csv,S=file.csv' (repeatable)")
	flag.Var(&gens, "gen", "preload generated dataset 'name:family=C3,n=10000[,seed=7][,kind=zipf][,skew=1.3]' (repeatable)")
	flag.Var(&tenants, "tenant", "declare a tenant 'name:key=K[,qps=2][,burst=4][,load=200000][,bytes=16777216]' (repeatable; enables API-key auth and per-tenant quotas)")
	flag.Parse()
	srv, err := build(*p, *maxP, *capC, *workers, *budget, *cache, *answers, *pool, *spares, *maxRepl, datas, gens, tenants)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcserve:", err)
		os.Exit(1)
	}
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "mpcserve: empty -addr")
		os.Exit(1)
	}
	if reg := srv.Pool(); reg != nil && *reconcile > 0 {
		// Background membership heartbeats: dead members are swapped
		// for spares without waiting for a query to trip over them.
		go reg.Run(context.Background(), *reconcile)
	}
	fmt.Printf("mpcserve listening on %s (datasets: %s)\n", *addr, strings.Join(srv.Registry().Names(), ", "))
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "mpcserve:", err)
		os.Exit(1)
	}
}

// build validates the flags and assembles the server with all
// preloaded datasets. It is main without the listener, so tests can
// drive it.
func build(p, maxP int, capC float64, workers int, budget int64, cache, answers int, pool, spares string, maxRepl int, datas, gens, tenants []string) (*serve.Server, error) {
	if p < 1 {
		return nil, fmt.Errorf("-p = %d, need ≥ 1", p)
	}
	tenantCfgs := make([]serve.TenantConfig, 0, len(tenants))
	for _, spec := range tenants {
		cfg, err := parseTenant(spec)
		if err != nil {
			return nil, fmt.Errorf("-tenant %q: %w", spec, err)
		}
		tenantCfgs = append(tenantCfgs, cfg)
	}
	if _, err := serve.NewTenants(tenantCfgs); len(tenantCfgs) > 0 && err != nil {
		return nil, err
	}
	poolAddrs, err := dist.ParseAddrs(pool)
	if err != nil {
		return nil, err
	}
	spareAddrs, err := dist.ParseAddrs(spares)
	if err != nil {
		return nil, err
	}
	if len(spareAddrs) > 0 && len(poolAddrs) == 0 {
		return nil, fmt.Errorf("-spares requires -workers")
	}
	if len(poolAddrs) > 0 {
		// The distributed pool fixes the cluster size (withDefaults
		// also reconciles MaxP for library users).
		p = len(poolAddrs)
	}
	if len(poolAddrs) == 0 && maxP < p {
		return nil, fmt.Errorf("-max-p = %d smaller than -p = %d", maxP, p)
	}
	if workers < 1 {
		return nil, fmt.Errorf("-max-concurrent = %d, need ≥ 1", workers)
	}
	if cache < 1 {
		return nil, fmt.Errorf("-cache = %d, need ≥ 1", cache)
	}
	srv := serve.New(serve.Config{
		DefaultP:         p,
		MaxP:             maxP,
		CapFactor:        capC,
		MaxConcurrent:    workers,
		LoadBudgetTuples: budget,
		CacheSize:        cache,
		MaxAnswers:       answers,
		WorkerAddrs:      poolAddrs,
		SpareAddrs:       spareAddrs,
		MaxReplacements:  maxRepl,
		Tenants:          tenantCfgs,
	})
	for _, spec := range datas {
		name, db, err := loadCSVDataset(spec)
		if err != nil {
			return nil, fmt.Errorf("-dataset %q: %w", spec, err)
		}
		if _, err := srv.Registry().Add(name, db); err != nil {
			return nil, err
		}
	}
	for _, spec := range gens {
		name, db, err := generateDataset(spec)
		if err != nil {
			return nil, fmt.Errorf("-gen %q: %w", spec, err)
		}
		if _, err := srv.Registry().Add(name, db); err != nil {
			return nil, err
		}
	}
	return srv, nil
}

// loadCSVDataset parses 'name:R=file.csv,S=file.csv' and loads every
// file.
func loadCSVDataset(spec string) (string, *relation.Database, error) {
	name, rest, ok := strings.Cut(spec, ":")
	if !ok || name == "" || rest == "" {
		return "", nil, fmt.Errorf("want 'name:R=file.csv,…'")
	}
	csvs := map[string]string{}
	for _, pair := range strings.Split(rest, ",") {
		rel, path, ok := strings.Cut(pair, "=")
		if !ok || rel == "" || path == "" {
			return "", nil, fmt.Errorf("bad relation entry %q (want R=file.csv)", pair)
		}
		text, err := os.ReadFile(strings.TrimSpace(path))
		if err != nil {
			return "", nil, err
		}
		csvs[strings.TrimSpace(rel)] = string(text)
	}
	db, err := serve.DatabaseFromCSV(csvs)
	if err != nil {
		return "", nil, err
	}
	return name, db, nil
}

// generateDataset parses 'name:family=C3,n=10000,…' into a
// serve.GeneratorSpec and runs it.
func generateDataset(spec string) (string, *relation.Database, error) {
	name, rest, ok := strings.Cut(spec, ":")
	if !ok || name == "" || rest == "" {
		return "", nil, fmt.Errorf("want 'name:family=C3,n=10000,…'")
	}
	gs := serve.GeneratorSpec{}
	for _, pair := range splitTopLevel(rest) {
		key, val, ok := strings.Cut(pair, "=")
		if !ok {
			return "", nil, fmt.Errorf("bad generator entry %q (want key=value)", pair)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "family":
			gs.Family = val
		case "query":
			gs.Query = val
		case "n":
			gs.N, err = strconv.Atoi(val)
		case "seed":
			gs.Seed, err = strconv.ParseUint(val, 10, 64)
		case "kind":
			gs.Kind = val
		case "skew":
			gs.Skew, err = strconv.ParseFloat(val, 64)
		default:
			return "", nil, fmt.Errorf("unknown generator key %q (want family, query, n, seed, kind or skew)", key)
		}
		if err != nil {
			return "", nil, fmt.Errorf("bad generator value %q: %v", pair, err)
		}
	}
	db, err := serve.Generate(gs)
	if err != nil {
		return "", nil, err
	}
	return name, db, nil
}

// parseTenant parses one -tenant spec:
// 'name:key=K[,qps=2][,burst=4][,load=200000][,bytes=16777216]'.
func parseTenant(spec string) (serve.TenantConfig, error) {
	var cfg serve.TenantConfig
	name, rest, ok := strings.Cut(spec, ":")
	if !ok || name == "" || rest == "" {
		return cfg, fmt.Errorf("want 'name:key=K[,qps=][,burst=][,load=][,bytes=]'")
	}
	cfg.Name = name
	for _, pair := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(pair, "=")
		if !ok {
			return cfg, fmt.Errorf("bad tenant entry %q (want key=value)", pair)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "key":
			cfg.Key = val
		case "qps":
			cfg.QPS, err = strconv.ParseFloat(val, 64)
		case "burst":
			cfg.Burst, err = strconv.Atoi(val)
		case "load":
			cfg.MaxInFlightLoad, err = strconv.ParseInt(val, 10, 64)
		case "bytes":
			cfg.MaxResidentBytes, err = strconv.ParseInt(val, 10, 64)
		default:
			return cfg, fmt.Errorf("unknown tenant key %q (want key, qps, burst, load or bytes)", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("bad tenant value %q: %v", pair, err)
		}
	}
	if cfg.Key == "" {
		return cfg, fmt.Errorf("tenant %s needs key=", cfg.Name)
	}
	return cfg, nil
}

// splitTopLevel splits a generator spec on commas into key=value
// entries, re-attaching pieces that do not start a new key — so query
// text like query=R(x,y),S(y,z) stays one entry even though its atoms
// are comma-separated.
func splitTopLevel(s string) []string {
	var out []string
	for _, piece := range strings.Split(s, ",") {
		if len(out) > 0 && !startsKeyValue(piece) {
			out[len(out)-1] += "," + piece
			continue
		}
		out = append(out, piece)
	}
	return out
}

// startsKeyValue reports whether the piece begins with a key= prefix
// (an '=' appearing before any parenthesis).
func startsKeyValue(piece string) bool {
	eq := strings.Index(piece, "=")
	paren := strings.Index(piece, "(")
	return eq > 0 && (paren < 0 || eq < paren)
}
