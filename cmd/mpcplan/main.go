// Command mpcplan analyzes a conjunctive query under the MPC(ε) model
// and explains the plan the statistics-driven planner would execute:
// the hypergraph statistics, both LPs of Figure 1 with their optimal
// solutions, τ*, the one-round space exponent, round bounds, and the
// EXPLAIN report of internal/plan — LP-derived shares, predicted load
// against the paper's bound and the ε-budget, and the engine decision
// (one-round HyperCube, multiround decomposition, or skew-aware
// routing).
//
// Usage:
//
//	mpcplan -query 'q(x,y,z) = R(x,y), S(y,z)' [-eps 1/2] [-p 64] [-n 10000]
//	mpcplan -family C5 [-eps 1/3] [-p 64]
//	mpcplan -query 'tc(x,y) :- e(x,y). tc(x,z) :- tc(x,y), e(y,z).'
//
// A -query containing ':-' or '?-' is analyzed as a Datalog program
// (internal/datalog): mpcplan prints its EDB/IDB split, the stratified
// evaluation order with recursion flags, and the planner's EXPLAIN for
// every rule body.
//
// Without -eps the planner uses the query's own one-round space
// exponent 1 − 1/τ*. The -n flag sets the cardinality of the assumed
// matching database the plan is costed against (mpcplan is static:
// real data flows through cmd/mpcrun, which collects live statistics).
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/experiments"
	"repro/internal/plan"
	"repro/internal/query"
)

func main() {
	var (
		queryStr  = flag.String("query", "", "conjunctive query, e.g. 'q(x,y) = R(x,y)'")
		familyStr = flag.String("family", "", "query family: L<k>, C<k>, T<k>, SP<k>, B<k>_<m>")
		epsStr    = flag.String("eps", "", "space exponent ε as a fraction, e.g. 1/2 (default: the query's own 1 − 1/τ*)")
		p         = flag.Int("p", 64, "number of servers for share computation")
		n         = flag.Int("n", 10000, "assumed relation cardinality for plan costing")
	)
	flag.Parse()
	if err := run(*queryStr, *familyStr, *epsStr, *p, *n); err != nil {
		fmt.Fprintln(os.Stderr, "mpcplan:", err)
		os.Exit(1)
	}
}

func run(queryStr, familyStr, epsStr string, p, n int) error {
	if p < 1 {
		return fmt.Errorf("-p = %d, need ≥ 1", p)
	}
	if n < 1 {
		return fmt.Errorf("-n = %d, need ≥ 1", n)
	}
	var eps *big.Rat
	if epsStr != "" {
		var err error
		if eps, err = parseRat(epsStr); err != nil {
			return err
		}
	}
	if datalog.IsDatalog(queryStr) {
		if familyStr != "" {
			return fmt.Errorf("use either a Datalog -query or -family, not both")
		}
		return runDatalog(queryStr, eps, p, n)
	}
	q, err := resolveQuery(queryStr, familyStr)
	if err != nil {
		return err
	}
	a, err := core.Analyze(q)
	if err != nil {
		return err
	}
	fmt.Print(a)
	if err := experiments.Figure1(os.Stdout, []*query.Query{q}); err != nil {
		return err
	}
	// The planner: share exponents from the LPs, integer shares, cost
	// estimates, engine choice — the one source of share math.
	pl, err := plan.Build(q, plan.MatchingStats(q, n), plan.Options{P: p, Epsilon: eps})
	if err != nil {
		return err
	}
	if a.Connected {
		lower, upper, err := a.RoundBounds(pl.Epsilon)
		if err != nil {
			return err
		}
		fmt.Printf("rounds at ε=%s: lower %d, upper %d\n", pl.Epsilon.RatString(), lower, upper)
	}
	fmt.Print(pl.Explain())
	return nil
}

// runDatalog analyzes a Datalog program: the canonical rendering, the
// EDB/IDB split, the stratified evaluation order, and the planner's
// EXPLAIN for every rule body against an assumed matching database of
// cardinality n.
func runDatalog(src string, eps *big.Rat, p, n int) error {
	prog, err := datalog.Parse(src)
	if err != nil {
		return err
	}
	fmt.Printf("program:\n%s", prog.String())
	fmt.Printf("edb:")
	for _, pred := range prog.EDBPreds() {
		arity, _ := prog.Arity(pred)
		fmt.Printf(" %s/%d", pred, arity)
	}
	fmt.Printf("\nidb:")
	for _, pred := range prog.IDBPreds() {
		arity, _ := prog.Arity(pred)
		fmt.Printf(" %s/%d", pred, arity)
		if prog.IsAggregate(pred) {
			fmt.Printf(" (aggregate)")
		}
	}
	fmt.Println()
	for i, s := range prog.Strata() {
		kind := "non-recursive"
		if s.Recursive {
			kind = "recursive — semi-naive fixpoint over warm delta maintenance"
		}
		fmt.Printf("stratum %d (%s): %s\n", i, kind, strings.Join(s.Preds, ", "))
		for _, ri := range s.Rules {
			r := &prog.Rules[ri]
			fmt.Printf("\nrule: %s\n", r)
			q, err := r.BodyQuery()
			if err != nil {
				return err
			}
			pl, err := plan.Build(q, plan.MatchingStats(q, n), plan.Options{P: p, Epsilon: eps})
			if err != nil {
				return err
			}
			if spec := r.AggregateSpec(q); spec != nil {
				if pl, err = pl.WithAggregate(*spec); err != nil {
					return err
				}
			}
			fmt.Print(pl.Explain())
		}
	}
	fmt.Printf("\noutput: %s\n", prog.OutputPred())
	return nil
}

// resolveQuery builds the query from either -query or -family.
func resolveQuery(queryStr, familyStr string) (*query.Query, error) {
	switch {
	case queryStr != "" && familyStr != "":
		return nil, fmt.Errorf("use either -query or -family, not both")
	case queryStr != "":
		return query.Parse(queryStr)
	case familyStr != "":
		return query.ParseFamily(familyStr)
	default:
		return nil, fmt.Errorf("one of -query or -family is required")
	}
}

// parseRat reads "1/2", "0.5" (limited to simple decimals), or "0".
func parseRat(s string) (*big.Rat, error) {
	r := new(big.Rat)
	if _, ok := r.SetString(s); !ok {
		return nil, fmt.Errorf("cannot parse %q as a rational", s)
	}
	if r.Sign() < 0 || r.Cmp(big.NewRat(1, 1)) >= 0 {
		return nil, fmt.Errorf("ε = %s outside [0,1)", r.RatString())
	}
	return r, nil
}
