// Command mpcplan analyzes a conjunctive query under the MPC(ε) model:
// it prints the hypergraph statistics, both LPs of Figure 1 with their
// optimal solutions, τ*, the one-round space exponent, HyperCube
// shares for a given p, the multi-round plan, and round bounds.
//
// Usage:
//
//	mpcplan -query 'q(x,y,z) = R(x,y), S(y,z)' [-eps 0] [-p 64]
//	mpcplan -family C5 [-eps 1/3] [-p 64]
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hypercube"
	"repro/internal/multiround"
	"repro/internal/query"
)

func main() {
	var (
		queryStr  = flag.String("query", "", "conjunctive query, e.g. 'q(x,y) = R(x,y)'")
		familyStr = flag.String("family", "", "query family: L<k>, C<k>, T<k>, SP<k>, B<k>_<m>")
		epsStr    = flag.String("eps", "0", "space exponent ε as a fraction, e.g. 1/2")
		p         = flag.Int("p", 64, "number of servers for share computation")
	)
	flag.Parse()
	if err := run(*queryStr, *familyStr, *epsStr, *p); err != nil {
		fmt.Fprintln(os.Stderr, "mpcplan:", err)
		os.Exit(1)
	}
}

func run(queryStr, familyStr, epsStr string, p int) error {
	q, err := resolveQuery(queryStr, familyStr)
	if err != nil {
		return err
	}
	eps, err := parseRat(epsStr)
	if err != nil {
		return err
	}
	a, err := core.Analyze(q)
	if err != nil {
		return err
	}
	fmt.Print(a)
	if err := experiments.Figure1(os.Stdout, []*query.Query{q}); err != nil {
		return err
	}
	if a.Connected {
		shares, err := hypercube.SharesForQuery(q, p, hypercube.GreedyRounding)
		if err != nil {
			return err
		}
		fmt.Printf("HyperCube shares for p=%d: %s (grid %d)\n", p, shares, shares.GridSize())
		lower, upper, err := a.RoundBounds(eps)
		if err != nil {
			return err
		}
		fmt.Printf("rounds at ε=%s: lower %d, upper %d\n", eps.RatString(), lower, upper)
		plan, err := multiround.Build(q, eps)
		if err != nil {
			return err
		}
		fmt.Print(plan)
	}
	return nil
}

// resolveQuery builds the query from either -query or -family.
func resolveQuery(queryStr, familyStr string) (*query.Query, error) {
	switch {
	case queryStr != "" && familyStr != "":
		return nil, fmt.Errorf("use either -query or -family, not both")
	case queryStr != "":
		return query.Parse(queryStr)
	case familyStr != "":
		return parseFamily(familyStr)
	default:
		return nil, fmt.Errorf("one of -query or -family is required")
	}
}

// parseFamily reads L8, C5, T3, SP4, B4_2.
func parseFamily(s string) (*query.Query, error) {
	switch {
	case strings.HasPrefix(s, "SP"):
		k, err := strconv.Atoi(s[2:])
		if err != nil {
			return nil, fmt.Errorf("family %q: %v", s, err)
		}
		return query.SpokedWheel(k), nil
	case strings.HasPrefix(s, "B"):
		parts := strings.SplitN(s[1:], "_", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("family %q: want B<k>_<m>", s)
		}
		k, err1 := strconv.Atoi(parts[0])
		m, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("family %q: bad numbers", s)
		}
		return query.Binom(k, m), nil
	case strings.HasPrefix(s, "L"):
		k, err := strconv.Atoi(s[1:])
		if err != nil {
			return nil, fmt.Errorf("family %q: %v", s, err)
		}
		return query.Chain(k), nil
	case strings.HasPrefix(s, "C"):
		k, err := strconv.Atoi(s[1:])
		if err != nil {
			return nil, fmt.Errorf("family %q: %v", s, err)
		}
		return query.Cycle(k), nil
	case strings.HasPrefix(s, "T"):
		k, err := strconv.Atoi(s[1:])
		if err != nil {
			return nil, fmt.Errorf("family %q: %v", s, err)
		}
		return query.Star(k), nil
	default:
		return nil, fmt.Errorf("unknown family %q (want L<k>, C<k>, T<k>, SP<k>, B<k>_<m>)", s)
	}
}

// parseRat reads "1/2", "0.5" (limited to simple decimals), or "0".
func parseRat(s string) (*big.Rat, error) {
	r := new(big.Rat)
	if _, ok := r.SetString(s); !ok {
		return nil, fmt.Errorf("cannot parse %q as a rational", s)
	}
	if r.Sign() < 0 || r.Cmp(big.NewRat(1, 1)) >= 0 {
		return nil, fmt.Errorf("ε = %s outside [0,1)", r.RatString())
	}
	return r, nil
}
