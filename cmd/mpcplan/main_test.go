package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

func TestParseRat(t *testing.T) {
	r, err := parseRat("1/2")
	if err != nil || r.RatString() != "1/2" {
		t.Errorf("parseRat(1/2) = %v, %v", r, err)
	}
	if _, err := parseRat("x"); err == nil {
		t.Error("want error for garbage")
	}
	if _, err := parseRat("1"); err == nil {
		t.Error("want error for ε = 1")
	}
	if _, err := parseRat("-1/2"); err == nil {
		t.Error("want error for negative ε")
	}
}

func TestResolveQuery(t *testing.T) {
	if _, err := resolveQuery("", ""); err == nil {
		t.Error("want error when neither flag is set")
	}
	if _, err := resolveQuery("R(x)", "L2"); err == nil {
		t.Error("want error when both flags are set")
	}
	q, err := resolveQuery("R(x,y), S(y,z)", "")
	if err != nil || q.NumAtoms() != 2 {
		t.Errorf("resolveQuery text: %v, %v", q, err)
	}
	if _, err := resolveQuery("", "C4"); err != nil {
		t.Errorf("resolveQuery family: %v", err)
	}
}

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	if ferr != nil {
		t.Fatal(ferr)
	}
	return string(out)
}

func TestRunEndToEnd(t *testing.T) {
	// Full pipeline on a simple query, explicit ε.
	if err := run("q(x,y) = R(x,y)", "", "0", 8, 100); err != nil {
		t.Fatal(err)
	}
	// Default ε (the query's own exponent).
	if err := run("", "L3", "", 16, 200); err != nil {
		t.Fatal(err)
	}
	if err := run("", "nope", "0", 8, 100); err == nil {
		t.Error("want error for bad family")
	}
	if err := run("", "L4", "7/3", 8, 100); err == nil {
		t.Error("want error for bad epsilon")
	}
	if err := run("", "L4", "0", 0, 100); err == nil {
		t.Error("want error for p = 0")
	}
}

// TestTriangleExplainOutput is the CLI half of the PR's acceptance
// check: the EXPLAIN for C3 shows the LP-derived p^{1/3} grid and the
// paper-bound comparison.
func TestTriangleExplainOutput(t *testing.T) {
	out := capture(t, func() error { return run("", "C3", "1/3", 64, 20000) })
	for _, want := range []string{
		"τ* = 3/2",
		"share exponents e = v/τ*: x1=1/3 x2=1/3 x3=1/3",
		"[x1:4 x2:4 x3:4], grid 64 (p^{1/3} per hashed dimension)",
		"paper bound Σ_j |S_j|/p^{Σe_i}: 3750 tuples/worker",
		"engine: one-round hypercube",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN missing %q in:\n%s", want, out)
		}
	}
}
