package main

import (
	"testing"
)

func TestParseFamily(t *testing.T) {
	cases := []struct {
		in        string
		atoms     int
		wantError bool
	}{
		{"L5", 5, false},
		{"C4", 4, false},
		{"T3", 3, false},
		{"SP2", 4, false},
		{"B4_2", 6, false},
		{"X9", 0, true},
		{"L", 0, true},
		{"B4", 0, true},
		{"Bx_y", 0, true},
		{"SPx", 0, true},
		{"Cx", 0, true},
		{"Tx", 0, true},
	}
	for _, c := range cases {
		q, err := parseFamily(c.in)
		if c.wantError {
			if err == nil {
				t.Errorf("parseFamily(%q): want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseFamily(%q): %v", c.in, err)
			continue
		}
		if q.NumAtoms() != c.atoms {
			t.Errorf("parseFamily(%q): %d atoms, want %d", c.in, q.NumAtoms(), c.atoms)
		}
	}
}

func TestParseRat(t *testing.T) {
	r, err := parseRat("1/2")
	if err != nil || r.RatString() != "1/2" {
		t.Errorf("parseRat(1/2) = %v, %v", r, err)
	}
	if _, err := parseRat("x"); err == nil {
		t.Error("want error for garbage")
	}
	if _, err := parseRat("1"); err == nil {
		t.Error("want error for ε = 1")
	}
	if _, err := parseRat("-1/2"); err == nil {
		t.Error("want error for negative ε")
	}
}

func TestResolveQuery(t *testing.T) {
	if _, err := resolveQuery("", ""); err == nil {
		t.Error("want error when neither flag is set")
	}
	if _, err := resolveQuery("R(x)", "L2"); err == nil {
		t.Error("want error when both flags are set")
	}
	q, err := resolveQuery("R(x,y), S(y,z)", "")
	if err != nil || q.NumAtoms() != 2 {
		t.Errorf("resolveQuery text: %v, %v", q, err)
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Exercise the full analysis pipeline (output goes to stdout; we
	// only assert it succeeds).
	if err := run("", "C3", "1/3", 27); err != nil {
		t.Fatal(err)
	}
	if err := run("q(x,y) = R(x,y)", "", "0", 8); err != nil {
		t.Fatal(err)
	}
	if err := run("", "nope", "0", 8); err == nil {
		t.Error("want error for bad family")
	}
	if err := run("", "L4", "7/3", 8); err == nil {
		t.Error("want error for bad epsilon")
	}
}
