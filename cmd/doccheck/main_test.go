package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPackageDirFindsUndocumented(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.go"), `package pkg

type Undocumented struct{}

func (u Undocumented) NoDoc() {}

// Documented is fine.
func Documented() {}

const Exported = 1

// unexported things never count.
func internal() {}

var hidden = 2
`)
	findings, err := checkPackageDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(findings, "\n")
	for _, want := range []string{
		"package pkg has no package comment",
		"undocumented exported type Undocumented",
		"undocumented exported method Undocumented.NoDoc",
		"undocumented exported const/var Exported",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing finding %q in:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "Documented") || strings.Contains(joined, "internal") || strings.Contains(joined, "hidden") {
		t.Errorf("false positive in:\n%s", joined)
	}
}

func TestCheckPackageDirCleanPackage(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.go"), `// Package pkg is documented.
package pkg

// T is documented.
type T struct{}

// M is documented.
func (T) M() {}
`)
	// Test files must not be scanned.
	write(t, filepath.Join(dir, "a_test.go"), `package pkg

func TestHelperWithoutDoc() {}
`)
	findings, err := checkPackageDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("clean package flagged: %v", findings)
	}
}

func TestExpandDirsWildcard(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "a", "a.go"), "package a\n")
	write(t, filepath.Join(root, "a", "b", "b.go"), "package b\n")
	write(t, filepath.Join(root, "testdata", "x.go"), "package x\n")
	write(t, filepath.Join(root, "nogo", "data.txt"), "hi\n")
	write(t, filepath.Join(root, "onlytests", "x_test.go"), "package onlytests\n")
	dirs, err := expandDirs([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(dirs, "\n")
	if !strings.Contains(joined, filepath.Join(root, "a")) || !strings.Contains(joined, filepath.Join(root, "a", "b")) {
		t.Errorf("wildcard missed package dirs: %v", dirs)
	}
	if strings.Contains(joined, "testdata") || strings.Contains(joined, "nogo") || strings.Contains(joined, "onlytests") {
		t.Errorf("wildcard included non-package dirs: %v", dirs)
	}
}

func TestGoBlocks(t *testing.T) {
	md := "intro\n```go\nx := 1\n```\nmiddle\n```sh\nls\n```\n```go\ny := 2\n```\n"
	blocks := goBlocks(md)
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(blocks))
	}
	if blocks[0].code != "x := 1" || blocks[1].code != "y := 2" {
		t.Errorf("blocks = %+v", blocks)
	}
	if blocks[0].line != 2 {
		t.Errorf("first block line = %d, want 2", blocks[0].line)
	}
}

func TestSnippetFormatted(t *testing.T) {
	cases := []struct {
		name string
		code string
		ok   bool
	}{
		{"full file", "package x\n\nfunc F() {}", true},
		{"declaration fragment", "// F does things.\nfunc F() int {\n\treturn 1\n}", true},
		{"statement fragment", "x := 1\n_ = x", true},
		{"unformatted", "func  F(){\nx:=1\n_=x\n}", false},
		{"garbage", "this is ) not go (", false},
	}
	for _, c := range cases {
		ok, why := snippetFormatted(c.code)
		if ok != c.ok {
			t.Errorf("%s: ok=%v (%s), want %v", c.name, ok, why, c.ok)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "p", "p.go"), "// Package p.\npackage p\n")
	write(t, filepath.Join(dir, "doc.md"), "```go\nx := 1\n_ = x\n```\n")
	findings, err := run([]string{dir + "/..."}, []string{filepath.Join(dir, "doc.md")})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("clean tree flagged: %v", findings)
	}
	write(t, filepath.Join(dir, "p", "q.go"), "package p\n\nfunc Oops() {}\n")
	write(t, filepath.Join(dir, "bad.md"), "```go\nfunc  f(){}\n```\n")
	findings, err = run([]string{dir + "/..."}, []string{filepath.Join(dir, "bad.md")})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Errorf("want 2 findings, got %v", findings)
	}
}
