// Command doccheck is the documentation gate run by CI. It has two
// checks:
//
//  1. Undocumented exports: for every Go package named on the command
//     line (directories, with the ./... wildcard supported), it parses
//     the package with go/doc and reports every exported constant,
//     variable, function, type, and method that lacks a doc comment,
//     plus packages missing a package comment.
//  2. Markdown snippets: for every file passed via -md, it extracts
//     the fenced ```go code blocks and checks they are gofmt-clean
//     (snippets that are declaration fragments are wrapped in a
//     synthetic package clause first; blocks that still do not parse
//     are reported).
//
// doccheck exits non-zero when any finding is reported, so it can gate
// a CI job:
//
//	go run ./cmd/doccheck -md README.md -md ARCHITECTURE.md ./internal/... ./cmd/...
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/doc"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// mdFlags collects repeated -md flags.
type mdFlags []string

// String renders the flag value for -help.
func (m *mdFlags) String() string { return strings.Join(*m, ",") }

// Set appends one -md occurrence.
func (m *mdFlags) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var md mdFlags
	flag.Var(&md, "md", "markdown file whose ```go blocks must be gofmt-clean (repeatable)")
	flag.Parse()
	findings, err := run(flag.Args(), md)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// run performs both checks and returns the findings.
func run(pkgArgs []string, mdFiles []string) ([]string, error) {
	var findings []string
	dirs, err := expandDirs(pkgArgs)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		fs, err := checkPackageDir(dir)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	for _, file := range mdFiles {
		fs, err := checkMarkdown(file)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	return findings, nil
}

// expandDirs resolves arguments into package directories; a trailing
// /... walks the tree for directories containing Go files, skipping
// testdata and hidden directories.
func expandDirs(args []string) ([]string, error) {
	var out []string
	for _, arg := range args {
		root, wild := strings.CutSuffix(arg, "/...")
		if !wild {
			out = append(out, arg)
			continue
		}
		err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if !info.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if base == "testdata" || (strings.HasPrefix(base, ".") && path != root) || strings.HasPrefix(base, "_") {
				return filepath.SkipDir
			}
			hasGo, err := dirHasGoFiles(path)
			if err != nil {
				return err
			}
			if hasGo {
				out = append(out, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// checkPackageDir reports undocumented exported symbols of the package
// in dir (test files excluded).
func checkPackageDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var findings []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: undocumented exported %s %s", p.Filename, p.Line, kind, name))
	}
	for _, astPkg := range pkgs {
		d := doc.New(astPkg, dir, 0)
		if d.Doc == "" {
			findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", dir, d.Name))
		}
		for _, v := range append(append([]*doc.Value(nil), d.Consts...), d.Vars...) {
			if v.Doc != "" {
				continue
			}
			for _, name := range v.Names {
				if ast.IsExported(name) {
					report(v.Decl.Pos(), "const/var", name)
				}
			}
		}
		for _, f := range d.Funcs {
			if f.Doc == "" && ast.IsExported(f.Name) {
				report(f.Decl.Pos(), "function", f.Name)
			}
		}
		for _, t := range d.Types {
			if ast.IsExported(t.Name) {
				if t.Doc == "" {
					report(t.Decl.Pos(), "type", t.Name)
				}
				findings = append(findings, checkTypeMembers(fset, t)...)
			}
		}
	}
	return findings, nil
}

// checkTypeMembers reports undocumented exported methods,
// constructors, and grouped values of one documented type.
func checkTypeMembers(fset *token.FileSet, t *doc.Type) []string {
	var findings []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: undocumented exported %s %s", p.Filename, p.Line, kind, name))
	}
	for _, f := range t.Funcs {
		if f.Doc == "" && ast.IsExported(f.Name) {
			report(f.Decl.Pos(), "function", f.Name)
		}
	}
	for _, m := range t.Methods {
		if m.Doc == "" && ast.IsExported(m.Name) {
			report(m.Decl.Pos(), "method", t.Name+"."+m.Name)
		}
	}
	for _, v := range append(append([]*doc.Value(nil), t.Consts...), t.Vars...) {
		if v.Doc != "" {
			continue
		}
		for _, name := range v.Names {
			if ast.IsExported(name) {
				report(v.Decl.Pos(), "const/var", name)
			}
		}
	}
	return findings
}

// checkMarkdown extracts ```go fenced blocks and reports blocks that
// are not gofmt-clean (or do not parse even as declaration fragments).
func checkMarkdown(file string) ([]string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var findings []string
	for _, block := range goBlocks(string(data)) {
		ok, why := snippetFormatted(block.code)
		if !ok {
			findings = append(findings, fmt.Sprintf("%s:%d: go snippet %s", file, block.line, why))
		}
	}
	return findings, nil
}

// goBlock is one fenced ```go region of a markdown file.
type goBlock struct {
	line int // 1-based line of the opening fence
	code string
}

// goBlocks scans markdown for ```go fences.
func goBlocks(md string) []goBlock {
	var blocks []goBlock
	lines := strings.Split(md, "\n")
	for i := 0; i < len(lines); i++ {
		fence := strings.TrimSpace(lines[i])
		if fence != "```go" {
			continue
		}
		start := i + 1
		j := start
		for ; j < len(lines); j++ {
			if strings.TrimSpace(lines[j]) == "```" {
				break
			}
		}
		blocks = append(blocks, goBlock{line: i + 1, code: strings.Join(lines[start:j], "\n")})
		i = j
	}
	return blocks
}

// snippetFormatted checks one snippet. Full files must be gofmt-clean
// as-is; fragments are wrapped in a synthetic package clause and must
// be gofmt-clean under the wrap.
func snippetFormatted(code string) (bool, string) {
	src := strings.TrimRight(code, "\n") + "\n"
	if formatted, err := format.Source([]byte(src)); err == nil {
		if string(formatted) != src {
			return false, "is not gofmt-clean"
		}
		return true, ""
	}
	// Fragment: wrap into a synthetic file. The snippet keeps its own
	// indentation, so formatting must round-trip exactly.
	wrapped := "package snippet\n\n" + src
	formatted, err := format.Source([]byte(wrapped))
	if err != nil {
		// Statement-level fragment: wrap into a function body, indented
		// one tab as gofmt would print it.
		indented := "\t" + strings.ReplaceAll(strings.TrimRight(src, "\n"), "\n", "\n\t") + "\n"
		indented = strings.ReplaceAll(indented, "\t\n", "\n") // keep blank lines blank
		fnWrapped := "package snippet\n\nfunc _() {\n" + indented + "}\n"
		fnFormatted, fnErr := format.Source([]byte(fnWrapped))
		if fnErr != nil {
			return false, fmt.Sprintf("does not parse: %v", err)
		}
		if string(fnFormatted) != fnWrapped {
			return false, "is not gofmt-clean"
		}
		return true, ""
	}
	if string(formatted) != wrapped {
		return false, "is not gofmt-clean"
	}
	return true, ""
}
