package main

import "testing"

func TestRunSelections(t *testing.T) {
	// Small sizes keep this fast; each selection must succeed.
	if err := run(1, 0, "", false, 100, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := run(2, 0, "", false, 100, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := run(0, 1, "", false, 100, 1, 2); err != nil {
		t.Fatal(err)
	}
	for _, exp := range []string{"rounds", "round-bounds", "opt-shares", "friedgut"} {
		if err := run(0, 0, exp, false, 100, 1, 2); err != nil {
			t.Fatalf("experiment %s: %v", exp, err)
		}
	}
}

func TestRunNothingSelected(t *testing.T) {
	if err := run(0, 0, "", false, 100, 1, 2); err == nil {
		t.Error("want error when nothing is selected")
	}
}
