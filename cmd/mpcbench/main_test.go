package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSelections(t *testing.T) {
	// Small sizes keep this fast; each selection must succeed.
	if err := run(1, 0, "", false, 100, 1, 2, "", "", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := run(2, 0, "", false, 100, 1, 2, "", "", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := run(0, 1, "", false, 100, 1, 2, "", "", 0.25); err != nil {
		t.Fatal(err)
	}
	for _, exp := range []string{"rounds", "round-bounds", "opt-shares", "friedgut"} {
		if err := run(0, 0, exp, false, 100, 1, 2, "", "", 0.25); err != nil {
			t.Fatalf("experiment %s: %v", exp, err)
		}
	}
}

func TestRunNothingSelected(t *testing.T) {
	if err := run(0, 0, "", false, 100, 1, 2, "", "", 0.25); err == nil {
		t.Error("want error when nothing is selected")
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	report := &BenchReport{
		Schema:             benchSchema,
		GoVersion:          "go1.22",
		CalibrationNsPerOp: 100,
		Benchmarks: []BenchRecord{
			{Name: "a", NsPerOp: 500, Normalized: 5, Iterations: 10},
			{Name: "b", NsPerOp: 1000, Normalized: 10, Iterations: 5},
		},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeBenchJSON(path, report); err != nil {
		t.Fatal(err)
	}
	got, err := readBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != report.Schema || len(got.Benchmarks) != 2 || got.Benchmarks[1].Normalized != 10 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestCompareBenchReports(t *testing.T) {
	base := &BenchReport{Schema: benchSchema, Benchmarks: []BenchRecord{
		{Name: "steady", Normalized: 10},
		{Name: "regressing", Normalized: 10},
		{Name: "removed", Normalized: 3},
	}}
	// Within budget: 20% slower on one benchmark passes a 25% gate.
	cur := &BenchReport{Schema: benchSchema, Benchmarks: []BenchRecord{
		{Name: "steady", Normalized: 10},
		{Name: "regressing", Normalized: 12},
		{Name: "brand-new", Normalized: 1},
	}}
	var buf bytes.Buffer
	if err := compareBenchReports(&buf, base, cur, 0.25); err != nil {
		t.Fatalf("within-budget comparison failed: %v\n%s", err, buf.String())
	}
	for _, needle := range []string{"NEW", "GONE"} {
		if !strings.Contains(buf.String(), needle) {
			t.Errorf("comparison output missing %q:\n%s", needle, buf.String())
		}
	}

	// Over budget: 30% slower fails and names the benchmark.
	cur.Benchmarks[1].Normalized = 13
	buf.Reset()
	err := compareBenchReports(&buf, base, cur, 0.25)
	if err == nil {
		t.Fatal("30%% regression passed a 25%% gate")
	}
	if !strings.Contains(err.Error(), "regressing") {
		t.Errorf("gate error does not name the regressed benchmark: %v", err)
	}

	// Schema mismatch refuses to compare.
	bad := &BenchReport{Schema: benchSchema + 1}
	if err := compareBenchReports(&buf, bad, cur, 0.25); err == nil {
		t.Error("schema mismatch passed")
	}
}

// TestBenchSuiteAgainstCheckedInBaseline is the CI regression gate in
// miniature: the suite must run, produce a well-formed report, and the
// checked-in baseline must be loadable and schema-compatible. The
// actual >25% gate runs in CI's bench job where timings are measured
// at full benchtime; here the measurements are shrunk to a fraction of
// a second each (timings are meaningless under -race anyway) and the
// comparison runs with an effectively-open budget so shared test
// runners cannot flake this test.
func TestBenchSuiteAgainstCheckedInBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark suite is slow")
	}
	// Shrink every testing.Benchmark measurement for the duration of
	// this test; the dedicated bench job measures at the default 1s.
	if err := flag.Set("test.benchtime", "10ms"); err != nil {
		t.Fatalf("cannot shrink benchtime: %v", err)
	}
	defer func() { _ = flag.Set("test.benchtime", "1s") }()
	var buf bytes.Buffer
	report, err := runBenchSuite(&buf, 2013)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) < 5 || report.CalibrationNsPerOp <= 0 {
		t.Fatalf("suspicious report: %+v", report)
	}
	for _, b := range report.Benchmarks {
		if b.NsPerOp <= 0 || b.Normalized <= 0 {
			t.Errorf("benchmark %s has non-positive timing: %+v", b.Name, b)
		}
	}
	if _, err := os.Stat("../../bench_baseline.json"); err != nil {
		t.Fatalf("checked-in baseline missing: %v", err)
	}
	base, err := readBenchJSON("../../bench_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := compareBenchReports(&buf, base, report, 1e9); err != nil {
		t.Fatalf("comparison against checked-in baseline failed: %v", err)
	}
}
