// Command mpcbench regenerates the tables, the figure, and every
// quantitative experiment of the paper (see DESIGN.md §4 for the
// experiment index).
//
// Usage:
//
//	mpcbench -table 1            # Table 1
//	mpcbench -table 2            # Table 2
//	mpcbench -figure 1           # Figure 1 LPs for the running examples
//	mpcbench -experiment hc-load
//	mpcbench -experiment lb-fraction
//	mpcbench -experiment witness
//	mpcbench -experiment rounds
//	mpcbench -experiment round-bounds
//	mpcbench -experiment cc
//	mpcbench -experiment skew
//	mpcbench -experiment shuffle
//	mpcbench -experiment wire
//	mpcbench -experiment pipeline
//	mpcbench -experiment delta
//	mpcbench -experiment opt-shares
//	mpcbench -experiment friedgut
//	mpcbench -experiment recursion
//	mpcbench -all                # everything
//
// The benchmark-regression pipeline (CI's bench job) runs the
// machine-readable suite:
//
//	mpcbench -json BENCH.json                          # measure, write report
//	mpcbench -json BENCH.json -baseline bench_baseline.json
//
// The suite times the hot paths (columnar shuffle, WCOJ and hash
// local joins, plan build, end-to-end execute, wire encode/decode of
// the distributed runtime) with the testing harness and normalizes
// every result by a fixed CPU-bound
// calibration loop measured in the same run, so reports compare
// across machines of different speeds. With -baseline, the run fails
// when any benchmark's normalized time regresses by more than
// -max-regress (default 25%).
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"

	"repro/internal/experiments"
	"repro/internal/query"
)

func main() {
	var (
		table      = flag.Int("table", 0, "regenerate Table 1 or 2")
		figure     = flag.Int("figure", 0, "regenerate Figure 1")
		experiment = flag.String("experiment", "", "hc-load | lb-fraction | witness | rounds | round-bounds | cc | skew | shuffle | wire | pipeline | delta | opt-shares | friedgut | knowledge | tail | recursion")
		all        = flag.Bool("all", false, "run everything")
		n          = flag.Int("n", 2000, "domain size for data experiments")
		seed       = flag.Uint64("seed", 2013, "random seed")
		trials     = flag.Int("trials", 5, "trials per randomized cell")
		jsonPath   = flag.String("json", "", "run the benchmark suite and write the machine-readable report here")
		baseline   = flag.String("baseline", "", "compare the suite against this baseline report and fail on regression")
		maxRegress = flag.Float64("max-regress", 0.25, "allowed normalized slowdown vs -baseline (0.25 = 25%)")
	)
	flag.Parse()
	if err := run(*table, *figure, *experiment, *all, *n, *seed, *trials, *jsonPath, *baseline, *maxRegress); err != nil {
		fmt.Fprintln(os.Stderr, "mpcbench:", err)
		os.Exit(1)
	}
}

func run(table, figure int, experiment string, all bool, n int, seed uint64, trials int, jsonPath, baseline string, maxRegress float64) error {
	w := os.Stdout
	ran := false
	if jsonPath != "" || baseline != "" {
		ran = true
		if baseline != "" && maxRegress <= 0 {
			return fmt.Errorf("-max-regress = %v, need > 0", maxRegress)
		}
		fmt.Fprintln(w, "── BENCH: machine-readable benchmark suite ──")
		report, err := runBenchSuite(w, seed)
		if err != nil {
			return err
		}
		if jsonPath != "" {
			if err := writeBenchJSON(jsonPath, report); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", jsonPath)
		}
		if baseline != "" {
			base, err := readBenchJSON(baseline)
			if err != nil {
				return err
			}
			if err := compareBenchReports(w, base, report, maxRegress); err != nil {
				return err
			}
			fmt.Fprintf(w, "regression gate passed (budget %.0f%%)\n", maxRegress*100)
		}
		fmt.Fprintln(w)
	}
	if all || table == 1 {
		ran = true
		fmt.Fprintln(w, "── Table 1 ──")
		if _, err := experiments.Table1(w, n, trials, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || table == 2 {
		ran = true
		fmt.Fprintln(w, "── Table 2 ──")
		if _, err := experiments.Table2(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || figure == 1 {
		ran = true
		fmt.Fprintln(w, "── Figure 1 (vertex cover & edge packing LPs) ──")
		qs := []*query.Query{query.Chain(3), query.Cycle(3), query.Star(3), query.Binom(4, 2)}
		if err := experiments.Figure1(w, qs); err != nil {
			return err
		}
	}
	zero := big.NewRat(0, 1)
	half := big.NewRat(1, 2)
	if all || experiment == "hc-load" {
		ran = true
		fmt.Fprintln(w, "── E-HC: HyperCube load vs Proposition 3.2 bound ──")
		for _, q := range []*query.Query{query.Cycle(3), query.Chain(3), query.Star(3)} {
			if _, err := experiments.HCLoad(w, q, n, []int{8, 16, 32, 64, 128, 256}, seed); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	}
	if all || experiment == "lb-fraction" {
		ran = true
		fmt.Fprintln(w, "── E-LB1: answer fraction below the space exponent (Thm 3.3 / Prop 3.11) ──")
		rows, err := experiments.LBFraction(w, query.Cycle(3), n, 0, []int{4, 16, 64, 256}, trials, seed)
		if err != nil {
			return err
		}
		if err := experiments.FractionChart(w, rows); err != nil {
			fmt.Fprintf(w, "(chart skipped: %v)\n", err)
		}
		fmt.Fprintln(w)
	}
	if all || experiment == "witness" {
		ran = true
		fmt.Fprintln(w, "── E-WIT: JOIN-WITNESS (Prop 3.12) ──")
		wn := n
		if wn > 400 {
			wn = 400 // the witness experiment needs many sequential joins
		}
		if _, err := experiments.Witness(w, wn, []int{16, 64, 256}, []float64{0, 0.25, 0.5}, trials, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || experiment == "rounds" {
		ran = true
		fmt.Fprintln(w, "── E-MR: multi-round plans (Example 4.2 / Lemma 4.3) ──")
		if _, err := experiments.Rounds(w, []int{4, 8, 16}, []*big.Rat{zero, half}, 200, 16, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || experiment == "round-bounds" {
		ran = true
		fmt.Fprintln(w, "── E-RLB: (ε,r)-plan certificates vs closed forms ──")
		if _, err := experiments.RoundBounds(w, []*big.Rat{zero, half}); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || experiment == "cc" {
		ran = true
		fmt.Fprintln(w, "── E-CC: connected components on layered graphs (Thm 4.10) ──")
		rows, err := experiments.CC(w, []int{4, 16, 64, 256}, 8, seed)
		if err != nil {
			return err
		}
		if err := experiments.CCChart(w, rows); err != nil {
			fmt.Fprintf(w, "(chart skipped: %v)\n", err)
		}
		fmt.Fprintln(w)
	}
	if all || experiment == "skew" {
		ran = true
		fmt.Fprintln(w, "── E-SKEW: heavy hitters vs HC hashing (Sections 2.5/3.3) ──")
		if _, err := experiments.Skew(w, n, 32, 1.1, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || experiment == "shuffle" {
		ran = true
		fmt.Fprintln(w, "── E-SHUF: columnar exchange shuffle throughput & per-round load ──")
		if _, err := experiments.Shuffle(w, 5*n, []int{8, 32, 64, 128}, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || experiment == "wire" {
		ran = true
		fmt.Fprintln(w, "── E-WIRE: distributed wire codec throughput (internal/wire) ──")
		if _, err := experiments.Wire(w, []int{1 << 10, 1 << 14, 1 << 17}, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || experiment == "pipeline" {
		ran = true
		fmt.Fprintln(w, "── E-PIPE: compute/communication overlap, sync vs pipelined rounds ──")
		pn := n
		if pn > 600 {
			pn = 600 // wall-clock cells at p=256 get slow beyond this
		}
		if _, err := experiments.Pipeline(w, pn, []int{16, 64, 256}, trials, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || experiment == "delta" {
		ran = true
		fmt.Fprintln(w, "── E-DELTA: incremental maintenance vs full re-join ──")
		// The headline cells: maintenance cost is the replication
		// factor regardless of n, so the gap widens with the database.
		if _, err := experiments.Delta(w, []int{10_000, 100_000}, []int{16, 64}, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || experiment == "recursion" {
		ran = true
		fmt.Fprintln(w, "── E-REC: semi-naive vs naive fixpoint on power-law reachability ──")
		rn := n
		if rn > 400 {
			rn = 400 // naive re-evaluation re-ships the closure every pass
		}
		if _, err := experiments.Recursion(w, []int{rn / 4, rn}, 16, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || experiment == "opt-shares" {
		ran = true
		fmt.Fprintln(w, "── E-OPT: size-aware vs cover shares (Afrati–Ullman) ──")
		if _, err := experiments.OptimalShares(w, 64); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || experiment == "friedgut" {
		ran = true
		fmt.Fprintln(w, "── E-FRIED: Friedgut's inequality (Section 2.6) ──")
		if err := experiments.FriedgutCheck(w, 25, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || experiment == "tail" {
		ran = true
		fmt.Fprintln(w, "── E-TAIL: HC load concentration (Prop 3.2's η) ──")
		if _, err := experiments.Tail(w, query.Cycle(3), 27, 10*trials, 1.25, []int{300, 1200, 4800}, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || experiment == "knowledge" {
		ran = true
		fmt.Fprintln(w, "── E-KNOW: bit-budgeted knowledge (Lemmas 3.6/3.7) ──")
		kn := n
		if kn > 100 {
			kn = 100 // known-answer counts need many trials, keep n modest
		}
		if _, err := experiments.Knowledge(w, kn, 20*trials, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if !ran {
		return fmt.Errorf("nothing selected; use -table, -figure, -experiment or -all")
	}
	return nil
}
