package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"runtime"
	"sort"
	"testing"

	"repro/internal/datalog"
	"repro/internal/exchange"
	"repro/internal/hypercube"
	"repro/internal/localjoin"
	"repro/internal/mpc"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/skew"
	"repro/internal/wire"
)

// benchSchema versions the BENCH.json layout; bump on incompatible
// changes so the CI gate can refuse to compare across schemas.
const benchSchema = 1

// BenchRecord is one measured benchmark in a BenchReport.
type BenchRecord struct {
	// Name identifies the benchmark across runs.
	Name string `json:"name"`
	// NsPerOp is the measured wall time per operation.
	NsPerOp float64 `json:"nsPerOp"`
	// Normalized is NsPerOp divided by the run's calibration NsPerOp —
	// a machine-speed-independent number, the value the regression
	// gate compares (two machines that differ only by clock speed
	// produce the same Normalized values).
	Normalized float64 `json:"normalized"`
	// Iterations is the b.N the testing harness settled on.
	Iterations int `json:"iterations"`
	// TuplesPerSec is set on throughput records (one op routes a fixed,
	// seed-determined tuple count): the experiment-facing view of the
	// same measurement. The gate compares Normalized, which is
	// proportional to 1/TuplesPerSec, so a throughput regression is a
	// normalized-time regression.
	TuplesPerSec float64 `json:"tuplesPerSec,omitempty"`
}

// BenchReport is the machine-readable BENCH.json the CI pipeline
// uploads and gates on.
type BenchReport struct {
	// Schema is the layout version (benchSchema).
	Schema int `json:"schema"`
	// GoVersion, GoOS and GoArch record the build environment.
	GoVersion string `json:"goVersion"`
	// GoOS is runtime.GOOS.
	GoOS string `json:"goos"`
	// GoArch is runtime.GOARCH.
	GoArch string `json:"goarch"`
	// CalibrationNsPerOp is the fixed CPU-bound reference loop's
	// per-op time on this machine — the normalization denominator.
	CalibrationNsPerOp float64 `json:"calibrationNsPerOp"`
	// Benchmarks holds the measured suite.
	Benchmarks []BenchRecord `json:"benchmarks"`
}

// calibrationLoop is the fixed reference work the suite normalizes
// by: one op allocates a 4096-word buffer, fills it from a 64-bit
// xorshift, and sorts it. The mix — allocation, pointer-free memory
// traffic, comparison sorting — mirrors what dominates the suite's
// hot paths (packed buffers, sorted runs, tries), so its per-op time
// co-varies with the benchmarks across machines far better than a
// pure-ALU loop would.
func calibrationLoop(b *testing.B) {
	var x uint64 = 88172645463325252
	for i := 0; i < b.N; i++ {
		buf := make([]uint64, 1<<12)
		for j := range buf {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			buf[j] = x
		}
		sort.Slice(buf, func(a, c int) bool { return buf[a] < buf[c] })
		if buf[0] == 0 && buf[len(buf)-1] == 0 {
			b.Fatal("xorshift collapsed")
		}
	}
}

// benchReps is how many times measureNormalized repeats each
// benchmark; the minimum normalized ratio is kept. GC pauses,
// scheduler noise, and neighbouring load only ever make a run slower,
// so min-of-N is the noise-resistant estimator the regression gate
// needs.
const benchReps = 3

// measureNormalized interleaves the benchmark with the calibration
// loop: each rep measures the calibration immediately before the
// benchmark and normalizes by it, and the smallest ratio across reps
// wins. Interleaving matters on shared machines — background load
// slows both measurements of a rep together, so the ratio stays
// stable where a once-per-run calibration would drift.
func measureNormalized(fn func(b *testing.B)) (ns, normalized float64, iters int) {
	for r := 0; r < benchReps; r++ {
		cal := testing.Benchmark(calibrationLoop)
		res := testing.Benchmark(fn)
		if cal.NsPerOp() <= 0 {
			continue
		}
		ratio := float64(res.NsPerOp()) / float64(cal.NsPerOp())
		if normalized == 0 || ratio < normalized {
			ns, normalized, iters = float64(res.NsPerOp()), ratio, res.N
		}
	}
	return ns, normalized, iters
}

// runBenchSuite measures the key-experiment suite with the testing
// harness and returns the normalized report. The suite runs pinned to
// GOMAXPROCS(1): several hot paths fan out goroutines (per-shard
// partitioning, per-worker joins), so unpinned timings would scale
// with the host's core count and normalized values would not compare
// across machines — exactly what the CI regression gate needs them to
// do.
func runBenchSuite(w io.Writer, seed uint64) (*BenchReport, error) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	report := &BenchReport{
		Schema:    benchSchema,
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
	}
	cal := testing.Benchmark(calibrationLoop)
	report.CalibrationNsPerOp = float64(cal.NsPerOp())
	if report.CalibrationNsPerOp <= 0 {
		return nil, fmt.Errorf("calibration benchmark measured %v ns/op", report.CalibrationNsPerOp)
	}
	fmt.Fprintf(w, "calibration: %.0f ns/op (%d iterations; re-measured per benchmark)\n",
		report.CalibrationNsPerOp, cal.N)

	tri := query.Triangle()
	rng := rand.New(rand.NewPCG(seed, 0xbe7c))
	triDB := relation.MatchingDatabase(rng, tri, 2000)
	zr, zs := skew.ZipfJoinInput(rand.New(rand.NewPCG(seed, 0x21f)), 1000, 1.1)
	joinQ := skew.JoinQuery()

	// reach-powerlaw input: a 200-edge graph whose target vertices
	// follow Zipf(1.2) — the hub structure that makes semi-naive
	// reachability converge in few, fat iterations.
	reachDB := relation.NewDatabase(200)
	reachDB.AddRelation(relation.SkewedZipf(rand.New(rand.NewPCG(seed, 0x9e11)), "e", []string{"y", "x"}, 200, 1.2))
	reachProg := datalog.MustParse("tc(x,y) :- e(x,y).\ntc(x,z) :- tc(x,y), e(y,z).")

	// agg-star input: a 3-spoke star schema, the shape whose grouped
	// aggregate folds entirely inside the gather merge.
	starQ := query.Star(3)
	starDB := relation.MatchingDatabase(rand.New(rand.NewPCG(seed, 0x57a1)), starQ, 1000)

	// E-SHUF's suite record times the experiment's exact measured
	// region — BeginRound + grid scatter + EndRound through the
	// columnar exchange, cluster construction excluded — so the
	// regression gate covers the tuples/s number the experiment
	// reports. The routed-tuple count per op is deterministic for a
	// fixed seed; dividing it by the per-op time yields tuples/s.
	eshufShares, err := hypercube.SharesForQuery(tri, 64, hypercube.GreedyRounding)
	if err != nil {
		return nil, err
	}
	eshufTuples, err := eshufRoutedTuples(tri, triDB, eshufShares, seed)
	if err != nil {
		return nil, err
	}

	// throughput maps a record name to its routed-tuple count per op;
	// listed records also report TuplesPerSec.
	throughput := map[string]int64{
		"eshuf-scatter-triangle-n2000-p64": eshufTuples,
	}

	suite := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"eshuf-scatter-triangle-n2000-p64", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cluster, err := mpc.NewCluster(mpc.Config{
					Workers: 64, Epsilon: 1, InputBits: triDB.InputBits(), DomainN: triDB.N,
				})
				if err != nil {
					b.Fatal(err)
				}
				hasher := hypercube.NewHasher(eshufShares, seed)
				b.StartTimer()
				cluster.BeginRound()
				for _, a := range tri.Atoms {
					rel, _ := triDB.Relation(a.Name)
					if err := cluster.ScatterPart(rel, hypercube.NewGridPartitioner(eshufShares, hasher, a)); err != nil {
						b.Fatal(err)
					}
				}
				if err := cluster.EndRound(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"shuffle-triangle-n2000-p64", func(b *testing.B) {
			shares, err := hypercube.SharesForQuery(tri, 64, hypercube.GreedyRounding)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				cluster, err := mpc.NewCluster(mpc.Config{
					Workers: 64, Epsilon: 1, InputBits: triDB.InputBits(), DomainN: triDB.N,
				})
				if err != nil {
					b.Fatal(err)
				}
				hasher := hypercube.NewHasher(shares, seed)
				cluster.BeginRound()
				for _, a := range tri.Atoms {
					rel, _ := triDB.Relation(a.Name)
					if err := cluster.ScatterPart(rel, hypercube.NewGridPartitioner(shares, hasher, a)); err != nil {
						b.Fatal(err)
					}
				}
				if err := cluster.EndRound(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"join-wcoj-triangle-n2000", func(b *testing.B) {
			bindings := localjoin.Bindings{}
			for _, a := range tri.Atoms {
				rel, _ := triDB.Relation(a.Name)
				bindings[a.Name] = rel.Tuples
			}
			for i := 0; i < b.N; i++ {
				if _, err := localjoin.Evaluate(tri, bindings, localjoin.WCOJ); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"join-hash-zipf-n1000", func(b *testing.B) {
			bindings := localjoin.Bindings{joinQ.Atoms[0].Name: zr.Tuples, joinQ.Atoms[1].Name: zs.Tuples}
			for i := 0; i < b.N; i++ {
				if _, err := localjoin.Evaluate(joinQ, bindings, localjoin.HashJoin); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"plan-build-triangle-p64", func(b *testing.B) {
			stats := relation.CollectStats(triDB)
			for i := 0; i < b.N; i++ {
				if _, err := plan.Build(tri, stats, plan.Options{P: 64}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"plan-execute-triangle-n2000-p16", func(b *testing.B) {
			pl, err := plan.Build(tri, relation.CollectStats(triDB), plan.Options{P: 16})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := pl.Execute(triDB, plan.ExecOptions{Seed: seed}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"delta-maintain-triangle-n512-p16", func(b *testing.B) {
			// Warm-path maintenance: one append batch plus the
			// deletion anti-join that undoes it, so the distribution
			// returns to its base state every iteration.
			db := relation.IdentityDatabase(tri, 512)
			m, err := hypercube.NewMaintainer(tri, db, 16, hypercube.Options{Seed: seed})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			add := map[string]relation.Effect{"S1": {Added: []relation.Tuple{{1, 2}}}}
			del := map[string]relation.Effect{"S1": {Removed: []relation.Tuple{{1, 2}}}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.ApplyDelta(add); err != nil {
					b.Fatal(err)
				}
				if _, err := m.ApplyDelta(del); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"reach-powerlaw", func(b *testing.B) {
			// Full semi-naive reachability per op: cold hypercube run
			// plus every warm delta iteration to the fixpoint.
			for i := 0; i < b.N; i++ {
				if _, err := datalog.Eval(reachProg, reachDB, datalog.Options{P: 8, Seed: seed}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"agg-star", func(b *testing.B) {
			pl, err := plan.Build(starQ, relation.CollectStats(starDB), plan.Options{P: 16})
			if err != nil {
				b.Fatal(err)
			}
			pl, err = pl.WithAggregate(relation.GroupSpec{
				GroupBy: []int{0},
				Aggs: []relation.Aggregate{
					{Func: relation.AggCount, Col: 1},
					{Func: relation.AggMax, Col: 3},
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := pl.Execute(starDB, plan.ExecOptions{Seed: seed}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"stats-collect-n2000", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				relation.CollectStats(triDB)
			}
		}},
		{"wire-encode-n16384", func(b *testing.B) {
			frame := wireBenchFrame(seed, 1<<14)
			for i := 0; i < b.N; i++ {
				if err := wire.Encode(io.Discard, frame); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"wire-decode-n16384", func(b *testing.B) {
			var buf bytes.Buffer
			if err := wire.Encode(&buf, wireBenchFrame(seed, 1<<14)); err != nil {
				b.Fatal(err)
			}
			data := buf.Bytes()
			for i := 0; i < b.N; i++ {
				if _, err := wire.Decode(bytes.NewReader(data)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"wire-fastpath-encode-n16384", func(b *testing.B) {
			frames := []*wire.Frame{wireBenchFrame(seed, 1<<14)}
			var head []byte
			for i := 0; i < b.N; i++ {
				var err error
				head, _, err = wire.AppendFrames(head[:0], frames)
				if err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"wire-fastpath-decode-n16384", func(b *testing.B) {
			head, bufs, err := wire.AppendFrames(nil, []*wire.Frame{wireBenchFrame(seed, 1<<14)})
			if err != nil {
				b.Fatal(err)
			}
			_ = head
			var buf bytes.Buffer
			for _, seg := range bufs {
				buf.Write(seg)
			}
			data := buf.Bytes()
			for i := 0; i < b.N; i++ {
				if _, err := wire.NewTrustedReader(bytes.NewReader(data)).Next(); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	for _, s := range suite {
		ns, normalized, iters := measureNormalized(s.fn)
		if normalized == 0 {
			return nil, fmt.Errorf("benchmark %s: calibration collapsed", s.name)
		}
		rec := BenchRecord{
			Name:       s.name,
			NsPerOp:    ns,
			Normalized: normalized,
			Iterations: iters,
		}
		if tuples := throughput[s.name]; tuples > 0 && ns > 0 {
			rec.TuplesPerSec = float64(tuples) / (ns * 1e-9)
		}
		report.Benchmarks = append(report.Benchmarks, rec)
		fmt.Fprintf(w, "%-36s %12.0f ns/op  normalized %8.3f  (%d iterations)",
			rec.Name, rec.NsPerOp, rec.Normalized, rec.Iterations)
		if rec.TuplesPerSec > 0 {
			fmt.Fprintf(w, "  %.3g tuples/s", rec.TuplesPerSec)
		}
		fmt.Fprintln(w)
	}
	return report, nil
}

// eshufRoutedTuples runs the E-SHUF scatter once and returns how many
// tuples one benchmark op routes — deterministic for a fixed seed, so
// tuples/s derived from it is reproducible.
func eshufRoutedTuples(q *query.Query, db *relation.Database, shares *hypercube.Shares, seed uint64) (int64, error) {
	cluster, err := mpc.NewCluster(mpc.Config{
		Workers: 64, Epsilon: 1, InputBits: db.InputBits(), DomainN: db.N,
	})
	if err != nil {
		return 0, err
	}
	hasher := hypercube.NewHasher(shares, seed)
	cluster.BeginRound()
	for _, a := range q.Atoms {
		rel, ok := db.Relation(a.Name)
		if !ok {
			return 0, fmt.Errorf("eshuf: missing relation %s", a.Name)
		}
		if err := cluster.ScatterPart(rel, hypercube.NewGridPartitioner(shares, hasher, a)); err != nil {
			return 0, err
		}
	}
	if err := cluster.EndRound(); err != nil {
		return 0, err
	}
	return cluster.Stats().Rounds[0].TotalTuples, nil
}

// wireBenchFrame builds the packed 3-ary data frame the wire suite
// benchmarks serialize (the shape a triangle scatter ships).
func wireBenchFrame(seed uint64, n int) *wire.Frame {
	rng := rand.New(rand.NewPCG(seed, 0x117e))
	b := exchange.NewBuffer(3)
	row := make(relation.Tuple, 3)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.IntN(1 << 20)
		}
		b.Append(row)
	}
	b.Seal()
	return &wire.Frame{Type: wire.TypeData, Data: wire.Data{Round: 1, Rel: "R", Buf: b}}
}

// writeBenchJSON writes the report to path.
func writeBenchJSON(path string, report *BenchReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// readBenchJSON loads a report from path.
func readBenchJSON(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report BenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &report, nil
}

// compareBenchReports gates the current run against the baseline: a
// benchmark regresses when its normalized per-op time exceeds the
// baseline's by more than maxRegress (0.25 = 25%). Benchmarks present
// on only one side are reported but never fail the gate, so the suite
// can grow. The returned error lists every regression.
func compareBenchReports(w io.Writer, baseline, current *BenchReport, maxRegress float64) error {
	if baseline.Schema != current.Schema {
		return fmt.Errorf("baseline schema %d != current %d; regenerate the baseline", baseline.Schema, current.Schema)
	}
	base := make(map[string]BenchRecord, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	var regressions []string
	for _, cur := range current.Benchmarks {
		b, ok := base[cur.Name]
		if !ok {
			fmt.Fprintf(w, "NEW      %-36s normalized %.3f (no baseline)\n", cur.Name, cur.Normalized)
			continue
		}
		delete(base, cur.Name)
		if b.Normalized <= 0 {
			fmt.Fprintf(w, "SKIP     %-36s baseline normalized %.3f unusable\n", cur.Name, b.Normalized)
			continue
		}
		ratio := cur.Normalized / b.Normalized
		verdict := "ok"
		if ratio > 1+maxRegress {
			verdict = "REGRESSED"
			regressions = append(regressions,
				fmt.Sprintf("%s: normalized %.3f vs baseline %.3f (%.0f%% slower, budget %.0f%%)",
					cur.Name, cur.Normalized, b.Normalized, (ratio-1)*100, maxRegress*100))
		}
		fmt.Fprintf(w, "%-8s %-36s %.3f vs %.3f (x%.2f)\n", verdict, cur.Name, cur.Normalized, b.Normalized, ratio)
	}
	for name := range base {
		fmt.Fprintf(w, "GONE     %-36s in baseline only\n", name)
	}
	if len(regressions) > 0 {
		msg := "benchmark regression gate failed:"
		for _, r := range regressions {
			msg += "\n  " + r
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}
