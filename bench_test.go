package repro

// Benchmark harness: one benchmark per table and figure of the paper,
// plus the quantitative experiments implied by the theorems and the
// design-choice ablations called out in DESIGN.md §5. Domain metrics
// (round counts, load ratios, answer fractions) are attached to each
// benchmark via b.ReportMetric, so `go test -bench . -benchmem`
// regenerates the paper's numbers alongside timing data.

import (
	"fmt"
	"io"
	"math/big"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/exchange"
	"repro/internal/experiments"
	"repro/internal/hypercube"
	"repro/internal/localjoin"
	"repro/internal/mpc"
	"repro/internal/multiround"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/skew"
	"repro/internal/theory"
	"repro/internal/witness"
)

// BenchmarkTable1 regenerates Table 1 (expected answer sizes, vertex
// covers, share exponents, τ*, space exponents).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(io.Discard, 200, 3, 2013); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (rounds/space tradeoffs).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1 solves both Figure 1 LPs for the running examples.
func BenchmarkFigure1(b *testing.B) {
	qs := []*query.Query{query.Chain(3), query.Cycle(3), query.Star(3), query.Binom(4, 2)}
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure1(io.Discard, qs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHCLoad measures the one-round HyperCube max load against
// the Proposition 3.2 bound (experiment E-HC), one sub-benchmark per
// query family and p.
func BenchmarkHCLoad(b *testing.B) {
	for _, tc := range []struct {
		q *query.Query
		p int
	}{
		{query.Cycle(3), 64},
		{query.Cycle(3), 256},
		{query.Chain(3), 64},
		{query.Star(3), 64},
	} {
		b.Run(fmt.Sprintf("%s/p=%d", tc.q.Name, tc.p), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(1, 1))
			n := 3000
			db := relation.MatchingDatabase(rng, tc.q, n)
			a, err := core.Analyze(tc.q)
			if err != nil {
				b.Fatal(err)
			}
			epsF, _ := a.SpaceExponent.Float64()
			var ratio float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := hypercube.Run(tc.q, db, tc.p, hypercube.Options{
					Epsilon: epsF, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				tauF, _ := a.Tau.Float64()
				bound := float64(tc.q.NumAtoms()) * hypercube.TheoreticalLoad(n, tc.p, tauF)
				ratio = float64(res.Stats.MaxLoadTuples()) / bound
			}
			b.ReportMetric(ratio, "load/bound")
		})
	}
}

// BenchmarkOneRoundFraction runs the Prop 3.11 sampled algorithm below
// the space exponent (experiment E-LB1) and reports the found answer
// fraction against the Theorem 3.3 ceiling.
func BenchmarkOneRoundFraction(b *testing.B) {
	for _, p := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("C3/eps=0/p=%d", p), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(2, 2))
			q := query.Cycle(3)
			n := 2000
			const trials = 12 // E[|C3|] = 1 per db; aggregate for a stable fraction
			var measured, predicted float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				found, total := 0, 0
				for trial := 0; trial < trials; trial++ {
					db := relation.MatchingDatabase(rng, q, n)
					truth, err := core.GroundTruth(q, db)
					if err != nil {
						b.Fatal(err)
					}
					res, err := hypercube.RunSampled(q, db, p, hypercube.Options{
						Epsilon: 0, Seed: rng.Uint64(),
					})
					if err != nil {
						b.Fatal(err)
					}
					found += len(res.Answers)
					total += len(truth)
				}
				if total > 0 {
					measured = float64(found) / float64(total)
				}
				var err error
				predicted, err = theory.OneRoundFraction(q, 0, p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(measured, "fraction")
			b.ReportMetric(predicted, "ceiling")
		})
	}
}

// BenchmarkMultiRound builds and executes Γ^r_ε plans (experiment
// E-MR), reporting the executed round count.
func BenchmarkMultiRound(b *testing.B) {
	for _, tc := range []struct {
		k       int
		eps     *big.Rat
		epsName string
	}{
		{8, big.NewRat(0, 1), "0"},
		{16, big.NewRat(0, 1), "0"},
		{16, big.NewRat(1, 2), "1_2"},
		{64, big.NewRat(1, 2), "1_2"},
	} {
		b.Run(fmt.Sprintf("L%d/eps=%s", tc.k, tc.epsName), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(3, 3))
			q := query.Chain(tc.k)
			db := relation.MatchingDatabase(rng, q, 500)
			var rounds int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan, err := multiround.Build(q, tc.eps)
				if err != nil {
					b.Fatal(err)
				}
				res, err := multiround.Execute(plan, db, 16, multiround.Options{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkRoundBounds verifies the (ε,r)-plan certificates
// (experiment E-RLB).
func BenchmarkRoundBounds(b *testing.B) {
	epss := []*big.Rat{big.NewRat(0, 1), big.NewRat(1, 2)}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RoundBounds(io.Discard, epss); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConnectedComponents runs the Theorem 4.10 experiment
// (E-CC), reporting the round count of each strategy on the layered
// family.
func BenchmarkConnectedComponents(b *testing.B) {
	for _, p := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(4, 4))
			layers := 2
			for layers*layers < p {
				layers++
			}
			g, err := cc.Layered(rng, layers, 8)
			if err != nil {
				b.Fatal(err)
			}
			var nm, h2m int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rn, err := cc.Run(g, cc.NeighborMin, cc.Options{Workers: p, Epsilon: 0.5, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				rh, err := cc.Run(g, cc.HashToMin, cc.Options{Workers: p, Epsilon: 0.5, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				nm, h2m = rn.Rounds, rh.Rounds
			}
			b.ReportMetric(float64(nm), "neighbor-min-rounds")
			b.ReportMetric(float64(h2m), "hash-to-min-rounds")
		})
	}
}

// BenchmarkWitness runs the Proposition 3.12 JOIN-WITNESS experiment
// (E-WIT) and reports the conditional success probability.
func BenchmarkWitness(b *testing.B) {
	for _, tc := range []struct {
		p   int
		eps float64
	}{
		{64, 0.0},
		{64, 0.5},
	} {
		b.Run(fmt.Sprintf("p=%d/eps=%.1f", tc.p, tc.eps), func(b *testing.B) {
			var prob float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewPCG(5, uint64(i)))
				pr, err := witness.SuccessProbability(rng, 144, tc.p, tc.eps, 4)
				if err != nil {
					b.Fatal(err)
				}
				prob = pr
			}
			b.ReportMetric(prob, "success")
		})
	}
}

// --- ablation benches (DESIGN.md §5) ---

// BenchmarkShareRounding compares greedy vs floor-only integer share
// rounding by realized grid utilization.
func BenchmarkShareRounding(b *testing.B) {
	q := query.Triangle()
	for _, mode := range []struct {
		name string
		m    hypercube.RoundingMode
	}{
		{"greedy", hypercube.GreedyRounding},
		{"floor", hypercube.FloorRounding},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var util float64
			p := 50 // not a perfect cube: rounding matters
			for i := 0; i < b.N; i++ {
				s, err := hypercube.SharesForQuery(q, p, mode.m)
				if err != nil {
					b.Fatal(err)
				}
				util = float64(s.GridSize()) / float64(p)
			}
			b.ReportMetric(util, "grid-utilization")
		})
	}
}

// BenchmarkHashSkew measures the max/mean load ratio of the HC hash
// routing on matching databases (hashing quality ablation).
func BenchmarkHashSkew(b *testing.B) {
	rng := rand.New(rand.NewPCG(6, 6))
	q := query.Triangle()
	n := 4000
	p := 64
	db := relation.MatchingDatabase(rng, q, n)
	var skew float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hypercube.Run(q, db, p, hypercube.Options{Epsilon: 1.0 / 3.0, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		total := res.Stats.Rounds[0].TotalTuples
		mean := float64(total) / float64(p)
		skew = float64(res.Stats.MaxLoadTuples()) / mean
	}
	b.ReportMetric(skew, "max/mean")
}

// BenchmarkLocalJoin compares the two per-worker join strategies.
func BenchmarkLocalJoin(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 7))
	q := query.Cycle(3)
	n := 400
	db := relation.MatchingDatabase(rng, q, n)
	bindings, err := localjoin.FromDatabase(q, db)
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range joinStrategies {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := localjoin.Evaluate(q, bindings, strat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// joinStrategies are the head-to-head contenders for the local join
// benchmarks below: the pairwise hash pipeline, the tuple-at-a-time
// backtracking join, and the worst-case-optimal leapfrog join.
var joinStrategies = []localjoin.Strategy{localjoin.HashJoin, localjoin.Backtracking, localjoin.WCOJ}

// BenchmarkJoinTriangle is the cyclic-query head-to-head: the triangle
// C3 on matching databases. At n ≥ 10^4 the WCOJ strategy must beat
// backtracking (whose candidate scans are quadratic here) and stay in
// the same league as the hash pipeline (whose pairwise intermediate is
// linear on matchings but quadratic on skewed inputs).
func BenchmarkJoinTriangle(b *testing.B) {
	q := query.Triangle()
	for _, n := range []int{1000, 10000} {
		rng := rand.New(rand.NewPCG(11, uint64(n)))
		db := relation.MatchingDatabase(rng, q, n)
		bindings, err := localjoin.FromDatabase(q, db)
		if err != nil {
			b.Fatal(err)
		}
		for _, strat := range joinStrategies {
			b.Run(fmt.Sprintf("%v/n=%d", strat, n), func(b *testing.B) {
				var answers int
				for i := 0; i < b.N; i++ {
					out, err := localjoin.Evaluate(q, bindings, strat)
					if err != nil {
						b.Fatal(err)
					}
					answers = len(out)
				}
				b.ReportMetric(float64(answers), "answers")
			})
		}
	}
}

// BenchmarkJoinZipf is the skewed head-to-head: R(x,y) ⋈ S(y,z) with
// Zipf(1.1)-distributed join values, where heavy hitters make the
// output (and the hash join's probe lists) large.
func BenchmarkJoinZipf(b *testing.B) {
	rng := rand.New(rand.NewPCG(12, 12))
	q := skew.JoinQuery()
	r, s := skew.ZipfJoinInput(rng, 5000, 1.1)
	bindings := localjoin.Bindings{"R": r.Tuples, "S": s.Tuples}
	for _, strat := range joinStrategies {
		b.Run(strat.String(), func(b *testing.B) {
			var answers int
			for i := 0; i < b.N; i++ {
				out, err := localjoin.Evaluate(q, bindings, strat)
				if err != nil {
					b.Fatal(err)
				}
				answers = len(out)
			}
			b.ReportMetric(float64(answers), "answers")
		})
	}
}

// BenchmarkJoinMatchingChain is the skew-free control: the two-atom
// chain join on matching inputs, where every strategy produces exactly
// n answers and WCOJ must at least match the hash join.
func BenchmarkJoinMatchingChain(b *testing.B) {
	rng := rand.New(rand.NewPCG(13, 13))
	q := skew.JoinQuery()
	r, s := skew.MatchingJoinInput(rng, 10000)
	bindings := localjoin.Bindings{"R": r.Tuples, "S": s.Tuples}
	for _, strat := range joinStrategies {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := localjoin.Evaluate(q, bindings, strat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCCStrategies times neighbor-min vs hash-to-min end to end.
func BenchmarkCCStrategies(b *testing.B) {
	rng := rand.New(rand.NewPCG(8, 8))
	g, err := cc.Layered(rng, 16, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, algo := range []cc.Algorithm{cc.NeighborMin, cc.HashToMin} {
		b.Run(algo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cc.Run(g, algo, cc.Options{Workers: 16, Seed: uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSkewJoin contrasts the two routing disciplines on Zipf
// inputs (experiment E-SKEW), reporting the max-load ratio vs ideal.
func BenchmarkSkewJoin(b *testing.B) {
	rng := rand.New(rand.NewPCG(10, 10))
	n, p := 3000, 32
	r, s := skew.ZipfJoinInput(rng, n, 1.1)
	ideal := 2 * float64(n) / float64(p)
	for _, mode := range []skew.Mode{skew.Standard, skew.Resilient} {
		b.Run(mode.String(), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res, err := skew.RunJoin(r, s, p, mode, skew.Options{Seed: uint64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(res.MaxLoadTuples) / ideal
			}
			b.ReportMetric(ratio, "load/ideal")
		})
	}
}

// BenchmarkOptimalShares times the exhaustive size-aware share search
// (experiment E-OPT) and reports its advantage over cover shares.
func BenchmarkOptimalShares(b *testing.B) {
	q := query.CartesianPair()
	sizes := map[string]int{"R": 1000, "S": 64000}
	p := 64
	coverShares, err := hypercube.SharesForQuery(q, p, hypercube.GreedyRounding)
	if err != nil {
		b.Fatal(err)
	}
	coverCost, err := hypercube.CommunicationCost(q, coverShares, sizes)
	if err != nil {
		b.Fatal(err)
	}
	var gain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := hypercube.OptimalSharesForSizes(q, sizes, p)
		if err != nil {
			b.Fatal(err)
		}
		optCost, err := hypercube.CommunicationCost(q, opt, sizes)
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(coverCost) / float64(optCost)
	}
	b.ReportMetric(gain, "cover/optimal")
}

// BenchmarkFriedgut times the inequality verification (experiment
// E-FRIED).
func BenchmarkFriedgut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.FriedgutCheck(io.Discard, 10, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKnowledge runs the bit-budgeted knowledge experiment
// (E-KNOW, Lemmas 3.6/3.7).
func BenchmarkKnowledge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Knowledge(io.Discard, 60, 20, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanBuilders compares the greedy Γ^r_ε builder with the
// literal Lemma 4.3 radial construction, reporting round counts.
func BenchmarkPlanBuilders(b *testing.B) {
	q := query.SpokedWheel(4)
	eps := big.NewRat(0, 1)
	b.Run("greedy", func(b *testing.B) {
		var rounds int
		for i := 0; i < b.N; i++ {
			plan, err := multiround.Build(q, eps)
			if err != nil {
				b.Fatal(err)
			}
			rounds = plan.Rounds()
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("radial", func(b *testing.B) {
		var rounds int
		for i := 0; i < b.N; i++ {
			plan, err := multiround.BuildRadial(q, eps)
			if err != nil {
				b.Fatal(err)
			}
			rounds = plan.Rounds()
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
}

// --- shuffle head-to-heads: legacy per-tuple routing vs the columnar
// exchange (internal/exchange) ---

// legacyMessage and legacyShuffle reproduce the historic per-tuple
// message path the exchange layer replaced: a recursive per-tuple
// destination closure, map[int]*Message accumulation, and per-worker
// mutex-locked []Tuple append stores with per-message bit accounting.
type legacyMessage struct {
	to     int
	rel    string
	tuples []relation.Tuple
}

// legacyDestinations is the pre-exchange recursive enumeration,
// allocating its closure state per tuple.
func legacyDestinations(s *hypercube.Shares, h *hypercube.Hasher, atom query.Atom, t relation.Tuple) []int {
	k := len(s.Dims)
	fixed := make([]int, k)
	isFixed := make([]bool, k)
	for pos, v := range atom.Vars {
		d := s.DimOf(v)
		if d < 0 {
			continue
		}
		c := h.Coord(d, t[pos])
		if isFixed[d] && fixed[d] != c {
			return nil
		}
		fixed[d] = c
		isFixed[d] = true
	}
	var free []int
	for d := 0; d < k; d++ {
		if !isFixed[d] {
			free = append(free, d)
		}
	}
	coords := make([]int, k)
	copy(coords, fixed)
	var out []int
	var rec func(i int)
	rec = func(i int) {
		if i == len(free) {
			out = append(out, s.ServerOf(coords))
			return
		}
		d := free[i]
		for c := 0; c < s.Dims[d]; c++ {
			coords[d] = c
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// legacyShuffle scatters db's relations for q with the per-tuple path
// and returns (routed tuples, accounted bits).
func legacyShuffle(q *query.Query, db *relation.Database, p int, s *hypercube.Shares, h *hypercube.Hasher) (int64, int64) {
	type worker struct {
		mu    sync.Mutex
		store map[string][]relation.Tuple
	}
	workers := make([]*worker, p)
	for i := range workers {
		workers[i] = &worker{store: make(map[string][]relation.Tuple)}
	}
	bitsPerValue := relation.BitsPerValue(db.N)
	var tuples, bits int64
	for _, a := range q.Atoms {
		rel, _ := db.Relation(a.Name)
		msgs := make(map[int]*legacyMessage)
		for _, t := range rel.Tuples {
			for _, dst := range legacyDestinations(s, h, a, t) {
				m, ok := msgs[dst]
				if !ok {
					m = &legacyMessage{to: dst, rel: a.Name}
					msgs[dst] = m
				}
				m.tuples = append(m.tuples, t)
			}
		}
		for _, m := range msgs {
			w := workers[m.to]
			w.mu.Lock()
			w.store[m.rel] = append(w.store[m.rel], m.tuples...)
			w.mu.Unlock()
			tuples += int64(len(m.tuples))
			bits += int64(len(m.tuples)) * int64(len(m.tuples[0])) * int64(bitsPerValue)
		}
	}
	return tuples, bits
}

// exchangeShuffle scatters db's relations for q through the columnar
// exchange and returns (routed tuples, accounted bits).
func exchangeShuffle(b *testing.B, q *query.Query, db *relation.Database, p int, s *hypercube.Shares, h *hypercube.Hasher) (int64, int64) {
	cluster, err := mpc.NewCluster(mpc.Config{
		Workers: p, Epsilon: 1, InputBits: db.InputBits(), DomainN: db.N,
	})
	if err != nil {
		b.Fatal(err)
	}
	cluster.BeginRound()
	for _, a := range q.Atoms {
		rel, _ := db.Relation(a.Name)
		if err := cluster.ScatterPart(rel, hypercube.NewGridPartitioner(s, h, a)); err != nil {
			b.Fatal(err)
		}
	}
	if err := cluster.EndRound(); err != nil {
		b.Fatal(err)
	}
	rs := cluster.Stats().Rounds[0]
	return rs.TotalTuples, rs.TotalBits
}

// BenchmarkShuffleTriangle is the acceptance head-to-head: the
// HyperCube scatter of the triangle query at n = 10^4 must run ≥ 2×
// faster through the columnar exchange than through the per-tuple
// path. Reported metrics: routed Mtuples/s and accounted MiB/s.
func BenchmarkShuffleTriangle(b *testing.B) {
	q := query.Triangle()
	n, p := 10000, 64
	rng := rand.New(rand.NewPCG(21, 21))
	db := relation.MatchingDatabase(rng, q, n)
	s, err := hypercube.SharesForQuery(q, p, hypercube.GreedyRounding)
	if err != nil {
		b.Fatal(err)
	}
	h := hypercube.NewHasher(s, 5)
	report := func(b *testing.B, tuples, bits int64) {
		sec := b.Elapsed().Seconds()
		if sec > 0 {
			b.ReportMetric(float64(tuples)*float64(b.N)/sec/1e6, "Mtuples/s")
			b.ReportMetric(float64(bits)*float64(b.N)/8/(1<<20)/sec, "MiB/s")
		}
	}
	b.Run("legacy-per-tuple", func(b *testing.B) {
		var tuples, bits int64
		for i := 0; i < b.N; i++ {
			tuples, bits = legacyShuffle(q, db, p, s, h)
		}
		report(b, tuples, bits)
	})
	b.Run("exchange", func(b *testing.B) {
		var tuples, bits int64
		for i := 0; i < b.N; i++ {
			tuples, bits = exchangeShuffle(b, q, db, p, s, h)
		}
		report(b, tuples, bits)
	})
}

// BenchmarkShuffleHashJoin is the plain-hash shuffle head-to-head on
// the Zipf join inputs of E-SKEW.
func BenchmarkShuffleHashJoin(b *testing.B) {
	rng := rand.New(rand.NewPCG(22, 22))
	n, p := 20000, 32
	r, s := skew.ZipfJoinInput(rng, n, 1.1)
	seed := uint64(9)
	yR := r.AttrIndex("y")
	yS := s.AttrIndex("y")
	b.Run("legacy-per-tuple", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stores := make([]map[string][]relation.Tuple, p)
			for j := range stores {
				stores[j] = make(map[string][]relation.Tuple)
			}
			msgs := make(map[int]*legacyMessage)
			for _, t := range r.Tuples {
				dst := exchange.HashDest(t[yR], seed, p)
				m, ok := msgs[dst]
				if !ok {
					m = &legacyMessage{to: dst, rel: "R"}
					msgs[dst] = m
				}
				m.tuples = append(m.tuples, t)
			}
			for _, t := range s.Tuples {
				dst := exchange.HashDest(t[yS], seed, p)
				m, ok := msgs[dst+p] // second relation keyed apart
				if !ok {
					m = &legacyMessage{to: dst, rel: "S"}
					msgs[dst+p] = m
				}
				m.tuples = append(m.tuples, t)
			}
			for _, m := range msgs {
				stores[m.to][m.rel] = append(stores[m.to][m.rel], m.tuples...)
			}
		}
	})
	b.Run("exchange", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster, err := mpc.NewCluster(mpc.Config{
				Workers: p, Epsilon: 1, InputBits: 1 << 30, DomainN: n,
			})
			if err != nil {
				b.Fatal(err)
			}
			cluster.BeginRound()
			if err := cluster.ScatterPart(r, exchange.HashPartitioner{Col: yR, P: p, Seed: seed}); err != nil {
				b.Fatal(err)
			}
			if err := cluster.ScatterPart(s, exchange.HashPartitioner{Col: yS, P: p, Seed: seed}); err != nil {
				b.Fatal(err)
			}
			if err := cluster.EndRound(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- micro benches for the substrates ---

// BenchmarkLPSolve times the exact simplex on the Figure 1 LPs.
func BenchmarkLPSolve(b *testing.B) {
	for _, q := range []*query.Query{query.Cycle(6), query.Chain(10), query.Binom(5, 2)} {
		b.Run(q.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cover.Solve(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHyperCubeRouting times tuple destination computation.
func BenchmarkHyperCubeRouting(b *testing.B) {
	q := query.Triangle()
	s := &hypercube.Shares{Vars: q.Vars(), Dims: []int{4, 4, 4}}
	h := hypercube.NewHasher(s, 9)
	t := relation.Tuple{123, 456}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hypercube.Destinations(s, h, q.Atoms[0], t)
	}
}

// BenchmarkMatchingGeneration times matching database generation.
func BenchmarkMatchingGeneration(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 9))
	q := query.Cycle(3)
	for i := 0; i < b.N; i++ {
		relation.MatchingDatabase(rng, q, 10000)
	}
}
