package repro

// Multi-tenant ops end-to-end: a serve.Server executing on four real
// mpcworker processes, two tenants with different rate quotas. The
// roomy tenant's queries must all complete while the tight tenant is
// throttled with exact 429 counts; the Prometheus exposition and the
// per-round distributed traces must both reflect what HTTP observed.
// Gated on MPCWORKER_BIN like the distributed integration test; CI's
// ops-e2e job builds the binary and runs this. Locally:
//
//	go build -o /tmp/mpcworker ./cmd/mpcworker
//	MPCWORKER_BIN=/tmp/mpcworker go test -run TestOpsE2E -v .

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// opsPost issues an authenticated JSON POST and decodes the reply
// into out when the status matches.
func opsPost(t *testing.T, url, key string, body, out any, wantStatus int) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d: %s", url, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: bad body %q: %v", url, raw, err)
		}
	}
	return resp
}

// TestOpsE2E is the CI ops-e2e job's body.
func TestOpsE2E(t *testing.T) {
	bin := os.Getenv("MPCWORKER_BIN")
	if bin == "" {
		t.Skip("MPCWORKER_BIN not set; run the in-process tenant suite in internal/serve instead")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const p = 4
	addrs := spawnWorkers(t, ctx, bin, p)

	// A frozen clock makes the token buckets deterministic: the tight
	// tenant's bucket never refills, so its 429 count is exact.
	at := time.Unix(1_700_000_000, 0)
	srv := serve.New(serve.Config{
		WorkerAddrs: addrs,
		Now:         func() time.Time { return at },
		Tenants: []serve.TenantConfig{
			{Name: "roomy", Key: "key-roomy", QPS: 1, Burst: 100},
			{Name: "tight", Key: "key-tight", QPS: 1, Burst: 2},
		},
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// The roomy tenant registers a uniform matching dataset; its bytes
	// land on that tenant's residency account.
	var ds serve.DatasetInfo
	opsPost(t, hs.URL+"/datasets", "key-roomy", serve.DatasetRequest{
		Name:      "tri",
		Generator: &serve.GeneratorSpec{Family: "C3", N: 400, Seed: 11},
	}, &ds, http.StatusCreated)
	roomyTen, _ := srv.Tenants().Get("roomy")
	if roomyTen.ResidentBytes() == 0 {
		t.Fatal("dataset registration booked no resident bytes")
	}

	// Interleave the two tenants: tight gets exactly Burst=2 successes
	// and 4 429s; every roomy query completes on the worker pool.
	queryBody := serve.QueryRequest{Dataset: "tri", Family: "C3"}
	var roomyIDs []string
	tightOK, tight429 := 0, 0
	for i := 0; i < 6; i++ {
		var qr serve.QueryResponse
		opsPost(t, hs.URL+"/query", "key-roomy", queryBody, &qr, http.StatusOK)
		if qr.Tenant != "roomy" || qr.QueryID == "" {
			t.Fatalf("roomy response: %+v", qr)
		}
		roomyIDs = append(roomyIDs, qr.QueryID)

		req, _ := http.NewRequest(http.MethodPost, hs.URL+"/query", bytes.NewReader(mustJSON(t, queryBody)))
		req.Header.Set("X-API-Key", "key-tight")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			tightOK++
		case http.StatusTooManyRequests:
			tight429++
			var qe serve.QuotaError
			if err := json.Unmarshal(raw, &qe); err != nil {
				t.Fatalf("429 body %q: %v", raw, err)
			}
			if qe.Tenant != "tight" || qe.Reason != serve.ReasonRate || qe.RetryAfterMs <= 0 {
				t.Fatalf("429 body = %+v", qe)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After header")
			}
		default:
			t.Fatalf("tight query: status %d: %s", resp.StatusCode, raw)
		}
	}
	if tightOK != 2 || tight429 != 4 {
		t.Fatalf("tight tenant: ok=%d throttled=%d, want ok=2 throttled=4", tightOK, tight429)
	}

	// The metric exposition carries the same split, per tenant.
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`mpcserve_tenant_queries_total{tenant="roomy"} 6`,
		`mpcserve_tenant_queries_total{tenant="tight"} 2`,
		`mpcserve_tenant_rejected_total{tenant="tight",reason="rate"} 4`,
		`mpcserve_tenant_rejected_total{tenant="roomy",reason="rate"} 0`,
		`mpcserve_distributed_queries_total 8`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Every roomy execution left a full distributed trace: one round
	// span per round, one worker span per worker per round, actual
	// received load within the planner's per-worker bound.
	for _, qid := range roomyIDs {
		tresp, err := http.Get(hs.URL + "/trace/" + qid)
		if err != nil {
			t.Fatal(err)
		}
		traw, _ := io.ReadAll(tresp.Body)
		tresp.Body.Close()
		if tresp.StatusCode != http.StatusOK {
			t.Fatalf("GET /trace/%s: status %d: %s", qid, tresp.StatusCode, traw)
		}
		var tr struct {
			Tenant              string  `json:"tenant"`
			P                   int     `json:"p"`
			PredictedLoadTuples float64 `json:"predictedLoadTuples"`
			BudgetLoadTuples    int64   `json:"budgetLoadTuples"`
			DurationNs          int64   `json:"durationNs"`
			Spans               []struct {
				Name       string `json:"name"`
				Worker     int    `json:"worker"`
				LoadTuples int64  `json:"loadTuples"`
			} `json:"spans"`
		}
		if err := json.Unmarshal(traw, &tr); err != nil {
			t.Fatal(err)
		}
		if tr.Tenant != "roomy" || tr.P != p || tr.DurationNs == 0 {
			t.Fatalf("trace %s header: %s", qid, traw)
		}
		bound := float64(tr.BudgetLoadTuples)
		if bound <= 0 {
			bound = 2 * tr.PredictedLoadTuples
		}
		rounds, workers := 0, 0
		for _, s := range tr.Spans {
			switch s.Name {
			case "round":
				rounds++
			case "worker":
				workers++
				if float64(s.LoadTuples) > bound {
					t.Errorf("trace %s: worker %d actual load %d over planner bound %.1f (predicted L %.1f)",
						qid, s.Worker, s.LoadTuples, bound, tr.PredictedLoadTuples)
				}
			}
		}
		if rounds == 0 || workers != rounds*p {
			t.Fatalf("trace %s: %d round spans, %d worker spans (want %d)", qid, rounds, workers, rounds*p)
		}
	}

	// Operator surface sanity: /ops reflects both tenants, /ui serves.
	var ops serve.OpsReport
	oresp, err := http.Get(hs.URL + "/ops")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(oresp.Body).Decode(&ops); err != nil {
		t.Fatal(err)
	}
	oresp.Body.Close()
	if !ops.MultiTenant || len(ops.Tenants) != 2 || len(ops.Queries) != 8 {
		t.Fatalf("ops report: multiTenant=%v tenants=%d queries=%d", ops.MultiTenant, len(ops.Tenants), len(ops.Queries))
	}
	uresp, err := http.Get(hs.URL + "/ui")
	if err != nil {
		t.Fatal(err)
	}
	ui, _ := io.ReadAll(uresp.Body)
	uresp.Body.Close()
	if uresp.StatusCode != http.StatusOK || !bytes.Contains(ui, []byte("operator console")) {
		t.Fatalf("GET /ui: status %d, %d bytes", uresp.StatusCode, len(ui))
	}
}

// mustJSON marshals v or fails the test.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
