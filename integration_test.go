package repro

// Cross-module integration tests: every theorem-level claim of the
// paper exercised end to end through the public surface of the
// subsystems (analysis → data generation → cluster execution →
// verification against single-node ground truth).

import (
	"io"
	"math"
	"math/big"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hypercube"
	"repro/internal/multiround"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/theory"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

// TestTheorem11UpperBound: for each Table 1 family, HC at ε = 1−1/τ*
// finds every answer in one round and its load tracks n/p^{1/τ*}.
func TestTheorem11UpperBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 1))
	queries := []*query.Query{
		query.Cycle(3), query.Cycle(4), query.Star(3),
		query.Chain(2), query.Chain(3), query.Chain(4), query.Binom(3, 2),
	}
	n := 600
	p := 64
	for _, q := range queries {
		db := relation.MatchingDatabase(rng, q, n)
		truth, err := core.GroundTruth(q, db)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.EvaluateOneRound(q, db, p, core.OneRoundOptions{Epsilon: -1, Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if len(res.Answers) != len(truth) {
			t.Errorf("%s: one-round HC found %d answers, truth %d", q.Name, len(res.Answers), len(truth))
		}
		if res.Stats.NumRounds() != 1 {
			t.Errorf("%s: %d rounds, want 1", q.Name, res.Stats.NumRounds())
		}
	}
}

// TestTheorem11LowerBoundShape: below the space exponent the sampled
// algorithm's answer fraction decays polynomially with p and never
// exceeds a constant multiple of the Theorem 3.3 ceiling.
func TestTheorem11LowerBoundShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 1))
	q := query.Cycle(3)
	n := 5000
	trials := 6
	fractions := map[int]float64{}
	for _, p := range []int{16, 256} {
		found, total := 0, 0
		for trial := 0; trial < trials; trial++ {
			db := relation.MatchingDatabase(rng, q, n)
			truth, err := core.GroundTruth(q, db)
			if err != nil {
				t.Fatal(err)
			}
			res, err := hypercube.RunSampled(q, db, p, hypercube.Options{Epsilon: 0, Seed: rng.Uint64()})
			if err != nil {
				t.Fatal(err)
			}
			found += len(res.Answers)
			total += len(truth)
		}
		if total == 0 {
			t.Skip("no triangles in any trial; unlucky seeds")
		}
		fractions[p] = float64(found) / float64(total)
	}
	// Ceiling at p: p^{-1/2} → 0.25 at p=16, 0.0625 at p=256. The
	// measured fraction must shrink with p.
	if fractions[256] >= fractions[16] && fractions[16] > 0 {
		t.Errorf("fraction did not decay with p: %v", fractions)
	}
}

// TestTheorem12RoundTradeoff: the full lower/upper/actual round
// pipeline for tree-like queries across ε, on real executions.
func TestTheorem12RoundTradeoff(t *testing.T) {
	rng := rand.New(rand.NewPCG(102, 1))
	n := 120
	p := 16
	for _, tc := range []struct {
		k   int
		eps *big.Rat
	}{
		{5, rat(0, 1)}, {8, rat(0, 1)}, {16, rat(1, 2)}, {9, rat(1, 2)},
	} {
		q := query.Chain(tc.k)
		db := relation.MatchingDatabase(rng, q, n)
		truth, err := core.GroundTruth(q, db)
		if err != nil {
			t.Fatal(err)
		}
		lower, err := theory.RoundsLowerBound(q, tc.eps)
		if err != nil {
			t.Fatal(err)
		}
		upper, err := theory.RoundsUpperBound(q, tc.eps)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.EvaluateMultiRound(q, db, p, tc.eps, core.MultiRoundOptions{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds < lower || res.Rounds > upper {
			t.Errorf("L%d at ε=%s: executed %d rounds outside [%d,%d]",
				tc.k, tc.eps.RatString(), res.Rounds, lower, upper)
		}
		if len(res.Answers) != len(truth) {
			t.Errorf("L%d: incomplete answers %d/%d", tc.k, len(res.Answers), len(truth))
		}
	}
}

// TestTheorem45Certificates: the (ε,r)-plan machinery certifies
// exactly the Corollary 4.8 bounds for chains.
func TestTheorem45Certificates(t *testing.T) {
	for _, eps := range []*big.Rat{rat(0, 1), rat(1, 2)} {
		ke, err := theory.KEpsilon(eps)
		if err != nil {
			t.Fatal(err)
		}
		for k := ke + 1; k <= 3*ke*ke; k += ke - 1 {
			plan, err := theory.ChainPlan(k, eps)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := plan.Verify(eps); err != nil {
				t.Fatalf("L%d at ε=%s: %v", k, eps.RatString(), err)
			}
			want, err := theory.ChainRoundsLower(k, eps)
			if err != nil {
				t.Fatal(err)
			}
			if plan.LowerBound() != want {
				t.Errorf("L%d at ε=%s: certificate %d != formula %d",
					k, eps.RatString(), plan.LowerBound(), want)
			}
		}
	}
}

// TestLemma34ExpectedAnswers: measured answer counts on random
// matching databases match n^{1+χ} for the exact families and are of
// the right order for C3.
func TestLemma34ExpectedAnswers(t *testing.T) {
	rng := rand.New(rand.NewPCG(103, 1))
	n := 300
	// L_k and T_k: exactly n answers always.
	for _, q := range []*query.Query{query.Chain(3), query.Star(4)} {
		db := relation.MatchingDatabase(rng, q, n)
		truth, err := core.GroundTruth(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if len(truth) != n {
			t.Errorf("%s: %d answers, want exactly %d", q.Name, len(truth), n)
		}
	}
	// C3: E = 1; mean over trials should be within a small factor.
	trials := 120
	total := 0
	q := query.Triangle()
	for i := 0; i < trials; i++ {
		db := relation.MatchingDatabase(rng, q, 40)
		truth, err := core.GroundTruth(q, db)
		if err != nil {
			t.Fatal(err)
		}
		total += len(truth)
	}
	mean := float64(total) / float64(trials)
	if mean < 0.4 || mean > 2.0 {
		t.Errorf("C3 mean answers = %v over %d trials, want ≈ 1", mean, trials)
	}
}

// TestReplicationRate: the total data exchanged by HC in one round is
// Θ(p^ε) times the input (Section 2.1's replication interpretation).
func TestReplicationRate(t *testing.T) {
	rng := rand.New(rand.NewPCG(104, 1))
	q := query.Triangle()
	n := 2000
	db := relation.MatchingDatabase(rng, q, n)
	for _, p := range []int{8, 64, 512} {
		res, err := core.EvaluateOneRound(q, db, p, core.OneRoundOptions{Epsilon: -1, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		want := math.Pow(float64(p), 1.0/3.0) // p^ε with ε = 1/3
		got := res.Stats.Replication(db.InputBits())
		if got < 0.5*want || got > 2*want {
			t.Errorf("p=%d: replication %.2f, want ≈ p^(1/3) = %.2f", p, got, want)
		}
	}
}

// TestExperimentsSmoke: the whole harness runs end to end (small
// sizes) without error — the same code paths cmd/mpcbench exercises.
func TestExperimentsSmoke(t *testing.T) {
	if _, err := experiments.Table1(io.Discard, 60, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.Table2(io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := experiments.Figure1(io.Discard, []*query.Query{query.Cycle(3)}); err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.HCLoad(io.Discard, query.Cycle(3), 500, []int{8, 27}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.LBFraction(io.Discard, query.Cycle(3), 1000, 0, []int{16}, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.Rounds(io.Discard, []int{4}, []*big.Rat{rat(0, 1)}, 40, 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.RoundBounds(io.Discard, []*big.Rat{rat(0, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.CC(io.Discard, []int{4, 16}, 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.Witness(io.Discard, 64, []int{16}, []float64{0.5}, 2, 1); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyPlanNeverBeatsCertificates: executing a plan in fewer
// rounds than an (ε,r)-plan certificate allows would contradict
// Theorem 4.5; check the pipeline is mutually consistent for chains.
func TestGreedyPlanNeverBeatsCertificates(t *testing.T) {
	for _, eps := range []*big.Rat{rat(0, 1), rat(1, 2)} {
		ke, err := theory.KEpsilon(eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{ke + 1, 2 * ke, 4*ke + 1} {
			plan, err := multiround.Build(query.Chain(k), eps)
			if err != nil {
				t.Fatal(err)
			}
			cert, err := theory.ChainPlan(k, eps)
			if err != nil {
				t.Fatal(err)
			}
			if plan.Rounds() < cert.LowerBound() {
				t.Errorf("L%d at ε=%s: plan %d rounds beats certificate %d — impossible",
					k, eps.RatString(), plan.Rounds(), cert.LowerBound())
			}
		}
	}
}
