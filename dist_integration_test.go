package repro

// Multi-process distributed integration: spawn real mpcworker
// processes (the built binary, not in-process listeners) and hold the
// TCP execution path to ground truth across families and engines.
// The test is gated on MPCWORKER_BIN — CI builds the binary, exports
// the path, and runs this with a hard timeout; locally:
//
//	go build -o /tmp/mpcworker ./cmd/mpcworker
//	MPCWORKER_BIN=/tmp/mpcworker go test -run TestDistributedWorkerProcesses -v .

import (
	"bufio"
	"context"
	"math/big"
	"math/rand/v2"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relation"
)

// spawnWorkers starts n mpcworker processes on OS-assigned ports and
// returns their addresses, parsed from each process's startup line.
func spawnWorkers(t *testing.T, ctx context.Context, bin string, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		cmd := exec.CommandContext(ctx, bin, "-listen", "127.0.0.1:0")
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		line, err := bufio.NewReader(out).ReadString('\n')
		if err != nil {
			t.Fatalf("worker %d produced no startup line: %v", i, err)
		}
		// "mpcworker listening on 127.0.0.1:NNNN"
		fields := strings.Fields(strings.TrimSpace(line))
		addr := fields[len(fields)-1]
		if !strings.Contains(addr, ":") {
			t.Fatalf("worker %d startup line %q has no address", i, line)
		}
		addrs[i] = addr
	}
	return addrs
}

// TestDistributedWorkerProcesses is the CI integration job's body.
func TestDistributedWorkerProcesses(t *testing.T) {
	bin := os.Getenv("MPCWORKER_BIN")
	if bin == "" {
		t.Skip("MPCWORKER_BIN not set; run the in-process suite in internal/dist instead")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const p = 4
	addrs := spawnWorkers(t, ctx, bin, p)

	cases := []struct {
		name string
		q    *query.Query
		eps  *big.Rat
	}{
		{"triangle", query.Cycle(3), nil},
		{"star", query.Star(3), nil},
		{"chain-multiround", query.Chain(4), big.NewRat(0, 1)},
		{"join", query.MustParse("q(x,y,z) = R(x,y), S(y,z)"), nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(31, uint64(len(c.name))))
			db := relation.MatchingDatabase(rng, c.q, 400)
			truth, err := core.GroundTruth(c.q, db)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := plan.Build(c.q, relation.CollectStats(db), plan.Options{P: p, Epsilon: c.eps})
			if err != nil {
				t.Fatal(err)
			}
			local, err := pl.Execute(db, plan.ExecOptions{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := dist.DialTCP(ctx, addrs)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			remote, err := pl.Execute(db, plan.ExecOptions{Seed: 5, Transport: tr, Context: ctx})
			if err != nil {
				t.Fatal(err)
			}
			if len(remote.Answers) != len(truth) {
				t.Fatalf("distributed: %d answers, ground truth %d", len(remote.Answers), len(truth))
			}
			for i := range truth {
				if !remote.Answers[i].Equal(truth[i]) {
					t.Fatalf("answer %d differs from ground truth: %v vs %v", i, remote.Answers[i], truth[i])
				}
			}
			if local.Stats.TotalBits() != remote.Stats.TotalBits() ||
				local.Stats.MaxLoadBits() != remote.Stats.MaxLoadBits() {
				t.Fatalf("stats differ: local (%d, %d) vs distributed (%d, %d)",
					local.Stats.TotalBits(), local.Stats.MaxLoadBits(),
					remote.Stats.TotalBits(), remote.Stats.MaxLoadBits())
			}
		})
	}
}
