package repro

// Multi-process distributed integration: spawn real mpcworker
// processes (the built binary, not in-process listeners) and hold the
// TCP execution path to ground truth across families and engines.
// The test is gated on MPCWORKER_BIN — CI builds the binary, exports
// the path, and runs this with a hard timeout; locally:
//
//	go build -o /tmp/mpcworker ./cmd/mpcworker
//	MPCWORKER_BIN=/tmp/mpcworker go test -run TestDistributedWorkerProcesses -v .

import (
	"bufio"
	"context"
	"math/big"
	"math/rand/v2"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relation"
)

// workerProcs is a set of spawned mpcworker processes whose members
// can be SIGKILLed individually.
type workerProcs struct {
	addrs []string
	cmds  []*exec.Cmd
}

// sigkill delivers SIGKILL to worker i and reaps it, so its sockets
// are closed by the kernel before sigkill returns.
func (w *workerProcs) sigkill(t *testing.T, i int) {
	t.Helper()
	if err := w.cmds[i].Process.Kill(); err != nil {
		t.Fatalf("SIGKILL worker %d: %v", i, err)
	}
	w.cmds[i].Wait()
}

// spawnWorkerProcs starts n mpcworker processes on OS-assigned ports,
// parsing each address from the process's startup line.
func spawnWorkerProcs(t *testing.T, ctx context.Context, bin string, n int) *workerProcs {
	t.Helper()
	w := &workerProcs{addrs: make([]string, n), cmds: make([]*exec.Cmd, n)}
	for i := 0; i < n; i++ {
		cmd := exec.CommandContext(ctx, bin, "-listen", "127.0.0.1:0")
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		line, err := bufio.NewReader(out).ReadString('\n')
		if err != nil {
			t.Fatalf("worker %d produced no startup line: %v", i, err)
		}
		// "mpcworker listening on 127.0.0.1:NNNN"
		fields := strings.Fields(strings.TrimSpace(line))
		addr := fields[len(fields)-1]
		if !strings.Contains(addr, ":") {
			t.Fatalf("worker %d startup line %q has no address", i, line)
		}
		w.addrs[i] = addr
		w.cmds[i] = cmd
	}
	return w
}

// spawnWorkers starts n mpcworker processes and returns their
// addresses.
func spawnWorkers(t *testing.T, ctx context.Context, bin string, n int) []string {
	t.Helper()
	return spawnWorkerProcs(t, ctx, bin, n).addrs
}

// TestDistributedWorkerProcesses is the CI integration job's body.
func TestDistributedWorkerProcesses(t *testing.T) {
	bin := os.Getenv("MPCWORKER_BIN")
	if bin == "" {
		t.Skip("MPCWORKER_BIN not set; run the in-process suite in internal/dist instead")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const p = 4
	addrs := spawnWorkers(t, ctx, bin, p)

	cases := []struct {
		name string
		q    *query.Query
		eps  *big.Rat
	}{
		{"triangle", query.Cycle(3), nil},
		{"star", query.Star(3), nil},
		{"chain-multiround", query.Chain(4), big.NewRat(0, 1)},
		{"join", query.MustParse("q(x,y,z) = R(x,y), S(y,z)"), nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(31, uint64(len(c.name))))
			db := relation.MatchingDatabase(rng, c.q, 400)
			truth, err := core.GroundTruth(c.q, db)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := plan.Build(c.q, relation.CollectStats(db), plan.Options{P: p, Epsilon: c.eps})
			if err != nil {
				t.Fatal(err)
			}
			local, err := pl.Execute(db, plan.ExecOptions{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := dist.DialTCP(ctx, addrs)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			remote, err := pl.Execute(db, plan.ExecOptions{Seed: 5, Transport: tr, Context: ctx})
			if err != nil {
				t.Fatal(err)
			}
			if len(remote.Answers) != len(truth) {
				t.Fatalf("distributed: %d answers, ground truth %d", len(remote.Answers), len(truth))
			}
			for i := range truth {
				if !remote.Answers[i].Equal(truth[i]) {
					t.Fatalf("answer %d differs from ground truth: %v vs %v", i, remote.Answers[i], truth[i])
				}
			}
			if local.Stats.TotalBits() != remote.Stats.TotalBits() ||
				local.Stats.MaxLoadBits() != remote.Stats.MaxLoadBits() {
				t.Fatalf("stats differ: local (%d, %d) vs distributed (%d, %d)",
					local.Stats.TotalBits(), local.Stats.MaxLoadBits(),
					remote.Stats.TotalBits(), remote.Stats.MaxLoadBits())
			}
		})
	}
}

// killAtBarrier wraps the TCP transport and SIGKILLs a real worker
// process exactly once, at the barrier that closes the given round —
// a deterministic mid-query crash with no timers. The embedded TCP
// keeps the wrapper a full Replaceable, so recovery drives replacement
// through it.
type killAtBarrier struct {
	*dist.TCP
	round int
	kill  func()
	fired bool
}

// Barrier fires the kill before forwarding, so the barrier itself
// observes the dead worker.
func (k *killAtBarrier) Barrier(ctx context.Context, round int) error {
	if round == k.round && !k.fired {
		k.fired = true
		k.kill()
	}
	return k.TCP.Barrier(ctx, round)
}

// TestDistributedWorkerKillRecovery is the self-healing e2e: four real
// mpcworker processes plus one spare process run a multiround Γ^r_ε
// chain query; one member is SIGKILLed at the barrier of round 2 (so
// round 1 is complete and checkpointed); the run must promote the
// spare, replay the lost shard, and still produce ground-truth
// answers with statistics identical to the in-process run.
func TestDistributedWorkerKillRecovery(t *testing.T) {
	bin := os.Getenv("MPCWORKER_BIN")
	if bin == "" {
		t.Skip("MPCWORKER_BIN not set; run the in-process suite in internal/dist instead")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const p = 4
	procs := spawnWorkerProcs(t, ctx, bin, p+1)
	members, spare := procs.addrs[:p], procs.addrs[p]

	q := query.Chain(4)
	db := relation.MatchingDatabase(rand.New(rand.NewPCG(41, 7)), q, 400)
	truth, err := core.GroundTruth(q, db)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Build(q, relation.CollectStats(db), plan.Options{P: p, Epsilon: big.NewRat(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if pl, err = pl.WithEngine(plan.MultiRound); err != nil {
		t.Fatal(err)
	}
	local, err := pl.Execute(db, plan.ExecOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if local.Rounds < 2 {
		t.Fatalf("chain plan ran %d rounds; the kill-point needs a multiround execution", local.Rounds)
	}

	tr, err := dist.DialTCP(ctx, members)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	killer := &killAtBarrier{TCP: tr, round: 2, kill: func() { procs.sigkill(t, 2) }}
	remote, err := pl.Execute(db, plan.ExecOptions{
		Seed:      5,
		Transport: killer,
		Context:   ctx,
		Recovery:  dist.RecoveryOptions{Enabled: true, Spares: []string{spare}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !killer.fired {
		t.Fatal("kill-point never reached")
	}
	if remote.Replacements < 1 {
		t.Fatalf("Replacements = %d after a SIGKILL, want ≥ 1", remote.Replacements)
	}
	if len(remote.Answers) != len(truth) {
		t.Fatalf("recovered run: %d answers, ground truth %d", len(remote.Answers), len(truth))
	}
	for i := range truth {
		if !remote.Answers[i].Equal(truth[i]) {
			t.Fatalf("answer %d differs from ground truth: %v vs %v", i, remote.Answers[i], truth[i])
		}
	}
	if local.Stats.TotalBits() != remote.Stats.TotalBits() ||
		local.Stats.MaxLoadBits() != remote.Stats.MaxLoadBits() {
		t.Fatalf("stats differ after recovery: local (%d, %d) vs distributed (%d, %d)",
			local.Stats.TotalBits(), local.Stats.MaxLoadBits(),
			remote.Stats.TotalBits(), remote.Stats.MaxLoadBits())
	}
}
