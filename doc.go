// Package repro reproduces "Communication Steps for Parallel Query
// Processing" (Paul Beame, Paraschos Koutris, Dan Suciu, PODS 2013;
// arXiv:1306.5972) as a production-quality Go library.
//
// The repository implements the Massively Parallel Communication model
// MPC(ε), the HyperCube one-round algorithm and its matching lower
// bound apparatus, multi-round Γ^r_ε query plans, the (ε,r)-plan lower
// bound machinery, and the connected-components reduction — together
// with a goroutine-based cluster simulator, an exact rational LP
// solver for the fractional vertex-cover/edge-packing programs, and a
// benchmark harness that regenerates every table and figure of the
// paper.
//
// Local (per-worker) evaluation defaults to a worst-case-optimal
// multiway join: a leapfrog-triejoin-style engine over integer-packed
// sorted tries (localjoin.WCOJ), which stays within the AGM bound on
// the cyclic, skewed residual queries HyperCube workers see. The
// pairwise hash pipeline and the backtracking join remain available as
// localjoin.HashJoin and localjoin.Backtracking; the BenchmarkJoin*
// benchmarks compare all three head to head on triangle and Zipf
// inputs.
//
// All inter-worker communication flows through one columnar shuffle
// subsystem, internal/exchange: senders partition source shards in
// parallel into per-destination bit-packed buffers (one uint64 word
// per tuple when the arity admits it), routing policy is a pluggable
// Partitioner (plain hash, hypercube grid replication, skew-aware
// heavy-hitter blocks), receivers accumulate sorted columnar runs, and
// the model's round statistics — total bits, per-worker load, the
// c·N/p^{1−ε} receive cap — are computed from buffer sizes. Answer
// gathering k-way merges the sorted runs instead of concatenating and
// re-sorting. The BenchmarkShuffle* benchmarks compare this path
// head to head against the historic per-tuple message routing.
//
// The rounds themselves run on a pluggable worker runtime,
// internal/dist: the same bulk-synchronous protocol (scatter →
// barrier → local join → gather) executes either in-process (the
// loopback transport) or across real cmd/mpcworker processes over
// TCP, with sealed columnar runs serialized as length-prefixed wire
// frames (internal/wire). Receive accounting happens
// coordinator-side, so both transports record identical round
// statistics, and a differential test net holds every engine to
// ground-truth-identical answers on both.
//
// Layout:
//
//	internal/lp          exact two-phase simplex over big.Rat
//	internal/query       conjunctive queries and hypergraph machinery
//	internal/cover       Figure 1 LPs, τ*, space exponents, shares
//	internal/relation    tuples, relations, matching databases, packed tuple keys
//	internal/exchange    the columnar shuffle: partitioners, packed buffers, k-way merge
//	internal/mpc         the MPC(ε) cluster simulator
//	internal/localjoin   per-worker join evaluation (WCOJ default, hash, backtracking)
//	internal/hypercube   the HyperCube algorithm (Theorem 1.1)
//	internal/multiround  Γ^r_ε plans and the round executor (§4.1)
//	internal/plan        the statistics-driven planner: LP → shares → engine, EXPLAIN
//	internal/wire        length-prefixed wire frames for columnar runs + BSP control
//	internal/dist        the distributed runtime: loopback/TCP transports, coordinator, worker
//	internal/serve       the multi-query HTTP service: registry, plan cache, admission gate
//	internal/theory      closed-form bounds, ε-good sets, (ε,r)-plans
//	internal/cc          connected components (Theorem 4.10)
//	internal/witness     JOIN-WITNESS (Proposition 3.12)
//	internal/experiments the table/figure regeneration harness
//	internal/core        the high-level facade API
//	cmd/mpcplan          query analysis + EXPLAIN CLI
//	cmd/mpcrun           planner-driven cluster execution CLI
//	cmd/mpcbench         experiment regeneration CLI
//	cmd/mpcserve         the long-running HTTP/JSON query service
//	cmd/mpcworker        one distributed worker process (TCP, internal/dist)
//	cmd/doccheck         CI documentation gate (exports + markdown snippets)
//	examples/...         runnable end-to-end programs
//
// Query planning is statistics-driven: internal/plan consumes a
// parsed query plus relation.Stats (cardinalities, per-column
// heavy-hitter counts), solves the Figure 1 LPs for the share
// exponents, predicts load and communication, and selects among the
// one-round, multiround, and skew-aware engines against the MPC(ε)
// budget. cmd/mpcplan prints the plan's EXPLAIN; cmd/mpcrun executes
// it (with a -plan manual-override escape hatch).
//
// See README.md for a walkthrough, ARCHITECTURE.md for the layer
// diagram and data flow, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// Benchmarks in bench_test.go regenerate each experiment under
// `go test -bench`.
package repro
