package cover

import (
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/query"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

// TestTable1Tau checks τ* against Table 1 of the paper:
// τ*(C_k) = k/2, τ*(T_k) = 1, τ*(L_k) = ⌈k/2⌉, τ*(B_{k,m}) = k/m.
func TestTable1Tau(t *testing.T) {
	for k := 2; k <= 10; k++ {
		r := MustSolve(query.Cycle(k))
		if r.Tau.Cmp(rat(int64(k), 2)) != 0 {
			t.Errorf("τ*(C%d) = %s, want %d/2", k, r.Tau.RatString(), k)
		}
	}
	for k := 1; k <= 10; k++ {
		r := MustSolve(query.Star(k))
		if r.Tau.Cmp(rat(1, 1)) != 0 {
			t.Errorf("τ*(T%d) = %s, want 1", k, r.Tau.RatString())
		}
	}
	for k := 1; k <= 10; k++ {
		want := rat(int64((k+1)/2), 1)
		r := MustSolve(query.Chain(k))
		if r.Tau.Cmp(want) != 0 {
			t.Errorf("τ*(L%d) = %s, want %s", k, r.Tau.RatString(), want.RatString())
		}
	}
	for _, c := range []struct{ k, m int }{{3, 2}, {4, 2}, {4, 3}, {5, 2}, {5, 3}} {
		r := MustSolve(query.Binom(c.k, c.m))
		want := rat(int64(c.k), int64(c.m))
		if r.Tau.Cmp(want) != 0 {
			t.Errorf("τ*(B%d,%d) = %s, want %s", c.k, c.m, r.Tau.RatString(), want.RatString())
		}
	}
}

// TestTable1SpaceExponents checks ε = 1−1/τ* against Table 1:
// C_k → 1−2/k, T_k → 0, L_k → 1−1/⌈k/2⌉, B_{k,m} → 1−m/k.
func TestTable1SpaceExponents(t *testing.T) {
	cases := []struct {
		q    *query.Query
		want *big.Rat
	}{
		{query.Cycle(3), rat(1, 3)},
		{query.Cycle(4), rat(1, 2)},
		{query.Cycle(6), rat(2, 3)},
		{query.Star(5), rat(0, 1)},
		{query.Chain(2), rat(0, 1)},
		{query.Chain(3), rat(1, 2)},
		{query.Chain(4), rat(1, 2)},
		{query.Chain(5), rat(2, 3)},
		{query.Binom(4, 2), rat(1, 2)},
		{query.Binom(3, 2), rat(1, 3)},
		{query.SpokedWheel(3), rat(2, 3)}, // τ*(SP_k) = k
	}
	for _, c := range cases {
		r := MustSolve(c.q)
		if got := r.SpaceExponent(); got.Cmp(c.want) != 0 {
			t.Errorf("ε(%s) = %s, want %s", c.q.Name, got.RatString(), c.want.RatString())
		}
	}
}

// TestSpokedWheelTau: τ*(SP_k) = k (Example 4.2: space exponent 1−1/k).
func TestSpokedWheelTau(t *testing.T) {
	for k := 1; k <= 5; k++ {
		r := MustSolve(query.SpokedWheel(k))
		if r.Tau.Cmp(rat(int64(k), 1)) != 0 {
			t.Errorf("τ*(SP%d) = %s, want %d", k, r.Tau.RatString(), k)
		}
	}
}

// TestExample22 reproduces Example 2.2: for L3 the paper's optimal
// cover (0,1,1,0) has value 2 and is not tight, while the optimal
// packing (1,0,1) is tight. (The simplex may return a different
// optimum, e.g. the tight cover (0,1,0,1), so we check the paper's
// vectors directly with the validation helpers.)
func TestExample22(t *testing.T) {
	q := query.Chain(3)
	r := MustSolve(q)
	if r.Tau.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("τ*(L3) = %s, want 2", r.Tau.RatString())
	}
	paperCover := []*big.Rat{rat(0, 1), rat(1, 1), rat(1, 1), rat(0, 1)}
	if !IsVertexCover(q, paperCover) {
		t.Error("(0,1,1,0) should be a feasible vertex cover of L3")
	}
	if IsTightCover(q, paperCover) {
		t.Error("(0,1,1,0) should not be tight")
	}
	paperPacking := []*big.Rat{rat(1, 1), rat(0, 1), rat(1, 1)}
	if !IsTightPacking(q, paperPacking) {
		t.Error("(1,0,1) should be a tight edge packing of L3")
	}
	// Whatever optimum the solver returns must be feasible.
	if !IsVertexCover(q, r.VertexCover) {
		t.Error("solver cover infeasible")
	}
	if !IsEdgePacking(q, r.EdgePacking) {
		t.Error("solver packing infeasible")
	}
}

// TestCycleTight: for C_k both optima (all 1/2 cover, all 1/2 packing)
// are tight.
func TestCycleTight(t *testing.T) {
	for _, k := range []int{3, 5, 6} {
		r := MustSolve(query.Cycle(k))
		if !r.CoverTight() {
			t.Errorf("C%d cover should be tight", k)
		}
		if !r.PackingTight() {
			t.Errorf("C%d packing should be tight", k)
		}
	}
}

func TestShareExponentsSumToOne(t *testing.T) {
	one := rat(1, 1)
	for _, q := range []*query.Query{
		query.Chain(4), query.Cycle(5), query.Star(3),
		query.Binom(4, 2), query.SpokedWheel(2),
	} {
		r := MustSolve(q)
		sum := new(big.Rat)
		for _, e := range r.ShareExponents() {
			sum.Add(sum, e)
			if e.Sign() < 0 {
				t.Errorf("%s: negative share exponent", q.Name)
			}
		}
		if sum.Cmp(one) != 0 {
			t.Errorf("%s: share exponents sum to %s, want 1", q.Name, sum.RatString())
		}
	}
}

// TestTable1ShareExponents checks the "Share Exponents" column of
// Table 1: C_k → 1/k each (for odd k the symmetric optimum is unique;
// even cycles also admit the alternating integral cover, so there we
// verify the canonical vector with the validation helpers), T_k →
// (1,0,…,0).
func TestTable1ShareExponents(t *testing.T) {
	// Odd C_k: the all-1/2 cover is the unique optimum, so the solver's
	// share exponents must all equal 1/k.
	for _, k := range []int{3, 5, 7} {
		r := MustSolve(query.Cycle(k))
		for i, e := range r.ShareExponents() {
			if e.Cmp(rat(1, int64(k))) != 0 {
				t.Errorf("C%d share exponent %d = %s, want 1/%d", k, i, e.RatString(), k)
			}
		}
	}
	// Even C_k: check that the paper's all-1/2 cover is feasible, tight
	// and optimal (value k/2) even if the simplex returned another
	// optimum such as (1,0,1,0).
	for _, k := range []int{4, 6} {
		q := query.Cycle(k)
		r := MustSolve(q)
		half := make([]*big.Rat, q.NumVars())
		for i := range half {
			half[i] = rat(1, 2)
		}
		if !IsTightCover(q, half) {
			t.Errorf("C%d: all-1/2 should be a tight cover", k)
		}
		if r.Tau.Cmp(rat(int64(k), 2)) != 0 {
			t.Errorf("C%d: τ* = %s, want %d/2", k, r.Tau.RatString(), k)
		}
	}
	// T_k: the hub z gets 1, spokes get 0.
	r := MustSolve(query.Star(4))
	q := query.Star(4)
	es := r.ShareExponents()
	if es[q.VarIndex("z")].Cmp(rat(1, 1)) != 0 {
		t.Errorf("T4: hub exponent = %s, want 1", es[q.VarIndex("z")].RatString())
	}
	for _, v := range q.Vars() {
		if v == "z" {
			continue
		}
		if es[q.VarIndex(v)].Sign() != 0 {
			t.Errorf("T4: spoke %s exponent = %s, want 0", v, es[q.VarIndex(v)].RatString())
		}
	}
	// B_{k,m}: every exponent is 1/k by symmetry of the LP optimum. The
	// simplex may return an asymmetric optimal cover, so only check the
	// sum and τ*; the canonical symmetric solution is checked via Tau
	// in TestTable1Tau.
}

func TestHasUniversalVariable(t *testing.T) {
	if !HasUniversalVariable(query.Star(5)) {
		t.Error("T5 has hub z in every atom")
	}
	if HasUniversalVariable(query.Chain(3)) {
		t.Error("L3 has no universal variable")
	}
	if HasUniversalVariable(query.Cycle(4)) {
		t.Error("C4 has no universal variable")
	}
}

// TestCorollary310 checks Corollary 3.10: τ* = 1 ⇔ some variable is in
// every atom, on random connected queries.
func TestCorollary310(t *testing.T) {
	f := func(seed uint64) bool {
		q := randomConnectedQuery(rand.New(rand.NewPCG(seed, 23)))
		r, err := Solve(q)
		if err != nil {
			return false
		}
		tauIsOne := r.Tau.Cmp(rat(1, 1)) == 0
		return tauIsOne == HasUniversalVariable(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestDualityProperty re-checks on random queries that cover and
// packing optima agree (Solve verifies; this exercises it broadly).
func TestDualityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		q := randomConnectedQuery(rand.New(rand.NewPCG(seed, 29)))
		_, err := Solve(q)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaOne(t *testing.T) {
	zero := rat(0, 1)
	half := rat(1, 2)
	cases := []struct {
		q    *query.Query
		eps  *big.Rat
		want bool
	}{
		{query.Chain(2), zero, true},  // τ* = 1
		{query.Chain(3), zero, false}, // τ* = 2
		{query.Chain(3), half, true},  // 2 ≤ 1/(1-1/2)
		{query.Chain(4), half, true},  // τ* = 2 ≤ 2
		{query.Chain(5), half, false}, // τ* = 3 > 2
		{query.Cycle(3), rat(1, 3), true},
		{query.Cycle(3), rat(1, 4), false},
		{query.Star(7), zero, true},
	}
	for _, c := range cases {
		got, err := GammaOne(c.q, c.eps)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("GammaOne(%s, %s) = %v, want %v", c.q.Name, c.eps.RatString(), got, c.want)
		}
	}
	// Disconnected queries are never in Γ¹.
	disc := query.CartesianPair()
	got, err := GammaOne(disc, zero)
	if err != nil || got {
		t.Errorf("GammaOne(disconnected) = %v, %v; want false, nil", got, err)
	}
	if _, err := GammaOne(query.Chain(2), rat(1, 1)); err == nil {
		t.Error("want error for ε = 1")
	}
	if _, err := GammaOne(query.Chain(2), rat(-1, 2)); err == nil {
		t.Error("want error for ε < 0")
	}
}

func TestFloatAccessors(t *testing.T) {
	r := MustSolve(query.Cycle(3))
	if got := r.TauFloat(); got != 1.5 {
		t.Errorf("TauFloat = %v, want 1.5", got)
	}
	if got := r.SpaceExponentFloat(); got < 0.333 || got > 0.334 {
		t.Errorf("SpaceExponentFloat = %v, want ~1/3", got)
	}
	fs := r.ShareExponentFloats()
	for _, f := range fs {
		if f < 0.333 || f > 0.334 {
			t.Errorf("share exponent float = %v, want ~1/3", f)
		}
	}
}

// randomConnectedQuery mirrors the helper in package query's tests.
func randomConnectedQuery(rng *rand.Rand) *query.Query {
	nAtoms := 1 + rng.IntN(5)
	atoms := make([]query.Atom, nAtoms)
	varCount := 0
	newVar := func() string {
		varCount++
		return "v" + string(rune('0'+varCount))
	}
	a0, b0 := newVar(), newVar()
	atoms[0] = query.Atom{Name: "A0", Vars: []string{a0, b0}}
	existing := []string{a0, b0}
	for i := 1; i < nAtoms; i++ {
		anchor := existing[rng.IntN(len(existing))]
		arity := 1 + rng.IntN(3)
		vs := []string{anchor}
		for j := 1; j < arity; j++ {
			if rng.IntN(2) == 0 {
				vs = append(vs, existing[rng.IntN(len(existing))])
			} else {
				v := newVar()
				vs = append(vs, v)
				existing = append(existing, v)
			}
		}
		atoms[i] = query.Atom{Name: "A" + string(rune('0'+i)), Vars: vs}
	}
	return query.MustNew("randc", atoms...)
}
