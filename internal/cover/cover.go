// Package cover computes the fractional vertex cover and fractional
// edge packing of a conjunctive query's hypergraph (the two dual LPs
// of Figure 1 in Beame, Koutris, Suciu, PODS 2013), the fractional
// covering number τ*(q), and the quantities derived from them: the
// one-round space exponent ε = 1 − 1/τ* (Theorem 1.1) and the
// HyperCube share exponents e_i = v_i/τ* (Section 3.1).
//
// All LP arithmetic is exact (math/big.Rat), so τ* and the exponents
// are exact rationals; float accessors are provided for simulation
// code.
package cover

import (
	"fmt"
	"math/big"

	"repro/internal/lp"
	"repro/internal/query"
)

// Result bundles the solutions of the two dual LPs for one query.
type Result struct {
	// Query is the analyzed query.
	Query *query.Query
	// Tau is τ*(q), the common optimal value of both LPs.
	Tau *big.Rat
	// VertexCover holds v_i per variable, indexed like Query.Vars().
	VertexCover []*big.Rat
	// EdgePacking holds u_j per atom, indexed like Query.Atoms.
	EdgePacking []*big.Rat
}

// VertexCoverLP builds the fractional vertex cover LP of Figure 1:
// minimize Σ v_i subject to Σ_{i: x_i ∈ vars(S_j)} v_i ≥ 1 per atom.
func VertexCoverLP(q *query.Query) *lp.Problem {
	k := q.NumVars()
	p := lp.NewProblem(k, false)
	one := big.NewRat(1, 1)
	for i := 0; i < k; i++ {
		p.SetObjective(i, one)
	}
	for _, a := range q.Atoms {
		coeffs := make([]*big.Rat, k)
		for _, v := range a.DistinctVars() {
			coeffs[q.VarIndex(v)] = one
		}
		p.AddConstraint(coeffs, lp.GE, one)
	}
	return p
}

// EdgePackingLP builds the fractional edge packing LP of Figure 1:
// maximize Σ u_j subject to Σ_{j: x_i ∈ vars(S_j)} u_j ≤ 1 per variable.
func EdgePackingLP(q *query.Query) *lp.Problem {
	l := q.NumAtoms()
	p := lp.NewProblem(l, true)
	one := big.NewRat(1, 1)
	for j := 0; j < l; j++ {
		p.SetObjective(j, one)
	}
	for _, v := range q.Vars() {
		coeffs := make([]*big.Rat, l)
		for _, j := range q.AtomsOf(v) {
			coeffs[j] = one
		}
		p.AddConstraint(coeffs, lp.LE, one)
	}
	return p
}

// Solve computes both LPs and verifies strong duality (the optima must
// coincide — this is checked, not assumed, and a mismatch reports a
// solver bug).
func Solve(q *query.Query) (*Result, error) {
	vc, err := lp.Solve(VertexCoverLP(q))
	if err != nil {
		return nil, fmt.Errorf("cover: vertex cover LP for %s: %w", q.Name, err)
	}
	if vc.Status != lp.Optimal {
		return nil, fmt.Errorf("cover: vertex cover LP for %s: %v", q.Name, vc.Status)
	}
	ep, err := lp.Solve(EdgePackingLP(q))
	if err != nil {
		return nil, fmt.Errorf("cover: edge packing LP for %s: %w", q.Name, err)
	}
	if ep.Status != lp.Optimal {
		return nil, fmt.Errorf("cover: edge packing LP for %s: %v", q.Name, ep.Status)
	}
	if vc.Value.Cmp(ep.Value) != 0 {
		return nil, fmt.Errorf("cover: duality violated for %s: cover %s != packing %s",
			q.Name, vc.Value.RatString(), ep.Value.RatString())
	}
	return &Result{
		Query:       q,
		Tau:         vc.Value,
		VertexCover: vc.X,
		EdgePacking: ep.X,
	}, nil
}

// MustSolve is Solve that panics on error.
func MustSolve(q *query.Query) *Result {
	r, err := Solve(q)
	if err != nil {
		panic(err)
	}
	return r
}

// TauFloat returns τ* as a float64.
func (r *Result) TauFloat() float64 {
	f, _ := r.Tau.Float64()
	return f
}

// SpaceExponent returns the one-round space exponent ε = 1 − 1/τ*
// as an exact rational (Theorem 1.1). For τ* = 1 it is 0.
func (r *Result) SpaceExponent() *big.Rat {
	inv := new(big.Rat).Inv(r.Tau)
	return new(big.Rat).Sub(big.NewRat(1, 1), inv)
}

// SpaceExponentFloat returns ε = 1 − 1/τ* as a float64.
func (r *Result) SpaceExponentFloat() float64 {
	f, _ := r.SpaceExponent().Float64()
	return f
}

// ShareExponents returns the HyperCube share exponents e_i = v_i/τ,
// where v is the optimal fractional vertex cover and τ = Σ v_i; the
// exponents sum to exactly 1 (Section 3.1). Indexing follows
// Query.Vars().
func (r *Result) ShareExponents() []*big.Rat {
	out := make([]*big.Rat, len(r.VertexCover))
	for i, v := range r.VertexCover {
		out[i] = new(big.Rat).Quo(v, r.Tau)
	}
	return out
}

// ShareExponentFloats returns ShareExponents as float64s.
func (r *Result) ShareExponentFloats() []float64 {
	es := r.ShareExponents()
	out := make([]float64, len(es))
	for i, e := range es {
		out[i], _ = e.Float64()
	}
	return out
}

// CoverTight reports whether the vertex cover solution is tight:
// every atom's constraint holds with equality.
func (r *Result) CoverTight() bool {
	one := big.NewRat(1, 1)
	for _, a := range r.Query.Atoms {
		sum := new(big.Rat)
		for _, v := range a.DistinctVars() {
			sum.Add(sum, r.VertexCover[r.Query.VarIndex(v)])
		}
		if sum.Cmp(one) != 0 {
			return false
		}
	}
	return true
}

// PackingTight reports whether the edge packing solution is tight:
// every variable's constraint holds with equality.
func (r *Result) PackingTight() bool {
	one := big.NewRat(1, 1)
	for _, v := range r.Query.Vars() {
		sum := new(big.Rat)
		for _, j := range r.Query.AtomsOf(v) {
			sum.Add(sum, r.EdgePacking[j])
		}
		if sum.Cmp(one) != 0 {
			return false
		}
	}
	return true
}

// IsVertexCover reports whether v (indexed like q.Vars()) is a
// feasible fractional vertex cover of q.
func IsVertexCover(q *query.Query, v []*big.Rat) bool {
	if len(v) != q.NumVars() {
		return false
	}
	for _, x := range v {
		if x == nil || x.Sign() < 0 {
			return false
		}
	}
	one := big.NewRat(1, 1)
	for _, a := range q.Atoms {
		sum := new(big.Rat)
		for _, vr := range a.DistinctVars() {
			sum.Add(sum, v[q.VarIndex(vr)])
		}
		if sum.Cmp(one) < 0 {
			return false
		}
	}
	return true
}

// IsTightCover reports whether v is a fractional vertex cover whose
// constraints all hold with equality.
func IsTightCover(q *query.Query, v []*big.Rat) bool {
	if !IsVertexCover(q, v) {
		return false
	}
	one := big.NewRat(1, 1)
	for _, a := range q.Atoms {
		sum := new(big.Rat)
		for _, vr := range a.DistinctVars() {
			sum.Add(sum, v[q.VarIndex(vr)])
		}
		if sum.Cmp(one) != 0 {
			return false
		}
	}
	return true
}

// IsEdgePacking reports whether u (indexed like q.Atoms) is a feasible
// fractional edge packing of q.
func IsEdgePacking(q *query.Query, u []*big.Rat) bool {
	if len(u) != q.NumAtoms() {
		return false
	}
	for _, x := range u {
		if x == nil || x.Sign() < 0 {
			return false
		}
	}
	one := big.NewRat(1, 1)
	for _, v := range q.Vars() {
		sum := new(big.Rat)
		for _, j := range q.AtomsOf(v) {
			sum.Add(sum, u[j])
		}
		if sum.Cmp(one) > 0 {
			return false
		}
	}
	return true
}

// IsTightPacking reports whether u is a fractional edge packing whose
// constraints all hold with equality.
func IsTightPacking(q *query.Query, u []*big.Rat) bool {
	if !IsEdgePacking(q, u) {
		return false
	}
	one := big.NewRat(1, 1)
	for _, v := range q.Vars() {
		sum := new(big.Rat)
		for _, j := range q.AtomsOf(v) {
			sum.Add(sum, u[j])
		}
		if sum.Cmp(one) != 0 {
			return false
		}
	}
	return true
}

// HasUniversalVariable reports whether some variable occurs in every
// atom. By Corollary 3.10 this holds iff τ*(q) = 1, i.e. iff q has
// space exponent zero.
func HasUniversalVariable(q *query.Query) bool {
	for _, v := range q.Vars() {
		if len(q.AtomsOf(v)) == q.NumAtoms() {
			return true
		}
	}
	return false
}

// GammaOne reports whether q ∈ Γ¹_ε: connected with
// τ*(q) ≤ 1/(1−ε), i.e. computable in one round in MPC(ε) over
// matching databases (Section 4.1). epsilon must be in [0,1).
func GammaOne(q *query.Query, epsilon *big.Rat) (bool, error) {
	if epsilon.Sign() < 0 || epsilon.Cmp(big.NewRat(1, 1)) >= 0 {
		return false, fmt.Errorf("cover: ε = %s outside [0,1)", epsilon.RatString())
	}
	if !q.Connected() {
		return false, nil
	}
	r, err := Solve(q)
	if err != nil {
		return false, err
	}
	// τ* ≤ 1/(1-ε)  ⇔  τ*·(1-ε) ≤ 1.
	oneMinus := new(big.Rat).Sub(big.NewRat(1, 1), epsilon)
	lhs := new(big.Rat).Mul(r.Tau, oneMinus)
	return lhs.Cmp(big.NewRat(1, 1)) <= 0, nil
}
