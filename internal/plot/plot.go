// Package plot renders small ASCII charts for the experiment harness:
// log-log scatter plots of measured-vs-predicted series (answer
// fractions, round counts) that make the "shape" claims of the paper
// visible directly in terminal output.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name   string
	Marker byte
	X, Y   []float64
}

// Chart is a fixed-size ASCII canvas.
type Chart struct {
	// Width and Height are the plot area dimensions in characters.
	Width, Height int
	// Title is printed above the canvas.
	Title string
	// LogX and LogY select logarithmic axes (points must be positive).
	LogX, LogY bool

	series []Series
}

// New returns a chart with sensible terminal dimensions.
func New(title string) *Chart {
	return &Chart{Width: 56, Height: 14, Title: title}
}

// Add appends a series. Points with non-positive coordinates on a log
// axis are dropped at render time.
func (c *Chart) Add(s Series) { c.series = append(c.series, s) }

// Render draws the chart.
func (c *Chart) Render(w io.Writer) error {
	if c.Width < 8 || c.Height < 4 {
		return fmt.Errorf("plot: canvas %dx%d too small", c.Width, c.Height)
	}
	tx := func(x float64) (float64, bool) {
		if c.LogX {
			if x <= 0 {
				return 0, false
			}
			return math.Log10(x), true
		}
		return x, true
	}
	ty := func(y float64) (float64, bool) {
		if c.LogY {
			if y <= 0 {
				return 0, false
			}
			return math.Log10(y), true
		}
		return y, true
	}
	// Bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range c.series {
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if !any {
		return fmt.Errorf("plot: no drawable points")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, c.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", c.Width))
	}
	for _, s := range c.series {
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			col := int(math.Round((x - minX) / (maxX - minX) * float64(c.Width-1)))
			row := c.Height - 1 - int(math.Round((y-minY)/(maxY-minY)*float64(c.Height-1)))
			if grid[row][col] == ' ' || grid[row][col] == s.Marker {
				grid[row][col] = s.Marker
			} else {
				grid[row][col] = '*' // overlapping series
			}
		}
	}
	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	topLabel := c.axisLabel(maxY)
	botLabel := c.axisLabel(minY)
	labelWidth := len(topLabel)
	if len(botLabel) > labelWidth {
		labelWidth = len(botLabel)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", labelWidth)
		if r == 0 {
			label = pad(topLabel, labelWidth)
		}
		if r == c.Height-1 {
			label = pad(botLabel, labelWidth)
		}
		fmt.Fprintf(w, "%s |%s|\n", label, string(line))
	}
	fmt.Fprintf(w, "%s +%s+\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", c.Width))
	leftX := c.axisLabelX(minX)
	rightX := c.axisLabelX(maxX)
	gap := c.Width - len(leftX) - len(rightX)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(w, "%s  %s%s%s\n", strings.Repeat(" ", labelWidth), leftX, strings.Repeat(" ", gap), rightX)
	var legend []string
	for _, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c %s", s.Marker, s.Name))
	}
	fmt.Fprintf(w, "%s  legend: %s\n", strings.Repeat(" ", labelWidth), strings.Join(legend, "   "))
	return nil
}

func (c *Chart) axisLabel(v float64) string {
	if c.LogY {
		return fmt.Sprintf("%.3g", math.Pow(10, v))
	}
	return fmt.Sprintf("%.3g", v)
}

func (c *Chart) axisLabelX(v float64) string {
	if c.LogX {
		return fmt.Sprintf("%.3g", math.Pow(10, v))
	}
	return fmt.Sprintf("%.3g", v)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}
