package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	c := New("test chart")
	c.Add(Series{Name: "up", Marker: 'o', X: []float64{1, 2, 3, 4}, Y: []float64{1, 2, 3, 4}})
	c.Add(Series{Name: "down", Marker: 'x', X: []float64{1, 2, 3, 4}, Y: []float64{4, 3, 2, 1}})
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"test chart", "o up", "x down", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Error("markers missing")
	}
}

func TestRenderLogLog(t *testing.T) {
	c := New("decay")
	c.LogX, c.LogY = true, true
	c.Add(Series{Name: "p^-1/2", Marker: '+',
		X: []float64{4, 16, 64, 256}, Y: []float64{0.5, 0.25, 0.125, 0.0625}})
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	// A power law on log-log axes is a straight line. Scanning rows
	// top to bottom, y decreases, so x (the marker column) must
	// increase monotonically.
	lines := strings.Split(buf.String(), "\n")
	var positions []int
	for _, line := range lines {
		if i := strings.IndexByte(line, '+'); i >= 0 && strings.Contains(line, "|") {
			positions = append(positions, i)
		}
	}
	if len(positions) < 3 {
		t.Fatalf("expected ≥3 plotted rows, got %d:\n%s", len(positions), buf.String())
	}
	for i := 1; i < len(positions); i++ {
		if positions[i] <= positions[i-1] {
			t.Errorf("power-law line not moving right as y decreases: %v", positions)
		}
	}
}

func TestRenderLogDropsNonPositive(t *testing.T) {
	c := New("log")
	c.LogY = true
	c.Add(Series{Name: "s", Marker: 'o', X: []float64{1, 2}, Y: []float64{0, 1}})
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRenderErrors(t *testing.T) {
	c := New("empty")
	var buf bytes.Buffer
	if err := c.Render(&buf); err == nil {
		t.Error("want error for no points")
	}
	c2 := &Chart{Width: 2, Height: 2}
	c2.Add(Series{Name: "s", Marker: 'o', X: []float64{1}, Y: []float64{1}})
	if err := c2.Render(&buf); err == nil {
		t.Error("want error for tiny canvas")
	}
	c3 := New("all dropped")
	c3.LogY = true
	c3.Add(Series{Name: "s", Marker: 'o', X: []float64{1}, Y: []float64{-1}})
	if err := c3.Render(&buf); err == nil {
		t.Error("want error when every point is dropped")
	}
}

func TestRenderDegenerateRange(t *testing.T) {
	// All points identical: ranges are padded, no division by zero.
	c := New("flat")
	c.Add(Series{Name: "s", Marker: 'o', X: []float64{5, 5}, Y: []float64{3, 3}})
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapMarker(t *testing.T) {
	c := New("overlap")
	c.Add(Series{Name: "a", Marker: 'a', X: []float64{1, 2}, Y: []float64{1, 2}})
	c.Add(Series{Name: "b", Marker: 'b', X: []float64{1, 2}, Y: []float64{1, 2}})
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Error("overlapping points should render as '*'")
	}
}
