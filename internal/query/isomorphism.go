package query

// Isomorphic reports whether two queries are isomorphic: there exist
// bijections between their atoms and between their variables that
// preserve atom arity and variable positions. The paper reasons up to
// isomorphism throughout ("L5/{S2,S4} is isomorphic to L3",
// "C_ℓ/M ≅ C_{⌊ℓ/kε⌋}"); this makes those claims mechanically
// checkable.
//
// The search is backtracking over atom matchings with incremental
// variable-bijection consistency — exponential in the worst case but
// instantaneous for the paper's constant-size queries.
func Isomorphic(q1, q2 *Query) bool {
	if q1.NumAtoms() != q2.NumAtoms() || q1.NumVars() != q2.NumVars() ||
		q1.TotalArity() != q2.TotalArity() {
		return false
	}
	n := q1.NumAtoms()
	// Candidate atoms in q2 for each atom of q1: same arity and same
	// number of distinct variables.
	candidates := make([][]int, n)
	for i, a := range q1.Atoms {
		for j, b := range q2.Atoms {
			if a.Arity() == b.Arity() && len(a.DistinctVars()) == len(b.DistinctVars()) {
				candidates[i] = append(candidates[i], j)
			}
		}
		if len(candidates[i]) == 0 {
			return false
		}
	}
	usedAtom := make([]bool, n)
	fwd := make(map[string]string, q1.NumVars()) // q1 var → q2 var
	rev := make(map[string]string, q1.NumVars()) // q2 var → q1 var

	var match func(i int) bool
	match = func(i int) bool {
		if i == n {
			return true
		}
		a := q1.Atoms[i]
		for _, j := range candidates[i] {
			if usedAtom[j] {
				continue
			}
			b := q2.Atoms[j]
			// Try to extend the variable bijection position-wise.
			var added []string
			ok := true
			for pos := range a.Vars {
				v1, v2 := a.Vars[pos], b.Vars[pos]
				m1, has1 := fwd[v1]
				m2, has2 := rev[v2]
				switch {
				case has1 && m1 != v2:
					ok = false
				case has2 && m2 != v1:
					ok = false
				case !has1 && !has2:
					fwd[v1] = v2
					rev[v2] = v1
					added = append(added, v1)
				}
				if !ok {
					break
				}
			}
			if ok {
				usedAtom[j] = true
				if match(i + 1) {
					return true
				}
				usedAtom[j] = false
			}
			for _, v1 := range added {
				v2 := fwd[v1]
				delete(fwd, v1)
				delete(rev, v2)
			}
		}
		return false
	}
	return match(0)
}
