package query

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("q"); err == nil {
		t.Error("want error: no atoms")
	}
	if _, err := New("q", Atom{Name: "", Vars: []string{"x"}}); err == nil {
		t.Error("want error: empty relation name")
	}
	if _, err := New("q", Atom{Name: "R", Vars: nil}); err == nil {
		t.Error("want error: no variables")
	}
	if _, err := New("q",
		Atom{Name: "R", Vars: []string{"x"}},
		Atom{Name: "R", Vars: []string{"y"}}); err == nil {
		t.Error("want error: self-join")
	}
	if _, err := New("q", Atom{Name: "R", Vars: []string{""}}); err == nil {
		t.Error("want error: empty variable")
	}
}

func TestBasicAccessors(t *testing.T) {
	q := Chain(3)
	if got := q.NumVars(); got != 4 {
		t.Errorf("NumVars = %d, want 4", got)
	}
	if got := q.NumAtoms(); got != 3 {
		t.Errorf("NumAtoms = %d, want 3", got)
	}
	if got := q.TotalArity(); got != 6 {
		t.Errorf("TotalArity = %d, want 6", got)
	}
	if got := q.VarIndex("x2"); got != 2 {
		t.Errorf("VarIndex(x2) = %d, want 2", got)
	}
	if got := q.VarIndex("nope"); got != -1 {
		t.Errorf("VarIndex(nope) = %d, want -1", got)
	}
	if got := q.AtomIndex("S2"); got != 1 {
		t.Errorf("AtomIndex(S2) = %d, want 1", got)
	}
	if got := q.AtomIndex("nope"); got != -1 {
		t.Errorf("AtomIndex(nope) = %d, want -1", got)
	}
	if got := q.AtomsOf("x1"); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("AtomsOf(x1) = %v, want [0 1]", got)
	}
}

func TestString(t *testing.T) {
	q := Chain(2)
	s := q.String()
	if !strings.Contains(s, "L2(x0,x1,x2)") || !strings.Contains(s, "S1(x0,x1),S2(x1,x2)") {
		t.Errorf("String = %q", s)
	}
}

func TestComponents(t *testing.T) {
	// R(x),S(y) is disconnected; add T(x,y) to connect.
	q := MustNew("q",
		Atom{Name: "R", Vars: []string{"x"}},
		Atom{Name: "S", Vars: []string{"y"}},
	)
	comps := q.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %v, want 2", comps)
	}
	if q.Connected() {
		t.Error("q should be disconnected")
	}
	q2 := MustNew("q2",
		Atom{Name: "R", Vars: []string{"x"}},
		Atom{Name: "S", Vars: []string{"y"}},
		Atom{Name: "T", Vars: []string{"x", "y"}},
	)
	if !q2.Connected() {
		t.Error("q2 should be connected")
	}
}

// TestCharacteristicTable1 checks χ against the values implied by
// Table 1 (E[|q|] = n^{1+χ}): Lk and Tk have χ = 0 (answer size n),
// Ck has χ = -1 (answer size 1), B_{k,m} has χ = k-(m-1)·C(k,m)-1.
func TestCharacteristicTable1(t *testing.T) {
	for k := 2; k <= 8; k++ {
		if got := Chain(k).Characteristic(); got != 0 {
			t.Errorf("χ(L%d) = %d, want 0", k, got)
		}
		if got := Star(k).Characteristic(); got != 0 {
			t.Errorf("χ(T%d) = %d, want 0", k, got)
		}
		if got := Cycle(k).Characteristic(); got != -1 {
			t.Errorf("χ(C%d) = %d, want -1", k, got)
		}
	}
	// B_{k,m}: k vars, C(k,m) atoms each of arity m, connected (m>=1,
	// any two atoms share a variable when 2m > k; in general connected
	// for m >= 1 and k >= m because subsets overlap chains).
	cases := []struct{ k, m, want int }{
		{3, 2, 3 + 3 - 6 - 1},   // -1
		{4, 2, 4 + 6 - 12 - 1},  // -3
		{4, 3, 4 + 4 - 12 - 1},  // -5
		{5, 2, 5 + 10 - 20 - 1}, // -6
	}
	for _, c := range cases {
		q := Binom(c.k, c.m)
		if got := q.Characteristic(); got != c.want {
			t.Errorf("χ(B%d,%d) = %d, want %d", c.k, c.m, got, c.want)
		}
	}
}

func TestCharacteristicNonPositiveProperty(t *testing.T) {
	// Lemma 2.1(c): χ(q) ≤ 0 for every query.
	f := func(seed uint64) bool {
		q := randomQuery(rand.New(rand.NewPCG(seed, 11)))
		return q.Characteristic() <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCharacteristicAdditiveOverComponents(t *testing.T) {
	// Lemma 2.1(a): χ(q) = Σ χ(q_i) over connected components.
	f := func(seed uint64) bool {
		q := randomQuery(rand.New(rand.NewPCG(seed, 13)))
		sum := 0
		for i, comp := range q.Components() {
			sub, err := q.Subquery("comp", comp)
			if err != nil {
				return false
			}
			_ = i
			sum += sub.Characteristic()
		}
		return sum == q.Characteristic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestContractionCharacteristic(t *testing.T) {
	// Lemma 2.1(b): χ(q/M) = χ(q) − χ(M), and (d): χ(q) ≤ χ(q/M).
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		q := randomQuery(rng)
		if q.NumAtoms() < 2 {
			return true
		}
		m := map[int]bool{}
		for i := 0; i < q.NumAtoms(); i++ {
			if rng.IntN(2) == 0 {
				m[i] = true
			}
		}
		if len(m) == 0 || len(m) == q.NumAtoms() {
			return true
		}
		var mIdx []int
		for i := range m {
			mIdx = append(mIdx, i)
		}
		sub, err := q.Subquery("M", mIdx)
		if err != nil {
			return false
		}
		contracted, err := q.Contract(m)
		if err != nil {
			return false
		}
		if contracted.Characteristic() != q.Characteristic()-sub.Characteristic() {
			return false
		}
		return q.Characteristic() <= contracted.Characteristic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestContractL5Example reproduces the paper's Section 2.3 example:
// L5/{S2,S4} = S1(x0,x1), S3(x1,x3), S5(x3,x5).
func TestContractL5Example(t *testing.T) {
	q := Chain(5)
	got, err := q.ContractAtoms("S2", "S4")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumAtoms() != 3 {
		t.Fatalf("atoms = %d, want 3", got.NumAtoms())
	}
	wantAtoms := []struct {
		name string
		vars []string
	}{
		{"S1", []string{"x0", "x1"}},
		{"S3", []string{"x1", "x3"}},
		{"S5", []string{"x3", "x5"}},
	}
	for i, w := range wantAtoms {
		a := got.Atoms[i]
		if a.Name != w.name {
			t.Errorf("atom %d = %s, want %s", i, a.Name, w.name)
		}
		for j, v := range w.vars {
			if a.Vars[j] != v {
				t.Errorf("atom %s var %d = %s, want %s", a.Name, j, a.Vars[j], v)
			}
		}
	}
	// L5/{S2,S4} is isomorphic to L3: still tree-like.
	if !got.TreeLike() {
		t.Error("contracted chain should remain tree-like")
	}
}

func TestContractErrors(t *testing.T) {
	q := Chain(2)
	if _, err := q.Contract(map[int]bool{0: true, 1: true}); err == nil {
		t.Error("want error contracting every atom")
	}
	if _, err := q.ContractAtoms("nope"); err == nil {
		t.Error("want error for unknown atom")
	}
	// Contracting nothing returns an equivalent query.
	same, err := q.Contract(nil)
	if err != nil {
		t.Fatal(err)
	}
	if same.NumAtoms() != q.NumAtoms() || same.NumVars() != q.NumVars() {
		t.Error("empty contraction changed the query")
	}
}

func TestTreeLike(t *testing.T) {
	cases := []struct {
		q    *Query
		want bool
	}{
		{Chain(1), true},
		{Chain(7), true},
		{Star(4), true},
		{Cycle(3), false},
		{Cycle(6), false},
		{SpokedWheel(3), true},
		// Acyclic but not tree-like (paper's example):
		// S1(x0,x1,x2), S2(x1,x2,x3).
		{MustNew("acyc",
			Atom{Name: "S1", Vars: []string{"x0", "x1", "x2"}},
			Atom{Name: "S2", Vars: []string{"x1", "x2", "x3"}}), false},
	}
	for _, c := range cases {
		if got := c.q.TreeLike(); got != c.want {
			t.Errorf("TreeLike(%s) = %v, want %v", c.q.Name, got, c.want)
		}
	}
}

func TestTreeLikeSubqueriesRemainTreeLike(t *testing.T) {
	// "every connected subquery [of a tree-like query] will be also
	// tree-like" (Section 2.3).
	for _, q := range []*Query{Chain(5), Star(4), SpokedWheel(2)} {
		subs, err := q.ConnectedSubqueries(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range subs {
			sub, err := q.Subquery("sub", idx)
			if err != nil {
				t.Fatal(err)
			}
			if !sub.TreeLike() {
				t.Errorf("%s: connected subquery %v not tree-like", q.Name, idx)
			}
		}
	}
}

func TestDistanceRadiusDiameter(t *testing.T) {
	cases := []struct {
		q         *Query
		rad, diam int
	}{
		{Chain(1), 1, 1},
		{Chain(4), 2, 4},
		{Chain(5), 3, 5},
		{Chain(16), 8, 16},
		{Cycle(4), 2, 2},
		{Cycle(5), 2, 2},
		{Cycle(6), 3, 3},
		{Cycle(7), 3, 3},
		{Star(5), 1, 2},
		{SpokedWheel(3), 2, 4},
	}
	for _, c := range cases {
		rad, err := c.q.Radius()
		if err != nil {
			t.Fatalf("%s radius: %v", c.q.Name, err)
		}
		diam, err := c.q.Diameter()
		if err != nil {
			t.Fatalf("%s diameter: %v", c.q.Name, err)
		}
		if rad != c.rad || diam != c.diam {
			t.Errorf("%s: rad=%d diam=%d, want rad=%d diam=%d",
				c.q.Name, rad, diam, c.rad, c.diam)
		}
	}
}

func TestRadiusDiameterRelation(t *testing.T) {
	// rad ≤ diam ≤ 2·rad on random connected queries.
	f := func(seed uint64) bool {
		q := randomConnectedQuery(rand.New(rand.NewPCG(seed, 19)))
		rad, err1 := q.Radius()
		diam, err2 := q.Diameter()
		if err1 != nil || err2 != nil {
			return false
		}
		return rad <= diam && diam <= 2*rad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCenter(t *testing.T) {
	q := Chain(4) // center is x2 (eccentricity 2)
	c, err := q.Center()
	if err != nil {
		t.Fatal(err)
	}
	ecc, err := q.Eccentricity(c)
	if err != nil {
		t.Fatal(err)
	}
	if ecc != 2 {
		t.Errorf("center %s has eccentricity %d, want 2", c, ecc)
	}
}

func TestDistancesErrors(t *testing.T) {
	q := Chain(2)
	if _, err := q.Distances("nope"); err == nil {
		t.Error("want error for unknown source")
	}
	disc := MustNew("d",
		Atom{Name: "R", Vars: []string{"x"}},
		Atom{Name: "S", Vars: []string{"y"}})
	if _, err := disc.Radius(); err == nil {
		t.Error("want error: radius of disconnected query")
	}
	if _, err := disc.Diameter(); err == nil {
		t.Error("want error: diameter of disconnected query")
	}
	if _, err := disc.Center(); err == nil {
		t.Error("want error: center of disconnected query")
	}
	if _, err := disc.Eccentricity("x"); err == nil {
		t.Error("want error: eccentricity in disconnected query")
	}
}

func TestConnectedSubqueriesChain(t *testing.T) {
	// Connected subqueries of L_k are exactly the contiguous segments:
	// k·(k+1)/2 of them.
	for k := 1; k <= 6; k++ {
		q := Chain(k)
		subs, err := q.ConnectedSubqueries(0)
		if err != nil {
			t.Fatal(err)
		}
		want := k * (k + 1) / 2
		if len(subs) != want {
			t.Errorf("L%d: %d connected subqueries, want %d", k, len(subs), want)
		}
		for _, idx := range subs {
			for i := 1; i < len(idx); i++ {
				if idx[i] != idx[i-1]+1 {
					t.Errorf("L%d: non-contiguous connected subquery %v", k, idx)
				}
			}
		}
	}
}

func TestConnectedSubqueriesLimit(t *testing.T) {
	q := Chain(5)
	if _, err := q.ConnectedSubqueries(3); err == nil {
		t.Error("want error when exceeding limit")
	}
}

func TestFamilies(t *testing.T) {
	q := Binom(4, 2)
	if q.NumAtoms() != 6 {
		t.Errorf("B4,2 atoms = %d, want 6", q.NumAtoms())
	}
	if q.NumVars() != 4 {
		t.Errorf("B4,2 vars = %d, want 4", q.NumVars())
	}
	if !q.Connected() {
		t.Error("B4,2 should be connected")
	}
	sp := SpokedWheel(2)
	if sp.NumAtoms() != 4 || sp.NumVars() != 5 {
		t.Errorf("SP2: atoms=%d vars=%d, want 4, 5", sp.NumAtoms(), sp.NumVars())
	}
	cp := CartesianPair()
	if cp.Connected() {
		t.Error("cartesian pair should be disconnected")
	}
	tri := Triangle()
	if tri.NumAtoms() != 3 || tri.Characteristic() != -1 {
		t.Error("triangle should be C3")
	}
}

func TestFamilyPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Chain(0) },
		func() { Cycle(1) },
		func() { Star(0) },
		func() { Binom(3, 0) },
		func() { Binom(3, 4) },
		func() { SpokedWheel(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic for invalid family parameter")
				}
			}()
			f()
		}()
	}
}

func TestDistinctVars(t *testing.T) {
	a := Atom{Name: "R", Vars: []string{"x", "y", "x"}}
	d := a.DistinctVars()
	if len(d) != 2 || d[0] != "x" || d[1] != "y" {
		t.Errorf("DistinctVars = %v", d)
	}
	if a.Arity() != 3 {
		t.Errorf("Arity = %d, want 3", a.Arity())
	}
}

func TestSubqueryErrors(t *testing.T) {
	q := Chain(3)
	if _, err := q.Subquery("s", nil); err == nil {
		t.Error("want error for empty selection")
	}
	if _, err := q.Subquery("s", []int{99}); err == nil {
		t.Error("want error for out-of-range index")
	}
}

func TestRename(t *testing.T) {
	q := Chain(2).Rename("other")
	if q.Name != "other" || q.NumAtoms() != 2 {
		t.Error("rename should preserve structure")
	}
}

// randomQuery builds a small random query (possibly disconnected) for
// property tests.
func randomQuery(rng *rand.Rand) *Query {
	nAtoms := 1 + rng.IntN(5)
	nVars := 1 + rng.IntN(6)
	atoms := make([]Atom, nAtoms)
	for i := range atoms {
		arity := 1 + rng.IntN(3)
		vs := make([]string, arity)
		for j := range vs {
			vs[j] = varX(rng.IntN(nVars))
		}
		atoms[i] = Atom{Name: string(rune('A' + i)), Vars: vs}
	}
	return MustNew("rand", atoms...)
}

// randomConnectedQuery builds a random connected query by chaining
// each new atom to an existing variable.
func randomConnectedQuery(rng *rand.Rand) *Query {
	nAtoms := 1 + rng.IntN(5)
	atoms := make([]Atom, nAtoms)
	varCount := 0
	newVar := func() string {
		varCount++
		return varX(varCount)
	}
	first := newVar()
	atoms[0] = Atom{Name: "A0", Vars: []string{first, newVar()}}
	existing := []string{atoms[0].Vars[0], atoms[0].Vars[1]}
	for i := 1; i < nAtoms; i++ {
		anchor := existing[rng.IntN(len(existing))]
		arity := 1 + rng.IntN(3)
		vs := []string{anchor}
		for j := 1; j < arity; j++ {
			if rng.IntN(2) == 0 && len(existing) > 0 {
				vs = append(vs, existing[rng.IntN(len(existing))])
			} else {
				v := newVar()
				vs = append(vs, v)
				existing = append(existing, v)
			}
		}
		atoms[i] = Atom{Name: string(rune('A'+i)) + "r", Vars: vs}
	}
	return MustNew("randc", atoms...)
}
