package query

import "testing"

// FuzzParse fuzzes the conjunctive-query parser. The seed corpus
// covers the paper's query families (chains L_k, cycles C_k, stars
// T_k, the binomial B_{m,k}), headless bodies, repeated variables,
// whitespace variants, and a handful of malformed inputs. Beyond
// not-panicking, every accepted query must round-trip: rendering it
// with String() and reparsing must accept and produce the same query.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Paper query families.
		"q(x,y,z) = R(x,y), S(y,z)",                         // L2 / the skew join
		"L3(x0,x1,x2,x3) = S1(x0,x1), S2(x1,x2), S3(x2,x3)", // chain
		"C3(x1,x2,x3) = S1(x1,x2), S2(x2,x3), S3(x3,x1)",    // triangle
		"C5(x1,x2,x3,x4,x5) = S1(x1,x2), S2(x2,x3), S3(x3,x4), S4(x4,x5), S5(x5,x1)",
		"T2(z,x1,x2) = S1(z,x1), S2(z,x2)",                 // star
		"B(x1,x2,x3) = S12(x1,x2), S13(x1,x3), S23(x2,x3)", // binomial B_{3,2}
		"SP2(z,x1,x2) = S1(z,x1), S2(z,x2), S3(x1,x2)",     // spoked wheel
		// Headless, repeats, unary atoms, cartesian products.
		"R(x,y)",
		"R(x,x,y)",
		"R(x), S(y)",
		"E(u,v), E2(v,w), E3(w,u)",
		// Whitespace and unicode identifiers.
		" q ( x , y ) = R ( x , y ) ",
		"q(α,β) = R(α,β)",
		// Malformed inputs the parser must reject gracefully.
		"q(x,y) = R(x,y",
		"q(x) =",
		"q(x) = R()",
		"q(x,y) = R(x,y),",
		"q(x) = R(x) S(x)",
		"q(w) = R(x)",
		"()",
		"=",
		"",
		// Hardened-head rejections: invalid head names, declared-but-
		// empty heads, empty identifier positions.
		"1bad name(x) = R(x)",
		"q() = R(x,y)",
		"q(   ) = R(x)",
		"R(x,,y)",
		"q(x,,y) = R(x,y)",
		"q(x,y) = R(x,y,)",
		// Datalog-front-end syntax is a different grammar
		// (internal/datalog); the CQ parser must reject it gracefully.
		"tc(x,y) :- e(x,y).",
		"tc(x,z) :- tc(x,y), e(y,z).",
		"h(x, count(y)) :- r(x,y).",
		"total(sum(y)) :- r(x,y).",
		"?- tc(x,y).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q, err := Parse(s)
		if err != nil {
			return
		}
		if q.NumAtoms() == 0 || q.NumVars() == 0 {
			t.Fatalf("Parse(%q) accepted a query without atoms or variables: %v", s, q)
		}
		rendered := q.String()
		r, err := Parse(rendered)
		if err != nil {
			t.Fatalf("round-trip Parse(%q) failed for input %q: %v", rendered, s, err)
		}
		if r.String() != rendered {
			t.Fatalf("round-trip mismatch for %q:\n first: %q\nsecond: %q", s, rendered, r.String())
		}
	})
}
