package query

import (
	"strings"
	"testing"
)

func TestParseWithHead(t *testing.T) {
	q, err := Parse("q(x,y,z) = R(x,y), S(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "q" || q.NumAtoms() != 2 || q.NumVars() != 3 {
		t.Errorf("parsed %s", q)
	}
}

func TestParseWithoutHead(t *testing.T) {
	q, err := Parse("R(x,y), S(y,z), T(z,x)")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumAtoms() != 3 || q.Characteristic() != -1 {
		t.Errorf("parsed %s", q)
	}
}

func TestParseWhitespace(t *testing.T) {
	q, err := Parse("  q( x , y ) =  R( x , y )  ")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVars() != 2 {
		t.Errorf("vars = %v", q.Vars())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"q(x) =",
		"q(x = R(x)",
		"noparens",
		"R(x,y), , S(y)",
		"R(x,y),",
		"R()",
		"1R(x)",
		"R(1x)",
		"q(x,y) = R(x)",     // head var y not in body
		"q(x) = R(x), S(y)", // body var y missing from head
		"R(x y)",            // missing comma inside atom is parsed as one ident "x y" → invalid
		"R(x,y) S(y,z)",     // missing comma between atoms
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): want error", s)
		}
	}
}

// TestParseRejections pins the parser-hardening fixes: invalid head
// relation names, declared-but-empty heads (which must still fail the
// fullness check), and empty positions in identifier lists — all of
// which the parser once accepted silently.
func TestParseRejections(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"head name with space", "1bad name(x) = R(x)", "invalid query name"},
		{"head name starting with digit", "1bad(x) = R(x)", "invalid query name"},
		{"head name with dash", "no-good(x) = R(x)", "invalid query name"},
		{"empty declared head", "q() = R(x,y)", "missing from head"},
		{"blank declared head", "q(   ) = R(x)", "missing from head"},
		{"empty position in atom", "R(x,,y)", "empty position"},
		{"trailing empty position in atom", "q(x,y) = R(x,y,)", "empty position"},
		{"empty position in head", "q(x,,y) = R(x,y)", "empty position"},
		{"leading empty position in head", "q(,x) = R(x)", "empty position"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q, err := Parse(c.in)
			if err == nil {
				t.Fatalf("Parse(%q) = %v, want error", c.in, q)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("Parse(%q) error %q, want substring %q", c.in, err, c.wantSub)
			}
		})
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, q := range []*Query{Chain(4), Cycle(5), Star(3), SpokedWheel(2), Binom(4, 2)} {
		s := q.String()
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(String(%s)): %v", q.Name, err)
		}
		if got.String() != s {
			t.Errorf("round trip mismatch:\n in: %s\nout: %s", s, got.String())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("not a query")
}

func TestParseSelfJoinRejected(t *testing.T) {
	_, err := Parse("R(x,y), R(y,z)")
	if err == nil || !strings.Contains(err.Error(), "self-join") {
		t.Errorf("want self-join error, got %v", err)
	}
}
