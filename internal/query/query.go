// Package query models full conjunctive queries without self-joins and
// the hypergraph machinery used throughout Beame, Koutris, Suciu
// (PODS 2013): connected components, the characteristic χ(q),
// contraction q/M, tree-likeness, distances, radius and diameter.
//
// A query q(x1,…,xk) = S1(x̄1),…,Sℓ(x̄ℓ) is represented by its list of
// atoms; because the paper's queries are full, the head is implicitly
// the set of all variables. Relation names must be distinct (no
// self-joins), which the constructor enforces.
package query

import (
	"fmt"
	"sort"
	"strings"
)

// Atom is a single relational atom S(x1,…,xa). Repeated variables in
// one atom are allowed (the arity counts positions, not distinct
// variables), matching the paper's definition of χ.
type Atom struct {
	// Name is the relation symbol, unique within a query.
	Name string
	// Vars lists the variables at each position.
	Vars []string
}

// Arity returns the number of positions of the atom.
func (a Atom) Arity() int { return len(a.Vars) }

// DistinctVars returns the atom's variables with duplicates removed,
// in first-occurrence order.
func (a Atom) DistinctVars() []string {
	seen := make(map[string]bool, len(a.Vars))
	var out []string
	for _, v := range a.Vars {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// String renders the atom as Name(v1,v2,…).
func (a Atom) String() string {
	return a.Name + "(" + strings.Join(a.Vars, ",") + ")"
}

// clone returns a deep copy of the atom.
func (a Atom) clone() Atom {
	vs := make([]string, len(a.Vars))
	copy(vs, a.Vars)
	return Atom{Name: a.Name, Vars: vs}
}

// Query is a full conjunctive query without self-joins.
type Query struct {
	// Name is an optional label (e.g. "L3", "C5") used in output.
	Name string
	// Atoms is the query body.
	Atoms []Atom

	vars     []string       // cached variable order (first occurrence)
	varIndex map[string]int // variable → index in vars
}

// New builds a query from atoms, validating that relation names are
// distinct and every atom has positive arity.
func New(name string, atoms ...Atom) (*Query, error) {
	if len(atoms) == 0 {
		return nil, fmt.Errorf("query %q: no atoms", name)
	}
	seen := make(map[string]bool, len(atoms))
	for _, a := range atoms {
		if a.Name == "" {
			return nil, fmt.Errorf("query %q: atom with empty relation name", name)
		}
		if len(a.Vars) == 0 {
			return nil, fmt.Errorf("query %q: atom %s has no variables", name, a.Name)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("query %q: self-join on relation %s not supported", name, a.Name)
		}
		seen[a.Name] = true
		for _, v := range a.Vars {
			if v == "" {
				return nil, fmt.Errorf("query %q: atom %s has an empty variable", name, a.Name)
			}
		}
	}
	q := &Query{Name: name}
	q.Atoms = make([]Atom, len(atoms))
	for i, a := range atoms {
		q.Atoms[i] = a.clone()
	}
	q.index()
	return q, nil
}

// MustNew is New that panics on error; intended for static query
// construction in examples and tests.
func MustNew(name string, atoms ...Atom) *Query {
	q, err := New(name, atoms...)
	if err != nil {
		panic(err)
	}
	return q
}

func (q *Query) index() {
	q.vars = nil
	q.varIndex = make(map[string]int)
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			if _, ok := q.varIndex[v]; !ok {
				q.varIndex[v] = len(q.vars)
				q.vars = append(q.vars, v)
			}
		}
	}
}

// Vars returns the query variables in first-occurrence order. The
// returned slice must not be modified.
func (q *Query) Vars() []string { return q.vars }

// NumVars returns k, the number of distinct variables.
func (q *Query) NumVars() int { return len(q.vars) }

// NumAtoms returns ℓ, the number of atoms.
func (q *Query) NumAtoms() int { return len(q.Atoms) }

// TotalArity returns a = Σ_j a_j.
func (q *Query) TotalArity() int {
	a := 0
	for _, at := range q.Atoms {
		a += at.Arity()
	}
	return a
}

// VarIndex returns the index of variable v in Vars(), or -1.
func (q *Query) VarIndex(v string) int {
	if i, ok := q.varIndex[v]; ok {
		return i
	}
	return -1
}

// AtomIndex returns the index of the atom with the given relation
// name, or -1.
func (q *Query) AtomIndex(name string) int {
	for i, a := range q.Atoms {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// AtomsOf returns the indices of atoms containing variable v
// (the paper's atoms(x_i)).
func (q *Query) AtomsOf(v string) []int {
	var out []int
	for i, a := range q.Atoms {
		for _, av := range a.Vars {
			if av == v {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// String renders the query as name(vars) = S1(..),S2(..).
func (q *Query) String() string {
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	head := q.Name
	if head == "" {
		head = "q"
	}
	return head + "(" + strings.Join(q.vars, ",") + ") = " + strings.Join(parts, ",")
}

// Components returns the connected components of the query as sets of
// atom indices, each sorted ascending; components are ordered by their
// smallest atom index. Two atoms are connected when they share a
// variable.
func (q *Query) Components() [][]int {
	n := len(q.Atoms)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	byVar := make(map[string]int)
	for i, a := range q.Atoms {
		for _, v := range a.Vars {
			if j, ok := byVar[v]; ok {
				union(i, j)
			} else {
				byVar[v] = i
			}
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var roots []int
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return groups[roots[i]][0] < groups[roots[j]][0] })
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		sort.Ints(groups[r])
		out = append(out, groups[r])
	}
	return out
}

// NumComponents returns c, the number of connected components.
func (q *Query) NumComponents() int { return len(q.Components()) }

// Connected reports whether the query hypergraph is connected.
func (q *Query) Connected() bool { return q.NumComponents() == 1 }

// Characteristic returns χ(q) = k + ℓ − Σ_j a_j − c (Section 2.3).
// It is always ≤ 0 (Lemma 2.1(c)).
func (q *Query) Characteristic() int {
	return q.NumVars() + q.NumAtoms() - q.TotalArity() - q.NumComponents()
}

// TreeLike reports whether q is connected with χ(q) = 0. Chain queries
// L_k and any tree over a binary vocabulary are tree-like; cycles are
// not.
func (q *Query) TreeLike() bool {
	return q.Connected() && q.Characteristic() == 0
}

// Subquery returns the query induced by the given atom indices (the
// atoms keep their order). The result shares no memory with q.
func (q *Query) Subquery(name string, atomIdx []int) (*Query, error) {
	if len(atomIdx) == 0 {
		return nil, fmt.Errorf("subquery of %q: no atoms selected", q.Name)
	}
	atoms := make([]Atom, 0, len(atomIdx))
	for _, i := range atomIdx {
		if i < 0 || i >= len(q.Atoms) {
			return nil, fmt.Errorf("subquery of %q: atom index %d out of range", q.Name, i)
		}
		atoms = append(atoms, q.Atoms[i])
	}
	return New(name, atoms...)
}

// Contract returns q/M: the query obtained by contracting, in the
// hypergraph of q, all edges belonging to the atoms in M (given as a
// set of atom indices). Variables of each connected component of M are
// merged into a single representative variable (the lexicographically
// smallest, so results are deterministic), and the atoms of M are
// removed. Contracting all atoms is an error because a query must have
// at least one atom.
func (q *Query) Contract(m map[int]bool) (*Query, error) {
	if len(m) == 0 {
		return New(q.Name+"/∅", q.Atoms...)
	}
	remaining := 0
	for i := range q.Atoms {
		if !m[i] {
			remaining++
		}
	}
	if remaining == 0 {
		return nil, fmt.Errorf("contract %q: cannot contract every atom", q.Name)
	}
	// Union-find over variables, merging within each atom of M.
	parent := make(map[string]string, len(q.vars))
	for _, v := range q.vars {
		parent[v] = v
	}
	var find func(string) string
	find = func(x string) string {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Keep the lexicographically smaller representative.
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for i, a := range q.Atoms {
		if !m[i] {
			continue
		}
		for _, v := range a.Vars[1:] {
			union(a.Vars[0], v)
		}
	}
	atoms := make([]Atom, 0, remaining)
	for i, a := range q.Atoms {
		if m[i] {
			continue
		}
		vs := make([]string, len(a.Vars))
		for j, v := range a.Vars {
			vs[j] = find(v)
		}
		atoms = append(atoms, Atom{Name: a.Name, Vars: vs})
	}
	return New(q.Name+"/M", atoms...)
}

// ContractAtoms is Contract with atoms named rather than indexed.
func (q *Query) ContractAtoms(names ...string) (*Query, error) {
	m := make(map[int]bool, len(names))
	for _, n := range names {
		i := q.AtomIndex(n)
		if i < 0 {
			return nil, fmt.Errorf("contract %q: no atom named %s", q.Name, n)
		}
		m[i] = true
	}
	return q.Contract(m)
}

// Distances returns, for the given source variable, the hypergraph
// distance d(source, v) to every variable v: the minimum number of
// hyperedges (atoms) on a path connecting them, with d(v,v) = 0.
// Unreachable variables get distance -1.
func (q *Query) Distances(source string) (map[string]int, error) {
	if q.VarIndex(source) < 0 {
		return nil, fmt.Errorf("query %q: unknown variable %s", q.Name, source)
	}
	dist := make(map[string]int, len(q.vars))
	for _, v := range q.vars {
		dist[v] = -1
	}
	dist[source] = 0
	frontier := []string{source}
	usedAtom := make([]bool, len(q.Atoms))
	for d := 1; len(frontier) > 0; d++ {
		var next []string
		for _, v := range frontier {
			for _, ai := range q.AtomsOf(v) {
				if usedAtom[ai] {
					continue
				}
				usedAtom[ai] = true
				for _, w := range q.Atoms[ai].Vars {
					if dist[w] == -1 {
						dist[w] = d
						next = append(next, w)
					}
				}
			}
		}
		frontier = next
	}
	return dist, nil
}

// Eccentricity returns max_v d(source, v), or an error if the query is
// disconnected (some variable unreachable).
func (q *Query) Eccentricity(source string) (int, error) {
	dist, err := q.Distances(source)
	if err != nil {
		return 0, err
	}
	ecc := 0
	for v, d := range dist {
		if d < 0 {
			return 0, fmt.Errorf("query %q: variable %s unreachable from %s", q.Name, v, source)
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, nil
}

// Radius returns rad(q) = min_u max_v d(u,v) over the query hypergraph.
func (q *Query) Radius() (int, error) {
	if !q.Connected() {
		return 0, fmt.Errorf("query %q: radius undefined for disconnected query", q.Name)
	}
	best := -1
	for _, u := range q.vars {
		e, err := q.Eccentricity(u)
		if err != nil {
			return 0, err
		}
		if best < 0 || e < best {
			best = e
		}
	}
	return best, nil
}

// Diameter returns diam(q) = max_{u,v} d(u,v).
func (q *Query) Diameter() (int, error) {
	if !q.Connected() {
		return 0, fmt.Errorf("query %q: diameter undefined for disconnected query", q.Name)
	}
	best := 0
	for _, u := range q.vars {
		e, err := q.Eccentricity(u)
		if err != nil {
			return 0, err
		}
		if e > best {
			best = e
		}
	}
	return best, nil
}

// Center returns a variable with minimum eccentricity.
func (q *Query) Center() (string, error) {
	if !q.Connected() {
		return "", fmt.Errorf("query %q: center undefined for disconnected query", q.Name)
	}
	bestVar := ""
	best := -1
	for _, u := range q.vars {
		e, err := q.Eccentricity(u)
		if err != nil {
			return "", err
		}
		if best < 0 || e < best {
			best = e
			bestVar = u
		}
	}
	return bestVar, nil
}

// ConnectedSubqueries enumerates all non-empty connected subsets of
// atoms (as sorted index slices). The enumeration is exponential in ℓ
// and intended for the paper's constant-size queries; callers pass a
// limit to guard against misuse (0 means no limit).
func (q *Query) ConnectedSubqueries(limit int) ([][]int, error) {
	n := len(q.Atoms)
	if n > 24 {
		return nil, fmt.Errorf("query %q: too many atoms (%d) to enumerate subqueries", q.Name, n)
	}
	// Precompute atom adjacency (shared variable).
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		vi := make(map[string]bool)
		for _, v := range q.Atoms[i].Vars {
			vi[v] = true
		}
		for j := i + 1; j < n; j++ {
			for _, v := range q.Atoms[j].Vars {
				if vi[v] {
					adj[i][j], adj[j][i] = true, true
					break
				}
			}
		}
	}
	connected := func(mask uint32) bool {
		var start int = -1
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				start = i
				break
			}
		}
		if start < 0 {
			return false
		}
		seen := uint32(1 << start)
		stack := []int{start}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 && seen&(1<<j) == 0 && adj[x][j] {
					seen |= 1 << j
					stack = append(stack, j)
				}
			}
		}
		return seen == mask
	}
	var out [][]int
	for mask := uint32(1); mask < 1<<n; mask++ {
		if !connected(mask) {
			continue
		}
		var idx []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				idx = append(idx, i)
			}
		}
		out = append(out, idx)
		if limit > 0 && len(out) > limit {
			return nil, fmt.Errorf("query %q: more than %d connected subqueries", q.Name, limit)
		}
	}
	return out, nil
}

// Rename returns a copy of q with the given name.
func (q *Query) Rename(name string) *Query {
	out := MustNew(name, q.Atoms...)
	return out
}
