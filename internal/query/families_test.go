package query

import "testing"

func TestParseFamily(t *testing.T) {
	cases := []struct {
		in        string
		atoms     int
		wantError bool
	}{
		{"L5", 5, false},
		{"C4", 4, false},
		{"T3", 3, false},
		{"SP2", 4, false},
		{"B4_2", 6, false},
		{"X9", 0, true},
		{"L", 0, true},
		{"L0", 0, true},
		{"C1", 0, true},
		{"T0", 0, true},
		{"SP0", 0, true},
		{"B4", 0, true},
		{"B2_3", 0, true},
		{"Bx_y", 0, true},
		{"SPx", 0, true},
		{"Cx", 0, true},
		{"Tx", 0, true},
		{"", 0, true},
	}
	for _, c := range cases {
		q, err := ParseFamily(c.in)
		if c.wantError {
			if err == nil {
				t.Errorf("ParseFamily(%q): want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseFamily(%q): %v", c.in, err)
			continue
		}
		if q.NumAtoms() != c.atoms {
			t.Errorf("ParseFamily(%q): %d atoms, want %d", c.in, q.NumAtoms(), c.atoms)
		}
	}
}
