package query

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestIsomorphicBasics(t *testing.T) {
	if !Isomorphic(Chain(3), Chain(3)) {
		t.Error("L3 ≅ L3")
	}
	if Isomorphic(Chain(3), Chain(4)) {
		t.Error("L3 ≇ L4")
	}
	if Isomorphic(Chain(3), Cycle(3)) {
		t.Error("L3 ≇ C3")
	}
	if !Isomorphic(Cycle(4), Cycle(4)) {
		t.Error("C4 ≅ C4")
	}
	// Same shape, different names and variable labels.
	a := MustParse("q(a,b,c) = R(a,b), S(b,c)")
	b := MustParse("p(u,v,w) = X(w,v), Y(v,u)")
	if !Isomorphic(a, b) {
		t.Error("renamed chains should be isomorphic")
	}
}

// TestContractedChainIsomorphism verifies the paper's claims that
// contractions of chains are chains: L5/{S2,S4} ≅ L3, and generally
// keeping every 2nd atom of L_k yields L_{⌈k/2⌉}.
func TestContractedChainIsomorphism(t *testing.T) {
	q := Chain(5)
	got, err := q.ContractAtoms("S2", "S4")
	if err != nil {
		t.Fatal(err)
	}
	if !Isomorphic(got, Chain(3)) {
		t.Errorf("L5/{S2,S4} = %s should be ≅ L3", got)
	}
	for k := 3; k <= 12; k++ {
		qk := Chain(k)
		var contract []string
		for i := 2; i <= k; i += 2 {
			contract = append(contract, qk.Atoms[i-1].Name)
		}
		c, err := qk.ContractAtoms(contract...)
		if err != nil {
			t.Fatal(err)
		}
		want := Chain((k + 1) / 2)
		if !Isomorphic(c, want) {
			t.Errorf("L%d contracted = %s, want ≅ %s", k, c, want.Name)
		}
	}
}

// TestContractedCycleIsomorphism: contracting alternating atoms of an
// even cycle halves it: C_{2m} → C_m.
func TestContractedCycleIsomorphism(t *testing.T) {
	for _, k := range []int{6, 8, 10} {
		q := Cycle(k)
		var contract []string
		for i := 2; i <= k; i += 2 {
			contract = append(contract, q.Atoms[i-1].Name)
		}
		c, err := q.ContractAtoms(contract...)
		if err != nil {
			t.Fatal(err)
		}
		if !Isomorphic(c, Cycle(k/2)) {
			t.Errorf("C%d contracted = %s, want ≅ C%d", k, c, k/2)
		}
	}
}

// TestIsomorphicStarVsChain: T2 and L2 are both two binary atoms
// sharing one variable — but T2 shares the FIRST position of each atom
// while L2 chains; as unordered hypergraphs they are isomorphic
// (positions can be matched because the shared variable maps
// appropriately). Verify the expected verdicts.
func TestIsomorphicStarVsChain(t *testing.T) {
	// T2 = S1(z,x1), S2(z,x2); L2 = S1(x0,x1), S2(x1,x2).
	// A position-preserving bijection must map z to both x1 (pos 2 of
	// S1) and x0… actually z occurs at position 1 in both atoms of T2,
	// while L2's shared variable occurs at position 2 of S1 and
	// position 1 of S2 — but atom order may swap. S1↔S2 swap still
	// needs z at positions (1,1) vs shared at (2,1): no bijection.
	if Isomorphic(Star(2), Chain(2)) {
		t.Error("T2 ≇ L2 under position-preserving isomorphism")
	}
}

// TestIsomorphicInvariantUnderRenaming: random queries are isomorphic
// to any consistent renaming of themselves.
func TestIsomorphicInvariantUnderRenaming(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 61))
		q := randomQuery(rng)
		// Rename variables and relations, and shuffle atom order.
		varMap := map[string]string{}
		for i, v := range q.Vars() {
			varMap[v] = "r" + string(rune('A'+i))
		}
		atoms := make([]Atom, q.NumAtoms())
		perm := rng.Perm(q.NumAtoms())
		for i, j := range perm {
			src := q.Atoms[j]
			vs := make([]string, len(src.Vars))
			for pos, v := range src.Vars {
				vs[pos] = varMap[v]
			}
			atoms[i] = Atom{Name: "Z" + string(rune('a'+i)), Vars: vs}
		}
		q2 := MustNew("renamed", atoms...)
		return Isomorphic(q, q2) && Isomorphic(q2, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestNonIsomorphicDifferentStructure(t *testing.T) {
	// Same counts, different wiring: path P3 vs star T3 over binary
	// vocabulary (both 3 atoms, 4 vars, arity 6).
	if Isomorphic(Chain(3), Star(3)) {
		t.Error("L3 ≇ T3")
	}
	// Arity mismatch.
	a := MustNew("a", Atom{Name: "R", Vars: []string{"x", "y", "z"}})
	b := MustNew("b", Atom{Name: "R", Vars: []string{"x", "y"}})
	if Isomorphic(a, b) {
		t.Error("different arity atoms cannot be isomorphic")
	}
	// Repeated variable vs distinct.
	c := MustNew("c", Atom{Name: "R", Vars: []string{"x", "x"}})
	d := MustNew("d", Atom{Name: "R", Vars: []string{"x", "y"}})
	if Isomorphic(c, d) {
		t.Error("R(x,x) ≇ R(x,y)")
	}
}
