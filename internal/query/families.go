package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file builds the running-example query families of Table 1 and
// Example 4.2 of the paper.

// Chain returns the linear (chain) query
// L_k(x0,…,xk) = S1(x0,x1),…,Sk(x_{k-1},x_k).
func Chain(k int) *Query {
	if k < 1 {
		panic(fmt.Sprintf("query.Chain: k = %d < 1", k))
	}
	atoms := make([]Atom, k)
	for j := 1; j <= k; j++ {
		atoms[j-1] = Atom{
			Name: fmt.Sprintf("S%d", j),
			Vars: []string{varX(j - 1), varX(j)},
		}
	}
	return MustNew(fmt.Sprintf("L%d", k), atoms...)
}

// Cycle returns the cycle query
// C_k(x1,…,xk) = S1(x1,x2),…,Sk(xk,x1).
func Cycle(k int) *Query {
	if k < 2 {
		panic(fmt.Sprintf("query.Cycle: k = %d < 2", k))
	}
	atoms := make([]Atom, k)
	for j := 1; j <= k; j++ {
		next := j%k + 1
		atoms[j-1] = Atom{
			Name: fmt.Sprintf("S%d", j),
			Vars: []string{varX(j), varX(next)},
		}
	}
	return MustNew(fmt.Sprintf("C%d", k), atoms...)
}

// Star returns the star query
// T_k(z,x1,…,xk) = S1(z,x1),…,Sk(z,xk).
func Star(k int) *Query {
	if k < 1 {
		panic(fmt.Sprintf("query.Star: k = %d < 1", k))
	}
	atoms := make([]Atom, k)
	for j := 1; j <= k; j++ {
		atoms[j-1] = Atom{
			Name: fmt.Sprintf("S%d", j),
			Vars: []string{"z", varX(j)},
		}
	}
	return MustNew(fmt.Sprintf("T%d", k), atoms...)
}

// Binom returns B_{k,m}: one relation S_I per m-element subset I of
// [k], whose variables are {x_i : i ∈ I} in ascending order.
func Binom(k, m int) *Query {
	if m < 1 || m > k {
		panic(fmt.Sprintf("query.Binom: need 1 <= m <= k, got m=%d k=%d", m, k))
	}
	var atoms []Atom
	subset := make([]int, m)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == m {
			vs := make([]string, m)
			name := "S"
			for i, e := range subset {
				vs[i] = varX(e)
				name += fmt.Sprintf("_%d", e)
			}
			atoms = append(atoms, Atom{Name: name, Vars: vs})
			return
		}
		for v := start; v <= k; v++ {
			subset[depth] = v
			rec(v+1, depth+1)
		}
	}
	rec(1, 0)
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].Name < atoms[j].Name })
	return MustNew(fmt.Sprintf("B%d_%d", k, m), atoms...)
}

// SpokedWheel returns SP_k = ∧_{i=1..k} R_i(z,x_i), S_i(x_i,y_i)
// (Example 4.2): k two-hop spokes sharing the hub variable z.
func SpokedWheel(k int) *Query {
	if k < 1 {
		panic(fmt.Sprintf("query.SpokedWheel: k = %d < 1", k))
	}
	atoms := make([]Atom, 0, 2*k)
	for i := 1; i <= k; i++ {
		atoms = append(atoms,
			Atom{Name: fmt.Sprintf("R%d", i), Vars: []string{"z", varX(i)}},
			Atom{Name: fmt.Sprintf("S%d", i), Vars: []string{varX(i), fmt.Sprintf("y%d", i)}},
		)
	}
	return MustNew(fmt.Sprintf("SP%d", k), atoms...)
}

// Triangle returns C_3, the triangle query, under its conventional
// variable naming S1(x1,x2), S2(x2,x3), S3(x3,x1).
func Triangle() *Query { return Cycle(3) }

// CartesianPair returns the two-atom product query
// q(x,y) = R(x), S(y) — the drug-interaction workload from the paper's
// introduction. Note it is disconnected.
func CartesianPair() *Query {
	return MustNew("CP",
		Atom{Name: "R", Vars: []string{"x"}},
		Atom{Name: "S", Vars: []string{"y"}},
	)
}

func varX(i int) string { return fmt.Sprintf("x%d", i) }

// ParseFamily resolves a family label into its query: L<k> (chain),
// C<k> (cycle), T<k> (star), SP<k> (spoked wheel), B<k>_<m>
// (binomial). It is the shared flag parser of cmd/mpcplan and
// cmd/mpcrun, returning errors (never panicking) on malformed labels
// or out-of-range parameters.
func ParseFamily(s string) (*Query, error) {
	switch {
	case strings.HasPrefix(s, "SP"):
		k, err := strconv.Atoi(s[2:])
		if err != nil {
			return nil, fmt.Errorf("family %q: %v", s, err)
		}
		if k < 1 {
			return nil, fmt.Errorf("family %q: need k >= 1", s)
		}
		return SpokedWheel(k), nil
	case strings.HasPrefix(s, "B"):
		parts := strings.SplitN(s[1:], "_", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("family %q: want B<k>_<m>", s)
		}
		k, err1 := strconv.Atoi(parts[0])
		m, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("family %q: bad numbers", s)
		}
		if m < 1 || m > k {
			return nil, fmt.Errorf("family %q: need 1 <= m <= k", s)
		}
		return Binom(k, m), nil
	case strings.HasPrefix(s, "L"):
		k, err := strconv.Atoi(s[1:])
		if err != nil {
			return nil, fmt.Errorf("family %q: %v", s, err)
		}
		if k < 1 {
			return nil, fmt.Errorf("family %q: need k >= 1", s)
		}
		return Chain(k), nil
	case strings.HasPrefix(s, "C"):
		k, err := strconv.Atoi(s[1:])
		if err != nil {
			return nil, fmt.Errorf("family %q: %v", s, err)
		}
		if k < 2 {
			return nil, fmt.Errorf("family %q: need k >= 2", s)
		}
		return Cycle(k), nil
	case strings.HasPrefix(s, "T"):
		k, err := strconv.Atoi(s[1:])
		if err != nil {
			return nil, fmt.Errorf("family %q: %v", s, err)
		}
		if k < 1 {
			return nil, fmt.Errorf("family %q: need k >= 1", s)
		}
		return Star(k), nil
	default:
		return nil, fmt.Errorf("unknown family %q (want L<k>, C<k>, T<k>, SP<k>, B<k>_<m>)", s)
	}
}
