package query

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a conjunctive query from a compact textual syntax:
//
//	q(x,y,z) = R(x,y), S(y,z)
//
// or, with the head omitted (the head of a full CQ is determined by
// the body anyway):
//
//	R(x,y), S(y,z)
//
// Identifiers are letters, digits and underscores beginning with a
// letter. Whitespace is insignificant.
func Parse(s string) (*Query, error) {
	name := "q"
	body := s
	headDeclared := false
	var declared []string
	if i := strings.Index(s, "="); i >= 0 {
		head := strings.TrimSpace(s[:i])
		body = s[i+1:]
		// Head looks like name(vars...); only the name matters for a
		// full CQ, but we validate the declared variables if present.
		open := strings.Index(head, "(")
		if open < 0 || !strings.HasSuffix(head, ")") {
			return nil, fmt.Errorf("query parse: malformed head %q", head)
		}
		name = strings.TrimSpace(head[:open])
		if !validIdent(name) {
			return nil, fmt.Errorf("query parse: invalid query name %q in head %q", name, head)
		}
		var err error
		declared, err = splitIdents(head[open+1 : len(head)-1])
		if err != nil {
			return nil, fmt.Errorf("query parse: head %q: %v", head, err)
		}
		headDeclared = true
	}
	atoms, err := parseAtoms(body)
	if err != nil {
		return nil, err
	}
	q, err := New(name, atoms...)
	if err != nil {
		return nil, err
	}
	// A declared head — even an empty one — must cover exactly the body
	// variables (the paper's queries are full).
	if headDeclared {
		want := make(map[string]bool, q.NumVars())
		for _, v := range q.Vars() {
			want[v] = true
		}
		got := make(map[string]bool, len(declared))
		for _, v := range declared {
			if !want[v] {
				return nil, fmt.Errorf("query parse: head variable %s not in body (query must be full)", v)
			}
			got[v] = true
		}
		for v := range want {
			if !got[v] {
				return nil, fmt.Errorf("query parse: body variable %s missing from head (query must be full)", v)
			}
		}
	}
	return q, nil
}

// MustParse is Parse that panics on error.
func MustParse(s string) *Query {
	q, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return q
}

func parseAtoms(body string) ([]Atom, error) {
	var atoms []Atom
	rest := strings.TrimSpace(body)
	for rest != "" {
		open := strings.Index(rest, "(")
		if open < 0 {
			return nil, fmt.Errorf("query parse: expected atom, got %q", rest)
		}
		name := strings.TrimSpace(rest[:open])
		if !validIdent(name) {
			return nil, fmt.Errorf("query parse: invalid relation name %q", name)
		}
		closeIdx := strings.Index(rest[open:], ")")
		if closeIdx < 0 {
			return nil, fmt.Errorf("query parse: unclosed atom %q", rest)
		}
		closeIdx += open
		vars, err := splitIdents(rest[open+1 : closeIdx])
		if err != nil {
			return nil, fmt.Errorf("query parse: atom %s: %v", name, err)
		}
		if len(vars) == 0 {
			return nil, fmt.Errorf("query parse: atom %s has no variables", name)
		}
		for _, v := range vars {
			if !validIdent(v) {
				return nil, fmt.Errorf("query parse: invalid variable %q in atom %s", v, name)
			}
		}
		atoms = append(atoms, Atom{Name: name, Vars: vars})
		rest = strings.TrimSpace(rest[closeIdx+1:])
		if rest == "" {
			break
		}
		if !strings.HasPrefix(rest, ",") {
			return nil, fmt.Errorf("query parse: expected ',' between atoms, got %q", rest)
		}
		rest = strings.TrimSpace(rest[1:])
		if rest == "" {
			return nil, fmt.Errorf("query parse: trailing comma")
		}
	}
	if len(atoms) == 0 {
		return nil, fmt.Errorf("query parse: empty body")
	}
	return atoms, nil
}

// splitIdents splits a comma-separated identifier list. An all-blank
// string is zero identifiers (an explicitly empty list); an empty
// position between commas, as in "x,,y" or "x,", is a parse error
// rather than being silently dropped.
func splitIdents(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("empty position in identifier list %q", s)
		}
		out = append(out, p)
	}
	return out, nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 && !unicode.IsLetter(r) {
			return false
		}
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			return false
		}
	}
	return true
}
