package theory

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/query"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestExpectedAnswers(t *testing.T) {
	// Table 1: L_k, T_k → n; C_k → 1; B_{k,m} → n^{k−(m−1)C(k,m)}.
	n := 50
	cases := []struct {
		q    *query.Query
		want float64
	}{
		{query.Chain(4), 50},
		{query.Star(3), 50},
		{query.Cycle(5), 1},
		{query.Binom(3, 2), 1.0 / math.Pow(50, 2)}, // χ = -3+... = n^{3-3-1+... } = n^{-2}? χ(B3,2) = -1? no:
	}
	// Recompute the last case directly from χ.
	cases[3].want = math.Pow(float64(n), float64(1+query.Binom(3, 2).Characteristic()))
	for _, c := range cases {
		got, err := ExpectedAnswers(c.q, n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9*c.want {
			t.Errorf("E[|%s|] = %v, want %v", c.q.Name, got, c.want)
		}
	}
	if _, err := ExpectedAnswers(query.CartesianPair(), n); err == nil {
		t.Error("want error for disconnected query")
	}
}

func TestKEpsilon(t *testing.T) {
	cases := []struct {
		eps  *big.Rat
		want int
	}{
		{rat(0, 1), 2},
		{rat(1, 3), 2}, // 1/(2/3) = 3/2, floor 1 → 2
		{rat(1, 2), 4},
		{rat(2, 3), 6},
		{rat(3, 4), 8},
		{rat(4, 5), 10},
	}
	for _, c := range cases {
		got, err := KEpsilon(c.eps)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("kε(%s) = %d, want %d", c.eps.RatString(), got, c.want)
		}
	}
	if _, err := KEpsilon(rat(1, 1)); err == nil {
		t.Error("want error for ε = 1")
	}
	if _, err := KEpsilon(rat(-1, 2)); err == nil {
		t.Error("want error for ε < 0")
	}
}

func TestMEpsilon(t *testing.T) {
	cases := []struct {
		eps  *big.Rat
		want int
	}{
		{rat(0, 1), 2},
		{rat(1, 3), 3},
		{rat(1, 2), 4},
		{rat(3, 5), 5},
		{rat(2, 3), 6},
	}
	for _, c := range cases {
		got, err := MEpsilon(c.eps)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("mε(%s) = %d, want %d", c.eps.RatString(), got, c.want)
		}
	}
	if _, err := MEpsilon(rat(1, 1)); err == nil {
		t.Error("want error for ε = 1")
	}
}

func TestSpaceExponent(t *testing.T) {
	got, err := SpaceExponent(query.Cycle(3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(rat(1, 3)) != 0 {
		t.Errorf("ε(C3) = %s, want 1/3", got.RatString())
	}
}

func TestOneRoundFraction(t *testing.T) {
	// C3 at ε = 0: fraction = p^{-(3/2−1)} = p^{-1/2}.
	got, err := OneRoundFraction(query.Cycle(3), 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.125) > 1e-9 {
		t.Errorf("fraction = %v, want 1/8", got)
	}
	// At or above the space exponent: no restriction.
	got, err = OneRoundFraction(query.Cycle(3), 1.0/3.0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("fraction at space exponent = %v, want 1", got)
	}
}

// TestRoundsLowerUpperTable2 checks the Table 2 round counts for ε=0:
// L_k and C_k need ⌈log2 k⌉ rounds; T_k needs 1; SP_k needs 2.
func TestRoundsLowerUpperTable2(t *testing.T) {
	zero := rat(0, 1)
	for _, k := range []int{2, 3, 4, 5, 8, 9, 16, 17} {
		lo, err := RoundsLowerBound(query.Chain(k), zero)
		if err != nil {
			t.Fatal(err)
		}
		want := int(math.Ceil(math.Log2(float64(k))))
		if lo != want {
			t.Errorf("lower(L%d, ε=0) = %d, want ⌈log2 %d⌉ = %d", k, lo, k, want)
		}
		up, err := RoundsUpperBound(query.Chain(k), zero)
		if err != nil {
			t.Fatal(err)
		}
		if up < lo || up > lo+1 {
			t.Errorf("L%d: upper %d not within 1 of lower %d", k, up, lo)
		}
	}
	// Star: diameter 2, radius 1 → lower ⌈log2 2⌉ = 1, upper 1.
	lo, err := RoundsLowerBound(query.Star(5), zero)
	if err != nil {
		t.Fatal(err)
	}
	up, err := RoundsUpperBound(query.Star(5), zero)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 1 || up != 1 {
		t.Errorf("T5: lower=%d upper=%d, want 1,1", lo, up)
	}
	// SP_k: diameter 4, radius 2 → lower 2, upper 2.
	lo, err = RoundsLowerBound(query.SpokedWheel(3), zero)
	if err != nil {
		t.Fatal(err)
	}
	up, err = RoundsUpperBound(query.SpokedWheel(3), zero)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 2 || up != 2 {
		t.Errorf("SP3: lower=%d upper=%d, want 2,2", lo, up)
	}
}

// TestRoundsEpsilonTradeoff: Example 4.2 — L16 at ε=1/2 needs exactly
// 2 rounds (kε = 4).
func TestRoundsEpsilonTradeoff(t *testing.T) {
	half := rat(1, 2)
	lo, err := RoundsLowerBound(query.Chain(16), half)
	if err != nil {
		t.Fatal(err)
	}
	up, err := RoundsUpperBound(query.Chain(16), half)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 2 || up > 3 {
		t.Errorf("L16 at ε=1/2: lower=%d upper=%d, want lower 2", lo, up)
	}
}

func TestRoundsLowerBoundErrors(t *testing.T) {
	if _, err := RoundsLowerBound(query.Cycle(4), rat(0, 1)); err == nil {
		t.Error("want error: cycles are not tree-like")
	}
	if _, err := RoundsUpperBound(query.CartesianPair(), rat(0, 1)); err == nil {
		t.Error("want error: disconnected")
	}
}

func TestChainRoundsLower(t *testing.T) {
	zero := rat(0, 1)
	half := rat(1, 2)
	cases := []struct {
		k    int
		eps  *big.Rat
		want int
	}{
		{2, zero, 1}, {4, zero, 2}, {5, zero, 3}, {8, zero, 3}, {9, zero, 4},
		{16, half, 2}, {4, half, 1}, {64, half, 3}, {65, half, 4},
	}
	for _, c := range cases {
		got, err := ChainRoundsLower(c.k, c.eps)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("ChainRoundsLower(%d, %s) = %d, want %d", c.k, c.eps.RatString(), got, c.want)
		}
	}
	if _, err := ChainRoundsLower(0, zero); err == nil {
		t.Error("want error for k=0")
	}
}

func TestCycleRoundsLower(t *testing.T) {
	zero := rat(0, 1)
	cases := []struct {
		k, want int
	}{
		{3, 1}, {5, 2}, {6, 2}, {7, 3}, {12, 3}, {13, 4},
	}
	for _, c := range cases {
		got, err := CycleRoundsLower(c.k, zero)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("CycleRoundsLower(%d, 0) = %d, want %d", c.k, got, c.want)
		}
	}
	if _, err := CycleRoundsLower(2, zero); err == nil {
		t.Error("want error for k=2")
	}
}

func TestConnectedComponentsRoundsLower(t *testing.T) {
	// Grows with p at fixed t.
	prev := -1
	for _, p := range []int{16, 256, 4096, 65536} {
		got, err := ConnectedComponentsRoundsLower(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev {
			t.Errorf("CC lower bound decreased: p=%d → %d (prev %d)", p, got, prev)
		}
		prev = got
	}
	if _, err := ConnectedComponentsRoundsLower(1, 1); err == nil {
		t.Error("want error for p=1")
	}
	if _, err := ConnectedComponentsRoundsLower(16, 0); err == nil {
		t.Error("want error for t=0")
	}
}

func TestLogCeil(t *testing.T) {
	cases := []struct{ base, x, want int }{
		{2, 1, 0}, {2, 2, 1}, {2, 3, 2}, {2, 8, 3}, {2, 9, 4},
		{4, 16, 2}, {4, 17, 3}, {6, 36, 2},
	}
	for _, c := range cases {
		if got := logCeil(c.base, c.x); got != c.want {
			t.Errorf("logCeil(%d,%d) = %d, want %d", c.base, c.x, got, c.want)
		}
	}
}
