package theory

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/cover"
	"repro/internal/query"
)

// This file implements the combinatorics of the multi-round lower
// bound: ε-good sets and (ε,r)-plans (Definition 4.4), a generic
// verifier, and the explicit plan constructions for chains
// (Lemma 4.6) and cycles (Lemma 4.9).

// IsEpsilonGood reports whether the atom set M (names) is ε-good for
// q (Definition 4.4):
//
//  1. every connected subquery of q that lies in Γ¹_ε contains at most
//     one atom of M, and
//  2. χ(M̄) = 0 for M̄ = atoms(q) − M (each connected component of M̄
//     is tree-like).
//
// M̄ must be non-empty (otherwise q/M̄ is undefined).
//
// Condition 1 is decided without enumerating all 2^ℓ subqueries:
// because τ* is monotone under connected subqueries (restricting an
// optimal vertex cover of q' to a subquery q” ⊆ q' stays feasible, so
// τ*(q”) ≤ τ*(q')), a Γ¹_ε subquery containing two M-atoms a, b
// exists iff some simple path between a and b in the atom-adjacency
// graph lies in Γ¹_ε. It therefore suffices to enumerate simple paths
// between every pair of M-atoms.
func IsEpsilonGood(q *query.Query, m map[string]bool, eps *big.Rat) (bool, error) {
	inM := make(map[int]bool)
	var mIdx []int
	for name := range m {
		i := q.AtomIndex(name)
		if i < 0 {
			return false, fmt.Errorf("theory: no atom named %s in %s", name, q.Name)
		}
		inM[i] = true
		mIdx = append(mIdx, i)
	}
	var complement []int
	for i := range q.Atoms {
		if !inM[i] {
			complement = append(complement, i)
		}
	}
	if len(complement) == 0 {
		return false, fmt.Errorf("theory: M covers all atoms of %s", q.Name)
	}
	// Condition 2: χ(M̄) = 0.
	mbar, err := q.Subquery("Mbar", complement)
	if err != nil {
		return false, err
	}
	if mbar.Characteristic() != 0 {
		return false, nil
	}
	// Condition 1 via pairwise path enumeration.
	adj := atomAdjacency(q)
	sort.Ints(mIdx)
	for ia := 0; ia < len(mIdx); ia++ {
		for ib := ia + 1; ib < len(mIdx); ib++ {
			violates, err := pathInGamma(q, adj, mIdx[ia], mIdx[ib], eps)
			if err != nil {
				return false, err
			}
			if violates {
				return false, nil
			}
		}
	}
	return true, nil
}

// atomAdjacency returns, per atom, the list of atoms sharing a
// variable with it.
func atomAdjacency(q *query.Query) [][]int {
	n := q.NumAtoms()
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		vi := make(map[string]bool)
		for _, v := range q.Atoms[i].Vars {
			vi[v] = true
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			for _, v := range q.Atoms[j].Vars {
				if vi[v] {
					adj[i] = append(adj[i], j)
					break
				}
			}
		}
	}
	return adj
}

// maxPathChecks bounds the number of simple paths examined per atom
// pair; the paper's queries have very few (chains: 1, cycles: 2).
const maxPathChecks = 100000

// pathInGamma reports whether some simple path from atom a to atom b
// in the atom-adjacency graph induces a subquery lying in Γ¹_ε.
func pathInGamma(q *query.Query, adj [][]int, a, b int, eps *big.Rat) (bool, error) {
	onPath := make([]bool, q.NumAtoms())
	var path []int
	checks := 0
	var found bool
	var walkErr error
	var dfs func(cur int)
	dfs = func(cur int) {
		if found || walkErr != nil || checks > maxPathChecks {
			return
		}
		onPath[cur] = true
		path = append(path, cur)
		if cur == b {
			checks++
			sub, err := q.Subquery("path", append([]int(nil), path...))
			if err != nil {
				walkErr = err
			} else {
				in, err := cover.GammaOne(sub, eps)
				if err != nil {
					walkErr = err
				} else if in {
					found = true
				}
			}
		} else {
			for _, nxt := range adj[cur] {
				if !onPath[nxt] {
					dfs(nxt)
				}
			}
		}
		path = path[:len(path)-1]
		onPath[cur] = false
	}
	dfs(a)
	if walkErr != nil {
		return false, walkErr
	}
	if checks > maxPathChecks {
		return false, fmt.Errorf("theory: too many atom paths between %s and %s",
			q.Atoms[a].Name, q.Atoms[b].Name)
	}
	return found, nil
}

// Plan is an (ε,r)-plan: a decreasing sequence of atom-name sets
// M1 ⊃ M2 ⊃ … ⊃ Mr (Definition 4.4). Step j is ε-good for the query
// contracted by the complement of M_{j−1} (with M0 = all atoms), and
// the final contraction must not lie in Γ¹_ε.
//
// By Theorem 4.5, an (ε,r)-plan makes every (r+1)-round tuple-based
// MPC(ε) algorithm fail, so the certified round lower bound is r+2.
// (The paper's Lemma 4.6 states r = ⌈log_{kε}k⌉ − 1 for L_k, which is
// one more step than the construction can actually sustain — e.g. L5
// at ε = 0 admits only a 1-step plan, since a 2-step plan would need
// three pairwise-non-adjacent atoms to survive two contractions. With
// r_max = ⌈log_{kε}k⌉ − 2 steps the certified bound r_max + 2 agrees
// exactly with Corollary 4.8's ⌈log_{kε}(diam)⌉, which is also the
// bound matched by the upper-bound plans, so this is the consistent
// reading.)
type Plan struct {
	// Query is the original query.
	Query *query.Query
	// Steps holds M1, …, Mr as sets of original atom names.
	Steps []map[string]bool
}

// FailingRounds returns r+1: tuple-based MPC(ε) algorithms with this
// many rounds fail to compute the query (Theorem 4.5).
func (p *Plan) FailingRounds() int { return len(p.Steps) + 1 }

// LowerBound returns the certified round lower bound, r+2.
func (p *Plan) LowerBound() int { return len(p.Steps) + 2 }

// Verify checks the Definition 4.4 conditions and returns the
// contracted query after the final step.
func (p *Plan) Verify(eps *big.Rat) (*query.Query, error) {
	cur := p.Query
	prev := map[string]bool{}
	for _, a := range p.Query.Atoms {
		prev[a.Name] = true
	}
	for j, m := range p.Steps {
		// Mj ⊂ M_{j−1} strictly.
		if len(m) >= len(prev) {
			return nil, fmt.Errorf("theory: step %d: |M%d| = %d not smaller than |M%d| = %d",
				j+1, j+1, len(m), j, len(prev))
		}
		for name := range m {
			if !prev[name] {
				return nil, fmt.Errorf("theory: step %d: atom %s not in previous step", j+1, name)
			}
		}
		good, err := IsEpsilonGood(cur, m, eps)
		if err != nil {
			return nil, fmt.Errorf("theory: step %d: %w", j+1, err)
		}
		if !good {
			return nil, fmt.Errorf("theory: step %d: M is not ε-good for %s", j+1, cur.Name)
		}
		// Contract the complement of m.
		var contractIdx = map[int]bool{}
		for i, a := range cur.Atoms {
			if !m[a.Name] {
				contractIdx[i] = true
			}
		}
		next, err := cur.Contract(contractIdx)
		if err != nil {
			return nil, fmt.Errorf("theory: step %d: %w", j+1, err)
		}
		cur = next
		prev = m
	}
	inGamma, err := cover.GammaOne(cur, eps)
	if err != nil {
		return nil, err
	}
	if inGamma {
		return nil, fmt.Errorf("theory: final contraction %s still lies in Γ¹_ε", cur.Name)
	}
	return cur, nil
}

// ChainPlan constructs the maximal Lemma 4.6-style (ε,r)-plan for
// L_k: each step keeps every kε-th atom of the current contracted
// chain (starting with the first atom), and stops while the chain
// still has at least kε+1 atoms, so the final contraction is not in
// Γ¹_ε. The resulting certified lower bound (r+2) equals
// ⌈log_{kε} k⌉, matching Corollary 4.8. Returns an error when
// L_k ∈ Γ¹_ε (k ≤ kε), where no plan exists.
func ChainPlan(k int, eps *big.Rat) (*Plan, error) {
	if k < 1 {
		return nil, fmt.Errorf("theory: k = %d < 1", k)
	}
	ke, err := KEpsilon(eps)
	if err != nil {
		return nil, err
	}
	if ke < 2 {
		return nil, fmt.Errorf("theory: kε = %d < 2", ke)
	}
	if k <= ke {
		return nil, fmt.Errorf("theory: L%d ∈ Γ¹_ε (kε = %d); no plan exists", k, ke)
	}
	q := query.Chain(k)
	plan := &Plan{Query: q}
	// Current chain as a list of original atom names.
	cur := make([]string, k)
	for i := range cur {
		cur[i] = q.Atoms[i].Name
	}
	// Contract while the next chain still has ≥ kε+1 atoms.
	for (len(cur)+ke-1)/ke >= ke+1 {
		var keep []string
		for i := 0; i < len(cur); i += ke {
			keep = append(keep, cur[i])
		}
		m := make(map[string]bool, len(keep))
		for _, name := range keep {
			m[name] = true
		}
		plan.Steps = append(plan.Steps, m)
		cur = keep
	}
	return plan, nil
}

// CyclePlan constructs the Lemma 4.9-style (ε,r)-plan for C_k: each
// step keeps every kε-th atom around the current cycle (so the
// contracted query is C_{⌊ℓ/kε⌋}) while the next contracted cycle
// still has more than mε atoms, guaranteeing the final contraction is
// not in Γ¹_ε. Returns an error when C_k ∈ Γ¹_ε (k ≤ mε).
func CyclePlan(k int, eps *big.Rat) (*Plan, error) {
	if k < 3 {
		return nil, fmt.Errorf("theory: k = %d < 3", k)
	}
	ke, err := KEpsilon(eps)
	if err != nil {
		return nil, err
	}
	me, err := MEpsilon(eps)
	if err != nil {
		return nil, err
	}
	if ke < 2 {
		return nil, fmt.Errorf("theory: kε = %d < 2", ke)
	}
	if k <= me {
		return nil, fmt.Errorf("theory: C%d ∈ Γ¹_ε (mε = %d); no plan exists", k, me)
	}
	q := query.Cycle(k)
	plan := &Plan{Query: q}
	cur := make([]string, k)
	for i := range cur {
		cur[i] = q.Atoms[i].Name
	}
	// Contract while the next cycle is still too long for one round.
	for len(cur)/ke >= me+1 {
		var keep []string
		for i := 0; i+ke <= len(cur); i += ke {
			keep = append(keep, cur[i])
		}
		m := make(map[string]bool, len(keep))
		for _, name := range keep {
			m[name] = true
		}
		plan.Steps = append(plan.Steps, m)
		cur = keep
	}
	return plan, nil
}
