// Package theory provides the closed-form quantities of Beame,
// Koutris, Suciu (PODS 2013) — expected answer counts on random
// matching databases, space exponents, the round parameters kε and mε,
// round lower and upper bounds — together with the combinatorial
// machinery of the multi-round lower bound: ε-good sets and
// (ε,r)-plans (Definition 4.4), including the explicit constructions
// for chain queries (Lemma 4.6) and cycle queries (Lemma 4.9).
package theory

import (
	"fmt"
	"math"
	"math/big"

	"repro/internal/cover"
	"repro/internal/query"
)

// ExpectedAnswers returns E[|q(I)|] = n^{1+χ(q)} for a connected query
// over a uniformly random matching database (Lemma 3.4).
func ExpectedAnswers(q *query.Query, n int) (float64, error) {
	if !q.Connected() {
		return 0, fmt.Errorf("theory: ExpectedAnswers requires a connected query, got %s", q.Name)
	}
	return math.Pow(float64(n), float64(1+q.Characteristic())), nil
}

// SpaceExponent returns the one-round space exponent 1 − 1/τ*(q)
// (Theorem 1.1) as an exact rational.
func SpaceExponent(q *query.Query) (*big.Rat, error) {
	r, err := cover.Solve(q)
	if err != nil {
		return nil, err
	}
	return r.SpaceExponent(), nil
}

// KEpsilon returns kε = 2·⌊1/(1−ε)⌋, the longest chain computable in
// one round in MPC(ε) (Theorem 1.2, Example 4.2). ε must be in [0,1).
func KEpsilon(eps *big.Rat) (int, error) {
	if eps.Sign() < 0 || eps.Cmp(big.NewRat(1, 1)) >= 0 {
		return 0, fmt.Errorf("theory: ε = %s outside [0,1)", eps.RatString())
	}
	inv := new(big.Rat).Inv(new(big.Rat).Sub(big.NewRat(1, 1), eps)) // 1/(1-ε)
	fl := new(big.Int).Quo(inv.Num(), inv.Denom())                   // floor for positive rationals
	return 2 * int(fl.Int64()), nil
}

// MEpsilon returns mε = ⌊2/(1−ε)⌋, the longest cycle computable in one
// round in MPC(ε) (Lemma 4.9). ε must be in [0,1).
func MEpsilon(eps *big.Rat) (int, error) {
	if eps.Sign() < 0 || eps.Cmp(big.NewRat(1, 1)) >= 0 {
		return 0, fmt.Errorf("theory: ε = %s outside [0,1)", eps.RatString())
	}
	twoOver := new(big.Rat).Mul(big.NewRat(2, 1), new(big.Rat).Inv(new(big.Rat).Sub(big.NewRat(1, 1), eps)))
	fl := new(big.Int).Quo(twoOver.Num(), twoOver.Denom())
	return int(fl.Int64()), nil
}

// OneRoundFraction returns the Theorem 3.3 bound on the fraction of
// answers any one-round MPC(ε) algorithm can report:
// 1/p^{τ*(1−ε)−1}. Values ≥ 1 mean no restriction (ε at or above the
// space exponent).
func OneRoundFraction(q *query.Query, eps float64, p int) (float64, error) {
	r, err := cover.Solve(q)
	if err != nil {
		return 0, err
	}
	tau := r.TauFloat()
	exp := tau*(1-eps) - 1
	if exp <= 0 {
		return 1, nil
	}
	return math.Pow(float64(p), -exp), nil
}

// logCeil returns ⌈log_base(x)⌉ computed in exact integer arithmetic
// (smallest r with base^r ≥ x). base must be ≥ 2 and x ≥ 1.
func logCeil(base, x int) int {
	r := 0
	pow := 1
	for pow < x {
		pow *= base
		r++
	}
	return r
}

// RoundsLowerBound returns the tuple-based MPC(ε) round lower bound
// for a tree-like query: ⌈log_{kε}(diam(q))⌉ (Corollary 4.8).
func RoundsLowerBound(q *query.Query, eps *big.Rat) (int, error) {
	if !q.TreeLike() {
		return 0, fmt.Errorf("theory: RoundsLowerBound requires a tree-like query, got %s", q.Name)
	}
	ke, err := KEpsilon(eps)
	if err != nil {
		return 0, err
	}
	if ke < 2 {
		return 0, fmt.Errorf("theory: kε = %d < 2", ke)
	}
	diam, err := q.Diameter()
	if err != nil {
		return 0, err
	}
	return logCeil(ke, diam), nil
}

// RoundsUpperBound returns the Lemma 4.3 upper bound on rounds for any
// connected query: ⌈log_{kε}(rad)⌉ + 1 for tree-like queries and
// ⌈log_{kε}(rad+1)⌉ + 1 otherwise.
func RoundsUpperBound(q *query.Query, eps *big.Rat) (int, error) {
	if !q.Connected() {
		return 0, fmt.Errorf("theory: RoundsUpperBound requires a connected query, got %s", q.Name)
	}
	ke, err := KEpsilon(eps)
	if err != nil {
		return 0, err
	}
	if ke < 2 {
		return 0, fmt.Errorf("theory: kε = %d < 2", ke)
	}
	rad, err := q.Radius()
	if err != nil {
		return 0, err
	}
	if !q.TreeLike() {
		rad++
	}
	return logCeil(ke, rad) + 1, nil
}

// ChainRoundsLower returns the Lemma 4.6 lower bound for L_k:
// ⌈log_{kε} k⌉ rounds.
func ChainRoundsLower(k int, eps *big.Rat) (int, error) {
	if k < 1 {
		return 0, fmt.Errorf("theory: k = %d < 1", k)
	}
	ke, err := KEpsilon(eps)
	if err != nil {
		return 0, err
	}
	if ke < 2 {
		return 0, fmt.Errorf("theory: kε = %d < 2", ke)
	}
	return logCeil(ke, k), nil
}

// CycleRoundsLower returns the Lemma 4.9 lower bound for C_k:
// ⌈log_{kε}(k/(mε+1))⌉ + 1 rounds.
func CycleRoundsLower(k int, eps *big.Rat) (int, error) {
	if k < 3 {
		return 0, fmt.Errorf("theory: k = %d < 3", k)
	}
	ke, err := KEpsilon(eps)
	if err != nil {
		return 0, err
	}
	me, err := MEpsilon(eps)
	if err != nil {
		return 0, err
	}
	if ke < 2 {
		return 0, fmt.Errorf("theory: kε = %d < 2", ke)
	}
	// ⌈log(k/(mε+1))/log kε⌉ + 1, computed exactly: the smallest r with
	// kε^r · (mε+1) ≥ k.
	r := 0
	pow := me + 1
	for pow < k {
		pow *= ke
		r++
	}
	return r + 1, nil
}

// ConnectedComponentsRoundsLower returns the Theorem 4.10 Ω(log p)
// lower bound instantiated as ⌈log_{kε}⌊p^δ⌋⌉ − 2 with δ = 1/(2t) and
// ε = 1 − 1/t (clamped at zero).
func ConnectedComponentsRoundsLower(p int, t int) (int, error) {
	if t < 1 {
		return 0, fmt.Errorf("theory: t = %d < 1", t)
	}
	if p < 2 {
		return 0, fmt.Errorf("theory: p = %d < 2", p)
	}
	delta := 1.0 / (2 * float64(t))
	k := int(math.Pow(float64(p), delta))
	if k < 2 {
		return 0, nil
	}
	ke := 2 * t // kε for ε = 1−1/t
	r := logCeil(ke, k) - 2
	if r < 0 {
		r = 0
	}
	return r, nil
}
