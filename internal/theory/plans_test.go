package theory

import (
	"testing"

	"repro/internal/query"
)

func TestIsEpsilonGoodChain(t *testing.T) {
	zero := rat(0, 1)
	q := query.Chain(5)
	// Every 2nd atom: {S1,S3,S5} is 0-good.
	good, err := IsEpsilonGood(q, set("S1", "S3", "S5"), zero)
	if err != nil {
		t.Fatal(err)
	}
	if !good {
		t.Error("{S1,S3,S5} should be 0-good for L5")
	}
	// Adjacent atoms {S1,S2}: the subquery S1,S2 is in Γ¹_0 (shares x1)
	// and contains two M atoms → not good.
	good, err = IsEpsilonGood(q, set("S1", "S2"), zero)
	if err != nil {
		t.Fatal(err)
	}
	if good {
		t.Error("{S1,S2} should not be 0-good for L5")
	}
	// M covering everything is invalid.
	if _, err := IsEpsilonGood(q, set("S1", "S2", "S3", "S4", "S5"), zero); err == nil {
		t.Error("want error when M covers all atoms")
	}
	// Unknown atom name.
	if _, err := IsEpsilonGood(q, set("nope"), zero); err == nil {
		t.Error("want error for unknown atom")
	}
}

func TestIsEpsilonGoodComplementMustBeTreeLike(t *testing.T) {
	zero := rat(0, 1)
	q := query.Cycle(4)
	// M = {S1}: complement {S2,S3,S4} is a path (tree-like, χ=0) → the
	// χ condition holds, and no Γ¹ subquery has two M atoms (only one
	// M atom exists) → good.
	good, err := IsEpsilonGood(q, set("S1"), zero)
	if err != nil {
		t.Fatal(err)
	}
	if !good {
		t.Error("{S1} should be 0-good for C4")
	}
	// M = {S1,S3}: complement {S2,S4} χ = 0 (two disjoint edges), and
	// S1,S3 are opposite edges — any Γ¹_0 subquery (adjacent pair)
	// contains at most one of them → good.
	good, err = IsEpsilonGood(q, set("S1", "S3"), zero)
	if err != nil {
		t.Fatal(err)
	}
	if !good {
		t.Error("{S1,S3} should be 0-good for C4")
	}
	// M = {S1,S2}: adjacent pair is in Γ¹_0 with both atoms in M.
	good, err = IsEpsilonGood(q, set("S1", "S2"), zero)
	if err != nil {
		t.Fatal(err)
	}
	if good {
		t.Error("{S1,S2} should not be 0-good for C4")
	}
}

func TestChainPlanCertifiesCorollary48(t *testing.T) {
	// For every k and ε, the maximal chain plan's certified lower bound
	// must equal ⌈log_{kε} k⌉ (= ⌈log_{kε} diam(L_k)⌉, Corollary 4.8).
	for _, eps := range []struct {
		r  *int64
		v  [2]int64
		ke int
	}{
		{v: [2]int64{0, 1}, ke: 2},
		{v: [2]int64{1, 2}, ke: 4},
		{v: [2]int64{2, 3}, ke: 6},
	} {
		e := rat(eps.v[0], eps.v[1])
		for k := eps.ke + 1; k <= 40; k++ {
			plan, err := ChainPlan(k, e)
			if err != nil {
				t.Fatalf("ChainPlan(%d, %s): %v", k, e.RatString(), err)
			}
			final, err := plan.Verify(e)
			if err != nil {
				t.Fatalf("ChainPlan(%d, %s) invalid: %v", k, e.RatString(), err)
			}
			if final.NumAtoms() < eps.ke+1 {
				t.Errorf("k=%d ε=%s: final has %d atoms, want ≥ kε+1 = %d",
					k, e.RatString(), final.NumAtoms(), eps.ke+1)
			}
			want, err := ChainRoundsLower(k, e)
			if err != nil {
				t.Fatal(err)
			}
			if got := plan.LowerBound(); got != want {
				t.Errorf("k=%d ε=%s: plan certifies %d rounds, formula says %d",
					k, e.RatString(), got, want)
			}
		}
	}
}

func TestChainPlanGammaOneError(t *testing.T) {
	if _, err := ChainPlan(2, rat(0, 1)); err == nil {
		t.Error("L2 ∈ Γ¹_0: want error")
	}
	if _, err := ChainPlan(4, rat(1, 2)); err == nil {
		t.Error("L4 ∈ Γ¹_{1/2}: want error")
	}
	if _, err := ChainPlan(0, rat(0, 1)); err == nil {
		t.Error("want error for k=0")
	}
}

func TestCyclePlanVerifies(t *testing.T) {
	zero := rat(0, 1)
	for _, k := range []int{3, 5, 6, 7, 12, 13, 20} {
		plan, err := CyclePlan(k, zero)
		if err != nil {
			t.Fatalf("CyclePlan(%d): %v", k, err)
		}
		final, err := plan.Verify(zero)
		if err != nil {
			t.Fatalf("CyclePlan(%d) invalid: %v", k, err)
		}
		// Final cycle must be too long for one round: > mε = 2 atoms.
		if final.NumAtoms() < 3 {
			t.Errorf("C%d: final has %d atoms, want ≥ 3", k, final.NumAtoms())
		}
		// The plan's certified bound must never exceed the Lemma 4.3
		// upper bound.
		up, err := RoundsUpperBound(query.Cycle(k), zero)
		if err != nil {
			t.Fatal(err)
		}
		if plan.LowerBound() > up {
			t.Errorf("C%d: certified lower %d exceeds upper %d", k, plan.LowerBound(), up)
		}
	}
	if _, err := CyclePlan(2, zero); err == nil {
		t.Error("want error for k=2 (C2 ∈ Γ¹)")
	}
	if _, err := CyclePlan(4, rat(1, 2)); err == nil {
		t.Error("C4 ∈ Γ¹_{1/2} (mε=4): want error")
	}
}

func TestPlanVerifyRejectsBadPlans(t *testing.T) {
	zero := rat(0, 1)
	q := query.Chain(5)
	// Step not a subset of the previous step.
	bad := &Plan{Query: q, Steps: []map[string]bool{
		set("S1", "S3", "S5"),
		set("S2"), // S2 ∉ M1
	}}
	if _, err := bad.Verify(zero); err == nil {
		t.Error("want error: step not nested")
	}
	// Step not shrinking.
	bad2 := &Plan{Query: q, Steps: []map[string]bool{
		set("S1", "S3", "S5"),
		set("S1", "S3", "S5"),
	}}
	if _, err := bad2.Verify(zero); err == nil {
		t.Error("want error: step not strictly smaller")
	}
	// Not ε-good (adjacent atoms).
	bad3 := &Plan{Query: q, Steps: []map[string]bool{set("S1", "S2")}}
	if _, err := bad3.Verify(zero); err == nil {
		t.Error("want error: step not ε-good")
	}
	// Final still in Γ¹ (keep adjacent-ish small set → contract to L1).
	bad4 := &Plan{Query: q, Steps: []map[string]bool{set("S3")}}
	if _, err := bad4.Verify(zero); err == nil {
		t.Error("want error: final contraction in Γ¹")
	}
	// Valid one-step plan for reference.
	ok := &Plan{Query: q, Steps: []map[string]bool{set("S1", "S3", "S5")}}
	if _, err := ok.Verify(zero); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if ok.FailingRounds() != 2 || ok.LowerBound() != 3 {
		t.Errorf("FailingRounds=%d LowerBound=%d, want 2, 3", ok.FailingRounds(), ok.LowerBound())
	}
}

// TestEmptyPlanIsGammaCheck: a zero-step plan verifies iff q ∉ Γ¹_ε,
// certifying that one round is insufficient.
func TestEmptyPlanIsGammaCheck(t *testing.T) {
	zero := rat(0, 1)
	p := &Plan{Query: query.Chain(3)}
	if _, err := p.Verify(zero); err != nil {
		t.Errorf("L3 ∉ Γ¹_0; empty plan should verify: %v", err)
	}
	if p.LowerBound() != 2 {
		t.Errorf("empty plan lower bound = %d, want 2", p.LowerBound())
	}
	p2 := &Plan{Query: query.Chain(2)}
	if _, err := p2.Verify(zero); err == nil {
		t.Error("L2 ∈ Γ¹_0; empty plan must fail")
	}
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}
