// Package trace provides lightweight per-query distributed tracing for
// the BSP runtime. A Trace is created per query and threaded through
// plan.ExecOptions into the engine's dist.Cluster, which records one
// span per round, one child span per worker per round carrying the
// worker's actual received load (tuples and bits), plus spans for
// join/gather phases and recovery events. Completed traces are kept in
// a bounded in-memory Ring and exported as JSON by mpcserve's
// GET /trace/{queryID} endpoint.
//
// Span identifiers are sequential per trace, so two executions of the
// same plan over different transports produce structurally identical
// span trees (timestamps aside) — the property the trace differential
// test asserts.
package trace

import (
	"sync"
	"time"
)

// Span is a single timed operation within a Trace. Worker is the
// destination worker index for per-worker spans and -1 for
// coordinator-side spans. LoadTuples and LoadBits are the actual
// received load recorded for per-worker round spans; they are the
// observable the planner's predicted L bounds.
type Span struct {
	ID          uint64 `json:"id"`
	Parent      uint64 `json:"parent"`
	Name        string `json:"name"`
	Round       int    `json:"round"`
	Worker      int    `json:"worker"`
	StartUnixNs int64  `json:"startUnixNs"`
	DurationNs  int64  `json:"durationNs"`
	LoadTuples  int64  `json:"loadTuples,omitempty"`
	LoadBits    int64  `json:"loadBits,omitempty"`
	Note        string `json:"note,omitempty"`
}

// Trace accumulates the spans of one query execution. All exported
// fields are written by the owner (serve layer or cluster) before the
// trace is published to a Ring; Snapshot returns a consistent copy for
// rendering.
type Trace struct {
	QueryID string `json:"queryID"`
	TraceID uint64 `json:"traceID"`
	Tenant  string `json:"tenant,omitempty"`
	Query   string `json:"query,omitempty"`
	Engine  string `json:"engine,omitempty"`
	P       int    `json:"p"`

	// PredictedLoadTuples is the planner's predicted per-worker
	// per-round received load L for this plan (plan.CostEstimate
	// .LoadTuples); worker spans record the actual value it bounds.
	PredictedLoadTuples float64 `json:"predictedLoadTuples"`
	// BudgetLoadTuples is the hard cap c·N/p^(1-eps) the executor
	// enforces (0 when unknown).
	BudgetLoadTuples int64 `json:"budgetLoadTuples,omitempty"`

	Replacements int     `json:"replacements"`
	StartUnixNs  int64   `json:"startUnixNs"`
	DurationNs   int64   `json:"durationNs"`
	Spans        []*Span `json:"spans"`

	mu     sync.Mutex
	nextID uint64
	root   uint64
	done   bool
}

// New creates a Trace with an open root span named "query".
func New(queryID string, traceID uint64) *Trace {
	t := &Trace{
		QueryID:     queryID,
		TraceID:     traceID,
		StartUnixNs: time.Now().UnixNano(),
	}
	t.root = t.StartSpan(0, "query", 0, -1)
	return t
}

// Root returns the id of the root "query" span.
func (t *Trace) Root() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

// StartSpan opens a span under parent (0 means the root) and returns
// its id. Safe for concurrent use.
func (t *Trace) StartSpan(parent uint64, name string, round, worker int) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	if parent == 0 && t.nextID != 1 {
		parent = t.root
	}
	s := &Span{
		ID:          t.nextID,
		Parent:      parent,
		Name:        name,
		Round:       round,
		Worker:      worker,
		StartUnixNs: time.Now().UnixNano(),
	}
	t.Spans = append(t.Spans, s)
	return s.ID
}

// EndSpan closes the span with the given id. Unknown ids are ignored.
func (t *Trace) EndSpan(id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.find(id); s != nil && s.DurationNs == 0 {
		s.DurationNs = time.Now().UnixNano() - s.StartUnixNs
	}
}

// SetSpanLoad records the actual received load on the span with the
// given id.
func (t *Trace) SetSpanLoad(id uint64, tuples, bits int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.find(id); s != nil {
		s.LoadTuples = tuples
		s.LoadBits = bits
	}
}

// Event records an instantaneous span (duration 0 is kept) under
// parent, used for recovery/replacement events.
func (t *Trace) Event(parent uint64, name string, worker int, note string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	t.Spans = append(t.Spans, &Span{
		ID:          t.nextID,
		Parent:      parent,
		Name:        name,
		Worker:      worker,
		Note:        note,
		StartUnixNs: time.Now().UnixNano(),
	})
}

// Finish closes the root span and marks the trace complete. It is
// idempotent.
func (t *Trace) Finish() {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	root := t.root
	t.mu.Unlock()
	t.EndSpan(root)
	t.mu.Lock()
	t.DurationNs = time.Now().UnixNano() - t.StartUnixNs
	t.mu.Unlock()
}

// find returns the span with the given id, or nil. Caller holds mu.
// Span ids are assigned sequentially so the slice is ordered by id.
func (t *Trace) find(id uint64) *Span {
	if id == 0 || id > uint64(len(t.Spans)) {
		return nil
	}
	return t.Spans[id-1]
}

// Snapshot returns a deep copy safe to marshal while the trace may
// still be mutated.
func (t *Trace) Snapshot() *Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	cp := &Trace{
		QueryID:             t.QueryID,
		TraceID:             t.TraceID,
		Tenant:              t.Tenant,
		Query:               t.Query,
		Engine:              t.Engine,
		P:                   t.P,
		PredictedLoadTuples: t.PredictedLoadTuples,
		BudgetLoadTuples:    t.BudgetLoadTuples,
		Replacements:        t.Replacements,
		StartUnixNs:         t.StartUnixNs,
		DurationNs:          t.DurationNs,
		Spans:               make([]*Span, len(t.Spans)),
	}
	for i, s := range t.Spans {
		c := *s
		cp.Spans[i] = &c
	}
	return cp
}

// WorkerLoad returns, per worker index, the maximum actual per-round
// received load (in tuples) recorded across all worker spans, sized to
// p entries. It is the "actual" column of the predicted-vs-actual
// heatmap.
func (t *Trace) WorkerLoad() []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.P <= 0 {
		return nil
	}
	load := make([]int64, t.P)
	for _, s := range t.Spans {
		if s.Worker >= 0 && s.Worker < t.P && s.LoadTuples > load[s.Worker] {
			load[s.Worker] = s.LoadTuples
		}
	}
	return load
}

// Rounds returns the number of distinct round spans recorded.
func (t *Trace) Rounds() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, s := range t.Spans {
		if s.Name == "round" {
			n++
		}
	}
	return n
}
