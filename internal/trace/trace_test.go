package trace

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestTraceSpanTree(t *testing.T) {
	tr := New("q-1", 42)
	root := tr.Root()
	if root != 1 {
		t.Fatalf("root id = %d, want 1", root)
	}
	r1 := tr.StartSpan(root, "round", 1, -1)
	w0 := tr.StartSpan(r1, "worker", 1, 0)
	tr.SetSpanLoad(w0, 10, 640)
	tr.EndSpan(w0)
	tr.EndSpan(r1)
	tr.Event(root, "replace-worker", 2, "timeout")
	tr.Finish()

	if got := len(tr.Spans); got != 4 {
		t.Fatalf("spans = %d, want 4", got)
	}
	if tr.Spans[1].Parent != root || tr.Spans[2].Parent != r1 {
		t.Fatalf("bad parents: %+v", tr.Spans)
	}
	if tr.Spans[2].LoadTuples != 10 || tr.Spans[2].LoadBits != 640 {
		t.Fatalf("load not recorded: %+v", tr.Spans[2])
	}
	if tr.Spans[3].Name != "replace-worker" || tr.Spans[3].Note != "timeout" {
		t.Fatalf("event not recorded: %+v", tr.Spans[3])
	}
	if tr.DurationNs <= 0 {
		t.Fatalf("Finish did not stamp duration")
	}
	// Finish is idempotent.
	d := tr.DurationNs
	tr.Finish()
	if tr.DurationNs != d {
		t.Fatalf("Finish not idempotent")
	}
}

func TestTraceWorkerLoadAndRounds(t *testing.T) {
	tr := New("q-2", 1)
	tr.P = 3
	for round := 1; round <= 2; round++ {
		r := tr.StartSpan(0, "round", round, -1)
		for w := 0; w < 3; w++ {
			id := tr.StartSpan(r, "worker", round, w)
			tr.SetSpanLoad(id, int64(10*round+w), 0)
			tr.EndSpan(id)
		}
		tr.EndSpan(r)
	}
	tr.Finish()
	if got := tr.Rounds(); got != 2 {
		t.Fatalf("Rounds = %d, want 2", got)
	}
	load := tr.WorkerLoad()
	want := []int64{20, 21, 22} // max across rounds
	for i := range want {
		if load[i] != want[i] {
			t.Fatalf("WorkerLoad = %v, want %v", load, want)
		}
	}
}

func TestTraceSnapshotIsDeepCopy(t *testing.T) {
	tr := New("q-3", 7)
	id := tr.StartSpan(0, "round", 1, -1)
	snap := tr.Snapshot()
	tr.SetSpanLoad(id, 99, 99)
	if snap.Spans[1].LoadTuples != 0 {
		t.Fatalf("snapshot aliases live span")
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := New("q-4", 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := tr.StartSpan(0, "worker", i, w)
				tr.SetSpanLoad(id, int64(i), 0)
				tr.EndSpan(id)
			}
		}(g)
	}
	wg.Wait()
	tr.Finish()
	if got := len(tr.Spans); got != 1+8*50 {
		t.Fatalf("spans = %d, want %d", got, 1+8*50)
	}
	seen := make(map[uint64]bool)
	for _, s := range tr.Spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestRingEvictionAndRecent(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(New(fmt.Sprintf("q-%d", i), uint64(i)))
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if _, ok := r.Get("q-1"); ok {
		t.Fatalf("q-1 should be evicted")
	}
	if _, ok := r.Get("q-5"); !ok {
		t.Fatalf("q-5 should be resident")
	}
	recent := r.Recent(2)
	if len(recent) != 2 || recent[0].QueryID != "q-5" || recent[1].QueryID != "q-4" {
		t.Fatalf("Recent order wrong: %v", recent)
	}
	// Re-adding an existing id replaces without growing.
	r.Add(New("q-5", 99))
	if r.Len() != 3 {
		t.Fatalf("replace grew ring: %d", r.Len())
	}
}
