package trace

import "sync"

// Ring is a bounded, concurrency-safe store of the most recent traces,
// keyed by query id. When capacity is exceeded the oldest trace is
// evicted.
type Ring struct {
	mu    sync.Mutex
	cap   int
	order []string
	byID  map[string]*Trace
}

// NewRing creates a Ring holding at most capacity traces (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{cap: capacity, byID: make(map[string]*Trace)}
}

// Add inserts (or replaces) a trace. The trace is stored by pointer;
// callers should publish finished traces or rely on Snapshot when
// rendering.
func (r *Ring) Add(t *Trace) {
	if t == nil || t.QueryID == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[t.QueryID]; !ok {
		r.order = append(r.order, t.QueryID)
		for len(r.order) > r.cap {
			delete(r.byID, r.order[0])
			r.order = r.order[1:]
		}
	}
	r.byID[t.QueryID] = t
}

// Get returns the trace for a query id, if still resident.
func (r *Ring) Get(queryID string) (*Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[queryID]
	return t, ok
}

// Recent returns up to n of the most recent traces, newest first.
func (r *Ring) Recent(n int) []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > len(r.order) {
		n = len(r.order)
	}
	out := make([]*Trace, 0, n)
	for i := len(r.order) - 1; i >= 0 && len(out) < n; i-- {
		out = append(out, r.byID[r.order[i]])
	}
	return out
}

// Len returns the number of resident traces.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}
