package dist

import (
	"context"

	"repro/internal/mpc"
	"repro/internal/trace"
	"repro/internal/wire"
)

// traceTransport is optionally implemented by transports that can
// propagate the per-round span context to workers as Trace frames.
// Transports without it still execute traced queries — the coordinator
// records every span from its own accounting — they just don't announce
// the context to the worker side.
type traceTransport interface {
	// SendTrace announces the span context of the current round to every
	// worker. Trace frames are unacknowledged; the round barrier fences
	// them like Data.
	SendTrace(ctx context.Context, h wire.TraceHeader) error
}

// EnableTracing attaches a per-query trace to the cluster: every round
// records one "round" span plus one "worker" child span per worker
// carrying the actual received load (tuples and bits) that the
// planner's predicted L bounds, joins and gathers record phase spans,
// and recovery replacements record events. The span context is
// propagated coordinator→worker once per round on transports that
// implement traceTransport. Call it before the first round; a nil
// trace disables tracing.
//
// Span ids are assigned in coordinator call order, so identical
// executions over different transports produce identical span trees —
// the same by-construction argument as the cluster's statistics.
func (c *Cluster) EnableTracing(t *trace.Trace) {
	c.trace = t
	if t != nil && t.P == 0 {
		t.P = c.cfg.Workers
	}
}

// traceBeginRound opens the round span; BeginRound calls it.
func (c *Cluster) traceBeginRound() {
	if c.trace == nil {
		return
	}
	c.roundSpan = c.trace.StartSpan(0, "round", c.round, -1)
}

// traceAnnounce ships the current round's span context to the workers,
// once per round: directly on traceTransport transports, as a deferred
// script op when pipelining (so the header precedes the round's data
// frames in each worker's stream).
func (c *Cluster) traceAnnounce(ctx context.Context) error {
	if c.trace == nil || c.traceSent == c.round {
		return nil
	}
	c.traceSent = c.round
	h := wire.TraceHeader{
		TraceID: c.trace.TraceID,
		Span:    c.roundSpan,
		Round:   uint32(c.round),
		QueryID: c.trace.QueryID,
	}
	if c.pipe {
		c.enqueue(recOp{kind: opTrace, hdr: h})
		return nil
	}
	tt, ok := c.tr.(traceTransport)
	if !ok {
		return nil
	}
	// Not journaled: a replacement worker gets fresh data frames from
	// replay, and the header is observability, not state.
	return c.attempt(ctx, false, func(ctx context.Context) error {
		return tt.SendTrace(ctx, h)
	})
}

// traceCloseRound emits one "worker" span per worker carrying the
// round's actual received load from the coordinator-side accounting,
// then closes the round span. Zero-load workers get a span too: the
// trace answers "what did every worker receive this round", and a zero
// is an answer.
func (c *Cluster) traceCloseRound(rs *mpc.RoundStats) {
	if c.trace == nil || c.roundSpan == 0 {
		return
	}
	for w := 0; w < c.cfg.Workers; w++ {
		id := c.trace.StartSpan(c.roundSpan, "worker", rs.Round, w)
		c.trace.SetSpanLoad(id, rs.PerWorkerTuples[w], rs.PerWorkerBits[w])
		c.trace.EndSpan(id)
	}
	c.trace.EndSpan(c.roundSpan)
	c.roundSpan = 0
}

// tracePhase opens a coordinator-side phase span ("join", "gather")
// and returns its id, 0 when tracing is off.
func (c *Cluster) tracePhase(name string) uint64 {
	if c.trace == nil {
		return 0
	}
	return c.trace.StartSpan(0, name, c.round, -1)
}

// tracePhaseEnd closes a phase span opened by tracePhase.
func (c *Cluster) tracePhaseEnd(id uint64) {
	if c.trace == nil || id == 0 {
		return
	}
	c.trace.EndSpan(id)
}

// traceEvent records a recovery event on the trace.
func (c *Cluster) traceEvent(name string, worker int, note string) {
	if c.trace == nil {
		return
	}
	c.trace.Event(0, name, worker, note)
}
