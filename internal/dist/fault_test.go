package dist_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/exchange"
	"repro/internal/relation"
)

// scatterTo builds a one-delivery slice carrying a non-empty buffer
// for worker w.
func scatterTo(t *testing.T, w int, store string) []exchange.Delivery {
	t.Helper()
	buf := exchange.NewBuffer(2)
	buf.Append(relation.Tuple{1, 2})
	buf.Seal()
	return []exchange.Delivery{{To: w, Rel: store, Buf: buf}}
}

// TestFaultTransportKillMasksUntilReplace: a kill fault marks the
// worker dead — every subsequent phase touching it fails with the
// same WorkerError — until ReplaceWorker clears it.
func TestFaultTransportKillMasksUntilReplace(t *testing.T) {
	ctx := context.Background()
	ft := dist.NewFaultTransport(dist.NewLoopback(3),
		dist.Fault{Worker: 1, Op: dist.OpDeliver, N: 0, Kind: dist.KillBefore})

	err := ft.Deliver(ctx, 1, scatterTo(t, 1, "R"))
	if err == nil {
		t.Fatal("kill fault delivered cleanly")
	}
	if got := dist.FailedWorkers(err); len(got) != 1 || got[0] != 1 {
		t.Fatalf("FailedWorkers = %v, want [1]", got)
	}
	if ft.Kills() != 1 {
		t.Fatalf("Kills() = %d, want 1", ft.Kills())
	}

	// Still dead: barrier and a fresh deliver to the same worker fail;
	// a deliver that does not touch it passes.
	if err := ft.Barrier(ctx, 1); err == nil {
		t.Fatal("barrier past a dead worker succeeded")
	}
	if err := ft.Deliver(ctx, 1, scatterTo(t, 1, "R")); err == nil {
		t.Fatal("deliver to a dead worker succeeded")
	}
	if err := ft.Deliver(ctx, 1, scatterTo(t, 0, "R")); err != nil {
		t.Fatalf("deliver avoiding the dead worker failed: %v", err)
	}

	// Replacement revives the slot; the one-shot fault does not refire.
	if err := ft.ReplaceWorker(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := ft.Deliver(ctx, 1, scatterTo(t, 1, "R")); err != nil {
		t.Fatalf("deliver after replacement failed: %v", err)
	}
	if err := ft.Barrier(ctx, 2); err != nil {
		t.Fatalf("barrier after replacement failed: %v", err)
	}
	if ft.Kills() != 1 {
		t.Fatalf("Kills() = %d after replacement, want still 1", ft.Kills())
	}
}

// TestFaultTransportDeterministic: the same schedule over the same
// call sequence fires at exactly the same call both times — the whole
// point of counter-keyed faults.
func TestFaultTransportDeterministic(t *testing.T) {
	ctx := context.Background()
	run := func() (failedAt int) {
		ft := dist.NewFaultTransport(dist.NewLoopback(2),
			dist.Fault{Worker: 0, Op: dist.OpDeliver, N: 2, Kind: dist.KillBefore})
		for i := 0; i < 5; i++ {
			if err := ft.Deliver(ctx, 1, scatterTo(t, 0, "R")); err != nil {
				return i
			}
		}
		return -1
	}
	a, b := run(), run()
	if a != 2 || b != 2 {
		t.Fatalf("fault fired at deliver %d then %d, want 2 both times", a, b)
	}
}

// TestFaultTransportDelayFlushesAtBarrier: a delayed delivery is
// withheld from Deliver but handed to the inner transport before the
// barrier completes, so post-barrier state is indistinguishable.
func TestFaultTransportDelayFlushesAtBarrier(t *testing.T) {
	ctx := context.Background()
	lb := dist.NewLoopback(2)
	ft := dist.NewFaultTransport(lb,
		dist.Fault{Worker: 0, Op: dist.OpDeliver, N: 0, Kind: dist.DelayToBarrier})
	if err := ft.Deliver(ctx, 1, scatterTo(t, 0, "R")); err != nil {
		t.Fatal(err)
	}
	if err := ft.Barrier(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// The inner loopback must now hold the run: gather it back.
	bufs, err := lb.Gather(ctx, "R")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range bufs {
		if b != nil {
			total += b.Len()
		}
	}
	if total != 1 {
		t.Fatalf("after delayed flush the store holds %d tuples, want 1", total)
	}
	if ft.Kills() != 0 {
		t.Fatalf("Kills() = %d for a delay fault, want 0", ft.Kills())
	}
}

// TestFaultTransportAnnounceSurfacesDead: control-plane ops name every
// dead worker so the healer can queue them all.
func TestFaultTransportAnnounceSurfacesDead(t *testing.T) {
	ctx := context.Background()
	ft := dist.NewFaultTransport(dist.NewLoopback(3),
		dist.Fault{Worker: 0, Op: dist.OpDeliver, N: 0, Kind: dist.KillBefore},
		dist.Fault{Worker: 2, Op: dist.OpDeliver, N: 0, Kind: dist.KillBefore})
	if err := ft.Deliver(ctx, 1, scatterTo(t, 1, "R")); err == nil {
		t.Fatal("double kill delivered cleanly")
	}
	err := ft.Announce(ctx, 1)
	if err == nil {
		t.Fatal("announce to two dead workers succeeded")
	}
	if got := dist.FailedWorkers(err); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("FailedWorkers = %v, want [0 2]", got)
	}
}

// TestWorkerErrorFormat pins the error string shape other layers grep
// for, and the unwrap chain FailedWorkers depends on.
func TestWorkerErrorFormat(t *testing.T) {
	we := &dist.WorkerError{Worker: 3, Err: context.DeadlineExceeded}
	if !strings.HasPrefix(we.Error(), "dist: worker 3: ") {
		t.Fatalf("Error() = %q", we.Error())
	}
	if got := dist.FailedWorkers(we); len(got) != 1 || got[0] != 3 {
		t.Fatalf("FailedWorkers = %v, want [3]", got)
	}
	if dist.FailedWorkers(context.Canceled) != nil {
		t.Fatal("FailedWorkers on a plain error should be nil")
	}
}
