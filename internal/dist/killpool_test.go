package dist_test

import (
	"context"
	"net"
	"sync"
	"testing"

	"repro/internal/dist"
)

// killablePool is a set of worker listeners whose members can be
// killed individually and synchronously: kill closes the listener AND
// every established session connection, so the coordinator observes
// the death deterministically on its next frame — no timers, no grace
// periods.
type killablePool struct {
	addrs   []string
	members []*killableMember
}

type killableMember struct {
	ln     net.Listener
	cancel context.CancelFunc
	mu     sync.Mutex
	conns  []net.Conn
	dead   bool
}

// startKillablePool starts n independently killable worker listeners.
func startKillablePool(t *testing.T, n int) *killablePool {
	t.Helper()
	pool := &killablePool{}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		m := &killableMember{ln: ln, cancel: cancel}
		go m.accept(ctx)
		pool.addrs = append(pool.addrs, ln.Addr().String())
		pool.members = append(pool.members, m)
	}
	t.Cleanup(func() {
		for i := range pool.members {
			pool.kill(i)
		}
	})
	return pool
}

func (m *killableMember) accept(ctx context.Context) {
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return
		}
		m.mu.Lock()
		if m.dead {
			m.mu.Unlock()
			c.Close()
			continue
		}
		m.conns = append(m.conns, c)
		m.mu.Unlock()
		go dist.ServeConn(ctx, c)
	}
}

// kill takes member i down hard: no new sessions, and every live
// session connection is closed before kill returns.
func (p *killablePool) kill(i int) {
	m := p.members[i]
	m.mu.Lock()
	if m.dead {
		m.mu.Unlock()
		return
	}
	m.dead = true
	conns := m.conns
	m.conns = nil
	m.mu.Unlock()
	m.cancel()
	m.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}
