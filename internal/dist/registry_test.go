package dist_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/dist"
)

// TestRegistryReconcileSwapsDeadMember: killing a member and
// reconciling promotes the spare into its slot, recycles the dead
// address to the spare tail, and ticks the generation.
func TestRegistryReconcileSwapsDeadMember(t *testing.T) {
	pool := startKillablePool(t, 4) // 3 members + 1 spare
	members, spare := pool.addrs[:3], pool.addrs[3]
	reg := dist.NewRegistry(members, []string{spare})

	ctx := context.Background()
	if n := reg.Reconcile(ctx); n != 0 {
		t.Fatalf("healthy pool reconciled %d swaps", n)
	}
	if reg.Generation() != 0 {
		t.Fatalf("generation = %d before any swap", reg.Generation())
	}

	dead := pool.addrs[1]
	pool.kill(1)
	if n := reg.Reconcile(ctx); n != 1 {
		t.Fatalf("Reconcile = %d swaps, want 1", n)
	}
	got := reg.Members()
	if got[1] != spare {
		t.Fatalf("member 1 = %s, want promoted spare %s", got[1], spare)
	}
	if got[0] != members[0] || got[2] != members[2] {
		t.Fatalf("healthy members moved: %v", got)
	}
	if sp := reg.Spares(); len(sp) != 1 || sp[0] != dead {
		t.Fatalf("spares = %v, want recycled dead address [%s]", sp, dead)
	}
	if reg.Generation() != 1 {
		t.Fatalf("generation = %d after one swap, want 1", reg.Generation())
	}

	// The recycled address is dead, so a second failure has no live
	// spare: the slot keeps its address for a later retry and the
	// generation does not move.
	pool.kill(0)
	if n := reg.Reconcile(ctx); n != 0 {
		t.Fatalf("Reconcile with only a dead spare = %d swaps, want 0", n)
	}
	if got := reg.Members(); got[0] != members[0] {
		t.Fatalf("member 0 = %s, want unchanged %s", got[0], members[0])
	}
	if reg.Generation() != 1 {
		t.Fatalf("generation = %d, want still 1", reg.Generation())
	}
}

// TestRegistryDeadSparesBounded: reconciling a dead member against a
// spare list that is entirely dead terminates (the spare scan is
// bounded) and leaves membership unchanged.
func TestRegistryDeadSparesBounded(t *testing.T) {
	pool := startKillablePool(t, 3)
	reg := dist.NewRegistry(pool.addrs[:1], pool.addrs[1:])
	pool.kill(0)
	pool.kill(1)
	pool.kill(2)

	done := make(chan int, 1)
	go func() { done <- reg.Reconcile(context.Background()) }()
	select {
	case n := <-done:
		if n != 0 {
			t.Fatalf("Reconcile = %d swaps with everything dead", n)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Reconcile did not terminate with an all-dead spare list")
	}
	if got := reg.Members(); got[0] != pool.addrs[0] {
		t.Fatalf("member 0 = %s, want unchanged", got[0])
	}
}

// TestRegistryRunLoop: the background loop reconciles on its own —
// kill a member, wait for the generation to tick, and the promoted
// membership is immediately dialable.
func TestRegistryRunLoop(t *testing.T) {
	pool := startKillablePool(t, 3) // 2 members + 1 spare
	reg := dist.NewRegistry(pool.addrs[:2], pool.addrs[2:])

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go reg.Run(ctx, 10*time.Millisecond)

	pool.kill(0)
	deadline := time.Now().Add(30 * time.Second)
	for reg.Generation() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("registry loop never repaired the killed member")
		}
		time.Sleep(time.Millisecond)
	}
	tr := dialPool(t, reg.Members())
	if err := tr.Ping(context.Background(), 0, 7); err != nil {
		t.Fatalf("promoted membership not dialable: %v", err)
	}
}
