package dist

import (
	"context"
	"fmt"

	"repro/internal/exchange"
	"repro/internal/localjoin"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/trace"
)

// Cluster drives MPC(ε) bulk-synchronous rounds against a worker pool
// through a Transport. It is the distributed counterpart of
// mpc.Cluster: the coordinator plays the paper's input servers —
// partitioning base relations through the columnar exchange layer —
// and performs the per-round receive accounting against the
// c·N/p^{1−ε} budget. All accounting happens coordinator-side from
// the sizes of the partitioned buffers, before they reach any
// transport, so loopback and TCP executions record identical
// statistics for identical inputs.
//
// A Cluster is driven by a single caller (rounds are inherently
// sequential); the concurrency lives inside Scatter's parallel
// partitioning and the transport's per-worker fan-out.
type Cluster struct {
	cfg   mpc.Config
	tr    Transport
	stats mpc.Stats
	round int
	open  bool
	// rec is the self-healing state; nil until EnableRecovery.
	rec *recovery
	// pipe defers transport work to Gather fences; see
	// EnablePipelining in pipeline.go.
	pipe bool
	// pending is the deferred round script awaiting the next fence.
	pending []recOp
	// trace is the per-query span recorder; nil until EnableTracing.
	trace *trace.Trace
	// roundSpan is the open round's span id (0 between rounds).
	roundSpan uint64
	// traceSent is the last round whose span context was announced to
	// the workers.
	traceSent int
}

// NewCluster validates cfg against the transport's pool and returns
// an idle cluster. cfg.Workers must equal tr.Workers().
func NewCluster(cfg mpc.Config, tr Transport) (*Cluster, error) {
	if tr == nil {
		return nil, fmt.Errorf("dist: nil transport")
	}
	if cfg.Workers != tr.Workers() {
		return nil, fmt.Errorf("dist: config wants %d workers, transport pool has %d", cfg.Workers, tr.Workers())
	}
	if _, err := mpc.NewCluster(cfg); err != nil { // reuse the simulation's validation
		return nil, err
	}
	return &Cluster{cfg: cfg, tr: tr}, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() mpc.Config { return c.cfg }

// Workers returns the pool size p.
func (c *Cluster) Workers() int { return c.cfg.Workers }

// Stats returns the accumulated per-round communication record.
func (c *Cluster) Stats() *mpc.Stats { return &c.stats }

// BeginRound opens a communication round into which subsequent
// Scatter calls accumulate (all input servers transmit in one round).
func (c *Cluster) BeginRound() {
	c.round++
	c.open = true
	c.stats.Rounds = append(c.stats.Rounds, mpc.RoundStats{
		Round:           c.round,
		PerWorkerBits:   make([]int64, c.cfg.Workers),
		PerWorkerTuples: make([]int64, c.cfg.Workers),
	})
	c.traceBeginRound()
}

// Scatter partitions rel through part into per-destination sealed
// runs — parallel sender shards, exactly the in-process shuffle path
// — accounts their receipt against the open round (opening a fresh
// round if none is), and ships them to the workers under store name
// as.
func (c *Cluster) Scatter(ctx context.Context, rel *relation.Relation, as string, part exchange.Partitioner) error {
	if as == "" {
		as = rel.Name
	}
	ds, err := exchange.Partition(as, rel.Tuples, rel.Arity(), c.cfg.Workers, part)
	if err != nil {
		return fmt.Errorf("dist: scatter: %w", err)
	}
	lone := !c.open
	if lone {
		c.BeginRound()
		c.open = false
	}
	rs := &c.stats.Rounds[len(c.stats.Rounds)-1]
	bitsPer := relation.BitsPerValue(c.cfg.DomainN)
	for _, d := range ds {
		n := int64(d.Buf.Len())
		if n == 0 {
			continue
		}
		rs.Account(d.To, n, d.Buf.Bits(bitsPer))
	}
	if lone {
		defer c.traceCloseRound(rs)
	}
	if err := c.traceAnnounce(ctx); err != nil {
		return err
	}
	if c.rec != nil {
		c.rec.record(recOp{kind: opDeliver, round: c.round, ds: ds})
	}
	if c.pipe {
		// Pipelined: the delivery (and, for a lone scatter, its barrier)
		// rides the next fence. The cap check needs no worker traffic —
		// accounting happened above — so it still fires here.
		c.enqueue(recOp{kind: opDeliver, round: c.round, ds: ds})
		if lone {
			if c.rec != nil {
				c.rec.record(recOp{kind: opBarrier, round: c.round})
			}
			c.enqueue(recOp{kind: opBarrier, round: c.round})
			return rs.CheckCap(c.cfg.ReceiveCap())
		}
		return nil
	}
	// Deliveries are journaled, so they are not retried after a heal:
	// replay has re-sent the failed worker's runs and the healthy
	// workers already ingested theirs.
	if err := c.attempt(ctx, false, func(ctx context.Context) error {
		return c.tr.Deliver(ctx, c.round, ds)
	}); err != nil {
		return err
	}
	if lone {
		// Lone scatter: the round is self-contained, so synchronize and
		// enforce the budget immediately.
		if err := c.barrier(ctx); err != nil {
			return err
		}
		return rs.CheckCap(c.cfg.ReceiveCap())
	}
	return nil
}

// ScatterDelta partitions delta tuples through part — the same
// partitioner as the base scatter, so each delta tuple reaches
// exactly the workers that replicate it — and ships them as delta
// deliveries maintaining store: retractions (del) tombstone, and
// extensions append, additionally registering under view when it is
// non-empty. Receipt is accounted against the open round exactly like
// Scatter; the incremental-maintenance cost bound (replication factor
// per tuple, not O(N)) is thereby measured, not assumed.
func (c *Cluster) ScatterDelta(ctx context.Context, tuples []relation.Tuple, arity int, store, view string, del bool, part exchange.Partitioner) error {
	ds, err := exchange.Partition(store, tuples, arity, c.cfg.Workers, part)
	if err != nil {
		return fmt.Errorf("dist: scatter delta: %w", err)
	}
	lone := !c.open
	if lone {
		c.BeginRound()
		c.open = false
	}
	rs := &c.stats.Rounds[len(c.stats.Rounds)-1]
	bitsPer := relation.BitsPerValue(c.cfg.DomainN)
	dds := make([]DeltaDelivery, 0, len(ds))
	for _, d := range ds {
		n := int64(d.Buf.Len())
		if n == 0 {
			continue
		}
		rs.Account(d.To, n, d.Buf.Bits(bitsPer))
		dds = append(dds, DeltaDelivery{To: d.To, Store: store, View: view, Del: del, Buf: d.Buf})
	}
	if lone {
		defer c.traceCloseRound(rs)
	}
	if err := c.traceAnnounce(ctx); err != nil {
		return err
	}
	if c.rec != nil {
		c.rec.record(recOp{kind: opDelta, round: c.round, dds: dds})
	}
	if c.pipe {
		c.enqueue(recOp{kind: opDelta, round: c.round, dds: dds})
		if lone {
			if c.rec != nil {
				c.rec.record(recOp{kind: opBarrier, round: c.round})
			}
			c.enqueue(recOp{kind: opBarrier, round: c.round})
			return rs.CheckCap(c.cfg.ReceiveCap())
		}
		return nil
	}
	if err := c.attempt(ctx, false, func(ctx context.Context) error {
		return c.tr.ApplyDelta(ctx, c.round, dds)
	}); err != nil {
		return err
	}
	if lone {
		if err := c.barrier(ctx); err != nil {
			return err
		}
		return rs.CheckCap(c.cfg.ReceiveCap())
	}
	return nil
}

// barrier synchronizes the pool on the current round and, when
// recovery is enabled, broadcasts the round's checkpoint manifest.
func (c *Cluster) barrier(ctx context.Context) error {
	if c.rec != nil {
		c.rec.record(recOp{kind: opBarrier, round: c.round})
	}
	if err := c.attempt(ctx, true, func(ctx context.Context) error {
		return c.tr.Barrier(ctx, c.round)
	}); err != nil {
		return err
	}
	if c.rec != nil {
		return c.checkpoint(ctx, c.round)
	}
	return nil
}

// EndRound closes the round opened by BeginRound: it synchronizes the
// pool (every worker has ingested the round's runs) and enforces the
// receive budget, returning an mpc.ErrCapExceeded-wrapping error on a
// violation.
func (c *Cluster) EndRound(ctx context.Context) error {
	if !c.open {
		return fmt.Errorf("dist: EndRound without BeginRound")
	}
	c.open = false
	defer c.traceCloseRound(&c.stats.Rounds[len(c.stats.Rounds)-1])
	if c.pipe {
		// The barrier is deferred to the fence; the budget check is
		// coordinator-local (accounting happened at Scatter), so it
		// fires now with exactly the sync-path result.
		if c.rec != nil {
			c.rec.record(recOp{kind: opBarrier, round: c.round})
		}
		c.enqueue(recOp{kind: opBarrier, round: c.round})
		return c.stats.Rounds[len(c.stats.Rounds)-1].CheckCap(c.cfg.ReceiveCap())
	}
	if err := c.barrier(ctx); err != nil {
		return err
	}
	return c.stats.Rounds[len(c.stats.Rounds)-1].CheckCap(c.cfg.ReceiveCap())
}

// Join has every worker evaluate q over its stored tuples — local
// computation, free in the MPC cost model — and keep the result under
// view. bindings maps atom names to store names when they differ.
func (c *Cluster) Join(ctx context.Context, q *query.Query, bindings map[string]string, view string, strategy localjoin.Strategy) error {
	span := c.tracePhase("join")
	defer c.tracePhaseEnd(span)
	spec := JoinSpec{
		Query:    q.String(),
		View:     view,
		Bindings: bindings,
		Strategy: uint8(strategy),
	}
	if c.rec != nil {
		c.rec.record(recOp{kind: opJoin, spec: spec})
	}
	if c.pipe {
		c.enqueue(recOp{kind: opJoin, spec: spec})
		return nil
	}
	// Joins are journaled like deliveries: healthy workers have already
	// evaluated theirs, replay re-runs the failed worker's, so a healed
	// join is not re-broadcast.
	return c.attempt(ctx, false, func(ctx context.Context) error {
		return c.tr.Join(ctx, spec)
	})
}

// Gather returns the deduplicated sorted union of the tuples every
// worker holds under view — the cluster-wide answer of a query whose
// per-worker outputs were stored by Join.
func (c *Cluster) Gather(ctx context.Context, view string) ([]relation.Tuple, error) {
	span := c.tracePhase("gather")
	defer c.tracePhaseEnd(span)
	if c.pipe {
		return c.gatherPipelined(ctx, view)
	}
	var runs []*exchange.Buffer
	// Gather is read-only, so after a heal it simply runs again.
	err := c.attempt(ctx, true, func(ctx context.Context) error {
		var err error
		runs, err = c.tr.Gather(ctx, view)
		return err
	})
	if err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, nil
	}
	return exchange.MergeRuns(runs), nil
}

// GatherAggregate is Gather with a grouped-aggregate fold pushed into
// the k-way merge: the per-worker sorted runs stream through a
// relation.Accumulator, so the coordinator materializes one row per
// group instead of the full answer set. In pipelined mode the deferred
// script runs first (the gather is its fence) and the fold consumes
// the merged output — results are identical either way.
func (c *Cluster) GatherAggregate(ctx context.Context, view string, spec relation.GroupSpec) ([]relation.Tuple, error) {
	span := c.tracePhase("gather")
	defer c.tracePhaseEnd(span)
	if c.pipe {
		tuples, err := c.gatherPipelined(ctx, view)
		if err != nil {
			return nil, err
		}
		return relation.GroupAggregate(tuples, spec), nil
	}
	var runs []*exchange.Buffer
	err := c.attempt(ctx, true, func(ctx context.Context) error {
		var err error
		runs, err = c.tr.Gather(ctx, view)
		return err
	})
	if err != nil {
		return nil, err
	}
	acc := relation.NewAccumulator(spec)
	exchange.FoldRuns(runs, acc.Add)
	return acc.Result(), nil
}

// Close closes the underlying transport session.
func (c *Cluster) Close() error { return c.tr.Close() }
