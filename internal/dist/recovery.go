package dist

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/exchange"
	"repro/internal/wire"
)

// WorkerError attributes a transport failure to one worker of the
// pool, which is what lets the recovery path replace exactly the
// workers that failed instead of aborting the execution.
type WorkerError struct {
	// Worker is the pool index of the failed worker.
	Worker int
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *WorkerError) Error() string { return fmt.Sprintf("dist: worker %d: %v", e.Worker, e.Err) }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *WorkerError) Unwrap() error { return e.Err }

// FailedWorkers walks err (including errors.Join trees and wrapped
// chains) and returns the sorted, deduplicated worker indices of every
// WorkerError found. An error with no worker attribution yields nil —
// such failures are not recoverable by replacement.
func FailedWorkers(err error) []int {
	seen := map[int]bool{}
	var walk func(error)
	walk = func(err error) {
		if err == nil {
			return
		}
		var we *WorkerError
		if errors.As(err, &we) {
			seen[we.Worker] = true
		}
		switch x := err.(type) {
		case interface{ Unwrap() []error }:
			for _, e := range x.Unwrap() {
				walk(e)
			}
		case interface{ Unwrap() error }:
			walk(x.Unwrap())
		}
	}
	walk(err)
	if len(seen) == 0 {
		return nil
	}
	out := make([]int, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// RecoveryOptions is the self-healing policy of a Cluster. The zero
// value disables recovery (failures abort the execution exactly as
// before); setting Enabled turns every worker-attributed transport
// failure into a replace-and-replay cycle bounded by MaxReplacements.
type RecoveryOptions struct {
	// Enabled turns recovery on.
	Enabled bool
	// MaxReplacements bounds how many worker replacements one execution
	// may perform; zero or negative means the pool size.
	MaxReplacements int
	// Spares are extra worker addresses a TCP transport may promote
	// when replacing a failed worker; the failed address is recycled to
	// the back of the spare list. Ignored by address-less transports.
	Spares []string
	// PhaseTimeout bounds each transport phase (deliver, barrier, join,
	// gather, checkpoint); a stuck worker then surfaces as a failed
	// phase that recovery can heal instead of a hang. Zero means no
	// per-phase deadline.
	PhaseTimeout time.Duration
}

// maxReplacements resolves the budget against the pool size.
func (o RecoveryOptions) maxReplacements(p int) int {
	if o.MaxReplacements > 0 {
		return o.MaxReplacements
	}
	return p
}

// Replaceable is the control surface a Transport must offer for
// mid-query recovery: replacing one worker's session and replaying
// state into it, plus the heartbeat/epoch/checkpoint control frames.
type Replaceable interface {
	Transport
	// ReplaceWorker discards worker w's session and installs a fresh,
	// empty one (promoting a spare or re-dialing as the transport sees
	// fit). After it returns, w holds no state.
	ReplaceWorker(ctx context.Context, w int) error
	// JoinWorker runs the local-evaluation command on worker w only —
	// the replay counterpart of Join, which addresses the whole pool.
	JoinWorker(ctx context.Context, w int, spec JoinSpec) error
	// Ping round-trips a heartbeat through worker w. Because frames on
	// a session are processed in order, a returned Ping also proves the
	// worker ingested everything sent before it.
	Ping(ctx context.Context, w int, seq uint32) error
	// Announce broadcasts the coordinator's recovery epoch to the whole
	// pool; workers reject decreasing epochs as stale coordinators.
	Announce(ctx context.Context, epoch uint32) error
	// Checkpoint broadcasts the durable-state manifest for a completed
	// round to the whole pool.
	Checkpoint(ctx context.Context, m *wire.Manifest) error
}

// recOpKind discriminates journal entries.
type recOpKind uint8

const (
	opDeliver recOpKind = iota
	opBarrier
	opJoin
	opDelta
	// opTrace is a deferred trace-header announcement; pipelined-only
	// (the sync path sends headers directly) and never journaled.
	opTrace
)

// recOp is one journaled coordinator action. The journal is what makes
// a replacement worker reconstructible: every run it should hold and
// every join it should have evaluated is recorded here, so replay
// re-sends exactly the lost worker's slice of the execution — healthy
// workers are never touched and a multiround query resumes at the
// round it was in, not at round 0.
type recOp struct {
	kind  recOpKind
	round int
	ds    []exchange.Delivery
	dds   []DeltaDelivery
	spec  JoinSpec
	hdr   wire.TraceHeader
}

// recovery is a Cluster's self-healing state.
type recovery struct {
	opts     RecoveryOptions
	rt       Replaceable
	epoch    uint32
	replaced int
	journal  []recOp
	// durable accumulates per-(worker, store) run and tuple counts as
	// scatters happen; it is the source of checkpoint manifests.
	durable map[manifestKey]*manifestTally
}

// manifestKey identifies one (worker, store) manifest line.
type manifestKey struct {
	worker int
	store  string
}

// manifestTally accumulates the runs and tuples behind one line.
type manifestTally struct {
	runs   uint32
	tuples uint64
}

// EnableRecovery arms the cluster's self-healing: every transport
// failure attributable to specific workers (a *WorkerError anywhere in
// the error tree) triggers replace-and-replay instead of aborting. The
// transport must implement Replaceable; opts.Spares are handed to the
// transport when it can accept them.
func (c *Cluster) EnableRecovery(opts RecoveryOptions) error {
	rt, ok := c.tr.(Replaceable)
	if !ok {
		return fmt.Errorf("dist: transport %T does not support recovery", c.tr)
	}
	if len(opts.Spares) > 0 {
		if s, ok := c.tr.(interface{ AddSpares(addrs []string) }); ok {
			s.AddSpares(opts.Spares)
		}
	}
	c.rec = &recovery{opts: opts, rt: rt, durable: make(map[manifestKey]*manifestTally)}
	return nil
}

// Epoch returns the recovery epoch: 0 until the first replacement,
// then incremented once per heal cycle.
func (c *Cluster) Epoch() uint32 {
	if c.rec == nil {
		return 0
	}
	return c.rec.epoch
}

// Replacements returns how many workers this execution has replaced.
func (c *Cluster) Replacements() int {
	if c.rec == nil {
		return 0
	}
	return c.rec.replaced
}

// phaseCtx derives the per-phase context from the recovery policy.
func (c *Cluster) phaseCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.rec != nil && c.rec.opts.PhaseTimeout > 0 {
		return context.WithTimeout(ctx, c.rec.opts.PhaseTimeout)
	}
	return ctx, func() {}
}

// attempt runs one transport phase with healing: a failure attributed
// to specific workers triggers replace-and-replay for exactly those
// workers, then the phase is retried when retry is set. Phases whose
// effects are already journaled (deliver, join) pass retry=false —
// replay has re-sent the failed worker's slice and the healthy workers
// already hold theirs, so re-running the phase would duplicate state.
// Idempotent phases (barrier, gather, checkpoint) retry until they
// succeed or the replacement budget runs out.
func (c *Cluster) attempt(ctx context.Context, retry bool, op func(context.Context) error) error {
	for {
		pctx, cancel := c.phaseCtx(ctx)
		err := op(pctx)
		cancel()
		if err == nil || c.rec == nil || ctx.Err() != nil {
			return err
		}
		failed := FailedWorkers(err)
		if len(failed) == 0 {
			return err
		}
		if herr := c.heal(ctx, failed); herr != nil {
			return herr
		}
		if !retry {
			return nil
		}
	}
}

// heal replaces each failed worker and replays its journaled state:
// bump the epoch, install a fresh session, announce the epoch to the
// pool, re-send the worker's deliveries and joins. Failures discovered
// during healing (another dead worker, a replacement that dies
// mid-replay) are queued and healed too, all under the replacement
// budget.
func (c *Cluster) heal(ctx context.Context, failed []int) error {
	rec := c.rec
	queue := append([]int(nil), failed...)
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		if w < 0 || w >= c.cfg.Workers {
			continue
		}
		if rec.replaced >= rec.opts.maxReplacements(c.cfg.Workers) {
			return fmt.Errorf("dist: worker %d failed with replacement budget %d exhausted",
				w, rec.opts.maxReplacements(c.cfg.Workers))
		}
		rec.replaced++
		rec.epoch++
		c.traceEvent("replace-worker", w, fmt.Sprintf("epoch %d: session replaced, journal replayed", rec.epoch))
		if err := rec.rt.ReplaceWorker(ctx, w); err != nil {
			return fmt.Errorf("dist: replace worker %d: %w", w, err)
		}
		if err := rec.rt.Announce(ctx, rec.epoch); err != nil {
			if ctx.Err() != nil {
				return err
			}
			more := FailedWorkers(err)
			if len(more) == 0 {
				return err
			}
			queue = queueMissing(queue, more)
			if contains(more, w) {
				continue // the replacement itself died; go around again
			}
		}
		if err := c.replay(ctx, w); err != nil {
			if ctx.Err() != nil {
				return err
			}
			more := FailedWorkers(err)
			if len(more) == 0 {
				return err
			}
			queue = queueMissing(queue, more)
		}
	}
	return nil
}

// replay re-sends worker w's slice of the journal into its fresh
// session: its deliveries (filtered by destination) and every join, in
// original order. Barriers are unnecessary here — frames on one
// session are processed in order, and the final Ping round-trip proves
// the worker ingested everything.
func (c *Cluster) replay(ctx context.Context, w int) error {
	rec := c.rec
	for _, op := range rec.journal {
		var err error
		switch op.kind {
		case opDeliver:
			var mine []exchange.Delivery
			for _, d := range op.ds {
				if d.To == w {
					mine = append(mine, d)
				}
			}
			if len(mine) > 0 {
				err = rec.rt.Deliver(ctx, op.round, mine)
			}
		case opDelta:
			var mine []DeltaDelivery
			for _, d := range op.dds {
				if d.To == w {
					mine = append(mine, d)
				}
			}
			if len(mine) > 0 {
				err = rec.rt.ApplyDelta(ctx, op.round, mine)
			}
		case opJoin:
			err = rec.rt.JoinWorker(ctx, w, op.spec)
		case opBarrier:
			// covered by session frame ordering
		}
		if err != nil {
			return err
		}
	}
	return rec.rt.Ping(ctx, w, rec.epoch)
}

// record appends a journal entry and, for deliveries and extending
// deltas, folds the runs into the durable-state tallies behind
// checkpoint manifests. Retractions add no runs, so they leave the
// tallies alone — the manifest describes what a replacement must
// re-receive, and retracted tuples are re-sent as journal replay.
func (rec *recovery) record(op recOp) {
	rec.journal = append(rec.journal, op)
	switch op.kind {
	case opDeliver:
		for _, d := range op.ds {
			if d.Buf.Len() == 0 {
				continue
			}
			rec.tally(d.To, d.Rel, d.Buf.Len())
		}
	case opDelta:
		for _, d := range op.dds {
			if d.Del || d.Buf.Len() == 0 {
				continue
			}
			rec.tally(d.To, d.Store, d.Buf.Len())
		}
	}
}

// tally folds one run of n tuples into the (worker, store) line.
func (rec *recovery) tally(worker int, store string, n int) {
	k := manifestKey{worker: worker, store: store}
	t := rec.durable[k]
	if t == nil {
		t = &manifestTally{}
		rec.durable[k] = t
	}
	t.runs++
	t.tuples += uint64(n)
}

// manifest builds the checkpoint manifest for a completed round in
// canonical (worker, store) order.
func (rec *recovery) manifest(round int) *wire.Manifest {
	m := &wire.Manifest{Epoch: rec.epoch, Round: uint32(round)}
	for k, t := range rec.durable {
		m.Entries = append(m.Entries, wire.ManifestEntry{
			Worker: uint32(k.worker),
			Store:  k.store,
			Runs:   t.runs,
			Tuples: t.tuples,
		})
	}
	sort.Slice(m.Entries, func(i, j int) bool {
		a, b := m.Entries[i], m.Entries[j]
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		return a.Store < b.Store
	})
	return m
}

// checkpoint broadcasts the round's manifest to the pool, healing on
// worker-attributed failures like any other phase.
func (c *Cluster) checkpoint(ctx context.Context, round int) error {
	m := c.rec.manifest(round)
	return c.attempt(ctx, true, func(ctx context.Context) error {
		// Rebuild the epoch on each try: a heal in between bumps it, and
		// workers reject manifests from before their announced epoch.
		m.Epoch = c.rec.epoch
		return c.rec.rt.Checkpoint(ctx, m)
	})
}

// queueMissing appends the workers of more not already queued.
func queueMissing(queue, more []int) []int {
	for _, w := range more {
		if !contains(queue, w) {
			queue = append(queue, w)
		}
	}
	return queue
}

// contains reports whether ws includes w.
func contains(ws []int, w int) bool {
	for _, x := range ws {
		if x == w {
			return true
		}
	}
	return false
}
