package dist_test

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/trace"
)

// spanTree renders a trace's structural skeleton — ids, parents,
// names, rounds, workers, and actual-load fields, everything except
// timestamps — one line per span. Two executions of the same plan must
// produce identical skeletons regardless of transport: span ids are
// assigned in coordinator call order and loads come from the
// coordinator-side accounting, so this is the tracing analogue of the
// byte-identical-stats differential invariant.
func spanTree(tr *trace.Trace) string {
	var b strings.Builder
	for _, s := range tr.Spans {
		fmt.Fprintf(&b, "%d<-%d %s r%d w%d load=%d bits=%d %s\n",
			s.ID, s.Parent, s.Name, s.Round, s.Worker, s.LoadTuples, s.LoadBits, s.Note)
	}
	return b.String()
}

// tracedRun plans and executes q over db with tracing enabled and
// returns the trace.
func tracedRun(t *testing.T, q *query.Query, db *relation.Database, p int, tr dist.Transport, pipeline bool) *trace.Trace {
	t.Helper()
	pl, err := plan.Build(q, relation.CollectStats(db), plan.Options{P: p})
	if err != nil {
		t.Fatal(err)
	}
	tc := trace.New("q-diff", 77)
	_, err = pl.Execute(db, plan.ExecOptions{Seed: 23, Transport: tr, Pipeline: pipeline, Trace: tc})
	if err != nil {
		t.Fatal(err)
	}
	tc.Finish()
	return tc
}

// TestTraceDifferentialTransports asserts the identical-span-tree
// invariant across loopback and TCP, for the sync and pipelined
// schedules, over the query families the planner routes to different
// engines.
func TestTraceDifferentialTransports(t *testing.T) {
	const p = 4
	addrs := startPool(t, p)
	families := []struct {
		name string
		q    *query.Query
	}{
		{"triangle", query.Cycle(3)},
		{"chain", query.Chain(4)},
		{"star", query.Star(3)},
	}
	for fi, fam := range families {
		for _, pipeline := range []bool{false, true} {
			name := fam.name + "/sync"
			if pipeline {
				name = fam.name + "/pipelined"
			}
			t.Run(name, func(t *testing.T) {
				db := relation.MatchingDatabase(rand.New(rand.NewPCG(42, uint64(fi))), fam.q, 300)
				loop := tracedRun(t, fam.q, db, p, nil, pipeline)
				tcp := tracedRun(t, fam.q, db, p, dialPool(t, addrs), pipeline)
				lt, tt := spanTree(loop), spanTree(tcp)
				if lt != tt {
					t.Errorf("span trees differ across transports:\nloopback:\n%s\ntcp:\n%s", lt, tt)
				}
				if loop.Rounds() == 0 {
					t.Errorf("no round spans recorded")
				}
				// Every round has one worker span per worker.
				workers := 0
				for _, s := range loop.Spans {
					if s.Name == "worker" {
						workers++
					}
				}
				if want := loop.Rounds() * p; workers != want {
					t.Errorf("worker spans = %d, want %d (rounds %d × p %d)", workers, want, loop.Rounds(), p)
				}
			})
		}
	}
}

// TestTraceHeaderPropagation asserts the coordinator announces the
// span context to the transport: the loopback records the last header,
// which must carry the trace id, query id, and a round the trace
// actually recorded.
func TestTraceHeaderPropagation(t *testing.T) {
	q := query.Cycle(3)
	db := relation.MatchingDatabase(rand.New(rand.NewPCG(9, 9)), q, 200)
	const p = 4
	for _, pipeline := range []bool{false, true} {
		name := "sync"
		if pipeline {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			lb := dist.NewLoopback(p)
			tc := tracedRun(t, q, db, p, lb, pipeline)
			h, ok := lb.LastTrace()
			if !ok {
				t.Fatal("no trace header announced to the transport")
			}
			if h.TraceID != tc.TraceID || h.QueryID != tc.QueryID {
				t.Errorf("header identifies (%d, %q), trace is (%d, %q)", h.TraceID, h.QueryID, tc.TraceID, tc.QueryID)
			}
			if int(h.Round) > tc.Rounds() || h.Round == 0 {
				t.Errorf("header announces round %d, trace recorded %d rounds", h.Round, tc.Rounds())
			}
		})
	}
}
