package dist_test

import (
	"math/big"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hypercube"
	"repro/internal/mpc"
	"repro/internal/multiround"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/skew"
)

// The recovery net rerun with pipelining enabled: the same
// deterministic kill schedules must heal identically when transport
// work is deferred to the gather fence. FaultTransport does not
// stream scripts, so the pipelined cluster falls back to the primitive
// methods at the fence — the fault counters see the sync call
// sequence, the kill-points fire at the same calls, and the healed run
// must still match ground truth with baseline-identical statistics.

// pipeRecEngines builds the three engines over fixed deterministic
// inputs with pipelining on; the recovery policy comes per run.
func pipeRecEngines(t *testing.T, p int) []recEngine {
	t.Helper()

	triQ := query.Cycle(3)
	triDB := relation.MatchingDatabase(rand.New(rand.NewPCG(100, 0)), triQ, 200)
	triTruth, err := core.GroundTruth(triQ, triDB)
	if err != nil {
		t.Fatal(err)
	}

	chQ := query.Chain(4)
	chDB := relation.MatchingDatabase(rand.New(rand.NewPCG(101, 0)), chQ, 200)
	chTruth, err := core.GroundTruth(chQ, chDB)
	if err != nil {
		t.Fatal(err)
	}
	chPlan, err := multiround.Build(chQ, big.NewRat(0, 1))
	if err != nil {
		t.Fatal(err)
	}

	r, s := skew.ZipfJoinInput(rand.New(rand.NewPCG(102, 0)), 300, 1.2)
	sjTruth, err := skew.GroundTruth(r, s)
	if err != nil {
		t.Fatal(err)
	}

	return []recEngine{
		{
			name:  "hypercube",
			truth: triTruth,
			run: func(t *testing.T, tr dist.Transport, rec dist.RecoveryOptions) ([]relation.Tuple, *mpc.Stats, int) {
				t.Helper()
				res, err := hypercube.Run(triQ, triDB, p, hypercube.Options{Seed: 23, Transport: tr, Recovery: rec, Pipeline: true})
				if err != nil {
					t.Fatal(err)
				}
				return res.Answers, res.Stats, res.Replacements
			},
		},
		{
			name:  "multiround",
			truth: chTruth,
			run: func(t *testing.T, tr dist.Transport, rec dist.RecoveryOptions) ([]relation.Tuple, *mpc.Stats, int) {
				t.Helper()
				res, err := multiround.Execute(chPlan, chDB, p, multiround.Options{Seed: 23, Transport: tr, Recovery: rec, Pipeline: true})
				if err != nil {
					t.Fatal(err)
				}
				return res.Answers, res.Stats, res.Replacements
			},
		},
		{
			name:  "skew",
			truth: sjTruth,
			run: func(t *testing.T, tr dist.Transport, rec dist.RecoveryOptions) ([]relation.Tuple, *mpc.Stats, int) {
				t.Helper()
				res, err := skew.RunJoin(r, s, p, skew.Resilient, skew.Options{Seed: 7, Transport: tr, Recovery: rec, Pipeline: true})
				if err != nil {
					t.Fatal(err)
				}
				return res.Answers, res.Stats, res.Replacements
			},
		},
	}
}

// TestRecoveryKillPointsPipelined reruns the kill-point table with
// pipelining enabled. The baseline is the pipelined fault-free run
// (itself checked against ground truth); every kill-point must heal
// back to it.
func TestRecoveryKillPointsPipelined(t *testing.T) {
	const p = 4
	engines := pipeRecEngines(t, p)
	for _, eng := range engines {
		counter := &countingTransport{Transport: dist.NewLoopback(p)}
		baseAns, baseStats, baseRepl := eng.run(t, counter, dist.RecoveryOptions{})
		if baseRepl != 0 {
			t.Fatalf("%s: baseline replaced %d workers", eng.name, baseRepl)
		}
		if !sameTuples(baseAns, eng.truth) {
			t.Fatalf("%s: baseline %d answers, ground truth %d", eng.name, len(baseAns), len(eng.truth))
		}

		points := []struct {
			name   string
			faults []dist.Fault
			kills  int
			ok     bool
		}{
			{"scatter-kill", []dist.Fault{{Worker: 1, Op: dist.OpDeliver, N: 0, Kind: dist.KillBefore}}, 1, true},
			{"last-scatter-kill", []dist.Fault{{Worker: 0, Op: dist.OpDeliver, N: counter.delivers - 1, Kind: dist.KillBefore}}, 1, counter.delivers > 1},
			{"barrier-kill", []dist.Fault{{Worker: 0, Op: dist.OpBarrier, N: 0, Kind: dist.KillBefore}}, 1, true},
			{"join-kill", []dist.Fault{{Worker: 1, Op: dist.OpJoin, N: 0, Kind: dist.KillBefore}}, 1, true},
			{"gather-kill", []dist.Fault{{Worker: 3, Op: dist.OpGather, N: 0, Kind: dist.KillBefore}}, 1, true},
			{"double-kill", []dist.Fault{
				{Worker: 1, Op: dist.OpDeliver, N: 0, Kind: dist.KillBefore},
				{Worker: 2, Op: dist.OpJoin, N: 0, Kind: dist.KillBefore},
			}, 2, true},
		}
		for _, pt := range points {
			if !pt.ok {
				continue
			}
			pt := pt
			t.Run(eng.name+"/"+pt.name, func(t *testing.T) {
				ft := dist.NewFaultTransport(dist.NewLoopback(p), pt.faults...)
				ans, stats, repl := eng.run(t, ft, dist.RecoveryOptions{Enabled: true, MaxReplacements: 8})
				if !sameTuples(ans, eng.truth) {
					t.Errorf("%d answers, ground truth %d", len(ans), len(eng.truth))
				}
				if !reflect.DeepEqual(stats.Rounds, baseStats.Rounds) {
					t.Errorf("round stats differ from fault-free baseline:\n got %+v\nwant %+v",
						stats.Rounds, baseStats.Rounds)
				}
				if got := ft.Kills(); got != pt.kills {
					t.Errorf("%d kill faults fired, schedule expects %d", got, pt.kills)
				}
				if repl < pt.kills {
					t.Errorf("%d replacements for %d kills", repl, pt.kills)
				}
			})
		}
	}
}

// TestRecoveryMidStreamTCPPipelined kills a worker process under a
// pipelined TCP execution: the script stream to that worker dies
// mid-flight, the spare is promoted and replayed from the journal, and
// the fence retries only the gather. Answers must match ground truth
// and the statistics must equal the fault-free sync baseline.
func TestRecoveryMidStreamTCPPipelined(t *testing.T) {
	const p = 4
	q := query.Cycle(3)
	db := relation.MatchingDatabase(rand.New(rand.NewPCG(100, 0)), q, 200)
	truth, err := core.GroundTruth(q, db)
	if err != nil {
		t.Fatal(err)
	}
	base, err := hypercube.Run(q, db, p, hypercube.Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}

	pool := startKillablePool(t, p+1)
	members, spare := pool.addrs[:p], pool.addrs[p]
	tr := dialPool(t, members)
	pool.kill(2) // sessions die; the first script write to worker 2 fails

	res, err := hypercube.Run(q, db, p, hypercube.Options{
		Seed:      23,
		Transport: tr,
		Recovery:  dist.RecoveryOptions{Enabled: true, Spares: []string{spare}},
		Pipeline:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replacements == 0 {
		t.Fatal("killed worker process healed without a replacement")
	}
	if !sameTuples(res.Answers, truth) {
		t.Fatalf("%d answers after mid-stream heal, ground truth %d", len(res.Answers), len(truth))
	}
	if !reflect.DeepEqual(res.Stats.Rounds, base.Stats.Rounds) {
		t.Errorf("round stats differ from fault-free sync baseline:\n got %+v\nwant %+v",
			res.Stats.Rounds, base.Stats.Rounds)
	}
}
