package dist_test

import (
	"context"
	"net"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/exchange"
	"repro/internal/localjoin"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/wire"
)

// startPool spins up n in-process TCP worker listeners (the exact
// code cmd/mpcworker runs) and returns their addresses. Everything
// shuts down with the test.
func startPool(t *testing.T, n int) []string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		go dist.Serve(ctx, ln)
	}
	return addrs
}

// dialPool dials a fresh session against the pool.
func dialPool(t *testing.T, addrs []string) *dist.TCP {
	t.Helper()
	tr, err := dist.DialTCP(context.Background(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// runJoinRound drives one full BSP round — scatter R and S hashed on
// the join column, barrier, join, gather — on the given transport and
// returns answers plus stats.
func runJoinRound(t *testing.T, tr dist.Transport, r, s *relation.Relation, domain int) ([]relation.Tuple, *mpc.Stats) {
	t.Helper()
	ctx := context.Background()
	p := tr.Workers()
	cl, err := dist.NewCluster(mpc.Config{Workers: p, DomainN: domain, InputBits: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	cl.BeginRound()
	if err := cl.Scatter(ctx, r, "R", exchange.HashPartitioner{Col: 1, P: p, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Scatter(ctx, s, "S", exchange.HashPartitioner{Col: 0, P: p, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if err := cl.EndRound(ctx); err != nil {
		t.Fatal(err)
	}
	q := query.MustParse("q(x,y,z) = R(x,y), S(y,z)")
	if err := cl.Join(ctx, q, nil, "out", localjoin.Default); err != nil {
		t.Fatal(err)
	}
	answers, err := cl.Gather(ctx, "out")
	if err != nil {
		t.Fatal(err)
	}
	return answers, cl.Stats()
}

// joinInputs builds a small R(x,y), S(y,z) pair with a known join.
func joinInputs() (*relation.Relation, *relation.Relation, int) {
	r := relation.New("R", "x", "y")
	s := relation.New("S", "y", "z")
	for i := 1; i <= 40; i++ {
		r.MustAdd(relation.Tuple{i, i % 7})
		s.MustAdd(relation.Tuple{i % 7, i + 1})
	}
	return r, s, 64
}

// TestClusterLoopbackVsTCP: the same round on both transports gives
// identical answers and identical per-round statistics.
func TestClusterLoopbackVsTCP(t *testing.T) {
	r, s, domain := joinInputs()
	const p = 4
	loopAns, loopStats := runJoinRound(t, dist.NewLoopback(p), r, s, domain)
	if len(loopAns) == 0 {
		t.Fatal("empty join result")
	}
	tcp := dialPool(t, startPool(t, p))
	tcpAns, tcpStats := runJoinRound(t, tcp, r, s, domain)
	if !reflect.DeepEqual(loopAns, tcpAns) {
		t.Fatalf("answers differ: loopback %d, tcp %d", len(loopAns), len(tcpAns))
	}
	if !reflect.DeepEqual(loopStats, tcpStats) {
		t.Fatalf("stats differ:\nloopback %+v\ntcp %+v", loopStats.Rounds, tcpStats.Rounds)
	}
}

// TestSessionIsolation: two concurrent sessions against the same
// worker processes do not see each other's stores.
func TestSessionIsolation(t *testing.T) {
	addrs := startPool(t, 2)
	a := dialPool(t, addrs)
	b := dialPool(t, addrs)
	ctx := context.Background()

	buf := exchange.NewBuffer(1)
	buf.Append(relation.Tuple{7})
	buf.Seal()
	if err := a.Deliver(ctx, 1, []exchange.Delivery{{To: 0, Rel: "R", Buf: buf}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Barrier(ctx, 1); err != nil {
		t.Fatal(err)
	}
	runs, err := b.Gather(ctx, "R")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 0 {
		t.Fatalf("session b sees %d runs delivered to session a", len(runs))
	}
	runs, err = a.Gather(ctx, "R")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Len() != 1 {
		t.Fatalf("session a lost its own delivery: %v", runs)
	}
}

// TestWorkerRejectsMisroutedData: a raw Data frame whose dest shard
// is not the receiving worker's id is a protocol error, not a silent
// misdelivery.
func TestWorkerRejectsMisroutedData(t *testing.T) {
	addrs := startPool(t, 1)
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	send := func(f *wire.Frame) {
		t.Helper()
		if err := wire.Encode(conn, f); err != nil {
			t.Fatal(err)
		}
	}
	send(&wire.Frame{Type: wire.TypeHello, Hello: wire.Hello{Version: wire.Version, Worker: 1, P: 2}})
	if f, err := wire.Decode(conn); err != nil || f.Type != wire.TypeAck {
		t.Fatalf("handshake: %v %v", f, err)
	}
	buf := exchange.NewBuffer(1)
	buf.Append(relation.Tuple{1})
	buf.Seal()
	send(&wire.Frame{Type: wire.TypeData, Data: wire.Data{Round: 1, Dest: 0, Rel: "R", Buf: buf}})
	f, err := wire.Decode(conn)
	if err != nil || f.Type != wire.TypeError {
		t.Fatalf("want error frame for misrouted data, got %v %v", f, err)
	}
	if !strings.Contains(f.Msg, "shard") {
		t.Fatalf("error frame does not name the shard mismatch: %q", f.Msg)
	}
}

// TestDeliverRejectsOutOfRange: an out-of-range destination is
// rejected coordinator-side on the TCP transport.
func TestDeliverRejectsOutOfRange(t *testing.T) {
	tr := dialPool(t, startPool(t, 2))
	buf := exchange.NewBuffer(1)
	buf.Append(relation.Tuple{1})
	buf.Seal()
	err := tr.Deliver(context.Background(), 1, []exchange.Delivery{{To: 5, Rel: "R", Buf: buf}})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("want out-of-range error, got %v", err)
	}
}

// TestJoinErrorsSurface: an invalid join spec comes back as an error
// from every worker, on both transports.
func TestJoinErrorsSurface(t *testing.T) {
	ctx := context.Background()
	for _, tr := range []dist.Transport{dist.NewLoopback(2), dialPool(t, startPool(t, 2))} {
		if err := tr.Join(ctx, dist.JoinSpec{Query: "not a query", View: "v"}); err == nil {
			t.Errorf("%T: malformed query accepted", tr)
		}
		if err := tr.Join(ctx, dist.JoinSpec{Query: "R(x,y)", View: ""}); err == nil {
			t.Errorf("%T: empty view accepted", tr)
		}
		if err := tr.Join(ctx, dist.JoinSpec{Query: "R(x,y)", View: "v", Strategy: 99}); err == nil {
			t.Errorf("%T: unknown strategy accepted", tr)
		}
	}
}

// TestClusterValidation: config/transport mismatches are caught.
func TestClusterValidation(t *testing.T) {
	if _, err := dist.NewCluster(mpc.Config{Workers: 3, DomainN: 10}, dist.NewLoopback(2)); err == nil {
		t.Error("pool-size mismatch accepted")
	}
	if _, err := dist.NewCluster(mpc.Config{Workers: 2, DomainN: 10}, nil); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := dist.NewCluster(mpc.Config{Workers: 2, DomainN: 0}, dist.NewLoopback(2)); err == nil {
		t.Error("invalid domain accepted")
	}
	if _, err := dist.DialTCP(context.Background(), nil); err == nil {
		t.Error("empty address list accepted")
	}
}

// TestCapEnforcement: the receive budget trips identically on both
// transports (accounting is coordinator-side).
func TestCapEnforcement(t *testing.T) {
	r, s, domain := joinInputs()
	cfg := mpc.Config{Workers: 2, DomainN: domain, InputBits: 8, CapConstant: 0.001}
	for _, tr := range []dist.Transport{dist.NewLoopback(2), dialPool(t, startPool(t, 2))} {
		cl, err := dist.NewCluster(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		cl.BeginRound()
		if err := cl.Scatter(ctx, r, "R", exchange.HashPartitioner{Col: 1, P: 2}); err != nil {
			t.Fatal(err)
		}
		if err := cl.Scatter(ctx, s, "S", exchange.HashPartitioner{Col: 0, P: 2}); err != nil {
			t.Fatal(err)
		}
		err = cl.EndRound(ctx)
		if err == nil {
			t.Fatalf("%T: tiny budget not enforced", tr)
		}
		if !strings.Contains(err.Error(), "receive cap exceeded") {
			t.Fatalf("%T: unexpected error %v", tr, err)
		}
	}
}
