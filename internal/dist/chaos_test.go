package dist_test

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/exchange"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/wire"
)

// Chaos tests: the failure modes a real cluster has and the loopback
// never shows. Every scenario must surface an error within a deadline
// — a stuck worker or a dead connection must never hang a round.

// chaosDeadline bounds how long any chaos scenario may take to report
// its error; generous against CI scheduling noise, tiny against a
// real hang.
const chaosDeadline = 15 * time.Second

// withinDeadline runs fn and fails the test if it does not return an
// error, or takes longer than chaosDeadline.
func withinDeadline(t *testing.T, what string, fn func() error) {
	t.Helper()
	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("%s: want error, got nil after %v", what, time.Since(start))
		}
		t.Logf("%s: failed fast (%v): %v", what, time.Since(start), err)
	case <-time.After(chaosDeadline):
		t.Fatalf("%s: still hanging after %v", what, chaosDeadline)
	}
}

// startStuckWorker accepts one connection, answers the handshake, and
// then goes silent: it reads and discards frames but never acks — the
// shape of a wedged remote process.
func startStuckWorker(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if f, err := wire.Decode(conn); err != nil || f.Type != wire.TypeHello {
			return
		}
		_ = wire.Encode(conn, &wire.Frame{Type: wire.TypeAck})
		for {
			if _, err := wire.Decode(conn); err != nil {
				return
			}
		}
	}()
	return ln.Addr().String()
}

// smallDelivery is one single-tuple sealed run for worker 0.
func smallDelivery() []exchange.Delivery {
	b := exchange.NewBuffer(1)
	b.Append(relation.Tuple{1})
	b.Seal()
	return []exchange.Delivery{{To: 0, Rel: "R", Buf: b}}
}

// TestChaosCancelMidRound: cancelling the context while a barrier
// waits on a stuck worker aborts the round promptly.
func TestChaosCancelMidRound(t *testing.T) {
	addr := startStuckWorker(t)
	tr, err := dist.DialTCP(context.Background(), []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ctx, cancel := context.WithCancel(context.Background())
	if err := tr.Deliver(ctx, 1, smallDelivery()); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(100 * time.Millisecond) // let the barrier block on the silent worker
		cancel()
	}()
	withinDeadline(t, "barrier against stuck worker, ctx cancelled", func() error {
		return tr.Barrier(ctx, 1)
	})
}

// TestChaosDeadlineMidRound: same scenario driven by a context
// deadline instead of an explicit cancel.
func TestChaosDeadlineMidRound(t *testing.T) {
	addr := startStuckWorker(t)
	tr, err := dist.DialTCP(context.Background(), []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := tr.Deliver(ctx, 1, smallDelivery()); err != nil {
		t.Fatal(err)
	}
	withinDeadline(t, "barrier against stuck worker, deadline", func() error {
		return tr.Barrier(ctx, 1)
	})
}

// TestChaosWorkerDropsBetweenScatterAndGather: one worker of the pool
// dies after the scatter round completes; the join and the gather
// must error out instead of hanging, and the coordinator names a
// transport failure.
func TestChaosWorkerDropsBetweenScatterAndGather(t *testing.T) {
	// Worker 0 lives for the whole test; worker 1 is killable.
	stable := startPool(t, 1)
	dyingCtx, kill := context.WithCancel(context.Background())
	defer kill()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go dist.Serve(dyingCtx, ln)

	tr, err := dist.DialTCP(context.Background(), []string{stable[0], ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cl, err := dist.NewCluster(mpc.Config{Workers: 2, DomainN: 64, InputBits: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	r, s, _ := joinInputs()
	ctx, cancel := context.WithTimeout(context.Background(), chaosDeadline)
	defer cancel()
	cl.BeginRound()
	if err := cl.Scatter(ctx, r, "R", exchange.HashPartitioner{Col: 1, P: 2}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Scatter(ctx, s, "S", exchange.HashPartitioner{Col: 0, P: 2}); err != nil {
		t.Fatal(err)
	}
	if err := cl.EndRound(ctx); err != nil {
		t.Fatal(err)
	}

	kill() // worker 1's sessions die between scatter and gather

	withinDeadline(t, "join+gather after worker drop", func() error {
		q := query.MustParse("q(x,y,z) = R(x,y), S(y,z)")
		if err := cl.Join(ctx, q, nil, "out", 0); err != nil {
			return err
		}
		_, err := cl.Gather(ctx, "out")
		return err
	})
}
