package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/exchange"
	"repro/internal/wire"
)

// OpType names the transport phase a fault attaches to.
type OpType uint8

// Transport phases a Fault can target.
const (
	// OpDeliver is a Deliver call (one per scatter).
	OpDeliver OpType = iota
	// OpBarrier is a Barrier call.
	OpBarrier
	// OpJoin is a Join call.
	OpJoin
	// OpGather is a Gather call.
	OpGather
	// OpDelta is an ApplyDelta call (one per delta scatter).
	OpDelta
)

// String names the phase.
func (o OpType) String() string {
	switch o {
	case OpDeliver:
		return "deliver"
	case OpBarrier:
		return "barrier"
	case OpJoin:
		return "join"
	case OpGather:
		return "gather"
	case OpDelta:
		return "delta"
	default:
		return fmt.Sprintf("OpType(%d)", uint8(o))
	}
}

// FaultKind is what happens when a fault fires.
type FaultKind uint8

// Fault behaviors.
const (
	// KillBefore kills the worker's connection before the phase acts:
	// the worker's slice of the phase is lost and the worker is dead
	// until replaced.
	KillBefore FaultKind = iota
	// KillAfter kills the worker's connection after the phase acted:
	// the worker holds the phase's state but the coordinator sees a
	// failure (it cannot know how much arrived), and the worker is dead
	// until replaced.
	KillAfter
	// DelayToBarrier holds the worker's deliveries back until the next
	// Barrier call, which injects them before synchronizing — legal
	// under BSP semantics (ingestion is only promised at the barrier)
	// and must not change any result.
	DelayToBarrier
	// DuplicateDelivery delivers the worker's runs twice. Exactly-once
	// is not part of the transport contract — sorted-run merging dedups
	// — so answers must not change.
	DuplicateDelivery
)

// String names the behavior.
func (k FaultKind) String() string {
	switch k {
	case KillBefore:
		return "kill-before"
	case KillAfter:
		return "kill-after"
	case DelayToBarrier:
		return "delay-to-barrier"
	case DuplicateDelivery:
		return "duplicate-delivery"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// Fault is one scheduled failure: when worker Worker sees its N-th
// (0-indexed) call of phase Op, Kind happens. The schedule is purely
// counter-driven — no timers, no goroutine races — so a recovery test
// that uses it is deterministic by construction.
type Fault struct {
	// Worker is the pool index the fault targets.
	Worker int
	// Op is the phase the fault attaches to.
	Op OpType
	// N is the 0-indexed occurrence of Op at which the fault fires.
	N int
	// Kind is the behavior.
	Kind FaultKind
}

// errFaultKilled marks an injected connection kill.
var errFaultKilled = errors.New("fault injected: connection killed")

// errFaultDead marks an op against a worker killed earlier.
var errFaultDead = errors.New("fault injected: worker is dead")

// FaultTransport wraps a Transport with a deterministic fault
// schedule. Each phase call advances per-worker counters; when a
// counter hits a scheduled Fault, the transport injects the fault —
// reporting a *WorkerError exactly like the TCP transport would — and,
// for kill faults, keeps the worker dead (every touch fails) until
// ReplaceWorker revives it. Because the schedule is counter-keyed
// rather than time-keyed, a test net built on it has no sleeps and no
// flakes.
type FaultTransport struct {
	inner Transport

	mu     sync.Mutex
	faults []Fault
	// fired marks schedule entries that already went off (each fault is
	// one-shot).
	fired []bool
	// counts is the per-(worker, op) call counter.
	counts map[opKey]int
	// dead marks killed workers awaiting replacement.
	dead map[int]bool
	// held are DelayToBarrier deliveries waiting for the next Barrier.
	held []heldDelivery
	// kills counts injected kill faults, for test assertions.
	kills int
}

// opKey keys the per-worker phase counters.
type opKey struct {
	worker int
	op     OpType
}

// heldDelivery is a delayed delivery (data or delta) with its
// original round.
type heldDelivery struct {
	round int
	ds    []exchange.Delivery
	dds   []DeltaDelivery
}

// NewFaultTransport wraps inner with the fault schedule. The wrapped
// transport satisfies Replaceable when inner does, which the recovery
// tests rely on.
func NewFaultTransport(inner Transport, faults ...Fault) *FaultTransport {
	return &FaultTransport{
		inner:  inner,
		faults: append([]Fault(nil), faults...),
		fired:  make([]bool, len(faults)),
		counts: make(map[opKey]int),
		dead:   make(map[int]bool),
	}
}

// Kills returns how many kill faults have fired.
func (ft *FaultTransport) Kills() int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.kills
}

// step advances worker w's counter for op and returns the fault firing
// at this occurrence, if any.
func (ft *FaultTransport) step(w int, op OpType) (Fault, bool) {
	k := opKey{worker: w, op: op}
	n := ft.counts[k]
	ft.counts[k] = n + 1
	for i, f := range ft.faults {
		if !ft.fired[i] && f.Worker == w && f.Op == op && f.N == n {
			ft.fired[i] = true
			if f.Kind == KillBefore || f.Kind == KillAfter {
				ft.dead[w] = true
				ft.kills++
			}
			return f, true
		}
	}
	return Fault{}, false
}

// Workers implements Transport.
func (ft *FaultTransport) Workers() int { return ft.inner.Workers() }

// Deliver implements Transport with the fault schedule applied per
// destination worker.
func (ft *FaultTransport) Deliver(ctx context.Context, round int, ds []exchange.Delivery) error {
	byWorker := make(map[int][]exchange.Delivery)
	for _, d := range ds {
		byWorker[d.To] = append(byWorker[d.To], d)
	}
	ft.mu.Lock()
	var pass []exchange.Delivery
	var errs []error
	for w := 0; w < ft.inner.Workers(); w++ {
		mine := byWorker[w]
		if ft.dead[w] {
			if len(mine) > 0 {
				errs = append(errs, &WorkerError{Worker: w, Err: errFaultDead})
			}
			continue
		}
		f, ok := ft.step(w, OpDeliver)
		if !ok {
			pass = append(pass, mine...)
			continue
		}
		switch f.Kind {
		case KillBefore:
			// The worker's slice never arrives.
			errs = append(errs, &WorkerError{Worker: w, Err: errFaultKilled})
		case KillAfter:
			// The slice arrives, then the connection dies; the
			// coordinator cannot tell, so it still sees a failure.
			pass = append(pass, mine...)
			errs = append(errs, &WorkerError{Worker: w, Err: errFaultKilled})
		case DelayToBarrier:
			ft.held = append(ft.held, heldDelivery{round: round, ds: mine})
		case DuplicateDelivery:
			pass = append(pass, mine...)
			pass = append(pass, mine...)
		}
	}
	ft.mu.Unlock()
	var err error
	if len(pass) > 0 {
		err = ft.inner.Deliver(ctx, round, pass)
	}
	if len(errs) > 0 {
		return errors.Join(append(errs, err)...)
	}
	return err
}

// ApplyDelta implements Transport with the fault schedule applied per
// destination worker, mirroring Deliver: kill faults lose (or race)
// the worker's delta slice, DelayToBarrier holds it for the next
// Barrier, DuplicateDelivery applies it twice — tombstones are
// idempotent and appended duplicates dedup at the gather merge, so
// results must not change.
func (ft *FaultTransport) ApplyDelta(ctx context.Context, round int, ds []DeltaDelivery) error {
	byWorker := make(map[int][]DeltaDelivery)
	for _, d := range ds {
		byWorker[d.To] = append(byWorker[d.To], d)
	}
	ft.mu.Lock()
	var pass []DeltaDelivery
	var errs []error
	for w := 0; w < ft.inner.Workers(); w++ {
		mine := byWorker[w]
		if ft.dead[w] {
			if len(mine) > 0 {
				errs = append(errs, &WorkerError{Worker: w, Err: errFaultDead})
			}
			continue
		}
		f, ok := ft.step(w, OpDelta)
		if !ok {
			pass = append(pass, mine...)
			continue
		}
		switch f.Kind {
		case KillBefore:
			// The worker's slice never arrives.
			errs = append(errs, &WorkerError{Worker: w, Err: errFaultKilled})
		case KillAfter:
			// The slice arrives, then the connection dies; the
			// coordinator cannot tell, so it still sees a failure.
			pass = append(pass, mine...)
			errs = append(errs, &WorkerError{Worker: w, Err: errFaultKilled})
		case DelayToBarrier:
			ft.held = append(ft.held, heldDelivery{round: round, dds: mine})
		case DuplicateDelivery:
			pass = append(pass, mine...)
			pass = append(pass, mine...)
		}
	}
	ft.mu.Unlock()
	var err error
	if len(pass) > 0 {
		err = ft.inner.ApplyDelta(ctx, round, pass)
	}
	if len(errs) > 0 {
		return errors.Join(append(errs, err)...)
	}
	return err
}

// Barrier implements Transport: held deliveries are injected first —
// the BSP contract only promises ingestion at the barrier — then the
// schedule applies per worker.
func (ft *FaultTransport) Barrier(ctx context.Context, round int) error {
	ft.mu.Lock()
	held := ft.held
	ft.held = nil
	var errs []error
	for w := 0; w < ft.inner.Workers(); w++ {
		if ft.dead[w] {
			errs = append(errs, &WorkerError{Worker: w, Err: errFaultDead})
			continue
		}
		if f, ok := ft.step(w, OpBarrier); ok {
			switch f.Kind {
			case KillBefore, KillAfter:
				errs = append(errs, &WorkerError{Worker: w, Err: errFaultKilled})
			}
		}
	}
	ft.mu.Unlock()
	for _, h := range held {
		if len(h.ds) > 0 {
			if err := ft.inner.Deliver(ctx, h.round, h.ds); err != nil {
				return err
			}
		}
		if len(h.dds) > 0 {
			if err := ft.inner.ApplyDelta(ctx, h.round, h.dds); err != nil {
				return err
			}
		}
	}
	err := ft.inner.Barrier(ctx, round)
	if len(errs) > 0 {
		return errors.Join(append(errs, err)...)
	}
	return err
}

// Join implements Transport. Kill faults report the targeted worker
// dead while the healthy pool still evaluates — exactly what a dead
// TCP connection looks like to the coordinator — and the replaced
// worker re-evaluates during replay.
func (ft *FaultTransport) Join(ctx context.Context, spec JoinSpec) error {
	ft.mu.Lock()
	var errs []error
	for w := 0; w < ft.inner.Workers(); w++ {
		if ft.dead[w] {
			errs = append(errs, &WorkerError{Worker: w, Err: errFaultDead})
			continue
		}
		if f, ok := ft.step(w, OpJoin); ok {
			switch f.Kind {
			case KillBefore, KillAfter:
				errs = append(errs, &WorkerError{Worker: w, Err: errFaultKilled})
			}
		}
	}
	ft.mu.Unlock()
	err := ft.inner.Join(ctx, spec)
	if len(errs) > 0 {
		return errors.Join(append(errs, err)...)
	}
	return err
}

// Gather implements Transport. A kill fault loses the whole gather —
// the coordinator cannot use a stream a dead worker never finished —
// so the caller heals and gathers again.
func (ft *FaultTransport) Gather(ctx context.Context, view string) ([]*exchange.Buffer, error) {
	ft.mu.Lock()
	var errs []error
	for w := 0; w < ft.inner.Workers(); w++ {
		if ft.dead[w] {
			errs = append(errs, &WorkerError{Worker: w, Err: errFaultDead})
			continue
		}
		if f, ok := ft.step(w, OpGather); ok {
			switch f.Kind {
			case KillBefore, KillAfter:
				errs = append(errs, &WorkerError{Worker: w, Err: errFaultKilled})
			}
		}
	}
	ft.mu.Unlock()
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return ft.inner.Gather(ctx, view)
}

// Close implements Transport.
func (ft *FaultTransport) Close() error { return ft.inner.Close() }

// replaceable returns the inner transport's recovery surface.
func (ft *FaultTransport) replaceable() (Replaceable, error) {
	rt, ok := ft.inner.(Replaceable)
	if !ok {
		return nil, fmt.Errorf("dist: fault transport wraps %T, which does not support recovery", ft.inner)
	}
	return rt, nil
}

// ReplaceWorker implements Replaceable: the worker is revived (its
// dead mark cleared) and the inner transport installs a fresh session.
func (ft *FaultTransport) ReplaceWorker(ctx context.Context, w int) error {
	rt, err := ft.replaceable()
	if err != nil {
		return err
	}
	if err := rt.ReplaceWorker(ctx, w); err != nil {
		return err
	}
	ft.mu.Lock()
	delete(ft.dead, w)
	ft.mu.Unlock()
	return nil
}

// JoinWorker implements Replaceable; replay traffic is not subject to
// the fault schedule but still fails against a dead worker.
func (ft *FaultTransport) JoinWorker(ctx context.Context, w int, spec JoinSpec) error {
	if err := ft.checkDead(w); err != nil {
		return err
	}
	rt, err := ft.replaceable()
	if err != nil {
		return err
	}
	return rt.JoinWorker(ctx, w, spec)
}

// Ping implements Replaceable.
func (ft *FaultTransport) Ping(ctx context.Context, w int, seq uint32) error {
	if err := ft.checkDead(w); err != nil {
		return err
	}
	rt, err := ft.replaceable()
	if err != nil {
		return err
	}
	return rt.Ping(ctx, w, seq)
}

// Announce implements Replaceable; dead workers miss the broadcast and
// surface as failures, which is how healing discovers them.
func (ft *FaultTransport) Announce(ctx context.Context, epoch uint32) error {
	rt, err := ft.replaceable()
	if err != nil {
		return err
	}
	var errs []error
	ft.mu.Lock()
	for w := range ft.dead {
		errs = append(errs, &WorkerError{Worker: w, Err: errFaultDead})
	}
	ft.mu.Unlock()
	if err := rt.Announce(ctx, epoch); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// Checkpoint implements Replaceable, with the same dead-worker
// surfacing as Announce.
func (ft *FaultTransport) Checkpoint(ctx context.Context, m *wire.Manifest) error {
	rt, err := ft.replaceable()
	if err != nil {
		return err
	}
	var errs []error
	ft.mu.Lock()
	for w := range ft.dead {
		errs = append(errs, &WorkerError{Worker: w, Err: errFaultDead})
	}
	ft.mu.Unlock()
	if err := rt.Checkpoint(ctx, m); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// checkDead reports a fault error when w was killed and not yet
// replaced.
func (ft *FaultTransport) checkDead(w int) error {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if ft.dead[w] {
		return &WorkerError{Worker: w, Err: errFaultDead}
	}
	return nil
}

// Deliveries during replay go through Deliver; a replayed delivery
// addresses one (revived) worker only and must bypass the schedule
// counters, which Deliver cannot distinguish. Instead of a side
// channel, the schedule simply never fires twice (faults are
// one-shot), so replay traffic only fails when the worker is dead —
// the semantics recovery expects.
var _ Replaceable = (*FaultTransport)(nil)
