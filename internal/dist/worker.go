package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/wire"
)

// Serve accepts coordinator connections on ln and serves each as an
// isolated worker session until ctx is done or the listener fails.
// Sessions are independent: concurrent executions (e.g. parallel
// mpcserve queries sharing one worker pool) never see each other's
// stores.
func Serve(ctx context.Context, ln net.Listener) error {
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			_ = ServeConn(ctx, conn)
		}()
	}
}

// ServeConn runs one worker session over conn: it expects a Hello,
// then processes Data, Barrier, Join and Gather frames in order until
// the coordinator closes the connection. Cancelling ctx aborts the
// session by poisoning the connection deadline. Protocol violations
// and evaluation failures are reported to the coordinator as Error
// frames and returned.
func ServeConn(ctx context.Context, conn net.Conn) error {
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	s := &session{store: newWorkerStore(), bw: bw, conn: conn}

	// The handshake frame comes from an unauthenticated dialer, so it
	// goes through the validating decoder; everything after it is our
	// own coordinator speaking the fast path.
	hello, err := wire.Decode(br)
	if err != nil {
		return fmt.Errorf("dist: worker handshake: %w", err)
	}
	if hello.Type != wire.TypeHello {
		return s.abort(fmt.Errorf("first frame is %s, want hello", hello.Type))
	}
	if hello.Hello.Version != wire.Version {
		return s.abort(fmt.Errorf("protocol version %d, worker speaks %d", hello.Hello.Version, wire.Version))
	}
	if hello.Hello.P == 0 || hello.Hello.Worker >= hello.Hello.P {
		return s.abort(fmt.Errorf("worker id %d out of pool [0,%d)", hello.Hello.Worker, hello.Hello.P))
	}
	s.id = hello.Hello.Worker
	if err := s.reply(&wire.Frame{Type: wire.TypeAck}); err != nil {
		return err
	}

	rd := wire.NewTrustedReader(br)
	for {
		f, err := rd.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil // coordinator closed the session
			}
			return fmt.Errorf("dist: worker %d: %w", s.id, err)
		}
		if err := s.handle(f); err != nil {
			return s.abort(err)
		}
	}
}

// session is the per-connection worker state.
type session struct {
	id    uint32
	store *workerStore
	bw    *bufio.Writer
	// conn is the raw connection, used for vectored gather replies
	// that bypass bw (which is flushed first to preserve order).
	conn net.Conn
	// head is the reusable fast-encoder scratch for gather replies.
	head []byte
	// epoch is the last recovery epoch the coordinator announced on
	// this session; announcements may only grow it, and checkpoint
	// manifests from before it are rejected as stale.
	epoch uint32
	// checkpoint is the last accepted checkpoint manifest.
	checkpoint *wire.Manifest
	// trace is the most recent span context the coordinator announced;
	// worker-side failures are attributed to its query id.
	trace wire.TraceHeader
}

// reply encodes a frame and flushes it.
func (s *session) reply(f *wire.Frame) error {
	if err := wire.Encode(s.bw, f); err != nil {
		return err
	}
	return s.bw.Flush()
}

// abort reports err to the coordinator as an Error frame (best
// effort) and returns it, attributed to the traced query when the
// session has seen a span context.
func (s *session) abort(err error) error {
	if s.trace.QueryID != "" {
		err = fmt.Errorf("query %s: %w", s.trace.QueryID, err)
	}
	_ = s.reply(&wire.Frame{Type: wire.TypeError, Msg: err.Error()})
	return fmt.Errorf("dist: worker %d: %w", s.id, err)
}

// handle processes one post-handshake frame.
func (s *session) handle(f *wire.Frame) error {
	switch f.Type {
	case wire.TypeData:
		if f.Data.Dest != s.id {
			return fmt.Errorf("data frame for shard %d delivered to worker %d", f.Data.Dest, s.id)
		}
		s.store.add(f.Data.Rel, f.Data.Buf)
		return nil
	case wire.TypeDelta:
		if f.Delta.Dest != s.id {
			return fmt.Errorf("delta frame for shard %d delivered to worker %d", f.Delta.Dest, s.id)
		}
		s.store.applyDelta(f.Delta.Store, f.Delta.View, f.Delta.Del, f.Delta.Buf)
		return nil
	case wire.TypeTrace:
		// Unacknowledged, like Data: the session records the most recent
		// span context so its work (and any failure) is attributable to
		// the traced query; the round barrier is the fence.
		s.trace = f.Trace
		return nil
	case wire.TypeBarrier:
		// Frames on the connection are processed in order, so reaching
		// the barrier means every preceding Data frame is ingested.
		return s.reply(&wire.Frame{Type: wire.TypeAck, Round: f.Round})
	case wire.TypeJoin:
		spec := JoinSpec{
			Query:    f.Join.Query,
			View:     f.Join.View,
			Strategy: f.Join.Strategy,
		}
		if len(f.Join.Bindings) > 0 {
			spec.Bindings = make(map[string]string, len(f.Join.Bindings))
			for _, b := range f.Join.Bindings {
				spec.Bindings[b[0]] = b[1]
			}
		}
		q, strategy, err := parseJoinSpec(spec)
		if err != nil {
			return err
		}
		if err := s.store.join(q, spec.Bindings, spec.View, strategy); err != nil {
			return err
		}
		return s.reply(&wire.Frame{Type: wire.TypeAck})
	case wire.TypePing:
		// A pong proves liveness and — frames being processed in order —
		// ingestion of everything the coordinator sent before the ping.
		return s.reply(&wire.Frame{Type: wire.TypePong, Round: f.Round})
	case wire.TypeEpoch:
		if f.Round < s.epoch {
			return fmt.Errorf("stale epoch %d announced, session at %d", f.Round, s.epoch)
		}
		s.epoch = f.Round
		return s.reply(&wire.Frame{Type: wire.TypeAck, Round: f.Round})
	case wire.TypeCheckpoint:
		if f.Checkpoint.Epoch < s.epoch {
			return fmt.Errorf("stale checkpoint epoch %d, session at %d", f.Checkpoint.Epoch, s.epoch)
		}
		s.epoch = f.Checkpoint.Epoch
		s.checkpoint = f.Checkpoint
		return s.reply(&wire.Frame{Type: wire.TypeAck, Round: f.Checkpoint.Round})
	case wire.TypeGather:
		runs := s.store.runs(f.View)
		frames := make([]*wire.Frame, 0, len(runs)+1)
		for _, run := range runs {
			frames = append(frames, &wire.Frame{Type: wire.TypeData, Data: wire.Data{
				Dest: s.id,
				Rel:  f.View,
				Buf:  run,
			}})
		}
		frames = append(frames, &wire.Frame{Type: wire.TypeDone, Count: uint32(len(runs))})
		if err := s.bw.Flush(); err != nil {
			return err
		}
		head, bufs, err := wire.AppendFrames(s.head[:0], frames)
		s.head = head
		if err != nil {
			return err
		}
		nb := net.Buffers(bufs)
		_, err = nb.WriteTo(s.conn)
		return err
	default:
		return fmt.Errorf("unexpected %s frame", f.Type)
	}
}
