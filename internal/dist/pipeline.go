package dist

import (
	"context"
	"fmt"

	"repro/internal/exchange"
	"repro/internal/relation"
)

// This file is the compute/communication overlap of the distributed
// runtime. In the plain BSP execution every phase is a pool-wide
// round trip: scatter, barrier-ack, join-ack, gather — four
// serialized synchronization points per round, during which workers
// that already hold their data sit idle. The paper charges only
// communication, so the runtime should be limited by bytes on the
// wire, not by coordinator round trips.
//
// A pipelined Cluster instead defers every transport operation
// between two Gather calls into a round script. At the Gather — the
// only point whose result the coordinator actually consumes — the
// script is executed as one per-worker stream: each worker receives
// its data frames, barrier, join command and gather request
// back-to-back and answers them in order, so it starts its local join
// the moment its own data has arrived, while other workers' frames
// are still in flight. The BSP barrier is thereby reduced to a
// completion fence inside each worker's stream rather than a
// pool-wide stall, without changing what any worker computes: frames
// on a session are processed in order, so per-worker semantics are
// identical to the unpipelined schedule.
//
// Statistics are unaffected by construction — the coordinator
// accounts received bits when it partitions, before any transport —
// and the journal/recovery path composes: deferred operations are
// journaled when deferred, a worker that dies mid-stream is replaced
// and replayed from the journal exactly as in sync mode, and the
// fence then retries only the idempotent gather. Transports that
// cannot stream a script (Loopback, FaultTransport) fall back to
// executing the deferred operations through the ordinary primitive
// methods at the fence — same calls, same order, same fault
// semantics, just relocated.

// scriptTransport is implemented by transports that can execute a
// whole deferred round script as one pipelined stream per worker,
// ending in a gather of view. Implementations must preserve the
// per-worker frame order of the script and return the gathered runs
// in worker order, exactly like Gather.
type scriptTransport interface {
	RunScript(ctx context.Context, ops []recOp, view string) ([]*exchange.Buffer, error)
}

// EnablePipelining switches the cluster to deferred, overlapped
// execution: Scatter, EndRound and Join queue their transport work,
// and the next Gather executes the whole script — as one stream per
// worker on transports that support it (TCP), or through the
// ordinary primitives otherwise. Results, statistics and recovery
// behavior are identical to the unpipelined schedule; only the
// synchronization structure changes. Call it before the first round;
// work still pending when the cluster is closed without a final
// Gather is discarded.
func (c *Cluster) EnablePipelining() {
	c.pipe = true
}

// Pipelined reports whether EnablePipelining was called.
func (c *Cluster) Pipelined() bool { return c.pipe }

// enqueue queues op for the next fence.
func (c *Cluster) enqueue(op recOp) {
	c.pending = append(c.pending, op)
}

// gatherPipelined is the fence: it executes every deferred operation
// followed by a gather of view, then broadcasts the checkpoints of
// the script's barriers when recovery is enabled.
func (c *Cluster) gatherPipelined(ctx context.Context, view string) ([]relation.Tuple, error) {
	ops := c.pending
	c.pending = nil
	var runs []*exchange.Buffer
	if st, ok := c.tr.(scriptTransport); ok {
		first := true
		err := c.attempt(ctx, true, func(ctx context.Context) error {
			var err error
			if first {
				first = false
				runs, err = st.RunScript(ctx, ops, view)
				return err
			}
			// A worker died mid-stream and was healed: its deliveries
			// and joins were replayed from the journal, and every
			// worker the script did not fail on has already run its
			// slice to completion, so only the idempotent gather is
			// retried — re-running the script would duplicate state.
			runs, err = c.tr.Gather(ctx, view)
			return err
		})
		if err != nil {
			return nil, err
		}
		if c.rec != nil {
			// Checkpoints ride after the stream: manifests reflect the
			// same durable tallies as sync mode (engines fence once per
			// round), they are just broadcast at the fence instead of
			// inside it.
			for _, op := range ops {
				if op.kind == opBarrier {
					if err := c.checkpoint(ctx, op.round); err != nil {
						return nil, err
					}
				}
			}
		}
	} else {
		if err := c.runScriptFallback(ctx, ops); err != nil {
			return nil, err
		}
		err := c.attempt(ctx, true, func(ctx context.Context) error {
			var err error
			runs, err = c.tr.Gather(ctx, view)
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	if len(runs) == 0 {
		return nil, nil
	}
	return exchange.MergeRuns(runs), nil
}

// runScriptFallback executes deferred operations through the
// primitive transport methods with the same attempt/heal policy and
// checkpoint placement as the sync path — the pipelined schedule on a
// non-streaming transport is the sync schedule relocated to the
// fence, which keeps fault-injection counters and recovery semantics
// byte-compatible.
func (c *Cluster) runScriptFallback(ctx context.Context, ops []recOp) error {
	for _, op := range ops {
		op := op
		var err error
		switch op.kind {
		case opDeliver:
			err = c.attempt(ctx, false, func(ctx context.Context) error {
				return c.tr.Deliver(ctx, op.round, op.ds)
			})
		case opDelta:
			err = c.attempt(ctx, false, func(ctx context.Context) error {
				return c.tr.ApplyDelta(ctx, op.round, op.dds)
			})
		case opBarrier:
			err = c.attempt(ctx, true, func(ctx context.Context) error {
				return c.tr.Barrier(ctx, op.round)
			})
			if err == nil && c.rec != nil {
				err = c.checkpoint(ctx, op.round)
			}
		case opJoin:
			err = c.attempt(ctx, false, func(ctx context.Context) error {
				return c.tr.Join(ctx, op.spec)
			})
		case opTrace:
			if tt, ok := c.tr.(traceTransport); ok {
				err = c.attempt(ctx, false, func(ctx context.Context) error {
					return tt.SendTrace(ctx, op.hdr)
				})
			}
		default:
			err = fmt.Errorf("dist: unknown deferred op kind %d", op.kind)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
