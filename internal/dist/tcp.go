package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/exchange"
	"repro/internal/wire"
)

// TCP is the socket Transport: one connection per worker, wire frames
// (internal/wire) for every primitive. A TCP value is one execution
// session — the workers' per-connection stores live exactly as long
// as it does — so callers that share a worker pool across concurrent
// executions dial one TCP transport per execution.
type TCP struct {
	conns []*workerConn
	// mu guards the address bookkeeping below, mutated only by the
	// (sequential) recovery path.
	mu sync.Mutex
	// addrs[i] is the address worker i currently runs at.
	addrs []string
	// spares are addresses of idle workers available for promotion when
	// a member dies; a replaced member's old address is recycled to the
	// back of this list.
	spares []string
}

// TCPOptions configures a pool dial beyond the member addresses.
type TCPOptions struct {
	// Spares are extra worker addresses: not part of the pool, but
	// available both at dial time (a dead member address is substituted
	// by a live spare) and mid-query (ReplaceWorker promotes one).
	Spares []string
}

// workerConn is the coordinator's end of one worker connection. The
// mutex serializes frame traffic per worker; distinct workers proceed
// in parallel.
type workerConn struct {
	id   int
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// rd is the trusted fast-path decoder over br: worker replies come
	// from this repo's own worker processes, past the validating
	// handshake.
	rd *wire.Reader
	// head is the reusable fast-encoder scratch for frame headers and
	// compressed payloads; word payloads are written zero-copy.
	head []byte
}

// writeFrames fast-encodes frames and writes them to the connection as
// one vectored write (raw word payloads go out as writev segments
// aliasing the buffers, with no per-word re-encoding), flushing any
// buffered control bytes first so frame order is preserved. The caller
// holds wc.mu via roundTrip.
func (wc *workerConn) writeFrames(frames []*wire.Frame) error {
	if err := wc.bw.Flush(); err != nil {
		return err
	}
	head, bufs, err := wire.AppendFrames(wc.head[:0], frames)
	wc.head = head
	if err != nil {
		return err
	}
	if len(bufs) == 0 {
		return nil
	}
	nb := net.Buffers(bufs)
	_, err = nb.WriteTo(wc.conn)
	return err
}

// ParseAddrs splits a comma-separated worker address list (the
// -workers flag of mpcrun and mpcserve): entries are trimmed, empty
// entries are rejected, and an all-whitespace input yields nil.
func ParseAddrs(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("dist: empty address in worker list %q", s)
		}
		addrs = append(addrs, a)
	}
	return addrs, nil
}

// DialTCP connects to one mpcworker process per address and performs
// the session handshake; the pool size is len(addrs) and worker i is
// addrs[i]. On any failure every already-opened connection is closed.
func DialTCP(ctx context.Context, addrs []string) (*TCP, error) {
	return DialTCPPool(ctx, addrs, TCPOptions{})
}

// DialTCPPool is DialTCP with a pool policy: when a member address is
// unreachable and opts.Spares holds live workers, the dial substitutes
// a spare for the dead member instead of failing, recycling the dead
// address to the back of the spare list. The pool size is always
// len(addrs).
func DialTCPPool(ctx context.Context, addrs []string, opts TCPOptions) (*TCP, error) {
	if len(addrs) == 0 {
		return nil, errors.New("dist: no worker addresses")
	}
	t := &TCP{
		conns:  make([]*workerConn, len(addrs)),
		addrs:  append([]string(nil), addrs...),
		spares: append([]string(nil), opts.Spares...),
	}
	for i := range addrs {
		wc, err := t.dialWorker(ctx, i)
		if err != nil {
			t.Close()
			return nil, err
		}
		t.conns[i] = wc
	}
	return t, nil
}

// dialWorker connects worker slot i to its current address, falling
// back to spares (and recycling the dead address) when it is
// unreachable. The caller holds no lock; slot bookkeeping is guarded
// by t.mu.
func (t *TCP) dialWorker(ctx context.Context, i int) (*workerConn, error) {
	t.mu.Lock()
	candidates := append([]string{t.addrs[i]}, t.spares...)
	t.mu.Unlock()
	var firstErr error
	for _, addr := range candidates {
		wc, err := dialHandshake(ctx, i, len(t.conns), addr)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		t.mu.Lock()
		if addr != t.addrs[i] {
			// A spare was promoted: remove it from the spare list and
			// recycle the dead member address behind the remaining spares.
			for j, s := range t.spares {
				if s == addr {
					t.spares = append(t.spares[:j], t.spares[j+1:]...)
					break
				}
			}
			t.spares = append(t.spares, t.addrs[i])
			t.addrs[i] = addr
		}
		t.mu.Unlock()
		return wc, nil
	}
	return nil, firstErr
}

// dialHandshake opens one worker connection and runs the session
// handshake for slot i of a pool of p.
func dialHandshake(ctx context.Context, i, p int, addr string) (*workerConn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: dial worker %d at %s: %w", i, addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	wc := &workerConn{
		id:   i,
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}
	wc.rd = wire.NewTrustedReader(wc.br)
	hello := &wire.Frame{Type: wire.TypeHello, Hello: wire.Hello{
		Version: wire.Version,
		Worker:  uint32(i),
		P:       uint32(p),
	}}
	err = wc.roundTrip(ctx, func() error {
		if err := wire.Encode(wc.bw, hello); err != nil {
			return err
		}
		if err := wc.bw.Flush(); err != nil {
			return err
		}
		return wc.expectAck(0, false)
	})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: handshake with worker %d at %s: %w", i, addr, err)
	}
	return wc, nil
}

// AddSpares appends spare worker addresses available for promotion by
// ReplaceWorker. Cluster.EnableRecovery calls this with
// RecoveryOptions.Spares.
func (t *TCP) AddSpares(addrs []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spares = append(t.spares, addrs...)
}

// Workers implements Transport.
func (t *TCP) Workers() int { return len(t.conns) }

// roundTrip runs op while ctx can interrupt the connection: if ctx is
// cancelled (or its deadline passes) the connection deadline is
// poisoned, so any blocked read or write inside op fails promptly
// instead of hanging on a stuck worker. The poison is scoped to the
// phase, not the connection: the next roundTrip starts by clearing the
// deadline, so a healthy connection that was collaterally poisoned by
// an expired per-phase context (recovery's PhaseTimeout) keeps working
// in later phases. Failures are attributed to the worker as a
// *WorkerError, which is what the recovery path keys on.
func (wc *workerConn) roundTrip(ctx context.Context, op func() error) error {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return &WorkerError{Worker: wc.id, Err: err}
	}
	wc.conn.SetDeadline(time.Time{})
	stop := context.AfterFunc(ctx, func() { wc.conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	if err := op(); err != nil {
		if ctx.Err() != nil {
			return &WorkerError{Worker: wc.id, Err: ctx.Err()}
		}
		return &WorkerError{Worker: wc.id, Err: err}
	}
	return nil
}

// expectAck reads the next frame and requires an Ack (with the given
// round echo when checkRound is set); an Error frame becomes the
// worker's reported error.
func (wc *workerConn) expectAck(round uint32, checkRound bool) error {
	f, err := wc.rd.Next()
	if err != nil {
		return err
	}
	switch f.Type {
	case wire.TypeAck:
		if checkRound && f.Round != round {
			return fmt.Errorf("ack for round %d, want %d", f.Round, round)
		}
		return nil
	case wire.TypeError:
		return fmt.Errorf("worker error: %s", f.Msg)
	default:
		return fmt.Errorf("unexpected %s frame, want ack", f.Type)
	}
}

// eachConn runs fn for every worker connection concurrently and joins
// the failures.
func (t *TCP) eachConn(fn func(wc *workerConn) error) error {
	errs := make([]error, len(t.conns))
	var wg sync.WaitGroup
	for i, wc := range t.conns {
		wg.Add(1)
		go func(i int, wc *workerConn) {
			defer wg.Done()
			errs[i] = fn(wc)
		}(i, wc)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// dataFrames converts one worker's deliveries to wire frames.
func dataFrames(frames []*wire.Frame, round int, ds []exchange.Delivery) []*wire.Frame {
	for _, d := range ds {
		frames = append(frames, &wire.Frame{Type: wire.TypeData, Data: wire.Data{
			Round: uint32(round),
			Dest:  uint32(d.To),
			Rel:   d.Rel,
			Buf:   d.Buf,
		}})
	}
	return frames
}

// deltaFrames converts one worker's delta deliveries to wire frames.
func deltaFrames(frames []*wire.Frame, round int, ds []DeltaDelivery) []*wire.Frame {
	for _, d := range ds {
		frames = append(frames, &wire.Frame{Type: wire.TypeDelta, Delta: wire.Delta{
			Round: uint32(round),
			Dest:  uint32(d.To),
			Store: d.Store,
			View:  d.View,
			Del:   d.Del,
			Buf:   d.Buf,
		}})
	}
	return frames
}

// ApplyDelta implements Transport: delta runs are fast-framed and
// written to their destination connections like Deliver, one vectored
// send per worker. Delta frames are unacknowledged; Barrier is the
// ingestion fence.
func (t *TCP) ApplyDelta(ctx context.Context, round int, ds []DeltaDelivery) error {
	byWorker := make([][]DeltaDelivery, len(t.conns))
	for _, d := range ds {
		if d.To < 0 || d.To >= len(t.conns) {
			return fmt.Errorf("dist: delta to worker %d out of range [0,%d)", d.To, len(t.conns))
		}
		byWorker[d.To] = append(byWorker[d.To], d)
	}
	return t.eachConn(func(wc *workerConn) error {
		mine := byWorker[wc.id]
		if len(mine) == 0 {
			return nil
		}
		return wc.roundTrip(ctx, func() error {
			return wc.writeFrames(deltaFrames(nil, round, mine))
		})
	})
}

// Deliver implements Transport: runs are fast-framed and written to
// their destination connections as one vectored send per worker, all
// workers in parallel. Barrier synchronizes.
func (t *TCP) Deliver(ctx context.Context, round int, ds []exchange.Delivery) error {
	byWorker := make([][]exchange.Delivery, len(t.conns))
	for _, d := range ds {
		if d.To < 0 || d.To >= len(t.conns) {
			return fmt.Errorf("dist: delivery to worker %d out of range [0,%d)", d.To, len(t.conns))
		}
		byWorker[d.To] = append(byWorker[d.To], d)
	}
	return t.eachConn(func(wc *workerConn) error {
		mine := byWorker[wc.id]
		if len(mine) == 0 {
			return nil
		}
		return wc.roundTrip(ctx, func() error {
			return wc.writeFrames(dataFrames(nil, round, mine))
		})
	})
}

// Barrier implements Transport: every connection flushes its buffered
// data frames, sends the barrier, and waits for the worker's ack.
func (t *TCP) Barrier(ctx context.Context, round int) error {
	return t.eachConn(func(wc *workerConn) error {
		return wc.roundTrip(ctx, func() error {
			f := &wire.Frame{Type: wire.TypeBarrier, Round: uint32(round)}
			if err := wire.Encode(wc.bw, f); err != nil {
				return err
			}
			if err := wc.bw.Flush(); err != nil {
				return err
			}
			return wc.expectAck(uint32(round), true)
		})
	})
}

// joinFrame builds the wire frame for a local-evaluation command.
func joinFrame(spec JoinSpec) *wire.Frame {
	f := &wire.Frame{Type: wire.TypeJoin, Join: wire.Join{
		Query:    spec.Query,
		View:     spec.View,
		Strategy: spec.Strategy,
	}}
	for atom, store := range spec.Bindings {
		f.Join.Bindings = append(f.Join.Bindings, [2]string{atom, store})
	}
	return f
}

// Join implements Transport.
func (t *TCP) Join(ctx context.Context, spec JoinSpec) error {
	f := joinFrame(spec)
	return t.eachConn(func(wc *workerConn) error {
		return wc.roundTrip(ctx, func() error {
			if err := wire.Encode(wc.bw, f); err != nil {
				return err
			}
			if err := wc.bw.Flush(); err != nil {
				return err
			}
			return wc.expectAck(0, false)
		})
	})
}

// readGatherStream consumes one worker's gather reply — Data frames
// terminated by a Done carrying the run count — and returns the runs.
// The caller holds wc.mu via roundTrip.
func (wc *workerConn) readGatherStream(view string) ([]*exchange.Buffer, error) {
	var runs []*exchange.Buffer
	for {
		f, err := wc.rd.Next()
		if err != nil {
			return nil, err
		}
		switch f.Type {
		case wire.TypeData:
			if f.Data.Rel != view {
				return nil, fmt.Errorf("gather of %q answered with run for %q", view, f.Data.Rel)
			}
			runs = append(runs, f.Data.Buf)
		case wire.TypeDone:
			if int(f.Count) != len(runs) {
				return nil, fmt.Errorf("gather of %q: %d runs streamed, done frame says %d",
					view, len(runs), f.Count)
			}
			return runs, nil
		case wire.TypeError:
			return nil, fmt.Errorf("worker error: %s", f.Msg)
		default:
			return nil, fmt.Errorf("unexpected %s frame in gather stream", f.Type)
		}
	}
}

// Gather implements Transport: every worker streams its runs back in
// parallel; the result keeps worker order (all of worker 0's runs,
// then worker 1's, …) so gathers are deterministic.
func (t *TCP) Gather(ctx context.Context, view string) ([]*exchange.Buffer, error) {
	perWorker := make([][]*exchange.Buffer, len(t.conns))
	err := t.eachConn(func(wc *workerConn) error {
		return wc.roundTrip(ctx, func() error {
			if err := wire.Encode(wc.bw, &wire.Frame{Type: wire.TypeGather, View: view}); err != nil {
				return err
			}
			if err := wc.bw.Flush(); err != nil {
				return err
			}
			runs, err := wc.readGatherStream(view)
			if err != nil {
				return err
			}
			perWorker[wc.id] = runs
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	var runs []*exchange.Buffer
	for _, rs := range perWorker {
		runs = append(runs, rs...)
	}
	return runs, nil
}

// RunScript implements scriptTransport: the pipelined fence. Each
// worker's whole slice of the deferred round script — data frames,
// barriers, joins, and the final gather — is written as one burst of
// vectored sends with no intermediate round trips, then the worker's
// replies (barrier and join acks, then the gather stream) are read
// back. Because frames on a session are processed in order, a worker
// starts its local join the moment its own data has arrived,
// regardless of how far the coordinator has gotten with the other
// workers: compute overlaps communication across the pool, and the
// BSP barrier degrades to a per-worker completion fence.
func (t *TCP) RunScript(ctx context.Context, ops []recOp, view string) ([]*exchange.Buffer, error) {
	for _, op := range ops {
		for _, d := range op.ds {
			if d.To < 0 || d.To >= len(t.conns) {
				return nil, fmt.Errorf("dist: delivery to worker %d out of range [0,%d)", d.To, len(t.conns))
			}
		}
		for _, d := range op.dds {
			if d.To < 0 || d.To >= len(t.conns) {
				return nil, fmt.Errorf("dist: delta to worker %d out of range [0,%d)", d.To, len(t.conns))
			}
		}
	}
	perWorker := make([][]*exchange.Buffer, len(t.conns))
	err := t.eachConn(func(wc *workerConn) error {
		return wc.roundTrip(ctx, func() error {
			var frames []*wire.Frame
			for _, op := range ops {
				switch op.kind {
				case opDeliver:
					var mine []exchange.Delivery
					for _, d := range op.ds {
						if d.To == wc.id {
							mine = append(mine, d)
						}
					}
					frames = dataFrames(frames, op.round, mine)
				case opDelta:
					var mine []DeltaDelivery
					for _, d := range op.dds {
						if d.To == wc.id {
							mine = append(mine, d)
						}
					}
					frames = deltaFrames(frames, op.round, mine)
				case opBarrier:
					frames = append(frames, &wire.Frame{Type: wire.TypeBarrier, Round: uint32(op.round)})
				case opJoin:
					frames = append(frames, joinFrame(op.spec))
				case opTrace:
					frames = append(frames, &wire.Frame{Type: wire.TypeTrace, Trace: op.hdr})
				}
			}
			frames = append(frames, &wire.Frame{Type: wire.TypeGather, View: view})
			if err := wc.writeFrames(frames); err != nil {
				return err
			}
			// The worker answers in script order: one ack per barrier and
			// join, then the gather stream. Acks are tiny, so reading them
			// only after the full write cannot deadlock; the gather reply
			// itself starts only after the worker consumed our entire
			// script.
			for _, op := range ops {
				switch op.kind {
				case opBarrier:
					if err := wc.expectAck(uint32(op.round), true); err != nil {
						return err
					}
				case opJoin:
					if err := wc.expectAck(0, false); err != nil {
						return err
					}
				}
			}
			runs, err := wc.readGatherStream(view)
			if err != nil {
				return err
			}
			perWorker[wc.id] = runs
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	var runs []*exchange.Buffer
	for _, rs := range perWorker {
		runs = append(runs, rs...)
	}
	return runs, nil
}

// SendTrace implements traceTransport: the round's span context is
// written to every connection unacknowledged, like Data frames; the
// round barrier is the fence that proves ingestion.
func (t *TCP) SendTrace(ctx context.Context, h wire.TraceHeader) error {
	f := &wire.Frame{Type: wire.TypeTrace, Trace: h}
	return t.eachConn(func(wc *workerConn) error {
		return wc.roundTrip(ctx, func() error {
			return wc.writeFrames([]*wire.Frame{f})
		})
	})
}

// ReplaceWorker implements Replaceable: it closes worker w's dead
// connection and installs a fresh session, re-dialing the worker's
// address with spare fallback. The new session is empty; the caller
// (Cluster.heal) replays journaled state into it.
func (t *TCP) ReplaceWorker(ctx context.Context, w int) error {
	if w < 0 || w >= len(t.conns) {
		return fmt.Errorf("dist: replace worker %d out of range [0,%d)", w, len(t.conns))
	}
	old := t.conns[w]
	wc, err := t.dialWorker(ctx, w)
	if err != nil {
		return err
	}
	t.conns[w] = wc
	if old != nil && old.conn != nil {
		old.conn.Close()
	}
	return nil
}

// JoinWorker implements Replaceable: the local-evaluation command for
// worker w only, used when replaying a replaced worker.
func (t *TCP) JoinWorker(ctx context.Context, w int, spec JoinSpec) error {
	if w < 0 || w >= len(t.conns) {
		return fmt.Errorf("dist: join worker %d out of range [0,%d)", w, len(t.conns))
	}
	f := joinFrame(spec)
	wc := t.conns[w]
	return wc.roundTrip(ctx, func() error {
		if err := wire.Encode(wc.bw, f); err != nil {
			return err
		}
		if err := wc.bw.Flush(); err != nil {
			return err
		}
		return wc.expectAck(0, false)
	})
}

// Ping implements Replaceable: a heartbeat round trip through worker
// w. Its returned Pong also proves the worker ingested every frame
// sent before it on the session.
func (t *TCP) Ping(ctx context.Context, w int, seq uint32) error {
	if w < 0 || w >= len(t.conns) {
		return fmt.Errorf("dist: ping worker %d out of range [0,%d)", w, len(t.conns))
	}
	wc := t.conns[w]
	return wc.roundTrip(ctx, func() error {
		if err := wire.Encode(wc.bw, &wire.Frame{Type: wire.TypePing, Round: seq}); err != nil {
			return err
		}
		if err := wc.bw.Flush(); err != nil {
			return err
		}
		f, err := wc.rd.Next()
		if err != nil {
			return err
		}
		switch f.Type {
		case wire.TypePong:
			if f.Round != seq {
				return fmt.Errorf("pong echoes %d, want %d", f.Round, seq)
			}
			return nil
		case wire.TypeError:
			return fmt.Errorf("worker error: %s", f.Msg)
		default:
			return fmt.Errorf("unexpected %s frame, want pong", f.Type)
		}
	})
}

// Announce implements Replaceable: broadcast the recovery epoch, every
// worker acking it (echoing the epoch) or rejecting it as stale.
func (t *TCP) Announce(ctx context.Context, epoch uint32) error {
	return t.eachConn(func(wc *workerConn) error {
		return wc.roundTrip(ctx, func() error {
			if err := wire.Encode(wc.bw, &wire.Frame{Type: wire.TypeEpoch, Round: epoch}); err != nil {
				return err
			}
			if err := wc.bw.Flush(); err != nil {
				return err
			}
			return wc.expectAck(epoch, true)
		})
	})
}

// Checkpoint implements Replaceable: broadcast the round manifest,
// every worker acking it (echoing the round) after validating its
// epoch.
func (t *TCP) Checkpoint(ctx context.Context, m *wire.Manifest) error {
	f := &wire.Frame{Type: wire.TypeCheckpoint, Checkpoint: m}
	return t.eachConn(func(wc *workerConn) error {
		return wc.roundTrip(ctx, func() error {
			if err := wire.Encode(wc.bw, f); err != nil {
				return err
			}
			if err := wc.bw.Flush(); err != nil {
				return err
			}
			return wc.expectAck(m.Round, true)
		})
	})
}

// Close implements Transport: all connections are closed; workers
// drop the session stores when they observe the close.
func (t *TCP) Close() error {
	var errs []error
	for _, wc := range t.conns {
		if wc != nil && wc.conn != nil {
			if err := wc.conn.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}
