package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/exchange"
	"repro/internal/wire"
)

// TCP is the socket Transport: one connection per worker, wire frames
// (internal/wire) for every primitive. A TCP value is one execution
// session — the workers' per-connection stores live exactly as long
// as it does — so callers that share a worker pool across concurrent
// executions dial one TCP transport per execution.
type TCP struct {
	conns []*workerConn
}

// workerConn is the coordinator's end of one worker connection. The
// mutex serializes frame traffic per worker; distinct workers proceed
// in parallel.
type workerConn struct {
	id   int
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// ParseAddrs splits a comma-separated worker address list (the
// -workers flag of mpcrun and mpcserve): entries are trimmed, empty
// entries are rejected, and an all-whitespace input yields nil.
func ParseAddrs(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("dist: empty address in worker list %q", s)
		}
		addrs = append(addrs, a)
	}
	return addrs, nil
}

// DialTCP connects to one mpcworker process per address and performs
// the session handshake; the pool size is len(addrs) and worker i is
// addrs[i]. On any failure every already-opened connection is closed.
func DialTCP(ctx context.Context, addrs []string) (*TCP, error) {
	if len(addrs) == 0 {
		return nil, errors.New("dist: no worker addresses")
	}
	t := &TCP{conns: make([]*workerConn, len(addrs))}
	var d net.Dialer
	for i, addr := range addrs {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("dist: dial worker %d at %s: %w", i, addr, err)
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		wc := &workerConn{
			id:   i,
			conn: conn,
			br:   bufio.NewReaderSize(conn, 1<<16),
			bw:   bufio.NewWriterSize(conn, 1<<16),
		}
		t.conns[i] = wc
		hello := &wire.Frame{Type: wire.TypeHello, Hello: wire.Hello{
			Version: wire.Version,
			Worker:  uint32(i),
			P:       uint32(len(addrs)),
		}}
		err = wc.roundTrip(ctx, func() error {
			if err := wire.Encode(wc.bw, hello); err != nil {
				return err
			}
			if err := wc.bw.Flush(); err != nil {
				return err
			}
			return wc.expectAck(0, false)
		})
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("dist: handshake with worker %d at %s: %w", i, addr, err)
		}
	}
	return t, nil
}

// Workers implements Transport.
func (t *TCP) Workers() int { return len(t.conns) }

// roundTrip runs op while ctx can interrupt the connection: if ctx is
// cancelled (or its deadline passes) the connection deadline is
// poisoned, so any blocked read or write inside op fails promptly
// instead of hanging on a stuck worker. A poisoned connection stays
// dead — the session is aborted anyway.
func (wc *workerConn) roundTrip(ctx context.Context, op func() error) error {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	stop := context.AfterFunc(ctx, func() { wc.conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	if err := op(); err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("dist: worker %d: %w", wc.id, ctx.Err())
		}
		return fmt.Errorf("dist: worker %d: %w", wc.id, err)
	}
	return nil
}

// expectAck reads the next frame and requires an Ack (with the given
// round echo when checkRound is set); an Error frame becomes the
// worker's reported error.
func (wc *workerConn) expectAck(round uint32, checkRound bool) error {
	f, err := wire.Decode(wc.br)
	if err != nil {
		return err
	}
	switch f.Type {
	case wire.TypeAck:
		if checkRound && f.Round != round {
			return fmt.Errorf("ack for round %d, want %d", f.Round, round)
		}
		return nil
	case wire.TypeError:
		return fmt.Errorf("worker error: %s", f.Msg)
	default:
		return fmt.Errorf("unexpected %s frame, want ack", f.Type)
	}
}

// eachConn runs fn for every worker connection concurrently and joins
// the failures.
func (t *TCP) eachConn(fn func(wc *workerConn) error) error {
	errs := make([]error, len(t.conns))
	var wg sync.WaitGroup
	for i, wc := range t.conns {
		wg.Add(1)
		go func(i int, wc *workerConn) {
			defer wg.Done()
			errs[i] = fn(wc)
		}(i, wc)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Deliver implements Transport: runs are framed and written to their
// destination connections, all workers in parallel. Frames are only
// buffered here; Barrier flushes and synchronizes.
func (t *TCP) Deliver(ctx context.Context, round int, ds []exchange.Delivery) error {
	byWorker := make([][]exchange.Delivery, len(t.conns))
	for _, d := range ds {
		if d.To < 0 || d.To >= len(t.conns) {
			return fmt.Errorf("dist: delivery to worker %d out of range [0,%d)", d.To, len(t.conns))
		}
		byWorker[d.To] = append(byWorker[d.To], d)
	}
	return t.eachConn(func(wc *workerConn) error {
		mine := byWorker[wc.id]
		if len(mine) == 0 {
			return nil
		}
		return wc.roundTrip(ctx, func() error {
			for _, d := range mine {
				f := &wire.Frame{Type: wire.TypeData, Data: wire.Data{
					Round: uint32(round),
					Dest:  uint32(d.To),
					Rel:   d.Rel,
					Buf:   d.Buf,
				}}
				if err := wire.Encode(wc.bw, f); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

// Barrier implements Transport: every connection flushes its buffered
// data frames, sends the barrier, and waits for the worker's ack.
func (t *TCP) Barrier(ctx context.Context, round int) error {
	return t.eachConn(func(wc *workerConn) error {
		return wc.roundTrip(ctx, func() error {
			f := &wire.Frame{Type: wire.TypeBarrier, Round: uint32(round)}
			if err := wire.Encode(wc.bw, f); err != nil {
				return err
			}
			if err := wc.bw.Flush(); err != nil {
				return err
			}
			return wc.expectAck(uint32(round), true)
		})
	})
}

// Join implements Transport.
func (t *TCP) Join(ctx context.Context, spec JoinSpec) error {
	f := &wire.Frame{Type: wire.TypeJoin, Join: wire.Join{
		Query:    spec.Query,
		View:     spec.View,
		Strategy: spec.Strategy,
	}}
	for atom, store := range spec.Bindings {
		f.Join.Bindings = append(f.Join.Bindings, [2]string{atom, store})
	}
	return t.eachConn(func(wc *workerConn) error {
		return wc.roundTrip(ctx, func() error {
			if err := wire.Encode(wc.bw, f); err != nil {
				return err
			}
			if err := wc.bw.Flush(); err != nil {
				return err
			}
			return wc.expectAck(0, false)
		})
	})
}

// Gather implements Transport: every worker streams its runs back in
// parallel; the result keeps worker order (all of worker 0's runs,
// then worker 1's, …) so gathers are deterministic.
func (t *TCP) Gather(ctx context.Context, view string) ([]*exchange.Buffer, error) {
	perWorker := make([][]*exchange.Buffer, len(t.conns))
	err := t.eachConn(func(wc *workerConn) error {
		return wc.roundTrip(ctx, func() error {
			if err := wire.Encode(wc.bw, &wire.Frame{Type: wire.TypeGather, View: view}); err != nil {
				return err
			}
			if err := wc.bw.Flush(); err != nil {
				return err
			}
			for {
				f, err := wire.Decode(wc.br)
				if err != nil {
					return err
				}
				switch f.Type {
				case wire.TypeData:
					if f.Data.Rel != view {
						return fmt.Errorf("gather of %q answered with run for %q", view, f.Data.Rel)
					}
					perWorker[wc.id] = append(perWorker[wc.id], f.Data.Buf)
				case wire.TypeDone:
					if int(f.Count) != len(perWorker[wc.id]) {
						return fmt.Errorf("gather of %q: %d runs streamed, done frame says %d",
							view, len(perWorker[wc.id]), f.Count)
					}
					return nil
				case wire.TypeError:
					return fmt.Errorf("worker error: %s", f.Msg)
				default:
					return fmt.Errorf("unexpected %s frame in gather stream", f.Type)
				}
			}
		})
	})
	if err != nil {
		return nil, err
	}
	var runs []*exchange.Buffer
	for _, rs := range perWorker {
		runs = append(runs, rs...)
	}
	return runs, nil
}

// Close implements Transport: all connections are closed; workers
// drop the session stores when they observe the close.
func (t *TCP) Close() error {
	var errs []error
	for _, wc := range t.conns {
		if wc != nil && wc.conn != nil {
			if err := wc.conn.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}
