package dist

import (
	"context"
	"sync"
	"time"
)

// Registry is the coordinator-side membership view of a shared worker
// pool: p member addresses that executions dial, plus spare addresses
// that replace members found dead. It reconciles desired state (p
// live members) with actual state (what a heartbeat probe observes) —
// a thin controller loop. mpcserve runs one Registry for its pool so
// a crashed worker is swapped out in the background instead of
// failing every query from then on.
type Registry struct {
	mu         sync.Mutex
	members    []string
	spares     []string
	generation uint64
}

// NewRegistry returns a registry over the member and spare addresses.
func NewRegistry(members, spares []string) *Registry {
	return &Registry{
		members: append([]string(nil), members...),
		spares:  append([]string(nil), spares...),
	}
}

// Members returns the current member addresses (the pool to dial).
func (r *Registry) Members() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.members...)
}

// Spares returns the current spare addresses.
func (r *Registry) Spares() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.spares...)
}

// Generation counts membership changes; it ticks once per Reconcile
// that swapped at least one member.
func (r *Registry) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.generation
}

// probe checks one worker for liveness: dial, handshake, heartbeat
// round trip, close. A worker that completes it can serve a session.
func probe(ctx context.Context, addr string) bool {
	t, err := DialTCP(ctx, []string{addr})
	if err != nil {
		return false
	}
	defer t.Close()
	return t.Ping(ctx, 0, 1) == nil
}

// Reconcile probes every member concurrently and swaps each dead
// member for a live spare; dead member addresses are recycled to the
// back of the spare list (a restarted process at the old address
// becomes promotable again). It returns how many members were
// swapped. Dead members with no live spare left keep their slot — a
// later Reconcile retries them.
func (r *Registry) Reconcile(ctx context.Context) int {
	members := r.Members()
	alive := make([]bool, len(members))
	var wg sync.WaitGroup
	for i, addr := range members {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			alive[i] = probe(ctx, addr)
		}(i, addr)
	}
	wg.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	swapped := 0
	for i, ok := range alive {
		if ok || r.members[i] != members[i] {
			continue // live, or someone else already swapped the slot
		}
		// Try each spare at most once; dead spares rotate to the back
		// so later slots and later reconciles retry them last.
		for tries := len(r.spares); tries > 0; tries-- {
			cand := r.spares[0]
			r.spares = r.spares[1:]
			if probe(ctx, cand) {
				r.spares = append(r.spares, r.members[i])
				r.members[i] = cand
				swapped++
				break
			}
			r.spares = append(r.spares, cand)
		}
	}
	if swapped > 0 {
		r.generation++
	}
	return swapped
}

// Run reconciles every interval until ctx is done — the background
// heartbeat loop a server mounts next to its query handlers.
func (r *Registry) Run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.Reconcile(ctx)
		}
	}
}
