// Package dist is the distributed worker runtime of the reproduction:
// it runs the MPC(ε) bulk-synchronous rounds — scatter, barrier, local
// join, gather — across a pool of workers that may be goroutines in
// this process or separate processes reached over TCP.
//
// The paper's model is a cluster of p servers exchanging data in
// synchronous communication rounds. The engines (hypercube,
// multiround, skew) express exactly that shape, so the package
// factors it into three pieces:
//
//   - Transport: how sealed columnar runs and BSP commands reach the
//     pool. Loopback keeps everything in-process (the historical
//     simulation path, now behind the interface); TCP ships
//     length-prefixed wire frames (internal/wire) to cmd/mpcworker
//     processes, one connection per worker.
//   - Cluster: the coordinator. It partitions relations through the
//     columnar exchange layer, performs the per-round MPC(ε) receive
//     accounting coordinator-side — so statistics are identical
//     across transports by construction — and drives the transport.
//   - the worker session (Serve/ServeConn): the remote half. Each
//     accepted connection is an isolated session with its own store,
//     so one worker process can serve many concurrent executions.
//
// Communication accounting never depends on the transport: a run of t
// tuples costs t·arity·⌈log2(n+1)⌉ bits whether it crosses a socket
// or a pointer, which is what lets the differential tests demand
// byte-identical answers and round statistics from both paths.
package dist

import (
	"context"

	"repro/internal/exchange"
)

// JoinSpec instructs every worker to evaluate a conjunctive query
// over its stored tuples and store the result locally under a view
// name.
type JoinSpec struct {
	// Query is the query in query.Parse syntax.
	Query string
	// View is the store name the per-worker result lands under.
	View string
	// Bindings maps atom names to store names when they differ; atoms
	// without an entry read the store of their own name.
	Bindings map[string]string
	// Strategy is the numeric value of the localjoin.Strategy the
	// workers must use.
	Strategy uint8
}

// DeltaDelivery ships one sealed delta run to one worker as part of
// incremental view maintenance: the tuples either retract from (Del)
// or extend the store named Store. An extending delta additionally
// registers its run under View when View is non-empty, so a
// maintenance join can bind one atom to exactly the fresh tuples
// without rescanning the store.
type DeltaDelivery struct {
	// To is the destination worker.
	To int
	// Store is the store name the delta maintains.
	Store string
	// View, when non-empty and Del is false, is an extra store name the
	// run is also registered under (the Δ-relation of a delta join).
	View string
	// Del marks a retraction: the tuples are tombstoned out of Store.
	Del bool
	// Buf is the sealed columnar run of delta tuples.
	Buf *exchange.Buffer
}

// Transport carries the BSP primitives of one execution to a pool of
// workers. Implementations must tolerate concurrent calls from the
// per-worker goroutines a Cluster fans out, and every method must
// honor ctx: cancellation or deadline expiry surfaces as an error
// instead of a hang, even when a worker is stuck or its connection
// has died.
//
// A Transport instance represents one execution session: workers
// accumulate state (received runs, materialized views) across calls
// and drop it when the transport closes.
type Transport interface {
	// Workers returns the pool size p.
	Workers() int
	// Deliver ships sealed runs to their destination workers as part
	// of the given round.
	Deliver(ctx context.Context, round int, ds []exchange.Delivery) error
	// ApplyDelta ships delta runs to their destination workers as part
	// of the given round: retractions tombstone tuples out of their
	// store, extensions append (and register the Δ view). Like Deliver
	// it is unacknowledged; the round's Barrier is the ingestion fence.
	ApplyDelta(ctx context.Context, round int, ds []DeltaDelivery) error
	// Barrier blocks until every worker has ingested all runs
	// delivered for the round.
	Barrier(ctx context.Context, round int) error
	// Join runs the local-evaluation command on every worker.
	Join(ctx context.Context, spec JoinSpec) error
	// Gather returns the sealed runs every worker holds under the
	// view, in worker order.
	Gather(ctx context.Context, view string) ([]*exchange.Buffer, error)
	// Close ends the session and releases its resources.
	Close() error
}
