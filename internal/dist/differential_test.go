package dist_test

import (
	"math/big"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hypercube"
	"repro/internal/mpc"
	"repro/internal/multiround"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/skew"
)

// The differential test net: every query family × engine runs over
// both the loopback and the TCP transport on matching and Zipf
// inputs, and every run must match the single-node ground truth
// byte-for-byte — answers AND round statistics (the accounting is
// coordinator-side, so the two transports must agree exactly).

// sameTuples compares answer sets element-wise (nil and empty are
// both "no answers").
func sameTuples(a, b []relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// zipfDatabase builds a database whose binary relations all have a
// Zipf-skewed first column — the adversarial counterpart of the
// paper's matching databases.
func zipfDatabase(rng *rand.Rand, q *query.Query, n int, s float64) *relation.Database {
	db := relation.NewDatabase(n)
	for _, a := range q.Atoms {
		db.AddRelation(relation.SkewedZipf(rng, a.Name, a.Vars, n, s))
	}
	return db
}

// engineRun executes q over db on p workers with the given transport
// (nil = loopback) and returns sorted deduplicated answers plus the
// communication record.
type engineRun func(t *testing.T, q *query.Query, db *relation.Database, p int, tr dist.Transport) ([]relation.Tuple, *mpc.Stats)

func runHypercube(t *testing.T, q *query.Query, db *relation.Database, p int, tr dist.Transport) ([]relation.Tuple, *mpc.Stats) {
	t.Helper()
	res, err := hypercube.Run(q, db, p, hypercube.Options{Seed: 23, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	return res.Answers, res.Stats
}

func runMultiround(t *testing.T, q *query.Query, db *relation.Database, p int, tr dist.Transport) ([]relation.Tuple, *mpc.Stats) {
	t.Helper()
	pl, err := multiround.Build(q, big.NewRat(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := multiround.Execute(pl, db, p, multiround.Options{Seed: 23, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	return res.Answers, res.Stats
}

// TestDifferentialFamilies is the family × engine × transport × input
// matrix for the hypercube and multiround engines.
func TestDifferentialFamilies(t *testing.T) {
	const p = 4
	addrs := startPool(t, p)
	families := []struct {
		name string
		q    *query.Query
	}{
		{"triangle", query.Cycle(3)},
		{"star", query.Star(3)},
		{"chain", query.Chain(4)},
	}
	engines := []struct {
		name string
		run  engineRun
	}{
		{"hypercube", runHypercube},
		{"multiround", runMultiround},
	}
	inputs := []struct {
		name string
		db   func(q *query.Query, salt uint64) *relation.Database
	}{
		{"matching", func(q *query.Query, salt uint64) *relation.Database {
			return relation.MatchingDatabase(rand.New(rand.NewPCG(100, salt)), q, 300)
		}},
		{"zipf", func(q *query.Query, salt uint64) *relation.Database {
			return zipfDatabase(rand.New(rand.NewPCG(200, salt)), q, 200, 1.1)
		}},
	}
	for fi, fam := range families {
		for _, eng := range engines {
			for _, in := range inputs {
				t.Run(fam.name+"/"+eng.name+"/"+in.name, func(t *testing.T) {
					db := in.db(fam.q, uint64(fi))
					truth, err := core.GroundTruth(fam.q, db)
					if err != nil {
						t.Fatal(err)
					}
					loopAns, loopStats := eng.run(t, fam.q, db, p, nil)
					tcp := dialPool(t, addrs)
					tcpAns, tcpStats := eng.run(t, fam.q, db, p, tcp)
					if !sameTuples(loopAns, truth) {
						t.Errorf("loopback: %d answers, ground truth %d", len(loopAns), len(truth))
					}
					if !sameTuples(tcpAns, truth) {
						t.Errorf("tcp: %d answers, ground truth %d", len(tcpAns), len(truth))
					}
					if !reflect.DeepEqual(loopStats.Rounds, tcpStats.Rounds) {
						t.Errorf("round stats differ:\nloopback %+v\ntcp %+v", loopStats.Rounds, tcpStats.Rounds)
					}
				})
			}
		}
	}
}

// TestDifferentialSkewJoin covers the skew engine: all three routing
// modes on matching and Zipf join inputs, both transports, against
// the single-node join.
func TestDifferentialSkewJoin(t *testing.T) {
	const p = 4
	addrs := startPool(t, p)
	inputs := []struct {
		name string
		gen  func() (*relation.Relation, *relation.Relation)
	}{
		{"matching", func() (*relation.Relation, *relation.Relation) {
			return skew.MatchingJoinInput(rand.New(rand.NewPCG(3, 1)), 400)
		}},
		{"zipf", func() (*relation.Relation, *relation.Relation) {
			return skew.ZipfJoinInput(rand.New(rand.NewPCG(3, 2)), 400, 1.3)
		}},
	}
	for _, in := range inputs {
		for _, mode := range []skew.Mode{skew.Standard, skew.Resilient, skew.ModeWCOJ} {
			t.Run(in.name+"/"+mode.String(), func(t *testing.T) {
				r, s := in.gen()
				truth, err := skew.GroundTruth(r, s)
				if err != nil {
					t.Fatal(err)
				}
				loop, err := skew.RunJoin(r, s, p, mode, skew.Options{Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				tcpRes, err := skew.RunJoin(r, s, p, mode, skew.Options{Seed: 7, Transport: dialPool(t, addrs)})
				if err != nil {
					t.Fatal(err)
				}
				if !sameTuples(loop.Answers, truth) {
					t.Errorf("loopback: %d answers, ground truth %d", len(loop.Answers), len(truth))
				}
				if !sameTuples(tcpRes.Answers, truth) {
					t.Errorf("tcp: %d answers, ground truth %d", len(tcpRes.Answers), len(truth))
				}
				if !reflect.DeepEqual(loop.Stats.Rounds, tcpRes.Stats.Rounds) {
					t.Errorf("round stats differ across transports")
				}
			})
		}
	}
}

// TestDifferentialPlanner runs the full planner path (stats → plan →
// Execute) distributed, covering the plan.ExecOptions threading for
// every engine the planner can pick.
func TestDifferentialPlanner(t *testing.T) {
	const p = 4
	addrs := startPool(t, p)
	cases := []struct {
		name   string
		q      *query.Query
		eps    *big.Rat
		engine *plan.Engine
	}{
		{"auto-triangle", query.Cycle(3), nil, nil},
		{"forced-multi-chain", query.Chain(4), big.NewRat(0, 1), nil},
		{"forced-skew-join", query.MustParse("q(x,y,z) = R(x,y), S(y,z)"), nil, enginePtr(plan.SkewJoin)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(55, uint64(len(c.name))))
			db := relation.MatchingDatabase(rng, c.q, 300)
			truth, err := core.GroundTruth(c.q, db)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := plan.Build(c.q, relation.CollectStats(db), plan.Options{P: p, Epsilon: c.eps})
			if err != nil {
				t.Fatal(err)
			}
			if c.engine != nil {
				if pl, err = pl.WithEngine(*c.engine); err != nil {
					t.Fatal(err)
				}
			}
			loop, err := pl.Execute(db, plan.ExecOptions{Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			tcpRes, err := pl.Execute(db, plan.ExecOptions{Seed: 3, Transport: dialPool(t, addrs)})
			if err != nil {
				t.Fatal(err)
			}
			if !sameTuples(loop.Answers, truth) {
				t.Errorf("loopback: %d answers, ground truth %d", len(loop.Answers), len(truth))
			}
			if !sameTuples(tcpRes.Answers, truth) {
				t.Errorf("tcp: %d answers, ground truth %d", len(tcpRes.Answers), len(truth))
			}
			if !reflect.DeepEqual(loop.Stats.Rounds, tcpRes.Stats.Rounds) {
				t.Errorf("round stats differ across transports")
			}
			if loop.Engine != tcpRes.Engine {
				t.Errorf("engines differ: %v vs %v", loop.Engine, tcpRes.Engine)
			}
		})
	}
}

// enginePtr returns a pointer to e (test-table convenience).
func enginePtr(e plan.Engine) *plan.Engine { return &e }
