package dist_test

import (
	"math/big"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hypercube"
	"repro/internal/mpc"
	"repro/internal/multiround"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/skew"
)

// The pipelined differential net: every engine runs sync and pipelined
// over both transports, and the pipelined executions must be
// indistinguishable from the sync ones — identical answers (which both
// must match the single-node ground truth) and byte-identical round
// statistics. Pipelining only changes when transport work happens, not
// what any worker computes or what the coordinator accounts.

// pipeRun executes q over db with the given transport (nil = loopback)
// and pipelining switch.
type pipeRun func(t *testing.T, q *query.Query, db *relation.Database, p int, tr dist.Transport, pipe bool) ([]relation.Tuple, *mpc.Stats)

func pipeHypercube(t *testing.T, q *query.Query, db *relation.Database, p int, tr dist.Transport, pipe bool) ([]relation.Tuple, *mpc.Stats) {
	t.Helper()
	res, err := hypercube.Run(q, db, p, hypercube.Options{Seed: 23, Transport: tr, Pipeline: pipe})
	if err != nil {
		t.Fatal(err)
	}
	return res.Answers, res.Stats
}

func pipeMultiround(t *testing.T, q *query.Query, db *relation.Database, p int, tr dist.Transport, pipe bool) ([]relation.Tuple, *mpc.Stats) {
	t.Helper()
	pl, err := multiround.Build(q, big.NewRat(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := multiround.Execute(pl, db, p, multiround.Options{Seed: 23, Transport: tr, Pipeline: pipe})
	if err != nil {
		t.Fatal(err)
	}
	return res.Answers, res.Stats
}

// TestPipelinedDifferential is the engine × input matrix: each case
// runs sync-loopback (the reference), pipelined-loopback (the fallback
// script path) and pipelined-TCP (the streamed script path), and all
// three must agree on answers and round statistics.
func TestPipelinedDifferential(t *testing.T) {
	const p = 4
	addrs := startPool(t, p)
	families := []struct {
		name string
		q    *query.Query
	}{
		{"triangle", query.Cycle(3)},
		{"chain", query.Chain(4)},
	}
	engines := []struct {
		name string
		run  pipeRun
	}{
		{"hypercube", pipeHypercube},
		{"multiround", pipeMultiround},
	}
	inputs := []struct {
		name string
		db   func(q *query.Query, salt uint64) *relation.Database
	}{
		{"matching", func(q *query.Query, salt uint64) *relation.Database {
			return relation.MatchingDatabase(rand.New(rand.NewPCG(100, salt)), q, 300)
		}},
		{"zipf", func(q *query.Query, salt uint64) *relation.Database {
			return zipfDatabase(rand.New(rand.NewPCG(200, salt)), q, 200, 1.1)
		}},
	}
	for fi, fam := range families {
		for _, eng := range engines {
			for _, in := range inputs {
				t.Run(fam.name+"/"+eng.name+"/"+in.name, func(t *testing.T) {
					db := in.db(fam.q, uint64(fi))
					truth, err := core.GroundTruth(fam.q, db)
					if err != nil {
						t.Fatal(err)
					}
					syncAns, syncStats := eng.run(t, fam.q, db, p, nil, false)
					loopAns, loopStats := eng.run(t, fam.q, db, p, nil, true)
					tcpAns, tcpStats := eng.run(t, fam.q, db, p, dialPool(t, addrs), true)
					if !sameTuples(syncAns, truth) {
						t.Fatalf("sync reference: %d answers, ground truth %d", len(syncAns), len(truth))
					}
					if !sameTuples(loopAns, truth) {
						t.Errorf("pipelined loopback: %d answers, ground truth %d", len(loopAns), len(truth))
					}
					if !sameTuples(tcpAns, truth) {
						t.Errorf("pipelined tcp: %d answers, ground truth %d", len(tcpAns), len(truth))
					}
					if !reflect.DeepEqual(syncStats.Rounds, loopStats.Rounds) {
						t.Errorf("round stats differ sync vs pipelined loopback:\nsync %+v\npipe %+v", syncStats.Rounds, loopStats.Rounds)
					}
					if !reflect.DeepEqual(syncStats.Rounds, tcpStats.Rounds) {
						t.Errorf("round stats differ sync vs pipelined tcp:\nsync %+v\npipe %+v", syncStats.Rounds, tcpStats.Rounds)
					}
				})
			}
		}
	}
}

// TestPipelinedSkewJoin covers the skew engine's three routing modes
// pipelined over both transports against the sync loopback reference.
func TestPipelinedSkewJoin(t *testing.T) {
	const p = 4
	addrs := startPool(t, p)
	r, s := skew.ZipfJoinInput(rand.New(rand.NewPCG(3, 2)), 400, 1.3)
	truth, err := skew.GroundTruth(r, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []skew.Mode{skew.Standard, skew.Resilient, skew.ModeWCOJ} {
		t.Run(mode.String(), func(t *testing.T) {
			ref, err := skew.RunJoin(r, s, p, mode, skew.Options{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			loop, err := skew.RunJoin(r, s, p, mode, skew.Options{Seed: 7, Pipeline: true})
			if err != nil {
				t.Fatal(err)
			}
			tcpRes, err := skew.RunJoin(r, s, p, mode, skew.Options{Seed: 7, Pipeline: true, Transport: dialPool(t, addrs)})
			if err != nil {
				t.Fatal(err)
			}
			if !sameTuples(ref.Answers, truth) {
				t.Fatalf("sync reference: %d answers, ground truth %d", len(ref.Answers), len(truth))
			}
			if !sameTuples(loop.Answers, truth) {
				t.Errorf("pipelined loopback: %d answers, ground truth %d", len(loop.Answers), len(truth))
			}
			if !sameTuples(tcpRes.Answers, truth) {
				t.Errorf("pipelined tcp: %d answers, ground truth %d", len(tcpRes.Answers), len(truth))
			}
			if !reflect.DeepEqual(ref.Stats.Rounds, loop.Stats.Rounds) {
				t.Errorf("round stats differ sync vs pipelined loopback")
			}
			if !reflect.DeepEqual(ref.Stats.Rounds, tcpRes.Stats.Rounds) {
				t.Errorf("round stats differ sync vs pipelined tcp")
			}
		})
	}
}

// TestPipelinedPlanner threads Pipeline through plan.ExecOptions for
// every engine the planner can pick and checks sync/pipelined parity.
func TestPipelinedPlanner(t *testing.T) {
	const p = 4
	addrs := startPool(t, p)
	cases := []struct {
		name   string
		q      *query.Query
		eps    *big.Rat
		engine *plan.Engine
	}{
		{"auto-triangle", query.Cycle(3), nil, nil},
		{"forced-multi-chain", query.Chain(4), big.NewRat(0, 1), nil},
		{"forced-skew-join", query.MustParse("q(x,y,z) = R(x,y), S(y,z)"), nil, enginePtr(plan.SkewJoin)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(55, uint64(len(c.name))))
			db := relation.MatchingDatabase(rng, c.q, 300)
			pl, err := plan.Build(c.q, relation.CollectStats(db), plan.Options{P: p})
			if err != nil {
				t.Fatal(err)
			}
			if c.engine != nil {
				if pl, err = pl.WithEngine(*c.engine); err != nil {
					t.Fatal(err)
				}
			}
			ref, err := pl.Execute(db, plan.ExecOptions{Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			pipe, err := pl.Execute(db, plan.ExecOptions{Seed: 3, Pipeline: true, Transport: dialPool(t, addrs)})
			if err != nil {
				t.Fatal(err)
			}
			if !sameTuples(ref.Answers, pipe.Answers) {
				t.Errorf("answers differ: sync %d, pipelined %d", len(ref.Answers), len(pipe.Answers))
			}
			if !reflect.DeepEqual(ref.Stats.Rounds, pipe.Stats.Rounds) {
				t.Errorf("round stats differ sync vs pipelined")
			}
			if ref.Engine != pipe.Engine {
				t.Errorf("engines differ: %v vs %v", ref.Engine, pipe.Engine)
			}
		})
	}
}
