package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/exchange"
	"repro/internal/localjoin"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/wire"
)

// Loopback is the in-process Transport: p worker states in this
// process's memory, deliveries as pointer hand-offs with no
// serialization, local joins as one goroutine per worker. It is the
// historical simulation path of the engines, now behind the Transport
// interface, and the reference implementation the TCP transport is
// differentially tested against.
type Loopback struct {
	ws []*workerStore
	// mu guards the recovery bookkeeping (worker replacement, epoch,
	// checkpoint); the data path goes through the per-store locks.
	mu         sync.Mutex
	epoch      uint32
	checkpoint *wire.Manifest
	traceHdr   wire.TraceHeader
	traced     bool
}

// NewLoopback returns an in-process pool of p workers with empty
// stores.
func NewLoopback(p int) *Loopback {
	l := &Loopback{ws: make([]*workerStore, p)}
	for i := range l.ws {
		l.ws[i] = newWorkerStore()
	}
	return l
}

// Workers implements Transport.
func (l *Loopback) Workers() int { return len(l.ws) }

// Deliver implements Transport: runs land in the destination stores
// immediately (destination range was validated by the partitioner).
func (l *Loopback) Deliver(ctx context.Context, round int, ds []exchange.Delivery) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, d := range ds {
		if d.To < 0 || d.To >= len(l.ws) {
			return fmt.Errorf("dist: loopback delivery to worker %d out of range [0,%d)", d.To, len(l.ws))
		}
		l.ws[d.To].add(d.Rel, d.Buf)
	}
	return nil
}

// ApplyDelta implements Transport: delta runs land in the destination
// stores immediately, retractions as tombstones, extensions as
// appended runs (also registered under their Δ view).
func (l *Loopback) ApplyDelta(ctx context.Context, round int, ds []DeltaDelivery) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, d := range ds {
		if d.To < 0 || d.To >= len(l.ws) {
			return fmt.Errorf("dist: loopback delta to worker %d out of range [0,%d)", d.To, len(l.ws))
		}
		l.ws[d.To].applyDelta(d.Store, d.View, d.Del, d.Buf)
	}
	return nil
}

// Barrier implements Transport; loopback deliveries are synchronous,
// so it only observes cancellation.
func (l *Loopback) Barrier(ctx context.Context, round int) error {
	return ctx.Err()
}

// Join implements Transport: every worker evaluates the query over
// its own store concurrently and keeps the result as a sealed run
// under the view name.
func (l *Loopback) Join(ctx context.Context, spec JoinSpec) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	q, strategy, err := parseJoinSpec(spec)
	if err != nil {
		return err
	}
	errs := make([]error, len(l.ws))
	var wg sync.WaitGroup
	for i, w := range l.ws {
		wg.Add(1)
		go func(i int, w *workerStore) {
			defer wg.Done()
			errs[i] = w.join(q, spec.Bindings, spec.View, strategy)
		}(i, w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Gather implements Transport.
func (l *Loopback) Gather(ctx context.Context, view string) ([]*exchange.Buffer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var runs []*exchange.Buffer
	for _, w := range l.ws {
		runs = append(runs, w.runs(view)...)
	}
	return runs, nil
}

// Close implements Transport.
func (l *Loopback) Close() error { return nil }

// ReplaceWorker implements Replaceable: the worker's store is swapped
// for an empty one, the in-process equivalent of promoting a fresh
// worker process.
func (l *Loopback) ReplaceWorker(ctx context.Context, w int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if w < 0 || w >= len(l.ws) {
		return fmt.Errorf("dist: loopback replace worker %d out of range [0,%d)", w, len(l.ws))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ws[w] = newWorkerStore()
	return nil
}

// JoinWorker implements Replaceable: the local evaluation on worker w
// only.
func (l *Loopback) JoinWorker(ctx context.Context, w int, spec JoinSpec) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if w < 0 || w >= len(l.ws) {
		return fmt.Errorf("dist: loopback join worker %d out of range [0,%d)", w, len(l.ws))
	}
	q, strategy, err := parseJoinSpec(spec)
	if err != nil {
		return err
	}
	return l.ws[w].join(q, spec.Bindings, spec.View, strategy)
}

// Ping implements Replaceable; an in-process worker is always live.
func (l *Loopback) Ping(ctx context.Context, w int, seq uint32) error {
	if w < 0 || w >= len(l.ws) {
		return fmt.Errorf("dist: loopback ping worker %d out of range [0,%d)", w, len(l.ws))
	}
	return ctx.Err()
}

// Announce implements Replaceable by recording the epoch; tests read
// it back through Epoch.
func (l *Loopback) Announce(ctx context.Context, epoch uint32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if epoch < l.epoch {
		return fmt.Errorf("dist: loopback stale epoch %d announced, pool at %d", epoch, l.epoch)
	}
	l.epoch = epoch
	return nil
}

// Checkpoint implements Replaceable by recording the manifest; tests
// read it back through LastCheckpoint.
func (l *Loopback) Checkpoint(ctx context.Context, m *wire.Manifest) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if m.Epoch < l.epoch {
		return fmt.Errorf("dist: loopback stale checkpoint epoch %d, pool at %d", m.Epoch, l.epoch)
	}
	l.checkpoint = m
	return nil
}

// SendTrace implements traceTransport by recording the header — the
// in-process analogue of announcing it to every worker; tests read it
// back through LastTrace.
func (l *Loopback) SendTrace(ctx context.Context, h wire.TraceHeader) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.traceHdr = h
	l.traced = true
	return nil
}

// LastTrace returns the last announced trace header and whether any
// was announced.
func (l *Loopback) LastTrace() (wire.TraceHeader, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.traceHdr, l.traced
}

// Epoch returns the last announced recovery epoch.
func (l *Loopback) Epoch() uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// LastCheckpoint returns the last recorded checkpoint manifest, nil if
// none was broadcast.
func (l *Loopback) LastCheckpoint() *wire.Manifest {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpoint
}

// parseJoinSpec validates the pieces of a JoinSpec shared by the
// loopback transport and the remote worker session.
func parseJoinSpec(spec JoinSpec) (*query.Query, localjoin.Strategy, error) {
	q, err := query.Parse(spec.Query)
	if err != nil {
		return nil, 0, fmt.Errorf("dist: join query: %w", err)
	}
	strategy := localjoin.Strategy(spec.Strategy)
	switch strategy {
	case localjoin.Default, localjoin.HashJoin, localjoin.Backtracking, localjoin.WCOJ:
	default:
		return nil, 0, fmt.Errorf("dist: unknown join strategy %d", spec.Strategy)
	}
	if spec.View == "" {
		return nil, 0, fmt.Errorf("dist: join with empty view name")
	}
	return q, strategy, nil
}

// workerStore is one worker's state: received runs grouped by store
// name. It is the same columnar layout as the mpc simulation's worker
// store, shared between the loopback transport and the remote worker
// session.
type workerStore struct {
	mu    sync.Mutex
	store map[string]*exchange.Column
	// dead holds per-store tombstones: tuples retracted by delta
	// maintenance. Runs are immutable once sealed, so a retraction
	// marks the tuple dead instead of rewriting runs; reads filter
	// through the set, and a later re-append clears the mark.
	dead map[string]*relation.TupleSet
}

func newWorkerStore() *workerStore {
	return &workerStore{store: make(map[string]*exchange.Column)}
}

// add appends a sealed run under the store name.
func (w *workerStore) add(rel string, run *exchange.Buffer) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.addLocked(rel, run)
}

// addLocked is add with w.mu held.
func (w *workerStore) addLocked(rel string, run *exchange.Buffer) {
	col := w.store[rel]
	if col == nil {
		col = &exchange.Column{}
		w.store[rel] = col
	}
	col.Add(run)
}

// applyDelta ingests one delta run: a retraction tombstones every
// tuple out of store; an extension clears any tombstones the tuples
// carry and appends the run under store — and, when view is non-empty,
// under view as well, making the run readable as a Δ-relation.
func (w *workerStore) applyDelta(store, view string, del bool, run *exchange.Buffer) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if del {
		set := w.dead[store]
		if set == nil {
			set = relation.NewTupleSet(run.Arity(), run.Len())
			if w.dead == nil {
				w.dead = make(map[string]*relation.TupleSet)
			}
			w.dead[store] = set
		}
		for _, t := range run.AppendTuples(nil) {
			set.Add(t)
		}
		return
	}
	if set := w.dead[store]; set != nil && set.Len() > 0 {
		for _, t := range run.AppendTuples(nil) {
			set.Remove(t)
		}
	}
	w.addLocked(store, run)
	if view != "" {
		w.addLocked(view, run)
	}
}

// liveDead returns rel's tombstone set when it is non-empty, with
// w.mu held.
func (w *workerStore) liveDead(rel string) *relation.TupleSet {
	set := w.dead[rel]
	if set == nil || set.Len() == 0 {
		return nil
	}
	return set
}

// tuples materializes a fresh view of everything stored under rel,
// tombstoned tuples filtered out.
func (w *workerStore) tuples(rel string) []relation.Tuple {
	w.mu.Lock()
	defer w.mu.Unlock()
	col := w.store[rel]
	if col == nil {
		return nil
	}
	set := w.liveDead(rel)
	if set == nil {
		return col.Tuples()
	}
	all := col.Tuples()
	live := all[:0]
	for _, t := range all {
		if !set.Contains(t) {
			live = append(live, t)
		}
	}
	return live
}

// runs returns the sealed runs stored under rel. When tombstones are
// live for the store, the runs are rematerialized as one filtered
// sealed run so gathers never leak retracted tuples.
func (w *workerStore) runs(rel string) []*exchange.Buffer {
	w.mu.Lock()
	defer w.mu.Unlock()
	col := w.store[rel]
	if col == nil {
		return nil
	}
	set := w.liveDead(rel)
	if set == nil {
		return col.Runs()
	}
	src := col.Runs()
	if len(src) == 0 {
		return nil
	}
	out := exchange.NewBuffer(src[0].Arity())
	for _, run := range src {
		for _, t := range run.AppendTuples(nil) {
			if !set.Contains(t) {
				out.Append(t)
			}
		}
	}
	out.Seal()
	if out.Len() == 0 {
		return nil
	}
	return []*exchange.Buffer{out}
}

// join evaluates q over the store (atom names mapped through
// bindings) and stores the result as one sealed run under view.
func (w *workerStore) join(q *query.Query, bindings map[string]string, view string, strategy localjoin.Strategy) error {
	b := localjoin.Bindings{}
	for _, a := range q.Atoms {
		src := a.Name
		if mapped, ok := bindings[a.Name]; ok {
			src = mapped
		}
		b[a.Name] = w.tuples(src)
	}
	rows, err := localjoin.Evaluate(q, b, strategy)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return nil
	}
	out := exchange.NewBuffer(q.NumVars())
	for _, t := range rows {
		out.Append(t)
	}
	out.Seal()
	w.add(view, out)
	return nil
}
