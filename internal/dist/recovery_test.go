package dist_test

import (
	"context"
	"math/big"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/exchange"
	"repro/internal/hypercube"
	"repro/internal/mpc"
	"repro/internal/multiround"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/skew"
)

// The recovery test net: a table of kill-points × engines ×
// transports. Every entry injects a deterministic fault schedule
// (dist.FaultTransport — counter-keyed, no timers) into a full engine
// execution with recovery enabled, then demands the answers match the
// single-node ground truth and the round statistics match the
// fault-free baseline byte for byte. A lost worker must be invisible
// in every output except the replacement counter.

// countingTransport counts phase calls during the baseline run, so
// kill-points can be placed relative to each engine's actual shape
// instead of hard-coded call numbers.
type countingTransport struct {
	dist.Transport
	delivers, barriers, joins, gathers int
}

func (c *countingTransport) Deliver(ctx context.Context, round int, ds []exchange.Delivery) error {
	c.delivers++
	return c.Transport.Deliver(ctx, round, ds)
}

func (c *countingTransport) Barrier(ctx context.Context, round int) error {
	c.barriers++
	return c.Transport.Barrier(ctx, round)
}

func (c *countingTransport) Join(ctx context.Context, spec dist.JoinSpec) error {
	c.joins++
	return c.Transport.Join(ctx, spec)
}

func (c *countingTransport) Gather(ctx context.Context, view string) ([]*exchange.Buffer, error) {
	c.gathers++
	return c.Transport.Gather(ctx, view)
}

// recEngine is one engine under recovery test: run executes it on the
// transport (recovery enabled when rec.Enabled) and returns answers,
// stats and the replacement count.
type recEngine struct {
	name  string
	truth []relation.Tuple
	run   func(t *testing.T, tr dist.Transport, rec dist.RecoveryOptions) ([]relation.Tuple, *mpc.Stats, int)
}

// recoveryEngines builds the three engines over fixed deterministic
// inputs, with ground truth attached.
func recoveryEngines(t *testing.T, p int) []recEngine {
	t.Helper()

	// Hypercube: one round, triangle query.
	triQ := query.Cycle(3)
	triDB := relation.MatchingDatabase(rand.New(rand.NewPCG(100, 0)), triQ, 200)
	triTruth, err := core.GroundTruth(triQ, triDB)
	if err != nil {
		t.Fatal(err)
	}

	// Multiround: chain at ε=0 — a genuine Γ^r_ε multi-step plan, so
	// kill-points in later rounds exist.
	chQ := query.Chain(4)
	chDB := relation.MatchingDatabase(rand.New(rand.NewPCG(101, 0)), chQ, 200)
	chTruth, err := core.GroundTruth(chQ, chDB)
	if err != nil {
		t.Fatal(err)
	}
	chPlan, err := multiround.Build(chQ, big.NewRat(0, 1))
	if err != nil {
		t.Fatal(err)
	}

	// Skew join: Zipf input under the resilient heavy-hitter routing.
	r, s := skew.ZipfJoinInput(rand.New(rand.NewPCG(102, 0)), 300, 1.2)
	sjTruth, err := skew.GroundTruth(r, s)
	if err != nil {
		t.Fatal(err)
	}

	return []recEngine{
		{
			name:  "hypercube",
			truth: triTruth,
			run: func(t *testing.T, tr dist.Transport, rec dist.RecoveryOptions) ([]relation.Tuple, *mpc.Stats, int) {
				t.Helper()
				res, err := hypercube.Run(triQ, triDB, p, hypercube.Options{Seed: 23, Transport: tr, Recovery: rec})
				if err != nil {
					t.Fatal(err)
				}
				return res.Answers, res.Stats, res.Replacements
			},
		},
		{
			name:  "multiround",
			truth: chTruth,
			run: func(t *testing.T, tr dist.Transport, rec dist.RecoveryOptions) ([]relation.Tuple, *mpc.Stats, int) {
				t.Helper()
				res, err := multiround.Execute(chPlan, chDB, p, multiround.Options{Seed: 23, Transport: tr, Recovery: rec})
				if err != nil {
					t.Fatal(err)
				}
				return res.Answers, res.Stats, res.Replacements
			},
		},
		{
			name:  "skew",
			truth: sjTruth,
			run: func(t *testing.T, tr dist.Transport, rec dist.RecoveryOptions) ([]relation.Tuple, *mpc.Stats, int) {
				t.Helper()
				res, err := skew.RunJoin(r, s, p, skew.Resilient, skew.Options{Seed: 7, Transport: tr, Recovery: rec})
				if err != nil {
					t.Fatal(err)
				}
				return res.Answers, res.Stats, res.Replacements
			},
		},
	}
}

// TestRecoveryKillPoints is the full net. For every engine it first
// runs fault-free on a counting loopback to fix the baseline (answers
// already checked against ground truth, stats recorded, phase counts
// measured), then runs every applicable kill-point on both transports.
func TestRecoveryKillPoints(t *testing.T) {
	const p = 4
	engines := recoveryEngines(t, p)
	for _, eng := range engines {
		// Baseline: fault-free, recovery off, loopback.
		counter := &countingTransport{Transport: dist.NewLoopback(p)}
		baseAns, baseStats, baseRepl := eng.run(t, counter, dist.RecoveryOptions{})
		if baseRepl != 0 {
			t.Fatalf("%s: baseline replaced %d workers", eng.name, baseRepl)
		}
		if !sameTuples(baseAns, eng.truth) {
			t.Fatalf("%s: baseline %d answers, ground truth %d", eng.name, len(baseAns), len(eng.truth))
		}

		// Kill-points, placed against the measured phase counts.
		points := []struct {
			name   string
			faults []dist.Fault
			kills  int
			ok     bool
		}{
			{"scatter-kill-before", []dist.Fault{{Worker: 1, Op: dist.OpDeliver, N: 0, Kind: dist.KillBefore}}, 1, true},
			{"scatter-kill-after", []dist.Fault{{Worker: 2, Op: dist.OpDeliver, N: 0, Kind: dist.KillAfter}}, 1, true},
			{"last-scatter-kill", []dist.Fault{{Worker: 0, Op: dist.OpDeliver, N: counter.delivers - 1, Kind: dist.KillBefore}}, 1, counter.delivers > 1},
			{"barrier-kill", []dist.Fault{{Worker: 0, Op: dist.OpBarrier, N: 0, Kind: dist.KillBefore}}, 1, true},
			{"round-2-barrier-kill", []dist.Fault{{Worker: 2, Op: dist.OpBarrier, N: 1, Kind: dist.KillBefore}}, 1, counter.barriers > 1},
			{"join-kill", []dist.Fault{{Worker: 1, Op: dist.OpJoin, N: 0, Kind: dist.KillBefore}}, 1, true},
			{"last-join-kill", []dist.Fault{{Worker: 3, Op: dist.OpJoin, N: counter.joins - 1, Kind: dist.KillBefore}}, 1, counter.joins > 1},
			{"gather-kill", []dist.Fault{{Worker: 3, Op: dist.OpGather, N: 0, Kind: dist.KillBefore}}, 1, true},
			{"double-kill", []dist.Fault{
				{Worker: 1, Op: dist.OpDeliver, N: 0, Kind: dist.KillBefore},
				{Worker: 2, Op: dist.OpJoin, N: 0, Kind: dist.KillBefore},
			}, 2, true},
			{"delay-to-barrier", []dist.Fault{{Worker: 1, Op: dist.OpDeliver, N: 0, Kind: dist.DelayToBarrier}}, 0, true},
			{"duplicate-delivery", []dist.Fault{{Worker: 2, Op: dist.OpDeliver, N: 0, Kind: dist.DuplicateDelivery}}, 0, true},
		}
		for _, pt := range points {
			if !pt.ok {
				continue
			}
			for _, kind := range []string{"loopback", "tcp"} {
				pt, kind := pt, kind
				t.Run(eng.name+"/"+pt.name+"/"+kind, func(t *testing.T) {
					var inner dist.Transport
					if kind == "loopback" {
						inner = dist.NewLoopback(p)
					} else {
						inner = dialPool(t, startPool(t, p))
					}
					ft := dist.NewFaultTransport(inner, pt.faults...)
					rec := dist.RecoveryOptions{Enabled: true, MaxReplacements: 8}
					ans, stats, repl := eng.run(t, ft, rec)
					if !sameTuples(ans, eng.truth) {
						t.Errorf("%d answers, ground truth %d", len(ans), len(eng.truth))
					}
					if !reflect.DeepEqual(stats.Rounds, baseStats.Rounds) {
						t.Errorf("round stats differ from fault-free baseline:\n got %+v\nwant %+v",
							stats.Rounds, baseStats.Rounds)
					}
					if got := ft.Kills(); got != pt.kills {
						t.Errorf("%d kill faults fired, schedule expects %d", got, pt.kills)
					}
					if pt.kills > 0 && repl < pt.kills {
						t.Errorf("%d replacements for %d kills", repl, pt.kills)
					}
					if pt.kills == 0 && repl != 0 {
						t.Errorf("%d replacements for a kill-free schedule", repl)
					}
				})
			}
		}
	}
}

// TestRecoveryWithoutPolicyStillFails pins the opt-in contract: the
// same kill that recovery heals aborts the execution when recovery is
// off, exactly like the pre-recovery runtime.
func TestRecoveryWithoutPolicyStillFails(t *testing.T) {
	const p = 4
	q := query.Cycle(3)
	db := relation.MatchingDatabase(rand.New(rand.NewPCG(100, 0)), q, 100)
	ft := dist.NewFaultTransport(dist.NewLoopback(p),
		dist.Fault{Worker: 1, Op: dist.OpBarrier, N: 0, Kind: dist.KillBefore})
	_, err := hypercube.Run(q, db, p, hypercube.Options{Seed: 23, Transport: ft})
	if err == nil {
		t.Fatal("kill without recovery succeeded")
	}
	if got := dist.FailedWorkers(err); len(got) != 1 || got[0] != 1 {
		t.Fatalf("FailedWorkers = %v, want [1]", got)
	}
}

// TestRecoveryBudgetExhausted: more failures than MaxReplacements
// aborts with a budget error instead of looping.
func TestRecoveryBudgetExhausted(t *testing.T) {
	const p = 4
	q := query.Cycle(3)
	db := relation.MatchingDatabase(rand.New(rand.NewPCG(100, 0)), q, 100)
	ft := dist.NewFaultTransport(dist.NewLoopback(p),
		dist.Fault{Worker: 0, Op: dist.OpDeliver, N: 0, Kind: dist.KillBefore},
		dist.Fault{Worker: 1, Op: dist.OpDeliver, N: 1, Kind: dist.KillBefore},
		dist.Fault{Worker: 2, Op: dist.OpDeliver, N: 2, Kind: dist.KillBefore},
	)
	_, err := hypercube.Run(q, db, p, hypercube.Options{
		Seed:      23,
		Transport: ft,
		Recovery:  dist.RecoveryOptions{Enabled: true, MaxReplacements: 2},
	})
	if err == nil {
		t.Fatal("three kills under a budget of 2 succeeded")
	}
}

// TestRecoveryEpochAndCheckpoint: a healed loopback run leaves the
// expected control-plane trail — a positive epoch and a checkpoint
// manifest whose entries name the stores the round delivered.
func TestRecoveryEpochAndCheckpoint(t *testing.T) {
	const p = 4
	q := query.Cycle(3)
	db := relation.MatchingDatabase(rand.New(rand.NewPCG(100, 0)), q, 100)
	lb := dist.NewLoopback(p)
	ft := dist.NewFaultTransport(lb,
		dist.Fault{Worker: 1, Op: dist.OpDeliver, N: 0, Kind: dist.KillBefore})
	res, err := hypercube.Run(q, db, p, hypercube.Options{
		Seed:      23,
		Transport: ft,
		Recovery:  dist.RecoveryOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replacements == 0 {
		t.Fatal("kill fault healed without a replacement")
	}
	if lb.Epoch() == 0 {
		t.Error("healed run never announced an epoch")
	}
	m := lb.LastCheckpoint()
	if m == nil {
		t.Fatal("no checkpoint manifest recorded")
	}
	if m.Round != 1 {
		t.Errorf("checkpoint round = %d, want 1", m.Round)
	}
	if m.Epoch != lb.Epoch() {
		t.Errorf("checkpoint epoch %d != announced epoch %d", m.Epoch, lb.Epoch())
	}
	stores := map[string]bool{}
	for _, e := range m.Entries {
		stores[e.Store] = true
		if e.Runs == 0 || e.Tuples == 0 {
			t.Errorf("manifest entry %+v records no durable runs", e)
		}
	}
	for _, a := range q.Atoms {
		if !stores[a.Name] {
			t.Errorf("manifest has no entry for scattered relation %s", a.Name)
		}
	}
}

// TestRecoverySparePromotionTCP: a worker whose process is gone (its
// listener and live sessions closed) is replaced by a spare process
// mid-query, and the answers still match ground truth.
func TestRecoverySparePromotionTCP(t *testing.T) {
	const p = 4
	pool := startKillablePool(t, p+1) // p members + 1 spare
	members, spare := pool.addrs[:p], pool.addrs[p]

	tr := dialPool(t, members)
	q := query.Cycle(3)
	db := relation.MatchingDatabase(rand.New(rand.NewPCG(100, 0)), q, 200)
	truth, err := core.GroundTruth(q, db)
	if err != nil {
		t.Fatal(err)
	}

	// Kill member 2 outright — listener and established sessions — so
	// the first phase that touches it fails and its address cannot be
	// re-dialed; only the spare can fill the slot.
	pool.kill(2)

	res, err := hypercube.Run(q, db, p, hypercube.Options{
		Seed:      23,
		Transport: tr,
		Recovery:  dist.RecoveryOptions{Enabled: true, Spares: []string{spare}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replacements == 0 {
		t.Fatal("killed worker process healed without a replacement")
	}
	if !sameTuples(res.Answers, truth) {
		t.Fatalf("%d answers after spare promotion, ground truth %d", len(res.Answers), len(truth))
	}
}
