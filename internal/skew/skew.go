// Package skew studies what the paper deliberately sets aside: data
// skew. The matching databases of Section 2.5 are skew-free by
// construction and the HyperCube upper bounds "hold only on matching
// databases" — on skewed inputs hash partitioning overloads the
// servers owning heavy join values, and dedicated techniques are
// required (the paper points to Koutris & Suciu, PODS 2011).
//
// The package implements the classic two-relation equi-join
// q(x,y,z) = R(x,y) ⋈ S(y,z) under two routing disciplines on the
// MPC(ε) engine:
//
//   - Standard: hash-partition both relations on y — one server per
//     join value; a heavy hitter lands intact on one server.
//   - Resilient: the input servers detect heavy hitters (they may
//     compute statistics over their own relation, Section 2.4),
//     allocate each heavy value a block of servers proportional to its
//     frequency, split the larger side across the block and broadcast
//     the smaller side to it; light values hash as usual.
//
// On skew-free inputs the two disciplines behave identically (within
// hashing noise); on Zipf inputs the resilient discipline's maximum
// load improves by roughly the heavy hitter's frequency divided by its
// block size.
package skew

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/dist"
	"repro/internal/exchange"
	"repro/internal/localjoin"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/trace"
)

// JoinQuery returns q(x,y,z) = R(x,y), S(y,z).
func JoinQuery() *query.Query {
	return query.MustNew("join",
		query.Atom{Name: "R", Vars: []string{"x", "y"}},
		query.Atom{Name: "S", Vars: []string{"y", "z"}},
	)
}

// ZipfJoinInput generates R(x,y) and S(y,z) with n tuples each whose
// join attribute y follows a Zipf(s) distribution over [n] (uniform
// x and z). s = 0 degenerates to uniform.
func ZipfJoinInput(rng *rand.Rand, n int, s float64) (r, sRel *relation.Relation) {
	zr := relation.SkewedZipf(rng, "Ry", []string{"y", "x"}, n, s)
	zs := relation.SkewedZipf(rng, "Sy", []string{"y", "z"}, n, s)
	r = relation.New("R", "x", "y")
	for _, t := range zr.Tuples {
		r.MustAdd(relation.Tuple{t[1], t[0]})
	}
	sRel = relation.New("S", "y", "z")
	for _, t := range zs.Tuples {
		sRel.MustAdd(relation.Tuple{t[0], t[1]})
	}
	return r, sRel
}

// MatchingJoinInput generates skew-free permutation inputs (the
// control condition).
func MatchingJoinInput(rng *rand.Rand, n int) (r, s *relation.Relation) {
	return relation.Matching(rng, "R", []string{"x", "y"}, n),
		relation.Matching(rng, "S", []string{"y", "z"}, n)
}

// Frequencies counts occurrences of each value in the named column.
func Frequencies(rel *relation.Relation, attr string) (map[int]int, error) {
	col := rel.AttrIndex(attr)
	if col < 0 {
		return nil, fmt.Errorf("skew: relation %s has no attribute %s", rel.Name, attr)
	}
	freq := make(map[int]int)
	for _, t := range rel.Tuples {
		freq[t[col]]++
	}
	return freq, nil
}

// HeavyHitters returns the values whose combined frequency across both
// inputs exceeds threshold, sorted descending by frequency.
func HeavyHitters(freqR, freqS map[int]int, threshold int) []int {
	combined := make(map[int]int, len(freqR)+len(freqS))
	for v, c := range freqR {
		combined[v] += c
	}
	for v, c := range freqS {
		combined[v] += c
	}
	var heavy []int
	for v, c := range combined {
		if c > threshold {
			heavy = append(heavy, v)
		}
	}
	sort.Slice(heavy, func(i, j int) bool {
		ci, cj := combined[heavy[i]], combined[heavy[j]]
		if ci != cj {
			return ci > cj
		}
		return heavy[i] < heavy[j]
	})
	return heavy
}

// Mode selects the routing discipline.
type Mode int

// Routing disciplines.
const (
	// Standard hashes both relations on the join attribute.
	Standard Mode = iota
	// Resilient splits heavy hitters across server blocks.
	Resilient
	// ModeWCOJ routes like Standard but runs the worst-case-optimal
	// multiway join (localjoin.WCOJ) as each server's local evaluator,
	// so skewed-join experiments exercise the leapfrog engine end to
	// end. Routing skew is unchanged; only local evaluation differs.
	ModeWCOJ
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Standard:
		return "standard"
	case Resilient:
		return "resilient"
	case ModeWCOJ:
		return "wcoj"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// localStrategy returns the per-server join algorithm for the mode.
func (m Mode) localStrategy() localjoin.Strategy {
	if m == ModeWCOJ {
		return localjoin.WCOJ
	}
	return localjoin.HashJoin
}

// Options configures a join run.
type Options struct {
	// Seed drives hashing.
	Seed uint64
	// CapConstant enables receive-cap enforcement when positive.
	CapConstant float64
	// HeavyFactor scales the heavy-hitter threshold
	// HeavyFactor·(|R|+|S|)/p; zero means 1.
	HeavyFactor float64
	// Transport selects the worker pool (internal/dist); nil is the
	// in-process loopback. The pool size must equal p.
	Transport dist.Transport
	// Context bounds a distributed execution; nil selects
	// context.Background().
	Context context.Context
	// Recovery is the self-healing policy: with Enabled set, a worker
	// failure mid-join triggers replacement and replay instead of
	// aborting.
	Recovery dist.RecoveryOptions
	// Pipeline defers scatter/barrier/join traffic to the gather fence
	// so workers overlap their local joins with later deliveries (see
	// dist.Cluster.EnablePipelining). Off by default; answers and round
	// statistics are identical either way.
	Pipeline bool
	// Trace, when non-nil, records per-round per-worker spans of the
	// execution (see dist.Cluster.EnableTracing); nil disables tracing.
	Trace *trace.Trace
}

// Result reports a join run.
type Result struct {
	// Answers is the full join result (x,y,z), deduplicated sorted.
	Answers []relation.Tuple
	// Stats is the communication record.
	Stats *mpc.Stats
	// Replacements counts the workers replaced mid-query by the
	// recovery policy.
	Replacements int
	// MaxLoadTuples is the maximum per-server received tuple count.
	MaxLoadTuples int64
	// Heavy lists the detected heavy hitters (Resilient mode only).
	Heavy []int
	// CapExceeded reports receive-budget violations.
	CapExceeded bool
}

// heavyRoute fixes the routing of one heavy join value: split sides
// round-robin across the block, broadcast sides replicate to all of it.
type heavyRoute struct {
	block []int
	split bool
}

// joinPartitioner is the skew-aware routing discipline as an
// exchange.Partitioner: light values hash to one server, heavy values
// either split round-robin across their block or broadcast to the
// whole block. The round-robin position of each tuple is precomputed
// per heavy value (splitRank), so routing is stateless at Route time —
// parallel sender shards need no shared counters — while every heavy
// value still spreads exactly evenly over its block regardless of how
// its occurrences are laid out in the source relation.
type joinPartitioner struct {
	col       int
	p         int
	seed      uint64
	heavy     map[int]heavyRoute
	splitRank []int32 // tuple index → rank among its value's occurrences
}

// computeSplitRanks numbers each split-side heavy tuple among the
// occurrences of its join value, in relation order (the legacy
// per-value counter, hoisted out of the routing hot path).
func computeSplitRanks(rel *relation.Relation, col int, heavy map[int]heavyRoute) []int32 {
	ranks := make([]int32, len(rel.Tuples))
	counter := make(map[int]int32, len(heavy))
	for i, t := range rel.Tuples {
		v := t[col]
		if hr, ok := heavy[v]; ok && hr.split {
			ranks[i] = counter[v]
			counter[v]++
		}
	}
	return ranks
}

// Route implements exchange.Partitioner.
func (j *joinPartitioner) Route(i int, t relation.Tuple, buf []int) []int {
	v := t[j.col]
	if hr, ok := j.heavy[v]; ok {
		if hr.split {
			return append(buf, hr.block[int(j.splitRank[i])%len(hr.block)])
		}
		return append(buf, hr.block...)
	}
	return append(buf, exchange.HashDest(v, j.seed, j.p))
}

// RunJoin executes R ⋈ S on p servers under the chosen mode. The
// domain for bit accounting is taken as the largest value appearing in
// either relation.
func RunJoin(r, s *relation.Relation, p int, mode Mode, opts Options) (*Result, error) {
	if p < 1 {
		return nil, fmt.Errorf("skew: p = %d", p)
	}
	if r.AttrIndex("y") < 0 || s.AttrIndex("y") < 0 {
		return nil, fmt.Errorf("skew: inputs must share attribute y")
	}
	domain := 1
	for _, rel := range []*relation.Relation{r, s} {
		for _, t := range rel.Tuples {
			for _, v := range t {
				if v > domain {
					domain = v
				}
			}
		}
	}
	inputBits := int64(len(r.Tuples)+len(s.Tuples)) * 2 * int64(relation.BitsPerValue(domain))
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	tr := opts.Transport
	if tr == nil {
		tr = dist.NewLoopback(p)
	}
	cluster, err := dist.NewCluster(mpc.Config{
		Workers:     p,
		Epsilon:     0,
		InputBits:   inputBits,
		CapConstant: opts.CapConstant,
		DomainN:     domain,
	}, tr)
	if err != nil {
		return nil, err
	}
	if opts.Recovery.Enabled {
		if err := cluster.EnableRecovery(opts.Recovery); err != nil {
			return nil, err
		}
	}
	if opts.Pipeline {
		cluster.EnablePipelining()
	}
	if opts.Trace != nil {
		cluster.EnableTracing(opts.Trace)
	}

	var heavy []int
	blocks := map[int][]int{} // heavy value → server block
	splitR := map[int]bool{}  // heavy value → split R (true) or S
	if mode == Resilient {
		freqR, err := Frequencies(r, "y")
		if err != nil {
			return nil, err
		}
		freqS, err := Frequencies(s, "y")
		if err != nil {
			return nil, err
		}
		factor := opts.HeavyFactor
		if factor <= 0 {
			factor = 1
		}
		threshold := int(factor * float64(len(r.Tuples)+len(s.Tuples)) / float64(p))
		heavy = HeavyHitters(freqR, freqS, threshold)
		next := 0
		for _, v := range heavy {
			// Block size proportional to the value's share of the data.
			combined := freqR[v] + freqS[v]
			size := combined * p / (len(r.Tuples) + len(s.Tuples))
			if size < 1 {
				size = 1
			}
			if size > p {
				size = p
			}
			block := make([]int, size)
			for i := range block {
				block[i] = (next + i) % p
			}
			next = (next + size) % p
			blocks[v] = block
			splitR[v] = freqR[v] >= freqS[v]
		}
	}

	// Build one skew-aware partitioner per side; the split/broadcast
	// decision flips between R and S for each heavy value.
	partR := &joinPartitioner{col: r.AttrIndex("y"), p: p, seed: opts.Seed}
	partS := &joinPartitioner{col: s.AttrIndex("y"), p: p, seed: opts.Seed}
	if mode == Resilient {
		partR.heavy = make(map[int]heavyRoute, len(heavy))
		partS.heavy = make(map[int]heavyRoute, len(heavy))
		for _, v := range heavy {
			partR.heavy[v] = heavyRoute{block: blocks[v], split: splitR[v]}
			partS.heavy[v] = heavyRoute{block: blocks[v], split: !splitR[v]}
		}
		partR.splitRank = computeSplitRanks(r, partR.col, partR.heavy)
		partS.splitRank = computeSplitRanks(s, partS.col, partS.heavy)
	}
	capExceeded := false
	cluster.BeginRound()
	if err := cluster.Scatter(ctx, r, "R", partR); err != nil && !errors.Is(err, mpc.ErrCapExceeded) {
		return nil, err
	}
	if err := cluster.Scatter(ctx, s, "S", partS); err != nil && !errors.Is(err, mpc.ErrCapExceeded) {
		return nil, err
	}
	if err := cluster.EndRound(ctx); err != nil {
		if errors.Is(err, mpc.ErrCapExceeded) {
			capExceeded = true
		} else {
			return nil, err
		}
	}

	// Local joins at the workers (store names R and S regardless of
	// the inputs' relation names), then a k-way merged gather.
	q := JoinQuery()
	if err := cluster.Join(ctx, q, nil, "skew!answers", mode.localStrategy()); err != nil {
		return nil, err
	}
	answers, err := cluster.Gather(ctx, "skew!answers")
	if err != nil {
		return nil, err
	}
	return &Result{
		Answers:       answers,
		Stats:         cluster.Stats(),
		Replacements:  cluster.Replacements(),
		MaxLoadTuples: cluster.Stats().MaxLoadTuples(),
		Heavy:         heavy,
		CapExceeded:   capExceeded,
	}, nil
}

// GroundTruth joins the inputs on one node.
func GroundTruth(r, s *relation.Relation) ([]relation.Tuple, error) {
	q := JoinQuery()
	b := localjoin.Bindings{"R": r.Tuples, "S": s.Tuples}
	return localjoin.Evaluate(q, b, localjoin.HashJoin)
}
