package skew

import (
	"math/rand/v2"
	"testing"

	"repro/internal/relation"
)

func assertSameAnswers(t *testing.T, got, want []relation.Tuple, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers, want %d", context, len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: answer %d = %v, want %v", context, i, got[i], want[i])
		}
	}
}

func TestFrequencies(t *testing.T) {
	r := relation.New("R", "x", "y")
	r.MustAdd(relation.Tuple{1, 5})
	r.MustAdd(relation.Tuple{2, 5})
	r.MustAdd(relation.Tuple{3, 7})
	f, err := Frequencies(r, "y")
	if err != nil {
		t.Fatal(err)
	}
	if f[5] != 2 || f[7] != 1 {
		t.Errorf("frequencies = %v", f)
	}
	if _, err := Frequencies(r, "nope"); err == nil {
		t.Error("want error for unknown attribute")
	}
}

func TestHeavyHitters(t *testing.T) {
	fr := map[int]int{1: 100, 2: 5, 3: 40}
	fs := map[int]int{1: 50, 3: 10, 4: 3}
	hh := HeavyHitters(fr, fs, 45)
	// combined: 1→150, 3→50, 2→5, 4→3; threshold 45 → {1, 3} by count.
	if len(hh) != 2 || hh[0] != 1 || hh[1] != 3 {
		t.Errorf("heavy hitters = %v, want [1 3]", hh)
	}
	if got := HeavyHitters(fr, fs, 1000); len(got) != 0 {
		t.Errorf("no heavy hitters expected, got %v", got)
	}
}

func TestZipfJoinInputShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	r, s := ZipfJoinInput(rng, 500, 1.0)
	if r.Size() != 500 || s.Size() != 500 {
		t.Fatalf("sizes %d, %d", r.Size(), s.Size())
	}
	if r.Attrs[0] != "x" || r.Attrs[1] != "y" || s.Attrs[0] != "y" || s.Attrs[1] != "z" {
		t.Errorf("schemas %v, %v", r.Attrs, s.Attrs)
	}
	fr, err := Frequencies(r, "y")
	if err != nil {
		t.Fatal(err)
	}
	if fr[1] < 20 {
		t.Errorf("value 1 frequency %d; expected heavy skew", fr[1])
	}
}

func TestStandardJoinCorrectOnMatching(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	r, s := MatchingJoinInput(rng, 200)
	truth, err := GroundTruth(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != 200 {
		t.Fatalf("matching join should have n answers, got %d", len(truth))
	}
	res, err := RunJoin(r, s, 16, Standard, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, res.Answers, truth, "standard/matching")
}

func TestResilientJoinCorrectOnMatching(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	r, s := MatchingJoinInput(rng, 150)
	truth, err := GroundTruth(r, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunJoin(r, s, 8, Resilient, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, res.Answers, truth, "resilient/matching")
	if len(res.Heavy) != 0 {
		t.Errorf("matching input should have no heavy hitters, got %v", res.Heavy)
	}
}

func TestBothModesCorrectOnZipf(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	r, s := ZipfJoinInput(rng, 400, 1.0)
	truth, err := GroundTruth(r, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{Standard, Resilient} {
		res, err := RunJoin(r, s, 16, mode, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		assertSameAnswers(t, res.Answers, truth, mode.String()+"/zipf")
	}
}

// TestResilientBeatsStandardOnSkew: the headline experiment — on Zipf
// inputs the resilient discipline's max load is strictly (and
// substantially) below standard hashing's, while on matchings they are
// comparable.
func TestResilientBeatsStandardOnSkew(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	n := 2000
	p := 32
	r, s := ZipfJoinInput(rng, n, 1.1)
	std, err := RunJoin(r, s, p, Standard, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunJoin(r, s, p, Resilient, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Heavy) == 0 {
		t.Fatal("expected heavy hitters on Zipf(1.1) input")
	}
	if !(res.MaxLoadTuples < std.MaxLoadTuples) {
		t.Errorf("resilient max load %d not below standard %d", res.MaxLoadTuples, std.MaxLoadTuples)
	}
	// Control: on matchings both disciplines are within a small factor.
	rm, sm := MatchingJoinInput(rng, n)
	stdM, err := RunJoin(rm, sm, p, Standard, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	resM, err := RunJoin(rm, sm, p, Resilient, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := stdM.MaxLoadTuples, resM.MaxLoadTuples
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(hi) > 1.5*float64(lo) {
		t.Errorf("matching control diverged: standard %d vs resilient %d",
			stdM.MaxLoadTuples, resM.MaxLoadTuples)
	}
}

func TestRunJoinValidation(t *testing.T) {
	r := relation.New("R", "x", "y")
	s := relation.New("S", "y", "z")
	if _, err := RunJoin(r, s, 0, Standard, Options{}); err == nil {
		t.Error("want error for p=0")
	}
	bad := relation.New("R", "a", "b")
	if _, err := RunJoin(bad, s, 4, Standard, Options{}); err == nil {
		t.Error("want error for missing join attribute")
	}
	if Standard.String() != "standard" || Resilient.String() != "resilient" || Mode(7).String() == "" {
		t.Error("Mode.String")
	}
}

func TestJoinQueryShape(t *testing.T) {
	q := JoinQuery()
	if q.NumAtoms() != 2 || q.NumVars() != 3 || !q.TreeLike() {
		t.Errorf("join query shape: %s", q)
	}
}
