package skew

import (
	"math/rand/v2"
	"testing"

	"repro/internal/exchange"
	"repro/internal/relation"
)

// TestStandardBitsMatchPerTupleAccounting: under Standard hashing the
// columnar exchange must account exactly the bits the historic
// per-tuple path charged — every tuple of R and S lands at
// HashDest(y), costing arity·⌈log2(n+1)⌉ bits — on both matching and
// Zipf inputs.
func TestStandardBitsMatchPerTupleAccounting(t *testing.T) {
	for _, skewed := range []bool{false, true} {
		rng := rand.New(rand.NewPCG(41, 42))
		var r, s *relation.Relation
		n := 600
		if skewed {
			r, s = ZipfJoinInput(rng, n, 1.1)
		} else {
			r, s = MatchingJoinInput(rng, n)
		}
		p := 8
		seed := uint64(7)
		res, err := RunJoin(r, s, p, Standard, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		domain := 1
		for _, rel := range []*relation.Relation{r, s} {
			for _, tu := range rel.Tuples {
				for _, v := range tu {
					if v > domain {
						domain = v
					}
				}
			}
		}
		tupleBits := int64(2 * relation.BitsPerValue(domain))
		refBits := make([]int64, p)
		yR, yS := r.AttrIndex("y"), s.AttrIndex("y")
		for _, tu := range r.Tuples {
			refBits[exchange.HashDest(tu[yR], seed, p)] += tupleBits
		}
		for _, tu := range s.Tuples {
			refBits[exchange.HashDest(tu[yS], seed, p)] += tupleBits
		}
		var refTotal, refMax int64
		for _, b := range refBits {
			refTotal += b
			if b > refMax {
				refMax = b
			}
		}
		round := res.Stats.Rounds[0]
		if round.TotalBits != refTotal || round.MaxReceivedBits != refMax {
			t.Errorf("skewed=%v: totals (%d,%d), want (%d,%d)",
				skewed, round.TotalBits, round.MaxReceivedBits, refTotal, refMax)
		}
		for w := range refBits {
			if round.PerWorkerBits[w] != refBits[w] {
				t.Errorf("skewed=%v: worker %d got %d bits, want %d", skewed, w, round.PerWorkerBits[w], refBits[w])
			}
		}
		// And the exchange path answers must equal the one-node join.
		truth, err := GroundTruth(r, s)
		if err != nil {
			t.Fatal(err)
		}
		truth = relation.DedupSort(truth)
		if len(res.Answers) != len(truth) {
			t.Fatalf("skewed=%v: %d answers, want %d", skewed, len(res.Answers), len(truth))
		}
		for i := range truth {
			if !res.Answers[i].Equal(truth[i]) {
				t.Fatalf("skewed=%v: answer %d = %v, want %v", skewed, i, res.Answers[i], truth[i])
			}
		}
	}
}

// TestResilientSplitSpreadsPeriodicHeavyValue: a heavy join value
// whose occurrences are periodic in the source relation (every even
// index) must still spread evenly over its server block. Guards
// against index-modulo splitting, which sends every copy of such a
// value to one server.
func TestResilientSplitSpreadsPeriodicHeavyValue(t *testing.T) {
	n, p := 400, 8
	r := relation.New("R", "x", "y")
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			r.MustAdd(relation.Tuple{i + 1, 1}) // heavy value at even indices
		} else {
			r.MustAdd(relation.Tuple{i + 1, 1000 + i}) // distinct light values
		}
	}
	s := relation.New("S", "y", "z")
	for i := 0; i < n; i++ {
		if i < 4 {
			s.MustAdd(relation.Tuple{1, i + 1})
		} else {
			s.MustAdd(relation.Tuple{2000 + i, i + 1})
		}
	}
	res, err := RunJoin(r, s, p, Resilient, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Heavy) == 0 {
		t.Fatal("expected value 1 to be detected heavy")
	}
	// 200 heavy R-tuples split over a block of 2 servers plus ~75
	// hashed light tuples → max load ≈ 195. Index-modulo routing puts
	// all 200 heavy copies on one server (max load ≈ 280).
	if res.MaxLoadTuples > 240 {
		t.Errorf("max load %d: heavy value not split across its block", res.MaxLoadTuples)
	}
	truth, err := GroundTruth(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != len(truth) {
		t.Errorf("answers %d, want %d", len(res.Answers), len(truth))
	}
}
