package skew

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/relation"
)

// TestAllModesMatchGroundTruth is the mode-equivalence property: every
// routing discipline (including ModeWCOJ, which swaps in the
// worst-case-optimal local evaluator) must produce exactly the
// single-node join on both skew-free matching inputs and Zipf inputs.
func TestAllModesMatchGroundTruth(t *testing.T) {
	allModes := []Mode{Standard, Resilient, ModeWCOJ}
	inputs := []struct {
		name string
		r, s *relation.Relation
	}{}
	rng := rand.New(rand.NewPCG(21, 42))
	r1, s1 := MatchingJoinInput(rng, 80)
	inputs = append(inputs, struct {
		name string
		r, s *relation.Relation
	}{"matching", r1, s1})
	r2, s2 := ZipfJoinInput(rng, 300, 1.2)
	inputs = append(inputs, struct {
		name string
		r, s *relation.Relation
	}{"zipf", r2, s2})

	for _, in := range inputs {
		truth, err := GroundTruth(in.r, in.s)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range allModes {
			for _, p := range []int{1, 7, 16} {
				t.Run(fmt.Sprintf("%s/%v/p=%d", in.name, mode, p), func(t *testing.T) {
					res, err := RunJoin(in.r, in.s, p, mode, Options{Seed: 99})
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Answers) != len(truth) {
						t.Fatalf("%d answers, ground truth %d", len(res.Answers), len(truth))
					}
					for i := range truth {
						if !res.Answers[i].Equal(truth[i]) {
							t.Fatalf("answer[%d] = %v, want %v", i, res.Answers[i], truth[i])
						}
					}
				})
			}
		}
	}
}

// TestModeWCOJString pins the new mode's name.
func TestModeWCOJString(t *testing.T) {
	if ModeWCOJ.String() != "wcoj" {
		t.Errorf("ModeWCOJ.String() = %q", ModeWCOJ.String())
	}
}
