package multiround

import (
	"math/rand/v2"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/theory"
)

func TestBuildRadialRejectsNonTreeLike(t *testing.T) {
	if _, err := BuildRadial(query.Cycle(4), rat(0, 1)); err == nil {
		t.Error("want error for cycles")
	}
	tern := query.MustNew("t", query.Atom{Name: "R", Vars: []string{"x", "y", "z"}})
	if _, err := BuildRadial(tern, rat(0, 1)); err == nil {
		t.Error("want error for non-binary atoms")
	}
	rep := query.MustNew("r", query.Atom{Name: "R", Vars: []string{"x", "x"}})
	if _, err := BuildRadial(rep, rat(0, 1)); err == nil {
		t.Error("want error for repeated-variable atoms")
	}
}

// TestBuildRadialMatchesLemma43: the radial plan's round count equals
// the Lemma 4.3 bound ⌈log_{kε}(rad)⌉ + 1 for multi-path tree-like
// queries (and never exceeds it).
func TestBuildRadialMatchesLemma43(t *testing.T) {
	for _, eps := range []int64{0, 1} { // ε = 0 and ε = 1/2
		e := rat(eps, 2)
		for _, q := range []*query.Query{
			query.Chain(2), query.Chain(4), query.Chain(5), query.Chain(9),
			query.Star(4), query.SpokedWheel(3), query.SpokedWheel(5),
		} {
			plan, err := BuildRadial(q, e)
			if err != nil {
				t.Fatalf("%s at ε=%s: %v", q.Name, e.RatString(), err)
			}
			upper, err := theory.RoundsUpperBound(q, e)
			if err != nil {
				t.Fatal(err)
			}
			lower, err := theory.RoundsLowerBound(q, e)
			if err != nil {
				t.Fatal(err)
			}
			got := plan.Rounds()
			if got > upper {
				t.Errorf("%s at ε=%s: radial plan %d rounds exceeds Lemma 4.3 bound %d\n%s",
					q.Name, e.RatString(), got, upper, plan)
			}
			if got < lower {
				t.Errorf("%s at ε=%s: radial plan %d rounds below lower bound %d — impossible",
					q.Name, e.RatString(), got, lower)
			}
		}
	}
}

func TestBuildRadialSingleAtom(t *testing.T) {
	plan, err := BuildRadial(query.Chain(1), rat(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rounds() != 0 || len(plan.Steps) != 0 {
		t.Errorf("single atom should need no rounds, got %d", plan.Rounds())
	}
}

// TestExecuteRadialCorrect: radial plans compute exactly the ground
// truth on matching databases for chains, stars and spoked wheels.
func TestExecuteRadialCorrect(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 55))
	n := 60
	for _, q := range []*query.Query{
		query.Chain(4), query.Chain(7), query.Star(3), query.SpokedWheel(3),
	} {
		db := relation.MatchingDatabase(rng, q, n)
		truth := groundTruth(t, q, db)
		plan, err := BuildRadial(q, rat(0, 1))
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		res, err := Execute(plan, db, 8, Options{Seed: 21})
		if err != nil {
			t.Fatalf("%s: %v\n%s", q.Name, err, plan)
		}
		assertSameTuples(t, res.Answers, truth)
		if res.Rounds != plan.Rounds() {
			t.Errorf("%s: executed %d rounds, plan says %d", q.Name, res.Rounds, plan.Rounds())
		}
	}
}

// TestRadialVsGreedy: on chains both builders achieve the optimal
// round count; on stars the greedy builder's single-round join also
// appears in the radial plan (hub join).
func TestRadialVsGreedy(t *testing.T) {
	e := rat(1, 2)
	for _, k := range []int{8, 16, 32} {
		q := query.Chain(k)
		radial, err := BuildRadial(q, e)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := Build(q, e)
		if err != nil {
			t.Fatal(err)
		}
		// Radial pays at most one extra round (the hub join) over the
		// greedy chain plan.
		if radial.Rounds() > greedy.Rounds()+1 {
			t.Errorf("L%d: radial %d rounds vs greedy %d", k, radial.Rounds(), greedy.Rounds())
		}
	}
}
