package multiround

import (
	"fmt"
	"math/big"

	"repro/internal/query"
	"repro/internal/theory"
)

// BuildRadial constructs the literal Lemma 4.3 plan for a tree-like
// query over a binary vocabulary: pick a center variable v (minimum
// eccentricity), decompose the query tree into its root-to-leaf paths
// (possibly sharing atoms near the center — the paper allows the
// overlap, it only costs a constant factor), evaluate every path in
// parallel as a chain of kε-way joins, and join all path results in
// one final round on the shared variable v (the join of the path views
// has v universal, so τ* = 1 and it is one-round computable at any ε).
//
// The resulting round count is ⌈log_{kε}(rad q)⌉ + 1 when more than
// one path remains for the final join, matching the lemma; single-path
// queries (chains rooted at an endpoint of the center) skip the final
// join. The greedy Build often does as well or better; BuildRadial
// exists to validate the paper's construction verbatim (and as the
// upper-bound ablation).
func BuildRadial(q *query.Query, eps *big.Rat) (*Plan, error) {
	if !q.TreeLike() {
		return nil, fmt.Errorf("multiround: BuildRadial requires a tree-like query, got %s", q.Name)
	}
	for _, a := range q.Atoms {
		if a.Arity() != 2 || len(a.DistinctVars()) != 2 {
			return nil, fmt.Errorf("multiround: BuildRadial requires binary atoms with distinct variables (%s)", a)
		}
	}
	ke, err := theory.KEpsilon(eps)
	if err != nil {
		return nil, err
	}
	if ke < 2 {
		return nil, fmt.Errorf("multiround: kε = %d < 2", ke)
	}
	plan := &Plan{Query: q, Epsilon: new(big.Rat).Set(eps)}
	if q.NumAtoms() == 1 {
		return plan, nil
	}
	center, err := q.Center()
	if err != nil {
		return nil, err
	}
	paths := leafPaths(q, center)
	if len(paths) == 0 {
		return nil, fmt.Errorf("multiround: internal: no paths from center %s", center)
	}

	// curAtoms tracks the atom definition of every name in play; the
	// per-path slices hold the names of the current chain segments.
	curAtoms := make(map[string]query.Atom, q.NumAtoms())
	for _, a := range q.Atoms {
		curAtoms[a.Name] = a
	}
	pathNames := make([][]string, len(paths))
	for i, p := range paths {
		for _, ai := range p {
			pathNames[i] = append(pathNames[i], q.Atoms[ai].Name)
		}
	}

	level := 0
	for maxLen(pathNames) > 1 {
		level++
		var groups []Group
		seenView := map[string]string{} // segment signature → view (dedupe shared prefixes)
		for pi := range pathNames {
			names := pathNames[pi]
			if len(names) == 1 {
				// Passthrough for this level, deduplicated.
				sig := names[0]
				if view, ok := seenView[sig]; ok {
					pathNames[pi] = []string{view}
					continue
				}
				view := fmt.Sprintf("W%d_%d", level, len(groups)+1)
				groups = append(groups, Group{View: view, Atoms: []string{names[0]}})
				curAtoms[view] = query.Atom{Name: view, Vars: curAtoms[names[0]].Vars}
				seenView[sig] = view
				pathNames[pi] = []string{view}
				continue
			}
			var next []string
			for start := 0; start < len(names); start += ke {
				end := start + ke
				if end > len(names) {
					end = len(names)
				}
				segment := names[start:end]
				sig := fmt.Sprint(segment)
				if view, ok := seenView[sig]; ok {
					next = append(next, view)
					continue
				}
				view := fmt.Sprintf("W%d_%d", level, len(groups)+1)
				if len(segment) == 1 {
					groups = append(groups, Group{View: view, Atoms: []string{segment[0]}})
					curAtoms[view] = query.Atom{Name: view, Vars: curAtoms[segment[0]].Vars}
				} else {
					atoms := make([]query.Atom, len(segment))
					for j, name := range segment {
						atoms[j] = curAtoms[name]
					}
					sub, err := query.New(view, atoms...)
					if err != nil {
						return nil, err
					}
					groups = append(groups, Group{View: view, Atoms: append([]string(nil), segment...), Query: sub})
					curAtoms[view] = query.Atom{Name: view, Vars: sub.Vars()}
				}
				seenView[sig] = view
				next = append(next, view)
			}
			pathNames[pi] = next
		}
		plan.Steps = append(plan.Steps, Step{Groups: groups})
	}

	// Final round: join all distinct path views (each contains the
	// center variable, so the join has a universal variable).
	heads := map[string]bool{}
	var headNames []string
	for _, names := range pathNames {
		if !heads[names[0]] {
			heads[names[0]] = true
			headNames = append(headNames, names[0])
		}
	}
	if len(headNames) > 1 {
		level++
		atoms := make([]query.Atom, len(headNames))
		for j, name := range headNames {
			atoms[j] = curAtoms[name]
		}
		view := fmt.Sprintf("W%d_1", level)
		sub, err := query.New(view, atoms...)
		if err != nil {
			return nil, err
		}
		plan.Steps = append(plan.Steps, Step{Groups: []Group{{
			View:  view,
			Atoms: headNames,
			Query: sub,
		}}})
	} else if len(plan.Steps) > 0 {
		// Single path: its head view is already the full answer, but
		// Execute requires the final step to have exactly one group.
		last := plan.Steps[len(plan.Steps)-1]
		if len(last.Groups) != 1 {
			view := fmt.Sprintf("W%d_1", level+1)
			atoms := []query.Atom{curAtoms[headNames[0]]}
			sub, err := query.New(view, atoms...)
			if err != nil {
				return nil, err
			}
			plan.Steps = append(plan.Steps, Step{Groups: []Group{{
				View:  view,
				Atoms: headNames,
				Query: sub,
			}}})
		}
	}
	return plan, nil
}

// leafPaths returns, for the tree-like binary query, the atom-index
// paths from the center variable to every leaf variable.
func leafPaths(q *query.Query, center string) [][]int {
	// Adjacency: variable → (neighbor variable, atom index).
	type edge struct {
		to   string
		atom int
	}
	adj := map[string][]edge{}
	for ai, a := range q.Atoms {
		u, v := a.Vars[0], a.Vars[1]
		adj[u] = append(adj[u], edge{v, ai})
		adj[v] = append(adj[v], edge{u, ai})
	}
	var paths [][]int
	var walk func(at, from string, trail []int)
	walk = func(at, from string, trail []int) {
		isLeaf := true
		for _, e := range adj[at] {
			if e.to == from {
				continue
			}
			isLeaf = false
			walk(e.to, at, append(trail, e.atom))
		}
		if isLeaf && len(trail) > 0 {
			paths = append(paths, append([]int(nil), trail...))
		}
	}
	walk(center, "", nil)
	return paths
}

func maxLen(paths [][]string) int {
	m := 0
	for _, p := range paths {
		if len(p) > m {
			m = len(p)
		}
	}
	return m
}
