package multiround

import (
	"math/big"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/localjoin"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/theory"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func groundTruth(t *testing.T, q *query.Query, db *relation.Database) []relation.Tuple {
	t.Helper()
	b, err := localjoin.FromDatabase(q, db)
	if err != nil {
		t.Fatal(err)
	}
	out, err := localjoin.Evaluate(q, b, localjoin.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBuildChainDepth: the greedy plan for L_k at ε uses exactly
// ⌈log_{kε} k⌉ rounds, matching Example 4.2 and Corollary 4.8.
func TestBuildChainDepth(t *testing.T) {
	cases := []struct {
		k    int
		eps  *big.Rat
		want int
	}{
		{2, rat(0, 1), 1},
		{4, rat(0, 1), 2},
		{5, rat(0, 1), 3},
		{8, rat(0, 1), 3},
		{16, rat(0, 1), 4},
		{16, rat(1, 2), 2}, // Example 4.2: two rounds of L4 operators
		{64, rat(1, 2), 3},
		{4, rat(1, 2), 1},
		{36, rat(2, 3), 2}, // kε = 6
	}
	for _, c := range cases {
		plan, err := Build(query.Chain(c.k), c.eps)
		if err != nil {
			t.Fatalf("Build(L%d, %s): %v", c.k, c.eps.RatString(), err)
		}
		if got := plan.Rounds(); got != c.want {
			t.Errorf("L%d at ε=%s: %d rounds, want %d\n%s",
				c.k, c.eps.RatString(), got, c.want, plan)
		}
	}
}

// TestBuildMatchesTheoryBounds: for tree-like queries the greedy plan
// must sit between the Corollary 4.8 lower bound and the Lemma 4.3
// upper bound.
func TestBuildMatchesTheoryBounds(t *testing.T) {
	eps := []*big.Rat{rat(0, 1), rat(1, 2)}
	queries := []*query.Query{
		query.Chain(3), query.Chain(7), query.Chain(12),
		query.Star(4), query.SpokedWheel(3), query.SpokedWheel(5),
	}
	for _, e := range eps {
		for _, q := range queries {
			plan, err := Build(q, e)
			if err != nil {
				t.Fatalf("Build(%s, %s): %v", q.Name, e.RatString(), err)
			}
			lo, err := theory.RoundsLowerBound(q, e)
			if err != nil {
				t.Fatal(err)
			}
			up, err := theory.RoundsUpperBound(q, e)
			if err != nil {
				t.Fatal(err)
			}
			got := plan.Rounds()
			if got < lo {
				t.Errorf("%s at ε=%s: plan uses %d rounds, below lower bound %d (plan bug)",
					q.Name, e.RatString(), got, lo)
			}
			if got > up {
				t.Errorf("%s at ε=%s: plan uses %d rounds, above upper bound %d",
					q.Name, e.RatString(), got, up)
			}
		}
	}
}

func TestBuildSPk(t *testing.T) {
	// SP_k has a 2-round plan at ε = 0 (Example 4.2).
	for _, k := range []int{2, 3, 5} {
		plan, err := Build(query.SpokedWheel(k), rat(0, 1))
		if err != nil {
			t.Fatal(err)
		}
		if got := plan.Rounds(); got != 2 {
			t.Errorf("SP%d: %d rounds, want 2\n%s", k, got, plan)
		}
	}
}

func TestBuildStarOneRound(t *testing.T) {
	plan, err := Build(query.Star(6), rat(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Rounds(); got != 1 {
		t.Errorf("T6: %d rounds, want 1", got)
	}
}

func TestBuildCycle(t *testing.T) {
	// C5 at ε = 0: upper bound 3 rounds; greedy must not exceed it.
	plan, err := Build(query.Cycle(5), rat(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	up, err := theory.RoundsUpperBound(query.Cycle(5), rat(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rounds() > up {
		t.Errorf("C5: %d rounds > upper bound %d", plan.Rounds(), up)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(query.CartesianPair(), rat(0, 1)); err == nil {
		t.Error("want error for disconnected query")
	}
	if _, err := Build(query.Chain(2), rat(1, 1)); err == nil {
		t.Error("want error for ε = 1")
	}
	if _, err := Build(query.Chain(2), rat(-1, 2)); err == nil {
		t.Error("want error for ε < 0")
	}
}

func TestPlanString(t *testing.T) {
	plan, err := Build(query.Chain(4), rat(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := plan.String()
	if !strings.Contains(s, "round 1") || !strings.Contains(s, "join") {
		t.Errorf("String = %q", s)
	}
}

func TestExecuteChainCorrect(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	for _, k := range []int{2, 3, 5, 8} {
		q := query.Chain(k)
		n := 60
		db := relation.MatchingDatabase(rng, q, n)
		truth := groundTruth(t, q, db)
		plan, err := Build(q, rat(0, 1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(plan, db, 8, Options{Seed: 42})
		if err != nil {
			t.Fatalf("L%d: %v", k, err)
		}
		if res.Rounds != plan.Rounds() {
			t.Errorf("L%d: executed %d rounds, plan says %d", k, res.Rounds, plan.Rounds())
		}
		assertSameTuples(t, res.Answers, truth)
	}
}

// TestExecuteExample42: L16 at ε = 1/2 computes in exactly 2 rounds on
// p = 16 servers with all answers found.
func TestExecuteExample42(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 12))
	q := query.Chain(16)
	n := 64
	db := relation.MatchingDatabase(rng, q, n)
	truth := groundTruth(t, q, db)
	plan, err := Build(q, rat(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, db, 16, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", res.Rounds)
	}
	assertSameTuples(t, res.Answers, truth)
	if len(res.Answers) != n {
		t.Errorf("answers = %d, want %d (chains over matchings)", len(res.Answers), n)
	}
}

func TestExecuteSPk(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	q := query.SpokedWheel(3)
	n := 40
	db := relation.MatchingDatabase(rng, q, n)
	truth := groundTruth(t, q, db)
	plan, err := Build(q, rat(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, db, 8, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTuples(t, res.Answers, truth)
}

func TestExecuteCycle(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 14))
	q := query.Cycle(5)
	n := 80
	db := relation.MatchingDatabase(rng, q, n)
	truth := groundTruth(t, q, db)
	plan, err := Build(q, rat(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, db, 8, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTuples(t, res.Answers, truth)
}

func TestExecuteSingleAtom(t *testing.T) {
	q := query.Chain(1)
	db := relation.NewDatabase(5)
	s1 := relation.New("S1", "x0", "x1")
	s1.MustAdd(relation.Tuple{1, 2})
	db.AddRelation(s1)
	plan, err := Build(q, rat(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, db, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || len(res.Answers) != 1 {
		t.Errorf("rounds=%d answers=%v", res.Rounds, res.Answers)
	}
}

func TestExecuteMissingRelation(t *testing.T) {
	q := query.Chain(2)
	db := relation.NewDatabase(5)
	plan, err := Build(q, rat(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(plan, db, 4, Options{}); err == nil {
		t.Error("want error for missing base relation")
	}
}

func assertSameTuples(t *testing.T, got, want []relation.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("tuple %d: got %v, want %v", i, got[i], want[i])
		}
	}
}
