// Package multiround implements multi-round query evaluation in the
// MPC(ε) model: the query-plan classes Γ^r_ε of Section 4.1 of Beame,
// Koutris, Suciu (PODS 2013) and an executor that runs a plan round by
// round on the mpc engine, one HyperCube shuffle per operator.
//
// A Plan is a sequence of Steps. Each step partitions the atoms of the
// current query into connected groups, each of which must lie in Γ¹_ε
// (one-round computable: connected with τ* ≤ 1/(1−ε)); the groups are
// evaluated in parallel in a single communication round and replaced
// by view atoms over their variables. After the last step a single
// atom remains — the query's answer.
//
// Build constructs such a plan greedily, growing each group while it
// stays in Γ¹_ε. For chain queries this reproduces the optimal
// ⌈log_{kε} k⌉-round plans of Example 4.2 (L16 at ε = 1/2 in two
// rounds of 4-way joins), and for SP_k the two-round plan.
package multiround

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sort"

	"repro/internal/cover"
	"repro/internal/dist"
	"repro/internal/hypercube"
	"repro/internal/localjoin"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/trace"
)

// Group is one operator of a step: a connected set of atoms of the
// current query, computed in one round and replaced by the view atom.
type Group struct {
	// View is the name of the resulting view atom.
	View string
	// Atoms lists the names of the grouped atoms of the current query.
	Atoms []string
	// Query is the subquery the group evaluates; its variables become
	// the view's schema. Singleton groups have Query == nil (the
	// relation passes through unchanged and costs no communication).
	Query *query.Query
}

// Step is one communication round: a partition of the current query's
// atoms into groups.
type Step struct {
	Groups []Group
	// Current is the query at the start of the step (over the previous
	// step's views and any remaining base atoms).
	Current *query.Query
}

// Plan is a multi-round query plan.
type Plan struct {
	// Query is the original query.
	Query *query.Query
	// Epsilon is the space exponent the plan was built for.
	Epsilon *big.Rat
	// Steps are the rounds, in execution order.
	Steps []Step
}

// Rounds returns the number of communication rounds the plan uses:
// steps whose groups perform at least one real (multi-atom) join.
func (p *Plan) Rounds() int {
	rounds := 0
	for _, s := range p.Steps {
		for _, g := range s.Groups {
			if len(g.Atoms) > 1 {
				rounds++
				break
			}
		}
	}
	return rounds
}

// String renders the plan for humans.
func (p *Plan) String() string {
	out := fmt.Sprintf("plan for %s (ε = %s, %d rounds)\n", p.Query.Name, p.Epsilon.RatString(), p.Rounds())
	for i, s := range p.Steps {
		out += fmt.Sprintf("  round %d:\n", i+1)
		for _, g := range s.Groups {
			if len(g.Atoms) == 1 {
				out += fmt.Sprintf("    %s := %s (passthrough)\n", g.View, g.Atoms[0])
				continue
			}
			out += fmt.Sprintf("    %s := join(%v)\n", g.View, g.Atoms)
		}
	}
	return out
}

// Build constructs a greedy Γ^r_ε plan for a connected query: each
// step scans the current query's atoms and grows connected groups
// while they remain in Γ¹_ε. It errors if no progress is possible
// (cannot happen for connected queries, since any two atoms sharing a
// variable have τ* = 1).
func Build(q *query.Query, eps *big.Rat) (*Plan, error) {
	if !q.Connected() {
		return nil, fmt.Errorf("multiround: query %s is disconnected", q.Name)
	}
	if eps.Sign() < 0 || eps.Cmp(big.NewRat(1, 1)) >= 0 {
		return nil, fmt.Errorf("multiround: ε = %s outside [0,1)", eps.RatString())
	}
	plan := &Plan{Query: q, Epsilon: new(big.Rat).Set(eps)}
	cur := q
	level := 0
	for cur.NumAtoms() > 1 {
		level++
		groups, next, err := buildStep(cur, eps, level)
		if err != nil {
			return nil, err
		}
		progressed := false
		for _, g := range groups {
			if len(g.Atoms) > 1 {
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("multiround: no Γ¹_ε-computable group of ≥2 atoms in %s", cur.Name)
		}
		plan.Steps = append(plan.Steps, Step{Groups: groups, Current: cur})
		cur = next
	}
	return plan, nil
}

// buildStep partitions cur's atoms into greedy Γ¹_ε groups and returns
// the groups plus the next level's query.
func buildStep(cur *query.Query, eps *big.Rat, level int) ([]Group, *query.Query, error) {
	used := make([]bool, cur.NumAtoms())
	var groups []Group
	var nextAtoms []query.Atom
	for i := 0; i < cur.NumAtoms(); i++ {
		if used[i] {
			continue
		}
		member := []int{i}
		used[i] = true
		// Grow: repeatedly try to add an unused atom sharing a variable
		// with the group, keeping the group in Γ¹_ε.
		for {
			added := false
			for j := 0; j < cur.NumAtoms(); j++ {
				if used[j] || !sharesVariable(cur, member, j) {
					continue
				}
				candidate := append(append([]int(nil), member...), j)
				sort.Ints(candidate)
				sub, err := cur.Subquery("g", candidate)
				if err != nil {
					return nil, nil, err
				}
				ok, err := cover.GammaOne(sub, eps)
				if err != nil {
					return nil, nil, err
				}
				if ok {
					member = candidate
					used[j] = true
					added = true
					break
				}
			}
			if !added {
				break
			}
		}
		view := fmt.Sprintf("V%d_%d", level, len(groups)+1)
		g := Group{View: view}
		for _, ai := range member {
			g.Atoms = append(g.Atoms, cur.Atoms[ai].Name)
		}
		if len(member) > 1 {
			sub, err := cur.Subquery(view, member)
			if err != nil {
				return nil, nil, err
			}
			g.Query = sub
			nextAtoms = append(nextAtoms, query.Atom{Name: view, Vars: sub.Vars()})
		} else {
			// Passthrough: keep the original atom under the view name.
			a := cur.Atoms[member[0]]
			nextAtoms = append(nextAtoms, query.Atom{Name: view, Vars: a.Vars})
		}
		groups = append(groups, g)
	}
	next, err := query.New(fmt.Sprintf("%s@%d", cur.Name, level), nextAtoms...)
	if err != nil {
		return nil, nil, err
	}
	return groups, next, nil
}

func sharesVariable(q *query.Query, member []int, j int) bool {
	vars := make(map[string]bool)
	for _, ai := range member {
		for _, v := range q.Atoms[ai].Vars {
			vars[v] = true
		}
	}
	for _, v := range q.Atoms[j].Vars {
		if vars[v] {
			return true
		}
	}
	return false
}

// Options configures plan execution.
type Options struct {
	// CapConstant is c in the per-round receive budget; ≤ 0 disables
	// enforcement.
	CapConstant float64
	// Seed drives all hash functions.
	Seed uint64
	// Strategy selects the local join algorithm at the workers. The
	// zero value is localjoin.Default (the worst-case-optimal multiway
	// join).
	Strategy localjoin.Strategy
	// Transport selects the worker pool (internal/dist); nil is the
	// in-process loopback. The pool size must equal p.
	Transport dist.Transport
	// Context bounds a distributed execution; nil selects
	// context.Background().
	Context context.Context
	// Recovery is the self-healing policy: with Enabled set, a worker
	// failure at any round triggers replacement and replay of that
	// worker's inputs — the query resumes at the round it was in
	// instead of aborting (or restarting at round 0).
	Recovery dist.RecoveryOptions
	// Pipeline defers scatter/barrier/join traffic to the gather fence
	// so workers overlap their local joins with later deliveries (see
	// dist.Cluster.EnablePipelining). Off by default; answers and round
	// statistics are identical either way.
	Pipeline bool
	// Trace, when non-nil, records per-round per-worker spans of the
	// execution (see dist.Cluster.EnableTracing); nil disables tracing.
	Trace *trace.Trace
}

// Result reports a plan execution.
type Result struct {
	// Answers is the final answer, in the original query's variable
	// order.
	Answers []relation.Tuple
	// Rounds is the number of communication rounds used.
	Rounds int
	// Stats is the engine's communication record.
	Stats *mpc.Stats
	// CapExceeded reports whether any round broke the receive budget.
	CapExceeded bool
	// Replacements counts the workers replaced mid-query by the
	// recovery policy.
	Replacements int
}

// Execute runs the plan on db with p servers. Each step is one
// communication round: every multi-atom group performs a HyperCube
// shuffle of its input relations (base relations or views gathered
// from the previous round) and its view is materialized from the
// per-worker local joins. Singleton groups pass through without
// communication.
func Execute(plan *Plan, db *relation.Database, p int, opts Options) (*Result, error) {
	epsF, _ := plan.Epsilon.Float64()
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	tr := opts.Transport
	if tr == nil {
		tr = dist.NewLoopback(p)
	}
	cluster, err := dist.NewCluster(mpc.Config{
		Workers:     p,
		Epsilon:     epsF,
		InputBits:   db.InputBits(),
		CapConstant: opts.CapConstant,
		DomainN:     db.N,
	}, tr)
	if err != nil {
		return nil, err
	}
	if opts.Recovery.Enabled {
		if err := cluster.EnableRecovery(opts.Recovery); err != nil {
			return nil, err
		}
	}
	if opts.Pipeline {
		cluster.EnablePipelining()
	}
	if opts.Trace != nil {
		cluster.EnableTracing(opts.Trace)
	}
	// env maps atom name (base relation or view) to its materialized
	// relation.
	env := make(map[string]*relation.Relation)
	for _, name := range db.Names() {
		r, _ := db.Relation(name)
		env[name] = r
	}
	// A single-atom query needs no communication at all.
	if len(plan.Steps) == 0 {
		base, ok := env[plan.Query.Atoms[0].Name]
		if !ok {
			return nil, fmt.Errorf("multiround: no relation for atom %s", plan.Query.Atoms[0].Name)
		}
		answers, err := localjoin.Evaluate(plan.Query,
			localjoin.Bindings{plan.Query.Atoms[0].Name: base.Tuples}, opts.Strategy)
		if err != nil {
			return nil, err
		}
		return &Result{Answers: answers, Rounds: 0, Stats: cluster.Stats()}, nil
	}
	capExceeded := false
	seedCounter := opts.Seed

	for _, step := range plan.Steps {
		// Map each group's atoms (names in step.Current) to relations.
		type pending struct {
			group  Group
			shares *hypercube.Shares
			hasher *hypercube.Hasher
		}
		var work []pending
		for _, g := range step.Groups {
			if g.Query == nil {
				// Passthrough: rename in env after the round.
				continue
			}
			sharesFor, err := hypercube.SharesForQuery(g.Query, p, hypercube.GreedyRounding)
			if err != nil {
				return nil, err
			}
			seedCounter++
			work = append(work, pending{
				group:  g,
				shares: sharesFor,
				hasher: hypercube.NewHasher(sharesFor, seedCounter),
			})
		}
		if len(work) > 0 {
			cluster.BeginRound()
			for _, w := range work {
				for _, atom := range w.group.Query.Atoms {
					rel, ok := env[atom.Name]
					if !ok {
						return nil, fmt.Errorf("multiround: no relation for atom %s", atom.Name)
					}
					// Store under a per-view key: two groups may consume
					// the same base relation in one round.
					prefix := w.group.View + "/"
					part := hypercube.NewGridPartitioner(w.shares, w.hasher, atom)
					if err := cluster.Scatter(ctx, rel, prefix+atom.Name, part); err != nil {
						return nil, err
					}
				}
			}
			if err := cluster.EndRound(ctx); err != nil {
				if errors.Is(err, mpc.ErrCapExceeded) {
					capExceeded = true
				} else {
					return nil, err
				}
			}
			// Local joins: materialize each view.
			for _, w := range work {
				view, err := materializeView(ctx, cluster, w.group, opts.Strategy)
				if err != nil {
					return nil, err
				}
				env[w.group.View] = view
			}
		}
		// Passthrough renames.
		for _, g := range step.Groups {
			if g.Query == nil {
				src, ok := env[g.Atoms[0]]
				if !ok {
					return nil, fmt.Errorf("multiround: no relation for passthrough atom %s", g.Atoms[0])
				}
				renamed := src.Clone()
				renamed.Name = g.View
				env[g.View] = renamed
			}
		}
	}
	// The final step's query contracts to a single view atom.
	finalView := plan.Steps[len(plan.Steps)-1]
	lastName := finalView.Groups[len(finalView.Groups)-1].View
	if len(finalView.Groups) != 1 {
		return nil, fmt.Errorf("multiround: final step has %d groups, want 1", len(finalView.Groups))
	}
	final, ok := env[lastName]
	if !ok {
		return nil, fmt.Errorf("multiround: final view %s missing", lastName)
	}
	answers, err := reorder(final, plan.Query.Vars())
	if err != nil {
		return nil, err
	}
	return &Result{
		Answers:      answers,
		Rounds:       cluster.Stats().NumRounds(),
		Stats:        cluster.Stats(),
		CapExceeded:  capExceeded,
		Replacements: cluster.Replacements(),
	}, nil
}

// materializeView gathers the per-worker join results of one group
// into a relation over the group query's variables: the workers join
// concurrently (local computation is free in the model) and their
// sorted outputs k-way merge in the gather.
func materializeView(ctx context.Context, cluster *dist.Cluster, g Group, strategy localjoin.Strategy) (*relation.Relation, error) {
	prefix := g.View + "/"
	bindings := make(map[string]string, len(g.Query.Atoms))
	for _, atom := range g.Query.Atoms {
		bindings[atom.Name] = prefix + atom.Name
	}
	// "!out" keeps the result store out of both the identifier space
	// and the "view/atom" input keys.
	store := g.View + "!out"
	if err := cluster.Join(ctx, g.Query, bindings, store, strategy); err != nil {
		return nil, err
	}
	tuples, err := cluster.Gather(ctx, store)
	if err != nil {
		return nil, err
	}
	out := relation.New(g.View, g.Query.Vars()...)
	out.Tuples = tuples
	return out, nil
}

// reorder projects a relation's columns into the requested variable
// order (schemas of the final view and the original query contain the
// same variables, possibly ordered differently).
func reorder(r *relation.Relation, vars []string) ([]relation.Tuple, error) {
	idx := make([]int, len(vars))
	for i, v := range vars {
		j := r.AttrIndex(v)
		if j < 0 {
			return nil, fmt.Errorf("multiround: final view missing variable %s", v)
		}
		idx[i] = j
	}
	out := make([]relation.Tuple, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		row := make(relation.Tuple, len(idx))
		for i, j := range idx {
			row[i] = t[j]
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}
