package friedgut

import (
	"math"
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func indicatorsFor(q *query.Query, db *relation.Database) map[string]*Weights {
	ws := make(map[string]*Weights, q.NumAtoms())
	for _, a := range q.Atoms {
		r, _ := db.Relation(a.Name)
		ws[a.Name] = IndicatorWeights(r)
	}
	return ws
}

func TestWeightsBasics(t *testing.T) {
	w := NewWeights(2)
	if err := w.Set(relation.Tuple{1, 2}, 0.5); err != nil {
		t.Fatal(err)
	}
	if got := w.Get(relation.Tuple{1, 2}); got != 0.5 {
		t.Errorf("Get = %v", got)
	}
	if got := w.Get(relation.Tuple{9, 9}); got != 0 {
		t.Errorf("missing tuple weight = %v, want 0", got)
	}
	if err := w.Set(relation.Tuple{1}, 1); err == nil {
		t.Error("want arity error")
	}
	if err := w.Set(relation.Tuple{1, 1}, -1); err == nil {
		t.Error("want negativity error")
	}
}

func TestIsEdgeCover(t *testing.T) {
	q := query.Chain(3)
	// (1,0,1) covers every variable of L3.
	if !IsEdgeCover(q, []*big.Rat{rat(1, 1), rat(0, 1), rat(1, 1)}) {
		t.Error("(1,0,1) should cover L3")
	}
	// (1,0,0) leaves x2,x3 uncovered.
	if IsEdgeCover(q, []*big.Rat{rat(1, 1), rat(0, 1), rat(0, 1)}) {
		t.Error("(1,0,0) should not cover L3")
	}
	// C3 with all 1/2 covers.
	c := query.Triangle()
	if !IsEdgeCover(c, []*big.Rat{rat(1, 2), rat(1, 2), rat(1, 2)}) {
		t.Error("(1/2,1/2,1/2) should cover C3")
	}
	if IsEdgeCover(q, []*big.Rat{rat(1, 1)}) {
		t.Error("wrong length is not a cover")
	}
	if IsEdgeCover(q, []*big.Rat{rat(-1, 1), rat(1, 1), rat(1, 1)}) {
		t.Error("negative values are not a cover")
	}
}

// TestC3InequalityExample checks the paper's C3 instance:
// Σ α_{xy} β_{yz} γ_{zx} ≤ √(Σα² · Σβ² · Σγ²) with cover (1/2,1/2,1/2).
func TestC3InequalityExample(t *testing.T) {
	q := query.Triangle()
	rng := rand.New(rand.NewPCG(1, 1))
	ws := map[string]*Weights{}
	for _, a := range q.Atoms {
		w := NewWeights(2)
		for i := 0; i < 30; i++ {
			w.W[relation.Tuple{rng.IntN(10) + 1, rng.IntN(10) + 1}.Key()] = rng.Float64()
		}
		ws[a.Name] = w
	}
	u := []*big.Rat{rat(1, 2), rat(1, 2), rat(1, 2)}
	lhs, rhs, err := Verify(q, ws, u, 1e-9)
	if err != nil {
		t.Fatalf("lhs=%v rhs=%v: %v", lhs, rhs, err)
	}
}

// TestL3InequalityWithZeroCover checks the max-convention for u_j = 0:
// cover (1,0,1) on L3 gives Σ αβγ ≤ Σα · max β · Σγ.
func TestL3InequalityWithZeroCover(t *testing.T) {
	q := query.Chain(3)
	rng := rand.New(rand.NewPCG(2, 2))
	ws := map[string]*Weights{}
	for _, a := range q.Atoms {
		w := NewWeights(2)
		for i := 0; i < 25; i++ {
			w.W[relation.Tuple{rng.IntN(8) + 1, rng.IntN(8) + 1}.Key()] = rng.Float64() * 2
		}
		ws[a.Name] = w
	}
	u := []*big.Rat{rat(1, 1), rat(0, 1), rat(1, 1)}
	lhs, rhs, err := Verify(q, ws, u, 1e-9)
	if err != nil {
		t.Fatalf("lhs=%v rhs=%v: %v", lhs, rhs, err)
	}
	// Cross-check RHS against the closed form.
	s1, s3 := 0.0, 0.0
	mx := 0.0
	for _, wt := range ws["S1"].W {
		s1 += wt
	}
	for _, wt := range ws["S3"].W {
		s3 += wt
	}
	for _, wt := range ws["S2"].W {
		if wt > mx {
			mx = wt
		}
	}
	want := s1 * mx * s3
	if math.Abs(rhs-want) > 1e-9*want {
		t.Errorf("RHS = %v, closed form %v", rhs, want)
	}
}

// TestInequalityProperty: random sparse weights on random families
// never violate the inequality with the optimal edge packing taken as
// a cover when tight, or the all-ones cover otherwise.
func TestInequalityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 53))
		var q *query.Query
		switch rng.IntN(3) {
		case 0:
			q = query.Chain(1 + rng.IntN(4))
		case 1:
			q = query.Cycle(3 + rng.IntN(3))
		default:
			q = query.Star(1 + rng.IntN(4))
		}
		ws := map[string]*Weights{}
		for _, a := range q.Atoms {
			w := NewWeights(a.Arity())
			for i := 0; i < 1+rng.IntN(20); i++ {
				tp := make(relation.Tuple, a.Arity())
				for j := range tp {
					tp[j] = rng.IntN(6) + 1
				}
				w.W[tp.Key()] = rng.Float64() * 3
			}
			ws[a.Name] = w
		}
		// The all-ones vector is always an edge cover.
		u := make([]*big.Rat, q.NumAtoms())
		for j := range u {
			u[j] = rat(1, 1)
		}
		_, _, err := Verify(q, ws, u, 1e-6)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestAGMBoundOnMatchings: |q(I)| ≤ Π |S_j|^{u_j} for real databases;
// for C3 over matchings this is |C3| ≤ n^{3/2}, and the actual count
// (≈1) is far below.
func TestAGMBoundOnMatchings(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	q := query.Triangle()
	n := 100
	db := relation.MatchingDatabase(rng, q, n)
	u := []*big.Rat{rat(1, 2), rat(1, 2), rat(1, 2)}
	bound, err := SizeBound(q, db, u)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(float64(n), 1.5)
	if math.Abs(bound-want) > 1e-6*want {
		t.Errorf("bound = %v, want n^{3/2} = %v", bound, want)
	}
	truth, err := core.GroundTruth(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(truth)) > bound {
		t.Errorf("actual %d exceeds AGM bound %v", len(truth), bound)
	}
	// Indicator weights: LHS equals the exact answer count.
	ws := indicatorsFor(q, db)
	lhs, err := LHS(q, ws)
	if err != nil {
		t.Fatal(err)
	}
	if int(math.Round(lhs)) != len(truth) {
		t.Errorf("indicator LHS = %v, want |q(I)| = %d", lhs, len(truth))
	}
}

func TestLHSDisconnected(t *testing.T) {
	// LHS multiplies across components: R(x),S(y) with 2 and 3 tuples
	// gives 6.
	q := query.CartesianPair()
	ws := map[string]*Weights{
		"R": NewWeights(1),
		"S": NewWeights(1),
	}
	ws["R"].W["1"] = 1
	ws["R"].W["2"] = 1
	ws["S"].W["1"] = 1
	ws["S"].W["2"] = 1
	ws["S"].W["3"] = 1
	lhs, err := LHS(q, ws)
	if err != nil {
		t.Fatal(err)
	}
	if lhs != 6 {
		t.Errorf("LHS = %v, want 6", lhs)
	}
}

func TestErrors(t *testing.T) {
	q := query.Chain(2)
	if _, err := LHS(q, map[string]*Weights{}); err == nil {
		t.Error("want error for missing weights")
	}
	ws := map[string]*Weights{"S1": NewWeights(1), "S2": NewWeights(2)}
	if _, err := LHS(q, ws); err == nil {
		t.Error("want error for arity mismatch")
	}
	good := map[string]*Weights{"S1": NewWeights(2), "S2": NewWeights(2)}
	if _, err := RHS(q, good, []*big.Rat{rat(1, 1)}); err == nil {
		t.Error("want error for cover length")
	}
	if _, _, err := Verify(q, good, []*big.Rat{rat(0, 1), rat(0, 1)}, 0); err == nil {
		t.Error("want error for non-cover")
	}
	db := relation.NewDatabase(4)
	if _, err := SizeBound(q, db, []*big.Rat{rat(1, 1), rat(1, 1)}); err == nil {
		t.Error("want error for missing relation in db")
	}
}

func TestTupleFromKey(t *testing.T) {
	tp, err := tupleFromKey("12|3|456", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Equal(relation.Tuple{12, 3, 456}) {
		t.Errorf("parsed %v", tp)
	}
	for _, bad := range []string{"", "1|", "|1", "a|b", "1|2"} {
		if _, err := tupleFromKey(bad, 3); err == nil {
			t.Errorf("tupleFromKey(%q): want error", bad)
		}
	}
}
