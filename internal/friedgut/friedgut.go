// Package friedgut implements the class of inequalities Friedgut
// introduced ("Hypergraphs, entropy, and inequalities", AMM 2004) in
// the query-centric form used by Section 2.6 of Beame, Koutris, Suciu
// (PODS 2013):
//
// for a query q with atoms S_1,…,S_ℓ, weight functions
// w_j : [n]^{a_j} → ℝ≥0 and a fractional edge cover u of q,
//
//	Σ_{a ∈ [n]^k} Π_j w_j(a_j)  ≤  Π_j ( Σ_{a_j} w_j(a_j)^{1/u_j} )^{u_j}
//
// with the convention lim_{u→0} (Σ w^{1/u})^u = max w for u_j = 0.
//
// Instantiating w_j as relation indicators yields the well-known
// AGM-style output-size bound, e.g. |C3| ≤ √(|S1|·|S2|·|S3|); the
// paper's one-round lower bound applies the inequality to knowledge
// probabilities with a tight edge packing. This package evaluates both
// sides exactly enough for verification (float64 with care), checks
// edge covers, and exposes the size bound.
package friedgut

import (
	"fmt"
	"math"
	"math/big"

	"repro/internal/query"
	"repro/internal/relation"
)

// Weights assigns a non-negative weight to every tuple of an atom's
// domain [n]^{a_j}. Missing tuples weigh zero, so sparse instantiation
// (e.g. relation indicators) is cheap.
type Weights struct {
	// Arity is a_j.
	Arity int
	// W maps tuple keys (relation.Tuple.Key) to weights.
	W map[string]float64
}

// NewWeights returns empty weights of the given arity.
func NewWeights(arity int) *Weights {
	return &Weights{Arity: arity, W: make(map[string]float64)}
}

// Set assigns weight w to tuple t.
func (ws *Weights) Set(t relation.Tuple, w float64) error {
	if len(t) != ws.Arity {
		return fmt.Errorf("friedgut: tuple arity %d != %d", len(t), ws.Arity)
	}
	if w < 0 {
		return fmt.Errorf("friedgut: negative weight %v", w)
	}
	ws.W[t.Key()] = w
	return nil
}

// Get returns the weight of t (zero if unset).
func (ws *Weights) Get(t relation.Tuple) float64 { return ws.W[t.Key()] }

// IndicatorWeights builds 0/1 weights from a relation's tuples.
func IndicatorWeights(r *relation.Relation) *Weights {
	ws := NewWeights(r.Arity())
	for _, t := range r.Tuples {
		ws.W[t.Key()] = 1
	}
	return ws
}

// IsEdgeCover reports whether u (per atom, indexed like q.Atoms) is a
// fractional edge cover of q: for every variable,
// Σ_{j: x ∈ vars(S_j)} u_j ≥ 1 and u_j ≥ 0.
func IsEdgeCover(q *query.Query, u []*big.Rat) bool {
	if len(u) != q.NumAtoms() {
		return false
	}
	for _, x := range u {
		if x == nil || x.Sign() < 0 {
			return false
		}
	}
	one := big.NewRat(1, 1)
	for _, v := range q.Vars() {
		sum := new(big.Rat)
		for _, j := range q.AtomsOf(v) {
			sum.Add(sum, u[j])
		}
		if sum.Cmp(one) < 0 {
			return false
		}
	}
	return true
}

// LHS evaluates the left side Σ_{a ∈ [n]^k} Π_j w_j(a_j) by
// enumerating only assignments supported by the sparse weights:
// it joins the weighted tuples along the query (a weighted natural
// join), which is exact and avoids the n^k enumeration.
func LHS(q *query.Query, ws map[string]*Weights) (float64, error) {
	for _, a := range q.Atoms {
		w, ok := ws[a.Name]
		if !ok {
			return 0, fmt.Errorf("friedgut: no weights for atom %s", a.Name)
		}
		if w.Arity != a.Arity() {
			return 0, fmt.Errorf("friedgut: weights for %s have arity %d, atom has %d",
				a.Name, w.Arity, a.Arity())
		}
	}
	// Weighted join: partial assignments to a growing set of variables
	// carry the product of atom weights consumed so far. Atoms are
	// consumed in connectivity order per component; cross-component
	// results multiply.
	total := 1.0
	for _, comp := range q.Components() {
		sum, err := weightedComponentSum(q, comp, ws)
		if err != nil {
			return 0, err
		}
		total *= sum
	}
	return total, nil
}

// weightedComponentSum computes the LHS restricted to one connected
// component.
func weightedComponentSum(q *query.Query, comp []int, ws map[string]*Weights) (float64, error) {
	type partial struct {
		binding map[string]int
		weight  float64
	}
	ordered := orderComponent(q, comp)
	parts := []partial{{binding: map[string]int{}, weight: 1}}
	for _, ai := range ordered {
		atom := q.Atoms[ai]
		w := ws[atom.Name]
		var next []partial
		for _, p := range parts {
			for key, wt := range w.W {
				if wt == 0 {
					continue
				}
				t, err := tupleFromKey(key, atom.Arity())
				if err != nil {
					return 0, err
				}
				nb, ok := extend(p.binding, atom, t)
				if !ok {
					continue
				}
				next = append(next, partial{binding: nb, weight: p.weight * wt})
			}
		}
		parts = next
		if len(parts) == 0 {
			return 0, nil
		}
	}
	sum := 0.0
	for _, p := range parts {
		sum += p.weight
	}
	return sum, nil
}

func orderComponent(q *query.Query, comp []int) []int {
	var order []int
	placed := map[int]bool{}
	vars := map[string]bool{}
	remaining := append([]int(nil), comp...)
	for len(remaining) > 0 {
		pick := -1
		for i, ai := range remaining {
			if len(placed) == 0 {
				pick = i
				break
			}
			for _, v := range q.Atoms[ai].Vars {
				if vars[v] {
					pick = i
					break
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			pick = 0
		}
		ai := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		placed[ai] = true
		for _, v := range q.Atoms[ai].Vars {
			vars[v] = true
		}
		order = append(order, ai)
	}
	return order
}

func extend(binding map[string]int, atom query.Atom, t relation.Tuple) (map[string]int, bool) {
	nb := make(map[string]int, len(binding)+len(atom.Vars))
	for k, v := range binding {
		nb[k] = v
	}
	for pos, v := range atom.Vars {
		if cur, ok := nb[v]; ok {
			if cur != t[pos] {
				return nil, false
			}
		} else {
			nb[v] = t[pos]
		}
	}
	return nb, true
}

func tupleFromKey(key string, arity int) (relation.Tuple, error) {
	t := make(relation.Tuple, 0, arity)
	val := 0
	has := false
	for i := 0; i <= len(key); i++ {
		if i == len(key) || key[i] == '|' {
			if !has {
				return nil, fmt.Errorf("friedgut: malformed tuple key %q", key)
			}
			t = append(t, val)
			val, has = 0, false
			continue
		}
		c := key[i]
		if c == '-' {
			return nil, fmt.Errorf("friedgut: negative value in key %q", key)
		}
		if c < '0' || c > '9' {
			return nil, fmt.Errorf("friedgut: malformed tuple key %q", key)
		}
		val = val*10 + int(c-'0')
		has = true
	}
	if len(t) != arity {
		return nil, fmt.Errorf("friedgut: key %q has arity %d, want %d", key, len(t), arity)
	}
	return t, nil
}

// RHS evaluates the right side Π_j (Σ w_j^{1/u_j})^{u_j}, using
// max w_j for u_j = 0.
func RHS(q *query.Query, ws map[string]*Weights, u []*big.Rat) (float64, error) {
	if len(u) != q.NumAtoms() {
		return 0, fmt.Errorf("friedgut: %d cover values for %d atoms", len(u), q.NumAtoms())
	}
	prod := 1.0
	for j, a := range q.Atoms {
		w, ok := ws[a.Name]
		if !ok {
			return 0, fmt.Errorf("friedgut: no weights for atom %s", a.Name)
		}
		uj, _ := u[j].Float64()
		if uj < 0 {
			return 0, fmt.Errorf("friedgut: negative cover value for %s", a.Name)
		}
		if uj == 0 {
			mx := 0.0
			for _, wt := range w.W {
				if wt > mx {
					mx = wt
				}
			}
			prod *= mx
			continue
		}
		sum := 0.0
		for _, wt := range w.W {
			if wt > 0 {
				sum += math.Pow(wt, 1/uj)
			}
		}
		prod *= math.Pow(sum, uj)
	}
	return prod, nil
}

// Verify checks the inequality LHS ≤ RHS·(1+tol) for the given edge
// cover, returning both sides.
func Verify(q *query.Query, ws map[string]*Weights, u []*big.Rat, tol float64) (lhs, rhs float64, err error) {
	if !IsEdgeCover(q, u) {
		return 0, 0, fmt.Errorf("friedgut: u is not a fractional edge cover of %s", q.Name)
	}
	lhs, err = LHS(q, ws)
	if err != nil {
		return 0, 0, err
	}
	rhs, err = RHS(q, ws, u)
	if err != nil {
		return 0, 0, err
	}
	if lhs > rhs*(1+tol) {
		return lhs, rhs, fmt.Errorf("friedgut: inequality violated: %v > %v", lhs, rhs)
	}
	return lhs, rhs, nil
}

// SizeBound returns the AGM-style bound on |q(I)| implied by the
// inequality with indicator weights: Π_j |S_j|^{u_j} for a fractional
// edge cover u.
func SizeBound(q *query.Query, db *relation.Database, u []*big.Rat) (float64, error) {
	if !IsEdgeCover(q, u) {
		return 0, fmt.Errorf("friedgut: u is not a fractional edge cover of %s", q.Name)
	}
	prod := 1.0
	for j, a := range q.Atoms {
		r, ok := db.Relation(a.Name)
		if !ok {
			return 0, fmt.Errorf("friedgut: db missing relation %s", a.Name)
		}
		uj, _ := u[j].Float64()
		prod *= math.Pow(float64(r.Size()), uj)
	}
	return prod, nil
}
