// Package witness reproduces Proposition 3.12 of Beame, Koutris,
// Suciu (PODS 2013): the JOIN-WITNESS problem for
//
//	q(w,x,y,z) = R(w), S1(w,x), S2(x,y), S3(y,z), T(z)
//
// where S1, S2, S3 are 2-dimensional matchings and R, T are uniform
// random subsets of [n] of size √n. The expected number of answers is
// 1, and the proposition shows no one-round MPC(ε) algorithm with
// ε < 1/2 can produce a witness except with polynomially small
// probability: the unary relations are broadcast for free, but the
// chain subquery q' = S1,S2,S3 has τ* = 2, so any server knows only a
// O(1/p^{2(1−ε)}) expected fraction of its n answers.
package witness

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/cover"
	"repro/internal/hypercube"
	"repro/internal/localjoin"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/relation"
)

// ChainSubquery returns q' = S1(w,x), S2(x,y), S3(y,z), the binary
// part of the witness query.
func ChainSubquery() *query.Query {
	return query.MustNew("q'",
		query.Atom{Name: "S1", Vars: []string{"w", "x"}},
		query.Atom{Name: "S2", Vars: []string{"x", "y"}},
		query.Atom{Name: "S3", Vars: []string{"y", "z"}},
	)
}

// FullQuery returns the five-atom witness query of Proposition 3.12.
func FullQuery() *query.Query {
	return query.MustNew("qwit",
		query.Atom{Name: "R", Vars: []string{"w"}},
		query.Atom{Name: "S1", Vars: []string{"w", "x"}},
		query.Atom{Name: "S2", Vars: []string{"x", "y"}},
		query.Atom{Name: "S3", Vars: []string{"y", "z"}},
		query.Atom{Name: "T", Vars: []string{"z"}},
	)
}

// Input is one sampled instance of the Proposition 3.12 family.
type Input struct {
	// DB holds S1, S2, S3 (matchings) and R, T (√n-subsets).
	DB *relation.Database
	// N is the domain size.
	N int
}

// Generate draws an instance: three independent matchings and two
// independent √n-subsets of [n].
func Generate(rng *rand.Rand, n int) (*Input, error) {
	if n < 4 {
		return nil, fmt.Errorf("witness: n = %d too small", n)
	}
	db := relation.NewDatabase(n)
	db.AddRelation(relation.Matching(rng, "S1", []string{"w", "x"}, n))
	db.AddRelation(relation.Matching(rng, "S2", []string{"x", "y"}, n))
	db.AddRelation(relation.Matching(rng, "S3", []string{"y", "z"}, n))
	size := int(math.Round(math.Sqrt(float64(n))))
	db.AddRelation(randomSubset(rng, "R", "w", n, size))
	db.AddRelation(randomSubset(rng, "T", "z", n, size))
	return &Input{DB: db, N: n}, nil
}

func randomSubset(rng *rand.Rand, name, attr string, n, size int) *relation.Relation {
	r := relation.New(name, attr)
	perm := rng.Perm(n)
	for i := 0; i < size && i < n; i++ {
		r.MustAdd(relation.Tuple{perm[i] + 1})
	}
	return r
}

// TrueWitnesses evaluates the full query sequentially and returns all
// answers (the ground truth; its expected cardinality is 1).
func TrueWitnesses(in *Input) ([]relation.Tuple, error) {
	q := FullQuery()
	b, err := localjoin.FromDatabase(q, in.DB)
	if err != nil {
		return nil, err
	}
	return localjoin.Evaluate(q, b, localjoin.HashJoin)
}

// Result reports a one-round witness attempt.
type Result struct {
	// Witnesses are the full answers some server could assemble.
	Witnesses []relation.Tuple
	// TrueCount is the number of answers that exist in the instance.
	TrueCount int
	// Found reports whether a witness was produced despite one round.
	Found bool
	// Stats is the engine's communication record.
	Stats *mpc.Stats
}

// RunOneRound executes the natural one-round algorithm at space
// exponent eps: R and T are broadcast (they are tiny — O(√n·log n)
// bits), and the chain q' is HyperCube-sharded with exponents
// (1−ε)·v_i onto p sampled grid points (the Prop 3.11 algorithm).
// Every server then assembles any full witness it can see. For
// ε < 1/2 the success probability vanishes polynomially in p.
func RunOneRound(in *Input, p int, eps float64, seed uint64) (*Result, error) {
	chain := ChainSubquery()
	cr, err := cover.Solve(chain)
	if err != nil {
		return nil, err
	}
	exps := make([]float64, chain.NumVars())
	for i, v := range cr.VertexCover {
		f, _ := v.Float64()
		exps[i] = (1 - eps) * f
	}
	shares, err := hypercube.ComputeShares(chain.Vars(), exps, p, hypercube.GreedyRounding)
	if err != nil {
		return nil, err
	}
	cluster, err := mpc.NewCluster(mpc.Config{
		Workers:   p,
		Epsilon:   eps,
		InputBits: in.DB.InputBits(),
		DomainN:   in.N,
	})
	if err != nil {
		return nil, err
	}
	hasher := hypercube.NewHasher(shares, seed)
	// Sample p grid points if the virtual grid exceeds p.
	grid := shares.GridSize()
	rng := rand.New(rand.NewPCG(seed, 0x717))
	sample := make(map[int]int, p)
	if grid <= p {
		for g := 0; g < grid; g++ {
			sample[g] = g
		}
	} else {
		perm := rng.Perm(grid)
		for srv := 0; srv < p; srv++ {
			sample[perm[srv]] = srv
		}
	}

	cluster.BeginRound()
	for _, name := range []string{"R", "T"} {
		rel, ok := in.DB.Relation(name)
		if !ok {
			return nil, fmt.Errorf("witness: missing relation %s", name)
		}
		if err := cluster.Broadcast(rel); err != nil && !errors.Is(err, mpc.ErrCapExceeded) {
			return nil, err
		}
	}
	for _, a := range chain.Atoms {
		rel, ok := in.DB.Relation(a.Name)
		if !ok {
			return nil, fmt.Errorf("witness: missing relation %s", a.Name)
		}
		atom := a
		err := cluster.Scatter(rel, func(t relation.Tuple) []int {
			var dsts []int
			for _, g := range hypercube.Destinations(shares, hasher, atom, t) {
				if srv, ok := sample[g]; ok {
					dsts = append(dsts, srv)
				}
			}
			return dsts
		})
		if err != nil && !errors.Is(err, mpc.ErrCapExceeded) {
			return nil, err
		}
	}
	if err := cluster.EndRound(); err != nil && !errors.Is(err, mpc.ErrCapExceeded) {
		return nil, err
	}

	// Each server assembles witnesses from what it received.
	full := FullQuery()
	seen := make(map[string]bool)
	var witnesses []relation.Tuple
	for _, w := range cluster.Workers() {
		b := localjoin.Bindings{}
		for _, a := range full.Atoms {
			b[a.Name] = w.Received(a.Name)
		}
		rows, err := localjoin.Evaluate(full, b, localjoin.HashJoin)
		if err != nil {
			return nil, err
		}
		for _, t := range rows {
			if !seen[t.Key()] {
				seen[t.Key()] = true
				witnesses = append(witnesses, t)
			}
		}
	}
	truth, err := TrueWitnesses(in)
	if err != nil {
		return nil, err
	}
	return &Result{
		Witnesses: witnesses,
		TrueCount: len(truth),
		Found:     len(witnesses) > 0,
		Stats:     cluster.Stats(),
	}, nil
}

// SuccessProbability estimates, over trials instances, the probability
// that the one-round algorithm finds a witness conditioned on one
// existing.
func SuccessProbability(rng *rand.Rand, n, p int, eps float64, trials int) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("witness: trials = %d", trials)
	}
	succ, withWitness := 0, 0
	for trial := 0; trial < trials; trial++ {
		in, err := Generate(rng, n)
		if err != nil {
			return 0, err
		}
		truth, err := TrueWitnesses(in)
		if err != nil {
			return 0, err
		}
		if len(truth) == 0 {
			continue
		}
		withWitness++
		res, err := RunOneRound(in, p, eps, rng.Uint64())
		if err != nil {
			return 0, err
		}
		if res.Found {
			succ++
		}
	}
	if withWitness == 0 {
		return 0, nil
	}
	return float64(succ) / float64(withWitness), nil
}
