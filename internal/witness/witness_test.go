package witness

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/cover"
)

func TestQueriesShape(t *testing.T) {
	chain := ChainSubquery()
	if chain.NumAtoms() != 3 || chain.NumVars() != 4 {
		t.Fatalf("q': %d atoms %d vars", chain.NumAtoms(), chain.NumVars())
	}
	// τ*(q') = 2, so its one-round space exponent is 1/2 — the ε
	// threshold in Proposition 3.12.
	r := cover.MustSolve(chain)
	if r.TauFloat() != 2 {
		t.Errorf("τ*(q') = %v, want 2", r.TauFloat())
	}
	full := FullQuery()
	if full.NumAtoms() != 5 || full.NumVars() != 4 {
		t.Fatalf("q: %d atoms %d vars", full.NumAtoms(), full.NumVars())
	}
	if !full.Connected() {
		t.Error("full query should be connected")
	}
}

func TestGenerate(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	in, err := Generate(rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"S1", "S2", "S3"} {
		rel, ok := in.DB.Relation(name)
		if !ok || !rel.IsMatching(100) {
			t.Errorf("%s should be a matching over [100]", name)
		}
	}
	for _, name := range []string{"R", "T"} {
		rel, ok := in.DB.Relation(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if rel.Size() != 10 {
			t.Errorf("|%s| = %d, want √100 = 10", name, rel.Size())
		}
		seen := map[int]bool{}
		for _, tp := range rel.Tuples {
			if tp[0] < 1 || tp[0] > 100 || seen[tp[0]] {
				t.Errorf("%s has bad/duplicate value %d", name, tp[0])
			}
			seen[tp[0]] = true
		}
	}
	if _, err := Generate(rng, 2); err == nil {
		t.Error("want error for tiny n")
	}
}

// TestExpectedWitnessCount: E[|q|] = 1; over many trials the mean
// witness count should be near 1.
func TestExpectedWitnessCount(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	n := 400
	trials := 60
	total := 0
	for i := 0; i < trials; i++ {
		in, err := Generate(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := TrueWitnesses(in)
		if err != nil {
			t.Fatal(err)
		}
		total += len(truth)
	}
	mean := float64(total) / float64(trials)
	if mean < 0.4 || mean > 2.0 {
		t.Errorf("mean witness count = %v over %d trials, want ≈ 1", mean, trials)
	}
}

func TestRunOneRoundSoundness(t *testing.T) {
	// Every witness the one-round algorithm reports must be real.
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 5; trial++ {
		in, err := Generate(rng, 200)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunOneRound(in, 16, 0.25, rng.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		truth, err := TrueWitnesses(in)
		if err != nil {
			t.Fatal(err)
		}
		truthKeys := map[string]bool{}
		for _, tp := range truth {
			truthKeys[tp.Key()] = true
		}
		for _, w := range res.Witnesses {
			if !truthKeys[w.Key()] {
				t.Errorf("false witness %v", w)
			}
		}
		if res.TrueCount != len(truth) {
			t.Errorf("TrueCount = %d, want %d", res.TrueCount, len(truth))
		}
		if res.Stats.NumRounds() != 1 {
			t.Errorf("rounds = %d, want 1", res.Stats.NumRounds())
		}
	}
}

// TestSuccessDropsWithEpsilonBelowHalf: at ε ≥ 1/2 the chain is fully
// computable in one round, so conditioned success is 1; at small ε
// with large p the success probability must drop markedly.
func TestSuccessDropsWithEpsilonBelowHalf(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	n := 144
	trials := 12
	pHigh, err := SuccessProbability(rng, n, 16, 0.5, trials)
	if err != nil {
		t.Fatal(err)
	}
	if pHigh < 0.99 {
		t.Errorf("success at ε=1/2 = %v, want 1 (full HC)", pHigh)
	}
	rng2 := rand.New(rand.NewPCG(5, 5))
	pLow, err := SuccessProbability(rng2, n, 256, 0.0, trials)
	if err != nil {
		t.Fatal(err)
	}
	// Theory: fraction of known q' answers ≈ p^{-2(1-ε)+1} = 1/p; with
	// n answers of q' and ~1 full witness, success ≈ n/p ... bounded
	// well below 1 for p = 256 ≫ √n.
	if pLow > 0.75 {
		t.Errorf("success at ε=0, p=256 = %v; want a clear drop below ε=1/2's %v", pLow, pHigh)
	}
	_ = math.Sqrt // document the √n scale used above
}

func TestSuccessProbabilityValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	if _, err := SuccessProbability(rng, 100, 4, 0, 0); err == nil {
		t.Error("want error for zero trials")
	}
}
