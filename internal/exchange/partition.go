package exchange

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/relation"
)

// Partitioner decides, tuple by tuple, which workers receive a tuple.
// Implementations must be safe for concurrent use: Partition invokes
// Route from one goroutine per source shard.
type Partitioner interface {
	// Route appends the destination worker ids of t — the i-th tuple of
	// the source relation — to buf and returns the extended slice.
	// Callers pass a reusable scratch buffer (typically buf[:0]); Route
	// must not retain it. Returning no destinations drops the tuple.
	Route(i int, t relation.Tuple, buf []int) []int
}

// HashDest is the shared splitmix64-style hash placement used by the
// plain-hash disciplines (skew routing, cc vertex ownership): the
// worker owning value v under the given seed, in [0, p).
func HashDest(v int, seed uint64, p int) int {
	z := uint64(v) + seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int((z ^ (z >> 31)) % uint64(p))
}

// HashPartitioner hashes one column to a single destination — the
// classic equi-join shuffle.
type HashPartitioner struct {
	// Col is the tuple position hashed.
	Col int
	// P is the worker count.
	P int
	// Seed drives the hash.
	Seed uint64
}

// Route implements Partitioner.
func (h HashPartitioner) Route(_ int, t relation.Tuple, buf []int) []int {
	return append(buf, HashDest(t[h.Col], h.Seed, h.P))
}

// Broadcast replicates every tuple to all P workers (tiny relations,
// e.g. the √n-sized unary endpoints of Prop 3.12).
type Broadcast struct {
	// P is the worker count.
	P int
}

// Route implements Partitioner.
func (b Broadcast) Route(_ int, _ relation.Tuple, buf []int) []int {
	for d := 0; d < b.P; d++ {
		buf = append(buf, d)
	}
	return buf
}

// RouteFunc adapts a per-tuple destination function to the Partitioner
// interface (the compatibility shim for callers of the historic
// mpc.Cluster.Scatter signature).
type RouteFunc func(t relation.Tuple) []int

// Route implements Partitioner.
func (f RouteFunc) Route(_ int, t relation.Tuple, buf []int) []int {
	return append(buf, f(t)...)
}

// Delivery is one sealed per-destination run bound for worker To under
// relation name Rel — the unit the mpc engine accounts and delivers.
type Delivery struct {
	To  int
	Rel string
	Buf *Buffer
}

// minShard is the smallest per-goroutine shard worth spawning; below
// it, partitioning runs inline.
const minShard = 2048

// Partition routes tuples through part into per-destination columnar
// buffers, one sender goroutine per source shard, and returns the
// sealed runs in deterministic (destination-major, shard-minor) order.
// It errors on any out-of-range destination.
func Partition(rel string, tuples []relation.Tuple, arity, p int, part Partitioner) ([]Delivery, error) {
	if p < 1 {
		return nil, fmt.Errorf("exchange: partition %s: %d workers", rel, p)
	}
	shards := len(tuples) / minShard
	if max := runtime.GOMAXPROCS(0); shards > max {
		shards = max
	}
	if shards < 1 {
		shards = 1
	}
	per := make([][]*Buffer, shards) // shard → dest → buffer
	errs := make([]error, shards)
	chunk := (len(tuples) + shards - 1) / shards
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > len(tuples) {
			hi = len(tuples)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			bufs := make([]*Buffer, p)
			var dsts []int
			for i := lo; i < hi; i++ {
				t := tuples[i]
				dsts = part.Route(i, t, dsts[:0])
				for _, d := range dsts {
					if d < 0 || d >= p {
						errs[s] = fmt.Errorf("exchange: partition %s: destination %d out of range [0,%d)", rel, d, p)
						return
					}
					b := bufs[d]
					if b == nil {
						b = NewBuffer(arity)
						bufs[d] = b
					}
					b.Append(t)
				}
			}
			for _, b := range bufs {
				if b != nil {
					b.Seal() // parallel sort inside the shard goroutine
				}
			}
			per[s] = bufs
		}(s, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []Delivery
	for d := 0; d < p; d++ {
		for s := 0; s < shards; s++ {
			if per[s] == nil || per[s][d] == nil || per[s][d].Len() == 0 {
				continue
			}
			out = append(out, Delivery{To: d, Rel: rel, Buf: per[s][d]})
		}
	}
	return out, nil
}

// Outbox accumulates computed tuples bound for other workers during a
// communication round — the columnar sender side for payloads that are
// not scatters of a stored relation (label propagation, cluster sets).
// One Outbox belongs to one sender goroutine; it is not itself
// concurrency-safe.
type Outbox struct {
	p     int
	byRel map[string][]*Buffer
	order []string
	err   error
}

// NewOutbox returns an outbox for a p-worker cluster.
func NewOutbox(p int) *Outbox {
	return &Outbox{p: p, byRel: make(map[string][]*Buffer)}
}

// Send buffers a copy of t for worker dst under relation rel. An
// out-of-range destination is recorded as an error (reported when the
// round delivers) and the tuple is dropped.
func (o *Outbox) Send(dst int, rel string, t relation.Tuple) {
	if dst < 0 || dst >= o.p {
		if o.err == nil {
			o.err = fmt.Errorf("exchange: send %s to worker %d out of range [0,%d)", rel, dst, o.p)
		}
		return
	}
	bufs, ok := o.byRel[rel]
	if !ok {
		bufs = make([]*Buffer, o.p)
		o.byRel[rel] = bufs
		o.order = append(o.order, rel)
	}
	b := bufs[dst]
	if b == nil {
		b = NewBuffer(len(t))
		bufs[dst] = b
	}
	b.Append(t)
}

// Err returns the first routing error recorded by Send.
func (o *Outbox) Err() error { return o.err }

// Deliveries seals and returns the accumulated runs in deterministic
// (relation, destination) order.
func (o *Outbox) Deliveries() []Delivery {
	var out []Delivery
	for _, rel := range o.order {
		bufs := o.byRel[rel]
		for d, b := range bufs {
			if b == nil || b.Len() == 0 {
				continue
			}
			b.Seal()
			out = append(out, Delivery{To: d, Rel: rel, Buf: b})
		}
	}
	return out
}
