package exchange

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

// sortTuples orders a tuple slice lexicographically (multiset compare
// helper).
func sortTuples(ts []relation.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
}

// TestPartitionRoundTripIdentity: for random tuple sets (arities that
// pack, arities that don't, and values wide enough to force the flat
// fallback), pack → partition → unpack is the identity: the union of
// materialized destination buffers equals the multiset of routed
// tuples, and every tuple appears exactly at the destinations its
// partitioner chose.
func TestPartitionRoundTripIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xfab))
		arity := 1 + rng.IntN(9)
		p := 1 + rng.IntN(16)
		n := rng.IntN(5000)
		wide := rng.IntN(3) == 0 // sprinkle values that break packing
		tuples := make([]relation.Tuple, n)
		for i := range tuples {
			tu := make(relation.Tuple, arity)
			for j := range tu {
				tu[j] = rng.IntN(1 << 10)
				if wide && rng.IntN(50) == 0 {
					tu[j] = 1 << 40
				}
			}
			tuples[i] = tu
		}
		part := HashPartitioner{Col: rng.IntN(arity), P: p, Seed: seed}
		ds, err := Partition("R", tuples, arity, p, part)
		if err != nil {
			return false
		}
		// Union across destinations == input multiset.
		var union []relation.Tuple
		perDest := make([][]relation.Tuple, p)
		for _, d := range ds {
			got := d.Buf.AppendTuples(nil)
			union = append(union, got...)
			perDest[d.To] = append(perDest[d.To], got...)
		}
		if len(union) != n {
			return false
		}
		inCopy := make([]relation.Tuple, n)
		copy(inCopy, tuples)
		sortTuples(inCopy)
		sortTuples(union)
		for i := range inCopy {
			if !union[i].Equal(inCopy[i]) {
				return false
			}
		}
		// Every tuple sits exactly where Route said.
		want := make([][]relation.Tuple, p)
		for i, tu := range tuples {
			for _, d := range part.Route(i, tu, nil) {
				want[d] = append(want[d], tu)
			}
		}
		for d := 0; d < p; d++ {
			if len(want[d]) != len(perDest[d]) {
				return false
			}
			sortTuples(want[d])
			sortTuples(perDest[d])
			for i := range want[d] {
				if !want[d][i].Equal(perDest[d][i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionBitsMatchPerTupleAccounting: the buffer-size bit
// accounting (the columnar path) equals the historic per-tuple
// accounting: Σ over (tuple, destination) of arity·bitsPerValue.
func TestPartitionBitsMatchPerTupleAccounting(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xb175))
		arity := 1 + rng.IntN(4)
		p := 2 + rng.IntN(12)
		n := rng.IntN(4000)
		bitsPerValue := 1 + rng.IntN(20)
		tuples := make([]relation.Tuple, n)
		for i := range tuples {
			tu := make(relation.Tuple, arity)
			for j := range tu {
				tu[j] = rng.IntN(1000)
			}
			tuples[i] = tu
		}
		// Replicating partitioner: route to 1–3 pseudo-random workers.
		part := RouteFunc(func(tu relation.Tuple) []int {
			h := HashDest(tu[0], seed, p)
			out := []int{h}
			for k := 1; k <= tu[0]%3; k++ {
				out = append(out, (h+k)%p)
			}
			return out
		})
		ds, err := Partition("R", tuples, arity, p, part)
		if err != nil {
			return false
		}
		perWorker := make([]int64, p)
		var total int64
		for _, d := range ds {
			b := d.Buf.Bits(bitsPerValue)
			perWorker[d.To] += b
			total += b
		}
		// Per-tuple reference.
		refWorker := make([]int64, p)
		var refTotal int64
		for _, tu := range tuples {
			for _, d := range part.Route(0, tu, nil) {
				bits := int64(arity) * int64(bitsPerValue)
				refWorker[d] += bits
				refTotal += bits
			}
		}
		if total != refTotal {
			return false
		}
		for i := range perWorker {
			if perWorker[i] != refWorker[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeDedupEquivalence: the k-way merge over packed sorted runs
// agrees with the reference concat-then-DedupSort on random groups,
// including Zipf-skewed duplicates.
func TestMergeDedupEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x4ead))
		arity := 1 + rng.IntN(5)
		groups := make([][]relation.Tuple, rng.IntN(8))
		var all []relation.Tuple
		for gi := range groups {
			n := rng.IntN(1200)
			g := make([]relation.Tuple, n)
			for i := range g {
				tu := make(relation.Tuple, arity)
				for j := range tu {
					// Skewed small domain → many duplicates.
					tu[j] = int(rng.ExpFloat64()*10) % 50
					if tu[j] < 0 {
						tu[j] = 0
					}
				}
				g[i] = tu
			}
			groups[gi] = g
			all = append(all, g...)
		}
		got := MergeDedupTuples(groups, arity)
		ref := make([]relation.Tuple, len(all))
		for i, tu := range all {
			ref[i] = tu.Clone()
		}
		ref = relation.DedupSort(ref)
		if len(got) != len(ref) {
			return false
		}
		for i := range ref {
			if !got[i].Equal(ref[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
