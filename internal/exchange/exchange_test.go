package exchange

import (
	"testing"

	"repro/internal/relation"
)

func TestBufferPackedRoundTrip(t *testing.T) {
	b := NewBuffer(3)
	in := []relation.Tuple{{3, 2, 1}, {1, 2, 3}, {1, 2, 3}, {9, 9, 9}}
	for _, tu := range in {
		b.Append(tu)
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Seal()
	got := b.AppendTuples(nil)
	want := []relation.Tuple{{1, 2, 3}, {1, 2, 3}, {3, 2, 1}, {9, 9, 9}}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("sealed[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Bits: 4 tuples × 3 values × 5 bits.
	if bits := b.Bits(5); bits != 60 {
		t.Errorf("Bits = %d, want 60", bits)
	}
}

func TestBufferMigratesOnWideValues(t *testing.T) {
	// Arity 3 packs at 21 bits per value; 1<<30 forces the flat path
	// after two packed appends.
	b := NewBuffer(3)
	b.Append(relation.Tuple{5, 6, 7})
	b.Append(relation.Tuple{2, 3, 4})
	b.Append(relation.Tuple{1 << 30, 1, 2})
	b.Seal()
	got := b.AppendTuples(nil)
	want := []relation.Tuple{{2, 3, 4}, {5, 6, 7}, {1 << 30, 1, 2}}
	if len(got) != 3 {
		t.Fatalf("Len = %d", len(got))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("sealed[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBufferHugeArityFallsBack(t *testing.T) {
	// Arity 65 cannot pack at all (PackedShift = 0).
	wide := make(relation.Tuple, 65)
	wide[64] = 42
	b := NewBuffer(65)
	b.Append(wide)
	b.Seal()
	got := b.AppendTuples(nil)
	if len(got) != 1 || !got[0].Equal(wide) {
		t.Fatalf("fallback round-trip failed: %v", got)
	}
}

func TestColumnTuplesFrom(t *testing.T) {
	c := &Column{}
	r1 := NewBuffer(2)
	r1.Append(relation.Tuple{2, 2})
	r1.Append(relation.Tuple{1, 1})
	c.Add(r1) // sealed on add → sorted: (1,1),(2,2)
	r2 := NewBuffer(2)
	r2.Append(relation.Tuple{3, 3})
	c.Add(r2)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	all := c.Tuples()
	want := []relation.Tuple{{1, 1}, {2, 2}, {3, 3}}
	for i := range want {
		if !all[i].Equal(want[i]) {
			t.Errorf("Tuples[%d] = %v", i, all[i])
		}
	}
	tail := c.TuplesFrom(2)
	if len(tail) != 1 || !tail[0].Equal(relation.Tuple{3, 3}) {
		t.Errorf("TuplesFrom(2) = %v", tail)
	}
	if got := c.TuplesFrom(3); got != nil {
		t.Errorf("TuplesFrom(past end) = %v", got)
	}
}

func TestOutboxDeliveries(t *testing.T) {
	o := NewOutbox(3)
	o.Send(2, "A", relation.Tuple{5})
	o.Send(0, "A", relation.Tuple{1})
	o.Send(2, "B", relation.Tuple{7, 8})
	ds := o.Deliveries()
	if len(ds) != 3 {
		t.Fatalf("deliveries = %d", len(ds))
	}
	// Deterministic order: rel insertion order, then destination.
	if ds[0].Rel != "A" || ds[0].To != 0 || ds[1].Rel != "A" || ds[1].To != 2 || ds[2].Rel != "B" || ds[2].To != 2 {
		t.Errorf("order = %+v", ds)
	}
	if o.Err() != nil {
		t.Errorf("unexpected err: %v", o.Err())
	}
	o.Send(9, "A", relation.Tuple{1})
	if o.Err() == nil {
		t.Error("out-of-range Send should record an error")
	}
}

func TestPartitionRejectsBadDestination(t *testing.T) {
	tuples := []relation.Tuple{{1}, {2}}
	_, err := Partition("R", tuples, 1, 2, RouteFunc(func(t relation.Tuple) []int {
		return []int{3}
	}))
	if err == nil {
		t.Fatal("want error for destination out of range")
	}
}

func TestBroadcastPartitioner(t *testing.T) {
	ds, err := Partition("R", []relation.Tuple{{4}}, 1, 3, Broadcast{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("deliveries = %d, want 3", len(ds))
	}
	for i, d := range ds {
		if d.To != i || d.Buf.Len() != 1 {
			t.Errorf("delivery %d = to %d len %d", i, d.To, d.Buf.Len())
		}
	}
}

func TestMergeRunsMixedPaths(t *testing.T) {
	// One packed run, one flat run (wide value): merge falls back and
	// still yields the deduplicated sorted union.
	a := NewBuffer(2)
	a.Append(relation.Tuple{1, 2})
	a.Append(relation.Tuple{3, 4})
	a.Seal()
	b := NewBuffer(2)
	b.Append(relation.Tuple{1 << 40, 0})
	b.Append(relation.Tuple{1, 2})
	b.Seal()
	got := MergeRuns([]*Buffer{a, b})
	want := []relation.Tuple{{1, 2}, {3, 4}, {1 << 40, 0}}
	if len(got) != len(want) {
		t.Fatalf("merged = %v", got)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("merged[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMergeDedupTuplesEmpty(t *testing.T) {
	if got := MergeDedupTuples(nil, 2); got != nil {
		t.Errorf("empty merge = %v", got)
	}
	if got := MergeDedupTuples([][]relation.Tuple{nil, {}}, 2); got != nil {
		t.Errorf("all-empty merge = %v", got)
	}
}
