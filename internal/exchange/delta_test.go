package exchange

import (
	"math"
	"math/rand/v2"
	"reflect"
	"slices"
	"strings"
	"testing"

	"repro/internal/relation"
)

// sortedWords builds n sorted words with geometric-ish gaps, covering
// runs of equal values (delta 0) and large jumps.
func sortedWords(n int, seed uint64) []uint64 {
	rng := rand.New(rand.NewPCG(seed, 1))
	words := make([]uint64, n)
	var cur uint64
	for i := range words {
		switch rng.IntN(4) {
		case 0: // repeat
		case 1:
			cur += uint64(rng.IntN(16))
		case 2:
			cur += uint64(rng.IntN(1 << 20))
		default:
			cur += uint64(rng.IntN(1<<30)) << 17
		}
		words[i] = cur
	}
	return words
}

func TestDeltaWordsRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 4096} {
		words := sortedWords(n, uint64(n)+3)
		enc := AppendDeltaWords(nil, words)
		if got, want := len(enc), DeltaWordsSize(words); got != want {
			t.Fatalf("n=%d: encoded %d bytes, DeltaWordsSize says %d", n, got, want)
		}
		dec, err := DecodeDeltaWords(enc, n)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if n == 0 {
			if len(dec) != 0 {
				t.Fatalf("n=0 decoded %d words", len(dec))
			}
			continue
		}
		if !reflect.DeepEqual(words, dec) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

// TestDeltaWordsExtremes: boundary values survive the codec.
func TestDeltaWordsExtremes(t *testing.T) {
	words := []uint64{0, 0, 1, math.MaxUint64 - 1, math.MaxUint64, math.MaxUint64}
	dec, err := DecodeDeltaWords(AppendDeltaWords(nil, words), len(words))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(words, dec) {
		t.Fatalf("got %v, want %v", dec, words)
	}
}

func TestDecodeDeltaWordsRejects(t *testing.T) {
	good := AppendDeltaWords(nil, sortedWords(50, 9))
	cases := []struct {
		name  string
		data  []byte
		count int
		want  string
	}{
		{"truncated", good[:len(good)-1], 50, "varint"},
		{"trailing", append(slices.Clone(good), 0), 50, "trailing"},
		{"count exceeds bytes", good, len(good) + 1, "exceeds"},
		{"count too low leaves trailing", good, 10, "trailing"},
		{"negative count", good, -1, "count"},
		{"nonempty at count zero", good, 0, "trailing"},
		// MaxUint64 then a delta of 1 wraps.
		{"overflow", AppendDeltaWords(AppendDeltaWords(nil, []uint64{math.MaxUint64}), []uint64{1}), 2, "overflow"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeDeltaWords(c.data, c.count)
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestDecodeDeltaWordsSortedByConstruction: whatever bytes decode
// successfully yield a non-decreasing sequence.
func TestDecodeDeltaWordsSortedByConstruction(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 5))
	for trial := 0; trial < 200; trial++ {
		b := make([]byte, rng.IntN(64))
		for i := range b {
			b[i] = byte(rng.Uint32())
		}
		count := rng.IntN(len(b) + 1)
		words, err := DecodeDeltaWords(b, count)
		if err != nil {
			continue
		}
		if !slices.IsSorted(words) {
			t.Fatalf("trial %d: decoded unsorted words %v", trial, words)
		}
	}
}

// TestNewBufferFromSortedWords: the trusted constructor preserves the
// given order and seals without validating — and agrees with the
// validating constructor on well-formed sorted input.
func TestNewBufferFromSortedWords(t *testing.T) {
	src := NewBuffer(3)
	rng := rand.New(rand.NewPCG(13, 2))
	for i := 0; i < 100; i++ {
		src.Append(relation.Tuple{rng.IntN(1000), rng.IntN(1000), rng.IntN(1000)})
	}
	src.Seal()
	words, _ := src.Words()

	trusted, err := NewBufferFromSortedWords(3, slices.Clone(words))
	if err != nil {
		t.Fatal(err)
	}
	if !trusted.Sealed() {
		t.Fatal("trusted buffer not sealed")
	}
	checked, err := NewBufferFromWords(3, slices.Clone(words))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trusted.AppendTuples(nil), checked.AppendTuples(nil)) {
		t.Fatal("trusted and validating constructors disagree on sorted input")
	}

	if _, err := NewBufferFromSortedWords(0, nil); err == nil {
		t.Fatal("arity 0 accepted")
	}
	if _, err := NewBufferFromSortedWords(65, nil); err == nil {
		t.Fatal("unpackable arity accepted")
	}
}
