package exchange

import (
	"sync"

	"repro/internal/relation"
)

// MergeRuns k-way merges sealed sorted runs into their deduplicated,
// lexicographically sorted union — the columnar replacement for
// concatenate-then-sort answer gathering. When every run is packed at
// the same arity the merge works directly on uint64 words; otherwise it
// falls back to materializing and relation.DedupSort.
func MergeRuns(runs []*Buffer) []relation.Tuple {
	live := runs[:0:0]
	for _, r := range runs {
		if r != nil && r.Len() > 0 {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return nil
	}
	arity := live[0].arity
	packed := true
	for _, r := range live {
		if !r.sealed {
			r.Seal()
		}
		if !r.packed || r.arity != arity {
			packed = false
		}
	}
	if !packed {
		var all []relation.Tuple
		for _, r := range live {
			all = r.AppendTuples(all)
		}
		return relation.DedupSort(all)
	}
	words := mergeWords(live)
	// Unpack into tuples over one fresh backing array.
	shift := live[0].shift
	mask := relation.PackedMask(shift)
	backing := make([]int, len(words)*arity)
	out := make([]relation.Tuple, len(words))
	for i, key := range words {
		row := backing[i*arity : (i+1)*arity]
		for j := arity - 1; j >= 0; j-- {
			row[j] = int(key & mask)
			key >>= shift
		}
		out[i] = relation.Tuple(row)
	}
	return out
}

// mergeWords merges the sorted word slices of the runs, dropping
// duplicates, via a binary min-heap of run cursors.
func mergeWords(runs []*Buffer) []uint64 {
	type cursor struct {
		words []uint64
		pos   int
	}
	h := make([]cursor, 0, len(runs))
	total := 0
	for _, r := range runs {
		h = append(h, cursor{words: r.words})
		total += len(r.words)
	}
	less := func(a, b cursor) bool { return a.words[a.pos] < b.words[b.pos] }
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(h) && less(h[l], h[small]) {
				small = l
			}
			if r < len(h) && less(h[r], h[small]) {
				small = r
			}
			if small == i {
				return
			}
			h[i], h[small] = h[small], h[i]
			i = small
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		down(i)
	}
	out := make([]uint64, 0, total)
	for len(h) > 0 {
		c := &h[0]
		w := c.words[c.pos]
		if len(out) == 0 || out[len(out)-1] != w {
			out = append(out, w)
		}
		c.pos++
		if c.pos == len(c.words) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		down(0)
	}
	return out
}

// FoldRuns streams the deduplicated sorted union of the runs into
// yield, one tuple at a time, without materializing the merged answer
// set — the gather-phase hook grouped aggregation folds through: the
// coordinator keeps one accumulator row per group instead of the full
// answer. On the packed fast path the tuple passed to yield is reused
// between calls; yield must not retain it.
func FoldRuns(runs []*Buffer, yield func(relation.Tuple)) {
	live := runs[:0:0]
	for _, r := range runs {
		if r != nil && r.Len() > 0 {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return
	}
	arity := live[0].arity
	packed := true
	for _, r := range live {
		if !r.sealed {
			r.Seal()
		}
		if !r.packed || r.arity != arity {
			packed = false
		}
	}
	if !packed {
		var all []relation.Tuple
		for _, r := range live {
			all = r.AppendTuples(all)
		}
		for _, t := range relation.DedupSort(all) {
			yield(t)
		}
		return
	}
	words := mergeWords(live)
	shift := live[0].shift
	mask := relation.PackedMask(shift)
	row := make(relation.Tuple, arity)
	for _, key := range words {
		for j := arity - 1; j >= 0; j-- {
			row[j] = int(key & mask)
			key >>= shift
		}
		yield(row)
	}
}

// mergeParallelThreshold is the total tuple count above which
// MergeDedupTuples packs its groups concurrently.
const mergeParallelThreshold = 1 << 14

// MergeDedupTuples deduplicates and sorts the union of the groups
// (typically per-worker local join outputs) by packing each group into
// a sorted columnar run — in parallel when the input is large — and
// k-way merging the runs.
func MergeDedupTuples(groups [][]relation.Tuple, arity int) []relation.Tuple {
	runs := make([]*Buffer, 0, len(groups))
	total := 0
	for _, g := range groups {
		if len(g) > 0 {
			total += len(g)
		}
	}
	if total == 0 {
		return nil
	}
	build := func(g []relation.Tuple) *Buffer {
		b := NewBuffer(arity)
		for _, t := range g {
			b.Append(t)
		}
		b.Seal()
		return b
	}
	if total < mergeParallelThreshold {
		for _, g := range groups {
			if len(g) > 0 {
				runs = append(runs, build(g))
			}
		}
		return MergeRuns(runs)
	}
	runs = make([]*Buffer, len(groups))
	var wg sync.WaitGroup
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, g []relation.Tuple) {
			defer wg.Done()
			runs[i] = build(g)
		}(i, g)
	}
	wg.Wait()
	return MergeRuns(runs)
}
