package exchange

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/relation"
)

// This file is the columnar bit-width reduction of the exchange layer:
// a delta + varint codec over the packed word payload of a sealed
// Buffer. Sealed packed buffers are sorted uint64 slices, and the
// packing scheme puts values most-significant-first, so the join
// column that drives partitioning occupies the high bits of every
// word. Skewed inputs (Zipf heavy hitters) therefore produce long runs
// of nearly-equal words whose successive differences are tiny, and
// encoding the first word plus non-negative deltas as uvarints ships
// the same run in a fraction of the raw 8 bytes per tuple.
//
// The codec is exact and order-preserving: deltas of a sorted slice
// are non-negative, so decoding reconstructs the identical sorted
// words. MPC(ε) statistics are unaffected by construction — the model
// accounts bits at the configured per-value width on the coordinator,
// never from transport byte counts — so the same query reports
// byte-identical round stats whether or not frames travel compressed.

// NewBufferFromSortedWords reconstructs a sealed packed buffer from a
// word payload that is already sorted and within the packed width —
// the trusted fast path used between this repo's own coordinator and
// worker processes, where payloads come from sealed buffers by
// construction. It skips the per-word high-bit validation and the
// re-sort that NewBufferFromWords performs, and takes ownership of
// words. Callers decoding untrusted input must use NewBufferFromWords
// instead.
func NewBufferFromSortedWords(arity int, words []uint64) (*Buffer, error) {
	if arity < 1 {
		return nil, fmt.Errorf("exchange: packed buffer arity %d, need ≥ 1", arity)
	}
	shift := relation.PackedShift(arity)
	if shift == 0 {
		return nil, fmt.Errorf("exchange: arity %d does not admit packed words", arity)
	}
	return &Buffer{arity: arity, shift: shift, words: words, packed: true, sealed: true}, nil
}

// DeltaWordsSize returns the exact encoded size in bytes of
// AppendDeltaWords(nil, words). It assumes words is sorted
// (non-decreasing); the result is meaningless otherwise.
func DeltaWordsSize(words []uint64) int {
	if len(words) == 0 {
		return 0
	}
	size := uvarintLen(words[0])
	prev := words[0]
	for _, w := range words[1:] {
		size += uvarintLen(w - prev)
		prev = w
	}
	return size
}

// AppendDeltaWords appends the delta-varint encoding of a sorted word
// slice to dst and returns the extended slice: the first word as a
// uvarint, then each successive non-negative difference as a uvarint.
// The caller must pass a sorted (non-decreasing) slice — sealed packed
// buffers satisfy this — or decoding will not reproduce the input.
func AppendDeltaWords(dst []byte, words []uint64) []byte {
	if len(words) == 0 {
		return dst
	}
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], words[0])
	dst = append(dst, scratch[:n]...)
	prev := words[0]
	for _, w := range words[1:] {
		n = binary.PutUvarint(scratch[:], w-prev)
		dst = append(dst, scratch[:n]...)
		prev = w
	}
	return dst
}

// DecodeDeltaWords decodes count delta-varint words from b, returning
// the reconstructed sorted slice. It fails on truncated or oversized
// varints, on trailing bytes, and on accumulated overflow past the
// uint64 range, so a hostile payload cannot smuggle in an unsorted or
// wrapped sequence: decoded words are non-decreasing by construction.
// Allocation is bounded by count ≤ len(b), since every encoded word
// occupies at least one byte.
func DecodeDeltaWords(b []byte, count int) ([]uint64, error) {
	if count < 0 {
		return nil, fmt.Errorf("exchange: delta word count %d", count)
	}
	if count == 0 {
		if len(b) != 0 {
			return nil, fmt.Errorf("exchange: %d trailing delta bytes", len(b))
		}
		return nil, nil
	}
	if count > len(b) {
		return nil, fmt.Errorf("exchange: delta count %d exceeds %d payload bytes", count, len(b))
	}
	words := make([]uint64, count)
	cur, off := uint64(0), 0
	for i := 0; i < count; i++ {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, fmt.Errorf("exchange: bad delta varint at word %d", i)
		}
		off += n
		if i == 0 {
			cur = v
		} else {
			next := cur + v
			if next < cur {
				return nil, fmt.Errorf("exchange: delta overflow at word %d", i)
			}
			cur = next
		}
		words[i] = cur
	}
	if off != len(b) {
		return nil, fmt.Errorf("exchange: %d trailing delta bytes", len(b)-off)
	}
	return words, nil
}

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}
