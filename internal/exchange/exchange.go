// Package exchange is the columnar shuffle subsystem of the MPC
// simulation: the one hot path through which every engine (hypercube,
// multiround, skew, cc) moves tuples between workers.
//
// The paper measures algorithms purely by communication — per-worker
// per-round received bits — so the shuffle is the natural first-class
// subsystem. Instead of routing per-tuple messages through shared maps,
// senders partition their source shards in parallel (one goroutine per
// shard) into per-destination Buffers. A Buffer stores same-schema
// tuples in packed columnar form: when the arity admits it, each tuple
// becomes a single uint64 word (the same bit-packing scheme as
// relation.TupleSet, ⌊64/arity⌋ bits per value), so partitioning is
// allocation-free per tuple, buffers sort as plain integer slices, and
// round statistics (total bits, max per-worker load, cap enforcement)
// fall out of buffer sizes with no per-message accounting.
//
// Receivers accumulate sealed (sorted) runs in a Column; deduplicated
// global answers come from a k-way merge over sorted runs (MergeRuns /
// MergeDedupTuples) instead of concatenate-then-sort.
//
// Routing policy is pluggable through the Partitioner interface; the
// three disciplines of the engines — plain hash partitioning, hypercube
// grid replication, and skew-aware heavy-hitter routing — are all
// Partitioners (see HashPartitioner here, hypercube.NewGridPartitioner,
// and the skew package).
package exchange

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/relation"
)

// Buffer holds same-arity tuples bound for one destination in packed
// columnar form. When every value fits in ⌊64/arity⌋ bits (the
// relation packed-key scheme) the buffer stores one uint64 word per
// tuple; otherwise it transparently migrates to a flat row-major []int
// with stride = arity. A sealed buffer is sorted lexicographically and
// immutable.
type Buffer struct {
	arity  int
	shift  uint
	words  []uint64 // packed path (nil after migration)
	flat   []int    // fallback path, row-major
	packed bool
	sealed bool
}

// NewBuffer returns an empty buffer for tuples of the given arity.
func NewBuffer(arity int) *Buffer {
	b := &Buffer{arity: arity}
	if shift := relation.PackedShift(arity); shift > 0 {
		b.shift = shift
		b.packed = true
	}
	return b
}

// Arity returns the tuple arity.
func (b *Buffer) Arity() int { return b.arity }

// Len returns the number of buffered tuples.
func (b *Buffer) Len() int {
	if b.packed {
		return len(b.words)
	}
	if b.arity == 0 {
		return 0
	}
	return len(b.flat) / b.arity
}

// Bits returns the communication cost of the buffer at the given
// per-value bit width: tuples × arity × bitsPerValue.
func (b *Buffer) Bits(bitsPerValue int) int64 {
	return int64(b.Len()) * int64(b.arity) * int64(bitsPerValue)
}

// Append adds a copy of t. It panics on arity mismatch (buffers are
// per-relation, so mixed arities indicate a routing bug) and on a
// sealed buffer.
func (b *Buffer) Append(t relation.Tuple) {
	if len(t) != b.arity {
		panic(fmt.Sprintf("exchange: tuple arity %d appended to arity-%d buffer", len(t), b.arity))
	}
	if b.sealed {
		panic("exchange: append to sealed buffer")
	}
	if b.packed {
		if key, ok := b.pack(t); ok {
			b.words = append(b.words, key)
			return
		}
		b.migrate()
	}
	b.flat = append(b.flat, t...)
}

// pack encodes t as one word; ok is false when a value is negative or
// needs more than shift bits.
func (b *Buffer) pack(t relation.Tuple) (uint64, bool) {
	var key uint64
	for _, v := range t {
		if !relation.FitsPacked(v, b.shift) {
			return 0, false
		}
		key = key<<b.shift | uint64(v)
	}
	return key, true
}

// migrate switches to the flat path, decoding all packed words (packing
// is exact, so nothing is lost).
func (b *Buffer) migrate() {
	b.flat = make([]int, 0, (len(b.words)+1)*b.arity)
	mask := relation.PackedMask(b.shift)
	for _, key := range b.words {
		base := len(b.flat)
		b.flat = append(b.flat, make([]int, b.arity)...)
		for i := b.arity - 1; i >= 0; i-- {
			b.flat[base+i] = int(key & mask)
			key >>= b.shift
		}
	}
	b.words = nil
	b.packed = false
}

// Seal sorts the buffer lexicographically and freezes it; sealed
// buffers are safe for concurrent readers. Packed buffers sort by word
// value, which (values packed most-significant-first at a uniform
// width) coincides with lexicographic tuple order.
func (b *Buffer) Seal() {
	if b.sealed {
		return
	}
	if b.packed {
		slices.Sort(b.words)
	} else if b.arity > 0 {
		sortFlat(b.flat, b.arity)
	}
	b.sealed = true
}

// Sealed reports whether the buffer has been sealed.
func (b *Buffer) Sealed() bool { return b.sealed }

// AppendTuples materializes the buffered tuples onto dst. Every call
// allocates fresh backing storage, so callers receive stable views:
// mutating the returned tuples cannot corrupt the buffer or any other
// caller's view.
func (b *Buffer) AppendTuples(dst []relation.Tuple) []relation.Tuple {
	return b.appendRange(dst, 0, b.Len())
}

// appendRange materializes tuples [from, to) with fresh backing.
func (b *Buffer) appendRange(dst []relation.Tuple, from, to int) []relation.Tuple {
	if from >= to {
		return dst
	}
	backing := make([]int, (to-from)*b.arity)
	if b.packed {
		mask := relation.PackedMask(b.shift)
		for i := from; i < to; i++ {
			key := b.words[i]
			row := backing[(i-from)*b.arity : (i-from+1)*b.arity]
			for j := b.arity - 1; j >= 0; j-- {
				row[j] = int(key & mask)
				key >>= b.shift
			}
			dst = append(dst, relation.Tuple(row))
		}
		return dst
	}
	copy(backing, b.flat[from*b.arity:to*b.arity])
	for i := 0; i < to-from; i++ {
		dst = append(dst, relation.Tuple(backing[i*b.arity:(i+1)*b.arity]))
	}
	return dst
}

// Words returns the packed uint64 payload and true when the buffer is
// on the packed path (one word per tuple, values most-significant
// first at the relation packed-key width). The slice aliases the
// buffer; callers must treat it as read-only. It is the wire
// representation internal/wire serializes.
func (b *Buffer) Words() ([]uint64, bool) {
	if !b.packed {
		return nil, false
	}
	return b.words, true
}

// Flat returns the row-major []int payload of a buffer on the flat
// fallback path (stride = arity). It returns nil for packed buffers;
// check Words first. The slice aliases the buffer; callers must treat
// it as read-only.
func (b *Buffer) Flat() []int {
	if b.packed {
		return nil
	}
	return b.flat
}

// NewBufferFromWords reconstructs a packed buffer from a wire payload
// of one word per tuple. It validates that the arity admits packing
// and that no word sets bits above arity·shift (two distinct words
// must never decode to the same tuple, or sealed word order would stop
// coinciding with lexicographic tuple order). The returned buffer is
// sealed — sorted and immutable — regardless of the input order, and
// takes ownership of words.
func NewBufferFromWords(arity int, words []uint64) (*Buffer, error) {
	if arity < 1 {
		return nil, fmt.Errorf("exchange: packed buffer arity %d, need ≥ 1", arity)
	}
	shift := relation.PackedShift(arity)
	if shift == 0 {
		return nil, fmt.Errorf("exchange: arity %d does not admit packed words", arity)
	}
	if used := uint(arity) * shift; used < 64 {
		for _, w := range words {
			if w>>used != 0 {
				return nil, fmt.Errorf("exchange: packed word %#x sets bits above %d", w, used)
			}
		}
	}
	b := &Buffer{arity: arity, shift: shift, words: words, packed: true}
	b.Seal()
	return b, nil
}

// NewBufferFromFlat reconstructs a flat-path buffer from a row-major
// wire payload (stride = arity). It validates the length is a whole
// number of rows and every value is non-negative (tuple values are
// domain elements). The returned buffer is sealed and takes ownership
// of flat.
func NewBufferFromFlat(arity int, flat []int) (*Buffer, error) {
	if arity < 1 {
		return nil, fmt.Errorf("exchange: flat buffer arity %d, need ≥ 1", arity)
	}
	if len(flat)%arity != 0 {
		return nil, fmt.Errorf("exchange: flat payload of %d values is not a multiple of arity %d", len(flat), arity)
	}
	for _, v := range flat {
		if v < 0 {
			return nil, fmt.Errorf("exchange: negative value %d in flat payload", v)
		}
	}
	b := &Buffer{arity: arity, flat: flat}
	b.Seal()
	return b, nil
}

// sortFlat sorts a row-major flat slice of the given stride
// lexicographically.
func sortFlat(flat []int, stride int) {
	n := len(flat) / stride
	sort.Sort(&flatSorter{flat: flat, stride: stride, n: n})
}

type flatSorter struct {
	flat   []int
	stride int
	n      int
}

func (s *flatSorter) Len() int { return s.n }

func (s *flatSorter) Less(i, j int) bool {
	a := s.flat[i*s.stride : (i+1)*s.stride]
	b := s.flat[j*s.stride : (j+1)*s.stride]
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

func (s *flatSorter) Swap(i, j int) {
	a := s.flat[i*s.stride : (i+1)*s.stride]
	b := s.flat[j*s.stride : (j+1)*s.stride]
	for k := range a {
		a[k], b[k] = b[k], a[k]
	}
}

// Column is the receiver side of the exchange: an append-only sequence
// of sealed runs under one relation name. Tuple order is stable — runs
// in arrival order, each run sorted — so incremental consumers can
// track a consumed prefix by count.
type Column struct {
	runs  []*Buffer
	total int
}

// Add appends a sealed run.
func (c *Column) Add(run *Buffer) {
	if !run.Sealed() {
		run.Seal()
	}
	c.runs = append(c.runs, run)
	c.total += run.Len()
}

// Len returns the total tuple count across runs.
func (c *Column) Len() int { return c.total }

// Runs returns the underlying sealed runs (read-only).
func (c *Column) Runs() []*Buffer { return c.runs }

// Tuples materializes every tuple, run by run, with fresh backing
// storage per call (a stable view: callers cannot corrupt the column
// or each other).
func (c *Column) Tuples() []relation.Tuple {
	return c.TuplesFrom(0)
}

// TuplesFrom materializes the tuples at positions [start, Len()) —
// the incremental read used by round-based consumers.
func (c *Column) TuplesFrom(start int) []relation.Tuple {
	if start < 0 {
		start = 0
	}
	if start >= c.total {
		return nil
	}
	out := make([]relation.Tuple, 0, c.total-start)
	skip := start
	for _, r := range c.runs {
		n := r.Len()
		if skip >= n {
			skip -= n
			continue
		}
		out = r.appendRange(out, skip, n)
		skip = 0
	}
	return out
}
