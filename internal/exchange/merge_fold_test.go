package exchange

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/relation"
)

// foldCollect drains FoldRuns into a materialized slice, cloning each
// yielded tuple (FoldRuns reuses the row on the packed path).
func foldCollect(runs []*Buffer) []relation.Tuple {
	var out []relation.Tuple
	FoldRuns(runs, func(t relation.Tuple) { out = append(out, t.Clone()) })
	return out
}

// TestFoldRunsMatchesMergeRuns checks the streaming fold yields
// exactly the MergeRuns output on random packed runs, including
// cross-run duplicates, and on the unpacked fallback path.
func TestFoldRunsMatchesMergeRuns(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	var runs []*Buffer
	for r := 0; r < 6; r++ {
		b := NewBuffer(3)
		for i := 0; i < 200; i++ {
			b.Append(relation.Tuple{rng.IntN(20) + 1, rng.IntN(20) + 1, rng.IntN(20) + 1})
		}
		b.Seal()
		runs = append(runs, b)
	}
	want := MergeRuns(runs)
	got := foldCollect(runs)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("packed fold: %d tuples, merge: %d", len(got), len(want))
	}

	// Force the fallback with a huge-arity (unpackable) run.
	wide := NewBuffer(65)
	row := make(relation.Tuple, 65)
	for i := range row {
		row[i] = i + 1
	}
	wide.Append(row)
	wide.Append(row)
	wide.Seal()
	fw := foldCollect([]*Buffer{wide, wide})
	mw := MergeRuns([]*Buffer{wide, wide})
	if !reflect.DeepEqual(fw, mw) || len(fw) != 1 {
		t.Fatalf("fallback fold = %v, merge = %v", fw, mw)
	}
}

func TestFoldRunsEmpty(t *testing.T) {
	calls := 0
	FoldRuns(nil, func(relation.Tuple) { calls++ })
	empty := NewBuffer(2)
	FoldRuns([]*Buffer{nil, empty}, func(relation.Tuple) { calls++ })
	if calls != 0 {
		t.Errorf("yield called %d times on empty input", calls)
	}
}

// TestFoldRunsAggregate is the gather-phase fold end to end at the
// exchange layer: folding runs through a relation.Accumulator equals
// aggregating the merged materialized answer.
func TestFoldRunsAggregate(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	var runs []*Buffer
	for r := 0; r < 4; r++ {
		b := NewBuffer(2)
		for i := 0; i < 300; i++ {
			b.Append(relation.Tuple{rng.IntN(7) + 1, rng.IntN(100) + 1})
		}
		b.Seal()
		runs = append(runs, b)
	}
	spec := relation.GroupSpec{
		GroupBy: []int{0},
		Aggs:    []relation.Aggregate{{Func: relation.AggCount, Col: 1}, {Func: relation.AggSum, Col: 1}},
	}
	acc := relation.NewAccumulator(spec)
	FoldRuns(runs, acc.Add)
	got := acc.Result()
	want := relation.GroupAggregate(MergeRuns(runs), spec)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("streamed fold %v != reference %v", got, want)
	}
}
