package relation

import "sort"

// This file provides allocation-lean tuple keys. The historic
// Tuple.Key() renders every tuple as a '|'-separated string, which
// costs one allocation (plus formatting) per lookup and dominated the
// local-join hot path. TupleSet instead packs a tuple's values into a
// single uint64 — arity a gets ⌊64/a⌋ bits per value — and only falls
// back to string keys when a value (or a mixed-arity tuple) does not
// fit, migrating the already-inserted keys transparently.

// PackedShift returns the per-value bit width for packing m values
// into one uint64 key, or 0 when m values cannot be packed.
func PackedShift(m int) uint {
	if m < 1 || m > 64 {
		return 0
	}
	return uint(64 / m)
}

// FitsPacked reports whether value v occupies at most shift bits.
// shift ≥ 63 admits every non-negative int.
func FitsPacked(v int, shift uint) bool {
	if v < 0 {
		return false
	}
	return shift >= 63 || v < 1<<shift
}

// PackedMask returns the mask extracting one shift-bit value.
func PackedMask(shift uint) uint64 {
	if shift >= 64 {
		return ^uint64(0)
	}
	return 1<<shift - 1
}

// TupleSet is an exact membership set for same-arity tuples with a
// packed-uint64 fast path. The zero value is not usable; call
// NewTupleSet.
type TupleSet struct {
	arity int
	shift uint                // bits per value on the packed path
	ints  map[uint64]struct{} // packed path
	strs  map[string]struct{} // fallback path (nil until needed)
}

// NewTupleSet returns a set for tuples of the given arity, sized for
// sizeHint insertions.
func NewTupleSet(arity, sizeHint int) *TupleSet {
	if sizeHint < 0 {
		sizeHint = 0
	}
	s := &TupleSet{arity: arity}
	if shift := PackedShift(arity); shift > 0 {
		s.shift = shift
		s.ints = make(map[uint64]struct{}, sizeHint)
	} else {
		s.strs = make(map[string]struct{}, sizeHint)
	}
	return s
}

// pack encodes t into a uint64 key; ok is false when a value needs
// more than shift bits (or is negative, or the arity differs).
func (s *TupleSet) pack(t Tuple) (uint64, bool) {
	if len(t) != s.arity {
		return 0, false
	}
	var key uint64
	for _, v := range t {
		if !FitsPacked(v, s.shift) {
			return 0, false
		}
		key = key<<s.shift | uint64(v)
	}
	return key, true
}

// migrate re-encodes every packed key as a string key and switches the
// set to the fallback path. Packed keys decode exactly (uniform shift),
// so no information is lost.
func (s *TupleSet) migrate() {
	s.strs = make(map[string]struct{}, len(s.ints))
	mask := PackedMask(s.shift)
	t := make(Tuple, s.arity)
	for key := range s.ints {
		for i := s.arity - 1; i >= 0; i-- {
			t[i] = int(key & mask)
			key >>= s.shift
		}
		s.strs[t.Key()] = struct{}{}
	}
	s.ints = nil
}

// Add inserts t and reports whether it was not already present.
func (s *TupleSet) Add(t Tuple) bool {
	if s.ints != nil {
		if key, ok := s.pack(t); ok {
			if _, dup := s.ints[key]; dup {
				return false
			}
			s.ints[key] = struct{}{}
			return true
		}
		s.migrate()
	}
	k := t.Key()
	if _, dup := s.strs[k]; dup {
		return false
	}
	s.strs[k] = struct{}{}
	return true
}

// Contains reports whether t is in the set.
func (s *TupleSet) Contains(t Tuple) bool {
	if s.ints != nil {
		if key, ok := s.pack(t); ok {
			_, hit := s.ints[key]
			return hit
		}
		// t itself is unpackable; packed members cannot equal it unless
		// it has the wrong arity, which Key() disambiguates — but a
		// packed set only holds arity-matching packable tuples.
		return false
	}
	_, hit := s.strs[t.Key()]
	return hit
}

// Len returns the number of distinct tuples inserted.
func (s *TupleSet) Len() int {
	if s.ints != nil {
		return len(s.ints)
	}
	return len(s.strs)
}

// DedupSort removes duplicates from ts in place and sorts the result
// lexicographically. All tuples must have the arity of ts[0] (mixed
// arities still dedup correctly, via the fallback path).
func DedupSort(ts []Tuple) []Tuple {
	if len(ts) == 0 {
		return ts
	}
	set := NewTupleSet(len(ts[0]), len(ts))
	out := ts[:0]
	for _, t := range ts {
		if set.Add(t) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
