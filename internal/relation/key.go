package relation

import (
	"math/bits"
	"slices"
	"sort"
)

// This file provides allocation-lean tuple keys. The historic
// Tuple.Key() renders every tuple as a '|'-separated string, which
// costs one allocation (plus formatting) per lookup and dominated the
// local-join hot path. TupleSet instead packs a tuple's values into a
// single uint64 — arity a gets ⌊64/a⌋ bits per value — and only falls
// back to string keys when a value (or a mixed-arity tuple) does not
// fit, migrating the already-inserted keys transparently.

// PackedShift returns the per-value bit width for packing m values
// into one uint64 key, or 0 when m values cannot be packed.
func PackedShift(m int) uint {
	if m < 1 || m > 64 {
		return 0
	}
	return uint(64 / m)
}

// FitsPacked reports whether value v occupies at most shift bits.
// shift ≥ 63 admits every non-negative int.
func FitsPacked(v int, shift uint) bool {
	if v < 0 {
		return false
	}
	return shift >= 63 || v < 1<<shift
}

// PackedMask returns the mask extracting one shift-bit value.
func PackedMask(shift uint) uint64 {
	if shift >= 64 {
		return ^uint64(0)
	}
	return 1<<shift - 1
}

// TupleSet is an exact membership set for same-arity tuples with a
// packed-uint64 fast path. The zero value is not usable; call
// NewTupleSet.
type TupleSet struct {
	arity int
	shift uint                // bits per value on the packed path
	ints  map[uint64]struct{} // packed path
	strs  map[string]struct{} // fallback path (nil until needed)
}

// NewTupleSet returns a set for tuples of the given arity, sized for
// sizeHint insertions.
func NewTupleSet(arity, sizeHint int) *TupleSet {
	if sizeHint < 0 {
		sizeHint = 0
	}
	s := &TupleSet{arity: arity}
	if shift := PackedShift(arity); shift > 0 {
		s.shift = shift
		s.ints = make(map[uint64]struct{}, sizeHint)
	} else {
		s.strs = make(map[string]struct{}, sizeHint)
	}
	return s
}

// pack encodes t into a uint64 key; ok is false when a value needs
// more than shift bits (or is negative, or the arity differs).
func (s *TupleSet) pack(t Tuple) (uint64, bool) {
	if len(t) != s.arity {
		return 0, false
	}
	var key uint64
	for _, v := range t {
		if !FitsPacked(v, s.shift) {
			return 0, false
		}
		key = key<<s.shift | uint64(v)
	}
	return key, true
}

// migrate re-encodes every packed key as a string key and switches the
// set to the fallback path. Packed keys decode exactly (uniform shift),
// so no information is lost.
func (s *TupleSet) migrate() {
	s.strs = make(map[string]struct{}, len(s.ints))
	mask := PackedMask(s.shift)
	t := make(Tuple, s.arity)
	for key := range s.ints {
		for i := s.arity - 1; i >= 0; i-- {
			t[i] = int(key & mask)
			key >>= s.shift
		}
		s.strs[t.Key()] = struct{}{}
	}
	s.ints = nil
}

// Add inserts t and reports whether it was not already present.
func (s *TupleSet) Add(t Tuple) bool {
	if s.ints != nil {
		if key, ok := s.pack(t); ok {
			if _, dup := s.ints[key]; dup {
				return false
			}
			s.ints[key] = struct{}{}
			return true
		}
		s.migrate()
	}
	k := t.Key()
	if _, dup := s.strs[k]; dup {
		return false
	}
	s.strs[k] = struct{}{}
	return true
}

// Remove deletes t from the set and reports whether it was present.
func (s *TupleSet) Remove(t Tuple) bool {
	if s.ints != nil {
		if key, ok := s.pack(t); ok {
			if _, hit := s.ints[key]; hit {
				delete(s.ints, key)
				return true
			}
			return false
		}
		// Unpackable tuples are never members of a packed set.
		return false
	}
	k := t.Key()
	if _, hit := s.strs[k]; hit {
		delete(s.strs, k)
		return true
	}
	return false
}

// Contains reports whether t is in the set.
func (s *TupleSet) Contains(t Tuple) bool {
	if s.ints != nil {
		if key, ok := s.pack(t); ok {
			_, hit := s.ints[key]
			return hit
		}
		// t itself is unpackable; packed members cannot equal it unless
		// it has the wrong arity, which Key() disambiguates — but a
		// packed set only holds arity-matching packable tuples.
		return false
	}
	_, hit := s.strs[t.Key()]
	return hit
}

// Len returns the number of distinct tuples inserted.
func (s *TupleSet) Len() int {
	if s.ints != nil {
		return len(s.ints)
	}
	return len(s.strs)
}

// radixSortWords sorts ws ascending with an LSD byte-radix sort:
// linear passes over machine words instead of a comparison sort, which
// is what keeps DedupSort's packed path linear on large join outputs.
// Byte positions that are constant across ws (the common case for
// packed tuples over a small domain) cost one counting scan and no
// scatter. Small inputs fall back to the comparison sort, whose
// constant is lower there.
func radixSortWords(ws []uint64) {
	if len(ws) < 256 {
		slices.Sort(ws)
		return
	}
	buf := make([]uint64, len(ws))
	src, dst := ws, buf
	for shift := uint(0); shift < 64; shift += 8 {
		var counts [256]int
		for _, w := range src {
			counts[(w>>shift)&0xff]++
		}
		if counts[(src[0]>>shift)&0xff] == len(src) {
			continue // byte constant across the slice
		}
		sum := 0
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for _, w := range src {
			i := (w >> shift) & 0xff
			dst[counts[i]] = w
			counts[i]++
		}
		src, dst = dst, src
	}
	if &src[0] != &ws[0] {
		copy(ws, src)
	}
}

// DedupSort removes duplicates from ts in place and sorts the result
// lexicographically. All tuples must have the arity of ts[0] (mixed
// arities still dedup correctly, via the fallback path).
func DedupSort(ts []Tuple) []Tuple {
	if len(ts) == 0 {
		return ts
	}
	if out, ok := dedupSortPacked(ts); ok {
		return out
	}
	set := NewTupleSet(len(ts[0]), len(ts))
	out := ts[:0]
	for _, t := range ts {
		if set.Add(t) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// dedupSortPacked is the single-word fast path of DedupSort: with
// uniform arity m and values narrow enough that m of them fit one
// uint64, MSB-first packing is order-preserving, so sorting the packed
// words sorts the tuples — a radix sort on machine integers instead of
// a reflective comparator, with dedup reduced to compacting equal
// neighbours. The field width is the widest value's actual bit count,
// not ⌊64/m⌋: tight fields keep the keys in the low bytes, which both
// admits higher arities and cuts the radix passes to the bytes in use.
// ok is false (and ts untouched) when any tuple breaks the packing
// preconditions.
func dedupSortPacked(ts []Tuple) ([]Tuple, bool) {
	m := len(ts[0])
	if m < 1 || m > 64 {
		return nil, false
	}
	var maxv int
	for _, t := range ts {
		if len(t) != m {
			return nil, false
		}
		for _, v := range t {
			if v < 0 {
				return nil, false
			}
			if v > maxv {
				maxv = v
			}
		}
	}
	shift := uint(bits.Len64(uint64(maxv) | 1))
	if m*int(shift) > 64 {
		return nil, false
	}
	keys := make([]uint64, len(ts))
	for i, t := range ts {
		var key uint64
		for _, v := range t {
			key = key<<shift | uint64(v)
		}
		keys[i] = key
	}
	radixSortWords(keys)
	keys = slices.Compact(keys)
	mask := PackedMask(shift)
	out := ts[:len(keys)]
	arena := make([]int, len(keys)*m)
	for i, key := range keys {
		row := arena[i*m : (i+1)*m : (i+1)*m]
		for j := m - 1; j >= 0; j-- {
			row[j] = int(key & mask)
			key >>= shift
		}
		out[i] = row
	}
	return out, true
}
