package relation

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"strings"

	"repro/internal/query"
)

// This file holds the relational-algebra operators used both by the
// single-node reference evaluator (ground truth in tests) and by the
// per-worker local join.

// NaturalJoin joins r and s on their shared attribute names. The
// output schema is r.Attrs followed by the attributes of s not in r.
func NaturalJoin(r, s *Relation) *Relation {
	shared := sharedAttrs(r, s)
	outAttrs := make([]string, 0, len(r.Attrs)+len(s.Attrs))
	outAttrs = append(outAttrs, r.Attrs...)
	var sExtra []int // column indices of s not in r
	for i, a := range s.Attrs {
		if r.AttrIndex(a) < 0 {
			outAttrs = append(outAttrs, a)
			sExtra = append(sExtra, i)
		}
	}
	out := New(r.Name+"⋈"+s.Name, outAttrs...)

	if len(shared) == 0 {
		// Cartesian product.
		for _, tr := range r.Tuples {
			for _, ts := range s.Tuples {
				out.Tuples = append(out.Tuples, combine(tr, ts, sExtra))
			}
		}
		return out
	}

	// Hash s on the shared attributes, with packed uint64 keys when
	// the joined columns fit and string keys otherwise.
	rIdx := make([]int, len(shared))
	sIdx := make([]int, len(shared))
	for i, a := range shared {
		rIdx[i] = r.AttrIndex(a)
		sIdx[i] = s.AttrIndex(a)
	}
	if shift, ok := packShift(len(shared), [2]*Relation{r, s}, [2][]int{rIdx, sIdx}); ok {
		hashJoinInto(out, r, s, rIdx, sIdx, sExtra, func(t Tuple, idx []int) uint64 {
			return packColumns(t, idx, shift)
		})
	} else {
		hashJoinInto(out, r, s, rIdx, sIdx, sExtra, projectKey)
	}
	return out
}

// hashJoinInto performs the indexed hash join with an arbitrary
// comparable key type (packed uint64 fast path, string fallback).
//
// The build side is a chained index — head maps a key to the first
// matching tuple position in s, next links the rest — so the map holds
// one fixed-size entry per distinct key instead of a growing []Tuple
// per key. Output rows are sliced out of chunked arenas rather than
// allocated per probe hit; on skewed inputs (heavy keys, quadratic
// output) both together remove the allocation traffic that used to
// dominate this path.
func hashJoinInto[K comparable](out, r, s *Relation, rIdx, sIdx []int, sExtra []int, key func(Tuple, []int) K) {
	head := make(map[K]int32, len(s.Tuples))
	next := make([]int32, len(s.Tuples))
	// Building in reverse index order leaves each chain sorted by s
	// position, preserving the probe output order of the slice index.
	for i := len(s.Tuples) - 1; i >= 0; i-- {
		k := key(s.Tuples[i], sIdx)
		if j, ok := head[k]; ok {
			next[i] = j
		} else {
			next[i] = -1
		}
		head[k] = int32(i)
	}
	// Counting pre-pass: chain walks are cheap relative to reallocating
	// the output while it grows, so size the header slice and the value
	// arena exactly — one allocation each, no growth copies and no
	// write-barrier churn from append doubling.
	total := 0
	for _, tr := range r.Tuples {
		j, ok := head[key(tr, rIdx)]
		if !ok {
			continue
		}
		for ; j >= 0; j = next[j] {
			total++
		}
	}
	if total == 0 {
		return
	}
	width := len(r.Attrs) + len(sExtra)
	arena := make([]int, 0, total*width)
	out.Tuples = slices.Grow(out.Tuples, total)
	for _, tr := range r.Tuples {
		j, ok := head[key(tr, rIdx)]
		if !ok {
			continue
		}
		for ; j >= 0; j = next[j] {
			n := len(arena)
			arena = arena[:n+width]
			row := Tuple(arena[n : n+width : n+width])
			copy(row, tr)
			o := len(tr)
			for _, x := range sExtra {
				row[o] = s.Tuples[j][x]
				o++
			}
			out.Tuples = append(out.Tuples, row)
		}
	}
}

// packShift returns the per-column bit width that packs the indexed
// columns of both relations into a uint64 key, or ok=false when some
// value is negative or too large.
func packShift(cols int, rels [2]*Relation, idxs [2][]int) (uint, bool) {
	shift := PackedShift(cols)
	if shift == 0 {
		return 0, false
	}
	for k, rel := range rels {
		for _, t := range rel.Tuples {
			for _, j := range idxs[k] {
				if !FitsPacked(t[j], shift) {
					return 0, false
				}
			}
		}
	}
	return shift, true
}

// packColumns encodes the indexed values of t with shift bits each.
func packColumns(t Tuple, idx []int, shift uint) uint64 {
	var key uint64
	for _, j := range idx {
		key = key<<shift | uint64(t[j])
	}
	return key
}

// Project returns the projection of r onto the named attributes (in
// the given order), with duplicates removed.
func Project(r *Relation, attrs ...string) (*Relation, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.AttrIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("project %s: no attribute %s", r.Name, a)
		}
		idx[i] = j
	}
	out := New("π("+r.Name+")", attrs...)
	seen := NewTupleSet(len(idx), len(r.Tuples))
	for _, t := range r.Tuples {
		p := make(Tuple, len(idx))
		for i, j := range idx {
			p[i] = t[j]
		}
		if seen.Add(p) {
			out.Tuples = append(out.Tuples, p)
		}
	}
	return out, nil
}

// Semijoin returns the tuples of r that join with at least one tuple
// of s on their shared attributes (r ⋉ s). With no shared attributes
// the result is r when s is non-empty and empty otherwise.
func Semijoin(r, s *Relation) *Relation {
	out := New(r.Name+"⋉"+s.Name, r.Attrs...)
	shared := sharedAttrs(r, s)
	if len(shared) == 0 {
		if len(s.Tuples) > 0 {
			for _, t := range r.Tuples {
				out.Tuples = append(out.Tuples, t.Clone())
			}
		}
		return out
	}
	rIdx := make([]int, len(shared))
	sIdx := make([]int, len(shared))
	for i, a := range shared {
		rIdx[i] = r.AttrIndex(a)
		sIdx[i] = s.AttrIndex(a)
	}
	if shift, ok := packShift(len(shared), [2]*Relation{r, s}, [2][]int{rIdx, sIdx}); ok {
		semijoinInto(out, r, s, rIdx, sIdx, func(t Tuple, idx []int) uint64 {
			return packColumns(t, idx, shift)
		})
	} else {
		semijoinInto(out, r, s, rIdx, sIdx, projectKey)
	}
	return out
}

func semijoinInto[K comparable](out, r, s *Relation, rIdx, sIdx []int, key func(Tuple, []int) K) {
	index := make(map[K]bool, len(s.Tuples))
	for _, ts := range s.Tuples {
		index[key(ts, sIdx)] = true
	}
	for _, tr := range r.Tuples {
		if index[key(tr, rIdx)] {
			out.Tuples = append(out.Tuples, tr.Clone())
		}
	}
}

// Select returns the tuples of r whose attribute attr equals value.
func Select(r *Relation, attr string, value int) (*Relation, error) {
	i := r.AttrIndex(attr)
	if i < 0 {
		return nil, fmt.Errorf("select %s: no attribute %s", r.Name, attr)
	}
	out := New("σ("+r.Name+")", r.Attrs...)
	for _, t := range r.Tuples {
		if t[i] == value {
			out.Tuples = append(out.Tuples, t.Clone())
		}
	}
	return out, nil
}

func sharedAttrs(r, s *Relation) []string {
	var out []string
	for _, a := range r.Attrs {
		if s.AttrIndex(a) >= 0 {
			out = append(out, a)
		}
	}
	return out
}

func projectKey(t Tuple, idx []int) string {
	var sb strings.Builder
	for i, j := range idx {
		if i > 0 {
			sb.WriteByte('|')
		}
		fmt.Fprintf(&sb, "%d", t[j])
	}
	return sb.String()
}

func combine(tr, ts Tuple, sExtra []int) Tuple {
	out := make(Tuple, 0, len(tr)+len(sExtra))
	out = append(out, tr...)
	for _, j := range sExtra {
		out = append(out, ts[j])
	}
	return out
}

// MatchingDatabase generates, for every atom of q, an independent
// random matching over [n] with the atom's variables as schema —
// the uniformly random matching database of Section 2.5.
func MatchingDatabase(rng *rand.Rand, q *query.Query, n int) *Database {
	db := NewDatabase(n)
	for _, a := range q.Atoms {
		db.AddRelation(Matching(rng, a.Name, a.Vars, n))
	}
	return db
}

// IdentityDatabase generates the identity matching for every atom.
func IdentityDatabase(q *query.Query, n int) *Database {
	db := NewDatabase(n)
	for _, a := range q.Atoms {
		db.AddRelation(IdentityMatching(a.Name, a.Vars, n))
	}
	return db
}
