package relation

import (
	"math/rand/v2"
	"testing"
)

func TestCollectRelationStatsBasics(t *testing.T) {
	r := New("R", "x", "y")
	// x: 1×3, 2×2, 3×1; y: all distinct.
	for i, x := range []int{1, 1, 1, 2, 2, 3} {
		r.MustAdd(Tuple{x, 10 + i})
	}
	rs := CollectRelationStats(r)
	if rs.Name != "R" || rs.Count != 6 {
		t.Fatalf("got name=%s count=%d", rs.Name, rs.Count)
	}
	cx := rs.ColByName("x")
	if cx == nil {
		t.Fatal("no stats for column x")
	}
	if cx.Distinct != 3 || cx.MaxFreq != 3 {
		t.Errorf("x: distinct=%d maxfreq=%d, want 3, 3", cx.Distinct, cx.MaxFreq)
	}
	want := []ValueCount{{1, 3}, {2, 2}, {3, 1}}
	if len(cx.Top) != len(want) {
		t.Fatalf("x top = %v", cx.Top)
	}
	for i, w := range want {
		if cx.Top[i] != w {
			t.Errorf("x top[%d] = %v, want %v", i, cx.Top[i], w)
		}
	}
	cy := rs.Col(1)
	if cy.Distinct != 6 || cy.MaxFreq != 1 {
		t.Errorf("y: distinct=%d maxfreq=%d, want 6, 1", cy.Distinct, cy.MaxFreq)
	}
	if rs.Col(2) != nil || rs.Col(-1) != nil || rs.ColByName("nope") != nil {
		t.Error("out-of-range column lookups must return nil")
	}
}

func TestStatsTopKCap(t *testing.T) {
	r := New("R", "x")
	for v := 1; v <= 3*StatsTopK; v++ {
		for i := 0; i < v; i++ { // value v appears v times
			r.MustAdd(Tuple{v})
		}
	}
	rs := CollectRelationStats(r)
	cs := rs.Col(0)
	if len(cs.Top) != StatsTopK {
		t.Fatalf("top has %d entries, want cap %d", len(cs.Top), StatsTopK)
	}
	// The cap keeps the most frequent values.
	if cs.Top[0].Value != 3*StatsTopK || cs.Top[0].Count != 3*StatsTopK {
		t.Errorf("top[0] = %v", cs.Top[0])
	}
	if cs.MaxFreq != 3*StatsTopK || cs.Distinct != 3*StatsTopK {
		t.Errorf("maxfreq=%d distinct=%d", cs.MaxFreq, cs.Distinct)
	}
}

func TestCollectStatsOnMatchingDatabase(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	r := Matching(rng, "R", []string{"x", "y"}, 200)
	s := Matching(rng, "S", []string{"y", "z"}, 200)
	db := NewDatabase(200)
	db.AddRelation(r)
	db.AddRelation(s)
	st := CollectStats(db)
	if st.TotalTuples() != 400 || st.MaxCount() != 200 {
		t.Fatalf("total=%d max=%d", st.TotalTuples(), st.MaxCount())
	}
	for _, name := range []string{"R", "S"} {
		rs := st.Relation(name)
		if rs == nil {
			t.Fatalf("missing stats for %s", name)
		}
		if n, ok := st.Size(name); !ok || n != 200 {
			t.Errorf("Size(%s) = %d, %v", name, n, ok)
		}
		for i := range rs.Cols {
			if rs.Cols[i].MaxFreq != 1 || rs.Cols[i].Distinct != 200 {
				t.Errorf("%s col %d: matching columns are permutations, got %+v", name, i, rs.Cols[i])
			}
		}
	}
	if st.Relation("nope") != nil {
		t.Error("unknown relation must yield nil stats")
	}
	if _, ok := st.Size("nope"); ok {
		t.Error("unknown relation must report !ok")
	}
	sizes := st.Sizes()
	if sizes["R"] != 200 || sizes["S"] != 200 {
		t.Errorf("sizes = %v", sizes)
	}
}

// TestDatabaseStatsMemoized checks the serving-layer contract of
// Database.Stats: repeated calls return the same collected catalog,
// concurrent first calls are safe, and AddRelation invalidates the
// memo.
func TestDatabaseStatsMemoized(t *testing.T) {
	db := NewDatabase(10)
	r := New("R", "x", "y")
	r.MustAdd(Tuple{1, 2})
	r.MustAdd(Tuple{1, 3})
	db.AddRelation(r)

	first := db.Stats()
	if first == nil || first.Relation("R") == nil || first.Relation("R").Count != 2 {
		t.Fatalf("unexpected first stats: %+v", first)
	}
	if again := db.Stats(); again != first {
		t.Errorf("second Stats() recollected instead of memoizing")
	}

	// Concurrent readers all see one shared catalog.
	const readers = 8
	got := make([]*Stats, readers)
	done := make(chan int, readers)
	for i := 0; i < readers; i++ {
		go func(i int) {
			got[i] = db.Stats()
			done <- i
		}(i)
	}
	for i := 0; i < readers; i++ {
		<-done
	}
	for i := 0; i < readers; i++ {
		if got[i] != first {
			t.Fatalf("reader %d saw a different catalog", i)
		}
	}

	// Mutation invalidates.
	s := New("S", "y", "z")
	s.MustAdd(Tuple{2, 4})
	db.AddRelation(s)
	second := db.Stats()
	if second == first {
		t.Fatalf("AddRelation did not invalidate the stats memo")
	}
	if second.Relation("S") == nil || second.Relation("S").Count != 1 {
		t.Fatalf("recollected stats missing S: %+v", second)
	}
}
