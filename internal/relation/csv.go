package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV parses a relation from CSV: the first record is the header
// naming the attributes, each further record is one tuple of positive
// integers. The relation name is supplied by the caller (CSV has no
// natural place for it).
func ReadCSV(r io.Reader, name string) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("relation: empty CSV header")
	}
	rel := New(name, header...)
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV line %d: %w", line, err)
		}
		if len(record) != len(header) {
			return nil, fmt.Errorf("relation: CSV line %d has %d fields, header has %d",
				line, len(record), len(header))
		}
		t := make(Tuple, len(record))
		for i, field := range record {
			v, err := strconv.Atoi(field)
			if err != nil {
				return nil, fmt.Errorf("relation: CSV line %d field %d: %w", line, i+1, err)
			}
			if v < 1 {
				return nil, fmt.Errorf("relation: CSV line %d field %d: value %d outside domain [n]",
					line, i+1, v)
			}
			t[i] = v
		}
		rel.Tuples = append(rel.Tuples, t)
	}
	return rel, nil
}

// WriteCSV renders the relation as CSV with an attribute header.
func WriteCSV(w io.Writer, rel *Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rel.Attrs); err != nil {
		return fmt.Errorf("relation: writing CSV header: %w", err)
	}
	record := make([]string, rel.Arity())
	for _, t := range rel.Tuples {
		for i, v := range t {
			record[i] = strconv.Itoa(v)
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("relation: writing CSV tuple: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// MaxValue returns the largest value appearing in the relation (the
// minimal domain size that contains it); 0 for an empty relation.
func (r *Relation) MaxValue() int {
	mx := 0
	for _, t := range r.Tuples {
		for _, v := range t {
			if v > mx {
				mx = v
			}
		}
	}
	return mx
}
