// Package relation provides the data layer of the MPC reproduction:
// tuples over the integer domain [n] = {1,…,n}, named relations with a
// variable schema, and the matching databases of Section 2.5 of
// Beame, Koutris, Suciu (PODS 2013) — inputs in which every relation
// of arity a is an a-dimensional matching (each column is a
// permutation of [n]).
package relation

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
)

// Tuple is a row over the domain [n]; Tuple[i] is the value of the
// i-th schema variable.
type Tuple []int

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Key returns a canonical string key for map-based dedup. The values
// are separated by '|', so keys are unambiguous for any arity. It
// allocates per call; hot paths should prefer TupleSet / DedupSort,
// which pack tuples into uint64 keys and use Key only as a fallback.
func (t Tuple) Key() string {
	var sb strings.Builder
	for i, v := range t {
		if i > 0 {
			sb.WriteByte('|')
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	return sb.String()
}

// Less orders tuples lexicographically.
func (t Tuple) Less(u Tuple) bool {
	for i := 0; i < len(t) && i < len(u); i++ {
		if t[i] != u[i] {
			return t[i] < u[i]
		}
	}
	return len(t) < len(u)
}

// Relation is a named multiset of tuples with a variable schema.
type Relation struct {
	// Name is the relation symbol.
	Name string
	// Attrs names the columns (query variables).
	Attrs []string
	// Tuples holds the rows.
	Tuples []Tuple
}

// New returns an empty relation with the given schema.
func New(name string, attrs ...string) *Relation {
	as := make([]string, len(attrs))
	copy(as, attrs)
	return &Relation{Name: name, Attrs: as}
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return len(r.Attrs) }

// Size returns the number of tuples.
func (r *Relation) Size() int { return len(r.Tuples) }

// Add appends a tuple (copied) after validating its arity.
func (r *Relation) Add(t Tuple) error {
	if len(t) != r.Arity() {
		return fmt.Errorf("relation %s: tuple arity %d != schema arity %d", r.Name, len(t), r.Arity())
	}
	r.Tuples = append(r.Tuples, t.Clone())
	return nil
}

// MustAdd is Add that panics on arity mismatch.
func (r *Relation) MustAdd(t Tuple) {
	if err := r.Add(t); err != nil {
		panic(err)
	}
}

// AttrIndex returns the column index of attribute name, or -1.
func (r *Relation) AttrIndex(name string) int {
	for i, a := range r.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	out := New(r.Name, r.Attrs...)
	out.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// Sort orders tuples lexicographically in place and returns r.
func (r *Relation) Sort() *Relation {
	sort.Slice(r.Tuples, func(i, j int) bool { return r.Tuples[i].Less(r.Tuples[j]) })
	return r
}

// Dedup removes duplicate tuples in place (order not preserved) and
// returns r.
func (r *Relation) Dedup() *Relation {
	seen := NewTupleSet(r.Arity(), len(r.Tuples))
	out := r.Tuples[:0]
	for _, t := range r.Tuples {
		if seen.Add(t) {
			out = append(out, t)
		}
	}
	r.Tuples = out
	return r
}

// String renders a compact description (name, schema, cardinality).
func (r *Relation) String() string {
	return fmt.Sprintf("%s(%s)[%d tuples]", r.Name, strings.Join(r.Attrs, ","), len(r.Tuples))
}

// IsMatching reports whether the relation is an a-dimensional matching
// over [n]: it has exactly n tuples and every column contains each of
// 1..n exactly once.
func (r *Relation) IsMatching(n int) bool {
	if len(r.Tuples) != n {
		return false
	}
	for col := 0; col < r.Arity(); col++ {
		seen := make([]bool, n+1)
		for _, t := range r.Tuples {
			v := t[col]
			if v < 1 || v > n || seen[v] {
				return false
			}
			seen[v] = true
		}
	}
	return true
}

// Matching generates a random a-dimensional matching over [n] using
// rng: each column beyond the first is an independent uniform
// permutation of [n] (the first column is the identity, which is a
// uniform representative because matchings are column-permutation
// families with (n!)^(a−1) members, exactly the count used in the
// paper's entropy argument).
func Matching(rng *rand.Rand, name string, attrs []string, n int) *Relation {
	r := New(name, attrs...)
	a := len(attrs)
	cols := make([][]int, a)
	for c := 0; c < a; c++ {
		cols[c] = make([]int, n)
		for i := 0; i < n; i++ {
			cols[c][i] = i + 1
		}
		if c > 0 {
			rng.Shuffle(n, func(i, j int) { cols[c][i], cols[c][j] = cols[c][j], cols[c][i] })
		}
	}
	for i := 0; i < n; i++ {
		t := make(Tuple, a)
		for c := 0; c < a; c++ {
			t[c] = cols[c][i]
		}
		r.Tuples = append(r.Tuples, t)
	}
	return r
}

// IdentityMatching returns the identity matching
// {(1,1,…),(2,2,…),…,(n,n,…)} used by the retraction construction in
// the multi-round lower bound (Section 4.2.3).
func IdentityMatching(name string, attrs []string, n int) *Relation {
	r := New(name, attrs...)
	a := len(attrs)
	for i := 1; i <= n; i++ {
		t := make(Tuple, a)
		for c := 0; c < a; c++ {
			t[c] = i
		}
		r.Tuples = append(r.Tuples, t)
	}
	return r
}

// SkewedZipf generates a binary relation of n tuples whose first
// column is drawn from a Zipf-like distribution (heavy hitters) and
// whose second column is uniform. Matching databases have no skew;
// this generator exists to contrast HC behaviour on skewed inputs.
func SkewedZipf(rng *rand.Rand, name string, attrs []string, n int, s float64) *Relation {
	if len(attrs) != 2 {
		panic("relation.SkewedZipf: binary schema required")
	}
	// Build a cumulative Zipf table over [n].
	weights := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		w := 1.0 / math.Pow(float64(i+1), s)
		weights[i] = w
		total += w
	}
	cum := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	r := New(name, attrs...)
	for i := 0; i < n; i++ {
		u := rng.Float64()
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		r.Tuples = append(r.Tuples, Tuple{lo + 1, rng.IntN(n) + 1})
	}
	return r
}

// Database is a collection of relations keyed by name.
type Database struct {
	// N is the domain size [n].
	N int
	// Relations maps relation name → relation.
	Relations map[string]*Relation
	order     []string

	statsMu     sync.Mutex
	cachedStats *Stats
}

// NewDatabase returns an empty database over domain [n].
func NewDatabase(n int) *Database {
	return &Database{N: n, Relations: make(map[string]*Relation)}
}

// AddRelation inserts a relation, replacing any with the same name.
// Any memoized statistics (see Stats) are invalidated. The insertion
// happens under the statistics lock, so it serializes with a
// concurrent Stats() collection; like the rest of Database, it is not
// otherwise synchronized against concurrent readers.
func (db *Database) AddRelation(r *Relation) {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	if _, exists := db.Relations[r.Name]; !exists {
		db.order = append(db.order, r.Name)
	}
	db.Relations[r.Name] = r
	db.cachedStats = nil
}

// Relation fetches a relation by name.
func (db *Database) Relation(name string) (*Relation, bool) {
	r, ok := db.Relations[name]
	return r, ok
}

// Names returns relation names in insertion order.
func (db *Database) Names() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// TotalTuples returns the sum of relation cardinalities.
func (db *Database) TotalTuples() int {
	total := 0
	for _, r := range db.Relations {
		total += len(r.Tuples)
	}
	return total
}

// BitsPerValue returns the number of bits used to encode one domain
// value of [n]: ⌈log2(n+1)⌉. It fixes the Θ(log n) tuple cost used by
// the MPC engine's communication accounting.
func BitsPerValue(n int) int { return ceilLog2(n + 1) }

// InputBits returns the paper's N: the number of bits to encode the
// database, O(n log n) per relation — we use the concrete count
// Σ_j |S_j| · a_j · ⌈log2(n+1)⌉.
func (db *Database) InputBits() int64 {
	bitsPerValue := int64(BitsPerValue(db.N))
	var total int64
	for _, r := range db.Relations {
		total += int64(len(r.Tuples)) * int64(r.Arity()) * bitsPerValue
	}
	return total
}

func ceilLog2(x int) int {
	if x <= 1 {
		return 1
	}
	b := 0
	v := x - 1
	for v > 0 {
		v >>= 1
		b++
	}
	return b
}
