package relation

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the grouped-aggregation layer of the data model:
// COUNT/SUM/MIN/MAX folded over a *set* of tuples, grouped by a subset
// of columns. The engines push the fold into the answer gather — the
// per-worker outputs arrive as sorted deduplicated runs, and the
// Accumulator consumes the merged stream one tuple at a time, so the
// coordinator holds one row per group instead of the full answer set.

// AggFunc identifies an aggregate function.
type AggFunc uint8

// The supported aggregate functions. Aggregation is over set
// semantics: the input stream is the deduplicated answer set, so COUNT
// counts distinct tuples per group.
const (
	AggCount AggFunc = iota + 1
	AggSum
	AggMin
	AggMax
)

// String renders the function in the Datalog front end's spelling.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(f))
	}
}

// ParseAggFunc reads an aggregate function name ("count", "sum",
// "min", "max").
func ParseAggFunc(s string) (AggFunc, bool) {
	switch s {
	case "count":
		return AggCount, true
	case "sum":
		return AggSum, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	default:
		return 0, false
	}
}

// Aggregate is one aggregate term: a function applied to input column
// Col. For AggCount the column identifies which variable is being
// counted but does not change the value (the input is a set, so the
// count per group is the number of distinct tuples).
type Aggregate struct {
	// Func is the aggregate function.
	Func AggFunc
	// Col is the input column the function reads.
	Col int
}

// GroupSpec describes one grouped aggregation over tuples of a fixed
// arity: group by the GroupBy columns (in order), compute each
// Aggregate within the group. Output tuples are the group-by values
// followed by the aggregate values, sorted by group key; with an empty
// GroupBy the output is a single global row (or no row on empty
// input).
type GroupSpec struct {
	// GroupBy lists the grouping columns, in output order.
	GroupBy []int
	// Aggs lists the aggregate terms, in output order after the keys.
	Aggs []Aggregate
}

// OutArity returns the arity of the aggregated output tuples.
func (s GroupSpec) OutArity() int { return len(s.GroupBy) + len(s.Aggs) }

// Validate checks the spec against the input arity.
func (s GroupSpec) Validate(arity int) error {
	if len(s.Aggs) == 0 {
		return fmt.Errorf("relation: aggregation needs at least one aggregate term")
	}
	seen := make(map[int]bool, len(s.GroupBy))
	for _, c := range s.GroupBy {
		if c < 0 || c >= arity {
			return fmt.Errorf("relation: group-by column %d outside arity %d", c, arity)
		}
		if seen[c] {
			return fmt.Errorf("relation: duplicate group-by column %d", c)
		}
		seen[c] = true
	}
	for _, a := range s.Aggs {
		switch a.Func {
		case AggCount, AggSum, AggMin, AggMax:
		default:
			return fmt.Errorf("relation: unknown aggregate function %v", a.Func)
		}
		if a.Col < 0 || a.Col >= arity {
			return fmt.Errorf("relation: aggregate column %d outside arity %d", a.Col, arity)
		}
	}
	return nil
}

// String renders the spec compactly, e.g. "group by [0 2]: count(1), sum(3)".
func (s GroupSpec) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "group by %v: ", s.GroupBy)
	for i, a := range s.Aggs {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s(%d)", a.Func, a.Col)
	}
	return sb.String()
}

// accGroup is one group's accumulator state: the key values plus one
// running value per aggregate term.
type accGroup struct {
	key  Tuple
	vals []int
}

// Accumulator folds a stream of tuples into grouped aggregates. Add
// does not retain its argument, so callers may reuse one scratch tuple
// across calls — the property the streaming gather fold relies on.
type Accumulator struct {
	spec   GroupSpec
	groups map[string]*accGroup
	keyBuf []byte
}

// NewAccumulator returns an empty accumulator for the spec. The spec
// must already be validated against the input arity.
func NewAccumulator(spec GroupSpec) *Accumulator {
	return &Accumulator{spec: spec, groups: make(map[string]*accGroup)}
}

// Add folds one input tuple.
func (a *Accumulator) Add(t Tuple) {
	a.keyBuf = a.keyBuf[:0]
	for _, c := range a.spec.GroupBy {
		v := t[c]
		a.keyBuf = append(a.keyBuf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	g, ok := a.groups[string(a.keyBuf)]
	if !ok {
		g = &accGroup{key: make(Tuple, len(a.spec.GroupBy)), vals: make([]int, len(a.spec.Aggs))}
		for i, c := range a.spec.GroupBy {
			g.key[i] = t[c]
		}
		for i, agg := range a.spec.Aggs {
			switch agg.Func {
			case AggCount:
				g.vals[i] = 1
			default:
				g.vals[i] = t[agg.Col]
			}
		}
		a.groups[string(a.keyBuf)] = g
		return
	}
	for i, agg := range a.spec.Aggs {
		v := t[agg.Col]
		switch agg.Func {
		case AggCount:
			g.vals[i]++
		case AggSum:
			g.vals[i] += v
		case AggMin:
			if v < g.vals[i] {
				g.vals[i] = v
			}
		case AggMax:
			if v > g.vals[i] {
				g.vals[i] = v
			}
		}
	}
}

// Groups returns the number of groups accumulated so far.
func (a *Accumulator) Groups() int { return len(a.groups) }

// Result materializes the aggregated output: one tuple per group —
// group-by values then aggregate values — sorted lexicographically.
// On empty input it returns nil (no groups, even for a global
// aggregate).
func (a *Accumulator) Result() []Tuple {
	if len(a.groups) == 0 {
		return nil
	}
	out := make([]Tuple, 0, len(a.groups))
	backing := make([]int, len(a.groups)*a.spec.OutArity())
	i := 0
	for _, g := range a.groups {
		row := backing[i : i+a.spec.OutArity() : i+a.spec.OutArity()]
		i += a.spec.OutArity()
		copy(row, g.key)
		copy(row[len(g.key):], g.vals)
		out = append(out, Tuple(row))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// GroupAggregate folds a materialized tuple set in one call — the
// naive single-node reference the streaming gather fold is
// differential-tested against, and the post-gather fold used by
// engines whose final answer order differs from the fold's input
// order. The input is treated as a set: duplicates are removed before
// folding, so the result does not depend on multiplicity.
func GroupAggregate(tuples []Tuple, spec GroupSpec) []Tuple {
	acc := NewAccumulator(spec)
	if len(tuples) == 0 {
		return nil
	}
	seen := NewTupleSet(len(tuples[0]), len(tuples))
	for _, t := range tuples {
		if seen.Add(t) {
			acc.Add(t)
		}
	}
	return acc.Result()
}
