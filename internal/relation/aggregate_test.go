package relation

import (
	"math/rand/v2"
	"reflect"
	"testing"
)

func TestGroupSpecValidate(t *testing.T) {
	good := GroupSpec{GroupBy: []int{0}, Aggs: []Aggregate{{Func: AggCount, Col: 1}}}
	if err := good.Validate(2); err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		spec GroupSpec
	}{
		{"no aggregates", GroupSpec{GroupBy: []int{0}}},
		{"group col out of range", GroupSpec{GroupBy: []int{2}, Aggs: []Aggregate{{Func: AggSum, Col: 1}}}},
		{"duplicate group col", GroupSpec{GroupBy: []int{0, 0}, Aggs: []Aggregate{{Func: AggSum, Col: 1}}}},
		{"agg col out of range", GroupSpec{Aggs: []Aggregate{{Func: AggSum, Col: 5}}}},
		{"unknown func", GroupSpec{Aggs: []Aggregate{{Func: AggFunc(99), Col: 0}}}},
	}
	for _, c := range bad {
		if err := c.spec.Validate(2); err == nil {
			t.Errorf("%s: Validate accepted %v", c.name, c.spec)
		}
	}
}

func TestGroupAggregateBasic(t *testing.T) {
	// (g, v) rows; group by g, all four functions over v.
	in := []Tuple{{1, 5}, {1, 3}, {2, 7}, {1, 5}, {2, 2}} // {1,5} duplicated: set semantics
	spec := GroupSpec{
		GroupBy: []int{0},
		Aggs: []Aggregate{
			{Func: AggCount, Col: 1},
			{Func: AggSum, Col: 1},
			{Func: AggMin, Col: 1},
			{Func: AggMax, Col: 1},
		},
	}
	got := GroupAggregate(in, spec)
	want := []Tuple{
		{1, 2, 8, 3, 5},
		{2, 2, 9, 2, 7},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GroupAggregate = %v, want %v", got, want)
	}
}

func TestGroupAggregateGlobal(t *testing.T) {
	in := []Tuple{{4}, {9}, {1}}
	got := GroupAggregate(in, GroupSpec{Aggs: []Aggregate{{Func: AggSum, Col: 0}, {Func: AggCount, Col: 0}}})
	want := []Tuple{{14, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("global aggregate = %v, want %v", got, want)
	}
	if out := GroupAggregate(nil, GroupSpec{Aggs: []Aggregate{{Func: AggCount, Col: 0}}}); out != nil {
		t.Errorf("empty input aggregate = %v, want nil", out)
	}
}

// TestAccumulatorMatchesNaive cross-checks the streaming accumulator
// against a map-built reference on random multi-column data, and
// checks Add does not retain its argument (tuple reuse).
func TestAccumulatorMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	var in []Tuple
	for i := 0; i < 500; i++ {
		in = append(in, Tuple{rng.IntN(5) + 1, rng.IntN(4) + 1, rng.IntN(50) + 1})
	}
	spec := GroupSpec{
		GroupBy: []int{1, 0},
		Aggs:    []Aggregate{{Func: AggMax, Col: 2}, {Func: AggCount, Col: 2}, {Func: AggSum, Col: 2}},
	}
	dedup := DedupSort(in)

	// Streaming fold through one reused scratch tuple.
	acc := NewAccumulator(spec)
	scratch := make(Tuple, 3)
	for _, t := range dedup {
		copy(scratch, t)
		acc.Add(scratch)
	}
	got := acc.Result()

	type ref struct{ max, count, sum int }
	refs := map[[2]int]*ref{}
	for _, tu := range dedup {
		k := [2]int{tu[1], tu[0]}
		r, ok := refs[k]
		if !ok {
			refs[k] = &ref{max: tu[2], count: 1, sum: tu[2]}
			continue
		}
		if tu[2] > r.max {
			r.max = tu[2]
		}
		r.count++
		r.sum += tu[2]
	}
	if len(got) != len(refs) {
		t.Fatalf("groups = %d, want %d", len(got), len(refs))
	}
	for _, row := range got {
		r := refs[[2]int{row[0], row[1]}]
		if r == nil {
			t.Fatalf("unexpected group %v", row[:2])
		}
		if row[2] != r.max || row[3] != r.count || row[4] != r.sum {
			t.Errorf("group %v: got (max=%d,count=%d,sum=%d), want (%d,%d,%d)",
				row[:2], row[2], row[3], row[4], r.max, r.count, r.sum)
		}
	}
}

func TestParseAggFunc(t *testing.T) {
	for _, f := range []AggFunc{AggCount, AggSum, AggMin, AggMax} {
		got, ok := ParseAggFunc(f.String())
		if !ok || got != f {
			t.Errorf("ParseAggFunc(%q) = %v, %v", f.String(), got, ok)
		}
	}
	if _, ok := ParseAggFunc("avg"); ok {
		t.Error("ParseAggFunc accepted avg")
	}
}
