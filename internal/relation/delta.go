package relation

// This file is the relation half of incremental view maintenance: a
// Delta names per-relation appended and deleted tuple occurrences,
// ApplyDelta folds one into a database snapshot (multiset semantics,
// validating every deletion), and IncrementalStats keeps the
// planner-facing Stats catalog current under a delta stream without
// ever re-scanning a relation — cardinalities, distinct counts, and
// the exact top-StatsTopK heavy hitters are maintained from the
// touched occurrences alone.

import (
	"fmt"
	"sort"
)

// Delta is one batch of changes to a database: per-relation tuple
// occurrences to delete and to append. Within a batch, deletes apply
// before appends, so deleting and re-appending the same tuple leaves
// it present.
type Delta struct {
	// Appends maps relation name → tuple occurrences to add.
	Appends map[string][]Tuple
	// Deletes maps relation name → tuple occurrences to remove. Every
	// occurrence must match one present in the relation.
	Deletes map[string][]Tuple
}

// Empty reports whether the delta carries no tuples at all.
func (d Delta) Empty() bool {
	for _, ts := range d.Appends {
		if len(ts) > 0 {
			return false
		}
	}
	for _, ts := range d.Deletes {
		if len(ts) > 0 {
			return false
		}
	}
	return true
}

// Effect is the set-level consequence of a delta for one relation —
// the distinction view maintenance cares about, after multiset
// bookkeeping: Added tuples were absent before and are present after;
// Removed tuples were present before and are absent after. A tuple
// deleted and re-appended in the same batch, or appended when other
// occurrences survive, appears in neither list.
type Effect struct {
	// Added lists tuples newly present, in first-appearance order of
	// the batch's append list.
	Added []Tuple
	// Removed lists tuples no longer present, in first-appearance order
	// of the batch's delete list.
	Removed []Tuple
}

// ApplyDelta returns a new database reflecting d. Untouched relations
// are shared with db; changed relations get fresh tuple slices (the
// occurrences that survive deletion, in their original order, followed
// by the appended occurrences in batch order). The returned map holds
// one Effect per changed relation.
//
// Every delta tuple is validated: the relation must exist, arities
// must match, and values must lie in [1, db.N] — the domain is fixed
// at registration, so the communication model (bits per value,
// hypercube hashing) stays sound under the stream. A deletion with no
// matching occurrence is an error and leaves db unusable-side-effect
// free (db itself is never mutated).
func ApplyDelta(db *Database, d Delta) (*Database, map[string]Effect, error) {
	changed := make(map[string]bool, len(d.Appends)+len(d.Deletes))
	for name := range d.Appends {
		changed[name] = true
	}
	for name := range d.Deletes {
		changed[name] = true
	}
	for name := range changed {
		if _, ok := db.Relation(name); !ok {
			return nil, nil, fmt.Errorf("relation: delta names unknown relation %s", name)
		}
	}
	out := NewDatabase(db.N)
	effects := make(map[string]Effect, len(changed))
	for _, name := range db.Names() {
		r, _ := db.Relation(name)
		if !changed[name] {
			out.AddRelation(r)
			continue
		}
		nr, eff, err := applyRelationDelta(db.N, r, d.Deletes[name], d.Appends[name])
		if err != nil {
			return nil, nil, err
		}
		out.AddRelation(nr)
		effects[name] = eff
	}
	return out, effects, nil
}

// validateDeltaTuples checks arity and domain for one side of a delta.
func validateDeltaTuples(n int, r *Relation, ts []Tuple, side string) error {
	arity := r.Arity()
	for _, t := range ts {
		if len(t) != arity {
			return fmt.Errorf("relation: %s delta for %s has arity %d, want %d", side, r.Name, len(t), arity)
		}
		for _, v := range t {
			if v < 1 || v > n {
				return fmt.Errorf("relation: %s delta for %s has value %d outside the domain [1,%d]", side, r.Name, v, n)
			}
		}
	}
	return nil
}

// applyRelationDelta applies one relation's deletes-then-appends and
// computes its set-level Effect.
func applyRelationDelta(n int, r *Relation, dels, apps []Tuple) (*Relation, Effect, error) {
	if err := validateDeltaTuples(n, r, dels, "delete"); err != nil {
		return nil, Effect{}, err
	}
	if err := validateDeltaTuples(n, r, apps, "append"); err != nil {
		return nil, Effect{}, err
	}
	arity := r.Arity()
	delC := newTupleCounter(arity, len(dels))
	for _, t := range dels {
		delC.add(t, 1)
	}
	appC := newTupleCounter(arity, len(apps))
	for _, t := range apps {
		appC.add(t, 1)
	}
	// One pass over the relation: count prior occurrences of every
	// interesting tuple and drop the first delC occurrences of each
	// deleted one.
	occ := newTupleCounter(arity, len(dels)+len(apps))
	budget := delC.clone()
	keptCap := len(r.Tuples) - len(dels) + len(apps)
	if keptCap < 0 {
		keptCap = 0
	}
	kept := make([]Tuple, 0, keptCap)
	for _, t := range r.Tuples {
		if delC.get(t) > 0 || appC.get(t) > 0 {
			occ.add(t, 1)
		}
		if budget.get(t) > 0 {
			budget.add(t, -1)
			continue
		}
		kept = append(kept, t)
	}
	var eff Effect
	seenDel := NewTupleSet(arity, len(dels))
	for _, t := range dels {
		if !seenDel.Add(t) {
			continue
		}
		have, want := occ.get(t), delC.get(t)
		if have < want {
			return nil, Effect{}, fmt.Errorf("relation: delete of %v from %s: %d occurrence(s) present, %d deleted", t, r.Name, have, want)
		}
		if have == want && appC.get(t) == 0 {
			eff.Removed = append(eff.Removed, t.Clone())
		}
	}
	seenApp := NewTupleSet(arity, len(apps))
	for _, t := range apps {
		kept = append(kept, t.Clone())
		if !seenApp.Add(t) {
			continue
		}
		if occ.get(t) == 0 {
			eff.Added = append(eff.Added, t.Clone())
		}
	}
	nr := &Relation{
		Name:   r.Name,
		Attrs:  append([]string(nil), r.Attrs...),
		Tuples: kept,
	}
	return nr, eff, nil
}

// tupleCounter counts same-arity tuple occurrences with the packed
// fast path of TupleSet and the same string-key fallback.
type tupleCounter struct {
	arity int
	shift uint
	ints  map[uint64]int
	strs  map[string]int
}

func newTupleCounter(arity, sizeHint int) *tupleCounter {
	if sizeHint < 0 {
		sizeHint = 0
	}
	c := &tupleCounter{arity: arity}
	if shift := PackedShift(arity); shift > 0 {
		c.shift = shift
		c.ints = make(map[uint64]int, sizeHint)
	} else {
		c.strs = make(map[string]int, sizeHint)
	}
	return c
}

func (c *tupleCounter) pack(t Tuple) (uint64, bool) {
	if len(t) != c.arity {
		return 0, false
	}
	var key uint64
	for _, v := range t {
		if !FitsPacked(v, c.shift) {
			return 0, false
		}
		key = key<<c.shift | uint64(v)
	}
	return key, true
}

func (c *tupleCounter) migrate() {
	c.strs = make(map[string]int, len(c.ints))
	mask := PackedMask(c.shift)
	t := make(Tuple, c.arity)
	for key, n := range c.ints {
		for i := c.arity - 1; i >= 0; i-- {
			t[i] = int(key & mask)
			key >>= c.shift
		}
		c.strs[t.Key()] = n
	}
	c.ints = nil
}

// add adjusts t's count by delta and returns the new count. Counts
// that reach zero are removed.
func (c *tupleCounter) add(t Tuple, delta int) int {
	if c.ints != nil {
		if key, ok := c.pack(t); ok {
			n := c.ints[key] + delta
			if n == 0 {
				delete(c.ints, key)
			} else {
				c.ints[key] = n
			}
			return n
		}
		c.migrate()
	}
	k := t.Key()
	n := c.strs[k] + delta
	if n == 0 {
		delete(c.strs, k)
	} else {
		c.strs[k] = n
	}
	return n
}

// get returns t's current count.
func (c *tupleCounter) get(t Tuple) int {
	if c.ints != nil {
		if key, ok := c.pack(t); ok {
			return c.ints[key]
		}
		return 0
	}
	return c.strs[t.Key()]
}

// clone returns an independent copy.
func (c *tupleCounter) clone() *tupleCounter {
	out := &tupleCounter{arity: c.arity, shift: c.shift}
	if c.ints != nil {
		out.ints = make(map[uint64]int, len(c.ints))
		for k, v := range c.ints {
			out.ints[k] = v
		}
	} else {
		out.strs = make(map[string]int, len(c.strs))
		for k, v := range c.strs {
			out.strs[k] = v
		}
	}
	return out
}

// vcBefore is the canonical heavy-hitter order: count descending, ties
// by smaller value — the order CollectRelationStats emits.
func vcBefore(a, b ValueCount) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return a.Value < b.Value
}

// incCol incrementally maintains one column's ColumnStats. The
// invariant after every operation: top holds the true first
// min(StatsTopK, distinct) entries of the canonical order. Increments
// are O(K): the new top-K is contained in the old top plus the bumped
// value (every other value's rank only worsens relative to it).
// Decrements of values outside the top are free for the same reason;
// decrements inside the top trigger an O(distinct·log distinct)
// rebuild only when values outside the top exist to promote.
type incCol struct {
	freq map[int]int
	top  []ValueCount
}

func newIncCol(sizeHint int) *incCol {
	return &incCol{freq: make(map[int]int, sizeHint)}
}

func (c *incCol) inc(v int) {
	n := c.freq[v] + 1
	c.freq[v] = n
	for i := range c.top {
		if c.top[i].Value == v {
			c.top[i].Count = n
			for i > 0 && vcBefore(c.top[i], c.top[i-1]) {
				c.top[i], c.top[i-1] = c.top[i-1], c.top[i]
				i--
			}
			return
		}
	}
	cand := ValueCount{Value: v, Count: n}
	i := sort.Search(len(c.top), func(j int) bool { return vcBefore(cand, c.top[j]) })
	if i >= StatsTopK {
		return
	}
	c.top = append(c.top, ValueCount{})
	copy(c.top[i+1:], c.top[i:])
	c.top[i] = cand
	if len(c.top) > StatsTopK {
		c.top = c.top[:StatsTopK]
	}
}

func (c *incCol) dec(v int) {
	n := c.freq[v] - 1
	if n <= 0 {
		delete(c.freq, v)
	} else {
		c.freq[v] = n
	}
	idx := -1
	for i := range c.top {
		if c.top[i].Value == v {
			idx = i
			break
		}
	}
	if idx < 0 {
		// v was not among the top min(K, distinct); shrinking it cannot
		// promote it, and no tracked entry moved.
		return
	}
	if n <= 0 {
		c.top = append(c.top[:idx], c.top[idx+1:]...)
		if len(c.freq) > len(c.top) {
			c.rebuild()
		}
		return
	}
	c.top[idx].Count = n
	for idx+1 < len(c.top) && vcBefore(c.top[idx+1], c.top[idx]) {
		c.top[idx], c.top[idx+1] = c.top[idx+1], c.top[idx]
		idx++
	}
	if len(c.top) == StatsTopK && len(c.freq) > StatsTopK {
		// An untracked value may now outrank the demoted one.
		c.rebuild()
	}
}

// rebuild recomputes top from the frequency map — the exactness escape
// hatch for demotions that may promote an untracked value.
func (c *incCol) rebuild() {
	top := make([]ValueCount, 0, len(c.freq))
	for v, n := range c.freq {
		top = append(top, ValueCount{Value: v, Count: n})
	}
	sort.Slice(top, func(i, j int) bool { return vcBefore(top[i], top[j]) })
	if len(top) > StatsTopK {
		top = top[:StatsTopK]
	}
	c.top = top
}

func (c *incCol) snapshot() *ColumnStats {
	cs := &ColumnStats{Distinct: len(c.freq)}
	if len(c.top) > 0 {
		cs.MaxFreq = c.top[0].Count
	}
	cs.Top = append([]ValueCount(nil), c.top...)
	return cs
}

// IncStats incrementally maintains one relation's RelationStats under
// appended and deleted occurrences. Snapshot returns a summary equal
// (field for field, including heavy-hitter order) to what
// CollectRelationStats would compute from scratch on the current
// state.
type IncStats struct {
	name  string
	attrs []string
	count int
	cols  []*incCol
}

// NewIncStats seeds an incremental summary with one scan of r — the
// only full scan the relation ever pays; every later delta costs the
// touched occurrences alone.
func NewIncStats(r *Relation) *IncStats {
	s := &IncStats{
		name:  r.Name,
		attrs: append([]string(nil), r.Attrs...),
		cols:  make([]*incCol, r.Arity()),
	}
	for i := range s.cols {
		s.cols[i] = newIncCol(len(r.Tuples))
	}
	for _, t := range r.Tuples {
		s.Append(t)
	}
	return s
}

// Append folds one appended occurrence into the summary.
func (s *IncStats) Append(t Tuple) {
	s.count++
	for i, v := range t {
		s.cols[i].inc(v)
	}
}

// Delete folds one deleted occurrence into the summary. The caller
// guarantees the occurrence was present (relation.ApplyDelta validates
// this).
func (s *IncStats) Delete(t Tuple) {
	s.count--
	for i, v := range t {
		s.cols[i].dec(v)
	}
}

// Snapshot materializes the current RelationStats.
func (s *IncStats) Snapshot() *RelationStats {
	rs := &RelationStats{
		Name:  s.name,
		Count: s.count,
		Attrs: append([]string(nil), s.attrs...),
		Cols:  make([]*ColumnStats, len(s.cols)),
	}
	for i, c := range s.cols {
		rs.Cols[i] = c.snapshot()
	}
	return rs
}

// IncrementalStats incrementally maintains a whole database's Stats
// catalog under a delta stream.
type IncrementalStats struct {
	rels  map[string]*IncStats
	order []string
}

// NewIncrementalStats seeds the catalog from db with one scan per
// relation.
func NewIncrementalStats(db *Database) *IncrementalStats {
	s := &IncrementalStats{
		rels:  make(map[string]*IncStats, len(db.Relations)),
		order: append([]string(nil), db.Names()...),
	}
	for _, name := range s.order {
		r, _ := db.Relation(name)
		s.rels[name] = NewIncStats(r)
	}
	return s
}

// Apply folds one validated delta (deletes before appends, matching
// ApplyDelta's semantics) into the catalog. Call it only after
// ApplyDelta accepted the same delta.
func (s *IncrementalStats) Apply(d Delta) {
	for name, ts := range d.Deletes {
		inc := s.rels[name]
		if inc == nil {
			continue
		}
		for _, t := range ts {
			inc.Delete(t)
		}
	}
	for name, ts := range d.Appends {
		inc := s.rels[name]
		if inc == nil {
			continue
		}
		for _, t := range ts {
			inc.Append(t)
		}
	}
}

// Snapshot materializes the current catalog. The result matches
// CollectStats on the maintained database state field for field.
func (s *IncrementalStats) Snapshot() *Stats {
	out := &Stats{Relations: make(map[string]*RelationStats, len(s.rels))}
	for _, name := range s.order {
		out.Relations[name] = s.rels[name].Snapshot()
	}
	return out
}
