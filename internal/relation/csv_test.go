package relation

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	in := "x,y\n1,2\n3,4\n"
	rel, err := ReadCSV(strings.NewReader(in), "R")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Name != "R" || rel.Arity() != 2 || rel.Size() != 2 {
		t.Fatalf("rel = %v", rel)
	}
	if !rel.Tuples[1].Equal(Tuple{3, 4}) {
		t.Errorf("tuple = %v", rel.Tuples[1])
	}
}

func TestReadCSVErrors(t *testing.T) {
	bad := []string{
		"",            // no header
		"x,y\n1\n",    // field count mismatch — csv pkg errors
		"x,y\n1,a\n",  // non-integer
		"x,y\n0,2\n",  // out of domain
		"x,y\n-1,2\n", // negative
	}
	for _, in := range bad {
		if _, err := ReadCSV(strings.NewReader(in), "R"); err == nil {
			t.Errorf("ReadCSV(%q): want error", in)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	orig := Matching(rng, "S", []string{"a", "b", "c"}, 30)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "S")
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != orig.Size() || back.Arity() != orig.Arity() {
		t.Fatalf("round trip shape mismatch")
	}
	for i := range orig.Tuples {
		if !back.Tuples[i].Equal(orig.Tuples[i]) {
			t.Fatalf("tuple %d: %v != %v", i, back.Tuples[i], orig.Tuples[i])
		}
	}
	if !back.IsMatching(30) {
		t.Error("round-tripped matching should still be a matching")
	}
}

func TestMaxValue(t *testing.T) {
	r := New("R", "x", "y")
	if r.MaxValue() != 0 {
		t.Error("empty relation max should be 0")
	}
	r.MustAdd(Tuple{3, 9})
	r.MustAdd(Tuple{7, 2})
	if r.MaxValue() != 9 {
		t.Errorf("MaxValue = %d, want 9", r.MaxValue())
	}
}
