package relation

import (
	"math/rand/v2"
	"reflect"
	"testing"
)

// randomDeltaDB builds a database with two binary relations over a
// small domain, dense enough that heavy hitters exist and deletes
// collide with multiplicities.
func randomDeltaDB(rng *rand.Rand, n, rows int) *Database {
	db := NewDatabase(n)
	for _, name := range []string{"R", "S"} {
		r := &Relation{Name: name, Attrs: []string{"x", "y"}}
		for i := 0; i < rows; i++ {
			// Skew the first column so the top-K head is non-trivial.
			x := 1 + rng.IntN(n)/(1+rng.IntN(4))
			r.MustAdd(Tuple{x, 1 + rng.IntN(n)})
		}
		db.AddRelation(r)
	}
	return db
}

// randomDelta draws a delta whose deletes are sampled from present
// tuples (so it always validates) and whose appends are fresh draws.
func randomDelta(rng *rand.Rand, db *Database) Delta {
	d := Delta{Appends: map[string][]Tuple{}, Deletes: map[string][]Tuple{}}
	for _, name := range db.Names() {
		r, _ := db.Relation(name)
		nDel := rng.IntN(4)
		if nDel > len(r.Tuples) {
			nDel = len(r.Tuples)
		}
		for _, i := range rng.Perm(len(r.Tuples))[:nDel] {
			d.Deletes[name] = append(d.Deletes[name], r.Tuples[i].Clone())
		}
		for i := 0; i < rng.IntN(4); i++ {
			d.Appends[name] = append(d.Appends[name],
				Tuple{1 + rng.IntN(db.N), 1 + rng.IntN(db.N)})
		}
	}
	return d
}

func TestApplyDeltaEffects(t *testing.T) {
	db := NewDatabase(10)
	r := &Relation{Name: "R", Attrs: []string{"x", "y"}}
	r.MustAdd(Tuple{1, 2})
	r.MustAdd(Tuple{1, 2}) // duplicate occurrence
	r.MustAdd(Tuple{3, 4})
	db.AddRelation(r)

	// Deleting one of two occurrences removes nothing set-wise.
	out, eff, err := ApplyDelta(db, Delta{Deletes: map[string][]Tuple{"R": {{1, 2}}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(eff["R"].Removed) != 0 || len(eff["R"].Added) != 0 {
		t.Fatalf("one-of-two delete produced effect %+v", eff["R"])
	}
	nr, _ := out.Relation("R")
	if len(nr.Tuples) != 2 {
		t.Fatalf("got %d tuples, want 2", len(nr.Tuples))
	}

	// Deleting the last occurrence removes; appending a fresh tuple adds.
	out, eff, err = ApplyDelta(db, Delta{
		Deletes: map[string][]Tuple{"R": {{3, 4}}},
		Appends: map[string][]Tuple{"R": {{5, 6}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := eff["R"]; len(got.Removed) != 1 || !got.Removed[0].Equal(Tuple{3, 4}) ||
		len(got.Added) != 1 || !got.Added[0].Equal(Tuple{5, 6}) {
		t.Fatalf("effect %+v, want removed [3 4], added [5 6]", eff["R"])
	}

	// Delete + re-append of the same tuple is a set-level no-op.
	_, eff, err = ApplyDelta(db, Delta{
		Deletes: map[string][]Tuple{"R": {{3, 4}}},
		Appends: map[string][]Tuple{"R": {{3, 4}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := eff["R"]; len(got.Removed) != 0 || len(got.Added) != 0 {
		t.Fatalf("delete+re-append produced effect %+v", got)
	}

	// The original database is untouched.
	if r2, _ := db.Relation("R"); len(r2.Tuples) != 3 {
		t.Fatalf("source relation mutated to %d tuples", len(r2.Tuples))
	}
}

func TestApplyDeltaRejects(t *testing.T) {
	db := NewDatabase(10)
	r := &Relation{Name: "R", Attrs: []string{"x", "y"}}
	r.MustAdd(Tuple{1, 2})
	db.AddRelation(r)

	cases := []Delta{
		{Deletes: map[string][]Tuple{"R": {{9, 9}}}},         // absent tuple
		{Deletes: map[string][]Tuple{"R": {{1, 2}, {1, 2}}}}, // more than present
		{Appends: map[string][]Tuple{"Q": {{1, 2}}}},         // unknown relation
		{Appends: map[string][]Tuple{"R": {{1}}}},            // arity mismatch
		{Appends: map[string][]Tuple{"R": {{0, 2}}}},         // below domain
		{Appends: map[string][]Tuple{"R": {{1, 11}}}},        // above domain
		{Deletes: map[string][]Tuple{"R": {{-1, 2}}}},        // negative value
	}
	for i, d := range cases {
		if _, _, err := ApplyDelta(db, d); err == nil {
			t.Errorf("case %d: delta %+v accepted, want error", i, d)
		}
	}
}

// TestIncrementalStatsMatchCollect is the incremental-stats property
// test: after every step of a random delta sequence, the maintained
// catalog equals a from-scratch CollectStats — cardinality, distinct
// counts, max frequency, and the exact top-K heavy-hitter list with
// its canonical order.
func TestIncrementalStatsMatchCollect(t *testing.T) {
	for _, domain := range []int{5, 12, 300} {
		rng := rand.New(rand.NewPCG(0xde17a, uint64(domain)))
		db := randomDeltaDB(rng, domain, 120)
		inc := NewIncrementalStats(db)
		if got, want := inc.Snapshot(), CollectStats(db); !reflect.DeepEqual(got, want) {
			t.Fatalf("domain %d: seeded snapshot diverges:\n got %+v\nwant %+v", domain, got, want)
		}
		for step := 0; step < 40; step++ {
			d := randomDelta(rng, db)
			next, _, err := ApplyDelta(db, d)
			if err != nil {
				t.Fatalf("domain %d step %d: %v", domain, step, err)
			}
			inc.Apply(d)
			db = next
			got, want := inc.Snapshot(), CollectStats(db)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("domain %d step %d: incremental catalog diverges from scratch:\n got %+v\nwant %+v",
					domain, step, got, want)
			}
		}
	}
}

// TestIncrementalStatsTopKPromotion forces the demotion path: a value
// inside the top-K shrinks below an untracked value, which must be
// promoted exactly as a re-collection would.
func TestIncrementalStatsTopKPromotion(t *testing.T) {
	db := NewDatabase(100)
	r := &Relation{Name: "R", Attrs: []string{"x", "y"}}
	// StatsTopK+1 distinct x-values; value 1 is the most frequent, the
	// last value is just below the top-K cut.
	for v := 1; v <= StatsTopK+1; v++ {
		reps := StatsTopK + 2 - v
		for i := 0; i < reps; i++ {
			r.MustAdd(Tuple{v, 50})
		}
	}
	db.AddRelation(r)
	inc := NewIncrementalStats(db)

	// Delete value 1 down to frequency 1: it must fall to the bottom
	// and the previously untracked value StatsTopK+1 must enter.
	var d Delta
	d.Deletes = map[string][]Tuple{}
	for i := 0; i < StatsTopK; i++ {
		d.Deletes["R"] = append(d.Deletes["R"], Tuple{1, 50})
	}
	next, _, err := ApplyDelta(db, d)
	if err != nil {
		t.Fatal(err)
	}
	inc.Apply(d)
	got, want := inc.Snapshot(), CollectStats(next)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-demotion catalog diverges:\n got %+v\nwant %+v", got, want)
	}
}

func TestTupleSetRemove(t *testing.T) {
	s := NewTupleSet(2, 4)
	s.Add(Tuple{1, 2})
	s.Add(Tuple{3, 4})
	if !s.Remove(Tuple{1, 2}) {
		t.Fatal("Remove of present tuple returned false")
	}
	if s.Remove(Tuple{1, 2}) {
		t.Fatal("second Remove returned true")
	}
	if s.Contains(Tuple{1, 2}) || !s.Contains(Tuple{3, 4}) || s.Len() != 1 {
		t.Fatalf("set state wrong after Remove: len=%d", s.Len())
	}
	// Fallback (string-key) path.
	big := NewTupleSet(2, 2)
	huge := Tuple{1 << 40, 1 << 40}
	big.Add(huge) // forces migration (values exceed 32-bit packing)
	big.Add(Tuple{1, 2})
	if !big.Remove(huge) || big.Contains(huge) {
		t.Fatal("Remove on fallback path failed")
	}
	if !big.Contains(Tuple{1, 2}) {
		t.Fatal("fallback Remove disturbed other members")
	}
}
