package relation

import (
	"fmt"
	"sort"
	"strings"
)

// StatsTopK bounds how many of the most frequent values per column a
// collected ColumnStats retains. The planner only ever compares the
// head of the frequency distribution against a heavy-hitter threshold
// of order |R|/p, so a small constant suffices: any value outside the
// top StatsTopK has frequency at most MaxFreq and at most |R|/StatsTopK
// of the column, which the planner accounts for via MaxFreq alone.
const StatsTopK = 16

// ValueCount pairs a domain value with its number of occurrences in
// one column.
type ValueCount struct {
	// Value is the domain value.
	Value int
	// Count is its frequency in the column.
	Count int
}

// ColumnStats summarizes the value distribution of one relation column.
// It is what the paper's Section 2.4 allows an input server to compute
// over its own relation before the first communication round: counts,
// not data.
type ColumnStats struct {
	// Distinct is the number of distinct values in the column.
	Distinct int
	// MaxFreq is the frequency of the most common value (1 on a
	// matching, where every column is a permutation).
	MaxFreq int
	// Top lists the most frequent values, descending by count (ties
	// broken by smaller value), capped at StatsTopK entries.
	Top []ValueCount
}

// RelationStats is the planner-facing summary of one relation:
// cardinality plus per-column value distributions.
type RelationStats struct {
	// Name is the relation symbol.
	Name string
	// Count is the relation's cardinality |R|.
	Count int
	// Attrs names the columns, aligned with Cols.
	Attrs []string
	// Cols holds one ColumnStats per column, in schema order.
	Cols []*ColumnStats
}

// Col returns the stats of the column at position i, or nil when out of
// range.
func (rs *RelationStats) Col(i int) *ColumnStats {
	if i < 0 || i >= len(rs.Cols) {
		return nil
	}
	return rs.Cols[i]
}

// ColByName returns the stats of the named column, or nil.
func (rs *RelationStats) ColByName(attr string) *ColumnStats {
	for i, a := range rs.Attrs {
		if a == attr {
			return rs.Cols[i]
		}
	}
	return nil
}

// String renders a one-line summary: |R|=n plus each column's max
// frequency when it exceeds 1 (matching columns are omitted as noise).
func (rs *RelationStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "|%s|=%d", rs.Name, rs.Count)
	for i, c := range rs.Cols {
		if c.MaxFreq > 1 {
			fmt.Fprintf(&sb, " maxfreq(%s)=%d", rs.Attrs[i], c.MaxFreq)
		}
	}
	return sb.String()
}

// CollectRelationStats scans one relation and returns its summary. The
// scan is a single pass per column over a frequency map, O(|R|·arity).
func CollectRelationStats(r *Relation) *RelationStats {
	rs := &RelationStats{
		Name:  r.Name,
		Count: len(r.Tuples),
		Attrs: append([]string(nil), r.Attrs...),
		Cols:  make([]*ColumnStats, r.Arity()),
	}
	for col := 0; col < r.Arity(); col++ {
		freq := make(map[int]int)
		for _, t := range r.Tuples {
			freq[t[col]]++
		}
		cs := &ColumnStats{Distinct: len(freq)}
		top := make([]ValueCount, 0, len(freq))
		for v, c := range freq {
			if c > cs.MaxFreq {
				cs.MaxFreq = c
			}
			top = append(top, ValueCount{Value: v, Count: c})
		}
		sort.Slice(top, func(i, j int) bool {
			if top[i].Count != top[j].Count {
				return top[i].Count > top[j].Count
			}
			return top[i].Value < top[j].Value
		})
		if len(top) > StatsTopK {
			top = top[:StatsTopK]
		}
		cs.Top = append([]ValueCount(nil), top...)
		rs.Cols[col] = cs
	}
	return rs
}

// Stats is a database-wide statistics catalog keyed by relation name —
// the planner's input alongside the query itself.
type Stats struct {
	// Relations maps relation name → collected summary.
	Relations map[string]*RelationStats
}

// CollectStats scans every relation of the database. In the MPC model
// this is legal "free" preprocessing: each input server computes
// statistics over its own relation only (Section 2.4) and the Θ(p)
// numbers exchanged are negligible against the Ω(n) data.
func CollectStats(db *Database) *Stats {
	s := &Stats{Relations: make(map[string]*RelationStats, len(db.Relations))}
	for _, name := range db.Names() {
		r, _ := db.Relation(name)
		s.Relations[name] = CollectRelationStats(r)
	}
	return s
}

// Stats returns the database's statistics catalog, collecting it on
// first use and memoizing it for every later call — the serving layer
// amortizes the O(Σ|S_j|·a_j) scan across all queries that hit the
// same resident dataset. AddRelation invalidates the memo. The
// returned catalog is shared and must be treated as read-only;
// concurrent callers are safe.
func (db *Database) Stats() *Stats {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	if db.cachedStats == nil {
		db.cachedStats = CollectStats(db)
	}
	return db.cachedStats
}

// InstallStats installs a precomputed catalog as the database's memo,
// so the next Stats call returns it without a collection scan. The
// incremental-maintenance path uses it to seed a post-delta snapshot's
// catalog from the delta instead of re-scanning; the caller guarantees
// s describes the database's current contents.
func (db *Database) InstallStats(s *Stats) {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	db.cachedStats = s
}

// Relation returns the summary of the named relation, or nil.
func (s *Stats) Relation(name string) *RelationStats {
	if s == nil {
		return nil
	}
	return s.Relations[name]
}

// Size returns the cardinality of the named relation and whether it is
// known.
func (s *Stats) Size(name string) (int, bool) {
	rs := s.Relation(name)
	if rs == nil {
		return 0, false
	}
	return rs.Count, true
}

// Sizes returns a name → cardinality map (the shape the hypercube
// share optimizer consumes).
func (s *Stats) Sizes() map[string]int {
	out := make(map[string]int, len(s.Relations))
	for name, rs := range s.Relations {
		out[name] = rs.Count
	}
	return out
}

// TotalTuples returns the summed cardinality Σ_j |S_j|.
func (s *Stats) TotalTuples() int {
	total := 0
	for _, rs := range s.Relations {
		total += rs.Count
	}
	return total
}

// MaxCount returns the largest relation cardinality (the n of the
// paper's per-relation bounds), or 0 for an empty catalog.
func (s *Stats) MaxCount() int {
	max := 0
	for _, rs := range s.Relations {
		if rs.Count > max {
			max = rs.Count
		}
	}
	return max
}
