package relation

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestTupleSetBasic(t *testing.T) {
	s := NewTupleSet(3, 4)
	if !s.Add(Tuple{1, 2, 3}) {
		t.Error("first Add should report new")
	}
	if s.Add(Tuple{1, 2, 3}) {
		t.Error("duplicate Add should report existing")
	}
	if !s.Add(Tuple{1, 2, 4}) || !s.Add(Tuple{3, 2, 1}) {
		t.Error("distinct tuples should be new")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if !s.Contains(Tuple{3, 2, 1}) || s.Contains(Tuple{3, 2, 2}) {
		t.Error("Contains mismatch")
	}
}

// TestTupleSetNoPackingCollisions guards the packed encoding against
// concatenation ambiguity: (1,23) and (12,3) must stay distinct.
func TestTupleSetNoPackingCollisions(t *testing.T) {
	s := NewTupleSet(2, 0)
	s.Add(Tuple{1, 23})
	if s.Contains(Tuple{12, 3}) {
		t.Error("packed keys must distinguish (1,23) from (12,3)")
	}
}

// TestTupleSetMigration forces the fallback path with values that do
// not fit the packed width and checks earlier members survive.
func TestTupleSetMigration(t *testing.T) {
	s := NewTupleSet(2, 0)
	members := []Tuple{{1, 2}, {7, 9}, {1 << 20, 5}}
	for _, m := range members {
		s.Add(m)
	}
	// Arity 2 packs 32 bits per value; exceed it to migrate.
	big := Tuple{math.MaxInt, math.MaxInt}
	if !s.Add(big) {
		t.Error("oversized tuple should insert via fallback")
	}
	if s.Add(big) {
		t.Error("oversized duplicate should be detected")
	}
	for _, m := range members {
		if !s.Contains(m) {
			t.Errorf("member %v lost in migration", m)
		}
	}
	if s.Contains(Tuple{2, 1}) {
		t.Error("false positive after migration")
	}
	if s.Len() != len(members)+1 {
		t.Errorf("Len = %d, want %d", s.Len(), len(members)+1)
	}
	// Negative values also take the fallback path.
	neg := NewTupleSet(1, 0)
	if !neg.Add(Tuple{-5}) || neg.Add(Tuple{-5}) || !neg.Contains(Tuple{-5}) {
		t.Error("negative values must dedup via fallback")
	}
}

// TestTupleSetMatchesStringKeys cross-checks TupleSet against the
// reference string-key dedup on random tuples, including values that
// straddle the packed limit.
func TestTupleSetMatchesStringKeys(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, arity := range []int{1, 2, 3, 5, 9} {
		s := NewTupleSet(arity, 0)
		ref := make(map[string]bool)
		for i := 0; i < 2000; i++ {
			tp := make(Tuple, arity)
			for j := range tp {
				// Mix small values with ones beyond the packed width.
				if rng.IntN(10) == 0 {
					tp[j] = math.MaxInt - rng.IntN(100)
				} else {
					tp[j] = rng.IntN(64)
				}
			}
			wantNew := !ref[tp.Key()]
			ref[tp.Key()] = true
			if got := s.Add(tp); got != wantNew {
				t.Fatalf("arity %d: Add(%v) = %v, want %v", arity, tp, got, wantNew)
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("arity %d: Len = %d, want %d", arity, s.Len(), len(ref))
		}
	}
}

func TestDedupSort(t *testing.T) {
	ts := []Tuple{{3, 1}, {1, 2}, {3, 1}, {1, 2}, {2, 9}}
	out := DedupSort(ts)
	want := []Tuple{{1, 2}, {2, 9}, {3, 1}}
	if len(out) != len(want) {
		t.Fatalf("DedupSort = %v", out)
	}
	for i := range want {
		if !out[i].Equal(want[i]) {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if got := DedupSort(nil); len(got) != 0 {
		t.Errorf("DedupSort(nil) = %v", got)
	}
}
