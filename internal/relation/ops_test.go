package relation

import (
	"math/rand/v2"
	"testing"
)

func rel(name string, attrs []string, rows ...Tuple) *Relation {
	r := New(name, attrs...)
	for _, row := range rows {
		r.MustAdd(row)
	}
	return r
}

func TestNaturalJoinShared(t *testing.T) {
	r := rel("R", []string{"x", "y"}, Tuple{1, 2}, Tuple{2, 3})
	s := rel("S", []string{"y", "z"}, Tuple{2, 10}, Tuple{2, 11}, Tuple{9, 9})
	j := NaturalJoin(r, s)
	if len(j.Attrs) != 3 || j.Attrs[0] != "x" || j.Attrs[1] != "y" || j.Attrs[2] != "z" {
		t.Fatalf("schema = %v", j.Attrs)
	}
	j.Sort()
	want := []Tuple{{1, 2, 10}, {1, 2, 11}}
	if len(j.Tuples) != len(want) {
		t.Fatalf("tuples = %v", j.Tuples)
	}
	for i := range want {
		if !j.Tuples[i].Equal(want[i]) {
			t.Errorf("tuple %d = %v, want %v", i, j.Tuples[i], want[i])
		}
	}
}

func TestNaturalJoinCartesian(t *testing.T) {
	r := rel("R", []string{"x"}, Tuple{1}, Tuple{2})
	s := rel("S", []string{"y"}, Tuple{10}, Tuple{20})
	j := NaturalJoin(r, s)
	if len(j.Tuples) != 4 {
		t.Errorf("cartesian size = %d, want 4", len(j.Tuples))
	}
}

func TestNaturalJoinMultiAttr(t *testing.T) {
	r := rel("R", []string{"x", "y"}, Tuple{1, 2}, Tuple{3, 4})
	s := rel("S", []string{"x", "y", "z"}, Tuple{1, 2, 7}, Tuple{1, 9, 8})
	j := NaturalJoin(r, s)
	if len(j.Tuples) != 1 || !j.Tuples[0].Equal(Tuple{1, 2, 7}) {
		t.Errorf("join = %v", j.Tuples)
	}
}

func TestProject(t *testing.T) {
	r := rel("R", []string{"x", "y"}, Tuple{1, 2}, Tuple{1, 3}, Tuple{2, 2})
	p, err := Project(r, "x")
	if err != nil {
		t.Fatal(err)
	}
	p.Sort()
	if len(p.Tuples) != 2 || p.Tuples[0][0] != 1 || p.Tuples[1][0] != 2 {
		t.Errorf("project = %v", p.Tuples)
	}
	if _, err := Project(r, "nope"); err == nil {
		t.Error("want error for unknown attribute")
	}
	// Reorder columns.
	p2, err := Project(r, "y", "x")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Attrs[0] != "y" {
		t.Error("projection should honor attribute order")
	}
}

func TestSemijoin(t *testing.T) {
	r := rel("R", []string{"x", "y"}, Tuple{1, 2}, Tuple{2, 3})
	s := rel("S", []string{"y"}, Tuple{2})
	sj := Semijoin(r, s)
	if len(sj.Tuples) != 1 || !sj.Tuples[0].Equal(Tuple{1, 2}) {
		t.Errorf("semijoin = %v", sj.Tuples)
	}
	// No shared attributes: passthrough iff s non-empty.
	u := rel("U", []string{"w"}, Tuple{5})
	if got := Semijoin(r, u); len(got.Tuples) != 2 {
		t.Errorf("disjoint semijoin vs non-empty = %v", got.Tuples)
	}
	empty := New("E", "w")
	if got := Semijoin(r, empty); len(got.Tuples) != 0 {
		t.Errorf("disjoint semijoin vs empty = %v", got.Tuples)
	}
}

func TestSelect(t *testing.T) {
	r := rel("R", []string{"x", "y"}, Tuple{1, 2}, Tuple{2, 2}, Tuple{2, 9})
	s, err := Select(r, "x", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tuples) != 2 {
		t.Errorf("select = %v", s.Tuples)
	}
	if _, err := Select(r, "nope", 1); err == nil {
		t.Error("want error for unknown attribute")
	}
}

// TestJoinOfMatchingsIsMatching: the join of two binary matchings on a
// shared attribute is again a (2-column-keyed) relation of exactly n
// tuples — the composition of two permutations.
func TestJoinOfMatchingsIsMatching(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 42))
	n := 64
	r := Matching(rng, "R", []string{"x", "y"}, n)
	s := Matching(rng, "S", []string{"y", "z"}, n)
	j := NaturalJoin(r, s)
	if len(j.Tuples) != n {
		t.Fatalf("|R⋈S| = %d, want %d", len(j.Tuples), n)
	}
	p, err := Project(j, "x", "z")
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsMatching(n) {
		t.Error("projection of composed matchings should be a matching")
	}
}
