package relation

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/query"
)

func TestTupleBasics(t *testing.T) {
	a := Tuple{1, 2, 3}
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone should be equal")
	}
	b[0] = 9
	if a.Equal(b) {
		t.Error("mutating clone must not alias original")
	}
	if a.Equal(Tuple{1, 2}) {
		t.Error("different lengths are unequal")
	}
	if a.Key() != "1|2|3" {
		t.Errorf("Key = %q", a.Key())
	}
	if !(Tuple{1, 2}).Less(Tuple{1, 3}) {
		t.Error("lex order")
	}
	if !(Tuple{1}).Less(Tuple{1, 0}) {
		t.Error("prefix is less")
	}
	if (Tuple{2}).Less(Tuple{1, 5}) {
		t.Error("2 > 1,*")
	}
}

func TestRelationBasics(t *testing.T) {
	r := New("R", "x", "y")
	if r.Arity() != 2 || r.Size() != 0 {
		t.Error("empty relation shape")
	}
	if err := r.Add(Tuple{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(Tuple{1}); err == nil {
		t.Error("want arity error")
	}
	r.MustAdd(Tuple{3, 4})
	if r.Size() != 2 {
		t.Errorf("size = %d", r.Size())
	}
	if r.AttrIndex("y") != 1 || r.AttrIndex("z") != -1 {
		t.Error("AttrIndex")
	}
	c := r.Clone()
	c.Tuples[0][0] = 99
	if r.Tuples[0][0] == 99 {
		t.Error("clone aliases tuples")
	}
	if got := r.String(); got != "R(x,y)[2 tuples]" {
		t.Errorf("String = %q", got)
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAdd should panic on arity mismatch")
		}
	}()
	New("R", "x").MustAdd(Tuple{1, 2})
}

func TestSortDedup(t *testing.T) {
	r := New("R", "x")
	r.MustAdd(Tuple{3})
	r.MustAdd(Tuple{1})
	r.MustAdd(Tuple{3})
	r.Dedup().Sort()
	if r.Size() != 2 || r.Tuples[0][0] != 1 || r.Tuples[1][0] != 3 {
		t.Errorf("after dedup+sort: %v", r.Tuples)
	}
}

func TestMatchingInvariants(t *testing.T) {
	// Property: Matching always produces an a-dimensional matching.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		n := 1 + rng.IntN(50)
		a := 1 + rng.IntN(4)
		attrs := make([]string, a)
		for i := range attrs {
			attrs[i] = string(rune('a' + i))
		}
		r := Matching(rng, "S", attrs, n)
		return r.IsMatching(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIsMatchingNegativeCases(t *testing.T) {
	r := New("S", "x", "y")
	r.MustAdd(Tuple{1, 1})
	r.MustAdd(Tuple{1, 2}) // column x repeats value 1
	if r.IsMatching(2) {
		t.Error("repeated column value is not a matching")
	}
	r2 := New("S", "x")
	r2.MustAdd(Tuple{1})
	if r2.IsMatching(2) {
		t.Error("wrong cardinality is not a matching")
	}
	r3 := New("S", "x")
	r3.MustAdd(Tuple{5})
	if r3.IsMatching(1) {
		t.Error("out-of-domain value is not a matching")
	}
}

func TestIdentityMatching(t *testing.T) {
	r := IdentityMatching("S", []string{"x", "y", "z"}, 4)
	if !r.IsMatching(4) {
		t.Error("identity should be a matching")
	}
	for _, tp := range r.Tuples {
		if tp[0] != tp[1] || tp[1] != tp[2] {
			t.Errorf("identity tuple %v", tp)
		}
	}
}

func TestSkewedZipf(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	r := SkewedZipf(rng, "S", []string{"x", "y"}, 2000, 1.0)
	if r.Size() != 2000 {
		t.Fatalf("size = %d", r.Size())
	}
	// Heavy hitter: value 1 should appear far more often than uniform
	// (expected ~ n/H(n) ≈ 250 vs uniform 1).
	count1 := 0
	for _, tp := range r.Tuples {
		if tp[0] == 1 {
			count1++
		}
	}
	if count1 < 50 {
		t.Errorf("value 1 occurs %d times; want heavy skew", count1)
	}
	defer func() {
		if recover() == nil {
			t.Error("SkewedZipf should panic for non-binary schema")
		}
	}()
	SkewedZipf(rng, "S", []string{"x"}, 10, 1.0)
}

func TestDatabase(t *testing.T) {
	db := NewDatabase(10)
	db.AddRelation(New("R", "x", "y"))
	db.AddRelation(New("S", "y", "z"))
	if _, ok := db.Relation("R"); !ok {
		t.Error("R missing")
	}
	if _, ok := db.Relation("nope"); ok {
		t.Error("phantom relation")
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "R" || names[1] != "S" {
		t.Errorf("Names = %v", names)
	}
	// Replacement keeps order stable.
	db.AddRelation(New("R", "x", "y"))
	if got := db.Names(); len(got) != 2 {
		t.Errorf("Names after replace = %v", got)
	}
	r, _ := db.Relation("R")
	r.MustAdd(Tuple{1, 2})
	if db.TotalTuples() != 1 {
		t.Errorf("TotalTuples = %d", db.TotalTuples())
	}
	// InputBits: 1 tuple × arity 2 × ceil(log2(11)) = 2×4 = 8.
	if got := db.InputBits(); got != 8 {
		t.Errorf("InputBits = %d, want 8", got)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for x, want := range cases {
		if got := ceilLog2(x); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestMatchingDatabase(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	q := query.Cycle(3)
	db := MatchingDatabase(rng, q, 20)
	if len(db.Names()) != 3 {
		t.Fatalf("relations = %v", db.Names())
	}
	for _, name := range db.Names() {
		r, _ := db.Relation(name)
		if !r.IsMatching(20) {
			t.Errorf("%s is not a matching", name)
		}
	}
	idb := IdentityDatabase(q, 5)
	for _, name := range idb.Names() {
		r, _ := idb.Relation(name)
		for _, tp := range r.Tuples {
			if tp[0] != tp[1] {
				t.Errorf("identity db tuple %v", tp)
			}
		}
	}
}
