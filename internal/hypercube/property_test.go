package hypercube

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/localjoin"
	"repro/internal/query"
	"repro/internal/relation"
)

// TestHCCompletenessProperty: for random connected binary queries over
// random matching databases, one-round HC at the query's own space
// exponent finds exactly the ground-truth answers (Theorem 1.1 upper
// bound, beyond the named families).
func TestHCCompletenessProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 83))
		q := randomConnectedBinaryQuery(rng)
		n := 20 + rng.IntN(60)
		p := []int{8, 16, 27, 64}[rng.IntN(4)]
		db := relation.MatchingDatabase(rng, q, n)
		b, err := localjoin.FromDatabase(q, db)
		if err != nil {
			return false
		}
		truth, err := localjoin.Evaluate(q, b, localjoin.HashJoin)
		if err != nil {
			return false
		}
		res, err := Run(q, db, p, Options{Epsilon: 1, Seed: seed})
		if err != nil {
			return false
		}
		if len(res.Answers) != len(truth) {
			return false
		}
		for i := range truth {
			if !res.Answers[i].Equal(truth[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestHCDeterminism: identical seeds produce identical answers and
// identical communication statistics.
func TestHCDeterminism(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	q := query.Triangle()
	db := relation.MatchingDatabase(rng, q, 300)
	a, err := Run(q, db, 27, Options{Epsilon: 1.0 / 3.0, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(q, db, 27, Options{Epsilon: 1.0 / 3.0, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Answers) != len(b.Answers) {
		t.Fatalf("answer counts differ: %d vs %d", len(a.Answers), len(b.Answers))
	}
	if a.Stats.TotalBits() != b.Stats.TotalBits() ||
		a.Stats.MaxLoadBits() != b.Stats.MaxLoadBits() ||
		a.Stats.MaxLoadTuples() != b.Stats.MaxLoadTuples() {
		t.Error("stats differ between identical runs")
	}
	// A different seed reshuffles: loads usually differ (not asserted
	// strictly — only that the run stays correct).
	c, err := Run(q, db, 27, Options{Epsilon: 1.0 / 3.0, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Answers) != len(a.Answers) {
		t.Error("different seed changed the answer set")
	}
}

// randomConnectedBinaryQuery builds a small random connected query
// with binary atoms (so matching databases are permutations).
func randomConnectedBinaryQuery(rng *rand.Rand) *query.Query {
	nAtoms := 1 + rng.IntN(4)
	atoms := make([]query.Atom, nAtoms)
	varCount := 2
	atoms[0] = query.Atom{Name: "A0", Vars: []string{"v1", "v2"}}
	existing := []string{"v1", "v2"}
	for i := 1; i < nAtoms; i++ {
		anchor := existing[rng.IntN(len(existing))]
		var other string
		if rng.IntN(3) == 0 && len(existing) > 1 {
			other = existing[rng.IntN(len(existing))]
			if other == anchor {
				varCount++
				other = varName(varCount)
				existing = append(existing, other)
			}
		} else {
			varCount++
			other = varName(varCount)
			existing = append(existing, other)
		}
		vs := []string{anchor, other}
		if rng.IntN(2) == 0 {
			vs[0], vs[1] = vs[1], vs[0]
		}
		atoms[i] = query.Atom{Name: "A" + string(rune('0'+i)), Vars: vs}
	}
	return query.MustNew("randbin", atoms...)
}

func varName(i int) string {
	return "v" + string(rune('0'+i%10)) + string(rune('a'+(i/10)%26))
}
