package hypercube

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/localjoin"
	"repro/internal/query"
	"repro/internal/relation"
)

func TestSharesGrid(t *testing.T) {
	s := &Shares{Vars: []string{"x", "y", "z"}, Dims: []int{2, 3, 4}}
	if s.GridSize() != 24 {
		t.Errorf("GridSize = %d", s.GridSize())
	}
	for point := 0; point < 24; point++ {
		coords := s.CoordsOf(point)
		if got := s.ServerOf(coords); got != point {
			t.Errorf("round trip %d → %v → %d", point, coords, got)
		}
	}
	if s.DimOf("y") != 1 || s.DimOf("nope") != -1 {
		t.Error("DimOf")
	}
	if s.String() == "" {
		t.Error("String should render")
	}
}

func TestComputeSharesC3(t *testing.T) {
	// C3 has exponents (1/3,1/3,1/3); with p = 64 the shares are 4,4,4.
	q := query.Triangle()
	s, err := SharesForQuery(q, 64, GreedyRounding)
	if err != nil {
		t.Fatal(err)
	}
	if s.GridSize() > 64 {
		t.Fatalf("grid %d exceeds p", s.GridSize())
	}
	for i, d := range s.Dims {
		if d != 4 {
			t.Errorf("share %d = %d, want 4", i, d)
		}
	}
}

func TestComputeSharesStar(t *testing.T) {
	// T_k: hub gets everything (e_z = 1), spokes 1.
	q := query.Star(3)
	s, err := SharesForQuery(q, 32, GreedyRounding)
	if err != nil {
		t.Fatal(err)
	}
	if s.GridSize() != 32 {
		t.Errorf("grid = %d, want 32", s.GridSize())
	}
	hub := s.DimOf("z")
	if s.Dims[hub] != 32 {
		t.Errorf("hub share = %d, want 32", s.Dims[hub])
	}
}

func TestComputeSharesGreedyBeatsFloor(t *testing.T) {
	// With p = 50 and C3, floor gives 3×3×3 = 27; greedy fills to ≤ 50.
	q := query.Triangle()
	floor, err := SharesForQuery(q, 50, FloorRounding)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := SharesForQuery(q, 50, GreedyRounding)
	if err != nil {
		t.Fatal(err)
	}
	if floor.GridSize() > 50 || greedy.GridSize() > 50 {
		t.Fatal("budget exceeded")
	}
	if greedy.GridSize() < floor.GridSize() {
		t.Errorf("greedy grid %d < floor grid %d", greedy.GridSize(), floor.GridSize())
	}
}

func TestComputeSharesValidation(t *testing.T) {
	if _, err := ComputeShares([]string{"x"}, []float64{0.5, 0.5}, 4, GreedyRounding); err == nil {
		t.Error("want length mismatch error")
	}
	if _, err := ComputeShares([]string{"x"}, []float64{-1}, 4, GreedyRounding); err == nil {
		t.Error("want negative exponent error")
	}
	if _, err := ComputeShares([]string{"x"}, []float64{1}, 0, GreedyRounding); err == nil {
		t.Error("want budget error")
	}
}

func TestComputeSharesBudgetProperty(t *testing.T) {
	// For exponents summing to ≤ 1, the grid never exceeds the budget.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 41))
		k := 1 + rng.IntN(5)
		exps := make([]float64, k)
		vars := make([]string, k)
		rem := 1.0
		for i := range exps {
			vars[i] = string(rune('a' + i))
			e := rng.Float64() * rem
			exps[i] = e
			rem -= e
		}
		budget := 1 + rng.IntN(2048)
		s, err := ComputeShares(vars, exps, budget, GreedyRounding)
		if err != nil {
			return false
		}
		if s.GridSize() > budget {
			return false
		}
		for _, d := range s.Dims {
			if d < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHasherDeterministicAndInRange(t *testing.T) {
	s := &Shares{Vars: []string{"x", "y"}, Dims: []int{5, 7}}
	h1 := NewHasher(s, 99)
	h2 := NewHasher(s, 99)
	h3 := NewHasher(s, 100)
	differs := false
	for v := 1; v <= 200; v++ {
		for d := 0; d < 2; d++ {
			c := h1.Coord(d, v)
			if c < 0 || c >= s.Dims[d] {
				t.Fatalf("coord out of range: %d", c)
			}
			if c != h2.Coord(d, v) {
				t.Fatal("same seed must agree")
			}
			if c != h3.Coord(d, v) {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("different seeds should differ somewhere")
	}
	// Dimension with share 1 always maps to 0.
	s1 := &Shares{Vars: []string{"x"}, Dims: []int{1}}
	h := NewHasher(s1, 1)
	if h.Coord(0, 12345) != 0 {
		t.Error("share-1 dimension must map to 0")
	}
}

func TestDestinationsReplication(t *testing.T) {
	// C3 on a 4×4×4 grid: a tuple of S1(x1,x2) fixes dims 0,1 and is
	// replicated along dim 2 → exactly 4 destinations.
	q := query.Triangle()
	s := &Shares{Vars: q.Vars(), Dims: []int{4, 4, 4}}
	h := NewHasher(s, 7)
	dsts := Destinations(s, h, q.Atoms[0], relation.Tuple{10, 20})
	if len(dsts) != 4 {
		t.Fatalf("destinations = %v, want 4", dsts)
	}
	seen := map[int]bool{}
	for _, d := range dsts {
		if d < 0 || d >= 64 || seen[d] {
			t.Fatalf("bad destination set %v", dsts)
		}
		seen[d] = true
	}
}

func TestDestinationsAnswerCoverage(t *testing.T) {
	// The server of (h1(a1),h2(a2),h3(a3)) must be a destination of all
	// three tuples forming that answer (Example 3.1's invariant).
	q := query.Triangle()
	s := &Shares{Vars: q.Vars(), Dims: []int{3, 4, 5}}
	h := NewHasher(s, 11)
	a1, a2, a3 := 17, 42, 99
	target := s.ServerOf([]int{h.Coord(0, a1), h.Coord(1, a2), h.Coord(2, a3)})
	tuples := []struct {
		atom query.Atom
		t    relation.Tuple
	}{
		{q.Atoms[0], relation.Tuple{a1, a2}},
		{q.Atoms[1], relation.Tuple{a2, a3}},
		{q.Atoms[2], relation.Tuple{a3, a1}},
	}
	for _, tc := range tuples {
		found := false
		for _, d := range Destinations(s, h, tc.atom, tc.t) {
			if d == target {
				found = true
			}
		}
		if !found {
			t.Errorf("tuple %v of %s does not reach answer server %d", tc.t, tc.atom.Name, target)
		}
	}
}

func TestRunTriangleComplete(t *testing.T) {
	// HC at the query's space exponent must find every answer.
	rng := rand.New(rand.NewPCG(3, 3))
	q := query.Triangle()
	n := 200
	db := relation.MatchingDatabase(rng, q, n)
	truth := groundTruth(t, q, db)
	res, err := Run(q, db, 64, Options{
		Epsilon:     1.0 / 3.0,
		CapConstant: 0, // measure only
		Seed:        12345,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTuples(t, res.Answers, truth)
	if res.Stats.NumRounds() != 1 {
		t.Errorf("rounds = %d, want 1", res.Stats.NumRounds())
	}
}

func TestRunChainComplete(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	for _, k := range []int{2, 3, 4} {
		q := query.Chain(k)
		n := 150
		db := relation.MatchingDatabase(rng, q, n)
		truth := groundTruth(t, q, db)
		res, err := Run(q, db, 16, Options{Seed: 5, Strategy: localjoin.HashJoin})
		if err != nil {
			t.Fatalf("L%d: %v", k, err)
		}
		assertSameTuples(t, res.Answers, truth)
		if len(res.Answers) != n {
			t.Errorf("L%d: %d answers, want %d", k, len(res.Answers), n)
		}
	}
}

func TestRunStarComplete(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	q := query.Star(3)
	n := 100
	db := relation.MatchingDatabase(rng, q, n)
	truth := groundTruth(t, q, db)
	res, err := Run(q, db, 8, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTuples(t, res.Answers, truth)
}

func TestRunLoadWithinBound(t *testing.T) {
	// Proposition 3.2: max tuples received per server = O(n/p^{1/τ*}).
	rng := rand.New(rand.NewPCG(6, 6))
	q := query.Triangle()
	n := 3000
	db := relation.MatchingDatabase(rng, q, n)
	p := 64
	res, err := Run(q, db, p, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	bound := TheoreticalLoad(n, p, 1.5) // n/p^{2/3} per relation
	// Three relations, and constant slack for hashing variance.
	limit := 3 * bound * 2.5
	if got := float64(res.Stats.MaxLoadTuples()); got > limit {
		t.Errorf("max load %v exceeds %v (3 relations × bound %v × slack)", got, limit, bound)
	}
}

func TestRunMissingRelation(t *testing.T) {
	q := query.Triangle()
	db := relation.NewDatabase(10)
	if _, err := Run(q, db, 8, Options{}); err == nil {
		t.Fatal("want error for missing relation")
	}
}

func TestRunWithSharesGridTooLarge(t *testing.T) {
	q := query.Chain(2)
	db := relation.IdentityDatabase(q, 4)
	s := &Shares{Vars: q.Vars(), Dims: []int{4, 4, 4}}
	if _, err := RunWithShares(q, db, 8, s, Options{}); err == nil {
		t.Fatal("want error: grid larger than p")
	}
}

func TestRunSampledFraction(t *testing.T) {
	// Proposition 3.11 / Theorem 3.3: with ε below the space exponent,
	// the found fraction ≈ p^{1−(1−ε)τ*}. For C3 with ε = 0, τ* = 3/2:
	// fraction ≈ p^{-1/2}.
	rng := rand.New(rand.NewPCG(7, 7))
	q := query.Triangle()
	n := 4000
	db := relation.MatchingDatabase(rng, q, n)
	truth := groundTruth(t, q, db)
	if len(truth) == 0 {
		t.Skip("random matching db produced no triangles (expected ~1); reseed")
	}
	p := 64
	res, err := RunSampled(q, db, p, Options{Epsilon: 0, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	// Every reported answer must be a true answer.
	truthKeys := map[string]bool{}
	for _, tp := range truth {
		truthKeys[tp.Key()] = true
	}
	for _, tp := range res.Answers {
		if !truthKeys[tp.Key()] {
			t.Errorf("sampled run reported false answer %v", tp)
		}
	}
	if res.GridPoints != p {
		t.Errorf("grid points = %d, want %d", res.GridPoints, p)
	}
}

func TestRunSampledSmallGrid(t *testing.T) {
	// When the virtual grid is ≤ p (tiny query), sampling materializes
	// everything and finds all answers.
	rng := rand.New(rand.NewPCG(8, 8))
	q := query.Chain(2)
	n := 100
	db := relation.MatchingDatabase(rng, q, n)
	truth := groundTruth(t, q, db)
	res, err := RunSampled(q, db, 64, Options{Epsilon: 0.9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTuples(t, res.Answers, truth)
}

func TestTheoreticalLoad(t *testing.T) {
	if got := TheoreticalLoad(1000, 64, 1.5); math.Abs(got-1000/16.0) > 1e-9 {
		t.Errorf("TheoreticalLoad = %v, want 62.5", got)
	}
}

func groundTruth(t *testing.T, q *query.Query, db *relation.Database) []relation.Tuple {
	t.Helper()
	b, err := localjoin.FromDatabase(q, db)
	if err != nil {
		t.Fatal(err)
	}
	out, err := localjoin.Evaluate(q, b, localjoin.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertSameTuples(t *testing.T, got, want []relation.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("tuple %d: got %v, want %v", i, got[i], want[i])
		}
	}
}
