package hypercube

import (
	"context"
	"math/rand/v2"
	"net"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/query"
	"repro/internal/relation"
)

// startDeltaPool spins up n in-process TCP worker listeners (the
// exact code cmd/mpcworker runs) and returns their addresses.
func startDeltaPool(t *testing.T, n int) []string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		go dist.Serve(ctx, ln)
	}
	return addrs
}

// dialDeltaPool dials a fresh session against the pool.
func dialDeltaPool(t *testing.T, addrs []string) *dist.TCP {
	t.Helper()
	tr, err := dist.DialTCP(context.Background(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// randomMaintDelta draws one delta batch over db: deletes sampled
// from present tuples (distinct positions, so multiplicities always
// validate) and appends drawn fresh from the domain.
func randomMaintDelta(rng *rand.Rand, db *relation.Database) relation.Delta {
	d := relation.Delta{
		Appends: map[string][]relation.Tuple{},
		Deletes: map[string][]relation.Tuple{},
	}
	for _, name := range db.Names() {
		r, _ := db.Relation(name)
		nDel := rng.IntN(3)
		if nDel > len(r.Tuples) {
			nDel = len(r.Tuples)
		}
		for _, i := range rng.Perm(len(r.Tuples))[:nDel] {
			d.Deletes[name] = append(d.Deletes[name], r.Tuples[i].Clone())
		}
		for i := 0; i < rng.IntN(3); i++ {
			tup := make(relation.Tuple, r.Arity())
			for j := range tup {
				tup[j] = 1 + rng.IntN(db.N)
			}
			d.Appends[name] = append(d.Appends[name], tup)
		}
	}
	return d
}

// answersEqual compares two answer sets element-wise (nil and empty
// are the same empty answer).
func answersEqual(a, b []relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// dbEffect computes the set-level difference between two database
// states per relation — the one-batch delta equivalent to any
// sequence of batches leading from before to after.
func dbEffect(before, after *relation.Database) map[string]relation.Effect {
	out := make(map[string]relation.Effect)
	for _, name := range before.Names() {
		b, _ := before.Relation(name)
		a, _ := after.Relation(name)
		bset := relation.NewTupleSet(b.Arity(), len(b.Tuples))
		for _, t := range b.Tuples {
			bset.Add(t)
		}
		aset := relation.NewTupleSet(a.Arity(), len(a.Tuples))
		for _, t := range a.Tuples {
			aset.Add(t)
		}
		var eff relation.Effect
		seenAdd := relation.NewTupleSet(a.Arity(), 8)
		for _, t := range a.Tuples {
			if !bset.Contains(t) && !seenAdd.Contains(t) {
				seenAdd.Add(t)
				eff.Added = append(eff.Added, t)
			}
		}
		seenDel := relation.NewTupleSet(b.Arity(), 8)
		for _, t := range b.Tuples {
			if !aset.Contains(t) && !seenDel.Contains(t) {
				seenDel.Add(t)
				eff.Removed = append(eff.Removed, t)
			}
		}
		out[name] = eff
	}
	return out
}

// maintScenario is one precomputed delta scenario: the initial
// database, the per-batch effects, the database state after each
// batch, and the final state.
type maintScenario struct {
	q     *query.Query
	db0   *relation.Database
	effs  []map[string]relation.Effect
	dbs   []*relation.Database // dbs[i] is the state after batch i
	final *relation.Database
}

// buildScenario generates batches random delta batches over db0.
func buildScenario(t *testing.T, rng *rand.Rand, q *query.Query, db0 *relation.Database, batches int) *maintScenario {
	t.Helper()
	sc := &maintScenario{q: q, db0: db0}
	db := db0
	for b := 0; b < batches; b++ {
		d := randomMaintDelta(rng, db)
		next, eff, err := relation.ApplyDelta(db, d)
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		sc.effs = append(sc.effs, eff)
		sc.dbs = append(sc.dbs, next)
		db = next
	}
	sc.final = db
	return sc
}

// runMaintainer replays the scenario's batches on one transport and
// returns the maintainer for inspection. When check is set, answers
// are compared against ground truth after every batch, not only at
// the end.
func runMaintainer(t *testing.T, sc *maintScenario, p int, opts Options, check bool) *Maintainer {
	t.Helper()
	m, err := NewMaintainer(sc.q, sc.db0, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	for b, eff := range sc.effs {
		if _, err := m.ApplyDelta(eff); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		if check {
			want := groundTruth(t, sc.q, sc.dbs[b])
			if !answersEqual(m.Answers(), want) {
				t.Fatalf("batch %d: maintained answers diverge from ground truth: %d vs %d tuples",
					b, len(m.Answers()), len(want))
			}
		}
	}
	return m
}

// TestMaintainerMetamorphic is the metamorphic delta-equivalence net:
// across query families (triangle, star, chain) and data regimes
// (matching, Zipf-skewed), a maintained view under any sequence of
// append/delete batches equals ground truth on the final state —
// byte-identically across loopback and TCP transports, with identical
// round statistics, sync or pipelined — and collapsing the whole
// sequence into one batch changes nothing (granularity invariance).
func TestMaintainerMetamorphic(t *testing.T) {
	const (
		n       = 40
		p       = 4
		batches = 5
	)
	families := []struct {
		name string
		q    *query.Query
	}{
		{"triangle", query.Triangle()},
		{"star3", query.Star(3)},
		{"chain3", query.Chain(3)},
	}
	for _, fam := range families {
		for _, kind := range []string{"matching", "zipf"} {
			t.Run(fam.name+"/"+kind, func(t *testing.T) {
				rng := rand.New(rand.NewPCG(0xd017a, uint64(len(fam.name)+len(kind))))
				var db0 *relation.Database
				if kind == "matching" {
					db0 = relation.MatchingDatabase(rng, fam.q, n)
				} else {
					db0 = zipfDatabase(rng, fam.q, n, 1.3)
				}
				sc := buildScenario(t, rng, fam.q, db0, batches)
				want := groundTruth(t, fam.q, sc.final)

				// Loopback, checked against ground truth after every batch.
				lb := runMaintainer(t, sc, p, Options{Seed: 42}, true)

				// TCP must be byte-identical to loopback: answers and the
				// full per-round communication record.
				tcp := runMaintainer(t, sc, p,
					Options{Seed: 42, Transport: dialDeltaPool(t, startDeltaPool(t, p))}, false)
				if !answersEqual(tcp.Answers(), lb.Answers()) {
					t.Fatalf("TCP answers diverge from loopback: %d vs %d tuples",
						len(tcp.Answers()), len(lb.Answers()))
				}
				if !reflect.DeepEqual(tcp.Stats().Rounds, lb.Stats().Rounds) {
					t.Fatalf("TCP round stats diverge from loopback:\n tcp %+v\nloop %+v",
						tcp.Stats().Rounds, lb.Stats().Rounds)
				}

				// Pipelined TCP: deferred scripts, same answers and stats.
				pipe := runMaintainer(t, sc, p,
					Options{Seed: 42, Pipeline: true, Transport: dialDeltaPool(t, startDeltaPool(t, p))}, false)
				if !answersEqual(pipe.Answers(), want) {
					t.Fatalf("pipelined TCP answers diverge from ground truth: %d vs %d tuples",
						len(pipe.Answers()), len(want))
				}
				if !reflect.DeepEqual(pipe.Stats().Rounds, lb.Stats().Rounds) {
					t.Fatalf("pipelined round stats diverge from sync loopback")
				}

				// Granularity invariance: the whole sequence as one batch.
				one := &maintScenario{
					q: fam.q, db0: sc.db0,
					effs:  []map[string]relation.Effect{dbEffect(sc.db0, sc.final)},
					dbs:   []*relation.Database{sc.final},
					final: sc.final,
				}
				big := runMaintainer(t, one, p, Options{Seed: 42}, true)
				if !answersEqual(big.Answers(), want) {
					t.Fatalf("single-batch answers diverge from %d-batch answers", batches)
				}
			})
		}
	}
}

// TestMaintainerReplicationBound pins the paper-level cost claim of
// incremental maintenance: a single appended tuple is routed to
// exactly its replication set — Fanout(atom) grid points — never
// rescattered as O(N).
func TestMaintainerReplicationBound(t *testing.T) {
	q := query.Triangle()
	const n, p = 32, 8
	db := relation.IdentityDatabase(q, n)
	m, err := NewMaintainer(q, db, p, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	fanout := m.Fanout("S1")
	if fanout <= 0 || fanout >= p {
		t.Fatalf("triangle atom fanout %d, want in (0,%d)", fanout, p)
	}
	next, eff, err := relation.ApplyDelta(db, relation.Delta{
		Appends: map[string][]relation.Tuple{"S1": {{3, 7}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.ApplyDelta(eff)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RoutedTuples != int64(fanout) {
		t.Errorf("single-tuple delta routed %d tuple receipts, want fanout %d", rep.RoutedTuples, fanout)
	}
	if rep.Bits <= 0 {
		t.Errorf("maintenance bits %d, want > 0", rep.Bits)
	}
	assertSameTuples(t, m.Answers(), groundTruth(t, q, next))
}

// TestMaintainerFaultInjection drives delta maintenance through a
// deterministic fault schedule at the delta phases: kills before and
// after the delta delivery and at the maintenance join trigger
// replace-and-replay with exact replacement counts, and the
// non-killing faults (delay-to-barrier, duplicate delivery) must not
// change anything at all.
func TestMaintainerFaultInjection(t *testing.T) {
	q := query.Triangle()
	const n, p = 30, 4
	cases := []struct {
		name   string
		faults []dist.Fault
		kills  int
	}{
		{"kill-before-delta", []dist.Fault{{Worker: 1, Op: dist.OpDelta, N: 0, Kind: dist.KillBefore}}, 1},
		{"kill-after-delta", []dist.Fault{{Worker: 2, Op: dist.OpDelta, N: 1, Kind: dist.KillAfter}}, 1},
		{"kill-at-maintenance-join", []dist.Fault{{Worker: 0, Op: dist.OpJoin, N: 1, Kind: dist.KillBefore}}, 1},
		{"delay-delta-to-barrier", []dist.Fault{{Worker: 3, Op: dist.OpDelta, N: 0, Kind: dist.DelayToBarrier}}, 0},
		{"duplicate-delta", []dist.Fault{{Worker: 0, Op: dist.OpDelta, N: 0, Kind: dist.DuplicateDelivery}}, 0},
		{"double-kill", []dist.Fault{
			{Worker: 1, Op: dist.OpDelta, N: 0, Kind: dist.KillBefore},
			{Worker: 2, Op: dist.OpJoin, N: 2, Kind: dist.KillAfter},
		}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(0xfa117, uint64(len(c.name))))
			db0 := relation.MatchingDatabase(rng, q, n)
			sc := buildScenario(t, rng, q, db0, 4)
			ft := dist.NewFaultTransport(dist.NewLoopback(p), c.faults...)
			m := runMaintainer(t, sc, p, Options{
				Seed:      9,
				Transport: ft,
				Recovery:  dist.RecoveryOptions{Enabled: true},
			}, false)
			want := groundTruth(t, q, sc.final)
			if !answersEqual(m.Answers(), want) {
				t.Fatalf("answers after faults diverge from ground truth: %d vs %d tuples",
					len(m.Answers()), len(want))
			}
			if got := ft.Kills(); got != c.kills {
				t.Errorf("fault schedule fired %d kills, want %d", got, c.kills)
			}
			if got := m.Replacements(); got != c.kills {
				t.Errorf("maintainer replaced %d workers, want exactly %d", got, c.kills)
			}
		})
	}
}

// TestMaintainerRejects covers the defensive surface: deltas naming
// unknown relations and self-join queries are refused.
func TestMaintainerRejects(t *testing.T) {
	q := query.Triangle()
	db := relation.IdentityDatabase(q, 10)
	m, err := NewMaintainer(q, db, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.ApplyDelta(map[string]relation.Effect{
		"Q": {Added: []relation.Tuple{{1, 2}}},
	}); err == nil {
		t.Error("delta for unknown relation accepted")
	}

	self := query.MustNew("self", query.Atom{Name: "R", Vars: []string{"x", "y"}},
		query.Atom{Name: "S", Vars: []string{"y", "z"}})
	self.Atoms[1].Name = "R" // bypass query.New's own self-join check
	if _, err := NewMaintainer(self, db, 4, Options{}); err == nil {
		t.Error("self-join maintainer accepted")
	}
}
