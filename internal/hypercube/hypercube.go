// Package hypercube implements the HyperCube (HC) algorithm of
// Section 3.1 of Beame, Koutris, Suciu (PODS 2013), the one-round
// upper bound of Theorem 1.1.
//
// Given a query q with fractional vertex cover v and τ = Σ v_i, each
// variable x_i receives a share exponent e_i = v_i/τ and a share
// p_i ≈ p^{e_i}; the p servers form a grid [p_1]×…×[p_k]. Independent
// hash functions h_i: [n] → [p_i] route every tuple of S_j to all grid
// points that agree with the tuple's hashed coordinates on vars(S_j);
// the tuple is replicated along the dimensions S_j does not mention.
// Every potential answer (a_1,…,a_k) is then seen, in one round, by
// the server (h_1(a_1),…,h_k(a_k)), which outputs it via a local join.
//
// The package also implements the answer-sampling variant of
// Proposition 3.11: when ε is below the query's space exponent, the
// full grid would need more than p servers, so p random grid points
// are materialized and only a Θ(p^{1−(1−ε)τ*}) fraction of the answers
// is found — exactly the fraction the Theorem 3.3 lower bound allows.
package hypercube

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/cover"
	"repro/internal/dist"
	"repro/internal/localjoin"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/trace"
)

// Shares fixes the hypercube geometry: one integer share per variable.
type Shares struct {
	// Vars lists the query variables, in query.Vars() order.
	Vars []string
	// Dims holds the integer share p_i of each variable.
	Dims []int
}

// GridSize returns ∏ p_i, the number of grid points.
func (s *Shares) GridSize() int {
	size := 1
	for _, d := range s.Dims {
		size *= d
	}
	return size
}

// ServerOf maps grid coordinates to a point id via mixed-radix
// encoding.
func (s *Shares) ServerOf(coords []int) int {
	id := 0
	for i, c := range coords {
		id = id*s.Dims[i] + c
	}
	return id
}

// CoordsOf inverts ServerOf.
func (s *Shares) CoordsOf(point int) []int {
	coords := make([]int, len(s.Dims))
	for i := len(s.Dims) - 1; i >= 0; i-- {
		coords[i] = point % s.Dims[i]
		point /= s.Dims[i]
	}
	return coords
}

// DimOf returns the grid dimension of variable v, or -1.
func (s *Shares) DimOf(v string) int {
	for i, sv := range s.Vars {
		if sv == v {
			return i
		}
	}
	return -1
}

// String renders the share vector.
func (s *Shares) String() string {
	out := "["
	for i, v := range s.Vars {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", v, s.Dims[i])
	}
	return out + "]"
}

// RoundingMode selects how real-valued shares p^{e_i} become integers.
type RoundingMode int

// Share rounding strategies (the ablation in DESIGN.md §5).
const (
	// GreedyRounding floors the real shares and then greedily raises
	// the dimension with the largest deficit while the product stays
	// within p. This is the default.
	GreedyRounding RoundingMode = iota
	// FloorRounding floors the real shares and stops — the naive
	// baseline; it can leave much of the budget unused.
	FloorRounding
)

// ComputeShares turns share exponents into integer shares for p
// servers. exps must be non-negative; they are normally e_i = v_i/τ*
// and sum to 1, but callers may pass any exponent vector (the sampled
// variant of Prop 3.11 passes (1−ε)·v_i whose product target exceeds
// p — the grid is then larger than p, which the caller handles).
//
// budget is the grid-size budget (usually p). The greedy mode
// guarantees 1 ≤ ∏ p_i ≤ budget when Σ exps ≤ 1; when Σ exps > 1 the
// product targets budget^{Σ exps} instead.
func ComputeShares(vars []string, exps []float64, budget int, mode RoundingMode) (*Shares, error) {
	if len(vars) != len(exps) {
		return nil, fmt.Errorf("hypercube: %d vars but %d exponents", len(vars), len(exps))
	}
	if budget < 1 {
		return nil, fmt.Errorf("hypercube: budget %d < 1", budget)
	}
	sum := 0.0
	for _, e := range exps {
		if e < 0 {
			return nil, fmt.Errorf("hypercube: negative exponent %v", e)
		}
		sum += e
	}
	target := make([]float64, len(exps))
	for i, e := range exps {
		target[i] = math.Pow(float64(budget), e)
	}
	// The grid-size budget grows with the exponent sum (Prop 3.11 uses
	// Σ exps = (1−ε)τ* > 1).
	gridBudget := math.Pow(float64(budget), math.Max(1, sum))
	// Guard against float error pushing the budget below the target
	// product.
	gridBudget *= 1 + 1e-9

	dims := make([]int, len(exps))
	prod := 1.0
	for i, t := range target {
		dims[i] = int(t)
		if dims[i] < 1 {
			dims[i] = 1
		}
		prod *= float64(dims[i])
	}
	if mode == GreedyRounding {
		for {
			best := -1
			bestDeficit := 1.0
			for i := range dims {
				if exps[i] == 0 {
					continue
				}
				next := prod / float64(dims[i]) * float64(dims[i]+1)
				if next > gridBudget {
					continue
				}
				deficit := float64(dims[i]) / target[i] // < 1 means under target
				if deficit < bestDeficit {
					bestDeficit = deficit
					best = i
				}
			}
			if best < 0 || bestDeficit >= 1 {
				break
			}
			prod = prod / float64(dims[best]) * float64(dims[best]+1)
			dims[best]++
		}
	}
	return &Shares{Vars: append([]string(nil), vars...), Dims: dims}, nil
}

// SharesForQuery computes the canonical HC shares for q on p servers:
// e_i = v_i/τ* from the optimal fractional vertex cover.
func SharesForQuery(q *query.Query, p int, mode RoundingMode) (*Shares, error) {
	r, err := cover.Solve(q)
	if err != nil {
		return nil, err
	}
	return ComputeShares(q.Vars(), r.ShareExponentFloats(), p, mode)
}

// hash64 is a splitmix64-style mixer: an independent-looking hash per
// (value, dimension-seed) pair.
func hash64(x, seed uint64) uint64 {
	z := x + seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hasher maps domain values to grid coordinates, one independent hash
// per dimension.
type Hasher struct {
	seeds []uint64
	dims  []int
}

// NewHasher builds per-dimension hash functions from a master seed.
func NewHasher(s *Shares, seed uint64) *Hasher {
	h := &Hasher{dims: s.Dims, seeds: make([]uint64, len(s.Dims))}
	for i := range h.seeds {
		h.seeds[i] = hash64(uint64(i)+1, seed)
	}
	return h
}

// Coord returns h_i(value) ∈ [0, p_i).
func (h *Hasher) Coord(dim, value int) int {
	if h.dims[dim] == 1 {
		return 0
	}
	return int(hash64(uint64(value), h.seeds[dim]) % uint64(h.dims[dim]))
}

// Destinations lists the grid points that must receive a tuple of
// atom: coordinates of the atom's variables are fixed by the hashes,
// all other dimensions range over their full shares. It is a thin
// allocating wrapper around NewGridPartitioner; shuffle hot paths
// should build the partitioner once per atom and reuse a buffer.
func Destinations(s *Shares, h *Hasher, atom query.Atom, t relation.Tuple) []int {
	out := NewGridPartitioner(s, h, atom).Route(0, t, nil)
	if len(out) == 0 {
		return nil
	}
	return out
}

// GridPartitioner routes the tuples of one atom onto the hypercube
// grid — the exchange.Partitioner form of Destinations. The variable →
// dimension bindings are resolved once at construction, and grid-point
// enumeration is iterative (mixed-radix expansion over the free
// dimensions into the caller's buffer) instead of the historic
// recursive closure, so routing a tuple allocates nothing once the
// buffer has capacity.
type GridPartitioner struct {
	dims    []int
	strides []int // stride[d] = ∏_{d' > d} dims[d']
	hasher  *Hasher
	binds   []gridBind
	free    []int       // free dims with dims[d] > 1, in dimension order
	fanout  int         // ∏ dims[free]
	sample  map[int]int // optional grid point → server projection
}

// gridBind fixes grid dimension dim from tuple position pos.
type gridBind struct{ pos, dim int }

// NewGridPartitioner precomputes the routing state for one atom.
func NewGridPartitioner(s *Shares, h *Hasher, atom query.Atom) *GridPartitioner {
	k := len(s.Dims)
	g := &GridPartitioner{dims: s.Dims, hasher: h, strides: make([]int, k), fanout: 1}
	stride := 1
	for d := k - 1; d >= 0; d-- {
		g.strides[d] = stride
		stride *= s.Dims[d]
	}
	bound := make([]bool, k)
	for pos, v := range atom.Vars {
		if d := s.DimOf(v); d >= 0 {
			g.binds = append(g.binds, gridBind{pos: pos, dim: d})
			bound[d] = true
		}
	}
	for d := 0; d < k; d++ {
		if !bound[d] && s.Dims[d] > 1 {
			g.free = append(g.free, d)
			g.fanout *= s.Dims[d]
		}
	}
	return g
}

// WithSample restricts routing to the materialized grid points of the
// Proposition 3.11 sampled algorithm: sample maps grid point → server,
// and tuples routed to unmaterialized points are dropped.
func (g *GridPartitioner) WithSample(sample map[int]int) *GridPartitioner {
	g.sample = sample
	return g
}

// Fanout returns the number of grid points a tuple replicates to
// (before sampling).
func (g *GridPartitioner) Fanout() int { return g.fanout }

// Route implements exchange.Partitioner. It is stateless and safe for
// concurrent senders.
func (g *GridPartitioner) Route(_ int, t relation.Tuple, buf []int) []int {
	const maxStackDims = 16
	var setArr [maxStackDims]bool
	var coordArr [maxStackDims]int
	set, coord := setArr[:], coordArr[:]
	if len(g.dims) > maxStackDims {
		set = make([]bool, len(g.dims))
		coord = make([]int, len(g.dims))
	}
	base := 0
	for _, b := range g.binds {
		c := g.hasher.Coord(b.dim, t[b.pos])
		if set[b.dim] {
			if coord[b.dim] != c {
				// A repeated variable hashes consistently (same value,
				// same hash); conflicting values mean the tuple can
				// never participate in an answer.
				return buf
			}
			continue
		}
		set[b.dim] = true
		coord[b.dim] = c
		base += c * g.strides[b.dim]
	}
	start := len(buf)
	buf = append(buf, base)
	// Expand the free dimensions innermost-first, so the result order
	// matches the historic recursive enumeration (first free dimension
	// outermost).
	for i := len(g.free) - 1; i >= 0; i-- {
		d := g.free[i]
		m := len(buf)
		for c := 1; c < g.dims[d]; c++ {
			off := c * g.strides[d]
			for j := start; j < m; j++ {
				buf = append(buf, buf[j]+off)
			}
		}
	}
	if g.sample == nil {
		return buf
	}
	// Project through the sample, compacting in place.
	kept := start
	for _, gp := range buf[start:] {
		if srv, ok := g.sample[gp]; ok {
			buf[kept] = srv
			kept++
		}
	}
	return buf[:kept]
}

// Options configures a HyperCube run.
type Options struct {
	// Epsilon is the space exponent of the simulated MPC(ε) model; it
	// determines the receive cap. Defaults should be the query's space
	// exponent 1−1/τ*.
	Epsilon float64
	// CapConstant is c in the budget c·N/p^{1−ε}; ≤ 0 disables
	// enforcement.
	CapConstant float64
	// Seed drives hash-function choice (and sampling in RunSampled).
	Seed uint64
	// Rounding selects the integer share strategy.
	Rounding RoundingMode
	// Strategy selects the per-worker local join algorithm. The zero
	// value is localjoin.Default, i.e. the worst-case-optimal multiway
	// join — the right evaluator for the cyclic residual queries HC
	// workers see.
	Strategy localjoin.Strategy
	// Transport selects the worker pool the round runs on: nil is the
	// in-process loopback (the historical simulation), a dist.TCP
	// value executes against remote mpcworker processes. The pool size
	// must equal p.
	Transport dist.Transport
	// Context bounds a distributed execution (cancellation, deadline);
	// nil selects context.Background().
	Context context.Context
	// Recovery is the self-healing policy: with Enabled set, a worker
	// failure mid-round triggers replacement and replay instead of
	// aborting. The transport must support it (loopback and TCP do).
	Recovery dist.RecoveryOptions
	// Pipeline defers scatter/barrier/join traffic to the gather fence
	// so workers overlap their local joins with later deliveries (see
	// dist.Cluster.EnablePipelining). Off by default; answers and round
	// statistics are identical either way.
	Pipeline bool
	// Trace, when non-nil, records per-round per-worker spans of the
	// execution (see dist.Cluster.EnableTracing); nil disables tracing.
	Trace *trace.Trace
	// Aggregate, when non-nil, folds the answer gather into grouped
	// aggregates (the spec's column indices refer to the query's Vars()
	// order): Result.Answers then holds one sorted row per group. The
	// shuffle, the local joins, and the round statistics are unchanged
	// — the fold rides the final k-way merge.
	Aggregate *relation.GroupSpec
}

// Result reports a HyperCube execution.
type Result struct {
	// Answers is the union of the tuples output by all servers.
	Answers []relation.Tuple
	// Stats is the engine's communication record.
	Stats *mpc.Stats
	// Replacements counts the workers replaced mid-query by the
	// recovery policy (0 when recovery is off or nothing failed).
	Replacements int
	// Shares is the grid geometry used.
	Shares *Shares
	// ReceiveCap is the enforced per-worker budget in bits (0 = off).
	ReceiveCap int64
	// CapExceeded reports whether some worker exceeded the budget.
	CapExceeded bool
	// GridPoints is the number of materialized grid points (= servers
	// used; less than p when shares round down, p in RunSampled).
	GridPoints int
}

// Run executes the one-round HC algorithm for q over db on p servers
// and returns all answers found (on matching databases this is the
// complete answer when ε ≥ 1−1/τ*).
func Run(q *query.Query, db *relation.Database, p int, opts Options) (*Result, error) {
	shares, err := SharesForQuery(q, p, opts.Rounding)
	if err != nil {
		return nil, err
	}
	return runWithShares(q, db, p, shares, opts, nil)
}

// RunWithShares is Run with caller-provided shares (used by tests and
// by the multiround executor, which computes shares per plan operator).
func RunWithShares(q *query.Query, db *relation.Database, p int, shares *Shares, opts Options) (*Result, error) {
	return runWithShares(q, db, p, shares, opts, nil)
}

// RunSampled executes the Proposition 3.11 algorithm: shares use the
// exponents (1−ε)·v_i, producing a virtual grid of ~p^{(1−ε)τ*} > p
// points, of which p are chosen uniformly at random and assigned to
// the servers; tuples routed to unmaterialized points are dropped.
func RunSampled(q *query.Query, db *relation.Database, p int, opts Options) (*Result, error) {
	r, err := cover.Solve(q)
	if err != nil {
		return nil, err
	}
	exps := make([]float64, q.NumVars())
	for i, v := range r.VertexCover {
		f, _ := v.Float64()
		exps[i] = (1 - opts.Epsilon) * f
	}
	shares, err := ComputeShares(q.Vars(), exps, p, opts.Rounding)
	if err != nil {
		return nil, err
	}
	grid := shares.GridSize()
	rng := rand.New(rand.NewPCG(opts.Seed, 0x5eed))
	var chosen map[int]int // grid point → server
	if grid <= p {
		chosen = make(map[int]int, grid)
		for g := 0; g < grid; g++ {
			chosen[g] = g
		}
	} else {
		chosen = make(map[int]int, p)
		perm := rng.Perm(grid)
		for srv := 0; srv < p; srv++ {
			chosen[perm[srv]] = srv
		}
	}
	return runWithShares(q, db, p, shares, opts, chosen)
}

// answersView is the reserved store name per-worker HC outputs land
// under before the gather ("!" keeps it out of the query.Parse
// identifier space, so it cannot collide with a relation name).
const answersView = "hc!answers"

// runWithShares is the shared core. sample, when non-nil, maps
// materialized grid points to servers; nil materializes the whole grid
// (which must then fit in p).
func runWithShares(q *query.Query, db *relation.Database, p int, shares *Shares, opts Options, sample map[int]int) (*Result, error) {
	if sample == nil && shares.GridSize() > p {
		return nil, fmt.Errorf("hypercube: grid size %d exceeds %d servers", shares.GridSize(), p)
	}
	if opts.Aggregate != nil {
		if err := opts.Aggregate.Validate(q.NumVars()); err != nil {
			return nil, err
		}
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	tr := opts.Transport
	if tr == nil {
		tr = dist.NewLoopback(p)
	}
	cluster, err := dist.NewCluster(mpc.Config{
		Workers:     p,
		Epsilon:     opts.Epsilon,
		InputBits:   db.InputBits(),
		CapConstant: opts.CapConstant,
		DomainN:     db.N,
	}, tr)
	if err != nil {
		return nil, err
	}
	if opts.Recovery.Enabled {
		if err := cluster.EnableRecovery(opts.Recovery); err != nil {
			return nil, err
		}
	}
	if opts.Pipeline {
		cluster.EnablePipelining()
	}
	if opts.Trace != nil {
		cluster.EnableTracing(opts.Trace)
	}
	hasher := NewHasher(shares, opts.Seed)

	// Round 1: every input server scatters its relation along the grid
	// through the columnar exchange, one grid partitioner per atom.
	cluster.BeginRound()
	for _, a := range q.Atoms {
		rel, ok := db.Relation(a.Name)
		if !ok {
			return nil, fmt.Errorf("hypercube: database missing relation %s", a.Name)
		}
		part := NewGridPartitioner(shares, hasher, a).WithSample(sample)
		if err := cluster.Scatter(ctx, rel, a.Name, part); err != nil {
			return nil, err
		}
	}
	capErr := cluster.EndRound(ctx)
	if capErr != nil && !errors.Is(capErr, mpc.ErrCapExceeded) {
		return nil, capErr
	}

	// Local computation (free in the MPC cost model): each worker joins
	// what it received, and the sorted per-worker outputs k-way merge
	// in the gather.
	if err := cluster.Join(ctx, q, nil, answersView, opts.Strategy); err != nil {
		return nil, err
	}
	var merged []relation.Tuple
	if opts.Aggregate != nil {
		merged, err = cluster.GatherAggregate(ctx, answersView, *opts.Aggregate)
	} else {
		merged, err = cluster.Gather(ctx, answersView)
	}
	if err != nil {
		return nil, err
	}

	grid := shares.GridSize()
	if sample != nil && grid > p {
		grid = p
	}
	return &Result{
		Answers:      merged,
		Stats:        cluster.Stats(),
		Replacements: cluster.Replacements(),
		Shares:       shares,
		ReceiveCap:   cluster.Config().ReceiveCap(),
		CapExceeded:  capErr != nil,
		GridPoints:   grid,
	}, nil
}

// TheoreticalLoad returns the paper's per-server tuple bound for one
// relation under HC: n / p^{1/τ*} (proof of Proposition 3.2, with
// ε = 1−1/τ*).
func TheoreticalLoad(n, p int, tau float64) float64 {
	return float64(n) / math.Pow(float64(p), 1/tau)
}
