package hypercube

import (
	"fmt"
	"math"

	"repro/internal/query"
)

// This file implements size-aware share optimization in the style of
// Afrati & Ullman ("Optimizing joins in a map-reduce environment",
// EDBT 2010), which the paper credits as a source of the share idea
// (Section 3.1). The vertex-cover shares of SharesForQuery are optimal
// for matching databases, where all relations have the same
// cardinality n; when cardinalities differ, the communication-optimal
// shares solve
//
//	minimize   Σ_j |S_j| · Π_{i: x_i ∉ vars(S_j)} p_i
//	subject to Π_i p_i = p,  p_i ≥ 1 integer,
//
// i.e. each tuple of S_j is replicated along the dimensions S_j does
// not mention, and all p servers are used (with Π ≤ p the cost-only
// objective degenerates to the all-ones vector — a single working
// server). For the paper's constant-size queries the integer program
// is solved exactly by bounded enumeration; when p factorizes poorly
// (e.g. prime p) the equality constraint forces asymmetric vectors,
// which is inherent, not a solver artifact.

// CommunicationCost returns the total number of tuple copies the
// HyperCube shuffle sends for the given shares and relation sizes
// (sizes keyed by relation name).
func CommunicationCost(q *query.Query, s *Shares, sizes map[string]int) (int64, error) {
	var total int64
	for _, a := range q.Atoms {
		size, ok := sizes[a.Name]
		if !ok {
			return 0, fmt.Errorf("hypercube: no size for relation %s", a.Name)
		}
		repl := int64(1)
		mentioned := make(map[int]bool, len(a.Vars))
		for _, v := range a.Vars {
			d := s.DimOf(v)
			if d >= 0 {
				mentioned[d] = true
			}
		}
		for d, dim := range s.Dims {
			if !mentioned[d] {
				repl *= int64(dim)
			}
		}
		total += int64(size) * repl
	}
	return total, nil
}

// enumLimit bounds the number of share vectors OptimalSharesForSizes
// examines; beyond it the query/p combination is rejected rather than
// silently truncated.
const enumLimit = 5_000_000

// OptimalSharesForSizes finds integer shares minimizing the total
// communication for the given relation cardinalities by exhaustive
// enumeration over share vectors with product exactly p. Ties are
// broken toward the lexicographically smallest vector, so results are
// deterministic.
func OptimalSharesForSizes(q *query.Query, sizes map[string]int, p int) (*Shares, error) {
	if p < 1 {
		return nil, fmt.Errorf("hypercube: p = %d", p)
	}
	k := q.NumVars()
	if k > 10 {
		return nil, fmt.Errorf("hypercube: %d variables is too many for exhaustive share search", k)
	}
	for _, a := range q.Atoms {
		if _, ok := sizes[a.Name]; !ok {
			return nil, fmt.Errorf("hypercube: no size for relation %s", a.Name)
		}
	}
	// (1,…,1,p) always satisfies the equality constraint.
	best := &Shares{Vars: append([]string(nil), q.Vars()...), Dims: make([]int, k)}
	for i := range best.Dims {
		best.Dims[i] = 1
	}
	best.Dims[k-1] = p
	bestCost, err := CommunicationCost(q, best, sizes)
	if err != nil {
		return nil, err
	}
	cur := &Shares{Vars: best.Vars, Dims: make([]int, k)}
	examined := 0
	var rec func(dim, product int) error
	rec = func(dim, product int) error {
		if examined > enumLimit {
			return fmt.Errorf("hypercube: share search space too large (> %d vectors)", enumLimit)
		}
		if dim == k-1 {
			// The last dimension is forced: it must bring the product
			// to exactly p.
			if p%product != 0 {
				return nil
			}
			examined++
			cur.Dims[dim] = p / product
			cost, err := CommunicationCost(q, cur, sizes)
			if err != nil {
				return err
			}
			if cost < bestCost {
				bestCost = cost
				copy(best.Dims, cur.Dims)
			}
			return nil
		}
		for d := 1; product*d <= p; d++ {
			if p%(product*d) != 0 {
				continue // d must divide into a completion of p
			}
			cur.Dims[dim] = d
			if err := rec(dim+1, product*d); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, 1); err != nil {
		return nil, err
	}
	out := &Shares{Vars: best.Vars, Dims: append([]int(nil), best.Dims...)}
	return out, nil
}

// RealOptimalShares returns the continuous (Lagrangian) optimum for a
// two-relation cartesian product R(x) × S(y). The cost
// |R|·d_y + |S|·d_x under d_x·d_y = p is minimized at
// d_x = √(p·|R|/|S|), d_y = √(p·|S|/|R|): the smaller relation is
// replicated more (its opposite dimension grows). Exposed for tests
// and documentation; general queries use OptimalSharesForSizes.
func RealOptimalShares(sizeR, sizeS int, p int) (dx, dy float64) {
	dx = math.Sqrt(float64(p) * float64(sizeR) / float64(sizeS))
	dy = float64(p) / dx
	return dx, dy
}
