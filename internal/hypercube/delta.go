package hypercube

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/relation"
)

// This file is the incremental view maintenance of the HC engine.
// A cold HC run distributes every relation along the grid once and
// answers one query; a Maintainer keeps that distribution — and the
// materialized answer — alive across delta batches. A delta tuple of
// atom S_j routes through the same GridPartitioner as the base
// scatter, so it reaches exactly the grid points that replicate it:
// maintenance communication is the replication factor of the tuple,
// not a rescatter of the relation. Insertions are then answered by a
// delta join per changed atom (the changed atom bound to its Δ view,
// every other atom to its full post-update store), and deletions by a
// coordinator-side anti-join: a conjunctive query without projection
// determines each answer's witness in atom S_j uniquely (it is the
// answer's projection onto vars(S_j)), so an answer dies exactly when
// one of its projections was retracted.

// Report describes what one maintenance batch cost and changed.
type Report struct {
	// Bits is the communication the batch cost (delta routing only;
	// the delta join's gather is answer traffic, counted separately by
	// the engine's stats like any gather).
	Bits int64
	// RoutedTuples counts delta tuple receipts across workers — for a
	// single-tuple batch this is the tuple's replication factor.
	RoutedTuples int64
	// AnswersAdded and AnswersRemoved count the net change to the
	// materialized answer.
	AnswersAdded   int
	AnswersRemoved int
	// Fresh lists the genuinely new answers of the batch — the
	// AnswersAdded tuples, sorted. It is the Δ a semi-naive fixpoint
	// loop projects and feeds into its next iteration. Callers must
	// not mutate the tuples (they are shared with Answers()).
	Fresh []relation.Tuple
	// Replacements counts workers replaced by recovery during the
	// batch.
	Replacements int
	// CapExceeded reports whether a worker exceeded the per-round
	// receive budget during the batch.
	CapExceeded bool
}

// Maintainer holds a continuously-maintained HC execution: the grid
// distribution of every atom's relation on a live cluster, plus the
// materialized answer. It is single-caller, like the Cluster it
// drives.
type Maintainer struct {
	q       *query.Query
	shares  *Shares
	hasher  *Hasher
	cluster *dist.Cluster
	ctx     context.Context
	// parts holds the per-atom grid partitioner — the identical
	// routing the base scatter used, reused for every delta.
	parts map[string]*GridPartitioner
	// proj maps atom name → positions of the atom's variables in the
	// answer tuple, the projection behind the deletion anti-join.
	proj map[string][]int
	// arity maps atom name → relation arity.
	arity map[string]int
	// answers is the sorted, deduplicated materialized answer.
	answers []relation.Tuple
	// seq numbers maintenance batches; Δ view names embed it so no
	// two batches share worker-side view state.
	seq int
	// capSeen latches whether any round exceeded the receive budget.
	capSeen bool
}

// NewMaintainer runs the cold HC distribution of q over db on p
// workers and returns a Maintainer holding the cluster open for delta
// batches. Self-joins are rejected: maintenance binds stores by atom
// name, which a repeated atom name would alias. The caller must Close
// the maintainer to release the cluster.
func NewMaintainer(q *query.Query, db *relation.Database, p int, opts Options) (*Maintainer, error) {
	seen := make(map[string]bool, len(q.Atoms))
	for _, a := range q.Atoms {
		if seen[a.Name] {
			return nil, fmt.Errorf("hypercube: maintenance of self-join atom %s not supported", a.Name)
		}
		seen[a.Name] = true
	}
	shares, err := SharesForQuery(q, p, opts.Rounding)
	if err != nil {
		return nil, err
	}
	if shares.GridSize() > p {
		return nil, fmt.Errorf("hypercube: grid size %d exceeds %d servers", shares.GridSize(), p)
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	tr := opts.Transport
	if tr == nil {
		tr = dist.NewLoopback(p)
	}
	cluster, err := dist.NewCluster(mpc.Config{
		Workers:     p,
		Epsilon:     opts.Epsilon,
		InputBits:   db.InputBits(),
		CapConstant: opts.CapConstant,
		DomainN:     db.N,
	}, tr)
	if err != nil {
		return nil, err
	}
	if opts.Recovery.Enabled {
		if err := cluster.EnableRecovery(opts.Recovery); err != nil {
			return nil, err
		}
	}
	if opts.Pipeline {
		cluster.EnablePipelining()
	}
	m := &Maintainer{
		q:       q,
		shares:  shares,
		hasher:  NewHasher(shares, opts.Seed),
		cluster: cluster,
		ctx:     ctx,
		parts:   make(map[string]*GridPartitioner, len(q.Atoms)),
		proj:    make(map[string][]int, len(q.Atoms)),
		arity:   make(map[string]int, len(q.Atoms)),
	}
	varPos := make(map[string]int, q.NumVars())
	for i, v := range q.Vars() {
		varPos[v] = i
	}

	// Cold distribution: the ordinary one-round HC scatter and join,
	// with the cluster kept open afterwards.
	cluster.BeginRound()
	for _, a := range q.Atoms {
		rel, ok := db.Relation(a.Name)
		if !ok {
			cluster.Close()
			return nil, fmt.Errorf("hypercube: database missing relation %s", a.Name)
		}
		m.arity[a.Name] = rel.Arity()
		pos := make([]int, len(a.Vars))
		for i, v := range a.Vars {
			pos[i] = varPos[v]
		}
		m.proj[a.Name] = pos
		part := NewGridPartitioner(shares, m.hasher, a)
		m.parts[a.Name] = part
		if err := cluster.Scatter(ctx, rel, a.Name, part); err != nil {
			cluster.Close()
			return nil, err
		}
	}
	if err := cluster.EndRound(ctx); err != nil {
		if !errors.Is(err, mpc.ErrCapExceeded) {
			cluster.Close()
			return nil, err
		}
		m.capSeen = true
	}
	if err := cluster.Join(ctx, q, nil, answersView, opts.Strategy); err != nil {
		cluster.Close()
		return nil, err
	}
	answers, err := cluster.Gather(ctx, answersView)
	if err != nil {
		cluster.Close()
		return nil, err
	}
	m.answers = answers
	return m, nil
}

// Answers returns the materialized answer: sorted, deduplicated, and
// current as of the last ApplyDelta. The slice is shared; callers must
// not mutate it.
func (m *Maintainer) Answers() []relation.Tuple { return m.answers }

// Stats returns the cluster's communication record, cold distribution
// and every maintenance batch included.
func (m *Maintainer) Stats() *mpc.Stats { return m.cluster.Stats() }

// Replacements returns the total workers replaced by recovery across
// the maintainer's lifetime.
func (m *Maintainer) Replacements() int { return m.cluster.Replacements() }

// Fanout returns the replication factor of the named atom — how many
// grid points each of its tuples is sent to — or 0 for an unknown
// atom. It is the per-tuple maintenance communication bound.
func (m *Maintainer) Fanout(atom string) int {
	part := m.parts[atom]
	if part == nil {
		return 0
	}
	return part.Fanout()
}

// Close releases the cluster.
func (m *Maintainer) Close() error { return m.cluster.Close() }

// deltaView names the Δ-relation view of one atom in one batch.
func deltaView(atom string, seq int) string {
	return fmt.Sprintf("delta!%s!%d", atom, seq)
}

// ApplyDelta maintains the distribution and the materialized answer
// under one delta batch, given as the set-level effect per relation
// (relation.ApplyDelta's output shape). Unknown relation names are
// rejected; relations of the query not named in changes are
// untouched. The returned report carries the batch's maintenance
// cost.
func (m *Maintainer) ApplyDelta(changes map[string]relation.Effect) (*Report, error) {
	for name := range changes {
		if m.parts[name] == nil {
			return nil, fmt.Errorf("hypercube: delta for relation %s not in query", name)
		}
	}
	m.seq++
	stats := m.cluster.Stats()
	statsFrom := len(stats.Rounds)

	// Route the delta along the grid: retractions first, then
	// extensions, so a worker never resurrects an old occurrence by
	// clearing a tombstone the same batch set (set-level effects make
	// Added and Removed disjoint, but ordering keeps the invariant
	// locally checkable). Atom order follows the query, as the cold
	// scatter does.
	m.cluster.BeginRound()
	changed := false
	for _, a := range m.q.Atoms {
		eff, ok := changes[a.Name]
		if !ok {
			continue
		}
		if len(eff.Removed) > 0 {
			if err := m.cluster.ScatterDelta(m.ctx, eff.Removed, m.arity[a.Name], a.Name, "", true, m.parts[a.Name]); err != nil {
				return nil, err
			}
		}
		if len(eff.Added) > 0 {
			changed = true
			if err := m.cluster.ScatterDelta(m.ctx, eff.Added, m.arity[a.Name], a.Name, deltaView(a.Name, m.seq), false, m.parts[a.Name]); err != nil {
				return nil, err
			}
		}
	}
	if err := m.cluster.EndRound(m.ctx); err != nil {
		if !errors.Is(err, mpc.ErrCapExceeded) {
			return nil, err
		}
		m.capSeen = true
	}

	// Deletion, coordinator-side: an answer dies exactly when its
	// projection onto some atom was retracted.
	removedSets := make(map[string]*relation.TupleSet, len(changes))
	for name, eff := range changes {
		if len(eff.Removed) == 0 {
			continue
		}
		set := relation.NewTupleSet(m.arity[name], len(eff.Removed))
		for _, t := range eff.Removed {
			set.Add(t)
		}
		removedSets[name] = set
	}
	removed := 0
	if len(removedSets) > 0 {
		witness := make(relation.Tuple, 0, 8)
		live := m.answers[:0]
		for _, ans := range m.answers {
			dead := false
			for name, set := range removedSets {
				witness = witness[:0]
				for _, p := range m.proj[name] {
					witness = append(witness, ans[p])
				}
				if set.Contains(witness) {
					dead = true
					break
				}
			}
			if dead {
				removed++
			} else {
				live = append(live, ans)
			}
		}
		m.answers = live
	}

	// Insertion: one delta join per extended atom — the atom bound to
	// its Δ view, every other atom to its full post-update store — all
	// terms unioned under one gather view. Under set semantics the
	// union of these terms is exactly the new answers: any answer
	// using at least one added tuple appears in the term of one of the
	// atoms it was added to, and stores already exclude retracted
	// tuples, so no term resurrects a dead answer.
	var freshNew []relation.Tuple
	if changed {
		gatherView := fmt.Sprintf("hc!delta!%d", m.seq)
		for _, a := range m.q.Atoms {
			eff, ok := changes[a.Name]
			if !ok || len(eff.Added) == 0 {
				continue
			}
			bindings := map[string]string{a.Name: deltaView(a.Name, m.seq)}
			if err := m.cluster.Join(m.ctx, m.q, bindings, gatherView, 0); err != nil {
				return nil, err
			}
		}
		fresh, err := m.cluster.Gather(m.ctx, gatherView)
		if err != nil {
			return nil, err
		}
		m.answers, freshNew = mergeSortedAnswers(m.answers, fresh)
	}

	rep := &Report{
		AnswersAdded:   len(freshNew),
		AnswersRemoved: removed,
		Fresh:          freshNew,
		Replacements:   m.cluster.Replacements(),
		CapExceeded:    m.capSeen,
	}
	for _, rs := range stats.Rounds[statsFrom:] {
		rep.Bits += rs.TotalBits
		rep.RoutedTuples += rs.TotalTuples
	}
	return rep, nil
}

// mergeSortedAnswers merges two sorted deduplicated tuple slices and
// returns the union plus the tuples of fresh that were genuinely new
// (absent from base), themselves sorted.
func mergeSortedAnswers(base, fresh []relation.Tuple) (merged, added []relation.Tuple) {
	if len(fresh) == 0 {
		return base, nil
	}
	out := make([]relation.Tuple, 0, len(base)+len(fresh))
	i, j := 0, 0
	for i < len(base) && j < len(fresh) {
		switch {
		case base[i].Less(fresh[j]):
			out = append(out, base[i])
			i++
		case fresh[j].Less(base[i]):
			out = append(out, fresh[j])
			added = append(added, fresh[j])
			j++
		default:
			out = append(out, base[i])
			i++
			j++
		}
	}
	out = append(out, base[i:]...)
	for ; j < len(fresh); j++ {
		out = append(out, fresh[j])
		added = append(added, fresh[j])
	}
	if !sort.SliceIsSorted(out, func(a, b int) bool { return out[a].Less(out[b]) }) {
		// Defensive: gathered runs are sorted by construction, so this
		// cannot fire; sorting keeps the invariant if it ever does.
		sort.Slice(out, func(a, b int) bool { return out[a].Less(out[b]) })
	}
	return out, added
}
