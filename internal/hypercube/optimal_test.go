package hypercube

import (
	"math"
	"testing"

	"repro/internal/query"
)

func TestCommunicationCost(t *testing.T) {
	q := query.Triangle()
	s := &Shares{Vars: q.Vars(), Dims: []int{4, 4, 4}}
	sizes := map[string]int{"S1": 100, "S2": 100, "S3": 100}
	// Each binary atom misses one dimension of share 4 → replication 4.
	cost, err := CommunicationCost(q, s, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 3*100*4 {
		t.Errorf("cost = %d, want 1200", cost)
	}
	if _, err := CommunicationCost(q, s, map[string]int{}); err == nil {
		t.Error("want error for missing sizes")
	}
}

func TestOptimalSharesUniformMatchesCover(t *testing.T) {
	// With equal sizes, the exhaustive optimum's cost must not exceed
	// the vertex-cover shares' cost (it is the optimum, after all).
	q := query.Triangle()
	sizes := map[string]int{"S1": 1000, "S2": 1000, "S3": 1000}
	p := 64
	opt, err := OptimalSharesForSizes(q, sizes, p)
	if err != nil {
		t.Fatal(err)
	}
	coverShares, err := SharesForQuery(q, p, GreedyRounding)
	if err != nil {
		t.Fatal(err)
	}
	optCost, err := CommunicationCost(q, opt, sizes)
	if err != nil {
		t.Fatal(err)
	}
	coverCost, err := CommunicationCost(q, coverShares, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if optCost > coverCost {
		t.Errorf("exhaustive optimum %d worse than cover shares %d", optCost, coverCost)
	}
	// For C3 at p=64 the symmetric 4×4×4 is optimal: cost 3·1000·4.
	if optCost != 12000 {
		t.Errorf("optimal C3 cost = %d, want 12000", optCost)
	}
}

func TestOptimalSharesSkewedSizes(t *testing.T) {
	// Cartesian product with |R| = 100 ≪ |S| = 10000: the optimum
	// replicates the small relation more (large d_y) and keeps the big
	// one nearly unreplicated, beating the symmetric √p × √p split.
	q := query.CartesianPair()
	sizes := map[string]int{"R": 100, "S": 10000}
	p := 64
	opt, err := OptimalSharesForSizes(q, sizes, p)
	if err != nil {
		t.Fatal(err)
	}
	optCost, err := CommunicationCost(q, opt, sizes)
	if err != nil {
		t.Fatal(err)
	}
	sym := &Shares{Vars: q.Vars(), Dims: []int{8, 8}}
	symCost, err := CommunicationCost(q, sym, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if optCost >= symCost {
		t.Errorf("size-aware optimum %d should beat symmetric %d", optCost, symCost)
	}
	dx := opt.Dims[q.VarIndex("x")]
	dy := opt.Dims[q.VarIndex("y")]
	if dy <= dx {
		t.Errorf("expected d_y > d_x for small R (got d_x=%d d_y=%d)", dx, dy)
	}
	// Continuous optimum: d_x = √(p·|R|/|S|) = 0.8, d_y = 80 — the
	// small relation R is the one replicated (along y).
	cdx, cdy := RealOptimalShares(100, 10000, p)
	if cdy <= cdx {
		t.Errorf("continuous optimum should replicate R more: dx=%v dy=%v", cdx, cdy)
	}
}

func TestRealOptimalSharesProduct(t *testing.T) {
	dx, dy := RealOptimalShares(400, 400, 64)
	if math.Abs(dx-8) > 1e-9 || math.Abs(dy-8) > 1e-9 {
		t.Errorf("equal sizes: dx=%v dy=%v, want 8, 8", dx, dy)
	}
	dx, dy = RealOptimalShares(100, 10000, 100)
	if math.Abs(dx*dy-100) > 1e-6 {
		t.Errorf("product = %v, want p", dx*dy)
	}
}

func TestOptimalSharesValidation(t *testing.T) {
	q := query.Triangle()
	if _, err := OptimalSharesForSizes(q, map[string]int{}, 8); err == nil {
		t.Error("want error for missing sizes")
	}
	sizes := map[string]int{"S1": 1, "S2": 1, "S3": 1}
	if _, err := OptimalSharesForSizes(q, sizes, 0); err == nil {
		t.Error("want error for p=0")
	}
	big := query.Binom(11, 2) // 11 variables
	bigSizes := map[string]int{}
	for _, a := range big.Atoms {
		bigSizes[a.Name] = 1
	}
	if _, err := OptimalSharesForSizes(big, bigSizes, 4); err == nil {
		t.Error("want error for too many variables")
	}
}

// TestOptimalSharesChain: for L2 = S1(x0,x1), S2(x1,x2) all budget
// should go to the shared variable x1 — no replication at all.
func TestOptimalSharesChain(t *testing.T) {
	q := query.Chain(2)
	sizes := map[string]int{"S1": 5000, "S2": 5000}
	opt, err := OptimalSharesForSizes(q, sizes, 32)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := CommunicationCost(q, opt, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 10000 {
		t.Errorf("L2 optimal cost = %d, want 10000 (zero replication)", cost)
	}
	if opt.Dims[q.VarIndex("x0")] != 1 || opt.Dims[q.VarIndex("x2")] != 1 {
		t.Errorf("endpoints should have share 1: %s", opt)
	}
}
