package hypercube

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/localjoin"
	"repro/internal/query"
	"repro/internal/relation"
)

// crossPathReference replays the historic per-tuple routing path —
// Destinations per tuple, per-worker append stores, per-message bit
// accounting — and returns the per-worker received bits plus the
// deduplicated sorted answers computed from the per-worker stores.
func crossPathReference(t *testing.T, q *query.Query, db *relation.Database, p int, shares *Shares, hasher *Hasher) ([]int64, []relation.Tuple) {
	t.Helper()
	bitsPerTuple := func(arity int) int64 {
		return int64(arity) * int64(relation.BitsPerValue(db.N))
	}
	perWorkerBits := make([]int64, p)
	stores := make([]map[string][]relation.Tuple, p)
	for i := range stores {
		stores[i] = make(map[string][]relation.Tuple)
	}
	for _, a := range q.Atoms {
		rel, ok := db.Relation(a.Name)
		if !ok {
			t.Fatalf("missing relation %s", a.Name)
		}
		for _, tu := range rel.Tuples {
			for _, dst := range Destinations(shares, hasher, a, tu) {
				stores[dst][a.Name] = append(stores[dst][a.Name], tu)
				perWorkerBits[dst] += bitsPerTuple(len(tu))
			}
		}
	}
	var all []relation.Tuple
	for i := 0; i < p; i++ {
		b := localjoin.Bindings{}
		for _, a := range q.Atoms {
			b[a.Name] = stores[i][a.Name]
		}
		rows, err := localjoin.Evaluate(q, b, localjoin.Default)
		if err != nil {
			t.Fatalf("reference join: %v", err)
		}
		all = append(all, rows...)
	}
	return perWorkerBits, relation.DedupSort(all)
}

// zipfDatabase builds a database whose relations all have a
// Zipf-skewed first column — the adversarial regime the matching
// databases of the paper exclude.
func zipfDatabase(rng *rand.Rand, q *query.Query, n int, s float64) *relation.Database {
	db := relation.NewDatabase(n)
	for _, a := range q.Atoms {
		z := relation.SkewedZipf(rng, a.Name, []string{"a", "b"}, n, s)
		r := relation.New(a.Name, a.Vars...)
		r.Tuples = z.Tuples
		db.AddRelation(r)
	}
	return db
}

// TestCrossPathEquivalence: on randomized connected binary queries
// over both matching and Zipf-skewed databases, the columnar exchange
// path produces exactly the answers and exactly the per-worker/total
// bit accounting of the per-tuple reference path.
func TestCrossPathEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xc805))
		q := randomConnectedBinaryQuery(rng)
		n := 50 + rng.IntN(250)
		p := []int{4, 8, 16, 27}[rng.IntN(4)]
		var db *relation.Database
		if rng.IntN(2) == 0 {
			db = relation.MatchingDatabase(rng, q, n)
		} else {
			db = zipfDatabase(rng, q, n, 1.1)
		}
		shares, err := SharesForQuery(q, p, GreedyRounding)
		if err != nil {
			t.Logf("shares: %v", err)
			return false
		}
		hasher := NewHasher(shares, seed)
		refBits, refAnswers := crossPathReference(t, q, db, p, shares, hasher)

		res, err := Run(q, db, p, Options{Epsilon: 1, Seed: seed})
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		// Identical answers.
		if len(res.Answers) != len(refAnswers) {
			t.Logf("answers: got %d want %d", len(res.Answers), len(refAnswers))
			return false
		}
		for i := range refAnswers {
			if !res.Answers[i].Equal(refAnswers[i]) {
				return false
			}
		}
		// Identical bit accounting, per worker and in total.
		round := res.Stats.Rounds[0]
		var refTotal, refMax int64
		for w, bits := range refBits {
			refTotal += bits
			if bits > refMax {
				refMax = bits
			}
			if round.PerWorkerBits[w] != bits {
				t.Logf("worker %d: got %d bits want %d", w, round.PerWorkerBits[w], bits)
				return false
			}
		}
		if round.TotalBits != refTotal || round.MaxReceivedBits != refMax {
			t.Logf("totals: got (%d,%d) want (%d,%d)", round.TotalBits, round.MaxReceivedBits, refTotal, refMax)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// recursiveDestinations is the historic recursive enumeration, kept as
// the reference implementation for the iterative rewrite.
func recursiveDestinations(s *Shares, h *Hasher, atom query.Atom, t relation.Tuple) []int {
	k := len(s.Dims)
	fixed := make([]int, k)
	isFixed := make([]bool, k)
	for pos, v := range atom.Vars {
		d := s.DimOf(v)
		if d < 0 {
			continue
		}
		c := h.Coord(d, t[pos])
		if isFixed[d] && fixed[d] != c {
			return nil
		}
		fixed[d] = c
		isFixed[d] = true
	}
	var free []int
	for d := 0; d < k; d++ {
		if !isFixed[d] {
			free = append(free, d)
		}
	}
	coords := make([]int, k)
	copy(coords, fixed)
	var out []int
	var rec func(i int)
	rec = func(i int) {
		if i == len(free) {
			out = append(out, s.ServerOf(coords))
			return
		}
		d := free[i]
		for c := 0; c < s.Dims[d]; c++ {
			coords[d] = c
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// TestDestinationsIterativeMatchesRecursive: the iterative
// buffer-reusing enumeration returns exactly the historic recursive
// destination lists — same points, same order — across random grids
// and atoms, including repeated variables.
func TestDestinationsIterativeMatchesRecursive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x9a1d))
		k := 1 + rng.IntN(4)
		vars := make([]string, k)
		dims := make([]int, k)
		grid := 1
		for i := range vars {
			vars[i] = string(rune('a' + i))
			dims[i] = 1 + rng.IntN(4)
			grid *= dims[i]
		}
		s := &Shares{Vars: vars, Dims: dims}
		h := NewHasher(s, seed)
		arity := 1 + rng.IntN(3)
		atomVars := make([]string, arity)
		for i := range atomVars {
			atomVars[i] = vars[rng.IntN(k)] // repeats allowed
		}
		atom := query.Atom{Name: "A", Vars: atomVars}
		part := NewGridPartitioner(s, h, atom)
		buf := make([]int, 0, 64)
		for trial := 0; trial < 20; trial++ {
			tu := make(relation.Tuple, arity)
			for i := range tu {
				tu[i] = rng.IntN(100)
			}
			want := recursiveDestinations(s, h, atom, tu)
			buf = part.Route(0, tu, buf[:0])
			if len(buf) != len(want) {
				return false
			}
			for i := range want {
				if buf[i] != want[i] {
					return false
				}
			}
			if fan := part.Fanout(); len(want) != 0 && len(want) != fan {
				t.Logf("fanout %d but %d destinations", fan, len(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
