package lp

import (
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestSolveSimpleMax(t *testing.T) {
	// maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6  → x=4, y=0, value 12.
	p := NewProblem(2, true)
	p.SetObjective(0, rat(3, 1))
	p.SetObjective(1, rat(2, 1))
	p.AddConstraint([]*big.Rat{rat(1, 1), rat(1, 1)}, LE, rat(4, 1))
	p.AddConstraint([]*big.Rat{rat(1, 1), rat(3, 1)}, LE, rat(6, 1))
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if sol.Value.Cmp(rat(12, 1)) != 0 {
		t.Errorf("value = %s, want 12", sol.Value.RatString())
	}
	if sol.X[0].Cmp(rat(4, 1)) != 0 || sol.X[1].Sign() != 0 {
		t.Errorf("x = %v, want [4 0]", sol.X)
	}
}

func TestSolveSimpleMinWithGE(t *testing.T) {
	// minimize x + y s.t. x + 2y >= 3, 2x + y >= 3 → x=y=1, value 2.
	p := NewProblem(2, false)
	p.SetObjective(0, rat(1, 1))
	p.SetObjective(1, rat(1, 1))
	p.AddConstraint([]*big.Rat{rat(1, 1), rat(2, 1)}, GE, rat(3, 1))
	p.AddConstraint([]*big.Rat{rat(2, 1), rat(1, 1)}, GE, rat(3, 1))
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if sol.Value.Cmp(rat(2, 1)) != 0 {
		t.Errorf("value = %s, want 2", sol.Value.RatString())
	}
}

func TestSolveEquality(t *testing.T) {
	// maximize x s.t. x + y = 5, x <= 3 → x=3, value 3.
	p := NewProblem(2, true)
	p.SetObjective(0, rat(1, 1))
	p.AddConstraint([]*big.Rat{rat(1, 1), rat(1, 1)}, EQ, rat(5, 1))
	p.AddConstraint([]*big.Rat{rat(1, 1), nil}, LE, rat(3, 1))
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if sol.Value.Cmp(rat(3, 1)) != 0 {
		t.Errorf("value = %s, want 3", sol.Value.RatString())
	}
	if sol.X[1].Cmp(rat(2, 1)) != 0 {
		t.Errorf("y = %s, want 2", sol.X[1].RatString())
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x <= 1 and x >= 2 cannot both hold.
	p := NewProblem(1, true)
	p.SetObjective(0, rat(1, 1))
	p.AddConstraint([]*big.Rat{rat(1, 1)}, LE, rat(1, 1))
	p.AddConstraint([]*big.Rat{rat(1, 1)}, GE, rat(2, 1))
	sol := mustSolve(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// maximize x with no upper bound.
	p := NewProblem(1, true)
	p.SetObjective(0, rat(1, 1))
	p.AddConstraint([]*big.Rat{rat(1, 1)}, GE, rat(1, 1))
	sol := mustSolve(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// minimize x s.t. -x <= -2 (i.e. x >= 2) → value 2.
	p := NewProblem(1, false)
	p.SetObjective(0, rat(1, 1))
	p.AddConstraint([]*big.Rat{rat(-1, 1)}, LE, rat(-2, 1))
	sol := mustSolve(t, p)
	if sol.Status != Optimal || sol.Value.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("got %v %v, want optimal 2", sol.Status, sol.Value)
	}
}

func TestSolveFractionalOptimum(t *testing.T) {
	// The triangle cover LP: minimize v1+v2+v3 with vi+vj >= 1 for all
	// pairs → each vi = 1/2, value 3/2.
	p := NewProblem(3, false)
	for i := 0; i < 3; i++ {
		p.SetObjective(i, rat(1, 1))
	}
	p.AddConstraint([]*big.Rat{rat(1, 1), rat(1, 1), nil}, GE, rat(1, 1))
	p.AddConstraint([]*big.Rat{nil, rat(1, 1), rat(1, 1)}, GE, rat(1, 1))
	p.AddConstraint([]*big.Rat{rat(1, 1), nil, rat(1, 1)}, GE, rat(1, 1))
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Value.Cmp(rat(3, 2)) != 0 {
		t.Errorf("value = %s, want 3/2", sol.Value.RatString())
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Degenerate vertex: redundant constraints meeting at the optimum.
	p := NewProblem(2, true)
	p.SetObjective(0, rat(1, 1))
	p.SetObjective(1, rat(1, 1))
	p.AddConstraint([]*big.Rat{rat(1, 1), nil}, LE, rat(1, 1))
	p.AddConstraint([]*big.Rat{nil, rat(1, 1)}, LE, rat(1, 1))
	p.AddConstraint([]*big.Rat{rat(1, 1), rat(1, 1)}, LE, rat(2, 1))
	sol := mustSolve(t, p)
	if sol.Status != Optimal || sol.Value.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("got %v %v, want optimal 2", sol.Status, sol.Value)
	}
}

func TestSolveRedundantEquality(t *testing.T) {
	// Two copies of the same equality produce a redundant artificial row.
	p := NewProblem(2, true)
	p.SetObjective(0, rat(1, 1))
	p.AddConstraint([]*big.Rat{rat(1, 1), rat(1, 1)}, EQ, rat(2, 1))
	p.AddConstraint([]*big.Rat{rat(1, 1), rat(1, 1)}, EQ, rat(2, 1))
	sol := mustSolve(t, p)
	if sol.Status != Optimal || sol.Value.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("got %v %v, want optimal 2", sol.Status, sol.Value)
	}
}

func TestValidate(t *testing.T) {
	p := &Problem{NumVars: 0}
	if _, err := Solve(p); err == nil {
		t.Fatal("want error for zero variables")
	}
	p2 := NewProblem(2, true)
	p2.Constraints = append(p2.Constraints, Constraint{Coeffs: []*big.Rat{rat(1, 1)}, RHS: rat(1, 1)})
	if _, err := Solve(p2); err == nil {
		t.Fatal("want error for coefficient count mismatch")
	}
	p3 := NewProblem(1, true)
	p3.Constraints = append(p3.Constraints, Constraint{Coeffs: []*big.Rat{rat(1, 1)}})
	if _, err := Solve(p3); err == nil {
		t.Fatal("want error for nil RHS")
	}
}

func TestProblemString(t *testing.T) {
	p := NewProblem(2, false)
	p.SetObjective(0, rat(1, 1))
	p.SetObjective(1, rat(1, 2))
	p.AddConstraint([]*big.Rat{rat(1, 1), rat(1, 1)}, GE, rat(1, 1))
	s := p.String()
	for _, want := range []string{"minimize", "x0", "1/2*x1", ">="} {
		if !containsStr(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// randomCoverLP builds a set-cover-style LP: minimize Σx over random
// coverage constraints. Such LPs are always feasible and bounded, which
// makes them good fodder for duality property testing.
func randomCoverLP(rng *rand.Rand, nVars, nCons int) (*Problem, [][]int) {
	primal := NewProblem(nVars, false)
	sets := make([][]int, nCons)
	for i := 0; i < nVars; i++ {
		primal.SetObjective(i, rat(1, 1))
	}
	for j := 0; j < nCons; j++ {
		size := 1 + rng.IntN(nVars)
		seen := map[int]bool{}
		coeffs := make([]*big.Rat, nVars)
		for len(seen) < size {
			v := rng.IntN(nVars)
			if !seen[v] {
				seen[v] = true
				coeffs[v] = rat(1, 1)
				sets[j] = append(sets[j], v)
			}
		}
		primal.AddConstraint(coeffs, GE, rat(1, 1))
	}
	return primal, sets
}

// dualOf builds the packing dual of a cover LP produced by randomCoverLP.
func dualOf(sets [][]int, nVars int) *Problem {
	dual := NewProblem(len(sets), true)
	for j := range sets {
		dual.SetObjective(j, rat(1, 1))
	}
	for i := 0; i < nVars; i++ {
		coeffs := make([]*big.Rat, len(sets))
		any := false
		for j, s := range sets {
			for _, v := range s {
				if v == i {
					coeffs[j] = rat(1, 1)
					any = true
				}
			}
		}
		if any {
			dual.AddConstraint(coeffs, LE, rat(1, 1))
		}
	}
	return dual
}

// TestStrongDualityProperty checks LP strong duality on random
// cover/packing pairs: the primal minimum equals the dual maximum.
func TestStrongDualityProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 7))
		nVars := 2 + r.IntN(5)
		nCons := 1 + r.IntN(6)
		primal, sets := randomCoverLP(rng, nVars, nCons)
		dual := dualOf(sets, nVars)
		ps, err := Solve(primal)
		if err != nil || ps.Status != Optimal {
			return false
		}
		ds, err := Solve(dual)
		if err != nil || ds.Status != Optimal {
			return false
		}
		return ps.Value.Cmp(ds.Value) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFeasibilityOfSolution verifies that returned optima satisfy every
// constraint exactly.
func TestFeasibilityOfSolution(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 50; trial++ {
		p, _ := randomCoverLP(rng, 2+rng.IntN(6), 1+rng.IntN(8))
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		for ci, c := range p.Constraints {
			lhs := new(big.Rat)
			for i, coef := range c.Coeffs {
				if coef != nil {
					term := new(big.Rat).Mul(coef, sol.X[i])
					lhs.Add(lhs, term)
				}
			}
			ok := false
			switch c.Rel {
			case LE:
				ok = lhs.Cmp(c.RHS) <= 0
			case GE:
				ok = lhs.Cmp(c.RHS) >= 0
			case EQ:
				ok = lhs.Cmp(c.RHS) == 0
			}
			if !ok {
				t.Fatalf("trial %d: constraint %d violated: %s %s %s",
					trial, ci, lhs.RatString(), c.Rel, c.RHS.RatString())
			}
		}
		for i, x := range sol.X {
			if x.Sign() < 0 {
				t.Fatalf("trial %d: x%d = %s < 0", trial, i, x.RatString())
			}
		}
	}
}

func TestRelString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("unexpected Rel strings")
	}
	if Rel(99).String() == "" {
		t.Error("unknown Rel should still render")
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("unexpected Status strings")
	}
	if Status(42).String() == "" {
		t.Error("unknown Status should still render")
	}
}
