package lp

import (
	"errors"
	"math/big"
	"testing"
)

// This file covers the LP-solver edge cases the planner can feed it:
// constraint-free programs, the single-relation query LPs, and
// degenerate packings with non-unique optima. The rat helper lives in
// lp_test.go.

// TestNoConstraints: with no constraints, a minimization of a
// non-negative objective sits at the origin; a maximization with a
// positive coefficient is unbounded.
func TestNoConstraints(t *testing.T) {
	min := NewProblem(2, false)
	min.SetObjective(0, rat(1, 1))
	min.SetObjective(1, rat(3, 1))
	sol, err := Solve(min)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Value.Sign() != 0 {
		t.Fatalf("min over origin: %v value %v", sol.Status, sol.Value)
	}
	for i, x := range sol.X {
		if x.Sign() != 0 {
			t.Errorf("x%d = %s, want 0", i, x.RatString())
		}
	}

	max := NewProblem(1, true)
	max.SetObjective(0, rat(1, 1))
	sol, err = Solve(max)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("unconstrained max: %v, want unbounded", sol.Status)
	}
}

// TestZeroObjective: a feasibility-only program (all-zero objective)
// solves to value 0.
func TestZeroObjective(t *testing.T) {
	p := NewProblem(2, true)
	p.AddConstraint([]*big.Rat{rat(1, 1), rat(1, 1)}, EQ, rat(5, 1))
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Value.Sign() != 0 {
		t.Fatalf("feasibility program: %v value %v", sol.Status, sol.Value)
	}
	sum := new(big.Rat).Add(sol.X[0], sol.X[1])
	if sum.Cmp(rat(5, 1)) != 0 {
		t.Errorf("x0+x1 = %s, want 5", sum.RatString())
	}
}

// TestSingleRelationLPs: the Figure 1 LPs of the one-atom query
// R(x1,…,xa). The vertex cover puts total weight 1 on the atom's
// variables (τ* = 1) and the edge packing gives the atom u = 1 —
// the degenerate base case the planner hits for single-atom queries.
func TestSingleRelationLPs(t *testing.T) {
	for arity := 1; arity <= 4; arity++ {
		// Vertex cover: minimize Σ v_i s.t. Σ v_i ≥ 1.
		vc := NewProblem(arity, false)
		coeffs := make([]*big.Rat, arity)
		for i := 0; i < arity; i++ {
			vc.SetObjective(i, rat(1, 1))
			coeffs[i] = rat(1, 1)
		}
		vc.AddConstraint(coeffs, GE, rat(1, 1))
		sol, err := Solve(vc)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal || sol.Value.Cmp(rat(1, 1)) != 0 {
			t.Fatalf("arity %d cover: %v value %v", arity, sol.Status, sol.Value)
		}

		// Edge packing: maximize u s.t. u ≤ 1 per variable.
		ep := NewProblem(1, true)
		ep.SetObjective(0, rat(1, 1))
		for i := 0; i < arity; i++ {
			ep.AddConstraint([]*big.Rat{rat(1, 1)}, LE, rat(1, 1))
		}
		sol, err = Solve(ep)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal || sol.Value.Cmp(rat(1, 1)) != 0 {
			t.Fatalf("arity %d packing: %v value %v", arity, sol.Status, sol.Value)
		}
		if sol.X[0].Cmp(rat(1, 1)) != 0 {
			t.Errorf("arity %d packing: u = %s, want 1", arity, sol.X[0].RatString())
		}
	}
}

// TestDegeneratePacking: the star query T2's edge-packing LP
// (maximize u1+u2 s.t. u1+u2 ≤ 1 on the hub, u1 ≤ 1, u2 ≤ 1 on the
// leaves) has a whole optimal face; Bland's rule must terminate and
// return one optimal vertex with value exactly 1.
func TestDegeneratePacking(t *testing.T) {
	p := NewProblem(2, true)
	p.SetObjective(0, rat(1, 1))
	p.SetObjective(1, rat(1, 1))
	p.AddConstraint([]*big.Rat{rat(1, 1), rat(1, 1)}, LE, rat(1, 1)) // hub z
	p.AddConstraint([]*big.Rat{rat(1, 1), nil}, LE, rat(1, 1))       // leaf x1
	p.AddConstraint([]*big.Rat{nil, rat(1, 1)}, LE, rat(1, 1))       // leaf x2
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Value.Cmp(rat(1, 1)) != 0 {
		t.Fatalf("T2 packing: %v value %v", sol.Status, sol.Value)
	}
	sum := new(big.Rat).Add(sol.X[0], sol.X[1])
	if sum.Cmp(rat(1, 1)) != 0 {
		t.Errorf("u1+u2 = %s, want exactly 1 on the optimal face", sum.RatString())
	}
}

// TestDegenerateEqualityCollapse: equality constraints that pin every
// variable leave no freedom — the objective is forced.
func TestDegenerateEqualityCollapse(t *testing.T) {
	p := NewProblem(2, true)
	p.SetObjective(0, rat(3, 1))
	p.SetObjective(1, rat(5, 1))
	p.AddConstraint([]*big.Rat{rat(1, 1), nil}, EQ, rat(2, 1))
	p.AddConstraint([]*big.Rat{nil, rat(1, 1)}, EQ, rat(7, 2))
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Rat).Add(rat(6, 1), new(big.Rat).Mul(rat(5, 1), rat(7, 2)))
	if sol.Status != Optimal || sol.Value.Cmp(want) != 0 {
		t.Fatalf("pinned program: %v value %v, want %v", sol.Status, sol.Value, want)
	}
}

// TestConflictingEqualities: x = 1 and x = 2 is infeasible, not an
// internal error.
func TestConflictingEqualities(t *testing.T) {
	p := NewProblem(1, false)
	p.SetObjective(0, rat(1, 1))
	p.AddConstraint([]*big.Rat{rat(1, 1)}, EQ, rat(1, 1))
	p.AddConstraint([]*big.Rat{rat(1, 1)}, EQ, rat(2, 1))
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("conflicting equalities: %v, want infeasible", sol.Status)
	}
}

// TestMalformedPrograms: the "empty query" class — programs a caller
// could build from a query with no atoms or mismatched dimensions
// must fail validation, not crash the tableau.
func TestMalformedPrograms(t *testing.T) {
	zero := &Problem{NumVars: 0}
	if _, err := Solve(zero); !errors.Is(err, ErrBadProblem) {
		t.Errorf("NumVars=0: err = %v, want ErrBadProblem", err)
	}
	neg := &Problem{NumVars: -3, Objective: []*big.Rat{}}
	if _, err := Solve(neg); !errors.Is(err, ErrBadProblem) {
		t.Errorf("NumVars<0: err = %v, want ErrBadProblem", err)
	}
	short := &Problem{NumVars: 2, Objective: []*big.Rat{rat(1, 1)}}
	if _, err := Solve(short); !errors.Is(err, ErrBadProblem) {
		t.Errorf("short objective: err = %v, want ErrBadProblem", err)
	}
	badRow := NewProblem(2, false)
	badRow.Constraints = append(badRow.Constraints, Constraint{
		Coeffs: []*big.Rat{rat(1, 1)}, Rel: LE, RHS: rat(1, 1),
	})
	if _, err := Solve(badRow); !errors.Is(err, ErrBadProblem) {
		t.Errorf("short constraint row: err = %v, want ErrBadProblem", err)
	}
	nilRHS := NewProblem(1, false)
	nilRHS.Constraints = append(nilRHS.Constraints, Constraint{
		Coeffs: []*big.Rat{rat(1, 1)}, Rel: LE,
	})
	if _, err := Solve(nilRHS); !errors.Is(err, ErrBadProblem) {
		t.Errorf("nil RHS: err = %v, want ErrBadProblem", err)
	}
}

// TestNilCoefficientHandling: nil coefficients are zeros everywhere —
// objective, constraints, and the String renderer.
func TestNilCoefficientHandling(t *testing.T) {
	p := NewProblem(3, false)
	p.SetObjective(1, rat(1, 1)) // x0, x2 objective nil
	p.AddConstraint([]*big.Rat{nil, rat(1, 1), nil}, GE, rat(4, 1))
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Value.Cmp(rat(4, 1)) != 0 {
		t.Fatalf("nil-coefficient program: %v value %v", sol.Status, sol.Value)
	}
	if s := p.String(); s == "" {
		t.Error("String must render nil coefficients")
	}
}
