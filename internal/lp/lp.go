// Package lp implements an exact linear-program solver over rational
// numbers (math/big.Rat) using the two-phase primal simplex method with
// Bland's anti-cycling rule.
//
// The solver targets the small LPs that arise in parallel query
// processing — the fractional vertex-cover LP and its dual, the
// fractional edge-packing LP (Figure 1 of Beame, Koutris, Suciu,
// PODS 2013). Because the optimal values of these programs are small
// rationals (for example τ*(C_k) = k/2), exact arithmetic lets callers
// assert equality instead of comparing floats within a tolerance.
//
// All decision variables are implicitly constrained to be non-negative,
// which matches both LPs of the paper.
package lp

import (
	"errors"
	"fmt"
	"math/big"
	"strings"
)

// Rel is the relation of a linear constraint.
type Rel int

// Constraint relations.
const (
	// LE is "less than or equal" (Σ a_i x_i ≤ b).
	LE Rel = iota
	// GE is "greater than or equal" (Σ a_i x_i ≥ b).
	GE
	// EQ is equality (Σ a_i x_i = b).
	EQ
)

// String returns the conventional symbol for the relation.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Constraint is a single linear constraint Σ_i Coeffs[i]·x_i  Rel  RHS.
// A nil coefficient is treated as zero.
type Constraint struct {
	Coeffs []*big.Rat
	Rel    Rel
	RHS    *big.Rat
}

// Problem is a linear program over n non-negative variables.
type Problem struct {
	// NumVars is the number of decision variables.
	NumVars int
	// Objective holds one coefficient per variable; nil means zero.
	Objective []*big.Rat
	// Maximize selects the optimization direction.
	Maximize bool
	// Constraints are the rows of the program.
	Constraints []Constraint
}

// Status describes the outcome of Solve.
type Status int

// Solver outcomes.
const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint set has no solution.
	Infeasible
	// Unbounded means the objective is unbounded over the feasible set.
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	// Value is the optimal objective value (in the problem's own
	// direction); nil unless Status == Optimal.
	Value *big.Rat
	// X holds the optimal assignment, one value per variable; nil
	// unless Status == Optimal.
	X []*big.Rat
}

// ErrBadProblem reports a structurally invalid program.
var ErrBadProblem = errors.New("lp: malformed problem")

// NewProblem returns an empty program over n variables.
func NewProblem(n int, maximize bool) *Problem {
	return &Problem{
		NumVars:   n,
		Objective: make([]*big.Rat, n),
		Maximize:  maximize,
	}
}

// SetObjective sets the objective coefficient of variable i.
func (p *Problem) SetObjective(i int, c *big.Rat) {
	p.Objective[i] = new(big.Rat).Set(c)
}

// AddConstraint appends a constraint. The coefficient slice is copied.
func (p *Problem) AddConstraint(coeffs []*big.Rat, rel Rel, rhs *big.Rat) {
	cc := make([]*big.Rat, p.NumVars)
	for i := 0; i < len(coeffs) && i < p.NumVars; i++ {
		if coeffs[i] != nil {
			cc[i] = new(big.Rat).Set(coeffs[i])
		}
	}
	p.Constraints = append(p.Constraints, Constraint{
		Coeffs: cc,
		Rel:    rel,
		RHS:    new(big.Rat).Set(rhs),
	})
}

// validate performs structural checks before solving.
func (p *Problem) validate() error {
	if p.NumVars <= 0 {
		return fmt.Errorf("%w: NumVars = %d", ErrBadProblem, p.NumVars)
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("%w: objective has %d coefficients for %d variables",
			ErrBadProblem, len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != p.NumVars {
			return fmt.Errorf("%w: constraint %d has %d coefficients for %d variables",
				ErrBadProblem, i, len(c.Coeffs), p.NumVars)
		}
		if c.RHS == nil {
			return fmt.Errorf("%w: constraint %d has nil RHS", ErrBadProblem, i)
		}
	}
	return nil
}

// tableau is a dense simplex tableau with m constraint rows and an
// objective row, all over exact rationals.
type tableau struct {
	m, n  int         // rows, total columns (excluding RHS)
	a     [][]big.Rat // m×n constraint matrix
	b     []big.Rat   // RHS, length m
	c     []big.Rat   // objective row (reduced costs), length n
	obj   big.Rat     // current objective value (negated running total)
	basis []int       // basic variable of each row
}

func newTableau(m, n int) *tableau {
	t := &tableau{m: m, n: n}
	t.a = make([][]big.Rat, m)
	rows := make([]big.Rat, m*n)
	for i := range t.a {
		t.a[i] = rows[i*n : (i+1)*n]
	}
	t.b = make([]big.Rat, m)
	t.c = make([]big.Rat, n)
	t.basis = make([]int, m)
	return t
}

// pivot performs a full pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	piv := new(big.Rat).Set(&t.a[row][col])
	inv := new(big.Rat).Inv(piv)
	// Scale pivot row.
	for j := 0; j < t.n; j++ {
		t.a[row][j].Mul(&t.a[row][j], inv)
	}
	t.b[row].Mul(&t.b[row], inv)
	// Eliminate the pivot column from every other row.
	tmp := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		factor := new(big.Rat).Set(&t.a[i][col])
		if factor.Sign() == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			tmp.Mul(factor, &t.a[row][j])
			t.a[i][j].Sub(&t.a[i][j], tmp)
		}
		tmp.Mul(factor, &t.b[row])
		t.b[i].Sub(&t.b[i], tmp)
	}
	// Eliminate from the objective row.
	factor := new(big.Rat).Set(&t.c[col])
	if factor.Sign() != 0 {
		for j := 0; j < t.n; j++ {
			tmp.Mul(factor, &t.a[row][j])
			t.c[j].Sub(&t.c[j], tmp)
		}
		tmp.Mul(factor, &t.b[row])
		t.obj.Sub(&t.obj, tmp)
	}
	t.basis[row] = col
}

// iterate runs primal simplex iterations (maximization: enter on
// positive reduced cost) until optimality or unboundedness, using
// Bland's rule to guarantee termination.
func (t *tableau) iterate(allowed func(col int) bool) Status {
	for {
		// Entering variable: smallest index with positive reduced cost.
		col := -1
		for j := 0; j < t.n; j++ {
			if allowed != nil && !allowed(j) {
				continue
			}
			if t.c[j].Sign() > 0 {
				col = j
				break
			}
		}
		if col < 0 {
			return Optimal
		}
		// Leaving variable: minimum ratio, ties broken by smallest
		// basis index (Bland).
		row := -1
		var best big.Rat
		for i := 0; i < t.m; i++ {
			if t.a[i][col].Sign() <= 0 {
				continue
			}
			ratio := new(big.Rat).Quo(&t.b[i], &t.a[i][col])
			if row < 0 || ratio.Cmp(&best) < 0 ||
				(ratio.Cmp(&best) == 0 && t.basis[i] < t.basis[row]) {
				row = i
				best.Set(ratio)
			}
		}
		if row < 0 {
			return Unbounded
		}
		t.pivot(row, col)
	}
}

// Solve runs two-phase simplex and returns the optimal solution,
// or a Solution with a non-Optimal status.
func Solve(p *Problem) (*Solution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	m := len(p.Constraints)
	n := p.NumVars

	// Normalize rows so every RHS is non-negative, then count extra
	// columns: one slack/surplus per inequality, one artificial per
	// GE/EQ row (after normalization).
	type rowInfo struct {
		coeffs []*big.Rat
		rel    Rel
		rhs    *big.Rat
	}
	rows := make([]rowInfo, m)
	for i, c := range p.Constraints {
		ri := rowInfo{coeffs: c.Coeffs, rel: c.Rel, rhs: c.RHS}
		if c.RHS.Sign() < 0 {
			neg := make([]*big.Rat, n)
			for j, v := range c.Coeffs {
				if v != nil {
					neg[j] = new(big.Rat).Neg(v)
				}
			}
			ri.coeffs = neg
			ri.rhs = new(big.Rat).Neg(c.RHS)
			switch c.Rel {
			case LE:
				ri.rel = GE
			case GE:
				ri.rel = LE
			default:
				ri.rel = EQ
			}
		}
		rows[i] = ri
	}

	slacks := 0
	artificials := 0
	for _, r := range rows {
		if r.rel != EQ {
			slacks++
		}
		if r.rel != LE {
			artificials++
		}
	}
	total := n + slacks + artificials
	t := newTableau(m, total)

	one := big.NewRat(1, 1)
	slackCol := n
	artCol := n + slacks
	artStart := artCol
	for i, r := range rows {
		for j, v := range r.coeffs {
			if v != nil {
				t.a[i][j].Set(v)
			}
		}
		t.b[i].Set(r.rhs)
		switch r.rel {
		case LE:
			t.a[i][slackCol].Set(one)
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.a[i][slackCol].Neg(one) // surplus
			slackCol++
			t.a[i][artCol].Set(one)
			t.basis[i] = artCol
			artCol++
		case EQ:
			t.a[i][artCol].Set(one)
			t.basis[i] = artCol
			artCol++
		}
	}

	// Phase 1: maximize -(sum of artificials). Express the phase-1
	// objective in terms of non-basic variables by adding each
	// artificial's row.
	if artificials > 0 {
		for i := range rows {
			if t.basis[i] >= artStart {
				for j := 0; j < total; j++ {
					t.c[j].Add(&t.c[j], &t.a[i][j])
				}
				t.obj.Add(&t.obj, &t.b[i])
			}
		}
		for j := artStart; j < total; j++ {
			t.c[j].Sub(&t.c[j], one)
		}
		status := t.iterate(nil)
		if status == Unbounded {
			// Phase-1 objective is bounded above by 0; cannot happen.
			return nil, errors.New("lp: internal error: phase 1 unbounded")
		}
		if t.obj.Sign() != 0 {
			return &Solution{Status: Infeasible}, nil
		}
		// Drive any artificial variables out of the basis.
		for i := 0; i < t.m; i++ {
			if t.basis[i] < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if t.a[i][j].Sign() != 0 {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: the basis keeps the artificial at
				// value zero; it can never re-enter because phase 2
				// forbids artificial columns.
				continue
			}
		}
	}

	// Phase 2: install the real objective (as maximization) and
	// express it in terms of the current basis.
	for j := 0; j < total; j++ {
		t.c[j].SetInt64(0)
	}
	t.obj.SetInt64(0)
	for j := 0; j < n; j++ {
		if p.Objective[j] == nil {
			continue
		}
		if p.Maximize {
			t.c[j].Set(p.Objective[j])
		} else {
			t.c[j].Neg(p.Objective[j])
		}
	}
	tmp := new(big.Rat)
	for i := 0; i < t.m; i++ {
		bi := t.basis[i]
		if bi >= total || t.c[bi].Sign() == 0 {
			continue
		}
		factor := new(big.Rat).Set(&t.c[bi])
		for j := 0; j < total; j++ {
			tmp.Mul(factor, &t.a[i][j])
			t.c[j].Sub(&t.c[j], tmp)
		}
		tmp.Mul(factor, &t.b[i])
		t.obj.Sub(&t.obj, tmp)
	}
	allowed := func(col int) bool { return col < artStart }
	status := t.iterate(allowed)
	if status == Unbounded {
		return &Solution{Status: Unbounded}, nil
	}

	x := make([]*big.Rat, n)
	for j := range x {
		x[j] = new(big.Rat)
	}
	for i := 0; i < t.m; i++ {
		if t.basis[i] < n {
			x[t.basis[i]].Set(&t.b[i])
		}
	}
	// t.obj holds -(max value of the internal maximization).
	val := new(big.Rat).Neg(&t.obj)
	if !p.Maximize {
		val.Neg(val)
	}
	return &Solution{Status: Optimal, Value: val, X: x}, nil
}

// String renders the program in a human-readable algebraic form,
// useful for debugging and for the mpcplan CLI.
func (p *Problem) String() string {
	var sb strings.Builder
	if p.Maximize {
		sb.WriteString("maximize ")
	} else {
		sb.WriteString("minimize ")
	}
	sb.WriteString(linear(p.Objective))
	sb.WriteString("\nsubject to\n")
	for _, c := range p.Constraints {
		fmt.Fprintf(&sb, "  %s %s %s\n", linear(c.Coeffs), c.Rel, c.RHS.RatString())
	}
	sb.WriteString("  x >= 0\n")
	return sb.String()
}

func linear(coeffs []*big.Rat) string {
	var sb strings.Builder
	first := true
	for i, c := range coeffs {
		if c == nil || c.Sign() == 0 {
			continue
		}
		if !first {
			sb.WriteString(" + ")
		}
		first = false
		if c.Cmp(big.NewRat(1, 1)) == 0 {
			fmt.Fprintf(&sb, "x%d", i)
		} else {
			fmt.Fprintf(&sb, "%s*x%d", c.RatString(), i)
		}
	}
	if first {
		return "0"
	}
	return sb.String()
}
