// Package core is the high-level entry point of the reproduction of
// "Communication Steps for Parallel Query Processing" (Beame, Koutris,
// Suciu, PODS 2013). It ties the subsystems together behind a small
// API:
//
//   - Analyze inspects a conjunctive query: hypergraph statistics, the
//     two LPs of Figure 1, τ*, the one-round space exponent, HyperCube
//     share exponents, and round bounds for a given ε.
//   - EvaluateOneRound runs the HyperCube algorithm (Theorem 1.1 upper
//     bound) on a database.
//   - EvaluateMultiRound builds a Γ^r_ε plan (Section 4.1) and executes
//     it round by round.
//
// The cmd/ tools and examples/ programs are thin wrappers around this
// package.
package core

import (
	"fmt"
	"math/big"

	"repro/internal/cover"
	"repro/internal/hypercube"
	"repro/internal/localjoin"
	"repro/internal/multiround"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/theory"
)

// Analysis is the static profile of a conjunctive query under the MPC
// model.
type Analysis struct {
	// Query is the analyzed query.
	Query *query.Query
	// Tau is τ*(q), the fractional covering number.
	Tau *big.Rat
	// SpaceExponent is 1 − 1/τ*, the minimal ε for one round
	// (Theorem 1.1).
	SpaceExponent *big.Rat
	// VertexCover is an optimal fractional vertex cover (per variable).
	VertexCover []*big.Rat
	// EdgePacking is an optimal fractional edge packing (per atom).
	EdgePacking []*big.Rat
	// ShareExponents are the HyperCube exponents e_i = v_i/τ*.
	ShareExponents []*big.Rat
	// Characteristic is χ(q) = k + ℓ − a − c.
	Characteristic int
	// TreeLike reports whether q is connected with χ(q) = 0.
	TreeLike bool
	// Connected reports hypergraph connectivity.
	Connected bool
	// Radius and Diameter are hypergraph distances (only meaningful
	// when Connected).
	Radius, Diameter int
}

// Analyze profiles q. Works for connected and disconnected queries;
// Radius/Diameter are zero for disconnected ones.
func Analyze(q *query.Query) (*Analysis, error) {
	cr, err := cover.Solve(q)
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		Query:          q,
		Tau:            cr.Tau,
		SpaceExponent:  cr.SpaceExponent(),
		VertexCover:    cr.VertexCover,
		EdgePacking:    cr.EdgePacking,
		ShareExponents: cr.ShareExponents(),
		Characteristic: q.Characteristic(),
		TreeLike:       q.TreeLike(),
		Connected:      q.Connected(),
	}
	if a.Connected {
		if a.Radius, err = q.Radius(); err != nil {
			return nil, err
		}
		if a.Diameter, err = q.Diameter(); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// ExpectedAnswers returns E[|q(I)|] = n^{1+χ} over random matching
// databases (Lemma 3.4; connected queries only).
func (a *Analysis) ExpectedAnswers(n int) (float64, error) {
	return theory.ExpectedAnswers(a.Query, n)
}

// RoundBounds returns the tuple-based MPC(ε) round lower bound
// (Corollary 4.8; requires tree-like) and the Lemma 4.3 upper bound.
// For non-tree-like connected queries the lower bound returned is 1
// when q ∈ Γ¹_ε and 2 otherwise (the generic one-round test).
func (a *Analysis) RoundBounds(eps *big.Rat) (lower, upper int, err error) {
	if !a.Connected {
		return 0, 0, fmt.Errorf("core: round bounds need a connected query")
	}
	upper, err = theory.RoundsUpperBound(a.Query, eps)
	if err != nil {
		return 0, 0, err
	}
	if a.TreeLike {
		lower, err = theory.RoundsLowerBound(a.Query, eps)
		if err != nil {
			return 0, 0, err
		}
		return lower, upper, nil
	}
	in, err := cover.GammaOne(a.Query, eps)
	if err != nil {
		return 0, 0, err
	}
	if in {
		return 1, upper, nil
	}
	return 2, upper, nil
}

// OneRoundOptions configures EvaluateOneRound.
type OneRoundOptions struct {
	// Epsilon overrides the space exponent; negative means "use the
	// query's own exponent 1−1/τ*".
	Epsilon float64
	// CapConstant enables receive-budget enforcement when positive.
	CapConstant float64
	// Seed drives hashing.
	Seed uint64
}

// EvaluateOneRound runs the HyperCube algorithm for q over db on p
// servers. With the default options the run uses ε = 1−1/τ* and finds
// every answer on matching databases (Proposition 3.2).
func EvaluateOneRound(q *query.Query, db *relation.Database, p int, opts OneRoundOptions) (*hypercube.Result, error) {
	eps := opts.Epsilon
	if eps < 0 {
		a, err := cover.Solve(q)
		if err != nil {
			return nil, err
		}
		eps = a.SpaceExponentFloat()
	}
	return hypercube.Run(q, db, p, hypercube.Options{
		Epsilon:     eps,
		CapConstant: opts.CapConstant,
		Seed:        opts.Seed,
		Strategy:    localjoin.Default,
	})
}

// MultiRoundOptions configures EvaluateMultiRound.
type MultiRoundOptions struct {
	// CapConstant enables receive-budget enforcement when positive.
	CapConstant float64
	// Seed drives hashing.
	Seed uint64
}

// EvaluateMultiRound builds the greedy Γ^r_ε plan for q at space
// exponent eps and executes it on db with p servers.
func EvaluateMultiRound(q *query.Query, db *relation.Database, p int, eps *big.Rat, opts MultiRoundOptions) (*multiround.Result, error) {
	plan, err := multiround.Build(q, eps)
	if err != nil {
		return nil, err
	}
	return multiround.Execute(plan, db, p, multiround.Options{
		CapConstant: opts.CapConstant,
		Seed:        opts.Seed,
		Strategy:    localjoin.Default,
	})
}

// GroundTruth evaluates q over db on a single node — the reference
// answer used by tests and experiment harnesses. It deliberately uses
// the pairwise hash join so the reference is computed by a different
// algorithm than the WCOJ default the cluster runs.
func GroundTruth(q *query.Query, db *relation.Database) ([]relation.Tuple, error) {
	b, err := localjoin.FromDatabase(q, db)
	if err != nil {
		return nil, err
	}
	return localjoin.Evaluate(q, b, localjoin.HashJoin)
}

// String renders the analysis as a compact report.
func (a *Analysis) String() string {
	s := fmt.Sprintf("query: %s\n", a.Query)
	s += fmt.Sprintf("  atoms=%d vars=%d arity=%d χ=%d connected=%v tree-like=%v\n",
		a.Query.NumAtoms(), a.Query.NumVars(), a.Query.TotalArity(),
		a.Characteristic, a.Connected, a.TreeLike)
	s += fmt.Sprintf("  τ* = %s, space exponent ε = %s\n", a.Tau.RatString(), a.SpaceExponent.RatString())
	if a.Connected {
		s += fmt.Sprintf("  radius = %d, diameter = %d\n", a.Radius, a.Diameter)
	}
	s += "  vertex cover:"
	for i, v := range a.Query.Vars() {
		s += fmt.Sprintf(" %s=%s", v, a.VertexCover[i].RatString())
	}
	s += "\n  edge packing:"
	for j, at := range a.Query.Atoms {
		s += fmt.Sprintf(" %s=%s", at.Name, a.EdgePacking[j].RatString())
	}
	s += "\n  share exponents:"
	for i, v := range a.Query.Vars() {
		s += fmt.Sprintf(" %s=%s", v, a.ShareExponents[i].RatString())
	}
	return s + "\n"
}
