package core

import (
	"math/big"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestAnalyzeTriangle(t *testing.T) {
	a, err := Analyze(query.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	if a.Tau.Cmp(rat(3, 2)) != 0 {
		t.Errorf("τ* = %s, want 3/2", a.Tau.RatString())
	}
	if a.SpaceExponent.Cmp(rat(1, 3)) != 0 {
		t.Errorf("ε = %s, want 1/3", a.SpaceExponent.RatString())
	}
	if a.Characteristic != -1 || a.TreeLike || !a.Connected {
		t.Errorf("χ=%d treeLike=%v connected=%v", a.Characteristic, a.TreeLike, a.Connected)
	}
	if a.Radius != 1 || a.Diameter != 1 {
		t.Errorf("rad=%d diam=%d, want 1,1", a.Radius, a.Diameter)
	}
	exp, err := a.ExpectedAnswers(100)
	if err != nil {
		t.Fatal(err)
	}
	if exp != 1 {
		t.Errorf("E[|C3|] = %v, want 1", exp)
	}
	report := a.String()
	for _, want := range []string{"τ* = 3/2", "ε = 1/3", "share exponents", "vertex cover"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestAnalyzeDisconnected(t *testing.T) {
	a, err := Analyze(query.CartesianPair())
	if err != nil {
		t.Fatal(err)
	}
	if a.Connected {
		t.Error("cartesian pair is disconnected")
	}
	if _, _, err := a.RoundBounds(rat(0, 1)); err == nil {
		t.Error("want error: round bounds on disconnected query")
	}
	if _, err := a.ExpectedAnswers(10); err == nil {
		t.Error("want error: expected answers on disconnected query")
	}
}

func TestRoundBounds(t *testing.T) {
	a, err := Analyze(query.Chain(8))
	if err != nil {
		t.Fatal(err)
	}
	lo, up, err := a.RoundBounds(rat(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if lo != 3 || up < 3 || up > 4 {
		t.Errorf("L8 bounds = (%d, %d), want (3, 3..4)", lo, up)
	}
	// Non-tree-like: C5 at ε=0 gets the generic lower bound 2.
	ac, err := Analyze(query.Cycle(5))
	if err != nil {
		t.Fatal(err)
	}
	lo, up, err = ac.RoundBounds(rat(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if lo != 2 || up != 3 {
		t.Errorf("C5 bounds = (%d, %d), want (2, 3)", lo, up)
	}
	// C3 at ε=1/3 is one-round computable.
	a3, err := Analyze(query.Cycle(3))
	if err != nil {
		t.Fatal(err)
	}
	lo, _, err = a3.RoundBounds(rat(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if lo != 1 {
		t.Errorf("C3 at ε=1/3: lower = %d, want 1", lo)
	}
}

func TestEvaluateOneRoundDefaults(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 21))
	q := query.Triangle()
	db := relation.MatchingDatabase(rng, q, 120)
	truth, err := GroundTruth(q, db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateOneRound(q, db, 27, OneRoundOptions{Epsilon: -1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != len(truth) {
		t.Errorf("answers = %d, want %d", len(res.Answers), len(truth))
	}
}

func TestEvaluateMultiRound(t *testing.T) {
	rng := rand.New(rand.NewPCG(22, 22))
	q := query.Chain(6)
	db := relation.MatchingDatabase(rng, q, 50)
	truth, err := GroundTruth(q, db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateMultiRound(q, db, 8, rat(0, 1), MultiRoundOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != len(truth) {
		t.Fatalf("answers = %d, want %d", len(res.Answers), len(truth))
	}
	for i := range truth {
		if !res.Answers[i].Equal(truth[i]) {
			t.Fatalf("answer %d mismatch", i)
		}
	}
	if res.Rounds != 3 {
		t.Errorf("rounds = %d, want ⌈log2 6⌉ = 3", res.Rounds)
	}
}
