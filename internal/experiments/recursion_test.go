package experiments

import (
	"io"
	"strings"
	"testing"
)

// TestRecursionExperiment checks the E-REC invariants at a small
// scale: the two strategies agree on the closure (enforced inside
// Recursion), the semi-naive run records a real fixpoint, and feeding
// deltas through the warm distribution beats re-shipping the closure.
func TestRecursionExperiment(t *testing.T) {
	var buf strings.Builder
	rows, err := Recursion(&buf, []int{60, 150}, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Answers < r.N {
			t.Errorf("n=%d: closure %d smaller than the edge set", r.N, r.Answers)
		}
		if r.Iterations < 1 {
			t.Errorf("n=%d: %d fixpoint iterations", r.N, r.Iterations)
		}
		if r.SemiBits <= 0 || r.NaiveBits <= 0 {
			t.Errorf("n=%d: degenerate costs semi=%d naive=%d", r.N, r.SemiBits, r.NaiveBits)
		}
		if r.Ratio <= 1 {
			t.Errorf("n=%d: semi-naive not cheaper than naive (ratio %.2f)", r.N, r.Ratio)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "E-REC") || !strings.Contains(out, "naive/semi") {
		t.Errorf("report missing headers:\n%s", out)
	}
}

// TestRecursionExperimentRejects covers the argument guards.
func TestRecursionExperimentRejects(t *testing.T) {
	if _, err := Recursion(io.Discard, []int{0}, 4, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Recursion(io.Discard, []int{100}, 0, 1); err == nil {
		t.Error("p=0 accepted")
	}
}
