package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/query"
)

func triangleQuery() *query.Query { return query.Triangle() }

func TestWireExperiment(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Wire(&buf, []int{256, 1024}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.EncodeMiBPerSec <= 0 || r.DecodeMiBPerSec <= 0 {
			t.Errorf("n=%d: non-positive throughput %+v", r.Tuples, r)
		}
		// Header (5) + round/dest (8) + name (2+1) + arity/enc/count (7)
		// + 8 bytes per packed 3-ary tuple.
		if want := 23 + 8*r.Tuples; r.FrameBytes != want {
			t.Errorf("n=%d: frame bytes %d, want %d", r.Tuples, r.FrameBytes, want)
		}
	}
	if !strings.Contains(buf.String(), "E-WIRE") {
		t.Error("report missing E-WIRE header")
	}
	if _, err := Wire(&buf, []int{0}, 5); err == nil {
		t.Error("zero-size frame accepted")
	}
}

func TestSkewExperiment(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Skew(&buf, 1500, 32, 1.1, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byKey := map[string]SkewRow{}
	for _, r := range rows {
		if !r.Complete {
			t.Errorf("%s/%s: incomplete answers", r.Input, r.Mode)
		}
		byKey[r.Input+"/"+r.Mode] = r
	}
	if byKey["zipf/resilient"].MaxLoad >= byKey["zipf/standard"].MaxLoad {
		t.Errorf("resilient (%d) should beat standard (%d) on zipf",
			byKey["zipf/resilient"].MaxLoad, byKey["zipf/standard"].MaxLoad)
	}
	if byKey["zipf/resilient"].HeavyHitters == 0 {
		t.Error("zipf input should surface heavy hitters")
	}
	if byKey["matching/resilient"].HeavyHitters != 0 {
		t.Error("matching input should have no heavy hitters")
	}
}

func TestOptimalSharesExperiment(t *testing.T) {
	var buf bytes.Buffer
	rows, err := OptimalShares(&buf, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Equal sizes: optimum matches the symmetric cover shares.
	if rows[0].OptCost != rows[0].CoverCost {
		t.Errorf("equal sizes: optimal %d != cover %d", rows[0].OptCost, rows[0].CoverCost)
	}
	// Growing imbalance: optimal strictly better, and the advantage grows.
	prevGain := 1.0
	for _, r := range rows[1:] {
		if r.OptCost > r.CoverCost {
			t.Errorf("sizes %s: optimal %d worse than cover %d", r.Sizes, r.OptCost, r.CoverCost)
		}
		gain := float64(r.CoverCost) / float64(r.OptCost)
		if gain < prevGain {
			t.Errorf("sizes %s: gain %.2f did not grow (prev %.2f)", r.Sizes, gain, prevGain)
		}
		prevGain = gain
	}
}

func TestFriedgutCheckExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := FriedgutCheck(&buf, 10, 37); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "max LHS/RHS") || !strings.Contains(out, "C3") {
		t.Errorf("output:\n%s", out)
	}
}

func TestTailExperiment(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Tail(&buf, triangleQuery(), 27, 30, 1.25, []int{300, 2400}, 43)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Concentration: the exceedance rate must not grow with n, and at
	// the largest n it should be (near) zero.
	if rows[1].ExceedRate > rows[0].ExceedRate {
		t.Errorf("exceed rate grew with n: %v → %v", rows[0].ExceedRate, rows[1].ExceedRate)
	}
	if rows[1].ExceedRate > 0.1 {
		t.Errorf("large-n exceed rate = %v, want ≈ 0", rows[1].ExceedRate)
	}
}

func TestKnowledgeExperiment(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Knowledge(&buf, 60, 40, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for i, r := range rows {
		// Lemma 3.6: known tuples track the bit fraction from below
		// (prefix costs are front-loaded).
		if r.KnownTuples > r.Fraction+0.05 {
			t.Errorf("f=%v: known tuple fraction %v exceeds f", r.Fraction, r.KnownTuples)
		}
		// Lemma 3.7: known answers below the ceiling (sampling slack).
		if r.KnownAnswer > r.Ceiling*1.7+0.15 {
			t.Errorf("f=%v: known answers %v above ceiling %v", r.Fraction, r.KnownAnswer, r.Ceiling)
		}
		if i > 0 && r.KnownTuples < rows[i-1].KnownTuples {
			t.Errorf("known tuples should grow with f")
		}
	}
	// Full bits: everything known.
	last := rows[len(rows)-1]
	if last.KnownTuples < 0.999 {
		t.Errorf("f=1 should know every tuple, got %v", last.KnownTuples)
	}
}

func TestCharts(t *testing.T) {
	var buf bytes.Buffer
	fr := []LBFractionRow{
		{P: 4, MeasuredFraction: 0.5, PredictedFraction: 0.5},
		{P: 16, MeasuredFraction: 0.24, PredictedFraction: 0.25},
		{P: 64, MeasuredFraction: 0.11, PredictedFraction: 0.125},
	}
	if err := FractionChart(&buf, fr); err != nil {
		t.Fatal(err)
	}
	ccRows := []CCRow{
		{P: 4, NMRounds: 4, H2MRounds: 3, DenseRound: 2},
		{P: 64, NMRounds: 10, H2MRounds: 5, DenseRound: 2},
		{P: 256, NMRounds: 18, H2MRounds: 6, DenseRound: 2},
	}
	if err := CCChart(&buf, ccRows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "legend") {
		t.Error("charts should include legends")
	}
}
