package experiments

// E-PIPE: the compute/communication-overlap experiment. The pipelined
// cluster (dist.Cluster.EnablePipelining) defers scatter, barrier and
// join traffic to the gather fence and streams each worker's round
// script back-to-back, so the per-round coordinator round trips that
// the bulk-synchronous schedule serializes are collapsed into one
// write burst and one read phase. This experiment measures that
// collapse as wall clock: the same query, sync versus pipelined, on
// the in-process loopback (where the fallback path makes the two
// schedules identical) and over TCP (where the streamed script wins by
// the removed synchronization points). Answers and round statistics
// are identical in all four cells by construction — only time moves.

import (
	"context"
	"fmt"
	"io"
	"net"
	"text/tabwriter"
	"time"

	"repro/internal/dist"
	"repro/internal/hypercube"
	"repro/internal/query"
	"repro/internal/relation"
)

// PipelineRow is one point of the E-PIPE experiment: sync versus
// pipelined wall clock for one pool size on one transport.
type PipelineRow struct {
	// P is the pool size.
	P int
	// Transport is "loopback" or "tcp".
	Transport string
	// SyncMillis is the best sync-schedule wall clock across trials.
	SyncMillis float64
	// PipelinedMillis is the best pipelined wall clock across trials.
	PipelinedMillis float64
	// Speedup is SyncMillis / PipelinedMillis.
	Speedup float64
}

// Pipeline runs the E-PIPE experiment: a triangle query at domain size
// n for every pool size in ps, sync and pipelined, on loopback and on
// a TCP pool (one in-process worker listener serving p sessions — the
// transport cost is real, the processes are not). The best of trials
// wall clocks are reported per cell; min-of-N is the noise-resistant
// estimator under scheduler jitter.
func Pipeline(w io.Writer, n int, ps []int, trials int, seed uint64) ([]PipelineRow, error) {
	if trials < 1 {
		trials = 1
	}
	// The identity database guarantees exactly n triangle answers, so
	// every cell moves the same tuples and produces the same output —
	// the only variable left is the communication schedule.
	q := query.Cycle(3)
	db := relation.IdentityDatabase(q, n)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go dist.Serve(ctx, ln)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "E-PIPE: triangle, n=%d, sync vs pipelined (best of %d)\n", n, trials)
	fmt.Fprintln(tw, "p\ttransport\tsync ms\tpipelined ms\tspeedup")
	var rows []PipelineRow
	for _, p := range ps {
		if p < 1 {
			return nil, fmt.Errorf("experiments: pipeline with p=%d", p)
		}
		addrs := make([]string, p)
		for i := range addrs {
			addrs[i] = ln.Addr().String()
		}
		for _, transport := range []string{"loopback", "tcp"} {
			runOnce := func(pipe bool) (time.Duration, error) {
				var tr dist.Transport
				if transport == "tcp" {
					tcp, err := dist.DialTCP(ctx, addrs)
					if err != nil {
						return 0, err
					}
					defer tcp.Close()
					tr = tcp
				}
				start := time.Now()
				res, err := hypercube.Run(q, db, p, hypercube.Options{
					Seed: seed, Transport: tr, Pipeline: pipe,
				})
				elapsed := time.Since(start)
				if err != nil {
					return 0, err
				}
				if len(res.Answers) == 0 {
					return 0, fmt.Errorf("experiments: pipeline run returned no answers")
				}
				return elapsed, nil
			}
			best := func(pipe bool) (float64, error) {
				bestD := time.Duration(0)
				for i := 0; i < trials; i++ {
					d, err := runOnce(pipe)
					if err != nil {
						return 0, err
					}
					if bestD == 0 || d < bestD {
						bestD = d
					}
				}
				return float64(bestD.Microseconds()) / 1000, nil
			}
			syncMS, err := best(false)
			if err != nil {
				return nil, err
			}
			pipeMS, err := best(true)
			if err != nil {
				return nil, err
			}
			row := PipelineRow{
				P:               p,
				Transport:       transport,
				SyncMillis:      syncMS,
				PipelinedMillis: pipeMS,
				Speedup:         syncMS / pipeMS,
			}
			rows = append(rows, row)
			fmt.Fprintf(tw, "%d\t%s\t%.2f\t%.2f\t%.2fx\n",
				row.P, row.Transport, row.SyncMillis, row.PipelinedMillis, row.Speedup)
		}
	}
	return rows, tw.Flush()
}
