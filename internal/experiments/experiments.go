// Package experiments regenerates every table and figure of Beame,
// Koutris, Suciu (PODS 2013) plus the quantitative experiments implied
// by the theorems. Each experiment writes a human-readable table to an
// io.Writer and returns structured rows so the benchmark harness and
// tests can assert on the numbers. The experiment IDs (T1, T2, F1,
// E-HC, E-LB1, E-WIT, E-MR, E-RLB, E-CC) match DESIGN.md §4.
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/big"
	"math/rand/v2"
	"text/tabwriter"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/hypercube"
	"repro/internal/localjoin"
	"repro/internal/multiround"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/theory"
	"repro/internal/witness"
)

// Table1Row is one line of the paper's Table 1.
type Table1Row struct {
	Query            string
	ExpectedAnalytic float64
	MeasuredMean     float64
	Tau              *big.Rat
	SpaceExponent    *big.Rat
	VertexCover      []*big.Rat
	ShareExponents   []*big.Rat
}

// table1Queries returns the query families of Table 1 at
// representative sizes.
func table1Queries() []*query.Query {
	return []*query.Query{
		query.Cycle(3), query.Cycle(4), query.Cycle(6),
		query.Star(3), query.Star(5),
		query.Chain(2), query.Chain(3), query.Chain(5),
		query.Binom(3, 2), query.Binom(4, 2), query.Binom(4, 3),
	}
}

// Table1 regenerates Table 1: for each running-example query it
// reports the analytic expected answer count n^{1+χ}, the measured
// mean over `trials` random matching databases, the optimal fractional
// vertex cover, share exponents, τ* and the space exponent.
func Table1(w io.Writer, n, trials int, seed uint64) ([]Table1Row, error) {
	rng := rand.New(rand.NewPCG(seed, 1))
	var rows []Table1Row
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "query\tE[|q|] analytic\tE[|q|] measured\tmin vertex cover\tshare exponents\tτ*\tspace exponent")
	for _, q := range table1Queries() {
		a, err := core.Analyze(q)
		if err != nil {
			return nil, err
		}
		analytic, err := a.ExpectedAnswers(n)
		if err != nil {
			return nil, err
		}
		total := 0
		for trial := 0; trial < trials; trial++ {
			db := relation.MatchingDatabase(rng, q, n)
			truth, err := core.GroundTruth(q, db)
			if err != nil {
				return nil, err
			}
			total += len(truth)
		}
		measured := float64(total) / float64(trials)
		row := Table1Row{
			Query:            q.Name,
			ExpectedAnalytic: analytic,
			MeasuredMean:     measured,
			Tau:              a.Tau,
			SpaceExponent:    a.SpaceExponent,
			VertexCover:      a.VertexCover,
			ShareExponents:   a.ShareExponents,
		}
		rows = append(rows, row)
		fmt.Fprintf(tw, "%s\t%.4g\t%.4g\t%s\t%s\t%s\t%s\n",
			q.Name, analytic, measured,
			ratVec(a.VertexCover), ratVec(a.ShareExponents),
			a.Tau.RatString(), a.SpaceExponent.RatString())
	}
	return rows, tw.Flush()
}

// Table2Row is one line of the paper's Table 2.
type Table2Row struct {
	Query         string
	SpaceExponent *big.Rat
	RoundsEps0    int
	PlanRounds    int
	Tradeoff      string
}

// Table2 regenerates Table 2: per query family, the space exponent,
// the number of rounds for ε = 0 (formula and the greedy plan's actual
// depth), and the rounds/space tradeoff.
func Table2(w io.Writer) ([]Table2Row, error) {
	zero := big.NewRat(0, 1)
	type entry struct {
		q        *query.Query
		formula  int
		tradeoff string
	}
	ceilLog2 := func(k int) int {
		r, pow := 0, 1
		for pow < k {
			pow *= 2
			r++
		}
		return r
	}
	entries := []entry{
		{query.Cycle(8), ceilLog2(8), "~log k / log(2/(1-ε))"},
		{query.Cycle(16), ceilLog2(16), "~log k / log(2/(1-ε))"},
		{query.Chain(8), ceilLog2(8), "~log k / log(2/(1-ε))"},
		{query.Chain(16), ceilLog2(16), "~log k / log(2/(1-ε))"},
		{query.Star(8), 1, "NA"},
		{query.SpokedWheel(4), 2, "NA"},
	}
	var rows []Table2Row
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "query\tspace exponent\trounds(ε=0) formula\trounds(ε=0) greedy plan\ttradeoff")
	for _, e := range entries {
		a, err := core.Analyze(e.q)
		if err != nil {
			return nil, err
		}
		plan, err := multiround.Build(e.q, zero)
		if err != nil {
			return nil, err
		}
		row := Table2Row{
			Query:         e.q.Name,
			SpaceExponent: a.SpaceExponent,
			RoundsEps0:    e.formula,
			PlanRounds:    plan.Rounds(),
			Tradeoff:      e.tradeoff,
		}
		rows = append(rows, row)
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\n",
			e.q.Name, a.SpaceExponent.RatString(), e.formula, plan.Rounds(), e.tradeoff)
	}
	return rows, tw.Flush()
}

// Figure1 prints the vertex-cover LP and edge-packing LP of Figure 1
// for each query, their optimal solutions, and verifies duality and
// tightness.
func Figure1(w io.Writer, queries []*query.Query) error {
	for _, q := range queries {
		fmt.Fprintf(w, "=== %s ===\n", q)
		vcLP := cover.VertexCoverLP(q)
		epLP := cover.EdgePackingLP(q)
		fmt.Fprintf(w, "vertex covering LP:\n%s", indent(vcLP.String()))
		fmt.Fprintf(w, "edge packing LP:\n%s", indent(epLP.String()))
		r, err := cover.Solve(q)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "optimal: τ* = %s (duality verified)\n", r.Tau.RatString())
		fmt.Fprintf(w, "cover:  %s (tight: %v)\n", ratVecNamed(q.Vars(), r.VertexCover), r.CoverTight())
		names := make([]string, q.NumAtoms())
		for i, a := range q.Atoms {
			names[i] = a.Name
		}
		fmt.Fprintf(w, "packing: %s (tight: %v)\n\n", ratVecNamed(names, r.EdgePacking), r.PackingTight())
	}
	return nil
}

// HCLoadRow is one point of the E-HC load experiment.
type HCLoadRow struct {
	Query       string
	N, P        int
	MaxTuples   int64
	BoundTuples float64
	Ratio       float64
	Complete    bool
}

// HCLoad measures the HyperCube maximum per-server load against the
// Proposition 3.2 bound ℓ·n/p^{1/τ*} across a p sweep, verifying that
// every answer is found.
func HCLoad(w io.Writer, q *query.Query, n int, ps []int, seed uint64) ([]HCLoadRow, error) {
	rng := rand.New(rand.NewPCG(seed, 2))
	db := relation.MatchingDatabase(rng, q, n)
	truth, err := core.GroundTruth(q, db)
	if err != nil {
		return nil, err
	}
	a, err := core.Analyze(q)
	if err != nil {
		return nil, err
	}
	tau := a.Tau
	tauF, _ := tau.Float64()
	var rows []HCLoadRow
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "E-HC: %s, n=%d (bound = ℓ·n/p^(1/τ*), τ* = %s)\n", q.Name, n, tau.RatString())
	fmt.Fprintln(tw, "p\tmax tuples/server\tbound\tratio\tall answers")
	epsF, _ := a.SpaceExponent.Float64()
	for _, p := range ps {
		res, err := hypercube.Run(q, db, p, hypercube.Options{
			Epsilon:  epsF,
			Seed:     seed,
			Strategy: localjoin.Default,
		})
		if err != nil {
			return nil, err
		}
		bound := float64(q.NumAtoms()) * hypercube.TheoreticalLoad(n, p, tauF)
		complete := len(res.Answers) == len(truth)
		row := HCLoadRow{
			Query:       q.Name,
			N:           n,
			P:           p,
			MaxTuples:   res.Stats.MaxLoadTuples(),
			BoundTuples: bound,
			Ratio:       float64(res.Stats.MaxLoadTuples()) / bound,
			Complete:    complete,
		}
		rows = append(rows, row)
		fmt.Fprintf(tw, "%d\t%d\t%.1f\t%.2f\t%v\n", p, row.MaxTuples, bound, row.Ratio, complete)
	}
	return rows, tw.Flush()
}

// LBFractionRow is one point of the E-LB1 experiment.
type LBFractionRow struct {
	P                 int
	MeasuredFraction  float64
	PredictedFraction float64
}

// LBFraction runs the Proposition 3.11 sampled algorithm below the
// space exponent and compares the measured answer fraction with the
// Theorem 3.3 ceiling 1/p^{τ*(1−ε)−1}.
func LBFraction(w io.Writer, q *query.Query, n int, eps float64, ps []int, trials int, seed uint64) ([]LBFractionRow, error) {
	rng := rand.New(rand.NewPCG(seed, 3))
	var rows []LBFractionRow
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "E-LB1: %s at ε=%.3f, n=%d (%d trials)\n", q.Name, eps, n, trials)
	fmt.Fprintln(tw, "p\tmeasured fraction\ttheoretical ceiling 1/p^(τ*(1-ε)-1)")
	for _, p := range ps {
		foundSum, truthSum := 0, 0
		for trial := 0; trial < trials; trial++ {
			db := relation.MatchingDatabase(rng, q, n)
			truth, err := core.GroundTruth(q, db)
			if err != nil {
				return nil, err
			}
			res, err := hypercube.RunSampled(q, db, p, hypercube.Options{
				Epsilon: eps,
				Seed:    rng.Uint64(),
			})
			if err != nil {
				return nil, err
			}
			foundSum += len(res.Answers)
			truthSum += len(truth)
		}
		measured := 0.0
		if truthSum > 0 {
			measured = float64(foundSum) / float64(truthSum)
		}
		predicted, err := theory.OneRoundFraction(q, eps, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LBFractionRow{P: p, MeasuredFraction: measured, PredictedFraction: predicted})
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\n", p, measured, predicted)
	}
	return rows, tw.Flush()
}

// WitnessRow is one point of the E-WIT experiment.
type WitnessRow struct {
	P           int
	Eps         float64
	SuccessProb float64
}

// Witness runs the Proposition 3.12 JOIN-WITNESS experiment: the
// conditional success probability of the one-round algorithm across p,
// for ε below and at the 1/2 threshold.
func Witness(w io.Writer, n int, ps []int, epss []float64, trials int, seed uint64) ([]WitnessRow, error) {
	var rows []WitnessRow
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "E-WIT: n=%d, %d trials per cell\n", n, trials)
	fmt.Fprintln(tw, "p\tε\tP[witness found | witness exists]")
	for _, eps := range epss {
		for _, p := range ps {
			rng := rand.New(rand.NewPCG(seed, uint64(p)*1000+uint64(eps*100)))
			prob, err := witness.SuccessProbability(rng, n, p, eps, trials)
			if err != nil {
				return nil, err
			}
			rows = append(rows, WitnessRow{P: p, Eps: eps, SuccessProb: prob})
			fmt.Fprintf(tw, "%d\t%.2f\t%.3f\n", p, eps, prob)
		}
	}
	return rows, tw.Flush()
}

// RoundsRow is one point of the E-MR experiment.
type RoundsRow struct {
	Query      string
	Eps        *big.Rat
	PlanRounds int
	Executed   int
	Lower      int
	Upper      int
	Complete   bool
}

// Rounds builds and executes Γ^r_ε plans for chain queries across ε,
// checking that the executed round count matches ⌈log_{kε} k⌉ and
// that all answers are found.
func Rounds(w io.Writer, ks []int, epss []*big.Rat, n, p int, seed uint64) ([]RoundsRow, error) {
	rng := rand.New(rand.NewPCG(seed, 4))
	var rows []RoundsRow
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "E-MR: chain queries, n=%d, p=%d\n", n, p)
	fmt.Fprintln(tw, "query\tε\tlower\tplan\texecuted\tupper\tcomplete")
	for _, k := range ks {
		q := query.Chain(k)
		db := relation.MatchingDatabase(rng, q, n)
		truth, err := core.GroundTruth(q, db)
		if err != nil {
			return nil, err
		}
		for _, eps := range epss {
			plan, err := multiround.Build(q, eps)
			if err != nil {
				return nil, err
			}
			res, err := multiround.Execute(plan, db, p, multiround.Options{Seed: seed})
			if err != nil {
				return nil, err
			}
			lower, err := theory.RoundsLowerBound(q, eps)
			if err != nil {
				return nil, err
			}
			upper, err := theory.RoundsUpperBound(q, eps)
			if err != nil {
				return nil, err
			}
			complete := len(res.Answers) == len(truth)
			rows = append(rows, RoundsRow{
				Query: q.Name, Eps: eps, PlanRounds: plan.Rounds(),
				Executed: res.Rounds, Lower: lower, Upper: upper, Complete: complete,
			})
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%v\n",
				q.Name, eps.RatString(), lower, plan.Rounds(), res.Rounds, upper, complete)
		}
	}
	return rows, tw.Flush()
}

// RoundBoundsRow is one line of the E-RLB experiment.
type RoundBoundsRow struct {
	Query     string
	Eps       *big.Rat
	PlanLower int // certified by the (ε,r)-plan construction
	Formula   int // closed-form lower bound
	Upper     int
}

// RoundBounds verifies the (ε,r)-plan constructions of Lemmas 4.6/4.9
// and tabulates certified lower bounds against the closed forms and
// the Lemma 4.3 upper bounds.
func RoundBounds(w io.Writer, epss []*big.Rat) ([]RoundBoundsRow, error) {
	var rows []RoundBoundsRow
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "E-RLB: (ε,r)-plan certificates (Theorem 4.5 / Lemmas 4.6, 4.9)")
	fmt.Fprintln(tw, "query\tε\tplan lower\tformula lower\tupper")
	for _, eps := range epss {
		ke, err := theory.KEpsilon(eps)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{ke + 1, 2 * ke, 3*ke + 1, ke * ke * 2} {
			plan, err := theory.ChainPlan(k, eps)
			if err != nil {
				return nil, err
			}
			if _, err := plan.Verify(eps); err != nil {
				return nil, fmt.Errorf("chain plan L%d: %w", k, err)
			}
			formula, err := theory.ChainRoundsLower(k, eps)
			if err != nil {
				return nil, err
			}
			upper, err := theory.RoundsUpperBound(query.Chain(k), eps)
			if err != nil {
				return nil, err
			}
			rows = append(rows, RoundBoundsRow{
				Query: fmt.Sprintf("L%d", k), Eps: eps,
				PlanLower: plan.LowerBound(), Formula: formula, Upper: upper,
			})
			fmt.Fprintf(tw, "L%d\t%s\t%d\t%d\t%d\n", k, eps.RatString(), plan.LowerBound(), formula, upper)
		}
		me, err := theory.MEpsilon(eps)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{me + 1, 4 * me, 8 * me} {
			plan, err := theory.CyclePlan(k, eps)
			if err != nil {
				return nil, err
			}
			if _, err := plan.Verify(eps); err != nil {
				return nil, fmt.Errorf("cycle plan C%d: %w", k, err)
			}
			formula, err := theory.CycleRoundsLower(k, eps)
			if err != nil {
				return nil, err
			}
			upper, err := theory.RoundsUpperBound(query.Cycle(k), eps)
			if err != nil {
				return nil, err
			}
			rows = append(rows, RoundBoundsRow{
				Query: fmt.Sprintf("C%d", k), Eps: eps,
				PlanLower: plan.LowerBound(), Formula: formula, Upper: upper,
			})
			fmt.Fprintf(tw, "C%d\t%s\t%d\t%d\t%d\n", k, eps.RatString(), plan.LowerBound(), formula, upper)
		}
	}
	return rows, tw.Flush()
}

// CCRow is one point of the E-CC experiment.
type CCRow struct {
	P          int
	Layers     int
	NMRounds   int
	H2MRounds  int
	DenseRound int
	LowerLogP  float64
}

// CC runs connected components on the Theorem 4.10 layered family with
// k = ⌊p^δ⌋ layers (δ = 1/2 for ε = 0), reporting rounds for
// neighbor-min, hash-to-min, and the dense two-round contrast.
func CC(w io.Writer, ps []int, width int, seed uint64) ([]CCRow, error) {
	rng := rand.New(rand.NewPCG(seed, 5))
	var rows []CCRow
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "E-CC: layered graphs, k = ⌊√p⌋ layers (Theorem 4.10)")
	fmt.Fprintln(tw, "p\tlayers\tneighbor-min rounds\thash-to-min rounds\tdense rounds\tlog2 p")
	for _, p := range ps {
		layers := int(math.Sqrt(float64(p)))
		if layers < 2 {
			layers = 2
		}
		g, err := cc.Layered(rng, layers, width)
		if err != nil {
			return nil, err
		}
		truth := cc.SequentialComponents(g)
		nm, err := cc.Run(g, cc.NeighborMin, cc.Options{Workers: p, Epsilon: 0.5, Seed: seed})
		if err != nil {
			return nil, err
		}
		h2m, err := cc.Run(g, cc.HashToMin, cc.Options{Workers: p, Epsilon: 0.5, Seed: seed})
		if err != nil {
			return nil, err
		}
		dense, err := cc.DenseTwoRound(g, cc.Options{Workers: p, Epsilon: 1, Seed: seed})
		if err != nil {
			return nil, err
		}
		for v, l := range truth {
			if nm.Labels[v] != l || h2m.Labels[v] != l || dense.Labels[v] != l {
				return nil, fmt.Errorf("cc experiment: wrong label for vertex %d at p=%d", v, p)
			}
		}
		rows = append(rows, CCRow{
			P: p, Layers: layers,
			NMRounds: nm.Rounds, H2MRounds: h2m.Rounds, DenseRound: dense.Rounds,
			LowerLogP: math.Log2(float64(p)),
		})
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.1f\n",
			p, layers, nm.Rounds, h2m.Rounds, dense.Rounds, math.Log2(float64(p)))
	}
	return rows, tw.Flush()
}

func ratVec(rs []*big.Rat) string {
	out := "("
	for i, r := range rs {
		if i > 0 {
			out += ","
		}
		out += r.RatString()
	}
	return out + ")"
}

func ratVecNamed(names []string, rs []*big.Rat) string {
	out := ""
	for i, r := range rs {
		if i > 0 {
			out += " "
		}
		out += names[i] + "=" + r.RatString()
	}
	return out
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += "  " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
