package experiments

// E-DELTA: the incremental-maintenance experiment. A hypercube
// distribution routes every tuple to the grid points that could need
// it, and that routing is a pure per-tuple function — so maintaining
// the distribution under a one-tuple change costs exactly the tuple's
// replication factor, independent of the database size. This
// experiment measures that claim against the alternative the rest of
// the world uses: throw the answer away and re-join from scratch. For
// each (n, p) cell it builds a maintained triangle distribution,
// applies a single-tuple append, and compares the maintenance bits
// against a full cold re-join of the post-delta database. The ratio
// is the paper's argument in one number: re-join moves Θ(n·fanout)
// tuples, maintenance moves fanout.

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/hypercube"
	"repro/internal/query"
	"repro/internal/relation"
)

// DeltaRow is one point of the E-DELTA experiment: single-tuple
// maintenance cost versus full re-join cost for one database size and
// pool size.
type DeltaRow struct {
	// N is the per-relation database size.
	N int
	// P is the number of servers.
	P int
	// Fanout is the changed atom's replication factor — the per-tuple
	// maintenance bound.
	Fanout int
	// MaintTuples is the number of delta tuple receipts the
	// maintenance batch caused across workers (≤ Fanout for a
	// single-tuple batch).
	MaintTuples int64
	// MaintBits is the communication the maintenance batch cost.
	MaintBits int64
	// RejoinBits is the communication a full cold re-join of the
	// post-delta database costs (scatter + join + gather).
	RejoinBits int64
	// Ratio is RejoinBits / MaintBits — how much cheaper maintaining
	// the view is than recomputing it.
	Ratio float64
}

// Delta runs the E-DELTA experiment: a triangle query over the
// identity database at every size in ns, maintained on every pool
// size in ps. Each cell appends one fresh tuple to S1 through the
// maintainer and cross-checks the warm answer count against the cold
// re-join before comparing their communication costs.
func Delta(w io.Writer, ns []int, ps []int, seed uint64) ([]DeltaRow, error) {
	q := query.Cycle(3)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "E-DELTA: triangle, single-tuple append, maintenance vs full re-join")
	fmt.Fprintln(tw, "n\tp\tfanout\tmaint tuples\tmaint bits\tre-join bits\tre-join/maint")
	var rows []DeltaRow
	for _, n := range ns {
		if n < 2 {
			return nil, fmt.Errorf("experiments: delta with n=%d, need ≥ 2", n)
		}
		// The identity database has exactly n triangles, all of the
		// form (i,i,i); the appended S1 tuple (1,2) is in-domain,
		// absent, and closes no triangle, so the warm answer set must
		// stay at n — a maintenance bug shows up as a count drift
		// against the cold re-join.
		db := relation.IdentityDatabase(q, n)
		fresh := relation.Tuple{1, 2}
		delta := relation.Delta{Appends: map[string][]relation.Tuple{"S1": {fresh}}}
		ndb, effects, err := relation.ApplyDelta(db, delta)
		if err != nil {
			return nil, err
		}
		for _, p := range ps {
			if p < 1 {
				return nil, fmt.Errorf("experiments: delta with p=%d", p)
			}
			row, err := deltaCell(q, db, ndb, effects, n, p, seed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *row)
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%.1f×\n",
				row.N, row.P, row.Fanout, row.MaintTuples, row.MaintBits, row.RejoinBits, row.Ratio)
		}
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	return rows, nil
}

// deltaCell measures one (n, p) cell: maintain the warm distribution
// of db under effects, cold re-join ndb, and compare the two costs.
func deltaCell(q *query.Query, db, ndb *relation.Database, effects map[string]relation.Effect, n, p int, seed uint64) (*DeltaRow, error) {
	opts := hypercube.Options{Seed: seed}
	m, err := hypercube.NewMaintainer(q, db, p, opts)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	rep, err := m.ApplyDelta(effects)
	if err != nil {
		return nil, err
	}
	fanout := m.Fanout("S1")
	if rep.RoutedTuples > int64(fanout) {
		return nil, fmt.Errorf("experiments: delta n=%d p=%d routed %d tuples, above the replication factor %d",
			n, p, rep.RoutedTuples, fanout)
	}
	cold, err := hypercube.Run(q, ndb, p, opts)
	if err != nil {
		return nil, err
	}
	if got, want := len(m.Answers()), len(cold.Answers); got != want {
		return nil, fmt.Errorf("experiments: delta n=%d p=%d maintained %d answers, cold re-join found %d",
			n, p, got, want)
	}
	row := &DeltaRow{
		N:           n,
		P:           p,
		Fanout:      fanout,
		MaintTuples: rep.RoutedTuples,
		MaintBits:   rep.Bits,
		RejoinBits:  cold.Stats.TotalBits(),
	}
	if row.MaintBits > 0 {
		row.Ratio = float64(row.RejoinBits) / float64(row.MaintBits)
	}
	return row, nil
}
