package experiments

import (
	"io"
	"strings"
	"testing"
)

// TestDeltaExperiment checks the E-DELTA invariants at a small scale:
// every cell routes at most the replication factor for the one-tuple
// batch, and maintenance already beats the full re-join.
func TestDeltaExperiment(t *testing.T) {
	var buf strings.Builder
	rows, err := Delta(&buf, []int{200, 1000}, []int{4, 16}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Fanout < 1 {
			t.Errorf("n=%d p=%d: fanout %d", r.N, r.P, r.Fanout)
		}
		if r.MaintTuples > int64(r.Fanout) {
			t.Errorf("n=%d p=%d: routed %d tuples above fanout %d", r.N, r.P, r.MaintTuples, r.Fanout)
		}
		if r.MaintBits <= 0 || r.RejoinBits <= 0 {
			t.Errorf("n=%d p=%d: degenerate costs maint=%d rejoin=%d", r.N, r.P, r.MaintBits, r.RejoinBits)
		}
		if r.Ratio <= 1 {
			t.Errorf("n=%d p=%d: maintenance not cheaper than re-join (ratio %.2f)", r.N, r.P, r.Ratio)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "E-DELTA") || !strings.Contains(out, "re-join/maint") {
		t.Errorf("report missing headers:\n%s", out)
	}
}

// TestDeltaExperimentRejects covers the argument guards.
func TestDeltaExperimentRejects(t *testing.T) {
	if _, err := Delta(io.Discard, []int{0}, []int{4}, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Delta(io.Discard, []int{100}, []int{0}, 1); err == nil {
		t.Error("p=0 accepted")
	}
}
