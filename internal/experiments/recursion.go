package experiments

// E-REC: the recursion experiment. Semi-naive evaluation is the
// communication argument for the Datalog front end: a naive fixpoint
// re-ships the entire accumulated result through the join at every
// iteration, while the semi-naive loop runs the cold hypercube join
// once and then feeds only the per-iteration delta through the warm
// maintained distribution. On power-law graphs — where reachability
// converges in few iterations but the closure dwarfs the edge set —
// the gap is the whole point. Each cell evaluates transitive closure
// both ways over the same Zipf-targeted random graph and compares
// total communication and round counts; the answer sets must agree
// exactly before any number is reported.

import (
	"fmt"
	"io"
	"math/rand/v2"
	"text/tabwriter"

	"repro/internal/datalog"
	"repro/internal/hypercube"
	"repro/internal/query"
	"repro/internal/relation"
)

// RecursionRow is one cell of the E-REC experiment.
type RecursionRow struct {
	// N is the edge count of the generated power-law graph.
	N int
	// P is the number of servers.
	P int
	// Answers is the size of the transitive closure.
	Answers int
	// Iterations is the semi-naive fixpoint iteration count.
	Iterations int
	// SemiRounds and SemiBits are the semi-naive run's communication
	// record (cold hypercube run plus every warm delta batch).
	SemiRounds int
	SemiBits   int64
	// NaiveRounds and NaiveBits are the naive fixpoint's record: a
	// full cold join of e against the entire accumulated closure at
	// every iteration until nothing new appears.
	NaiveRounds int
	NaiveBits   int64
	// Ratio is NaiveBits / SemiBits — what feeding deltas through the
	// warm distribution saves over re-shipping the world.
	Ratio float64
}

// recursionProgram is the reachability program both strategies answer.
const recursionProgram = "tc(x,y) :- e(x,y).\ntc(x,z) :- tc(x,y), e(y,z)."

// Recursion runs the E-REC experiment: transitive closure over
// power-law graphs of the given edge counts on a p-server cluster,
// semi-naive versus naive re-evaluation.
func Recursion(w io.Writer, sizes []int, p int, seed uint64) ([]RecursionRow, error) {
	if p < 1 {
		return nil, fmt.Errorf("experiments: recursion with p=%d", p)
	}
	prog, err := datalog.Parse(recursionProgram)
	if err != nil {
		return nil, err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "E-REC: transitive closure on power-law graphs, semi-naive vs naive fixpoint")
	fmt.Fprintln(tw, "edges\tp\tclosure\titers\tsemi rounds\tsemi bits\tnaive rounds\tnaive bits\tnaive/semi")
	var rows []RecursionRow
	for _, n := range sizes {
		if n < 2 {
			return nil, fmt.Errorf("experiments: recursion with n=%d, need ≥ 2", n)
		}
		db := relation.NewDatabase(n)
		db.AddRelation(relation.SkewedZipf(rand.New(rand.NewPCG(seed, uint64(n))), "e", []string{"y", "x"}, n, 1.2))

		semi, err := datalog.Eval(prog, db, datalog.Options{P: p, Seed: seed})
		if err != nil {
			return nil, err
		}
		naiveAnswers, naiveRounds, naiveBits, err := naiveClosure(db, p, seed)
		if err != nil {
			return nil, err
		}
		if got, want := len(semi.Answers), naiveAnswers; got != want {
			return nil, fmt.Errorf("experiments: recursion n=%d p=%d semi-naive found %d pairs, naive found %d",
				n, p, got, want)
		}
		row := RecursionRow{
			N:           n,
			P:           p,
			Answers:     len(semi.Answers),
			Iterations:  semi.Iterations,
			SemiRounds:  semi.Stats.NumRounds(),
			SemiBits:    semi.Stats.TotalBits(),
			NaiveRounds: naiveRounds,
			NaiveBits:   naiveBits,
		}
		if row.SemiBits > 0 {
			row.Ratio = float64(row.NaiveBits) / float64(row.SemiBits)
		}
		rows = append(rows, row)
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f×\n",
			row.N, row.P, row.Answers, row.Iterations,
			row.SemiRounds, row.SemiBits, row.NaiveRounds, row.NaiveBits, row.Ratio)
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	return rows, nil
}

// naiveClosure is the strategy E-REC argues against: every iteration
// cold-joins the whole accumulated closure against e, paying a full
// scatter of both sides each time, until a pass derives nothing new.
func naiveClosure(db *relation.Database, p int, seed uint64) (answers, rounds int, bits int64, err error) {
	edges, ok := db.Relation("e")
	if !ok {
		return 0, 0, 0, fmt.Errorf("experiments: naive closure needs relation e")
	}
	q, err := query.New("tc", query.Atom{Name: "tc", Vars: []string{"x", "y"}}, query.Atom{Name: "e", Vars: []string{"y", "z"}})
	if err != nil {
		return 0, 0, 0, err
	}
	known := make([]relation.Tuple, len(edges.Tuples))
	for i, t := range edges.Tuples {
		known[i] = append(relation.Tuple(nil), t...)
	}
	known = relation.DedupSort(known)
	for {
		step := relation.NewDatabase(db.N)
		step.AddRelation(edges)
		tc := relation.New("tc", "x", "y")
		tc.Tuples = known
		step.AddRelation(tc)
		res, err := hypercube.Run(q, step, p, hypercube.Options{Seed: seed})
		if err != nil {
			return 0, 0, 0, err
		}
		rounds += res.Stats.NumRounds()
		bits += res.Stats.TotalBits()
		// Project q's (x,y,z) answers onto (x,z) and fold into the
		// closure; a pass that grows nothing is the fixpoint.
		next := make([]relation.Tuple, 0, len(res.Answers))
		for _, t := range res.Answers {
			next = append(next, relation.Tuple{t[0], t[2]})
		}
		merged := relation.DedupSort(append(next, known...))
		if len(merged) == len(known) {
			return len(known), rounds, bits, nil
		}
		known = merged
	}
}
