package experiments

// Extension experiments beyond the paper's tables and figures: the
// skew discussion of Sections 2.5/3.3 made quantitative, the
// Afrati-Ullman size-aware share optimization HC builds on, a
// numerical verification of Friedgut's inequality (Section 2.6), and
// ASCII charts for the two headline decay curves.

import (
	"bytes"
	"fmt"
	"io"
	"math/big"
	"math/rand/v2"
	"text/tabwriter"
	"time"

	"repro/internal/cover"
	"repro/internal/exchange"
	"repro/internal/friedgut"
	"repro/internal/hypercube"
	"repro/internal/knowledge"
	"repro/internal/mpc"
	"repro/internal/plot"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/skew"
	"repro/internal/theory"
	"repro/internal/wire"
)

// WireRow is one point of the E-WIRE experiment: throughput of the
// distributed runtime's wire codec (internal/wire) on the columnar
// data frame — the serialization cost a TCP shuffle adds on top of
// the in-process loopback.
type WireRow struct {
	// Tuples is the packed tuple count of the encoded buffer.
	Tuples int
	// FrameBytes is the encoded frame size.
	FrameBytes int
	// EncodeMiBPerSec is serialization throughput.
	EncodeMiBPerSec float64
	// DecodeMiBPerSec is deserialization throughput (including the
	// validating buffer reconstruction).
	DecodeMiBPerSec float64
}

// Wire measures encode and decode throughput of the wire format's
// columnar data frame for each buffer size: 3-ary packed tuples (the
// triangle-scatter shape), repeated enough times to smooth timer
// noise.
func Wire(w io.Writer, sizes []int, seed uint64) ([]WireRow, error) {
	rng := rand.New(rand.NewPCG(seed, 0x33))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "E-WIRE: wire codec throughput, packed 3-ary data frames")
	fmt.Fprintln(tw, "tuples\tframe bytes\tencode MiB/s\tdecode MiB/s")
	var rows []WireRow
	for _, n := range sizes {
		if n < 1 {
			return nil, fmt.Errorf("experiments: wire frame of %d tuples", n)
		}
		buf := exchange.NewBuffer(3)
		row := make(relation.Tuple, 3)
		for i := 0; i < n; i++ {
			for j := range row {
				row[j] = rng.IntN(1 << 20)
			}
			buf.Append(row)
		}
		buf.Seal()
		frame := &wire.Frame{Type: wire.TypeData, Data: wire.Data{Round: 1, Rel: "R", Buf: buf}}
		var enc bytes.Buffer
		if err := wire.Encode(&enc, frame); err != nil {
			return nil, err
		}
		reps := 2_000_000 / n
		if reps < 3 {
			reps = 3
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := wire.Encode(io.Discard, frame); err != nil {
				return nil, err
			}
		}
		encSec := time.Since(start).Seconds()
		start = time.Now()
		for i := 0; i < reps; i++ {
			if _, err := wire.Decode(bytes.NewReader(enc.Bytes())); err != nil {
				return nil, err
			}
		}
		decSec := time.Since(start).Seconds()
		mib := float64(enc.Len()) * float64(reps) / (1 << 20)
		r := WireRow{
			Tuples:          n,
			FrameBytes:      enc.Len(),
			EncodeMiBPerSec: mib / encSec,
			DecodeMiBPerSec: mib / decSec,
		}
		rows = append(rows, r)
		fmt.Fprintf(tw, "%d\t%d\t%.1f\t%.1f\n", r.Tuples, r.FrameBytes, r.EncodeMiBPerSec, r.DecodeMiBPerSec)
	}
	return rows, tw.Flush()
}

// SkewRow is one point of the E-SKEW experiment.
type SkewRow struct {
	Input        string
	Mode         string
	MaxLoad      int64
	HeavyHitters int
	IdealLoad    float64
	Complete     bool
}

// Skew contrasts standard hash partitioning with the heavy-hitter
// resilient discipline on the binary join R(x,y) ⋈ S(y,z): Zipf inputs
// versus matching (skew-free) controls.
func Skew(w io.Writer, n, p int, zipfS float64, seed uint64) ([]SkewRow, error) {
	rng := rand.New(rand.NewPCG(seed, 6))
	var rows []SkewRow
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "E-SKEW: R(x,y) ⋈ S(y,z), n=%d, p=%d, Zipf(s=%.2f)\n", n, p, zipfS)
	fmt.Fprintln(tw, "input\tmode\tmax load (tuples)\theavy hitters\tideal 2n/p\tcomplete")
	ideal := 2 * float64(n) / float64(p)
	type inputCase struct {
		name string
		r, s *relation.Relation
	}
	zr, zs := skew.ZipfJoinInput(rng, n, zipfS)
	mr, ms := skew.MatchingJoinInput(rng, n)
	for _, in := range []inputCase{{"zipf", zr, zs}, {"matching", mr, ms}} {
		truth, err := skew.GroundTruth(in.r, in.s)
		if err != nil {
			return nil, err
		}
		for _, mode := range []skew.Mode{skew.Standard, skew.Resilient} {
			res, err := skew.RunJoin(in.r, in.s, p, mode, skew.Options{Seed: seed})
			if err != nil {
				return nil, err
			}
			complete := len(res.Answers) == len(truth)
			row := SkewRow{
				Input:        in.name,
				Mode:         mode.String(),
				MaxLoad:      res.MaxLoadTuples,
				HeavyHitters: len(res.Heavy),
				IdealLoad:    ideal,
				Complete:     complete,
			}
			rows = append(rows, row)
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.0f\t%v\n",
				in.name, mode, res.MaxLoadTuples, len(res.Heavy), ideal, complete)
		}
	}
	return rows, tw.Flush()
}

// OptimalSharesRow is one point of the E-OPT experiment.
type OptimalSharesRow struct {
	Sizes     string
	CoverCost int64
	OptCost   int64
	Shares    string
}

// OptimalShares compares vertex-cover shares with size-aware optimal
// shares across cardinality ratios on the cartesian-product query (the
// drug-interaction workload).
func OptimalShares(w io.Writer, p int) ([]OptimalSharesRow, error) {
	q := query.CartesianPair()
	var rows []OptimalSharesRow
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "E-OPT: size-aware shares vs cover shares for R(x)×S(y), p=%d\n", p)
	fmt.Fprintln(tw, "|R|,|S|\tcover-shares cost\toptimal cost\toptimal shares")
	coverShares, err := hypercube.SharesForQuery(q, p, hypercube.GreedyRounding)
	if err != nil {
		return nil, err
	}
	for _, sz := range []struct{ r, s int }{
		{1000, 1000}, {1000, 4000}, {1000, 16000}, {1000, 64000},
	} {
		sizes := map[string]int{"R": sz.r, "S": sz.s}
		coverCost, err := hypercube.CommunicationCost(q, coverShares, sizes)
		if err != nil {
			return nil, err
		}
		opt, err := hypercube.OptimalSharesForSizes(q, sizes, p)
		if err != nil {
			return nil, err
		}
		optCost, err := hypercube.CommunicationCost(q, opt, sizes)
		if err != nil {
			return nil, err
		}
		row := OptimalSharesRow{
			Sizes:     fmt.Sprintf("%d,%d", sz.r, sz.s),
			CoverCost: coverCost,
			OptCost:   optCost,
			Shares:    opt.String(),
		}
		rows = append(rows, row)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\n", row.Sizes, coverCost, optCost, opt)
	}
	return rows, tw.Flush()
}

// FriedgutCheck numerically verifies Friedgut's inequality on random
// weighted instances of the running-example queries and the AGM size
// bound on matching databases (experiment E-FRIED).
func FriedgutCheck(w io.Writer, trials int, seed uint64) error {
	rng := rand.New(rand.NewPCG(seed, 7))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "E-FRIED: Friedgut's inequality (Section 2.6), random weights")
	fmt.Fprintln(tw, "query\tcover\ttrials\tmax LHS/RHS")
	cases := []struct {
		q     *query.Query
		cover []*big.Rat
		desc  string
	}{
		{query.Triangle(), []*big.Rat{big.NewRat(1, 2), big.NewRat(1, 2), big.NewRat(1, 2)}, "(1/2,1/2,1/2)"},
		{query.Chain(3), []*big.Rat{big.NewRat(1, 1), big.NewRat(0, 1), big.NewRat(1, 1)}, "(1,0,1)"},
		{query.Star(3), []*big.Rat{big.NewRat(1, 1), big.NewRat(1, 1), big.NewRat(1, 1)}, "(1,1,1)"},
	}
	for _, c := range cases {
		worst := 0.0
		for trial := 0; trial < trials; trial++ {
			ws := map[string]*friedgut.Weights{}
			for _, a := range c.q.Atoms {
				wt := friedgut.NewWeights(a.Arity())
				for i := 0; i < 5+rng.IntN(40); i++ {
					tp := make(relation.Tuple, a.Arity())
					for j := range tp {
						tp[j] = rng.IntN(12) + 1
					}
					if err := wt.Set(tp, rng.Float64()*2); err != nil {
						return err
					}
				}
				ws[a.Name] = wt
			}
			lhs, rhs, err := friedgut.Verify(c.q, ws, c.cover, 1e-9)
			if err != nil {
				return err
			}
			if rhs > 0 && lhs/rhs > worst {
				worst = lhs / rhs
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.4f\n", c.q.Name, c.desc, trials, worst)
	}
	return tw.Flush()
}

// TailRow is one point of the E-TAIL experiment.
type TailRow struct {
	N             int
	Trials        int
	MeanLoad      float64
	ExceedRate    float64 // fraction of trials with max load > threshold·mean
	ThresholdLoad float64
}

// Tail measures the concentration behind Proposition 3.2's failure
// probability η ≤ exp(−O(n/p^{1−ε})): the probability (over hash
// choices) that the HyperCube max load exceeds factor × the expected
// per-server load ℓ·n/p^{1/τ*} shrinks rapidly as n grows (relative
// fluctuations are Θ(1/√(n/p^{1/τ*}))).
func Tail(w io.Writer, q *query.Query, p, trials int, factor float64, ns []int, seed uint64) ([]TailRow, error) {
	rng := rand.New(rand.NewPCG(seed, 8))
	a, err := cover.Solve(q)
	if err != nil {
		return nil, err
	}
	epsF, _ := a.SpaceExponent().Float64()
	tauF := a.TauFloat()
	var rows []TailRow
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "E-TAIL: %s, p=%d, %d hash draws per n, threshold %.2f×expected (ℓ·n/p^(1/τ*))\n",
		q.Name, p, trials, factor)
	fmt.Fprintln(tw, "n\tmean max load\tthreshold\tP[max load > threshold]")
	for _, n := range ns {
		db := relation.MatchingDatabase(rng, q, n)
		expected := float64(q.NumAtoms()) * hypercube.TheoreticalLoad(n, p, tauF)
		threshold := factor * expected
		loads := make([]float64, trials)
		sum := 0.0
		for trial := 0; trial < trials; trial++ {
			res, err := hypercube.Run(q, db, p, hypercube.Options{
				Epsilon: epsF,
				Seed:    rng.Uint64(),
			})
			if err != nil {
				return nil, err
			}
			loads[trial] = float64(res.Stats.MaxLoadTuples())
			sum += loads[trial]
		}
		mean := sum / float64(trials)
		exceed := 0
		for _, l := range loads {
			if l > threshold {
				exceed++
			}
		}
		row := TailRow{
			N:             n,
			Trials:        trials,
			MeanLoad:      mean,
			ExceedRate:    float64(exceed) / float64(trials),
			ThresholdLoad: threshold,
		}
		rows = append(rows, row)
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.3f\n", n, mean, threshold, row.ExceedRate)
	}
	return rows, tw.Flush()
}

// KnowledgeRow is one point of the E-KNOW experiment.
type KnowledgeRow struct {
	Fraction    float64
	KnownTuples float64 // mean |K(S_j)|/n across relations
	KnownAnswer float64 // mean known answers
	Ceiling     float64 // Lemma 3.7 ceiling Π f^{u_j}·E[|q|]
}

// Knowledge runs the Section 3.2 information experiment on C3: servers
// receive a fraction f of each matching's bits under the prefix
// encoding; the known tuples track f·n (Lemma 3.6) and the known
// answers stay below the tight-packing ceiling (Lemma 3.7).
func Knowledge(w io.Writer, n, trials int, seed uint64) ([]KnowledgeRow, error) {
	q := query.Triangle()
	cr, err := cover.Solve(q)
	if err != nil {
		return nil, err
	}
	packing := make([]float64, q.NumAtoms())
	for j, u := range cr.EdgePacking {
		packing[j], _ = u.Float64()
	}
	expected, err := theory.ExpectedAnswers(q, n)
	if err != nil {
		return nil, err
	}
	var rows []KnowledgeRow
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "E-KNOW: C3, n=%d, %d trials — bit-budgeted knowledge (Lemmas 3.6/3.7)\n", n, trials)
	fmt.Fprintln(tw, "f (bit fraction)\tknown tuples /n\tknown answers (mean)\tceiling Πf^u·E[|q|]")
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		rng := rand.New(rand.NewPCG(seed, uint64(frac*1000)))
		tupleFrac, answerSum := 0.0, 0.0
		for trial := 0; trial < trials; trial++ {
			db := relation.MatchingDatabase(rng, q, n)
			known := map[string][]relation.Tuple{}
			for _, a := range q.Atoms {
				rel, _ := db.Relation(a.Name)
				k, err := knowledge.FractionKnowledge(rel, n, frac)
				if err != nil {
					return nil, err
				}
				known[a.Name] = k
				tupleFrac += float64(len(k)) / float64(n) / float64(q.NumAtoms())
			}
			ans, err := knowledge.KnownAnswers(q, known)
			if err != nil {
				return nil, err
			}
			answerSum += float64(len(ans))
		}
		fracs := []float64{frac, frac, frac}
		ceiling, err := knowledge.AnswerBound(q, fracs, packing, expected)
		if err != nil {
			return nil, err
		}
		row := KnowledgeRow{
			Fraction:    frac,
			KnownTuples: tupleFrac / float64(trials),
			KnownAnswer: answerSum / float64(trials),
			Ceiling:     ceiling,
		}
		rows = append(rows, row)
		fmt.Fprintf(tw, "%.1f\t%.3f\t%.3f\t%.3f\n", frac, row.KnownTuples, row.KnownAnswer, ceiling)
	}
	return rows, tw.Flush()
}

// FractionChart renders the E-LB1 decay as a log-log ASCII chart.
func FractionChart(w io.Writer, rows []LBFractionRow) error {
	c := plot.New("answer fraction vs p (log-log): measured (o) vs Thm 3.3 ceiling (+)")
	c.LogX, c.LogY = true, true
	var xs, measured, predicted []float64
	for _, r := range rows {
		xs = append(xs, float64(r.P))
		measured = append(measured, r.MeasuredFraction)
		predicted = append(predicted, r.PredictedFraction)
	}
	c.Add(plot.Series{Name: "measured", Marker: 'o', X: xs, Y: measured})
	c.Add(plot.Series{Name: "ceiling", Marker: '+', X: xs, Y: predicted})
	return c.Render(w)
}

// CCChart renders the E-CC round growth.
func CCChart(w io.Writer, rows []CCRow) error {
	c := plot.New("connected-components rounds vs p: neighbor-min (o), hash-to-min (x), dense (d)")
	c.LogX = true
	var xs, nm, h2m, dense []float64
	for _, r := range rows {
		xs = append(xs, float64(r.P))
		nm = append(nm, float64(r.NMRounds))
		h2m = append(h2m, float64(r.H2MRounds))
		dense = append(dense, float64(r.DenseRound))
	}
	c.Add(plot.Series{Name: "neighbor-min", Marker: 'o', X: xs, Y: nm})
	c.Add(plot.Series{Name: "hash-to-min", Marker: 'x', X: xs, Y: h2m})
	c.Add(plot.Series{Name: "dense", Marker: 'd', X: xs, Y: dense})
	return c.Render(w)
}

// ShuffleRow is one point of the E-SHUF experiment: the columnar
// exchange's shuffle throughput on the triangle query, alongside the
// paper's per-round load metric.
type ShuffleRow struct {
	N            int
	P            int
	RoutedTuples int64
	TotalBits    int64
	MaxLoadBits  int64
	Seconds      float64
	TuplesPerSec float64
	MiBPerSec    float64
}

// Shuffle times the HyperCube scatter of the triangle query through
// the columnar exchange for each p: tuples routed per second, MiB of
// accounted communication per second, and the per-round max load the
// paper's bounds govern — the wall-clock and model views of the same
// round in one table.
func Shuffle(w io.Writer, n int, ps []int, seed uint64) ([]ShuffleRow, error) {
	q := query.Triangle()
	rng := rand.New(rand.NewPCG(seed, 17))
	db := relation.MatchingDatabase(rng, q, n)
	var rows []ShuffleRow
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "E-SHUF: columnar exchange shuffle, triangle query, n=%d\n", n)
	fmt.Fprintln(tw, "p\trouted tuples\ttuples/s\tMiB/s\tmax load (bits)\ttotal (bits)")
	for _, p := range ps {
		shares, err := hypercube.SharesForQuery(q, p, hypercube.GreedyRounding)
		if err != nil {
			return nil, err
		}
		hasher := hypercube.NewHasher(shares, seed)
		cluster, err := mpc.NewCluster(mpc.Config{
			Workers:   p,
			Epsilon:   1,
			InputBits: db.InputBits(),
			DomainN:   db.N,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		cluster.BeginRound()
		for _, a := range q.Atoms {
			rel, ok := db.Relation(a.Name)
			if !ok {
				return nil, fmt.Errorf("experiments: missing relation %s", a.Name)
			}
			if err := cluster.ScatterPart(rel, hypercube.NewGridPartitioner(shares, hasher, a)); err != nil {
				return nil, err
			}
		}
		if err := cluster.EndRound(); err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds()
		rs := cluster.Stats().Rounds[0]
		row := ShuffleRow{
			N:            n,
			P:            p,
			RoutedTuples: rs.TotalTuples,
			TotalBits:    rs.TotalBits,
			MaxLoadBits:  rs.MaxReceivedBits,
			Seconds:      elapsed,
			TuplesPerSec: float64(rs.TotalTuples) / elapsed,
			MiBPerSec:    float64(rs.TotalBits) / 8 / (1 << 20) / elapsed,
		}
		rows = append(rows, row)
		fmt.Fprintf(tw, "%d\t%d\t%.3g\t%.2f\t%d\t%d\n",
			p, row.RoutedTuples, row.TuplesPerSec, row.MiBPerSec, row.MaxLoadBits, row.TotalBits)
	}
	return rows, tw.Flush()
}
