package experiments

import (
	"bytes"
	"math"
	"math/big"
	"strings"
	"testing"

	"repro/internal/query"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table1(&buf, 60, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Query] = r
	}
	// Spot-check the canonical Table 1 values.
	if byName["C3"].Tau.Cmp(rat(3, 2)) != 0 {
		t.Errorf("τ*(C3) = %s", byName["C3"].Tau.RatString())
	}
	if byName["T5"].SpaceExponent.Sign() != 0 {
		t.Errorf("ε(T5) = %s, want 0", byName["T5"].SpaceExponent.RatString())
	}
	if byName["L5"].SpaceExponent.Cmp(rat(2, 3)) != 0 {
		t.Errorf("ε(L5) = %s, want 2/3", byName["L5"].SpaceExponent.RatString())
	}
	// Analytic vs measured for exact families: L_k and T_k have exactly
	// n answers on every matching database.
	for _, name := range []string{"L2", "L3", "L5", "T3", "T5"} {
		r := byName[name]
		if math.Abs(r.ExpectedAnalytic-r.MeasuredMean) > 1e-9 {
			t.Errorf("%s: measured %v != analytic %v (exact families)", name, r.MeasuredMean, r.ExpectedAnalytic)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "space exponent") || !strings.Contains(out, "C3") {
		t.Errorf("table output missing headers:\n%s", out)
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PlanRounds != r.RoundsEps0 {
			t.Errorf("%s: greedy plan %d rounds, formula %d", r.Query, r.PlanRounds, r.RoundsEps0)
		}
	}
	if !strings.Contains(buf.String(), "tradeoff") {
		t.Error("missing header")
	}
}

func TestFigure1(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure1(&buf, []*query.Query{query.Cycle(3), query.Chain(3)}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"vertex covering LP", "edge packing LP", "τ* = 3/2", "τ* = 2", "duality verified"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure1 output missing %q", want)
		}
	}
}

func TestHCLoad(t *testing.T) {
	var buf bytes.Buffer
	rows, err := HCLoad(&buf, query.Cycle(3), 1500, []int{8, 27, 64}, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Complete {
			t.Errorf("p=%d: HC missed answers", r.P)
		}
		if r.Ratio > 3.0 {
			t.Errorf("p=%d: load ratio %v too far above the bound", r.P, r.Ratio)
		}
	}
}

func TestLBFraction(t *testing.T) {
	var buf bytes.Buffer
	rows, err := LBFraction(&buf, query.Cycle(3), 3000, 0, []int{16, 64}, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Fraction must decay as p grows, tracking the predicted polynomial.
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].PredictedFraction >= rows[0].PredictedFraction {
		t.Error("prediction should decay with p")
	}
}

func TestRounds(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Rounds(&buf, []int{4, 8}, []*big.Rat{rat(0, 1), rat(1, 2)}, 40, 8, 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Complete {
			t.Errorf("%s at ε=%s: incomplete answers", r.Query, r.Eps.RatString())
		}
		if r.Executed < r.Lower || r.Executed > r.Upper {
			t.Errorf("%s at ε=%s: executed %d outside [%d,%d]",
				r.Query, r.Eps.RatString(), r.Executed, r.Lower, r.Upper)
		}
	}
}

func TestRoundBounds(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RoundBounds(&buf, []*big.Rat{rat(0, 1), rat(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PlanLower > r.Upper {
			t.Errorf("%s at ε=%s: certified lower %d exceeds upper %d",
				r.Query, r.Eps.RatString(), r.PlanLower, r.Upper)
		}
		if strings.HasPrefix(r.Query, "L") && r.PlanLower != r.Formula {
			t.Errorf("%s: plan lower %d != formula %d (chains should match exactly)",
				r.Query, r.PlanLower, r.Formula)
		}
		if strings.HasPrefix(r.Query, "C") && r.PlanLower < r.Formula {
			t.Errorf("%s: plan lower %d below formula %d", r.Query, r.PlanLower, r.Formula)
		}
	}
}

func TestCC(t *testing.T) {
	var buf bytes.Buffer
	rows, err := CC(&buf, []int{4, 16, 64}, 4, 19)
	if err != nil {
		t.Fatal(err)
	}
	prevNM := 0
	for _, r := range rows {
		if r.DenseRound != 2 {
			t.Errorf("p=%d: dense rounds = %d, want 2", r.P, r.DenseRound)
		}
		if r.NMRounds < prevNM {
			t.Errorf("p=%d: neighbor-min rounds decreased", r.P)
		}
		prevNM = r.NMRounds
		if r.H2MRounds > r.NMRounds {
			t.Errorf("p=%d: hash-to-min (%d) slower than neighbor-min (%d)", r.P, r.H2MRounds, r.NMRounds)
		}
	}
}

func TestWitnessExperiment(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Witness(&buf, 100, []int{16}, []float64{0.5}, 4, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].SuccessProb < 0.99 {
		t.Errorf("at ε=1/2 success = %v, want 1", rows[0].SuccessProb)
	}
}
