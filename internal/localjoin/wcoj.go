package localjoin

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/query"
	"repro/internal/relation"
)

// This file implements the worst-case-optimal multiway join (WCOJ), a
// leapfrog-triejoin-style evaluator: every atom's tuples are projected
// onto its distinct variables, sorted lexicographically in the global
// variable order, and exposed as a sorted trie; the join then binds one
// variable at a time by leapfrogging the sorted value lists of every
// atom containing that variable. On cyclic queries (triangles, cycles)
// this runs within the AGM bound instead of materializing the
// super-linear pairwise intermediates the hash-join pipeline builds,
// and it is robust to skew: a heavy join value narrows every
// participating trie at once.
//
// Each trie prefers an integer-packed layout: a tuple of m values
// becomes one uint64 with ⌊64/m⌋ bits per value, so building the trie
// sorts a flat []uint64 and every seek is a binary search over
// contiguous integers — no per-tuple allocation and no comparator
// indirection. Tuples that do not fit (huge values, or arity > 64)
// fall back to a sorted []relation.Tuple trie with identical
// semantics.

// trieRel is a sorted-trie view of one atom's tuples. Level d of the
// trie is the atom's d-th distinct variable in global variable order;
// lo[d]/hi[d] bound the rows consistent with the currently bound
// prefix.
type trieRel struct {
	levels int
	lo, hi []int // row range per level; level 0 is the whole relation
	cur    []int // per-level cursor: first row of the last sought value

	// Packed layout: row i is keys[i]; level d occupies the bit range
	// [(levels-1-d)·shift, (levels-d)·shift).
	keys  []uint64
	shift uint
	mask  uint64

	// Fallback layout: projected tuples sorted by cols order.
	tuples []relation.Tuple
	cols   []int
}

// newTrieRel builds the trie for one atom: project onto distinct
// variables (dropping tuples with inconsistent repeats), order the
// columns by the variables' global depths, and sort.
func newTrieRel(atom query.Atom, tuples []relation.Tuple, depthOf map[string]int) (*trieRel, error) {
	for _, t := range tuples {
		if len(t) != atom.Arity() {
			return nil, fmt.Errorf("localjoin: tuple arity %d != atom %s arity %d",
				len(t), atom.Name, atom.Arity())
		}
	}
	distinct := atom.DistinctVars()
	sort.Slice(distinct, func(i, j int) bool { return depthOf[distinct[i]] < depthOf[distinct[j]] })
	// pos[d] is the tuple position supplying trie level d.
	pos := make([]int, len(distinct))
	for d, v := range distinct {
		for j, av := range atom.Vars {
			if av == v {
				pos[d] = j
				break
			}
		}
	}
	m := len(distinct)
	tr := &trieRel{
		levels: m,
		lo:     make([]int, m+1),
		hi:     make([]int, m+1),
		cur:    make([]int, m),
	}
	if shift := relation.PackedShift(m); shift > 0 {
		tr.shift = shift
		tr.mask = relation.PackedMask(shift)
		tr.keys = make([]uint64, 0, len(tuples))
		packed := true
	pack:
		for _, t := range tuples {
			if !consistentRepeats(atom, t) {
				continue
			}
			var key uint64
			for _, j := range pos {
				if !relation.FitsPacked(t[j], shift) {
					packed = false
					break pack
				}
				key = key<<shift | uint64(t[j])
			}
			tr.keys = append(tr.keys, key)
		}
		if packed {
			slices.Sort(tr.keys)
			tr.hi[0] = len(tr.keys)
			return tr, nil
		}
		tr.keys = nil
	}
	// Fallback: projected tuples with a comparator-based sort.
	proj, err := atomRelation(atom, tuples, false)
	if err != nil {
		return nil, err
	}
	cols := make([]int, len(proj.Attrs))
	for i := range cols {
		cols[i] = i
	}
	sort.Slice(cols, func(i, j int) bool {
		return depthOf[proj.Attrs[cols[i]]] < depthOf[proj.Attrs[cols[j]]]
	})
	sort.Slice(proj.Tuples, func(i, j int) bool {
		a, b := proj.Tuples[i], proj.Tuples[j]
		for _, c := range cols {
			if a[c] != b[c] {
				return a[c] < b[c]
			}
		}
		return false
	})
	tr.tuples = proj.Tuples
	tr.cols = cols
	tr.hi[0] = len(proj.Tuples)
	return tr, nil
}

// at returns the level-d value of row i.
func (tr *trieRel) at(d, i int) int {
	if tr.keys != nil {
		return int(tr.keys[i] >> (uint(tr.levels-1-d) * tr.shift) & tr.mask)
	}
	return tr.tuples[i][tr.cols[d]]
}

// reset rewinds the level-d cursor to the start of the current prefix
// range; callers do this when they start a fresh intersection pass.
func (tr *trieRel) reset(d int) { tr.cur[d] = tr.lo[d] }

// seek returns the smallest value ≥ v at trie level d within the
// current prefix range, or ok=false when the range is exhausted.
// Successive seeks at one level must use non-decreasing v (the
// leapfrog discipline); the cursor then advances monotonically and a
// full intersection pass costs amortized O(rows) instead of
// O(values · log rows), via galloping from the previous position.
func (tr *trieRel) seek(d, v int) (int, bool) {
	i, hi := tr.cur[d], tr.hi[d]
	if i >= hi {
		return 0, false
	}
	if val := tr.at(d, i); val >= v {
		return val, true
	}
	// Gallop to bracket the first row with value ≥ v, then binary
	// search inside the bracket.
	step := 1
	for i+step < hi && tr.at(d, i+step) < v {
		i += step
		step <<= 1
	}
	bound := min(hi, i+step+1)
	i += sort.Search(bound-i, func(x int) bool { return tr.at(d, i+x) >= v })
	tr.cur[d] = i
	if i == hi {
		return 0, false
	}
	return tr.at(d, i), true
}

// open narrows level d+1 to the rows whose level-d value equals v. It
// must follow a seek that returned v, so the cursor sits on the first
// occurrence.
func (tr *trieRel) open(d, v int) {
	start, hi := tr.cur[d], tr.hi[d]
	i, step := start, 1
	for i+step < hi && tr.at(d, i+step) <= v {
		i += step
		step <<= 1
	}
	bound := min(hi, i+step+1)
	end := i + sort.Search(bound-i, func(x int) bool { return tr.at(d, i+x) > v })
	tr.lo[d+1], tr.hi[d+1] = start, end
}

// participant is one atom's trie at the level where a global variable
// is bound.
type participant struct {
	tr *trieRel
	d  int // trie level of the variable inside this atom
}

// evalWCOJ evaluates q by leapfrog intersection along the global
// variable order.
func evalWCOJ(q *query.Query, b Bindings) ([]relation.Tuple, error) {
	varOrder := variableOrder(q)
	k := len(varOrder)
	depthOf := make(map[string]int, k)
	for d, v := range varOrder {
		depthOf[v] = d
	}

	parts := make([][]participant, k)
	for _, a := range q.Atoms {
		tr, err := newTrieRel(a, b[a.Name], depthOf)
		if err != nil {
			return nil, err
		}
		// Trie level d of this atom binds the variable at global depth
		// depthOf[attr]; the levels are already in global order.
		attrs := a.DistinctVars()
		sort.Slice(attrs, func(i, j int) bool { return depthOf[attrs[i]] < depthOf[attrs[j]] })
		for d, v := range attrs {
			g := depthOf[v]
			parts[g] = append(parts[g], participant{tr: tr, d: d})
		}
	}

	// outCol[i] is the global depth of q.Vars()[i].
	outCol := make([]int, q.NumVars())
	for i, v := range q.Vars() {
		outCol[i] = depthOf[v]
	}

	binding := make([]int, k)
	var out []relation.Tuple
	var rec func(g int)
	rec = func(g int) {
		if g == k {
			row := make(relation.Tuple, len(outCol))
			for i, c := range outCol {
				row[i] = binding[c]
			}
			out = append(out, row)
			return
		}
		ps := parts[g]
		// Leapfrog: cycle through the participants, raising the target
		// value to each one's next feasible value until all agree.
		for _, p := range ps {
			p.tr.reset(p.d)
		}
		v := math.MinInt
		i, agree := 0, 0
		for {
			val, ok := ps[i].tr.seek(ps[i].d, v)
			if !ok {
				return
			}
			if val == v {
				agree++
			} else {
				v, agree = val, 1
			}
			if agree == len(ps) {
				for _, p := range ps {
					p.tr.open(p.d, v)
				}
				binding[g] = v
				rec(g + 1)
				if v == math.MaxInt {
					return
				}
				v, agree = v+1, 0
			}
			i++
			if i == len(ps) {
				i = 0
			}
		}
	}
	rec(0)
	return out, nil
}
