// Package localjoin evaluates a full conjunctive query on data held
// in memory. It is used in two roles: as the local computation every
// MPC worker performs on the tuples it received (the paper gives the
// servers unlimited computational power, so any correct evaluator is
// faithful to the model), and as the single-node reference evaluator
// that supplies ground truth in tests and experiments.
//
// Three strategies are provided: a pairwise hash-join pipeline that
// joins atoms in a connectivity-respecting order, a generic
// backtracking (tuple-at-a-time) join, and a worst-case-optimal
// multiway join (WCOJ, a leapfrog-triejoin-style evaluator over sorted
// trie iterators — see wcoj.go). All return identical results; the
// benchmark suite compares their performance (an ablation called out
// in DESIGN.md). WCOJ is the package default: on cyclic queries it
// avoids the super-linear pairwise intermediates of the hash join and
// the per-candidate scans of backtracking.
package localjoin

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/query"
	"repro/internal/relation"
)

// Strategy selects the join algorithm.
type Strategy int

// Available strategies.
const (
	// Default selects the package default (currently WCOJ). It is the
	// zero value, so callers that leave a Strategy field unset get the
	// worst-case-optimal evaluator.
	Default Strategy = iota
	// HashJoin joins atoms pairwise with hash indexes.
	HashJoin
	// Backtracking binds variables one at a time, checking every atom
	// incrementally.
	Backtracking
	// WCOJ is the worst-case-optimal multiway join: sorted trie
	// iterators per atom, variable-at-a-time leapfrog intersection.
	WCOJ
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Default:
		return "default"
	case HashJoin:
		return "hashjoin"
	case Backtracking:
		return "backtracking"
	case WCOJ:
		return "wcoj"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Bindings maps relation name → tuples available to the evaluator.
// Tuple positions correspond to the atom's variable positions.
type Bindings map[string][]relation.Tuple

// FromDatabase builds Bindings for q from a database, validating that
// every atom has a relation of matching arity.
func FromDatabase(q *query.Query, db *relation.Database) (Bindings, error) {
	b := make(Bindings, q.NumAtoms())
	for _, a := range q.Atoms {
		r, ok := db.Relation(a.Name)
		if !ok {
			return nil, fmt.Errorf("localjoin: database has no relation %s", a.Name)
		}
		if r.Arity() != a.Arity() {
			return nil, fmt.Errorf("localjoin: relation %s arity %d != atom arity %d",
				a.Name, r.Arity(), a.Arity())
		}
		b[a.Name] = r.Tuples
	}
	return b, nil
}

// Evaluate computes q over the bindings and returns the answer tuples
// in the variable order q.Vars(), deduplicated and in deterministic
// (sorted) order.
func Evaluate(q *query.Query, b Bindings, strategy Strategy) ([]relation.Tuple, error) {
	for _, a := range q.Atoms {
		if _, ok := b[a.Name]; !ok {
			// A missing relation is an empty relation: no answers.
			return nil, nil
		}
	}
	if strategy == Default {
		strategy = WCOJ
	}
	var out []relation.Tuple
	var err error
	switch strategy {
	case HashJoin:
		out, err = evalHashJoin(q, b)
	case Backtracking:
		out, err = evalBacktracking(q, b)
	case WCOJ:
		out, err = evalWCOJ(q, b)
	default:
		return nil, fmt.Errorf("localjoin: unknown strategy %v", strategy)
	}
	if err != nil {
		return nil, err
	}
	return relation.DedupSort(out), nil
}

// atomOrder returns an ordering of atom indices in which every atom
// after the first within a component shares a variable with an
// earlier atom, and components are visited one after another.
func atomOrder(q *query.Query) []int {
	var order []int
	for _, comp := range q.Components() {
		placed := make(map[int]bool)
		vars := make(map[string]bool)
		remaining := append([]int(nil), comp...)
		for len(remaining) > 0 {
			chosen := -1
			for i, ai := range remaining {
				if len(placed) == 0 {
					chosen = i
					break
				}
				for _, v := range q.Atoms[ai].Vars {
					if vars[v] {
						chosen = i
						break
					}
				}
				if chosen >= 0 {
					break
				}
			}
			if chosen < 0 {
				chosen = 0 // disconnected within component cannot happen
			}
			ai := remaining[chosen]
			remaining = append(remaining[:chosen], remaining[chosen+1:]...)
			placed[ai] = true
			for _, v := range q.Atoms[ai].Vars {
				vars[v] = true
			}
			order = append(order, ai)
		}
	}
	return order
}

// evalHashJoin joins atoms pairwise along atomOrder, carrying an
// intermediate relation whose schema is the distinct variables seen so
// far, then projects onto q.Vars() order.
func evalHashJoin(q *query.Query, b Bindings) ([]relation.Tuple, error) {
	order := atomOrder(q)
	var acc *relation.Relation
	joined := false
	for _, ai := range order {
		atom := q.Atoms[ai]
		r, err := atomRelation(atom, b[atom.Name], true)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = r
		} else {
			acc = relation.NaturalJoin(acc, r)
			joined = true
		}
		if len(acc.Tuples) == 0 {
			return nil, nil
		}
	}
	// Reorder columns to q.Vars().
	idx := make([]int, q.NumVars())
	identity := len(idx) == len(acc.Attrs)
	for i, v := range q.Vars() {
		j := acc.AttrIndex(v)
		if j < 0 {
			return nil, fmt.Errorf("localjoin: internal: variable %s missing from join result", v)
		}
		idx[i] = j
		if j != i {
			identity = false
		}
	}
	if identity {
		// The join emitted q.Vars() order already; skip the per-tuple
		// reorder copy. A single-atom acc may alias the caller's
		// bindings (atomRelation's share fast path), and the caller will
		// DedupSort the result in place — hand it a fresh header slice.
		if !joined {
			return append([]relation.Tuple(nil), acc.Tuples...), nil
		}
		return acc.Tuples, nil
	}
	out := make([]relation.Tuple, 0, len(acc.Tuples))
	for _, t := range acc.Tuples {
		row := make(relation.Tuple, len(idx))
		for i, j := range idx {
			row[i] = t[j]
		}
		out = append(out, row)
	}
	return out, nil
}

// atomRelation converts an atom's tuples into a Relation whose schema
// is the atom's distinct variables; tuples with conflicting values for
// a repeated variable (e.g. S(x,x) with (1,2)) are filtered out. With
// share set and no repeated variables the returned relation aliases
// tuples instead of copying — callers must then treat it (slice and
// rows) as read-only.
func atomRelation(atom query.Atom, tuples []relation.Tuple, share bool) (*relation.Relation, error) {
	distinct := atom.DistinctVars()
	r := relation.New(atom.Name, distinct...)
	pos := make([]int, len(distinct))
	for i, v := range distinct {
		for j, av := range atom.Vars {
			if av == v {
				pos[i] = j
				break
			}
		}
	}
	if share && len(distinct) == len(atom.Vars) {
		// No repeated variables: every tuple passes unchanged, so share
		// the binding's storage instead of copying row by row (the join
		// operators treat their inputs as read-only). Arity is still
		// checked.
		for _, t := range tuples {
			if len(t) != atom.Arity() {
				return nil, fmt.Errorf("localjoin: tuple arity %d != atom %s arity %d",
					len(t), atom.Name, atom.Arity())
			}
		}
		r.Tuples = tuples
		return r, nil
	}
	for _, t := range tuples {
		if len(t) != atom.Arity() {
			return nil, fmt.Errorf("localjoin: tuple arity %d != atom %s arity %d",
				len(t), atom.Name, atom.Arity())
		}
		if !consistentRepeats(atom, t) {
			continue
		}
		row := make(relation.Tuple, len(pos))
		for i, j := range pos {
			row[i] = t[j]
		}
		r.Tuples = append(r.Tuples, row)
	}
	return r, nil
}

// consistentRepeats checks repeated-variable positions agree.
func consistentRepeats(atom query.Atom, t relation.Tuple) bool {
	first := make(map[string]int, len(atom.Vars))
	for j, v := range atom.Vars {
		if fj, ok := first[v]; ok {
			if t[fj] != t[j] {
				return false
			}
		} else {
			first[v] = j
		}
	}
	return true
}

// evalBacktracking binds query variables one at a time. Variables are
// ordered so each new variable (after the first in its component)
// occurs in an atom with an already-bound variable; candidate values
// come from the smallest atom containing the variable, restricted by
// already-bound positions via hash indexes.
func evalBacktracking(q *query.Query, b Bindings) ([]relation.Tuple, error) {
	for _, a := range q.Atoms {
		for _, t := range b[a.Name] {
			if len(t) != a.Arity() {
				return nil, fmt.Errorf("localjoin: tuple arity %d != atom %s arity %d",
					len(t), a.Name, a.Arity())
			}
		}
	}
	vars := q.Vars()
	k := len(vars)
	varOrder := variableOrder(q)
	binding := make(map[string]int, k)
	var out []relation.Tuple

	// Index every atom's tuples by packed key for O(1) closed-atom
	// membership checks, and precompute at which depth each atom closes
	// (all its variables bound).
	index := make(map[string]*relation.TupleSet, q.NumAtoms())
	for _, a := range q.Atoms {
		set := relation.NewTupleSet(a.Arity(), len(b[a.Name]))
		for _, t := range b[a.Name] {
			set.Add(t)
		}
		index[a.Name] = set
	}
	depthOf := make(map[string]int, k)
	for d, v := range varOrder {
		depthOf[v] = d
	}
	closesAt := make([][]int, k) // depth → atoms that close there
	for ai, a := range q.Atoms {
		maxDepth := 0
		for _, v := range a.Vars {
			if d := depthOf[v]; d > maxDepth {
				maxDepth = d
			}
		}
		closesAt[maxDepth] = append(closesAt[maxDepth], ai)
	}

	var assign func(depth int)
	assign = func(depth int) {
		if depth == k {
			row := make(relation.Tuple, k)
			for i, v := range vars {
				row[i] = binding[v]
			}
			out = append(out, row)
			return
		}
		v := varOrder[depth]
		for _, val := range candidates(q, b, v, binding) {
			binding[v] = val
			ok := true
			for _, ai := range closesAt[depth] {
				a := q.Atoms[ai]
				probe := make(relation.Tuple, a.Arity())
				for j, av := range a.Vars {
					probe[j] = binding[av]
				}
				if !index[a.Name].Contains(probe) {
					ok = false
					break
				}
			}
			if ok {
				assign(depth + 1)
			}
			delete(binding, v)
		}
	}
	assign(0)
	return out, nil
}

// variableOrder returns variables ordered to keep each prefix
// connected within its component.
func variableOrder(q *query.Query) []string {
	var order []string
	seen := make(map[string]bool)
	for _, comp := range q.Components() {
		// BFS over variables of this component.
		var queue []string
		for _, ai := range comp {
			for _, v := range q.Atoms[ai].Vars {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
					break
				}
			}
			break
		}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, ai := range q.AtomsOf(v) {
				for _, w := range q.Atoms[ai].Vars {
					if !seen[w] {
						seen[w] = true
						queue = append(queue, w)
					}
				}
			}
		}
		// Pick up any stragglers of the component (shouldn't happen).
		for _, ai := range comp {
			for _, v := range q.Atoms[ai].Vars {
				if !seen[v] {
					seen[v] = true
					order = append(order, v)
				}
			}
		}
	}
	return order
}

// candidates returns the possible values for variable v given the
// current partial binding: the v-values of tuples (in the smallest
// atom containing v) that agree with the binding.
func candidates(q *query.Query, b Bindings, v string, binding map[string]int) []int {
	atomIdxs := q.AtomsOf(v)
	best := atomIdxs[0]
	for _, ai := range atomIdxs[1:] {
		if len(b[q.Atoms[ai].Name]) < len(b[q.Atoms[best].Name]) {
			best = ai
		}
	}
	atom := q.Atoms[best]
	vals := make(map[int]bool)
	var out []int
	for _, t := range b[atom.Name] {
		ok := true
		var val int
		for j, av := range atom.Vars {
			if av == v {
				val = t[j]
			} else if bound, has := binding[av]; has && t[j] != bound {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Repeated occurrences of v inside the atom must agree.
		for j, av := range atom.Vars {
			if av == v && t[j] != val {
				ok = false
				break
			}
		}
		if ok && !vals[val] {
			vals[val] = true
			out = append(out, val)
		}
	}
	sort.Ints(out)
	return out
}

// Format renders answer tuples for debugging.
func Format(q *query.Query, ts []relation.Tuple) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(q.Vars(), ","))
	sb.WriteByte('\n')
	for _, t := range ts {
		for i, v := range t {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
