package localjoin_test

import (
	"math/rand/v2"
	"testing"

	"repro/internal/localjoin"
	"repro/internal/skew"
)

// BenchmarkHashJoinZipf mirrors the mpcbench join-hash-zipf-n1000
// suite entry: the binary hash join over Zipf-skewed input whose
// output is quadratic in the heavy values.
func BenchmarkHashJoinZipf(b *testing.B) {
	zr, zs := skew.ZipfJoinInput(rand.New(rand.NewPCG(1, 0x21f)), 1000, 1.1)
	q := skew.JoinQuery()
	bindings := localjoin.Bindings{q.Atoms[0].Name: zr.Tuples, q.Atoms[1].Name: zs.Tuples}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := localjoin.Evaluate(q, bindings, localjoin.HashJoin); err != nil {
			b.Fatal(err)
		}
	}
}
