package localjoin

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// allStrategies are the concrete evaluators (Default aliases WCOJ and
// is covered by TestDefaultStrategyIsWCOJ).
var allStrategies = []Strategy{HashJoin, Backtracking, WCOJ}

// randomQuery builds a random conjunctive query: 1–4 atoms of arity
// 1–3 over a pool of 5 variables, repeats within an atom allowed.
// Queries may be disconnected or have variables shared by every atom.
func randomQuery(rng *rand.Rand) *query.Query {
	pool := []string{"v", "w", "x", "y", "z"}
	numAtoms := 1 + rng.IntN(4)
	atoms := make([]query.Atom, numAtoms)
	for i := range atoms {
		arity := 1 + rng.IntN(3)
		vars := make([]string, arity)
		for j := range vars {
			vars[j] = pool[rng.IntN(len(pool))]
		}
		atoms[i] = query.Atom{Name: fmt.Sprintf("S%d", i+1), Vars: vars}
	}
	return query.MustNew("rand", atoms...)
}

// randomBindings draws 0–20 uniform tuples over [1, domain] per atom.
func randomBindings(rng *rand.Rand, q *query.Query, domain int) Bindings {
	b := make(Bindings, q.NumAtoms())
	for _, a := range q.Atoms {
		count := rng.IntN(21)
		tuples := make([]relation.Tuple, count)
		for i := range tuples {
			t := make(relation.Tuple, a.Arity())
			for j := range t {
				t[j] = 1 + rng.IntN(domain)
			}
			tuples[i] = t
		}
		b[a.Name] = tuples
	}
	return b
}

// TestAllStrategiesAgreeOnRandomInstances is the cross-strategy
// equivalence property: on randomized queries and databases every
// strategy must return the identical sorted, deduplicated answer list.
func TestAllStrategiesAgreeOnRandomInstances(t *testing.T) {
	for trial := 0; trial < 300; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0xC0))
		q := randomQuery(rng)
		b := randomBindings(rng, q, 2+rng.IntN(8))
		want, err := Evaluate(q, b, HashJoin)
		if err != nil {
			t.Fatalf("trial %d: %s: hashjoin: %v", trial, q, err)
		}
		for _, strat := range allStrategies[1:] {
			got, err := Evaluate(q, b, strat)
			if err != nil {
				t.Fatalf("trial %d: %s: %v: %v", trial, q, strat, err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: %s: %v returned %d answers, hashjoin %d\n%v\nvs\n%v",
					trial, q, strat, len(got), len(want), got, want)
			}
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("trial %d: %s: %v answer[%d] = %v, hashjoin %v",
						trial, q, strat, i, got[i], want[i])
				}
			}
		}
	}
}

// TestAllStrategiesAgreeOnMatchings repeats the property on the
// paper's matching databases for the named query families.
func TestAllStrategiesAgreeOnMatchings(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	queries := []*query.Query{
		query.Chain(3), query.Cycle(3), query.Cycle(5),
		query.Star(3), query.SpokedWheel(3), query.Binom(4, 2),
	}
	for _, q := range queries {
		db := relation.MatchingDatabase(rng, q, 20)
		b, err := FromDatabase(q, db)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Evaluate(q, b, HashJoin)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range allStrategies[1:] {
			got, err := Evaluate(q, b, strat)
			if err != nil {
				t.Fatalf("%s: %v: %v", q.Name, strat, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: %v returned %d answers, hashjoin %d", q.Name, strat, len(got), len(want))
			}
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("%s: %v answer[%d] = %v, want %v", q.Name, strat, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDefaultStrategyIsWCOJ pins the zero value to the WCOJ engine.
func TestDefaultStrategyIsWCOJ(t *testing.T) {
	if Default != 0 {
		t.Fatalf("Default = %d, want the zero value", int(Default))
	}
	rng := rand.New(rand.NewPCG(3, 7))
	q := query.Cycle(3)
	db := relation.MatchingDatabase(rng, q, 15)
	b, err := FromDatabase(q, db)
	if err != nil {
		t.Fatal(err)
	}
	def, err := Evaluate(q, b, Default)
	if err != nil {
		t.Fatal(err)
	}
	wcoj, err := Evaluate(q, b, WCOJ)
	if err != nil {
		t.Fatal(err)
	}
	if len(def) != len(wcoj) {
		t.Fatalf("Default answers %d != WCOJ answers %d", len(def), len(wcoj))
	}
	for i := range def {
		if !def[i].Equal(wcoj[i]) {
			t.Fatalf("answer[%d]: Default %v != WCOJ %v", i, def[i], wcoj[i])
		}
	}
	if Default.String() != "default" || WCOJ.String() != "wcoj" {
		t.Errorf("Strategy names: %q, %q", Default.String(), WCOJ.String())
	}
}

// TestWCOJTriangleCounts checks the WCOJ answer count against the
// closed form on an identity database, where every (i,i,i) is a
// triangle.
func TestWCOJTriangleCounts(t *testing.T) {
	q := query.Triangle()
	n := 25
	db := relation.IdentityDatabase(q, n)
	b, err := FromDatabase(q, db)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Evaluate(q, b, WCOJ)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("identity triangle answers = %d, want %d", len(out), n)
	}
	for i, row := range out {
		want := relation.Tuple{i + 1, i + 1, i + 1}
		if !row.Equal(want) {
			t.Fatalf("answer[%d] = %v, want %v", i, row, want)
		}
	}
}
