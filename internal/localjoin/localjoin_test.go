package localjoin

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/query"
	"repro/internal/relation"
)

func bindingsOf(t *testing.T, q *query.Query, db *relation.Database) Bindings {
	t.Helper()
	b, err := FromDatabase(q, db)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestEvaluateChainSmall(t *testing.T) {
	q := query.Chain(2) // S1(x0,x1), S2(x1,x2)
	db := relation.NewDatabase(3)
	s1 := relation.New("S1", "x0", "x1")
	s1.MustAdd(relation.Tuple{1, 2})
	s1.MustAdd(relation.Tuple{2, 3})
	s2 := relation.New("S2", "x1", "x2")
	s2.MustAdd(relation.Tuple{2, 5})
	s2.MustAdd(relation.Tuple{2, 6})
	db.AddRelation(s1)
	db.AddRelation(s2)
	b := bindingsOf(t, q, db)
	for _, strat := range []Strategy{HashJoin, Backtracking, WCOJ} {
		out, err := Evaluate(q, b, strat)
		if err != nil {
			t.Fatal(err)
		}
		want := []relation.Tuple{{1, 2, 5}, {1, 2, 6}}
		if len(out) != len(want) {
			t.Fatalf("%v: out = %v", strat, out)
		}
		for i := range want {
			if !out[i].Equal(want[i]) {
				t.Errorf("%v: out[%d] = %v, want %v", strat, i, out[i], want[i])
			}
		}
	}
}

func TestEvaluateTriangle(t *testing.T) {
	q := query.Triangle() // S1(x1,x2), S2(x2,x3), S3(x3,x1)
	db := relation.NewDatabase(4)
	s1 := relation.New("S1", "x1", "x2")
	s2 := relation.New("S2", "x2", "x3")
	s3 := relation.New("S3", "x3", "x1")
	s1.MustAdd(relation.Tuple{1, 2})
	s2.MustAdd(relation.Tuple{2, 3})
	s3.MustAdd(relation.Tuple{3, 1})
	s3.MustAdd(relation.Tuple{3, 2}) // does not close a triangle
	db.AddRelation(s1)
	db.AddRelation(s2)
	db.AddRelation(s3)
	b := bindingsOf(t, q, db)
	for _, strat := range []Strategy{HashJoin, Backtracking, WCOJ} {
		out, err := Evaluate(q, b, strat)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || !out[0].Equal(relation.Tuple{1, 2, 3}) {
			t.Errorf("%v: out = %v, want [[1 2 3]]", strat, out)
		}
	}
}

func TestEvaluateDisconnected(t *testing.T) {
	q := query.CartesianPair() // R(x), S(y)
	db := relation.NewDatabase(3)
	r := relation.New("R", "x")
	s := relation.New("S", "y")
	r.MustAdd(relation.Tuple{1})
	r.MustAdd(relation.Tuple{2})
	s.MustAdd(relation.Tuple{7})
	db.AddRelation(r)
	db.AddRelation(s)
	b := bindingsOf(t, q, db)
	for _, strat := range []Strategy{HashJoin, Backtracking, WCOJ} {
		out, err := Evaluate(q, b, strat)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 2 {
			t.Errorf("%v: |out| = %d, want 2", strat, len(out))
		}
	}
}

func TestEvaluateEmptyRelation(t *testing.T) {
	q := query.Chain(2)
	b := Bindings{"S1": nil, "S2": {relation.Tuple{1, 2}}}
	for _, strat := range []Strategy{HashJoin, Backtracking, WCOJ} {
		out, err := Evaluate(q, b, strat)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Errorf("%v: out = %v, want empty", strat, out)
		}
	}
}

func TestEvaluateMissingRelation(t *testing.T) {
	q := query.Chain(2)
	b := Bindings{"S1": {relation.Tuple{1, 2}}}
	out, err := Evaluate(q, b, HashJoin)
	if err != nil || out != nil {
		t.Errorf("missing relation should yield no answers, got %v, %v", out, err)
	}
}

func TestEvaluateRepeatedVariable(t *testing.T) {
	// q(x,y) = R(x,x,y): only tuples with t[0]==t[1] survive.
	q := query.MustNew("rep", query.Atom{Name: "R", Vars: []string{"x", "x", "y"}})
	b := Bindings{"R": {
		relation.Tuple{1, 1, 5},
		relation.Tuple{1, 2, 6},
		relation.Tuple{3, 3, 7},
	}}
	for _, strat := range []Strategy{HashJoin, Backtracking, WCOJ} {
		out, err := Evaluate(q, b, strat)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 2 {
			t.Errorf("%v: out = %v, want 2 rows", strat, out)
		}
	}
}

func TestEvaluateArityMismatch(t *testing.T) {
	q := query.Chain(2)
	b := Bindings{"S1": {relation.Tuple{1}}, "S2": {relation.Tuple{1, 2}}}
	for _, strat := range []Strategy{HashJoin, Backtracking, WCOJ} {
		if _, err := Evaluate(q, b, strat); err == nil {
			t.Errorf("%v: want arity error", strat)
		}
	}
}

func TestUnknownStrategy(t *testing.T) {
	q := query.Chain(1)
	b := Bindings{"S1": {relation.Tuple{1, 2}}}
	if _, err := Evaluate(q, b, Strategy(99)); err == nil {
		t.Error("want error for unknown strategy")
	}
	if Strategy(99).String() == "" || HashJoin.String() != "hashjoin" || Backtracking.String() != "backtracking" {
		t.Error("Strategy.String")
	}
}

func TestFromDatabaseErrors(t *testing.T) {
	q := query.Chain(2)
	db := relation.NewDatabase(3)
	db.AddRelation(relation.New("S1", "x0", "x1"))
	if _, err := FromDatabase(q, db); err == nil {
		t.Error("want error for missing relation")
	}
	db.AddRelation(relation.New("S2", "x1")) // wrong arity
	if _, err := FromDatabase(q, db); err == nil {
		t.Error("want error for arity mismatch")
	}
}

// TestChainOnMatchingHasNAnswers: on a matching database the chain
// query L_k composes permutations, so it has exactly n answers
// (Table 1's "expected answer size" column, which is exact for L_k).
func TestChainOnMatchingHasNAnswers(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	for _, k := range []int{1, 2, 3, 5} {
		q := query.Chain(k)
		n := 40
		db := relation.MatchingDatabase(rng, q, n)
		b := bindingsOf(t, q, db)
		out, err := Evaluate(q, b, HashJoin)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != n {
			t.Errorf("L%d on matching db: %d answers, want %d", k, len(out), n)
		}
	}
}

// TestStarOnMatchingHasNAnswers: T_k likewise has exactly n answers.
func TestStarOnMatchingHasNAnswers(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	q := query.Star(3)
	n := 30
	db := relation.MatchingDatabase(rng, q, n)
	b := bindingsOf(t, q, db)
	out, err := Evaluate(q, b, Backtracking)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Errorf("T3 on matching db: %d answers, want %d", len(out), n)
	}
}

// TestStrategiesAgreeProperty: both strategies return identical answer
// sets on random matching databases for random small queries.
func TestStrategiesAgreeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 37))
		var q *query.Query
		switch rng.IntN(4) {
		case 0:
			q = query.Chain(1 + rng.IntN(4))
		case 1:
			q = query.Cycle(3 + rng.IntN(3))
		case 2:
			q = query.Star(1 + rng.IntN(4))
		default:
			q = query.SpokedWheel(1 + rng.IntN(3))
		}
		n := 4 + rng.IntN(12)
		db := relation.MatchingDatabase(rng, q, n)
		b, err := FromDatabase(q, db)
		if err != nil {
			return false
		}
		h, err1 := Evaluate(q, b, HashJoin)
		bt, err2 := Evaluate(q, b, Backtracking)
		if err1 != nil || err2 != nil || len(h) != len(bt) {
			return false
		}
		for i := range h {
			if !h[i].Equal(bt[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFormat(t *testing.T) {
	q := query.Chain(1)
	s := Format(q, []relation.Tuple{{1, 2}})
	if s != "x0,x1\n1,2\n" {
		t.Errorf("Format = %q", s)
	}
}
