package cc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func labelsAgree(t *testing.T, got, want map[int]int, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d labeled vertices, want %d", context, len(got), len(want))
	}
	for v, l := range want {
		if got[v] != l {
			t.Fatalf("%s: label(%d) = %d, want %d", context, v, got[v], l)
		}
	}
}

func TestLayeredStructure(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	g, err := Layered(rng, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 50 || g.NumEdges() != 40 {
		t.Fatalf("N=%d edges=%d, want 50, 40", g.N, g.NumEdges())
	}
	labels := SequentialComponents(g)
	comps := map[int]int{}
	for _, l := range labels {
		comps[l]++
	}
	if len(comps) != 10 {
		t.Errorf("components = %d, want 10 (one per path)", len(comps))
	}
	for l, size := range comps {
		if size != 5 {
			t.Errorf("component %d has %d vertices, want 5", l, size)
		}
	}
	if _, err := Layered(rng, 0, 5); err == nil {
		t.Error("want error for 0 layers")
	}
}

func TestRandomSparse(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	g, err := RandomSparse(rng, 50, 60)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 50 || g.NumEdges() != 60 {
		t.Fatalf("N=%d m=%d", g.N, g.NumEdges())
	}
	for _, e := range g.Edges {
		if e[0] == e[1] {
			t.Error("self loop generated")
		}
	}
	if _, err := RandomSparse(rng, 1, 5); err == nil {
		t.Error("want error for n=1")
	}
}

func TestSequentialComponentsSmall(t *testing.T) {
	g := &Graph{N: 6, Edges: [][2]int{{1, 2}, {2, 3}, {5, 6}}}
	labels := SequentialComponents(g)
	want := map[int]int{1: 1, 2: 1, 3: 1, 4: 4, 5: 5, 6: 5}
	labelsAgree(t, labels, want, "sequential")
}

func TestEdgeRelationBothDirections(t *testing.T) {
	g := &Graph{N: 3, Edges: [][2]int{{1, 2}}}
	r := g.EdgeRelation()
	if r.Size() != 2 {
		t.Fatalf("edge relation size = %d, want 2", r.Size())
	}
}

func TestNeighborMinCorrect(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	g, err := Layered(rng, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := SequentialComponents(g)
	res, err := Run(g, NeighborMin, Options{Workers: 4, Epsilon: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	labelsAgree(t, res.Labels, want, "neighbor-min")
	// Path diameter is 6: needs about 6 propagation rounds + setup.
	if res.Rounds < 6 {
		t.Errorf("neighbor-min rounds = %d; expected ≥ diameter 6", res.Rounds)
	}
}

func TestHashToMinCorrect(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	g, err := Layered(rng, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := SequentialComponents(g)
	res, err := Run(g, HashToMin, Options{Workers: 4, Epsilon: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	labelsAgree(t, res.Labels, want, "hash-to-min")
}

// TestHashToMinFewerRounds: on long paths hash-to-min converges in
// logarithmically many rounds while neighbor-min needs linearly many.
func TestHashToMinFewerRounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	g, err := Layered(rng, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := SequentialComponents(g)
	nm, err := Run(g, NeighborMin, Options{Workers: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	h2m, err := Run(g, HashToMin, Options{Workers: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	labelsAgree(t, nm.Labels, want, "neighbor-min")
	labelsAgree(t, h2m.Labels, want, "hash-to-min")
	if h2m.Rounds >= nm.Rounds {
		t.Errorf("hash-to-min rounds %d should beat neighbor-min %d on diameter-32 paths",
			h2m.Rounds, nm.Rounds)
	}
	if nm.Rounds < 32 {
		t.Errorf("neighbor-min rounds = %d, want ≥ diameter 32", nm.Rounds)
	}
	if h2m.Rounds > 16 {
		t.Errorf("hash-to-min rounds = %d, want ≈ log2(32)+O(1)", h2m.Rounds)
	}
}

func TestDenseTwoRound(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	g, err := RandomSparse(rng, 60, 90)
	if err != nil {
		t.Fatal(err)
	}
	want := SequentialComponents(g)
	res, err := DenseTwoRound(g, Options{Workers: 8, Epsilon: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	labelsAgree(t, res.Labels, want, "dense")
	if res.Rounds != 2 {
		t.Errorf("dense rounds = %d, want exactly 2", res.Rounds)
	}
}

// TestRoundsGrowWithLayers: neighbor-min round counts grow linearly in
// the number of layers — the Ω(log p) phenomenon of Theorem 4.10 shown
// on its input family (k = p^δ layers ⇒ rounds ≥ k ≥ log p).
func TestRoundsGrowWithLayers(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	prev := 0
	for _, layers := range []int{4, 8, 16} {
		g, err := Layered(rng, layers, 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(g, NeighborMin, Options{Workers: 4, Seed: 19})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds <= prev {
			t.Errorf("rounds did not grow: layers=%d rounds=%d (prev %d)", layers, res.Rounds, prev)
		}
		prev = res.Rounds
	}
}

// TestAlgorithmsAgreeProperty: both MPC algorithms match the
// sequential ground truth on random sparse graphs.
func TestAlgorithmsAgreeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 43))
		n := 10 + rng.IntN(40)
		m := rng.IntN(2 * n)
		g, err := RandomSparse(rng, n, m)
		if err != nil {
			return false
		}
		want := SequentialComponents(g)
		for _, algo := range []Algorithm{NeighborMin, HashToMin} {
			res, err := Run(g, algo, Options{Workers: 1 + rng.IntN(6), Seed: seed})
			if err != nil {
				return false
			}
			// Isolated vertices never appear in the edge relation; MPC
			// algorithms only label vertices incident to edges.
			for v, l := range res.Labels {
				if want[v] != l {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	g := &Graph{N: 2, Edges: [][2]int{{1, 2}}}
	if _, err := Run(g, NeighborMin, Options{Workers: 0}); err == nil {
		t.Error("want error for 0 workers")
	}
	if _, err := Run(g, Algorithm(9), Options{Workers: 2}); err == nil {
		t.Error("want error for unknown algorithm")
	}
	if NeighborMin.String() != "neighbor-min" || HashToMin.String() != "hash-to-min" {
		t.Error("Algorithm.String")
	}
	if Algorithm(9).String() == "" {
		t.Error("unknown Algorithm should render")
	}
}

func TestCapViolationReported(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	g, err := Layered(rng, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	// ε = 0 with tiny constant: sending everything trips the budget but
	// the run still completes and reports it.
	res, err := Run(g, NeighborMin, Options{Workers: 2, Epsilon: 0, CapConstant: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CapExceeded {
		t.Error("expected cap violation to be reported")
	}
}
