// Package cc studies CONNECTED-COMPONENTS in the tuple-based MPC(ε)
// model (Theorem 4.10 of Beame, Koutris, Suciu, PODS 2013).
//
// The theorem's lower bound reduces L_k (k = ⌊p^δ⌋) to connected
// components on a layered graph: k+1 layers of n/(k+1) vertices with a
// permutation between adjacent layers, so every component is a path
// that crosses all layers — one output tuple of L_k. Any tuple-based
// algorithm therefore needs Ω(log p) rounds on such sparse inputs.
//
// The package implements the layered-graph family, two tuple-based
// label-propagation algorithms (neighbor-min, which needs Θ(diameter)
// rounds, and a hash-to-min variant that converges in Θ(log diameter)
// rounds), and the dense-graph contrast: when a single server may
// receive the whole input (the regime of Karloff et al.), two rounds
// suffice.
package cc

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/exchange"
	"repro/internal/mpc"
	"repro/internal/relation"
)

// Graph is an undirected graph over vertices 1..N with an edge list.
type Graph struct {
	// N is the number of vertices.
	N int
	// Edges holds each undirected edge once, as (u,v) tuples.
	Edges [][2]int
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// EdgeRelation returns the graph as a binary relation with both
// orientations of every edge, the form consumed by the MPC algorithms.
func (g *Graph) EdgeRelation() *relation.Relation {
	r := relation.New("E", "u", "v")
	for _, e := range g.Edges {
		r.Tuples = append(r.Tuples, relation.Tuple{e[0], e[1]})
		r.Tuples = append(r.Tuples, relation.Tuple{e[1], e[0]})
	}
	return r
}

// InputBits returns the encoding size of the edge list.
func (g *Graph) InputBits() int64 {
	return int64(len(g.Edges)) * 2 * int64(relation.BitsPerValue(g.N))
}

// Layered builds the Theorem 4.10 input family: layers+1 layers of
// width vertices each, a uniform random permutation matching between
// adjacent layers. Every connected component is a path visiting all
// layers, so the graph has exactly width components and diameter
// layers.
func Layered(rng *rand.Rand, layers, width int) (*Graph, error) {
	if layers < 1 || width < 1 {
		return nil, fmt.Errorf("cc: layers = %d, width = %d; need ≥ 1", layers, width)
	}
	g := &Graph{N: (layers + 1) * width}
	vertex := func(layer, i int) int { return layer*width + i + 1 }
	for l := 0; l < layers; l++ {
		perm := rng.Perm(width)
		for i := 0; i < width; i++ {
			g.Edges = append(g.Edges, [2]int{vertex(l, i), vertex(l+1, perm[i])})
		}
	}
	return g, nil
}

// RandomSparse builds a random graph with n vertices and m edges
// (duplicates allowed, self-loops excluded).
func RandomSparse(rng *rand.Rand, n, m int) (*Graph, error) {
	if n < 2 || m < 0 {
		return nil, fmt.Errorf("cc: n = %d, m = %d", n, m)
	}
	g := &Graph{N: n}
	for len(g.Edges) < m {
		u := rng.IntN(n) + 1
		v := rng.IntN(n) + 1
		if u == v {
			continue
		}
		g.Edges = append(g.Edges, [2]int{u, v})
	}
	return g, nil
}

// SequentialComponents labels every vertex with the smallest vertex id
// of its component using union-find — the ground truth.
func SequentialComponents(g *Graph) map[int]int {
	parent := make([]int, g.N+1)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges {
		ru, rv := find(e[0]), find(e[1])
		if ru != rv {
			if ru < rv {
				parent[rv] = ru
			} else {
				parent[ru] = rv
			}
		}
	}
	// Label every vertex with its component's minimum vertex id.
	labels := make(map[int]int, g.N)
	minRep := make(map[int]int)
	for v := 1; v <= g.N; v++ {
		r := find(v)
		if m, ok := minRep[r]; !ok || v < m {
			minRep[r] = v
		}
	}
	for v := 1; v <= g.N; v++ {
		labels[v] = minRep[find(v)]
	}
	return labels
}

// Algorithm selects the label-propagation strategy.
type Algorithm int

// Available connected-components strategies.
const (
	// NeighborMin floods the minimum label along edges, one hop per
	// round: Θ(diameter) rounds.
	NeighborMin Algorithm = iota
	// HashToMin maintains per-vertex cluster sets and contracts them
	// toward the minimum, doubling reach per round: Θ(log diameter)
	// rounds on paths.
	HashToMin
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case NeighborMin:
		return "neighbor-min"
	case HashToMin:
		return "hash-to-min"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures an MPC connected-components run.
type Options struct {
	// Workers is p.
	Workers int
	// Epsilon is the space exponent for the receive cap.
	Epsilon float64
	// CapConstant is c; ≤ 0 disables enforcement.
	CapConstant float64
	// MaxRounds aborts runaway propagation (0 means 4·N, effectively
	// unbounded for correct algorithms).
	MaxRounds int
	// Seed drives vertex-to-worker placement.
	Seed uint64
}

// Result reports a run.
type Result struct {
	// Labels maps every vertex to its component label (the component's
	// minimum vertex id).
	Labels map[int]int
	// Rounds is the number of communication rounds used, including the
	// initial edge distribution round.
	Rounds int
	// Stats is the engine's communication record.
	Stats *mpc.Stats
	// CapExceeded reports whether the receive budget was violated.
	CapExceeded bool
}

// Run executes the chosen algorithm on g in the tuple-based MPC(ε)
// model and returns per-vertex component labels.
func Run(g *Graph, algo Algorithm, opts Options) (*Result, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("cc: Workers = %d", opts.Workers)
	}
	switch algo {
	case NeighborMin:
		return runNeighborMin(g, opts)
	case HashToMin:
		return runHashToMin(g, opts)
	default:
		return nil, fmt.Errorf("cc: unknown algorithm %v", algo)
	}
}

// owner assigns vertices to workers by hash — the same placement the
// exchange layer's HashPartitioner computes, so edge distribution and
// label routing agree.
func owner(v int, seed uint64, p int) int {
	return exchange.HashDest(v, seed, p)
}

func newCluster(g *Graph, opts Options) (*mpc.Cluster, error) {
	return mpc.NewCluster(mpc.Config{
		Workers:     opts.Workers,
		Epsilon:     opts.Epsilon,
		InputBits:   g.InputBits(),
		CapConstant: opts.CapConstant,
		DomainN:     g.N,
	})
}

func maxRounds(g *Graph, opts Options) int {
	if opts.MaxRounds > 0 {
		return opts.MaxRounds
	}
	return 4*g.N + 8
}

// runNeighborMin: edges are distributed to the owner of their source
// endpoint; every round each worker sends, for each held edge (u,v),
// the current label of u to the owner of v. Labels only decrease;
// the algorithm stops one round after no label changes.
func runNeighborMin(g *Graph, opts Options) (*Result, error) {
	p := opts.Workers
	cluster, err := newCluster(g, opts)
	if err != nil {
		return nil, err
	}
	capExceeded := false
	// Round 1: distribute both edge orientations to the source owner
	// through the exchange's hash partitioner.
	edges := g.EdgeRelation()
	if err := cluster.ScatterPart(edges, exchange.HashPartitioner{Col: 0, P: p, Seed: opts.Seed}); err != nil {
		if isCap(err) {
			capExceeded = true
		} else {
			return nil, err
		}
	}
	// Per-worker state: adjacency and labels of owned vertices.
	adj := make([]map[int][]int, p)
	labels := make([]map[int]int, p)
	for i := 0; i < p; i++ {
		adj[i] = make(map[int][]int)
		labels[i] = make(map[int]int)
		for _, t := range cluster.Worker(i).Received("E") {
			adj[i][t[0]] = append(adj[i][t[0]], t[1])
			labels[i][t[0]] = t[0]
		}
	}
	seen := make(map[int]int, p) // per-worker count of consumed "prop" tuples
	limit := maxRounds(g, opts)
	for round := 0; round < limit; round++ {
		// Every worker proposes labels to neighbors.
		err := cluster.RunRound(func(_ int, w *mpc.Worker, out *exchange.Outbox) {
			for u, ns := range adj[w.ID] {
				lbl := labels[w.ID][u]
				for _, v := range ns {
					out.Send(owner(v, opts.Seed, p), "prop", relation.Tuple{v, lbl})
				}
			}
		})
		if err != nil {
			if isCap(err) {
				capExceeded = true
			} else {
				return nil, err
			}
		}
		// Apply proposals (local computation; the engine's store is
		// append-only, so track the consumed prefix).
		changed := false
		for i := 0; i < p; i++ {
			w := cluster.Worker(i)
			props := w.ReceivedFrom("prop", seen[i])
			for _, t := range props {
				v, lbl := t[0], t[1]
				if cur, ok := labels[i][v]; ok && lbl < cur {
					labels[i][v] = lbl
					changed = true
				}
			}
			seen[i] += len(props)
		}
		if !changed {
			break
		}
	}
	out := make(map[int]int, g.N)
	for i := 0; i < p; i++ {
		for v, l := range labels[i] {
			out[v] = l
		}
	}
	return &Result{
		Labels:      out,
		Rounds:      cluster.Stats().NumRounds(),
		Stats:       cluster.Stats(),
		CapExceeded: capExceeded,
	}, nil
}

// runHashToMin: every vertex v keeps a cluster set C(v), initially
// {v} ∪ neighbors. Each round v sends min C(v) to every u ∈ C(v) and
// C(v) to the owner of min C(v); sets then absorb what arrived.
// On path graphs the reach doubles each round.
func runHashToMin(g *Graph, opts Options) (*Result, error) {
	p := opts.Workers
	cluster, err := newCluster(g, opts)
	if err != nil {
		return nil, err
	}
	capExceeded := false
	edges := g.EdgeRelation()
	if err := cluster.ScatterPart(edges, exchange.HashPartitioner{Col: 0, P: p, Seed: opts.Seed}); err != nil {
		if isCap(err) {
			capExceeded = true
		} else {
			return nil, err
		}
	}
	sets := make([]map[int]map[int]bool, p) // worker → vertex → cluster set
	for i := 0; i < p; i++ {
		sets[i] = make(map[int]map[int]bool)
		for _, t := range cluster.Worker(i).Received("E") {
			u, v := t[0], t[1]
			if sets[i][u] == nil {
				sets[i][u] = map[int]bool{u: true}
			}
			sets[i][u][v] = true
		}
	}
	seen := map[int]int{}
	limit := maxRounds(g, opts)
	for round := 0; round < limit; round++ {
		err := cluster.RunRound(func(_ int, w *mpc.Worker, out *exchange.Outbox) {
			emit := func(dstVertex int, payload relation.Tuple) {
				out.Send(owner(dstVertex, opts.Seed, p), "h2m", payload)
			}
			for v, set := range sets[w.ID] {
				mn := v
				for u := range set {
					if u < mn {
						mn = u
					}
				}
				// Send the minimum to every member, and every member
				// to the minimum. Tuples are (targetVertex, member).
				for u := range set {
					if u != mn {
						emit(u, relation.Tuple{u, mn})
						emit(mn, relation.Tuple{mn, u})
					}
				}
			}
		})
		if err != nil {
			if isCap(err) {
				capExceeded = true
			} else {
				return nil, err
			}
		}
		changed := false
		for i := 0; i < p; i++ {
			w := cluster.Worker(i)
			msgs := w.ReceivedFrom("h2m", seen[i])
			for _, t := range msgs {
				v, member := t[0], t[1]
				if sets[i][v] == nil {
					sets[i][v] = map[int]bool{v: true}
				}
				if !sets[i][v][member] {
					sets[i][v][member] = true
					changed = true
				}
			}
			seen[i] += len(msgs)
		}
		if !changed {
			break
		}
	}
	// Vertices may appear in several workers' sets; keep the minimum.
	final := make(map[int]int, g.N)
	for i := 0; i < p; i++ {
		for v, set := range sets[i] {
			mn := v
			for u := range set {
				if u < mn {
					mn = u
				}
			}
			if cur, ok := final[v]; !ok || mn < cur {
				final[v] = mn
			}
		}
	}
	return &Result{
		Labels:      final,
		Rounds:      cluster.Stats().NumRounds(),
		Stats:       cluster.Stats(),
		CapExceeded: capExceeded,
	}, nil
}

// DenseTwoRound is the Karloff-et-al contrast: when the receive budget
// admits the entire input at one server (dense regime / ε = 1), the
// whole edge list is sent to worker 0 in round one, labels are
// computed locally, and round two distributes the labels back to the
// vertices' owners. Exactly two communication rounds.
func DenseTwoRound(g *Graph, opts Options) (*Result, error) {
	p := opts.Workers
	cluster, err := newCluster(g, opts)
	if err != nil {
		return nil, err
	}
	capExceeded := false
	edges := g.EdgeRelation()
	if err := cluster.Scatter(edges, func(relation.Tuple) []int { return []int{0} }); err != nil {
		if isCap(err) {
			capExceeded = true
		} else {
			return nil, err
		}
	}
	// Worker 0 computes components locally.
	sub := &Graph{N: g.N}
	for _, t := range cluster.Worker(0).Received("E") {
		if t[0] < t[1] {
			sub.Edges = append(sub.Edges, [2]int{t[0], t[1]})
		}
	}
	labels := SequentialComponents(sub)
	// Round 2: send (v, label) to the owner of v.
	err = cluster.RunRound(func(_ int, w *mpc.Worker, out *exchange.Outbox) {
		if w.ID != 0 {
			return
		}
		vs := make([]int, 0, len(labels))
		for v := range labels {
			vs = append(vs, v)
		}
		sort.Ints(vs)
		for _, v := range vs {
			out.Send(owner(v, opts.Seed, p), "label", relation.Tuple{v, labels[v]})
		}
	})
	if err != nil {
		if isCap(err) {
			capExceeded = true
		} else {
			return nil, err
		}
	}
	out := make(map[int]int, g.N)
	for i := 0; i < p; i++ {
		for _, t := range cluster.Worker(i).Received("label") {
			out[t[0]] = t[1]
		}
	}
	return &Result{
		Labels:      out,
		Rounds:      cluster.Stats().NumRounds(),
		Stats:       cluster.Stats(),
		CapExceeded: capExceeded,
	}, nil
}

func isCap(err error) bool { return errors.Is(err, mpc.ErrCapExceeded) }
