package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"unsafe"

	"repro/internal/exchange"
)

// This file is the trusted fast path of the codec: the encoder and
// decoder used between this repo's own coordinator and worker
// processes, where every Data payload comes from a sealed
// exchange.Buffer by construction. The fast encoder reinterprets the
// packed word slice as raw little-endian bytes (an unsafe slice view,
// no per-word re-encoding) and hands the payload back as separate
// write segments so the transport can issue one vectored (writev)
// send per batch; when a sorted column is delta-compressible it
// switches to the uvarint delta encoding instead and inlines the
// smaller payload. The trusted Reader decodes raw payloads with a
// single copy into word memory and skips the re-sort and high-bit
// validation that the untrusted path performs.
//
// The validating Decode remains the mandatory path for untrusted
// input — worker handshakes, fuzzing, and the differential oracle —
// and accepts every fast encoding, so anything the fast path emits
// can always be checked against it.

// hostLittleEndian reports whether native uint64 memory order matches
// the encRaw wire order; big-endian hosts fall back to per-word byte
// swaps on both sides.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// deltaMinWords is the smallest packed run the fast encoder considers
// delta-compressing; below it the size probe costs more than the copy.
const deltaMinWords = 32

// deltaMaxRatio gates delta compression: the encoded payload must be
// at most 3/4 of the raw 8 bytes per word, so nearly-incompressible
// columns keep the zero-copy raw path.
const deltaMaxRatio = 0.75

// wordsLE returns the words' memory as little-endian wire bytes
// without copying when the host is little-endian; ok is false on
// big-endian hosts (callers swap-copy instead).
func wordsLE(words []uint64) (b []byte, ok bool) {
	if !hostLittleEndian {
		return nil, false
	}
	if len(words) == 0 {
		return nil, true
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8), true
}

// appendUvint-style helpers for the append-based fast encoder.
func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

func appendString(dst []byte, s string) ([]byte, error) {
	if len(s) > maxName {
		return dst, fmt.Errorf("wire: string of %d bytes exceeds %d", len(s), maxName)
	}
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

// segRef marks a zero-copy word segment to splice into the vectored
// write list after offset start of the head buffer.
type segRef struct {
	start int
	seg   []byte
}

// AppendFrames fast-encodes frames for one connection. Frame headers,
// control payloads and compressed Data payloads are appended to head
// (which may be nil; the grown slice is returned for reuse); raw
// packed Data payloads are returned as separate zero-copy segments
// aliasing the buffers' word memory. The segments slot into the
// returned write list in wire order, ready for a vectored send
// (net.Buffers). Callers must not mutate the frames' buffers until
// the write completes — sealed buffers are immutable, so this holds
// by construction on the dist hot path.
func AppendFrames(head []byte, frames []*Frame) (newHead []byte, bufs [][]byte, err error) {
	var segs []segRef
	for _, f := range frames {
		var seg []byte
		head, seg, err = appendFrame(head, f)
		if err != nil {
			return head, nil, err
		}
		if len(seg) > 0 {
			segs = append(segs, segRef{start: len(head), seg: seg})
		}
	}
	// Build the write list only after head has stopped growing:
	// earlier slices into a still-appending buffer would dangle on
	// reallocation.
	bufs = make([][]byte, 0, 2*len(segs)+1)
	prev := 0
	for _, s := range segs {
		if s.start > prev {
			bufs = append(bufs, head[prev:s.start])
		}
		bufs = append(bufs, s.seg)
		prev = s.start
	}
	if len(head) > prev {
		bufs = append(bufs, head[prev:])
	}
	return head, bufs, nil
}

// appendFrame appends one frame's header and inline bytes to dst and
// returns any zero-copy payload segment that belongs immediately
// after the appended bytes.
func appendFrame(dst []byte, f *Frame) ([]byte, []byte, error) {
	hdrAt := len(dst)
	dst = append(dst, byte(f.Type), 0, 0, 0, 0)
	bodyAt := len(dst)
	var seg []byte
	var err error
	switch f.Type {
	case TypeData:
		dst, seg, err = appendData(dst, &f.Data)
		if err != nil {
			return dst, nil, err
		}
	case TypeDelta:
		dst, seg, err = appendDelta(dst, &f.Delta)
		if err != nil {
			return dst, nil, err
		}
	case TypeHello:
		dst = appendU16(dst, f.Hello.Version)
		dst = appendU32(dst, f.Hello.Worker)
		dst = appendU32(dst, f.Hello.P)
	case TypeBarrier, TypeAck, TypePing, TypePong, TypeEpoch:
		dst = appendU32(dst, f.Round)
	case TypeJoin:
		if dst, err = appendString(dst, f.Join.Query); err != nil {
			return dst, nil, err
		}
		if dst, err = appendString(dst, f.Join.View); err != nil {
			return dst, nil, err
		}
		dst = append(dst, f.Join.Strategy)
		if len(f.Join.Bindings) > maxName {
			return dst, nil, fmt.Errorf("wire: %d bindings exceed limit", len(f.Join.Bindings))
		}
		dst = appendU16(dst, uint16(len(f.Join.Bindings)))
		for _, b := range f.Join.Bindings {
			if dst, err = appendString(dst, b[0]); err != nil {
				return dst, nil, err
			}
			if dst, err = appendString(dst, b[1]); err != nil {
				return dst, nil, err
			}
		}
	case TypeGather:
		if dst, err = appendString(dst, f.View); err != nil {
			return dst, nil, err
		}
	case TypeDone:
		dst = appendU32(dst, f.Count)
	case TypeError:
		if dst, err = appendString(dst, f.Msg); err != nil {
			return dst, nil, err
		}
	case TypeCheckpoint:
		// Checkpoints reuse the canonical manifest validation so the
		// byte representation stays unique.
		if dst, err = appendManifest(dst, f.Checkpoint); err != nil {
			return dst, nil, err
		}
	case TypeTrace:
		dst = appendU64(dst, f.Trace.TraceID)
		dst = appendU64(dst, f.Trace.Span)
		dst = appendU32(dst, f.Trace.Round)
		if dst, err = appendString(dst, f.Trace.QueryID); err != nil {
			return dst, nil, err
		}
	default:
		return dst, nil, fmt.Errorf("wire: encode unknown frame type %d", f.Type)
	}
	n := len(dst) - bodyAt + len(seg)
	if n > MaxPayload {
		return dst, nil, fmt.Errorf("wire: %s payload %d bytes exceeds %d", f.Type, n, MaxPayload)
	}
	binary.BigEndian.PutUint32(dst[hdrAt+1:], uint32(n))
	return dst, seg, nil
}

// appendManifest append-encodes a checkpoint manifest with the same
// canonical validation as encodeManifest.
func appendManifest(dst []byte, m *Manifest) ([]byte, error) {
	if m == nil {
		return dst, fmt.Errorf("wire: checkpoint frame without manifest")
	}
	dst = appendU32(dst, m.Epoch)
	dst = appendU32(dst, m.Round)
	dst = appendU32(dst, uint32(len(m.Entries)))
	var err error
	for i, e := range m.Entries {
		if i > 0 && !manifestLess(m.Entries[i-1], e) {
			return dst, fmt.Errorf("wire: manifest entries not strictly ascending at %d", i)
		}
		dst = appendU32(dst, e.Worker)
		if dst, err = appendString(dst, e.Store); err != nil {
			return dst, err
		}
		dst = appendU32(dst, e.Runs)
		dst = appendU64(dst, e.Tuples)
	}
	return dst, nil
}

// appendData appends a Data payload, choosing the encoding: packed
// buffers ship as zero-copy raw words (returned as seg) unless the
// column delta-compresses below deltaMaxRatio, in which case the
// smaller delta payload is inlined; flat-path buffers keep the
// canonical big-endian flat encoding.
func appendData(dst []byte, d *Data) ([]byte, []byte, error) {
	dst = appendU32(dst, d.Round)
	dst = appendU32(dst, d.Dest)
	var err error
	if dst, err = appendString(dst, d.Rel); err != nil {
		return dst, nil, err
	}
	return appendBufferBody(dst, d.Buf)
}

// appendDelta appends a Delta payload; the buffer body shares the
// Data encodings and encoding choice.
func appendDelta(dst []byte, d *Delta) ([]byte, []byte, error) {
	dst = appendU32(dst, d.Round)
	dst = appendU32(dst, d.Dest)
	var err error
	if dst, err = appendString(dst, d.Store); err != nil {
		return dst, nil, err
	}
	if dst, err = appendString(dst, d.View); err != nil {
		return dst, nil, err
	}
	if d.Del {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return appendBufferBody(dst, d.Buf)
}

// appendBufferBody appends one sealed buffer body, choosing the
// encoding as documented on appendData.
func appendBufferBody(dst []byte, buf *exchange.Buffer) ([]byte, []byte, error) {
	if !buf.Sealed() {
		// Both fast encodings assume sorted words (raw is validated as
		// sorted on receive, delta cannot represent disorder), and the
		// dist layer only ever ships sealed runs.
		return dst, nil, fmt.Errorf("wire: fast-encode of unsealed buffer")
	}
	arity := buf.Arity()
	if arity < 1 || arity > maxName {
		return dst, nil, fmt.Errorf("wire: buffer arity %d out of range", arity)
	}
	dst = appendU16(dst, uint16(arity))
	if words, ok := buf.Words(); ok {
		if len(words) >= deltaMinWords {
			if size := exchange.DeltaWordsSize(words); float64(size) <= deltaMaxRatio*float64(len(words)*8) {
				dst = append(dst, encDelta)
				dst = appendU32(dst, uint32(len(words)))
				return exchange.AppendDeltaWords(dst, words), nil, nil
			}
		}
		dst = append(dst, encRaw)
		dst = appendU32(dst, uint32(len(words)))
		if seg, ok := wordsLE(words); ok {
			return dst, seg, nil
		}
		// Big-endian host: swap-copy inline instead of aliasing.
		for _, w := range words {
			dst = binary.LittleEndian.AppendUint64(dst, w)
		}
		return dst, nil, nil
	}
	flat := buf.Flat()
	dst = append(dst, encFlat)
	dst = appendU32(dst, uint32(len(flat)/arity))
	for _, v := range flat {
		dst = appendU64(dst, uint64(int64(v)))
	}
	return dst, nil, nil
}

// Reader decodes frames from a stream this process trusts — the
// post-handshake coordinator↔worker connections, whose Data payloads
// are produced from sealed buffers by our own fast encoder. Raw word
// payloads decode with a single copy into word memory and skip the
// re-sort and high-bit validation of the untrusted path; control
// frames go through the same validating parser as Decode. The payload
// scratch buffer is reused across calls, so decoding allocates only
// the word storage that outlives the frame.
//
// A Reader must never be pointed at input from outside this process's
// trust boundary; Decode is the mandatory path there.
type Reader struct {
	r   io.Reader
	buf []byte
}

// NewTrustedReader returns a Reader over r, which should already be
// buffered (the dist transports hand in their connection's
// bufio.Reader).
func NewTrustedReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// Next reads and decodes one frame. It returns io.EOF when the stream
// ends cleanly between frames and io.ErrUnexpectedEOF mid-frame,
// matching Decode.
func (rd *Reader) Next() (*Frame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(rd.r, hdr[:1]); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(rd.r, hdr[1:]); err != nil {
		return nil, unexpected(err)
	}
	typ := Type(hdr[0])
	n := int(binary.BigEndian.Uint32(hdr[1:]))
	if n > MaxPayload {
		return nil, fmt.Errorf("wire: %s payload length %d exceeds %d", typ, n, MaxPayload)
	}
	if cap(rd.buf) < n {
		rd.buf = make([]byte, n)
	}
	body := rd.buf[:n]
	if _, err := io.ReadFull(rd.r, body); err != nil {
		return nil, unexpected(err)
	}
	switch typ {
	case TypeData:
		f := &Frame{Type: typ}
		if err := decodeDataTrusted(body, &f.Data); err != nil {
			return nil, fmt.Errorf("wire: %s frame: %w", typ, err)
		}
		return f, nil
	case TypeDelta:
		f := &Frame{Type: typ}
		if err := decodeDeltaTrusted(body, &f.Delta); err != nil {
			return nil, fmt.Errorf("wire: %s frame: %w", typ, err)
		}
		return f, nil
	default:
		return decodePayload(typ, body)
	}
}

// decodeDataTrusted parses a Data payload on the trusted path: raw
// and packed words go straight into sealed buffers without re-sorting
// or width validation, delta payloads decode through the (inherently
// order-preserving) varint codec, and the flat fallback reuses the
// validating constructor since it is off the hot path.
func decodeDataTrusted(body []byte, d *Data) error {
	p := &payloadReader{b: body}
	d.Round = p.u32()
	d.Dest = p.u32()
	d.Rel = p.str()
	buf, err := decodeBufferBodyTrusted(p)
	if err != nil {
		return err
	}
	d.Buf = buf
	return nil
}

// decodeDeltaTrusted parses a Delta payload on the trusted path; the
// buffer body shares decodeDataTrusted's fast decodings.
func decodeDeltaTrusted(body []byte, d *Delta) error {
	p := &payloadReader{b: body}
	d.Round = p.u32()
	d.Dest = p.u32()
	d.Store = p.str()
	d.View = p.str()
	op := p.u8()
	if p.err == nil && op > 1 {
		return fmt.Errorf("delta op %d", op)
	}
	d.Del = op == 1
	buf, err := decodeBufferBodyTrusted(p)
	if err != nil {
		return err
	}
	d.Buf = buf
	return nil
}

// decodeBufferBodyTrusted parses one buffer body on the trusted path
// and requires full payload consumption.
func decodeBufferBodyTrusted(p *payloadReader) (*exchange.Buffer, error) {
	arity := int(p.u16())
	enc := p.u8()
	count := int(p.u32())
	if p.err != nil {
		return nil, p.err
	}
	if arity < 1 {
		return nil, fmt.Errorf("arity %d", arity)
	}
	var out *exchange.Buffer
	switch enc {
	case encRaw:
		if !p.need(count * 8) {
			return nil, p.err
		}
		raw := p.b[p.off : p.off+count*8]
		p.off += count * 8
		words := make([]uint64, count)
		if hostLittleEndian {
			if count > 0 {
				copy(unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), count*8), raw)
			}
		} else {
			for i := range words {
				words[i] = binary.LittleEndian.Uint64(raw[i*8:])
			}
		}
		buf, err := exchange.NewBufferFromSortedWords(arity, words)
		if err != nil {
			return nil, err
		}
		out = buf
	case encDelta:
		words, err := exchange.DecodeDeltaWords(p.b[p.off:], count)
		if err != nil {
			return nil, err
		}
		p.off = len(p.b)
		buf, err := exchange.NewBufferFromSortedWords(arity, words)
		if err != nil {
			return nil, err
		}
		out = buf
	case encPacked:
		if !p.need(count * 8) {
			return nil, p.err
		}
		words := make([]uint64, count)
		for i := range words {
			words[i] = p.u64()
		}
		buf, err := exchange.NewBufferFromSortedWords(arity, words)
		if err != nil {
			return nil, err
		}
		out = buf
	case encFlat:
		values := count * arity
		if !p.need(values * 8) {
			return nil, p.err
		}
		flat := make([]int, values)
		for i := range flat {
			flat[i] = int(int64(p.u64()))
		}
		buf, err := exchange.NewBufferFromFlat(arity, flat)
		if err != nil {
			return nil, err
		}
		out = buf
	default:
		return nil, fmt.Errorf("unknown buffer encoding %d", enc)
	}
	if p.err != nil {
		return nil, p.err
	}
	if len(p.b) != p.off {
		return nil, fmt.Errorf("%d trailing payload bytes", len(p.b)-p.off)
	}
	return out, nil
}
