// Package wire defines the length-prefixed frame format spoken
// between the distributed MPC coordinator and its worker processes
// (internal/dist, cmd/mpcworker).
//
// Every frame is
//
//	type   byte   — a Type constant
//	length uint32 — payload size in bytes, big-endian, ≤ MaxPayload
//	payload       — type-specific, all integers big-endian
//
// The payload that matters is the columnar one: a Data frame carries
// one sealed exchange.Buffer — the unit the exchange layer ships
// between workers — as the round id, the destination shard, the store
// name, and the buffer body in its native encoding: one uint64 word
// per tuple on the packed path, a row-major int64 sequence on the
// flat fallback path. Control frames (Hello, Barrier, Join, Gather,
// Ack, Done, Error) carry the BSP protocol around the data.
//
// Decode is defensive: any malformed or truncated frame yields an
// error, never a panic, and allocation is bounded by the bytes that
// actually arrive (a length prefix larger than the available input
// cannot force a large allocation). FuzzDecodeFrame in this package
// holds the codec to that contract.
package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"

	"repro/internal/exchange"
)

// Type enumerates the frame kinds of the protocol.
type Type uint8

// Frame types. The coordinator sends Hello, Data, Barrier, Join and
// Gather; a worker replies with Ack, Data, Done and Error.
const (
	// TypeHello opens a session: protocol version, worker id, pool
	// size. The worker replies with an Ack.
	TypeHello Type = 1 + iota
	// TypeData carries one sealed columnar run for one destination
	// shard. Sent coordinator→worker during scatter rounds and
	// worker→coordinator while answering a Gather.
	TypeData
	// TypeBarrier ends a communication round; the worker acks it after
	// it has ingested every preceding Data frame (frames on one
	// connection are processed in order).
	TypeBarrier
	// TypeJoin instructs the worker to evaluate a conjunctive query
	// over its stored relations and store the result under a view name.
	TypeJoin
	// TypeGather asks the worker to stream the runs it holds under a
	// view name back as Data frames, terminated by a Done frame.
	TypeGather
	// TypeAck acknowledges a Hello, Barrier or Join, echoing a tag
	// (the round number for barriers).
	TypeAck
	// TypeDone terminates a Gather stream and reports the number of
	// Data frames that preceded it.
	TypeDone
	// TypeError reports a worker-side failure; the session is dead
	// afterwards.
	TypeError
	// TypePing is a coordinator heartbeat carrying a sequence tag in
	// Round; a live worker echoes it back as a Pong.
	TypePing
	// TypePong answers a Ping, echoing the sequence tag in Round.
	TypePong
	// TypeEpoch announces the coordinator's recovery epoch in Round.
	// Epochs only ever grow: a worker rejects a decreasing epoch as a
	// stale coordinator and acks an accepted one, echoing the epoch.
	TypeEpoch
	// TypeCheckpoint carries a checkpoint Manifest — the coordinator's
	// record of which per-worker sorted runs are durable after a round
	// barrier. The worker validates the manifest's epoch against its
	// session epoch and acks, echoing the manifest round.
	TypeCheckpoint
	// TypeDelta carries one sealed delta run for incremental view
	// maintenance: the tuples of a maintenance batch routed to one
	// worker. A delete delta tombstones the run's tuples in the named
	// store; an append delta registers the run under the store and,
	// when a view name is present, under that view as well (the
	// Δ-relation the maintenance join reads). Like Data, Delta frames
	// are unacknowledged — the round barrier is the ingestion fence.
	TypeDelta
	// TypeTrace carries a distributed-tracing span context
	// coordinator→worker: the trace id, the coordinator-side span the
	// round's work parents under, the round number, and the query id.
	// Trace frames are unacknowledged (the round barrier fences them
	// like Data); a worker simply records the most recent header so its
	// session can attribute work to the query being traced.
	TypeTrace
)

// String names the frame type.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeData:
		return "data"
	case TypeBarrier:
		return "barrier"
	case TypeJoin:
		return "join"
	case TypeGather:
		return "gather"
	case TypeAck:
		return "ack"
	case TypeDone:
		return "done"
	case TypeError:
		return "error"
	case TypePing:
		return "ping"
	case TypePong:
		return "pong"
	case TypeEpoch:
		return "epoch"
	case TypeCheckpoint:
		return "checkpoint"
	case TypeDelta:
		return "delta"
	case TypeTrace:
		return "trace"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Version is the protocol version carried by Hello frames; a worker
// rejects a coordinator speaking a different version. Version 2 added
// the fast-path Data encodings (raw little-endian words, delta-varint
// words) that version-1 decoders would reject; version 3 added the
// Delta frame of incremental view maintenance; version 4 added the
// Trace frame of per-round distributed tracing.
const Version = 4

// MaxPayload bounds a frame's declared payload size (128 MiB). A
// larger length prefix is rejected before any payload is read.
const MaxPayload = 1 << 27

// maxName bounds store/view name and query-text lengths inside
// payloads (they are length-prefixed with uint16, so this is also the
// encoding limit).
const maxName = math.MaxUint16

// Hello is the session-opening payload.
type Hello struct {
	// Version is the sender's protocol version (must equal Version).
	Version uint16
	// Worker is the id this connection plays in the pool, in [0, P).
	Worker uint32
	// P is the worker-pool size.
	P uint32
}

// Data is one sealed columnar run in flight.
type Data struct {
	// Round is the communication round the run belongs to (0 for
	// gather replies).
	Round uint32
	// Dest is the destination shard (worker id). A worker rejects a
	// Data frame whose Dest is not its own id — catching routing bugs
	// at the wire instead of as silently wrong answers.
	Dest uint32
	// Rel is the store name the run lands under.
	Rel string
	// Buf is the run itself.
	Buf *exchange.Buffer
}

// Delta is one sealed maintenance run in flight. Its buffer body uses
// the same encodings as Data.
type Delta struct {
	// Round is the communication round the delta belongs to.
	Round uint32
	// Dest is the destination shard (worker id); workers reject
	// mis-routed deltas like mis-routed Data.
	Dest uint32
	// Store is the resident store the delta applies to.
	Store string
	// View is the Δ-relation view name an append delta also registers
	// its run under; empty for delete deltas (and for appends that no
	// maintenance join will read).
	View string
	// Del discriminates delete (tombstone) from append deltas.
	Del bool
	// Buf is the run itself.
	Buf *exchange.Buffer
}

// TraceHeader is the span context a Trace frame propagates
// coordinator→worker.
type TraceHeader struct {
	// TraceID identifies the trace the coming round belongs to.
	TraceID uint64
	// Span is the coordinator-side span id the round's worker-side
	// work parents under.
	Span uint64
	// Round is the communication round the header announces.
	Round uint32
	// QueryID is the serving-layer query id the trace belongs to.
	QueryID string
}

// Join is the local-evaluation command.
type Join struct {
	// Query is the conjunctive query in query.Parse syntax.
	Query string
	// View is the store name the evaluation result lands under.
	View string
	// Strategy selects the localjoin algorithm (the numeric value of a
	// localjoin.Strategy).
	Strategy uint8
	// Bindings maps atom names to store names when they differ (the
	// multiround executor stores inputs under view-prefixed names).
	// Atoms without an entry read the store of their own name.
	Bindings [][2]string
}

// Manifest is the checkpoint record a coordinator emits after each
// round barrier when recovery is enabled: for every (worker, store)
// pair it names how many sealed runs — and how many tuples across
// them — are durably ingested at that worker as of Round. A recovering
// coordinator replays exactly this state into a replacement worker.
//
// The canonical encoding orders entries strictly ascending by
// (Worker, Store); DecodeManifest rejects anything else, so a manifest
// has exactly one byte representation.
type Manifest struct {
	// Epoch is the recovery epoch the manifest belongs to.
	Epoch uint32
	// Round is the barrier the manifest describes.
	Round uint32
	// Entries lists the durable runs, ordered by (Worker, Store).
	Entries []ManifestEntry
}

// ManifestEntry is one (worker, store) line of a checkpoint manifest.
type ManifestEntry struct {
	// Worker is the worker id holding the runs.
	Worker uint32
	// Store is the store name the runs live under.
	Store string
	// Runs counts the sealed runs delivered to the store.
	Runs uint32
	// Tuples counts the tuples across those runs.
	Tuples uint64
}

// manifestEntryMin is the smallest encoded entry (worker u32, empty
// store u16 prefix, runs u32, tuples u64): the declared entry count is
// checked against the remaining payload at this granularity before any
// entry allocation.
const manifestEntryMin = 4 + 2 + 4 + 8

// Frame is one decoded protocol frame; the field matching Type is
// meaningful, the rest are zero.
type Frame struct {
	// Type discriminates the payload.
	Type Type
	// Hello is set for TypeHello.
	Hello Hello
	// Data is set for TypeData.
	Data Data
	// Delta is set for TypeDelta.
	Delta Delta
	// Join is set for TypeJoin.
	Join Join
	// Round is set for TypeBarrier and TypeAck (the echoed tag), for
	// TypePing and TypePong (the heartbeat sequence), and for TypeEpoch
	// (the announced epoch).
	Round uint32
	// View is set for TypeGather.
	View string
	// Count is set for TypeDone: the number of Data frames streamed.
	Count uint32
	// Msg is set for TypeError.
	Msg string
	// Checkpoint is set for TypeCheckpoint.
	Checkpoint *Manifest
	// Trace is set for TypeTrace.
	Trace TraceHeader
}

// buffer encoding discriminators inside Data payloads. encPacked and
// encFlat are the canonical big-endian encodings Encode emits; encRaw
// and encDelta are the fast-path encodings AppendFrames chooses for
// packed buffers (raw little-endian word memory for vectored sends,
// delta-varint for skew-compressible columns). Decode validates all
// four.
const (
	encPacked = 0
	encFlat   = 1
	encRaw    = 2
	encDelta  = 3
)

// Encode writes one frame to w in wire format.
func Encode(w io.Writer, f *Frame) error {
	var payload bytes.Buffer
	switch f.Type {
	case TypeHello:
		putU16(&payload, f.Hello.Version)
		putU32(&payload, f.Hello.Worker)
		putU32(&payload, f.Hello.P)
	case TypeData:
		if err := encodeData(&payload, &f.Data); err != nil {
			return err
		}
	case TypeDelta:
		if err := encodeDelta(&payload, &f.Delta); err != nil {
			return err
		}
	case TypeBarrier, TypeAck, TypePing, TypePong, TypeEpoch:
		putU32(&payload, f.Round)
	case TypeCheckpoint:
		if err := encodeManifest(&payload, f.Checkpoint); err != nil {
			return err
		}
	case TypeTrace:
		putU64(&payload, f.Trace.TraceID)
		putU64(&payload, f.Trace.Span)
		putU32(&payload, f.Trace.Round)
		if err := putString(&payload, f.Trace.QueryID); err != nil {
			return err
		}
	case TypeJoin:
		if err := putString(&payload, f.Join.Query); err != nil {
			return err
		}
		if err := putString(&payload, f.Join.View); err != nil {
			return err
		}
		payload.WriteByte(f.Join.Strategy)
		if len(f.Join.Bindings) > maxName {
			return fmt.Errorf("wire: %d bindings exceed limit", len(f.Join.Bindings))
		}
		putU16(&payload, uint16(len(f.Join.Bindings)))
		for _, b := range f.Join.Bindings {
			if err := putString(&payload, b[0]); err != nil {
				return err
			}
			if err := putString(&payload, b[1]); err != nil {
				return err
			}
		}
	case TypeGather:
		if err := putString(&payload, f.View); err != nil {
			return err
		}
	case TypeDone:
		putU32(&payload, f.Count)
	case TypeError:
		if err := putString(&payload, f.Msg); err != nil {
			return err
		}
	default:
		return fmt.Errorf("wire: encode unknown frame type %d", f.Type)
	}
	if payload.Len() > MaxPayload {
		return fmt.Errorf("wire: %s payload %d bytes exceeds %d", f.Type, payload.Len(), MaxPayload)
	}
	var hdr [5]byte
	hdr[0] = byte(f.Type)
	binary.BigEndian.PutUint32(hdr[1:], uint32(payload.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// encodeData serializes round, dest, name and the buffer body.
func encodeData(w *bytes.Buffer, d *Data) error {
	putU32(w, d.Round)
	putU32(w, d.Dest)
	if err := putString(w, d.Rel); err != nil {
		return err
	}
	return encodeBufferBody(w, d.Buf)
}

// encodeDelta serializes round, dest, store, view, the op byte and the
// buffer body.
func encodeDelta(w *bytes.Buffer, d *Delta) error {
	putU32(w, d.Round)
	putU32(w, d.Dest)
	if err := putString(w, d.Store); err != nil {
		return err
	}
	if err := putString(w, d.View); err != nil {
		return err
	}
	if d.Del {
		w.WriteByte(1)
	} else {
		w.WriteByte(0)
	}
	return encodeBufferBody(w, d.Buf)
}

// encodeBufferBody serializes one buffer in the canonical encodings:
// arity u16, encoding byte, tuple count u32, then big-endian words
// (packed path) or big-endian row-major values (flat path). It is the
// body shared by Data and Delta payloads.
func encodeBufferBody(w *bytes.Buffer, buf *exchange.Buffer) error {
	arity := buf.Arity()
	if arity < 1 || arity > maxName {
		return fmt.Errorf("wire: buffer arity %d out of range", arity)
	}
	putU16(w, uint16(arity))
	if words, ok := buf.Words(); ok {
		w.WriteByte(encPacked)
		putU32(w, uint32(len(words)))
		var scratch [8]byte
		for _, word := range words {
			binary.BigEndian.PutUint64(scratch[:], word)
			w.Write(scratch[:])
		}
		return nil
	}
	flat := buf.Flat()
	w.WriteByte(encFlat)
	putU32(w, uint32(len(flat)/arity))
	var scratch [8]byte
	for _, v := range flat {
		binary.BigEndian.PutUint64(scratch[:], uint64(int64(v)))
		w.Write(scratch[:])
	}
	return nil
}

// Decode reads one frame from r. It returns io.EOF when r is
// exhausted before the first header byte and io.ErrUnexpectedEOF on a
// truncated frame. Allocation is bounded by the bytes actually
// available in r, not by the declared length.
func Decode(r io.Reader) (*Frame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, unexpected(err)
	}
	typ := Type(hdr[0])
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxPayload {
		return nil, fmt.Errorf("wire: %s payload length %d exceeds %d", typ, n, MaxPayload)
	}
	// Copy rather than pre-allocate: a lying length prefix on a
	// truncated stream only allocates what the stream actually holds.
	var body bytes.Buffer
	m, err := io.CopyN(&body, r, int64(n))
	if err != nil || m != int64(n) {
		return nil, unexpected(err)
	}
	return decodePayload(typ, body.Bytes())
}

// decodePayload parses one frame payload with full validation. It is
// the body shared by Decode (untrusted streams) and the control-frame
// cases of the trusted Reader.
func decodePayload(typ Type, body []byte) (*Frame, error) {
	p := &payloadReader{b: body}
	f := &Frame{Type: typ}
	switch typ {
	case TypeHello:
		f.Hello.Version = p.u16()
		f.Hello.Worker = p.u32()
		f.Hello.P = p.u32()
	case TypeData:
		decodeData(p, &f.Data)
	case TypeDelta:
		decodeDelta(p, &f.Delta)
	case TypeBarrier, TypeAck, TypePing, TypePong, TypeEpoch:
		f.Round = p.u32()
	case TypeCheckpoint:
		f.Checkpoint = decodeManifest(p)
	case TypeTrace:
		f.Trace.TraceID = p.u64()
		f.Trace.Span = p.u64()
		f.Trace.Round = p.u32()
		f.Trace.QueryID = p.str()
	case TypeJoin:
		f.Join.Query = p.str()
		f.Join.View = p.str()
		f.Join.Strategy = p.u8()
		nb := int(p.u16())
		for i := 0; i < nb && p.err == nil; i++ {
			f.Join.Bindings = append(f.Join.Bindings, [2]string{p.str(), p.str()})
		}
	case TypeGather:
		f.View = p.str()
	case TypeDone:
		f.Count = p.u32()
	case TypeError:
		f.Msg = p.str()
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", uint8(typ))
	}
	if p.err != nil {
		return nil, fmt.Errorf("wire: %s frame: %w", typ, p.err)
	}
	if len(p.b) != p.off {
		return nil, fmt.Errorf("wire: %s frame has %d trailing payload bytes", typ, len(p.b)-p.off)
	}
	return f, nil
}

// encodeManifest serializes a checkpoint manifest, enforcing the
// canonical strictly-ascending (worker, store) entry order so every
// manifest has one byte representation.
func encodeManifest(w *bytes.Buffer, m *Manifest) error {
	if m == nil {
		return fmt.Errorf("wire: checkpoint frame without manifest")
	}
	putU32(w, m.Epoch)
	putU32(w, m.Round)
	putU32(w, uint32(len(m.Entries)))
	for i, e := range m.Entries {
		if i > 0 && !manifestLess(m.Entries[i-1], e) {
			return fmt.Errorf("wire: manifest entries not strictly ascending at %d", i)
		}
		putU32(w, e.Worker)
		if err := putString(w, e.Store); err != nil {
			return err
		}
		putU32(w, e.Runs)
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], e.Tuples)
		w.Write(b[:])
	}
	return nil
}

// decodeManifest parses a manifest payload. The declared entry count
// is validated against the remaining payload at minimum-entry
// granularity before any allocation, so a lying count cannot force a
// large allocation; entries are then required to be strictly ascending
// by (worker, store).
func decodeManifest(p *payloadReader) *Manifest {
	m := &Manifest{Epoch: p.u32(), Round: p.u32()}
	count := int(p.u32())
	if p.err != nil {
		return nil
	}
	if count*manifestEntryMin > len(p.b)-p.off {
		p.fail(fmt.Errorf("manifest count %d exceeds payload", count))
		return nil
	}
	m.Entries = make([]ManifestEntry, 0, count)
	for i := 0; i < count && p.err == nil; i++ {
		e := ManifestEntry{Worker: p.u32(), Store: p.str(), Runs: p.u32(), Tuples: p.u64()}
		if p.err != nil {
			return nil
		}
		if i > 0 && !manifestLess(m.Entries[i-1], e) {
			p.fail(fmt.Errorf("manifest entries not strictly ascending at %d", i))
			return nil
		}
		m.Entries = append(m.Entries, e)
	}
	return m
}

// manifestLess orders entries by (worker, store), strictly.
func manifestLess(a, b ManifestEntry) bool {
	if a.Worker != b.Worker {
		return a.Worker < b.Worker
	}
	return a.Store < b.Store
}

// DecodeManifest parses a standalone checkpoint-manifest payload (the
// body of a TypeCheckpoint frame) with the same validation Decode
// applies: bounded allocation, full consumption, canonical entry
// order. It exists so the manifest codec can be fuzzed directly.
func DecodeManifest(b []byte) (*Manifest, error) {
	p := &payloadReader{b: b}
	m := decodeManifest(p)
	if p.err != nil {
		return nil, fmt.Errorf("wire: manifest: %w", p.err)
	}
	if len(p.b) != p.off {
		return nil, fmt.Errorf("wire: manifest has %d trailing payload bytes", len(p.b)-p.off)
	}
	return m, nil
}

// decodeData parses a Data payload and reconstructs the buffer
// through the validating exchange constructors.
func decodeData(p *payloadReader, d *Data) {
	d.Round = p.u32()
	d.Dest = p.u32()
	d.Rel = p.str()
	d.Buf = decodeBufferBody(p)
}

// decodeDelta parses a Delta payload with the same validation.
func decodeDelta(p *payloadReader, d *Delta) {
	d.Round = p.u32()
	d.Dest = p.u32()
	d.Store = p.str()
	d.View = p.str()
	op := p.u8()
	if p.err == nil && op > 1 {
		p.fail(fmt.Errorf("delta op %d", op))
		return
	}
	d.Del = op == 1
	d.Buf = decodeBufferBody(p)
}

// decodeBufferBody parses one buffer body (arity, encoding, count,
// values) with full validation — the shape shared by Data and Delta
// payloads. A lying count cannot force a large allocation: every
// encoding bounds its allocation by the bytes actually present.
func decodeBufferBody(p *payloadReader) *exchange.Buffer {
	arity := int(p.u16())
	enc := p.u8()
	count := int(p.u32())
	if p.err != nil {
		return nil
	}
	if arity < 1 {
		p.fail(fmt.Errorf("arity %d", arity))
		return nil
	}
	switch enc {
	case encPacked:
		if !p.need(count * 8) {
			return nil
		}
		words := make([]uint64, count)
		for i := range words {
			words[i] = p.u64()
		}
		buf, err := exchange.NewBufferFromWords(arity, words)
		if err != nil {
			p.fail(err)
			return nil
		}
		return buf
	case encFlat:
		values := count * arity
		if !p.need(values * 8) {
			return nil
		}
		flat := make([]int, values)
		for i := range flat {
			v := int64(p.u64())
			if v < 0 || v > math.MaxInt {
				p.fail(fmt.Errorf("flat value %d out of range", v))
				return nil
			}
			flat[i] = int(v)
		}
		buf, err := exchange.NewBufferFromFlat(arity, flat)
		if err != nil {
			p.fail(err)
			return nil
		}
		return buf
	case encRaw:
		if !p.need(count * 8) {
			return nil
		}
		words := make([]uint64, count)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(p.b[p.off:])
			p.off += 8
		}
		if !slices.IsSorted(words) {
			p.fail(fmt.Errorf("raw words not sorted"))
			return nil
		}
		buf, err := exchange.NewBufferFromWords(arity, words)
		if err != nil {
			p.fail(err)
			return nil
		}
		return buf
	case encDelta:
		rest := p.b[p.off:]
		words, err := exchange.DecodeDeltaWords(rest, count)
		if err != nil {
			p.fail(err)
			return nil
		}
		p.off = len(p.b)
		buf, err := exchange.NewBufferFromWords(arity, words)
		if err != nil {
			p.fail(err)
			return nil
		}
		return buf
	default:
		p.fail(fmt.Errorf("unknown buffer encoding %d", enc))
		return nil
	}
}

// payloadReader is a bounds-checked cursor over a payload; the first
// failure sticks.
type payloadReader struct {
	b   []byte
	off int
	err error
}

// fail records the first error.
func (p *payloadReader) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// need reports whether n more bytes are available, recording an error
// if not (and on nonsensical sizes).
func (p *payloadReader) need(n int) bool {
	if p.err != nil {
		return false
	}
	if n < 0 || n > len(p.b)-p.off {
		p.fail(fmt.Errorf("truncated payload: need %d bytes, have %d", n, len(p.b)-p.off))
		return false
	}
	return true
}

func (p *payloadReader) u8() uint8 {
	if !p.need(1) {
		return 0
	}
	v := p.b[p.off]
	p.off++
	return v
}

func (p *payloadReader) u16() uint16 {
	if !p.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(p.b[p.off:])
	p.off += 2
	return v
}

func (p *payloadReader) u32() uint32 {
	if !p.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(p.b[p.off:])
	p.off += 4
	return v
}

func (p *payloadReader) u64() uint64 {
	if !p.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(p.b[p.off:])
	p.off += 8
	return v
}

// str reads a uint16-length-prefixed string.
func (p *payloadReader) str() string {
	n := int(p.u16())
	if !p.need(n) {
		return ""
	}
	v := string(p.b[p.off : p.off+n])
	p.off += n
	return v
}

// putU16 appends a big-endian uint16.
func putU16(w *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	w.Write(b[:])
}

// putU32 appends a big-endian uint32.
func putU32(w *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

// putU64 appends a big-endian uint64.
func putU64(w *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

// putString appends a uint16-length-prefixed string.
func putString(w *bytes.Buffer, s string) error {
	if len(s) > maxName {
		return fmt.Errorf("wire: string of %d bytes exceeds %d", len(s), maxName)
	}
	putU16(w, uint16(len(s)))
	w.WriteString(s)
	return nil
}

// unexpected normalizes a short read into io.ErrUnexpectedEOF so
// callers can distinguish "stream ended between frames" (io.EOF from
// Decode's first byte) from "stream died mid-frame".
func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	if err == nil {
		return io.ErrUnexpectedEOF
	}
	return err
}
