package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"

	"repro/internal/exchange"
	"repro/internal/relation"
)

// buildBuffer packs tuples of the given arity drawn from [0, max).
func buildBuffer(t *testing.T, arity, n, max int, seed uint64) *exchange.Buffer {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 42))
	b := exchange.NewBuffer(arity)
	row := make(relation.Tuple, arity)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.IntN(max)
		}
		b.Append(row)
	}
	b.Seal()
	return b
}

// sampleFrames returns one well-formed frame of every type, with both
// buffer encodings represented.
func sampleFrames(t *testing.T) []*Frame {
	t.Helper()
	packed := buildBuffer(t, 3, 100, 1000, 1)
	// Huge values defeat packing for arity 3 (21 bits per value).
	flat := exchange.NewBuffer(3)
	flat.Append(relation.Tuple{1 << 40, 2, 3})
	flat.Append(relation.Tuple{4, 5 << 30, 6})
	flat.Seal()
	if _, ok := flat.Words(); ok {
		t.Fatal("expected flat buffer")
	}
	return []*Frame{
		{Type: TypeHello, Hello: Hello{Version: Version, Worker: 3, P: 8}},
		{Type: TypeData, Data: Data{Round: 2, Dest: 3, Rel: "R", Buf: packed}},
		{Type: TypeData, Data: Data{Round: 1, Dest: 0, Rel: "views/V1_1", Buf: flat}},
		{Type: TypeBarrier, Round: 7},
		{Type: TypeJoin, Join: Join{
			Query:    "q(x,y,z) = R(x,y), S(y,z)",
			View:     "V1_1!out",
			Strategy: 3,
			Bindings: [][2]string{{"R", "V1_1/R"}, {"S", "V1_1/S"}},
		}},
		{Type: TypeGather, View: "hc!answers"},
		{Type: TypeAck, Round: 7},
		{Type: TypeDone, Count: 4},
		{Type: TypeError, Msg: "worker 3: no such view"},
		{Type: TypePing, Round: 19},
		{Type: TypePong, Round: 19},
		{Type: TypeEpoch, Round: 2},
		{Type: TypeTrace, Trace: TraceHeader{TraceID: 1 << 50, Span: 7, Round: 3, QueryID: "q-12"}},
		{Type: TypeCheckpoint, Checkpoint: &Manifest{
			Epoch: 2, Round: 3,
			Entries: []ManifestEntry{
				{Worker: 0, Store: "V1_1/R", Runs: 2, Tuples: 64},
				{Worker: 1, Store: "V1_1/R", Runs: 1, Tuples: 7},
				{Worker: 1, Store: "V1_1/S", Runs: 3, Tuples: 1 << 40},
			},
		}},
	}
}

func TestRoundTrip(t *testing.T) {
	for _, f := range sampleFrames(t) {
		var buf bytes.Buffer
		if err := Encode(&buf, f); err != nil {
			t.Fatalf("%s: encode: %v", f.Type, err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.Type, err)
		}
		if f.Type != TypeData {
			if !reflect.DeepEqual(f, got) {
				t.Errorf("%s: roundtrip mismatch:\n got %+v\nwant %+v", f.Type, got, f)
			}
			continue
		}
		// Buffers compare by materialized contents.
		if got.Data.Round != f.Data.Round || got.Data.Dest != f.Data.Dest || got.Data.Rel != f.Data.Rel {
			t.Errorf("data header mismatch: got %+v want %+v", got.Data, f.Data)
		}
		want := f.Data.Buf.AppendTuples(nil)
		have := got.Data.Buf.AppendTuples(nil)
		if !reflect.DeepEqual(want, have) {
			t.Errorf("data tuples mismatch: got %d tuples, want %d", len(have), len(want))
		}
	}
}

func TestRoundTripStream(t *testing.T) {
	frames := sampleFrames(t)
	var buf bytes.Buffer
	for _, f := range frames {
		if err := Encode(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; ; i++ {
		f, err := Decode(&buf)
		if errors.Is(err, io.EOF) {
			if i != len(frames) {
				t.Fatalf("stream ended after %d frames, want %d", i, len(frames))
			}
			return
		}
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != frames[i].Type {
			t.Fatalf("frame %d type %s, want %s", i, f.Type, frames[i].Type)
		}
	}
}

// TestDecodeTruncated: every proper prefix of every frame errors
// without panicking, and a mid-frame cut is ErrUnexpectedEOF.
func TestDecodeTruncated(t *testing.T) {
	for _, f := range sampleFrames(t) {
		var buf bytes.Buffer
		if err := Encode(&buf, f); err != nil {
			t.Fatal(err)
		}
		whole := buf.Bytes()
		for cut := 1; cut < len(whole); cut++ {
			_, err := Decode(bytes.NewReader(whole[:cut]))
			if err == nil {
				t.Fatalf("%s: decode of %d/%d bytes succeeded", f.Type, cut, len(whole))
			}
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("%s: truncation at %d reported clean EOF", f.Type, cut)
			}
		}
	}
}

func TestDecodeMalformed(t *testing.T) {
	packed := buildBuffer(t, 3, 4, 100, 9)
	enc := func(f *Frame) []byte {
		var buf bytes.Buffer
		if err := Encode(&buf, f); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"unknown type", []byte{0xEE, 0, 0, 0, 0}, "unknown frame type"},
		{"oversized length", []byte{byte(TypeData), 0xFF, 0xFF, 0xFF, 0xFF}, "exceeds"},
		// A barrier payload is exactly 4 bytes; declaring 6 leaves
		// trailing payload the parser must reject.
		{"trailing bytes", []byte{byte(TypeBarrier), 0, 0, 0, 6, 0, 0, 0, 1, 0xAA, 0xBB}, "trailing"},
		{"zero arity", mutate(enc(&Frame{Type: TypeData, Data: Data{Rel: "R", Buf: packed}}), func(b []byte) {
			// arity field sits after 5 hdr + 4 round + 4 dest + 2 len + 1 "R".
			b[16], b[17] = 0, 0
		}), "arity"},
		{"bad encoding byte", mutate(enc(&Frame{Type: TypeData, Data: Data{Rel: "R", Buf: packed}}), func(b []byte) {
			b[18] = 9
		}), "encoding"},
		{"count overflows payload", mutate(enc(&Frame{Type: TypeData, Data: Data{Rel: "R", Buf: packed}}), func(b []byte) {
			b[19], b[20], b[21], b[22] = 0xFF, 0xFF, 0xFF, 0xFF
		}), "truncated payload"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Decode(bytes.NewReader(c.data))
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestManifestValidation: the manifest codec enforces canonical form
// on both sides — encode refuses out-of-order entries, decode refuses
// lying counts, duplicates, disorder, and truncation.
func TestManifestValidation(t *testing.T) {
	enc := func(m *Manifest) []byte {
		var buf bytes.Buffer
		if err := Encode(&buf, &Frame{Type: TypeCheckpoint, Checkpoint: m}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()[5:]
	}
	good := &Manifest{Epoch: 1, Round: 2, Entries: []ManifestEntry{
		{Worker: 0, Store: "R", Runs: 1, Tuples: 3},
		{Worker: 1, Store: "R", Runs: 2, Tuples: 9},
	}}
	if _, err := DecodeManifest(enc(good)); err != nil {
		t.Fatalf("canonical manifest rejected: %v", err)
	}

	var buf bytes.Buffer
	err := Encode(&buf, &Frame{Type: TypeCheckpoint, Checkpoint: &Manifest{
		Entries: []ManifestEntry{{Worker: 1, Store: "R"}, {Worker: 0, Store: "R"}},
	}})
	if err == nil || !strings.Contains(err.Error(), "ascending") {
		t.Fatalf("encode of out-of-order entries: %v, want ascending error", err)
	}
	if err := Encode(&buf, &Frame{Type: TypeCheckpoint}); err == nil {
		t.Fatal("encode of checkpoint without manifest succeeded")
	}

	payload := enc(good)
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"count exceeds payload", mutate(payload, func(b []byte) {
			b[8], b[9], b[10], b[11] = 0xFF, 0xFF, 0xFF, 0xFF
		}), "exceeds payload"},
		{"count below payload leaves trailing bytes", mutate(payload, func(b []byte) {
			b[11] = 1
		}), "trailing"},
		{"duplicate entry", enc2(t, &Manifest{Entries: []ManifestEntry{
			{Worker: 1, Store: "R"}, {Worker: 1, Store: "R"},
		}}), "ascending"},
		{"descending entry", enc2(t, &Manifest{Entries: []ManifestEntry{
			{Worker: 1, Store: "S"}, {Worker: 1, Store: "R"},
		}}), "ascending"},
		{"truncated mid-entry", payload[:len(payload)-1], "truncated"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeManifest(c.data)
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// enc2 hand-encodes a manifest payload without Encode's ordering
// check, so decode-side validation can be exercised on shapes the
// encoder refuses to produce.
func enc2(t *testing.T, m *Manifest) []byte {
	t.Helper()
	var w bytes.Buffer
	putU32(&w, m.Epoch)
	putU32(&w, m.Round)
	putU32(&w, uint32(len(m.Entries)))
	for _, e := range m.Entries {
		putU32(&w, e.Worker)
		if err := putString(&w, e.Store); err != nil {
			t.Fatal(err)
		}
		putU32(&w, e.Runs)
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], e.Tuples)
		w.Write(b[:])
	}
	return w.Bytes()
}

// mutate copies b, applies f, returns the copy.
func mutate(b []byte, f func([]byte)) []byte {
	out := append([]byte(nil), b...)
	f(out)
	return out
}

// TestDecodeRejectsDirtyHighBits: a packed word with bits above
// arity·shift would break the word-order ⇔ tuple-order invariant and
// must be rejected.
func TestDecodeRejectsDirtyHighBits(t *testing.T) {
	packed := buildBuffer(t, 3, 2, 10, 5)
	var buf bytes.Buffer
	if err := Encode(&buf, &Frame{Type: TypeData, Data: Data{Rel: "R", Buf: packed}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-8] |= 0x80 // arity 3 uses 63 bits; set bit 63 of the last word
	_, err := Decode(bytes.NewReader(b))
	if err == nil || !strings.Contains(err.Error(), "bits above") {
		t.Fatalf("want high-bit rejection, got %v", err)
	}
}

// TestDecodedBufferSorted: decoding an unsorted payload still yields
// a sealed, sorted buffer (the Column invariant).
func TestDecodedBufferSorted(t *testing.T) {
	b := exchange.NewBuffer(2)
	b.Append(relation.Tuple{9, 1})
	b.Append(relation.Tuple{1, 2})
	b.Append(relation.Tuple{5, 0})
	// Do not Seal: encode the unsorted words via a crafted frame.
	var buf bytes.Buffer
	if err := Encode(&buf, &Frame{Type: TypeData, Data: Data{Rel: "R", Buf: b}}); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ts := got.Data.Buf.AppendTuples(nil)
	for i := 1; i < len(ts); i++ {
		if ts[i].Less(ts[i-1]) {
			t.Fatalf("decoded buffer not sorted: %v before %v", ts[i-1], ts[i])
		}
	}
	if !got.Data.Buf.Sealed() {
		t.Fatal("decoded buffer not sealed")
	}
}
