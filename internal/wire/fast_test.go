package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"

	"repro/internal/exchange"
	"repro/internal/relation"
)

// fastEncode runs frames through AppendFrames and flattens the
// vectored write list into one byte stream, as a connection would see.
func fastEncode(t *testing.T, frames []*Frame) []byte {
	t.Helper()
	_, bufs, err := AppendFrames(nil, frames)
	if err != nil {
		t.Fatalf("AppendFrames: %v", err)
	}
	var out bytes.Buffer
	for _, b := range bufs {
		out.Write(b)
	}
	return out.Bytes()
}

// zipfBuffer builds a sealed packed buffer whose first column is
// heavily skewed, the shape delta compression exists for.
func zipfBuffer(t *testing.T, n int, seed uint64) *exchange.Buffer {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 7))
	z := rand.NewZipf(rng, 1.2, 1, 1<<16)
	b := exchange.NewBuffer(2)
	for i := 0; i < n; i++ {
		b.Append(relation.Tuple{int(z.Uint64()), rng.IntN(1 << 10)})
	}
	b.Seal()
	return b
}

// TestFastRoundTrip: every frame type fast-encodes into bytes that
// BOTH the trusted Reader and the validating Decode accept, and the
// two decoders agree exactly — the differential contract of the fast
// path.
func TestFastRoundTrip(t *testing.T) {
	frames := sampleFrames(t)
	frames = append(frames,
		&Frame{Type: TypeData, Data: Data{Round: 3, Dest: 1, Rel: "Z", Buf: zipfBuffer(t, 4096, 3)}},
		&Frame{Type: TypeData, Data: Data{Round: 3, Dest: 2, Rel: "E", Buf: buildBuffer(t, 3, 0, 10, 4)}},
	)
	stream := fastEncode(t, frames)

	trusted := NewTrustedReader(bytes.NewReader(stream))
	validating := bytes.NewReader(stream)
	for i, want := range frames {
		ft, err := trusted.Next()
		if err != nil {
			t.Fatalf("frame %d (%s): trusted decode: %v", i, want.Type, err)
		}
		fv, err := Decode(validating)
		if err != nil {
			t.Fatalf("frame %d (%s): validating decode: %v", i, want.Type, err)
		}
		assertFramesEqual(t, want, ft, fv)
	}
	if _, err := trusted.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("trusted reader past end: %v, want EOF", err)
	}
}

// assertFramesEqual checks trusted and validating decodes of one
// fast-encoded frame against the original.
func assertFramesEqual(t *testing.T, want, trusted, validating *Frame) {
	t.Helper()
	if want.Type != TypeData {
		if !reflect.DeepEqual(trusted, validating) {
			t.Fatalf("%s: trusted %+v != validating %+v", want.Type, trusted, validating)
		}
		if !reflect.DeepEqual(want, trusted) {
			t.Fatalf("%s: decoded %+v, want %+v", want.Type, trusted, want)
		}
		return
	}
	for _, got := range []*Frame{trusted, validating} {
		if got.Data.Round != want.Data.Round || got.Data.Dest != want.Data.Dest || got.Data.Rel != want.Data.Rel {
			t.Fatalf("data header mismatch: got %+v want %+v", got.Data, want.Data)
		}
	}
	wt := want.Data.Buf.AppendTuples(nil)
	tt := trusted.Data.Buf.AppendTuples(nil)
	vt := validating.Data.Buf.AppendTuples(nil)
	if !reflect.DeepEqual(tt, vt) {
		t.Fatalf("trusted decode (%d tuples) != validating decode (%d tuples)", len(tt), len(vt))
	}
	if len(wt) > 0 && !reflect.DeepEqual(wt, tt) {
		t.Fatalf("decoded %d tuples, want %d", len(tt), len(wt))
	}
}

// TestFastEncodingChoice: a skewed sorted column ships as encDelta and
// is materially smaller than raw; incompressible random words stay on
// the zero-copy raw path.
func TestFastEncodingChoice(t *testing.T) {
	encodingOf := func(buf *exchange.Buffer) (byte, int) {
		_, bufs, err := AppendFrames(nil, []*Frame{{Type: TypeData, Data: Data{Rel: "R", Buf: buf}}})
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		for _, b := range bufs {
			out.Write(b)
		}
		stream := out.Bytes()
		// enc byte sits after 5 hdr + 4 round + 4 dest + 2 len + 1 "R" + 2 arity.
		return stream[18], out.Len()
	}

	skewed := zipfBuffer(t, 4096, 11)
	enc, size := encodingOf(skewed)
	if enc != encDelta {
		t.Fatalf("skewed column encoded as %d, want encDelta", enc)
	}
	raw := skewed.Len() * 8
	if size >= raw*3/4 {
		t.Fatalf("delta payload %d bytes, want < 3/4 of raw %d", size, raw)
	}

	random := buildBuffer(t, 3, 4096, 1<<20, 17)
	if enc, _ := encodingOf(random); enc != encRaw {
		t.Fatalf("random column encoded as %d, want encRaw", enc)
	}
}

// TestFastZeroCopySegments: raw word payloads come back as segments
// aliasing the buffer's word memory, not copies.
func TestFastZeroCopySegments(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("zero-copy segments only on little-endian hosts")
	}
	buf := buildBuffer(t, 3, 1024, 1<<20, 23)
	words, _ := buf.Words()
	_, bufs, err := AppendFrames(nil, []*Frame{{Type: TypeData, Data: Data{Rel: "R", Buf: buf}}})
	if err != nil {
		t.Fatal(err)
	}
	seg, ok := wordsLE(words)
	if !ok {
		t.Fatal("wordsLE failed on little-endian host")
	}
	found := false
	for _, b := range bufs {
		if len(b) == len(seg) && &b[0] == &seg[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("no write segment aliases the buffer's word memory")
	}
}

// TestFastRejectsUnsealed: the fast encoder refuses unsealed buffers —
// its encodings assume sorted words.
func TestFastRejectsUnsealed(t *testing.T) {
	b := exchange.NewBuffer(2)
	b.Append(relation.Tuple{9, 1})
	b.Append(relation.Tuple{1, 2})
	_, _, err := AppendFrames(nil, []*Frame{{Type: TypeData, Data: Data{Rel: "R", Buf: b}}})
	if err == nil || !strings.Contains(err.Error(), "unsealed") {
		t.Fatalf("fast-encode of unsealed buffer: %v, want unsealed error", err)
	}
}

// TestValidatingRejectsDirtyRawWords: the untrusted path still rejects
// raw payloads whose words set bits above the packed width, and raw
// payloads that are not sorted.
func TestValidatingRejectsDirtyRawWords(t *testing.T) {
	buf := buildBuffer(t, 3, 4, 10, 29)
	stream := fastEncode(t, []*Frame{{Type: TypeData, Data: Data{Rel: "R", Buf: buf}}})

	dirty := mutate(stream, func(b []byte) {
		b[len(b)-1] |= 0x80 // little-endian: last byte holds bit 63 of the last word
	})
	if _, err := Decode(bytes.NewReader(dirty)); err == nil || !strings.Contains(err.Error(), "bits above") {
		t.Fatalf("dirty raw word: %v, want high-bit rejection", err)
	}

	unsorted := mutate(stream, func(b []byte) {
		// Raise the first word to 2^62 (still inside the 63-bit packed
		// width) so it out-orders the small words after it.
		first := len(b) - 4*8
		b[first+7] = 0x40
	})
	if _, err := Decode(bytes.NewReader(unsorted)); err == nil || !strings.Contains(err.Error(), "sorted") {
		t.Fatalf("unsorted raw words: %v, want sorted rejection", err)
	}
}

// TestValidatingRejectsDirtyDeltaWords: a delta payload whose first
// word already exceeds the packed width is rejected untrusted.
func TestValidatingRejectsDirtyDeltaWords(t *testing.T) {
	words := make([]uint64, 64)
	words[0] = 1 << 63 // arity-2 packing uses all 64 bits; use arity 3 (63 bits)
	for i := 1; i < len(words); i++ {
		words[i] = words[i-1] + 1
	}
	payload := exchange.AppendDeltaWords(nil, words)
	var body []byte
	body = appendU32(body, 0) // round
	body = appendU32(body, 0) // dest
	body, _ = appendString(body, "R")
	body = appendU16(body, 3) // arity 3 → 21 bits/value, 63 used
	body = append(body, encDelta)
	body = appendU32(body, uint32(len(words)))
	body = append(body, payload...)
	stream := []byte{byte(TypeData)}
	stream = appendU32(stream, uint32(len(body)))
	stream = append(stream, body...)
	if _, err := Decode(bytes.NewReader(stream)); err == nil || !strings.Contains(err.Error(), "bits above") {
		t.Fatalf("dirty delta word: %v, want high-bit rejection", err)
	}
}

// BenchmarkWireFastEncode measures the trusted fast encoder on the
// same frame shape as BenchmarkWireEncode, including assembling the
// vectored write list (but not the syscall).
func BenchmarkWireFastEncode(b *testing.B) {
	f := benchFrame(1 << 16)
	var probe bytes.Buffer
	if err := Encode(&probe, f); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(probe.Len()))
	frames := []*Frame{f}
	var head []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		head, _, err = AppendFrames(head[:0], frames)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireFastDecode measures the trusted Reader on a raw-encoded
// frame — the single-copy path the coordinator and workers run.
func BenchmarkWireFastDecode(b *testing.B) {
	f := benchFrame(1 << 16)
	_, bufs, err := AppendFrames(nil, []*Frame{f})
	if err != nil {
		b.Fatal(err)
	}
	var stream bytes.Buffer
	for _, s := range bufs {
		stream.Write(s)
	}
	data := stream.Bytes()
	b.SetBytes(int64(len(data)))
	rd := NewTrustedReader(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.r = bytes.NewReader(data)
		if _, err := rd.Next(); err != nil {
			b.Fatal(err)
		}
	}
}
