package wire

import (
	"bytes"
	"io"
	"math/rand/v2"
	"testing"

	"repro/internal/exchange"
	"repro/internal/relation"
)

// benchFrame builds a Data frame with n packed 3-ary tuples — the
// exact shape a triangle-query scatter ships per destination.
func benchFrame(n int) *Frame {
	rng := rand.New(rand.NewPCG(11, 13))
	b := exchange.NewBuffer(3)
	row := make(relation.Tuple, 3)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.IntN(1 << 20)
		}
		b.Append(row)
	}
	b.Seal()
	return &Frame{Type: TypeData, Data: Data{Round: 1, Dest: 0, Rel: "R", Buf: b}}
}

// BenchmarkWireEncode measures serialization throughput of the
// columnar data frame (bytes/op via SetBytes → MB/s in the output).
func BenchmarkWireEncode(b *testing.B) {
	f := benchFrame(1 << 16)
	var probe bytes.Buffer
	if err := Encode(&probe, f); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(probe.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Encode(io.Discard, f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireDecode measures deserialization throughput, including
// the validating buffer reconstruction.
func BenchmarkWireDecode(b *testing.B) {
	f := benchFrame(1 << 16)
	var buf bytes.Buffer
	if err := Encode(&buf, f); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
