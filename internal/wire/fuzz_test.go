package wire

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repro/internal/exchange"
	"repro/internal/relation"
)

// FuzzDecodeFrame holds the decoder to its safety contract on
// arbitrary input: it must return an error or a valid frame — never
// panic — and anything it accepts must survive an encode/decode
// round trip unchanged (up to buffer materialization). The seed
// corpus is real encoded frames of every type, both buffer encodings
// included, so the fuzzer starts from deep in the valid format.
func FuzzDecodeFrame(f *testing.F) {
	seed := func(fr *Frame) {
		var buf bytes.Buffer
		if err := Encode(&buf, fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	rng := rand.New(rand.NewPCG(7, 7))
	packed := exchange.NewBuffer(3)
	row := make(relation.Tuple, 3)
	for i := 0; i < 200; i++ {
		for j := range row {
			row[j] = rng.IntN(5000)
		}
		packed.Append(row)
	}
	packed.Seal()
	flat := exchange.NewBuffer(2)
	flat.Append(relation.Tuple{1 << 50, 3})
	flat.Append(relation.Tuple{2, 1 << 40})
	flat.Seal()
	wide := exchange.NewBuffer(1)
	for i := 0; i < 64; i++ {
		wide.Append(relation.Tuple{i * i})
	}
	wide.Seal()

	seed(&Frame{Type: TypeHello, Hello: Hello{Version: Version, Worker: 1, P: 4}})
	seed(&Frame{Type: TypeData, Data: Data{Round: 1, Dest: 2, Rel: "R", Buf: packed}})
	seed(&Frame{Type: TypeData, Data: Data{Round: 3, Dest: 0, Rel: "V1_1/S", Buf: flat}})
	seed(&Frame{Type: TypeData, Data: Data{Round: 0, Dest: 3, Rel: "hc!answers", Buf: wide}})
	seed(&Frame{Type: TypeBarrier, Round: 2})
	seed(&Frame{Type: TypeJoin, Join: Join{
		Query:    "q(x,y,z) = R(x,y), S(y,z)",
		View:     "out",
		Strategy: 1,
		Bindings: [][2]string{{"R", "V/R"}},
	}})
	seed(&Frame{Type: TypeGather, View: "out"})
	seed(&Frame{Type: TypeAck, Round: 2})
	seed(&Frame{Type: TypeDone, Count: 3})
	seed(&Frame{Type: TypeError, Msg: "boom"})
	seed(&Frame{Type: TypePing, Round: 41})
	seed(&Frame{Type: TypePong, Round: 41})
	seed(&Frame{Type: TypeEpoch, Round: 3})
	seed(&Frame{Type: TypeCheckpoint, Checkpoint: &Manifest{
		Epoch: 2, Round: 5,
		Entries: []ManifestEntry{
			{Worker: 0, Store: "V1_1/R", Runs: 3, Tuples: 900},
			{Worker: 0, Store: "V1_1/S", Runs: 1, Tuples: 12},
			{Worker: 2, Store: "hc!answers", Runs: 7, Tuples: 1 << 33},
		},
	}})
	seed(&Frame{Type: TypeCheckpoint, Checkpoint: &Manifest{Epoch: 0, Round: 0}})
	seed(&Frame{Type: TypeTrace, Trace: TraceHeader{TraceID: 1 << 40, Span: 3, Round: 2, QueryID: "q-7"}})
	seed(&Frame{Type: TypeTrace, Trace: TraceHeader{}})
	seed(&Frame{Type: TypeDelta, Delta: Delta{Round: 4, Dest: 1, Store: "R", View: "delta!R!7", Buf: packed}})
	seed(&Frame{Type: TypeDelta, Delta: Delta{Round: 4, Dest: 2, Store: "S", Del: true, Buf: flat}})
	// Fast-path encodings: the same frames as the fast encoder ships
	// them — raw little-endian words for the random buffer, delta
	// varints for a skewed one — so the fuzzer mutates deep inside
	// encRaw and encDelta payloads too.
	fastSeed := func(fr *Frame) {
		_, bufs, err := AppendFrames(nil, []*Frame{fr})
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		for _, b := range bufs {
			buf.Write(b)
		}
		f.Add(buf.Bytes())
	}
	fastSeed(&Frame{Type: TypeData, Data: Data{Round: 1, Dest: 2, Rel: "R", Buf: packed}})
	fastSeed(&Frame{Type: TypeData, Data: Data{Round: 0, Dest: 3, Rel: "hc!answers", Buf: wide}})
	skewed := exchange.NewBuffer(2)
	z := rand.NewZipf(rng, 1.2, 1, 1<<16)
	for i := 0; i < 512; i++ {
		skewed.Append(relation.Tuple{int(z.Uint64()), rng.IntN(64)})
	}
	skewed.Seal()
	fastSeed(&Frame{Type: TypeData, Data: Data{Round: 2, Dest: 1, Rel: "Z", Buf: skewed}})
	fastSeed(&Frame{Type: TypeDelta, Delta: Delta{Round: 5, Dest: 0, Store: "R", View: "delta!R!1", Buf: packed}})
	fastSeed(&Frame{Type: TypeDelta, Delta: Delta{Round: 5, Dest: 1, Store: "Z", Del: true, Buf: skewed}})
	// Hostile shapes: lying lengths, dirty high bits, truncation.
	f.Add([]byte{byte(TypeData), 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{byte(TypeData), 0, 0, 0, 30, 0, 0, 0, 1, 0, 0, 0, 1, 0, 1, 'R', 0, 3, 0, 0, 0, 0, 2})
	f.Add([]byte{0xEE, 0, 0, 0, 0})
	// Hostile fast shapes: unsorted raw words, a delta payload whose
	// first word sets bits above the packed width, a truncated delta
	// varint, and a lying delta count.
	f.Add([]byte{
		byte(TypeData), 0, 0, 0, 34,
		0, 0, 0, 1, 0, 0, 0, 1, 0, 1, 'R', 0, 3, encRaw, 0, 0, 0, 2,
		9, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0,
	})
	f.Add([]byte{
		byte(TypeData), 0, 0, 0, 29,
		0, 0, 0, 1, 0, 0, 0, 1, 0, 1, 'R', 0, 3, encDelta, 0, 0, 0, 2,
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01, 0, // 1<<63, +0
	})
	f.Add([]byte{
		byte(TypeData), 0, 0, 0, 19,
		0, 0, 0, 1, 0, 0, 0, 1, 0, 1, 'R', 0, 3, encDelta, 0, 0, 0, 2,
		0x80,
	})
	f.Add([]byte{
		byte(TypeData), 0, 0, 0, 20,
		0, 0, 0, 1, 0, 0, 0, 1, 0, 1, 'R', 0, 3, encDelta, 0xFF, 0xFF, 0xFF, 0xFF,
		1, 2,
	})
	// Hostile delta frames: a dirty op byte (only 0 and 1 are legal), a
	// lying tuple count with almost no payload behind it, and a
	// truncated delta-varint body — all must reject without
	// over-allocating.
	f.Add([]byte{
		byte(TypeDelta), 0, 0, 0, 21,
		0, 0, 0, 1, 0, 0, 0, 1, 0, 1, 'R', 0, 0, 2, 0, 1, encPacked, 0, 0, 0, 0,
	})
	f.Add([]byte{
		byte(TypeDelta), 0, 0, 0, 23,
		0, 0, 0, 1, 0, 0, 0, 1, 0, 1, 'R', 0, 0, 0, 0, 1, encPacked, 0xFF, 0xFF, 0xFF, 0xFF,
		1, 2,
	})
	f.Add([]byte{
		byte(TypeDelta), 0, 0, 0, 22,
		0, 0, 0, 1, 0, 0, 0, 1, 0, 1, 'R', 0, 0, 0, 0, 1, encDelta, 0, 0, 0, 2,
		0x80,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, fr); err != nil {
			t.Fatalf("accepted frame %s does not re-encode: %v", fr.Type, err)
		}
		again, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame %s does not decode: %v", fr.Type, err)
		}
		if again.Type != fr.Type {
			t.Fatalf("round trip changed type %s → %s", fr.Type, again.Type)
		}
		if fr.Type == TypeCheckpoint {
			a, b := fr.Checkpoint, again.Checkpoint
			if a.Epoch != b.Epoch || a.Round != b.Round || len(a.Entries) != len(b.Entries) {
				t.Fatalf("round trip changed manifest %+v → %+v", a, b)
			}
			for i := range a.Entries {
				if a.Entries[i] != b.Entries[i] {
					t.Fatalf("round trip changed manifest entry %d: %+v → %+v", i, a.Entries[i], b.Entries[i])
				}
			}
		}
		if fr.Type == TypeData {
			a := fr.Data.Buf.AppendTuples(nil)
			b := again.Data.Buf.AppendTuples(nil)
			if len(a) != len(b) {
				t.Fatalf("round trip changed tuple count %d → %d", len(a), len(b))
			}
			for i := range a {
				if !a[i].Equal(b[i]) {
					t.Fatalf("round trip changed tuple %d: %v → %v", i, a[i], b[i])
				}
			}
		}
		if fr.Type == TypeDelta {
			if fr.Delta.Store != again.Delta.Store || fr.Delta.View != again.Delta.View || fr.Delta.Del != again.Delta.Del {
				t.Fatalf("round trip changed delta header %+v → %+v", fr.Delta, again.Delta)
			}
			a := fr.Delta.Buf.AppendTuples(nil)
			b := again.Delta.Buf.AppendTuples(nil)
			if len(a) != len(b) {
				t.Fatalf("round trip changed delta tuple count %d → %d", len(a), len(b))
			}
			for i := range a {
				if !a[i].Equal(b[i]) {
					t.Fatalf("round trip changed delta tuple %d: %v → %v", i, a[i], b[i])
				}
			}
		}
		// Differential oracle: every accepted frame must fast-encode
		// into bytes on which the trusted Reader and the validating
		// Decode agree exactly.
		_, bufs, err := AppendFrames(nil, []*Frame{fr})
		if err != nil {
			t.Fatalf("accepted frame %s does not fast-encode: %v", fr.Type, err)
		}
		var fast bytes.Buffer
		for _, b := range bufs {
			fast.Write(b)
		}
		stream := fast.Bytes()
		ft, err := NewTrustedReader(bytes.NewReader(stream)).Next()
		if err != nil {
			t.Fatalf("trusted decode of fast %s frame: %v", fr.Type, err)
		}
		fv, err := Decode(bytes.NewReader(stream))
		if err != nil {
			t.Fatalf("validating decode of fast %s frame: %v", fr.Type, err)
		}
		if ft.Type != fv.Type {
			t.Fatalf("fast decode type disagrees: trusted %s, validating %s", ft.Type, fv.Type)
		}
		if fr.Type == TypeData {
			a := ft.Data.Buf.AppendTuples(nil)
			b := fv.Data.Buf.AppendTuples(nil)
			c := fr.Data.Buf.AppendTuples(nil)
			if len(a) != len(b) || len(a) != len(c) {
				t.Fatalf("fast decode tuple counts diverge: trusted %d, validating %d, original %d", len(a), len(b), len(c))
			}
			for i := range a {
				if !a[i].Equal(b[i]) || !a[i].Equal(c[i]) {
					t.Fatalf("fast decode tuple %d diverges: trusted %v validating %v original %v", i, a[i], b[i], c[i])
				}
			}
		}
		if fr.Type == TypeDelta {
			if ft.Delta.Store != fr.Delta.Store || ft.Delta.View != fr.Delta.View || ft.Delta.Del != fr.Delta.Del ||
				fv.Delta.Store != fr.Delta.Store || fv.Delta.View != fr.Delta.View || fv.Delta.Del != fr.Delta.Del {
				t.Fatalf("fast decode delta header diverges: trusted %+v validating %+v original %+v", ft.Delta, fv.Delta, fr.Delta)
			}
			a := ft.Delta.Buf.AppendTuples(nil)
			b := fv.Delta.Buf.AppendTuples(nil)
			c := fr.Delta.Buf.AppendTuples(nil)
			if len(a) != len(b) || len(a) != len(c) {
				t.Fatalf("fast decode delta tuple counts diverge: trusted %d, validating %d, original %d", len(a), len(b), len(c))
			}
			for i := range a {
				if !a[i].Equal(b[i]) || !a[i].Equal(c[i]) {
					t.Fatalf("fast decode delta tuple %d diverges: trusted %v validating %v original %v", i, a[i], b[i], c[i])
				}
			}
		}
	})
}

// FuzzDecodeManifest holds the checkpoint-manifest decoder to the
// same contract as the frame decoder: arbitrary bytes yield an error
// or a valid manifest — never a panic, never an allocation larger than
// the input — and anything accepted is in canonical form, so it
// re-encodes to the exact input bytes.
func FuzzDecodeManifest(f *testing.F) {
	seed := func(m *Manifest) {
		var buf bytes.Buffer
		if err := Encode(&buf, &Frame{Type: TypeCheckpoint, Checkpoint: m}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes()[5:]) // strip the frame header, keep the payload
	}
	seed(&Manifest{Epoch: 1, Round: 2, Entries: []ManifestEntry{
		{Worker: 0, Store: "R", Runs: 1, Tuples: 3},
		{Worker: 1, Store: "R", Runs: 2, Tuples: 5},
		{Worker: 1, Store: "S", Runs: 1, Tuples: 8},
	}})
	seed(&Manifest{Epoch: 0, Round: 0})
	// Lying count with no payload behind it; must reject cheaply.
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF})
	// Duplicate (worker, store): non-canonical, must reject.
	f.Add([]byte{
		0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 2,
		0, 0, 0, 0, 0, 1, 'R', 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1,
		0, 0, 0, 0, 0, 1, 'R', 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, &Frame{Type: TypeCheckpoint, Checkpoint: m}); err != nil {
			t.Fatalf("accepted manifest does not re-encode: %v", err)
		}
		if got := buf.Bytes()[5:]; !bytes.Equal(got, data) {
			t.Fatalf("accepted manifest is not canonical: %x re-encodes to %x", data, got)
		}
	})
}
