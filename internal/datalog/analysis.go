package datalog

import (
	"fmt"
	"sort"
)

// Stratum is one evaluation unit: the rules of one strongly connected
// component of the IDB dependency graph, in dependency-first order.
type Stratum struct {
	// Preds are the predicates defined in this stratum, sorted.
	Preds []string
	// Rules are indices into Program.Rules, in program order.
	Rules []int
	// Recursive reports whether the stratum needs a fixpoint: the SCC
	// has more than one predicate, or a single predicate that appears
	// in the body of one of its own rules.
	Recursive bool
}

// analysis is the result of static validation, computed once in Parse.
type analysis struct {
	// arity maps every predicate (EDB and IDB) to its arity.
	arity map[string]int
	// idb marks predicates defined by at least one rule.
	idb map[string]bool
	// aggPred marks predicates defined by an aggregate rule.
	aggPred map[string]bool
	// strata is the evaluation order: Tarjan emission order of the IDB
	// dependency SCCs, which puts every stratum after the strata it
	// reads from.
	strata []Stratum
}

// Arity returns the arity of a predicate and whether it occurs in the
// program.
func (p *Program) Arity(pred string) (int, bool) {
	n, ok := p.an.arity[pred]
	return n, ok
}

// IsIDB reports whether the predicate is defined by a rule.
func (p *Program) IsIDB(pred string) bool { return p.an.idb[pred] }

// IsAggregate reports whether the predicate is defined by an aggregate
// rule.
func (p *Program) IsAggregate(pred string) bool { return p.an.aggPred[pred] }

// EDBPreds returns the extensional predicates — those read but never
// defined — sorted by name.
func (p *Program) EDBPreds() []string {
	var out []string
	for pred := range p.an.arity {
		if !p.an.idb[pred] {
			out = append(out, pred)
		}
	}
	sort.Strings(out)
	return out
}

// IDBPreds returns the intensional predicates, sorted by name.
func (p *Program) IDBPreds() []string {
	var out []string
	for pred := range p.an.idb {
		out = append(out, pred)
	}
	sort.Strings(out)
	return out
}

// Strata returns the evaluation order: one stratum per SCC of the IDB
// dependency graph, dependencies before dependents. The slice is
// shared; callers must not mutate it.
func (p *Program) Strata() []Stratum { return p.an.strata }

// Recursive reports whether any stratum needs a fixpoint.
func (p *Program) Recursive() bool {
	for _, s := range p.an.strata {
		if s.Recursive {
			return true
		}
	}
	return false
}

// OutputPred returns the predicate the program answers: the goal's
// predicate, or the head of the last rule when no goal is declared.
func (p *Program) OutputPred() string {
	if p.Goal != nil {
		return p.Goal.Pred
	}
	return p.Rules[len(p.Rules)-1].Head.Pred
}

// analyze validates the parsed program and computes the evaluation
// order. The checks, in the order a user hits them: consistent
// arities, per-rule shape (non-empty distinct body, safety), the
// aggregate discipline (single defining rule, terminal, exact-fold
// head coverage, groups before aggregates), goal well-formedness, and
// stratification.
func (p *Program) analyze() error {
	p.an = analysis{
		arity:   make(map[string]int),
		idb:     make(map[string]bool),
		aggPred: make(map[string]bool),
	}
	note := func(pred string, arity, line int) error {
		if prev, ok := p.an.arity[pred]; ok {
			if prev != arity {
				return fmt.Errorf("datalog: line %d: predicate %s used with arity %d and %d", line, pred, arity, prev)
			}
			return nil
		}
		p.an.arity[pred] = arity
		return nil
	}

	for i := range p.Rules {
		r := &p.Rules[i]
		if err := note(r.Head.Pred, len(r.Head.Terms), r.line); err != nil {
			return err
		}
		p.an.idb[r.Head.Pred] = true
		if r.HasAggregate() {
			p.an.aggPred[r.Head.Pred] = true
		}

		// Body: consistent arities, no self-joins (the engines bind
		// worker stores by atom name), and range restriction.
		bodyVars := make(map[string]bool)
		seenAtom := make(map[string]bool, len(r.Body))
		for _, a := range r.Body {
			if err := note(a.Pred, len(a.Vars), r.line); err != nil {
				return err
			}
			if seenAtom[a.Pred] {
				return fmt.Errorf("datalog: line %d: rule for %s repeats body predicate %s (self-joins are not supported; split the rule through an alias predicate)",
					r.line, r.Head.Pred, a.Pred)
			}
			seenAtom[a.Pred] = true
			for _, v := range a.Vars {
				bodyVars[v] = true
			}
		}
		for _, t := range r.Head.Terms {
			if !bodyVars[t.Var] {
				return fmt.Errorf("datalog: line %d: rule for %s is unsafe: head variable %s does not occur in the body",
					r.line, r.Head.Pred, t.Var)
			}
		}

		if r.HasAggregate() {
			if err := p.checkAggregateRule(r, bodyVars); err != nil {
				return err
			}
		}
	}

	// Aggregate discipline across rules: a single defining rule, and
	// terminal (never read by another rule). Terminality is what makes
	// aggregation safe here — aggregate values live outside the input
	// domain [1,N] the grid hashes, and recursion through aggregation
	// has no least fixpoint.
	for pred := range p.an.aggPred {
		n := 0
		for i := range p.Rules {
			if p.Rules[i].Head.Pred == pred {
				n++
			}
		}
		if n > 1 {
			return fmt.Errorf("datalog: aggregate predicate %s has %d rules (exactly one defining rule is allowed)", pred, n)
		}
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		for _, a := range r.Body {
			if p.an.aggPred[a.Pred] {
				return fmt.Errorf("datalog: line %d: aggregate predicate %s may not appear in a rule body (aggregates are terminal: query them with '?-')",
					r.line, a.Pred)
			}
		}
	}

	if p.Goal != nil {
		g := p.Goal
		if !p.an.idb[g.Pred] {
			return fmt.Errorf("datalog: line %d: goal predicate %s has no defining rule", g.line, g.Pred)
		}
		if want := p.an.arity[g.Pred]; len(g.Vars) != want {
			return fmt.Errorf("datalog: line %d: goal %s has %d variables, predicate has arity %d", g.line, g.Pred, len(g.Vars), want)
		}
		seen := make(map[string]bool, len(g.Vars))
		for _, v := range g.Vars {
			if seen[v] {
				return fmt.Errorf("datalog: line %d: goal variable %s repeated (goal variables label output columns and must be distinct)", g.line, v)
			}
			seen[v] = true
		}
	}

	p.an.strata = p.stratify()
	return nil
}

// checkAggregateRule enforces the head shape that lets the evaluator
// fold the aggregate exactly in the gather merge: every body variable
// appears in the head (so the deduplicated body answer set is the
// aggregation input, with no pre-aggregation projection), and plain
// group terms precede aggregate terms (so head order equals the
// groups-then-aggregates order the fold emits).
func (p *Program) checkAggregateRule(r *Rule, bodyVars map[string]bool) error {
	headVars := make(map[string]bool, len(r.Head.Terms))
	sawAgg := false
	for _, t := range r.Head.Terms {
		if t.Agg != 0 {
			sawAgg = true
			headVars[t.Var] = true
			continue
		}
		if sawAgg {
			return fmt.Errorf("datalog: line %d: aggregate rule for %s: group variable %s after an aggregate term (group variables first, then aggregates)",
				r.line, r.Head.Pred, t.Var)
		}
		if headVars[t.Var] {
			return fmt.Errorf("datalog: line %d: aggregate rule for %s repeats group variable %s", r.line, r.Head.Pred, t.Var)
		}
		headVars[t.Var] = true
	}
	for v := range bodyVars {
		if !headVars[v] {
			return fmt.Errorf("datalog: line %d: aggregate rule for %s: body variable %s missing from the head (aggregates fold the full body answer set, so every body variable must be a group variable or an aggregate argument)",
				r.line, r.Head.Pred, v)
		}
	}
	return nil
}

// stratify runs Tarjan's SCC algorithm on the IDB dependency graph
// (edge P → Q when a rule for P reads Q and Q is intensional) and
// returns one Stratum per component in emission order. Tarjan emits a
// component only after every component it can reach, so emission order
// is dependency-first evaluation order.
func (p *Program) stratify() []Stratum {
	preds := p.IDBPreds()
	index := make(map[string]int, len(preds))
	for i, pred := range preds {
		index[pred] = i
	}
	adj := make([][]int, len(preds))
	selfLoop := make([]bool, len(preds))
	for i := range p.Rules {
		r := &p.Rules[i]
		from := index[r.Head.Pred]
		for _, a := range r.Body {
			to, ok := index[a.Pred]
			if !ok {
				continue // EDB
			}
			if to == from {
				selfLoop[from] = true
			}
			adj[from] = append(adj[from], to)
		}
	}

	// Iterative Tarjan.
	const unvisited = -1
	num := make([]int, len(preds))
	low := make([]int, len(preds))
	onStack := make([]bool, len(preds))
	for i := range num {
		num[i] = unvisited
	}
	var (
		counter int
		stack   []int
		sccs    [][]int
	)
	type frame struct{ v, edge int }
	for root := range preds {
		if num[root] != unvisited {
			continue
		}
		frames := []frame{{root, 0}}
		num[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.edge < len(adj[f.v]) {
				w := adj[f.v][f.edge]
				f.edge++
				if num[w] == unvisited {
					num[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && num[w] < low[f.v] {
					low[f.v] = num[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == num[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}

	strata := make([]Stratum, 0, len(sccs))
	for _, comp := range sccs {
		s := Stratum{Recursive: len(comp) > 1}
		inComp := make(map[string]bool, len(comp))
		for _, i := range comp {
			s.Preds = append(s.Preds, preds[i])
			inComp[preds[i]] = true
			if selfLoop[i] {
				s.Recursive = true
			}
		}
		sort.Strings(s.Preds)
		for i := range p.Rules {
			if inComp[p.Rules[i].Head.Pred] {
				s.Rules = append(s.Rules, i)
			}
		}
		strata = append(strata, s)
	}
	return strata
}
